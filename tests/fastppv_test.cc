#include "dppr/baseline/fastppv.h"

#include <gtest/gtest.h>

#include "dppr/graph/datasets.h"
#include "dppr/ppr/dense_solver.h"
#include "dppr/ppr/metrics.h"
#include "test_util.h"

namespace dppr {
namespace {

using ::dppr::testing::RandomDigraph;

TEST(FastPpv, ConvergesToExactWithEnoughRounds) {
  Graph g = RandomDigraph(60, 3.0, 4);
  FastPpvOptions options;
  options.ppr.tolerance = 1e-10;
  options.num_hubs = 8;
  options.max_rounds = 200;
  options.min_round_mass = 1e-12;
  FastPpvIndex index = FastPpvIndex::Build(g, options);
  for (NodeId q : {NodeId{0}, NodeId{30}, NodeId{59}}) {
    FastPpvIndex::QueryStats stats;
    std::vector<double> got = index.Query(q, &stats);
    std::vector<double> oracle = ExactPpvDense(g, q, options.ppr);
    EXPECT_LT(LInfNorm(got, oracle), 1e-6) << "q=" << q;
    EXPECT_LT(stats.remaining_mass, 1e-10);
  }
}

TEST(FastPpv, HubQueriesWork) {
  Graph g = RandomDigraph(80, 3.0, 9);
  FastPpvOptions options;
  options.ppr.tolerance = 1e-10;
  options.num_hubs = 6;
  options.max_rounds = 300;
  options.min_round_mass = 1e-12;
  FastPpvIndex index = FastPpvIndex::Build(g, options);
  NodeId hub = index.hubs().front();
  std::vector<double> got = index.Query(hub);
  std::vector<double> oracle = ExactPpvDense(g, hub, options.ppr);
  EXPECT_LT(LInfNorm(got, oracle), 1e-6);
}

TEST(FastPpv, ErrorShrinksWithMoreRounds) {
  Graph g = RandomDigraph(150, 3.0, 7);
  std::vector<double> errors;
  for (size_t rounds : {0u, 1u, 3u, 30u}) {
    FastPpvOptions options;
    options.ppr.tolerance = 1e-9;
    options.num_hubs = 12;
    options.max_rounds = rounds;
    options.min_round_mass = 0.0;
    FastPpvIndex index = FastPpvIndex::Build(g, options);
    std::vector<double> got = index.Query(33);
    std::vector<double> oracle = ExactPpvDense(g, 33, options.ppr);
    errors.push_back(LInfNorm(got, oracle));
  }
  EXPECT_GE(errors[0], errors[1]);
  EXPECT_GE(errors[1], errors[2]);
  EXPECT_GT(errors[0], errors[3] * 2);  // truncation error really decays
}

TEST(FastPpv, RemainingMassBoundsTheError) {
  Graph g = RandomDigraph(120, 3.0, 13);
  FastPpvOptions options;
  options.ppr.tolerance = 1e-9;
  options.num_hubs = 10;
  options.max_rounds = 2;
  options.min_round_mass = 0.0;
  FastPpvIndex index = FastPpvIndex::Build(g, options);
  FastPpvIndex::QueryStats stats;
  std::vector<double> got = index.Query(5, &stats);
  std::vector<double> oracle = ExactPpvDense(g, 5, options.ppr);
  // Unexpanded mass m contributes at most m to any coordinate.
  EXPECT_LE(LInfNorm(got, oracle), stats.remaining_mass + 1e-6);
}

TEST(FastPpv, MoreHubsCutQueryWorkOnSkewedGraphs) {
  // The Fast-100 vs Fast-1000 trade-off: more hubs block the base push
  // earlier, shifting work into precomputed vectors.
  Graph g = WebLike(0.05);
  FastPpvOptions few;
  few.num_hubs = 10;
  FastPpvOptions many = few;
  many.num_hubs = 200;
  FastPpvIndex small = FastPpvIndex::Build(g, few);
  FastPpvIndex large = FastPpvIndex::Build(g, many);
  EXPECT_GT(large.TotalBytes(), small.TotalBytes());
  EXPECT_EQ(small.hubs().size(), 10u);
  EXPECT_EQ(large.hubs().size(), 200u);
}

}  // namespace
}  // namespace dppr
