#include "dppr/graph/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "test_util.h"

namespace dppr {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dppr_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

bool SameGraph(const Graph& a, const Graph& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges()) {
    return false;
  }
  for (NodeId u = 0; u < a.num_nodes(); ++u) {
    auto na = a.OutNeighbors(u);
    auto nb = b.OutNeighbors(u);
    if (!std::equal(na.begin(), na.end(), nb.begin(), nb.end())) return false;
  }
  return true;
}

TEST_F(IoTest, EdgeListRoundTrip) {
  Graph g = testing::RandomDigraph(80, 3.0, 3);
  ASSERT_TRUE(SaveEdgeList(g, Path("g.txt")).ok());
  auto loaded = LoadEdgeList(Path("g.txt"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(SameGraph(g, loaded.value()));
}

TEST_F(IoTest, EdgeListSkipsComments) {
  std::ofstream out(Path("c.txt"));
  out << "# SNAP-style comment\n% another comment\n0 1\n1 2\n\n2 0\n";
  out.close();
  auto loaded = LoadEdgeList(Path("c.txt"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_nodes(), 3u);
  EXPECT_EQ(loaded.value().num_edges(), 3u);
}

TEST_F(IoTest, EdgeListRejectsGarbage) {
  std::ofstream out(Path("bad.txt"));
  out << "0 1\nnot an edge\n";
  out.close();
  auto loaded = LoadEdgeList(Path("bad.txt"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(IoTest, MissingFileIsIoError) {
  auto loaded = LoadEdgeList(Path("does_not_exist.txt"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(IoTest, BinaryRoundTrip) {
  Graph g = testing::RandomDigraph(200, 4.0, 9);
  ASSERT_TRUE(SaveBinary(g, Path("g.bin")).ok());
  auto loaded = LoadBinary(Path("g.bin"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(SameGraph(g, loaded.value()));
}

TEST_F(IoTest, BinaryRejectsWrongMagic) {
  std::ofstream out(Path("junk.bin"), std::ios::binary);
  out << "this is not a graph file at all";
  out.close();
  auto loaded = LoadBinary(Path("junk.bin"));
  EXPECT_FALSE(loaded.ok());
}

TEST_F(IoTest, BinaryIsSmallerThanText) {
  Graph g = testing::RandomDigraph(300, 5.0, 4);
  ASSERT_TRUE(SaveEdgeList(g, Path("g.txt")).ok());
  ASSERT_TRUE(SaveBinary(g, Path("g.bin")).ok());
  EXPECT_LT(std::filesystem::file_size(Path("g.bin")),
            std::filesystem::file_size(Path("g.txt")));
}

TEST_F(IoTest, LoadAppliesBuildOptions) {
  std::ofstream out(Path("d.txt"));
  out << "0 1\n";  // node 1 dangling
  out.close();
  GraphBuildOptions options;
  options.dangling = DanglingPolicy::kSelfLoop;
  auto loaded = LoadEdgeList(Path("d.txt"), options);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().CountDanglingNodes(), 0u);
}

}  // namespace
}  // namespace dppr
