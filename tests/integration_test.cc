#include <gtest/gtest.h>

#include "dppr/common/rng.h"
#include "dppr/core/hgpa.h"
#include "dppr/graph/datasets.h"
#include "dppr/ppr/metrics.h"
#include "dppr/ppr/power_iteration.h"
#include "test_util.h"

namespace dppr {
namespace {

/// End-to-end pipeline on scaled paper datasets at the paper's default
/// tolerance (1e-4): build hierarchy -> precompute -> distribute -> query,
/// compared against power iteration as the paper's §6.2.6 does.
class PipelineTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PipelineTest, HgpaTracksPowerIterationAtPaperTolerance) {
  Graph g = DatasetByName(GetParam(), 0.08);
  HgpaOptions options;  // paper defaults: α=0.15, ε=1e-4
  options.hierarchy.max_levels = 6;
  auto pre = HgpaPrecomputation::RunHgpa(g, options);
  ASSERT_TRUE(pre->hierarchy().Validate(g).ok());
  HgpaIndex index = HgpaIndex::Distribute(pre, 6);
  HgpaQueryEngine engine(index);

  PowerIterationOptions pi;
  pi.dangling = PowerDangling::kAbsorb;
  pi.ppr.tolerance = 1e-4;

  Rng rng(42);
  double worst_l1 = 0.0;
  for (int i = 0; i < 5; ++i) {
    NodeId q = static_cast<NodeId>(rng.Uniform(g.num_nodes()));
    std::vector<double> hgpa = engine.QueryDense(q);
    std::vector<double> power = PowerIterationPpv(g, q, pi).ppv;
    worst_l1 = std::max(worst_l1, AverageL1(hgpa, power));
    // Both methods run at tolerance 1e-4; per §6.2.6 the norms land around
    // the tolerance's order of magnitude.
    EXPECT_LT(LInfNorm(hgpa, power), 3e-3) << GetParam() << " query " << q;
  }
  EXPECT_LT(worst_l1, 1e-4) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Datasets, PipelineTest,
                         ::testing::Values("email", "web", "youtube"));

TEST(Integration, MachineSweepKeepsCommBoundedAndBalanced) {
  Graph g = EmailLike(0.15);
  HgpaOptions options;
  options.hierarchy.max_levels = 5;
  auto pre = HgpaPrecomputation::RunHgpa(g, options);

  size_t previous_max_bytes = SIZE_MAX;
  for (size_t machines : {2u, 4u, 8u}) {
    HgpaIndex index = HgpaIndex::Distribute(pre, machines);
    HgpaQueryEngine engine(index);
    QueryMetrics metrics;
    engine.Query(1, &metrics);
    // Theorem 4: at most one message per machine (routing may skip
    // non-contributing machines), bounded by O(n|V|).
    EXPECT_GE(metrics.comm.messages, 1u);
    EXPECT_LE(metrics.comm.messages, machines);
    EXPECT_LT(metrics.comm.bytes, machines * g.num_nodes() * 16);

    // Storage drops (or at worst stays) as machines are added.
    EXPECT_LE(index.MaxMachineBytes(), previous_max_bytes);
    previous_max_bytes = index.MaxMachineBytes();

    // Load balance: no machine hoards more than ~3x the mean bytes.
    size_t total = index.TotalBytes();
    EXPECT_LT(index.MaxMachineBytes(), 3 * total / machines + 4096)
        << machines << " machines";
  }
}

TEST(Integration, GpaAndHgpaAgreeOnRealisticDataset) {
  Graph g = YoutubeLike(0.05);
  HgpaOptions options;
  options.ppr.tolerance = 1e-6;
  options.hierarchy.max_levels = 5;
  auto hgpa = HgpaPrecomputation::RunHgpa(g, options);
  auto gpa = HgpaPrecomputation::RunGpa(g, 6, options);
  HgpaQueryEngine hgpa_engine{HgpaIndex::Distribute(hgpa, 4)};
  HgpaQueryEngine gpa_engine{HgpaIndex::Distribute(gpa, 4)};
  for (NodeId q : {NodeId{3}, NodeId{100}, NodeId{500}}) {
    std::vector<double> a = hgpa_engine.QueryDense(q);
    std::vector<double> b = gpa_engine.QueryDense(q);
    EXPECT_LT(LInfNorm(a, b), 1e-4) << "query " << q;
  }
}

TEST(Integration, HierarchicalStorageBeatsFlatGpa) {
  // §4.5: HGPA's space cost is at most GPA's (same leaf partitioning).
  Graph g = WebLike(0.08);
  HgpaOptions options;
  options.hierarchy.max_levels = 6;
  auto hgpa = HgpaPrecomputation::RunHgpa(g, options);
  auto gpa = HgpaPrecomputation::RunGpa(
      g, static_cast<uint32_t>(hgpa->hierarchy().leaves().size()), options);
  EXPECT_LT(hgpa->TotalBytes(), gpa->TotalBytes());
}

TEST(Integration, DeeperHierarchiesShrinkOfflineCost) {
  // Figures 15-16 shape: more levels => less precomputation space/time.
  Graph g = WebLike(0.06);
  HgpaOptions shallow;
  shallow.hierarchy.max_levels = 1;
  HgpaOptions deep;
  deep.hierarchy.max_levels = 6;
  auto pre_shallow = HgpaPrecomputation::RunHgpa(g, shallow);
  auto pre_deep = HgpaPrecomputation::RunHgpa(g, deep);
  EXPECT_LT(pre_deep->TotalBytes(), pre_shallow->TotalBytes());
}

}  // namespace
}  // namespace dppr
