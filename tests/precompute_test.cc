#include "dppr/core/precompute.h"

#include <gtest/gtest.h>

#include "dppr/store/vector_record.h"
#include "dppr/graph/datasets.h"
#include "test_util.h"

namespace dppr {
namespace {

using ::dppr::testing::RandomDigraph;

HgpaOptions SmallOptions() {
  HgpaOptions options;
  options.ppr.tolerance = 1e-8;
  options.hierarchy.max_levels = 3;
  options.hierarchy.min_subgraph_size = 4;
  return options;
}

TEST(Precompute, EveryHubAndLeafNodeHasItems) {
  Graph g = RandomDigraph(120, 3.0, 7);
  auto pre = HgpaPrecomputation::RunHgpa(g, SmallOptions());
  const Hierarchy& h = pre->hierarchy();
  for (const auto& sub : h.subgraphs()) {
    for (NodeId hub : sub.hubs) {
      EXPECT_NE(pre->FindItem(VectorKind::kHubPartial, sub.id, hub), nullptr);
      EXPECT_NE(pre->FindItem(VectorKind::kSkeletonColumn, sub.id, hub), nullptr);
    }
    if (sub.children.empty()) {
      for (NodeId u : sub.nodes) {
        EXPECT_NE(pre->FindItem(VectorKind::kOwnVector, sub.id, u), nullptr);
      }
    }
  }
}

TEST(Precompute, ItemCountMatchesLayoutFormula) {
  Graph g = RandomDigraph(100, 3.0, 21);
  auto pre = HgpaPrecomputation::RunHgpa(g, SmallOptions());
  size_t expected = 0;
  for (const auto& sub : pre->hierarchy().subgraphs()) {
    expected += 2 * sub.hubs.size();
    if (sub.children.empty()) expected += sub.nodes.size();
  }
  EXPECT_EQ(pre->items().size(), expected);
}

TEST(Precompute, PartialVectorSupportStaysInsideSubgraph) {
  Graph g = RandomDigraph(150, 3.0, 33);
  auto pre = HgpaPrecomputation::RunHgpa(g, SmallOptions());
  const Hierarchy& h = pre->hierarchy();
  for (const auto& item : pre->items()) {
    const auto& sub = h.subgraph(item.sub);
    for (const auto& entry : item.vec.entries()) {
      bool inside = std::binary_search(sub.nodes.begin(), sub.nodes.end(),
                                       entry.index);
      ASSERT_TRUE(inside) << "vector of kind " << static_cast<int>(item.kind)
                          << " for node " << item.node << " leaks outside "
                          << "subgraph " << item.sub;
    }
  }
}

TEST(Precompute, HubPartialVectorsDropAllHubCoordinates) {
  // Stored hub partials carry no hub coordinates of their subgraph (those
  // are reconstructed from skeleton columns at query time).
  Graph g = RandomDigraph(150, 3.0, 90);
  auto pre = HgpaPrecomputation::RunHgpa(g, SmallOptions());
  const Hierarchy& h = pre->hierarchy();
  for (const auto& item : pre->items()) {
    if (item.kind != VectorKind::kHubPartial) continue;
    const auto& sub = h.subgraph(item.sub);
    for (NodeId hub : sub.hubs) {
      EXPECT_DOUBLE_EQ(item.vec.ValueAt(hub), 0.0)
          << "partial of hub " << item.node << " touches hub coordinate " << hub;
    }
  }
}

TEST(Precompute, DeterministicAcrossRuns) {
  Graph g = RandomDigraph(100, 3.0, 55);
  auto a = HgpaPrecomputation::RunHgpa(g, SmallOptions());
  auto b = HgpaPrecomputation::RunHgpa(g, SmallOptions());
  ASSERT_EQ(a->items().size(), b->items().size());
  for (size_t i = 0; i < a->items().size(); ++i) {
    EXPECT_EQ(a->items()[i].vec, b->items()[i].vec) << "item " << i;
    EXPECT_EQ(a->items()[i].node, b->items()[i].node);
  }
}

TEST(Precompute, SequentialMatchesParallel) {
  Graph g = RandomDigraph(80, 3.0, 66);
  HgpaOptions options = SmallOptions();
  auto parallel = HgpaPrecomputation::RunHgpa(g, options);
  options.parallel = false;
  auto sequential = HgpaPrecomputation::RunHgpa(g, options);
  ASSERT_EQ(parallel->items().size(), sequential->items().size());
  for (size_t i = 0; i < parallel->items().size(); ++i) {
    EXPECT_EQ(parallel->items()[i].vec, sequential->items()[i].vec);
  }
}

TEST(Precompute, BytesMatchSerializedSizes) {
  Graph g = RandomDigraph(90, 3.0, 12);
  auto pre = HgpaPrecomputation::RunHgpa(g, SmallOptions());
  size_t total = 0;
  for (const auto& item : pre->items()) {
    EXPECT_EQ(item.bytes, item.vec.SerializedBytes());
    total += item.bytes;
  }
  EXPECT_EQ(pre->TotalBytes(), total);
}

TEST(Precompute, StoragePruneShrinksEveryKind) {
  Graph g = RandomDigraph(200, 3.0, 18);
  HgpaOptions options = SmallOptions();
  options.ppr.tolerance = 1e-7;
  auto exact = HgpaPrecomputation::RunHgpa(g, options);
  auto pruned = exact->PrunedCopy(1e-3);
  ASSERT_EQ(exact->items().size(), pruned->items().size());
  EXPECT_LT(pruned->TotalBytes(), exact->TotalBytes());
  for (size_t i = 0; i < pruned->items().size(); ++i) {
    for (const auto& e : pruned->items()[i].vec.entries()) {
      EXPECT_GT(std::abs(e.value), 1e-3);
    }
  }
}

TEST(Precompute, GpaFlatHierarchyHasSingleSplitLevel) {
  Graph g = RandomDigraph(100, 3.0, 42);
  auto pre = HgpaPrecomputation::RunGpa(g, 4, SmallOptions());
  EXPECT_LE(pre->hierarchy().num_levels(), 2u);
  // Root holds all hubs; every other subgraph is a leaf.
  for (const auto& sub : pre->hierarchy().subgraphs()) {
    if (sub.id != pre->hierarchy().root()) {
      EXPECT_TRUE(sub.children.empty());
    }
  }
}

}  // namespace
}  // namespace dppr
