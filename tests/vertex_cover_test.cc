#include "dppr/partition/vertex_cover.h"

#include <gtest/gtest.h>

#include "dppr/common/rng.h"

namespace dppr {
namespace {

std::vector<uint8_t> Flags(size_t n, const std::vector<NodeId>& cover) {
  std::vector<uint8_t> flags(n, 0);
  for (NodeId u : cover) flags[u] = 1;
  return flags;
}

// Minimum vertex cover by exhaustive search (oracle for tiny inputs).
size_t BruteForceCoverSize(size_t n, const EdgeList& edges) {
  for (size_t size = 0; size <= n; ++size) {
    // Try all subsets of exactly `size` nodes.
    std::vector<bool> pick(n, false);
    std::fill(pick.end() - static_cast<ptrdiff_t>(size), pick.end(), true);
    do {
      std::vector<uint8_t> flags(n, 0);
      for (size_t u = 0; u < n; ++u) flags[u] = pick[u];
      if (IsVertexCover(edges, flags)) return size;
    } while (std::next_permutation(pick.begin(), pick.end()));
  }
  return n;
}

TEST(VertexCover, EmptyEdgesNeedNoCover) {
  EXPECT_TRUE(GreedyVertexCover(5, {}).empty());
  EXPECT_TRUE(TwoApproxVertexCover(5, {}).empty());
}

TEST(VertexCover, StarIsCoveredByCenter) {
  EdgeList edges{{0, 1}, {0, 2}, {0, 3}, {0, 4}};
  std::vector<NodeId> cover = GreedyVertexCover(5, edges);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], 0u);
}

TEST(VertexCover, IsVertexCoverDetectsGaps) {
  EdgeList edges{{0, 1}, {2, 3}};
  EXPECT_TRUE(IsVertexCover(edges, {1, 0, 1, 0}));
  EXPECT_FALSE(IsVertexCover(edges, {1, 0, 0, 0}));
}

class CoverPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoverPropertyTest, GreedyIsValidAndNearOptimal) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  size_t n = 4 + rng.Uniform(6);
  EdgeList edges;
  for (size_t e = 0; e < 3 + rng.Uniform(10); ++e) {
    NodeId u = static_cast<NodeId>(rng.Uniform(n));
    NodeId v = static_cast<NodeId>(rng.Uniform(n));
    if (u != v) edges.emplace_back(u, v);
  }
  std::vector<NodeId> greedy = GreedyVertexCover(n, edges);
  EXPECT_TRUE(IsVertexCover(edges, Flags(n, greedy))) << "seed=" << seed;

  size_t optimal = BruteForceCoverSize(n, edges);
  EXPECT_LE(greedy.size(), 2 * optimal + 1) << "seed=" << seed;
}

TEST_P(CoverPropertyTest, TwoApproxIsValidAndWithinFactorTwo) {
  uint64_t seed = GetParam();
  Rng rng(seed ^ 0xABCD);
  size_t n = 4 + rng.Uniform(6);
  EdgeList edges;
  for (size_t e = 0; e < 3 + rng.Uniform(10); ++e) {
    NodeId u = static_cast<NodeId>(rng.Uniform(n));
    NodeId v = static_cast<NodeId>(rng.Uniform(n));
    if (u != v) edges.emplace_back(u, v);
  }
  std::vector<NodeId> cover = TwoApproxVertexCover(n, edges);
  EXPECT_TRUE(IsVertexCover(edges, Flags(n, cover))) << "seed=" << seed;
  size_t optimal = BruteForceCoverSize(n, edges);
  EXPECT_LE(cover.size(), 2 * optimal) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverPropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{31}));

}  // namespace
}  // namespace dppr
