#include "dppr/graph/graph.h"

#include <gtest/gtest.h>

#include "dppr/graph/graph_builder.h"
#include "dppr/graph/graph_stats.h"
#include "test_util.h"

namespace dppr {
namespace {

TEST(GraphBuilder, EmptyGraph) {
  GraphBuilder builder(0);
  Graph g = builder.Build();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphBuilder, BasicCsrLayout) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(2, 3);
  Graph g = builder.Build();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(1), 0u);
  EXPECT_EQ(g.out_degree(2), 1u);
  auto nbrs = g.OutNeighbors(0);
  EXPECT_EQ(std::vector<NodeId>(nbrs.begin(), nbrs.end()),
            (std::vector<NodeId>{1, 2}));
}

TEST(GraphBuilder, AdjacencyIsSorted) {
  GraphBuilder builder(5);
  builder.AddEdge(0, 4);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 3);
  Graph g = builder.Build();
  auto nbrs = g.OutNeighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(GraphBuilder, DedupesParallelEdges) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);
  Graph deduped = builder.Build();
  EXPECT_EQ(deduped.num_edges(), 1u);

  GraphBuildOptions keep;
  keep.dedupe_parallel_edges = false;
  Graph kept = builder.Build(keep);
  EXPECT_EQ(kept.num_edges(), 3u);
  EXPECT_EQ(kept.out_degree(0), 3u);
}

TEST(GraphBuilder, RemovesSelfLoopsWhenAsked) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 0);
  builder.AddEdge(0, 1);
  GraphBuildOptions options;
  options.remove_self_loops = true;
  Graph g = builder.Build(options);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(GraphBuilder, SelfLoopPolicyFixesDangling) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);  // 1 and 2 dangling
  GraphBuildOptions options;
  options.dangling = DanglingPolicy::kSelfLoop;
  Graph g = builder.Build(options);
  EXPECT_EQ(g.CountDanglingNodes(), 0u);
  EXPECT_TRUE(g.HasEdge(1, 1));
  EXPECT_TRUE(g.HasEdge(2, 2));
  EXPECT_FALSE(g.HasEdge(0, 0));  // non-dangling untouched
}

TEST(GraphBuilder, InEdgesMirrorOutEdges) {
  Graph g = testing::RandomDigraph(50, 3.0, 99);
  ASSERT_TRUE(g.has_in_edges());
  size_t out_total = 0;
  size_t in_total = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    out_total += g.out_degree(u);
    in_total += g.in_degree(u);
    for (NodeId v : g.OutNeighbors(u)) {
      auto ins = g.InNeighbors(v);
      EXPECT_TRUE(std::binary_search(ins.begin(), ins.end(), u))
          << "edge " << u << "->" << v << " missing from in-adjacency";
    }
  }
  EXPECT_EQ(out_total, in_total);
  EXPECT_EQ(out_total, g.num_edges());
}

TEST(Graph, HasEdgeBinarySearch) {
  GraphBuilder builder(10);
  builder.AddEdge(3, 1);
  builder.AddEdge(3, 5);
  builder.AddEdge(3, 9);
  Graph g = builder.Build();
  EXPECT_TRUE(g.HasEdge(3, 5));
  EXPECT_FALSE(g.HasEdge(3, 4));
  EXPECT_FALSE(g.HasEdge(5, 3));
}

TEST(Graph, MemoryBytesGrowsWithEdges) {
  Graph small = testing::RandomDigraph(100, 2.0, 1);
  Graph large = testing::RandomDigraph(100, 8.0, 1);
  EXPECT_LT(small.MemoryBytes(), large.MemoryBytes());
}

TEST(GraphStats, CountsComponentsAndDegrees) {
  // Two disjoint 2-cycles plus one isolated self-loop node.
  GraphBuilder builder(5);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  builder.AddEdge(2, 3);
  builder.AddEdge(3, 2);
  builder.AddEdge(4, 4);
  Graph g = builder.Build();
  GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.num_nodes, 5u);
  EXPECT_EQ(stats.num_edges, 5u);
  EXPECT_EQ(stats.num_weak_components, 3u);
  EXPECT_EQ(stats.largest_weak_component, 2u);
  EXPECT_EQ(stats.num_self_loops, 1u);
  EXPECT_EQ(stats.num_dangling, 0u);
  EXPECT_EQ(stats.max_out_degree, 1u);
}

TEST(GraphStats, DegreeHistogramBucketsCorrectly) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(0, 3);
  builder.AddEdge(1, 0);
  Graph g = builder.Build();
  std::vector<size_t> hist = OutDegreeHistogram(g, 2);
  // degree 0: nodes 2,3; degree 1: node 1; degree >= 2 (capped): node 0.
  EXPECT_EQ(hist[0], 2u);
  EXPECT_EQ(hist[1], 1u);
  EXPECT_EQ(hist[2], 1u);
}

}  // namespace
}  // namespace dppr
