#include "dppr/dist/cluster.h"

#include <gtest/gtest.h>

#include "dppr/dist/network.h"

namespace dppr {
namespace {

TEST(NetworkModel, TransferTimeScalesWithBytes) {
  NetworkModel net;
  double small = net.TransferSeconds(1024);
  double large = net.TransferSeconds(1024 * 1024);
  EXPECT_GT(large, small);
  EXPECT_GE(small, net.latency_seconds);
}

TEST(NetworkModel, PaperScaleSanity) {
  // ~1.5 MB over a 100 Mb switch should take on the order of 100 ms — the
  // regime the paper's Figure 13/28 discussion relies on.
  NetworkModel net;
  double t = net.TransferSeconds(1'500'000);
  EXPECT_GT(t, 0.05);
  EXPECT_LT(t, 0.5);
}

TEST(CommStats, AccumulatesMessages) {
  CommStats stats;
  stats.Record(1000);
  stats.Record(24);
  EXPECT_EQ(stats.messages, 2u);
  EXPECT_EQ(stats.bytes, 1024u);
  EXPECT_DOUBLE_EQ(stats.kilobytes(), 1.0);

  CommStats more;
  more.Record(1024 * 1024);
  stats += more;
  EXPECT_EQ(stats.messages, 3u);
  EXPECT_DOUBLE_EQ(stats.megabytes(), 1.0 + 1.0 / 1024.0);
}

TEST(MachineTimeLedger, TracksPerMachineTotals) {
  MachineTimeLedger ledger(3);
  ledger.Add(0, 1.0);
  ledger.Add(1, 2.5);
  ledger.Add(0, 0.5);
  EXPECT_DOUBLE_EQ(ledger.Seconds(0), 1.5);
  EXPECT_DOUBLE_EQ(ledger.MaxSeconds(), 2.5);
  EXPECT_DOUBLE_EQ(ledger.TotalSeconds(), 4.0);
}

TEST(RoundMetrics, SimulatedSecondsComposesAllTerms) {
  RoundMetrics metrics;
  metrics.machine_seconds = {0.010, 0.030, 0.020};
  metrics.to_coordinator.Record(125'000);  // 10 ms at 12.5 MB/s
  metrics.to_coordinator.Record(125'000);
  metrics.coordinator_seconds = 0.005;
  NetworkModel net;
  double expected = 0.030 + (250'000 / 12.5e6) + 2 * net.latency_seconds + 0.005;
  EXPECT_NEAR(metrics.SimulatedSeconds(net), expected, 1e-12);
}

TEST(SimCluster, RunsTaskOnEveryMachine) {
  SimCluster cluster(5);
  auto result = cluster.RunRound([](size_t machine) {
    return std::vector<uint8_t>(machine + 1, static_cast<uint8_t>(machine));
  });
  ASSERT_EQ(result.payloads.size(), 5u);
  for (size_t m = 0; m < 5; ++m) {
    EXPECT_EQ(result.payloads[m].size(), m + 1);
    if (!result.payloads[m].empty()) {
      EXPECT_EQ(result.payloads[m][0], static_cast<uint8_t>(m));
    }
  }
  EXPECT_EQ(result.metrics.to_coordinator.messages, 5u);
  EXPECT_EQ(result.metrics.to_coordinator.bytes, 1u + 2 + 3 + 4 + 5);
  EXPECT_EQ(result.metrics.machine_seconds.size(), 5u);
}

TEST(SimCluster, ManyMoreMachinesThanCores) {
  SimCluster cluster(64);
  std::atomic<int> calls{0};
  auto result = cluster.RunRound([&](size_t) {
    calls.fetch_add(1);
    return std::vector<uint8_t>{1};
  });
  EXPECT_EQ(calls.load(), 64);
  EXPECT_EQ(result.metrics.to_coordinator.messages, 64u);
}

}  // namespace
}  // namespace dppr
