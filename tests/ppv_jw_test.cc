#include "dppr/baseline/ppv_jw.h"

#include <gtest/gtest.h>

#include "dppr/core/precompute.h"
#include "dppr/graph/datasets.h"
#include "dppr/ppr/dense_solver.h"
#include "dppr/ppr/metrics.h"
#include "test_util.h"

namespace dppr {
namespace {

using ::dppr::testing::RandomDigraph;

PpvJwOptions Tight(size_t hubs) {
  PpvJwOptions options;
  options.ppr.tolerance = 1e-10;
  options.num_hubs = hubs;
  return options;
}

TEST(PpvJw, ExactOnTinyGraph) {
  Graph g = PaperFigure3Graph();
  PpvJwIndex index = PpvJwIndex::Build(g, Tight(2));
  for (NodeId q = 0; q < g.num_nodes(); ++q) {
    std::vector<double> got = index.Query(q);
    std::vector<double> oracle = ExactPpvDense(g, q, Tight(2).ppr);
    EXPECT_LT(LInfNorm(got, oracle), 1e-7) << "query " << q;
  }
}

TEST(PpvJw, HubsAreHighPageRankNodes) {
  Graph g = RandomDigraph(200, 3.0, 5);
  PpvJwIndex index = PpvJwIndex::Build(g, Tight(8));
  EXPECT_EQ(index.hubs().size(), 8u);
  EXPECT_TRUE(std::is_sorted(index.hubs().begin(), index.hubs().end()));
}

class PpvJwPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PpvJwPropertyTest, Eq4IsExactForAnyHubSet) {
  // §2.3: PPV-JW is exact for arbitrary (non-separator) hub sets — only its
  // space is bad. Queries include hub nodes themselves.
  uint64_t seed = GetParam();
  Graph g = RandomDigraph(70, 3.0, seed);
  PpvJwIndex index = PpvJwIndex::Build(g, Tight(1 + seed % 12));
  NodeId hub_query = index.hubs().front();
  NodeId other_query = static_cast<NodeId>(seed % g.num_nodes());
  for (NodeId q : {hub_query, other_query}) {
    std::vector<double> got = index.Query(q);
    std::vector<double> oracle = ExactPpvDense(g, q, Tight(1).ppr);
    EXPECT_LT(LInfNorm(got, oracle), 1e-6) << "seed=" << seed << " q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PpvJwPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(PpvJw, SpaceBlowsUpComparedToGpaOnCommunityGraph) {
  // The motivating comparison of §2.3/§3.2: PageRank hubs do not confine
  // partial-vector supports, separator hubs do.
  Graph g = YoutubeLike(0.04);
  HgpaOptions hgpa_options;
  auto gpa = HgpaPrecomputation::RunGpa(g, 4, hgpa_options);
  size_t gpa_hub_count = gpa->hierarchy().TotalHubCount();

  PpvJwOptions jw_options;
  jw_options.num_hubs = std::max<size_t>(1, gpa_hub_count);
  PpvJwIndex jw = PpvJwIndex::Build(g, jw_options);
  EXPECT_GT(jw.TotalBytes(), gpa->TotalBytes())
      << "JW hubs=" << jw_options.num_hubs << " GPA hubs=" << gpa_hub_count;
}

TEST(PpvJw, ReportsBuildCost) {
  Graph g = RandomDigraph(80, 3.0, 2);
  PpvJwIndex index = PpvJwIndex::Build(g, Tight(4));
  EXPECT_GT(index.TotalBytes(), 0u);
  EXPECT_GT(index.build_seconds(), 0.0);
}

}  // namespace
}  // namespace dppr
