#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dppr/common/rng.h"
#include "dppr/common/thread_pool.h"
#include "dppr/obs/metrics.h"
#include "dppr/obs/trace.h"
#include "json_util.h"

namespace dppr {
namespace {

using dppr::testing::JsonParser;
using dppr::testing::JsonValue;

// ---------------------------------------------------------------------------
// Histogram: bucket geometry and quantiles against a sorted-vector oracle
// ---------------------------------------------------------------------------

TEST(Histogram, BucketBoundsContainTheirValues) {
  Rng rng(7);
  std::vector<uint64_t> values = {0, 1, 63, 64, 65, 127, 128, 1000,
                                  (uint64_t{1} << 32) + 12345,
                                  ~uint64_t{0}};
  for (int i = 0; i < 2000; ++i) {
    // Log-uniform spread so every octave gets exercised, not just the small
    // ones a plain uniform draw would concentrate in.
    int bits = static_cast<int>(rng.Uniform(64));
    values.push_back(rng.Uniform(uint64_t{1} << bits | 1));
  }
  for (uint64_t v : values) {
    size_t idx = obs::Histogram::BucketIndex(v);
    ASSERT_LT(idx, obs::Histogram::kNumBuckets) << v;
    uint64_t lo = obs::Histogram::BucketLowerBound(idx);
    uint64_t hi = obs::Histogram::BucketUpperBound(idx);
    EXPECT_LE(lo, v) << "bucket " << idx;
    EXPECT_GE(hi, v) << "bucket " << idx;
    // The bounds belong to the bucket they describe.
    EXPECT_EQ(obs::Histogram::BucketIndex(lo), idx);
    EXPECT_EQ(obs::Histogram::BucketIndex(hi), idx);
    // Bounded relative error above the linear range: a bucket spans at most
    // 1/kSubBuckets of its octave.
    if (v >= obs::Histogram::kLinearBuckets) {
      EXPECT_LE(hi - lo + 1, std::max<uint64_t>(lo / obs::Histogram::kSubBuckets, 1))
          << "bucket " << idx << " too wide at value " << v;
    } else {
      EXPECT_EQ(lo, v);  // linear buckets are value-exact
      EXPECT_EQ(hi, v);
    }
  }
}

TEST(Histogram, QuantilesMatchSortedVectorOracle) {
  Rng rng(42);
  obs::Histogram hist;
  std::vector<uint64_t> oracle;
  for (int i = 0; i < 5000; ++i) {
    int bits = static_cast<int>(rng.Uniform(40));
    uint64_t v = rng.Uniform(uint64_t{1} << bits | 1);
    hist.Record(v);
    oracle.push_back(v);
  }
  std::sort(oracle.begin(), oracle.end());

  obs::Histogram::Snapshot snap = hist.TakeSnapshot();
  EXPECT_EQ(snap.total, oracle.size());
  for (double q : {0.001, 0.01, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0}) {
    size_t rank = static_cast<size_t>(std::ceil(q * oracle.size()));
    rank = std::max<size_t>(rank, 1);
    uint64_t exact = oracle[rank - 1];
    uint64_t reported = snap.Quantile(q);
    // Rank-exact at bucket resolution: the reported value is the upper bound
    // of the bucket holding the true order statistic — never below it, and
    // in the same bucket.
    EXPECT_GE(reported, exact) << "q=" << q;
    EXPECT_EQ(obs::Histogram::BucketIndex(reported),
              obs::Histogram::BucketIndex(exact))
        << "q=" << q;
  }
  EXPECT_EQ(obs::Histogram::BucketIndex(snap.Max()),
            obs::Histogram::BucketIndex(oracle.back()));
}

TEST(Histogram, SmallValueQuantilesAreValueExact) {
  // Everything below kLinearBuckets sits in unit buckets, so quantiles of
  // small samples (batch sizes, retry counts) are exact, not approximate.
  obs::Histogram hist;
  std::vector<uint64_t> oracle;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(64);
    hist.Record(v);
    oracle.push_back(v);
  }
  std::sort(oracle.begin(), oracle.end());
  obs::Histogram::Snapshot snap = hist.TakeSnapshot();
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    size_t rank = std::max<size_t>(
        static_cast<size_t>(std::ceil(q * oracle.size())), 1);
    EXPECT_EQ(snap.Quantile(q), oracle[rank - 1]) << "q=" << q;
  }
}

TEST(Histogram, SinceComputesWindowedView) {
  obs::Histogram hist;
  hist.Record(10);
  hist.Record(20);
  obs::Histogram::Snapshot baseline = hist.TakeSnapshot();
  hist.Record(30);
  hist.Record(40);
  obs::Histogram::Snapshot window = hist.TakeSnapshot().Since(baseline);
  EXPECT_EQ(window.total, 2u);
  EXPECT_EQ(window.sum, 70u);
  EXPECT_EQ(window.Quantile(0.5), 30u);
  EXPECT_EQ(window.Quantile(1.0), 40u);
}

TEST(Histogram, EmptySnapshotIsZero) {
  obs::Histogram hist;
  obs::Histogram::Snapshot snap = hist.TakeSnapshot();
  EXPECT_EQ(snap.total, 0u);
  EXPECT_EQ(snap.Quantile(0.5), 0u);
  EXPECT_EQ(snap.Max(), 0u);
  EXPECT_EQ(snap.Mean(), 0.0);
}

// ---------------------------------------------------------------------------
// Registry: concurrency and the one-name-one-metric contract
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, ConcurrentRecordingUnderThreadPool) {
  // Hot-path contract: many threads hammer the same handles with no locks.
  // This is the TSAN leg's target — a data race in Counter/Histogram/Get*
  // shows up here.
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("test.concurrent.count");
  obs::Histogram* hist = registry.GetHistogram("test.concurrent.lat_us");
  ThreadPool pool(8);
  constexpr size_t kTasks = 64;
  constexpr size_t kPerTask = 1000;
  pool.ParallelFor(kTasks, [&](size_t task) {
    // Resolving the same names concurrently must also be race-free and
    // idempotent.
    obs::Counter* same = registry.GetCounter("test.concurrent.count");
    EXPECT_EQ(same, counter);
    for (size_t i = 0; i < kPerTask; ++i) {
      same->Increment();
      hist->Record(task * kPerTask + i);
    }
  });
  EXPECT_EQ(counter->Value(), kTasks * kPerTask);
  EXPECT_EQ(hist->Count(), kTasks * kPerTask);
}

TEST(MetricsRegistry, HandlesSurviveManyRegistrations) {
  // Regression guard for handle stability: a pointer from an early Get* must
  // stay valid (and keep its value) after many later registrations land in
  // the same shards.
  obs::MetricsRegistry registry;
  obs::Counter* first = registry.GetCounter("stable.first");
  first->Add(41);
  for (int i = 0; i < 2000; ++i) {
    registry.GetCounter("stable.filler." + std::to_string(i))->Increment();
  }
  first->Increment();
  EXPECT_EQ(registry.GetCounter("stable.first"), first);
  EXPECT_EQ(first->Value(), 42u);
}

TEST(MetricsRegistryDeathTest, TypeMismatchDies) {
  obs::MetricsRegistry registry;
  registry.GetCounter("mismatch.name");
  EXPECT_DEATH(registry.GetHistogram("mismatch.name"), "");
}

TEST(MetricsRegistry, RenderTextIsPrometheusShaped) {
  obs::MetricsRegistry registry;
  registry.GetCounter("render.requests{server=\"0\"}")->Add(3);
  registry.GetGauge("render.depth")->Set(-2);
  obs::Histogram* hist = registry.GetHistogram("render.latency_us");
  hist->Record(100);
  hist->Record(200);
  std::string text = registry.RenderText();
  EXPECT_NE(text.find("dppr_render_requests{server=\"0\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("dppr_render_depth -2"), std::string::npos) << text;
  EXPECT_NE(text.find("dppr_render_latency_us_count 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(Tracer, DisabledPathRecordsNothing) {
  obs::Tracer tracer(/*enabled=*/false);
  {
    obs::TraceSpan span(tracer, obs::kCoordinatorLane, "noop");
    span.Arg("k", 1);
  }
  tracer.RecordComplete("direct", 0.0, 1.0, 0, {});
  // RecordComplete is the low-level hook — callers gate on enabled(), spans
  // gate themselves; either way nothing must be buffered while disabled.
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.dropped_events(), 0u);
}

TEST(Tracer, JsonRoundTripsWithWellFormedNesting) {
  obs::Tracer tracer(/*enabled=*/true);
  {
    obs::TraceSpan outer(tracer, obs::kCoordinatorLane, "outer");
    outer.Arg("round", 7);
    {
      obs::TraceSpan inner(tracer, obs::kCoordinatorLane, "inner");
      inner.Arg("machine", 3);
    }
  }
  {
    obs::TraceSpan machine(tracer, obs::MachineLane(2), "machine_work");
    machine.Arg("round", 7);
  }
  ASSERT_EQ(tracer.event_count(), 3u);

  JsonValue doc = JsonParser(tracer.RenderJson()).Parse();
  ASSERT_EQ(doc.kind, JsonValue::kObject);
  EXPECT_EQ(doc.at("displayTimeUnit").str, "ms");
  const JsonValue& events = doc.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::kArray);

  const JsonValue* outer = nullptr;
  const JsonValue* inner = nullptr;
  const JsonValue* machine = nullptr;
  bool saw_coordinator_name = false;
  bool saw_machine_name = false;
  for (const JsonValue& e : events.array) {
    ASSERT_EQ(e.kind, JsonValue::kObject);
    const std::string& ph = e.at("ph").str;
    if (ph == "M") {
      const std::string& label = e.at("args").at("name").str;
      if (label == "coordinator") saw_coordinator_name = true;
      if (label == "machine 2") saw_machine_name = true;
      continue;
    }
    ASSERT_EQ(ph, "X");
    const std::string& name = e.at("name").str;
    if (name == "outer") outer = &e;
    if (name == "inner") inner = &e;
    if (name == "machine_work") machine = &e;
  }
  EXPECT_TRUE(saw_coordinator_name);
  EXPECT_TRUE(saw_machine_name);
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(machine, nullptr);

  // Args survive the round trip.
  EXPECT_EQ(outer->at("args").at("round").number, 7.0);
  EXPECT_EQ(inner->at("args").at("machine").number, 3.0);
  EXPECT_EQ(machine->at("pid").number, obs::MachineLane(2));

  // Well-formed nesting: the inner span is fully contained in the outer one.
  double outer_start = outer->at("ts").number;
  double outer_end = outer_start + outer->at("dur").number;
  double inner_start = inner->at("ts").number;
  double inner_end = inner_start + inner->at("dur").number;
  EXPECT_GE(inner_start, outer_start);
  EXPECT_LE(inner_end, outer_end);
}

TEST(Tracer, ConcurrentSpansAreAllRecorded) {
  obs::Tracer tracer(/*enabled=*/true);
  ThreadPool pool(8);
  constexpr size_t kTasks = 64;
  constexpr size_t kSpansPerTask = 50;
  pool.ParallelFor(kTasks, [&](size_t task) {
    for (size_t i = 0; i < kSpansPerTask; ++i) {
      obs::TraceSpan span(tracer, obs::MachineLane(task % 4), "work");
      span.Arg("i", i);
    }
  });
  EXPECT_EQ(tracer.event_count(), kTasks * kSpansPerTask);
  EXPECT_EQ(tracer.dropped_events(), 0u);
  // The full concurrent dump still parses.
  JsonValue doc = JsonParser(tracer.RenderJson()).Parse();
  size_t spans = 0;
  for (const JsonValue& e : doc.at("traceEvents").array) {
    if (e.at("ph").str == "X") ++spans;
  }
  EXPECT_EQ(spans, kTasks * kSpansPerTask);
}

TEST(MetricsRegistry, RenderJsonParses) {
  obs::MetricsRegistry registry;
  registry.GetCounter("json.count{server=\"1\"}")->Add(5);
  registry.GetGauge("json.gauge")->Set(9);
  obs::Histogram* hist = registry.GetHistogram("json.lat_us");
  for (uint64_t v = 0; v < 100; ++v) hist->Record(v);
  JsonValue doc = JsonParser(registry.RenderJson()).Parse();
  EXPECT_EQ(doc.at("counters").at("json.count{server=\"1\"}").number, 5.0);
  EXPECT_EQ(doc.at("gauges").at("json.gauge").number, 9.0);
  const JsonValue& h = doc.at("histograms").at("json.lat_us");
  EXPECT_EQ(h.at("count").number, 100.0);
  // Rank-exact: rank ceil(0.5*100) = 50 of values 0..99 is 49, and the
  // linear range reports it value-exactly.
  EXPECT_EQ(h.at("p50").number, 49.0);
}

}  // namespace
}  // namespace dppr
