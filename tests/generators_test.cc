#include "dppr/graph/generators.h"

#include <gtest/gtest.h>

#include "dppr/graph/datasets.h"
#include "dppr/graph/graph_stats.h"

namespace dppr {
namespace {

TEST(Generators, ErdosRenyiHasRequestedShape) {
  Graph g = ErdosRenyi(500, 2000, 7);
  EXPECT_EQ(g.num_nodes(), 500u);
  // Dedupe may remove a few collisions.
  EXPECT_GT(g.num_edges(), 1900u);
  EXPECT_LE(g.num_edges(), 2000u);
}

TEST(Generators, Deterministic) {
  Graph a = ErdosRenyi(200, 800, 42);
  Graph b = ErdosRenyi(200, 800, 42);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId u = 0; u < a.num_nodes(); ++u) {
    auto na = a.OutNeighbors(u);
    auto nb = b.OutNeighbors(u);
    ASSERT_EQ(std::vector<NodeId>(na.begin(), na.end()),
              std::vector<NodeId>(nb.begin(), nb.end()));
  }
}

TEST(Generators, DifferentSeedsGiveDifferentGraphs) {
  Graph a = ErdosRenyi(200, 800, 1);
  Graph b = ErdosRenyi(200, 800, 2);
  bool differs = a.num_edges() != b.num_edges();
  for (NodeId u = 0; !differs && u < a.num_nodes(); ++u) {
    auto na = a.OutNeighbors(u);
    auto nb = b.OutNeighbors(u);
    differs = !std::equal(na.begin(), na.end(), nb.begin(), nb.end());
  }
  EXPECT_TRUE(differs);
}

TEST(Generators, PreferentialAttachmentIsSkewed) {
  Graph g = PreferentialAttachment(2000, 2, 5);
  GraphStats stats = ComputeGraphStats(g);
  // Heavy-tailed in-degree: the max should dwarf the average.
  EXPECT_GT(stats.max_in_degree, 20u);
  EXPECT_LT(stats.avg_out_degree, 3.0);
}

TEST(Generators, RmatRespectsScale) {
  Graph g = Rmat(10, 4000, 11);
  EXPECT_EQ(g.num_nodes(), 1024u);
  EXPECT_GT(g.num_edges(), 2000u);  // dedupe shrinks skewed edge lists
  GraphStats stats = ComputeGraphStats(g);
  EXPECT_GT(stats.max_out_degree, 10u);  // hubs exist
}

TEST(Generators, CommunityDigraphKeepsEdgesMostlyInternal) {
  size_t n = 2000;
  size_t communities = 20;
  Graph g = CommunityDigraph(n, communities, 4.0, 0.9, 3);
  size_t internal = 0;
  size_t total = 0;
  auto community_of = [&](NodeId u) { return (uint64_t{u} * communities) / n; };
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      ++total;
      if (community_of(u) == community_of(v)) ++internal;
    }
  }
  EXPECT_GT(static_cast<double>(internal) / static_cast<double>(total), 0.8);
}

TEST(Generators, CoAttendanceGraphIsSymmetricish) {
  Graph g = CoAttendanceGraph(500, 150, 8, 12, 9);
  size_t reciprocal = 0;
  size_t total = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      if (u == v) continue;
      ++total;
      if (g.HasEdge(v, u)) ++reciprocal;
    }
  }
  ASSERT_GT(total, 0u);
  // Pairs are added in both directions.
  EXPECT_EQ(reciprocal, total);
}

TEST(Datasets, AllNamedDatasetsBuildAndHaveNoDangling) {
  for (const std::string& name : DatasetNames()) {
    double scale = name == "pld_full" ? 0.02 : 0.05;  // keep the test fast
    Graph g = DatasetByName(name, scale);
    EXPECT_GT(g.num_nodes(), 0u) << name;
    EXPECT_GT(g.num_edges(), 0u) << name;
    EXPECT_EQ(g.CountDanglingNodes(), 0u) << name;
    EXPECT_TRUE(g.has_in_edges()) << name;
  }
}

TEST(Datasets, MeetupSeriesGrowsLinearly) {
  std::vector<size_t> nodes;
  for (int i = 1; i <= 5; ++i) nodes.push_back(MeetupLike(i, 0.1).num_nodes());
  for (size_t i = 1; i < nodes.size(); ++i) EXPECT_GT(nodes[i], nodes[i - 1]);
}

TEST(Datasets, PaperToyGraphsMatchTheFigures) {
  Graph fig3 = PaperFigure3Graph();
  EXPECT_EQ(fig3.num_nodes(), 6u);
  EXPECT_TRUE(fig3.HasEdge(0, 1));  // u1 -> u2
  EXPECT_TRUE(fig3.HasEdge(1, 4));  // u2 -> u5

  Graph fig2 = PaperFigure2Graph();
  EXPECT_EQ(fig2.num_nodes(), 5u);
  EXPECT_TRUE(fig2.HasEdge(0, 3));  // u1 -> u4 crosses the partition
}

TEST(Datasets, ScaleParameterControlsSize) {
  Graph small = EmailLike(0.05);
  Graph large = EmailLike(0.2);
  EXPECT_LT(small.num_nodes(), large.num_nodes());
}

}  // namespace
}  // namespace dppr
