#ifndef DPPR_TESTS_JSON_UTIL_H_
#define DPPR_TESTS_JSON_UTIL_H_

#include <cctype>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace dppr::testing {

/// Minimal JSON value + strict parser shared by the observability tests:
/// trace / registry round-trips (obs_test), trace-context propagation and
/// slow-query-log schema checks (trace_context_test), and the admin plane's
/// /statusz (admin_http_test). Any syntax error fails the test. Small on
/// purpose — the point is that the emitted JSON is well-formed enough for
/// real tooling, not to be a production parser.
struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    auto it = object.find(key);
    EXPECT_NE(it, object.end()) << "missing key " << key;
    static const JsonValue kEmpty;
    return it == object.end() ? kEmpty : it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue Parse() {
    JsonValue v = ParseValue();
    SkipSpace();
    EXPECT_EQ(pos_, text_.size()) << "trailing bytes after JSON document";
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() {
    SkipSpace();
    EXPECT_LT(pos_, text_.size()) << "unexpected end of JSON";
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void Expect(char c) {
    EXPECT_EQ(Peek(), c) << "at offset " << pos_;
    ++pos_;
  }

  JsonValue ParseValue() {
    switch (Peek()) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return ParseString();
      case 't': case 'f': return ParseBool();
      case 'n': return ParseNull();
      default: return ParseNumber();
    }
  }

  JsonValue ParseObject() {
    JsonValue v;
    v.kind = JsonValue::kObject;
    Expect('{');
    if (Peek() == '}') { ++pos_; return v; }
    for (;;) {
      JsonValue key = ParseString();
      Expect(':');
      v.object.emplace(key.str, ParseValue());
      if (Peek() == ',') { ++pos_; continue; }
      Expect('}');
      return v;
    }
  }

  JsonValue ParseArray() {
    JsonValue v;
    v.kind = JsonValue::kArray;
    Expect('[');
    if (Peek() == ']') { ++pos_; return v; }
    for (;;) {
      v.array.push_back(ParseValue());
      if (Peek() == ',') { ++pos_; continue; }
      Expect(']');
      return v;
    }
  }

  JsonValue ParseString() {
    JsonValue v;
    v.kind = JsonValue::kString;
    Expect('"');
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        EXPECT_LT(pos_, text_.size());
        switch (text_[pos_]) {
          case '"': v.str += '"'; break;
          case '\\': v.str += '\\'; break;
          case 'n': v.str += '\n'; break;
          case 't': v.str += '\t'; break;
          default:
            ADD_FAILURE() << "unsupported escape \\" << text_[pos_];
        }
        ++pos_;
      } else {
        v.str += text_[pos_++];
      }
    }
    Expect('"');
    return v;
  }

  JsonValue ParseBool() {
    JsonValue v;
    v.kind = JsonValue::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else {
      EXPECT_EQ(text_.compare(pos_, 5, "false"), 0);
      v.boolean = false;
      pos_ += 5;
    }
    return v;
  }

  JsonValue ParseNull() {
    EXPECT_EQ(text_.compare(pos_, 4, "null"), 0);
    pos_ += 4;
    return {};
  }

  JsonValue ParseNumber() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    EXPECT_GT(pos_, start) << "expected a number at offset " << start;
    JsonValue v;
    v.kind = JsonValue::kNumber;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace dppr::testing

#endif  // DPPR_TESTS_JSON_UTIL_H_
