#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "dppr/core/hgpa.h"
#include "dppr/serve/query_server.h"
#include "test_util.h"

namespace dppr {
namespace {

using ::dppr::testing::RandomDigraph;

HgpaOptions ServeTestOptions() {
  HgpaOptions options;
  options.ppr.tolerance = 1e-8;
  options.hierarchy.max_levels = 4;
  options.hierarchy.min_subgraph_size = 4;
  return options;
}

HgpaQueryEngine MakeEngine(const Graph& graph, size_t machines) {
  auto pre = HgpaPrecomputation::RunHgpa(graph, ServeTestOptions());
  return HgpaQueryEngine(HgpaIndex::Distribute(pre, machines));
}

TEST(ResultCaching, HitIsBitIdenticalAndSkipsTheRound) {
  Graph graph = RandomDigraph(80, 3.0, 11);
  HgpaQueryEngine engine = MakeEngine(graph, 3);
  ServeOptions options;
  options.result_cache_bytes = 4 << 20;
  QueryServer server(std::move(engine), options);

  QueryServer::Response miss = server.Query(9);
  EXPECT_FALSE(miss.cache_hit);
  QueryServer::Response hit = server.Query(9);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.ppv, miss.ppv);
  EXPECT_EQ(hit.metrics.comm.bytes, 0u);
  EXPECT_EQ(hit.metrics.machines_contacted, 0u);

  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.rounds, 1u);
  EXPECT_EQ(stats.result_cache_hits, 1u);
  EXPECT_EQ(stats.result_cache_misses, 1u);
  EXPECT_GT(stats.result_cache_bytes, 0u);
}

TEST(ResultCaching, PreferenceSetsAreNeverCached) {
  Graph graph = RandomDigraph(60, 3.0, 13);
  HgpaQueryEngine engine = MakeEngine(graph, 3);
  ServeOptions options;
  options.result_cache_bytes = 4 << 20;
  QueryServer server(std::move(engine), options);

  std::vector<HgpaQueryEngine::Preference> prefs{{5, 0.6}, {44, 0.4}};
  EXPECT_FALSE(server.QueryPreferenceSet(prefs).cache_hit);
  EXPECT_FALSE(server.QueryPreferenceSet(prefs).cache_hit);
  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.result_cache_hits, 0u);
  EXPECT_EQ(stats.rounds, 2u);
}

TEST(ResultCaching, InvalidateForcesRecompute) {
  Graph graph = RandomDigraph(60, 3.0, 19);
  HgpaQueryEngine engine = MakeEngine(graph, 3);
  ServeOptions options;
  options.result_cache_bytes = 4 << 20;
  QueryServer server(std::move(engine), options);

  SparseVector first = server.Query(4).ppv;
  EXPECT_TRUE(server.Query(4).cache_hit);
  server.Invalidate(4);
  QueryServer::Response recomputed = server.Query(4);
  EXPECT_FALSE(recomputed.cache_hit);
  EXPECT_EQ(recomputed.ppv, first);

  EXPECT_TRUE(server.Query(4).cache_hit);
  server.InvalidateAll();
  EXPECT_FALSE(server.Query(4).cache_hit);
  EXPECT_EQ(server.Stats().result_cache_evictions, 0u);
}

TEST(ResultCaching, TinyBudgetEvictsLru) {
  Graph graph = RandomDigraph(80, 3.0, 23);
  HgpaQueryEngine engine = MakeEngine(graph, 3);
  ServeOptions options;
  // One shard, budget smaller than two PPVs: inserting a second entry must
  // evict the first.
  options.result_cache_bytes = 0;
  QueryServer server(std::move(engine), options);
  SparseVector sample = server.Query(0).ppv;
  const size_t one_entry = sample.MemoryBytes() + 256;

  // Unique registry label per construction: the metrics registry is
  // process-global, so a reused label would accumulate counts across
  // --gtest_repeat iterations.
  static std::atomic<int> instance{0};
  ResultCache cache(ResultCache::Options{one_entry, 1},
                    "{server=\"evict" +
                        std::to_string(instance.fetch_add(1)) + "\"}");
  ASSERT_TRUE(cache.enabled());
  cache.Insert(1, sample);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_NE(cache.Find(1), nullptr);
  cache.Insert(2, sample);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.Find(1), nullptr);
  auto hit = cache.Find(2);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, sample);
  EXPECT_EQ(cache.evictions(), 1u);
  // The pinned shared_ptr stays valid after its entry is evicted.
  cache.InvalidateAll();
  EXPECT_EQ(*hit, sample);
  EXPECT_EQ(cache.bytes(), 0);
}

TEST(ResultCaching, TopKServesFromCache) {
  Graph graph = RandomDigraph(70, 3.0, 41);
  HgpaQueryEngine engine = MakeEngine(graph, 3);
  ServeOptions options;
  options.result_cache_bytes = 4 << 20;
  QueryServer server(std::move(engine), options);

  QueryServer::TopKResponse cold = server.QueryTopK(8, 5);
  EXPECT_FALSE(cold.cache_hit);
  QueryServer::TopKResponse warm = server.QueryTopK(8, 5);
  EXPECT_TRUE(warm.cache_hit);
  ASSERT_EQ(warm.top.size(), cold.top.size());
  for (size_t i = 0; i < warm.top.size(); ++i) {
    EXPECT_EQ(warm.top[i].index, cold.top[i].index);
    EXPECT_EQ(warm.top[i].value, cold.top[i].value);
  }
}

TEST(AdmissionControl, ShedsWhenQueueIsFull) {
  Graph graph = RandomDigraph(150, 3.0, 31);
  HgpaQueryEngine engine = MakeEngine(graph, 3);
  ServeOptions options;
  options.max_batch = 1;  // slow drain: every request pays its own round
  options.max_pending = 2;
  options.shed_on_overload = true;
  QueryServer server(std::move(engine), options);

  constexpr size_t kThreads = 12;
  constexpr size_t kPerThread = 8;
  constexpr size_t kMaxBursts = 20;
  std::atomic<size_t> shed{0}, served{0};
  // Shedding needs the burst to genuinely overlap, which thread scheduling
  // (especially on one core) doesn't guarantee for any single burst: repeat
  // saturating bursts until one overflows the 2-deep queue. The accounting
  // invariants hold across all attempts regardless of timing.
  for (size_t burst = 0; burst < kMaxBursts && shed.load() == 0; ++burst) {
    // Start barrier: without it, thread creation is slow enough that each
    // client can finish its whole loop before the next client exists.
    std::atomic<bool> go{false};
    std::vector<std::thread> clients;
    for (size_t t = 0; t < kThreads; ++t) {
      clients.emplace_back([&, t] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        for (size_t i = 0; i < kPerThread; ++i) {
          QueryServer::Response r =
              server.Query(static_cast<NodeId>((t * kPerThread + i) % 150));
          if (r.shed) {
            EXPECT_EQ(r.ppv.size(), 0u);
            shed.fetch_add(1);
          } else {
            served.fetch_add(1);
          }
        }
      });
    }
    go.store(true, std::memory_order_release);
    for (auto& c : clients) c.join();
  }

  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.shed, shed.load());
  EXPECT_EQ(stats.queries, served.load());
  // A saturating burst against a 2-deep queue must eventually shed, and the
  // leader's own requests always get through.
  EXPECT_GT(shed.load(), 0u);
  EXPECT_GT(served.load(), 0u);
}

TEST(AdmissionControl, BlockPolicyServesEverything) {
  Graph graph = RandomDigraph(80, 3.0, 37);
  HgpaQueryEngine engine = MakeEngine(graph, 3);

  std::vector<SparseVector> expected(80);
  for (NodeId q = 0; q < 80; ++q) expected[q] = engine.Query(q);

  ServeOptions options;
  options.max_batch = 4;
  options.max_pending = 2;
  options.shed_on_overload = false;
  QueryServer server(std::move(engine), options);

  constexpr size_t kThreads = 10;
  std::vector<std::thread> clients;
  std::atomic<size_t> mismatches{0};
  for (size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (NodeId q = t; q < 80; q += kThreads) {
        QueryServer::Response r = server.Query(q);
        EXPECT_FALSE(r.shed);
        if (!(r.ppv == expected[q])) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(mismatches.load(), 0u);
  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.queries, 80u);
  EXPECT_EQ(stats.shed, 0u);
}

// TSAN-targeted stress: cache hits, misses, invalidations, shedding, and
// stats reads all racing on one server.
TEST(AdmissionControl, ConcurrentCacheAndAdmissionStress) {
  Graph graph = RandomDigraph(60, 3.0, 43);
  HgpaQueryEngine engine = MakeEngine(graph, 3);
  ServeOptions options;
  options.max_batch = 4;
  options.max_pending = 3;
  options.shed_on_overload = true;
  options.result_cache_bytes = 1 << 20;
  QueryServer server(std::move(engine), options);

  constexpr size_t kThreads = 8;
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (size_t i = 0; i < 30; ++i) {
        NodeId q = static_cast<NodeId>((t + i) % 12);  // hot set: many hits
        QueryServer::Response r = server.Query(q);
        if (!r.shed && !r.cache_hit) server.Invalidate(q);
        if (i % 10 == 0) server.Stats();
        if (t == 0 && i % 17 == 0) server.InvalidateAll();
      }
    });
  }
  for (auto& c : clients) c.join();
  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.queries + stats.shed, kThreads * 30);
}

}  // namespace
}  // namespace dppr
