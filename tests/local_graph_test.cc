#include "dppr/graph/local_graph.h"

#include <gtest/gtest.h>

#include "dppr/graph/graph_builder.h"
#include "test_util.h"

namespace dppr {
namespace {

Graph Path4() {
  // 0 -> 1 -> 2 -> 3, 3 -> 3.
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 3);
  builder.AddEdge(3, 3);
  return builder.Build();
}

TEST(LocalGraph, KeepsOriginalDegreeDenominators) {
  Graph g = Path4();
  std::vector<NodeId> subset{0, 1};
  LocalGraph lg = LocalGraph::Induce(g, subset);
  ASSERT_EQ(lg.num_nodes(), 2u);
  // Node 1 keeps denominator 1 although its only edge (1->2) left the
  // subgraph — the virtual-node semantics of Definition 3.
  EXPECT_EQ(lg.degree_denominator(lg.ToLocal(1)), 1u);
  EXPECT_TRUE(lg.OutNeighbors(lg.ToLocal(1)).empty());
  EXPECT_EQ(lg.num_internal_edges(), 1u);  // only 0 -> 1 kept
}

TEST(LocalGraph, MapsIdsBothWays) {
  Graph g = Path4();
  std::vector<NodeId> subset{2, 0};  // order defines local ids
  LocalGraph lg = LocalGraph::Induce(g, subset);
  EXPECT_EQ(lg.ToGlobal(0), 2u);
  EXPECT_EQ(lg.ToGlobal(1), 0u);
  EXPECT_EQ(lg.ToLocal(2), 0u);
  EXPECT_EQ(lg.ToLocal(0), 1u);
  EXPECT_EQ(lg.ToLocal(3), kInvalidNode);
}

TEST(LocalGraph, WholeGraphIsIdentity) {
  Graph g = testing::RandomDigraph(30, 2.0, 5);
  LocalGraph lg = LocalGraph::Whole(g);
  EXPECT_EQ(lg.num_nodes(), g.num_nodes());
  EXPECT_EQ(lg.num_internal_edges(), g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(lg.ToLocal(u), u);
    EXPECT_EQ(lg.ToGlobal(u), u);
    EXPECT_EQ(lg.degree_denominator(u), g.out_degree(u));
  }
  EXPECT_EQ(lg.ToLocal(static_cast<NodeId>(g.num_nodes())), kInvalidNode);
}

TEST(LocalGraph, InternalEdgesMatchInducedSubgraph) {
  Graph g = testing::RandomDigraph(60, 3.0, 11);
  std::vector<NodeId> subset;
  for (NodeId u = 0; u < 60; u += 2) subset.push_back(u);  // even nodes
  LocalGraph lg = LocalGraph::Induce(g, subset);
  size_t expected = 0;
  for (NodeId u : subset) {
    for (NodeId v : g.OutNeighbors(u)) {
      if (v % 2 == 0) ++expected;
    }
  }
  EXPECT_EQ(lg.num_internal_edges(), expected);
}

TEST(LocalGraph, InEdgesAreConsistent) {
  Graph g = testing::RandomDigraph(40, 3.0, 13);
  std::vector<NodeId> subset;
  for (NodeId u = 0; u < 25; ++u) subset.push_back(u);
  LocalGraph lg = LocalGraph::Induce(g, subset, /*build_in_edges=*/true);
  ASSERT_TRUE(lg.has_in_edges());
  size_t in_total = 0;
  for (NodeId u = 0; u < lg.num_nodes(); ++u) {
    in_total += lg.InNeighbors(u).size();
    for (NodeId v : lg.OutNeighbors(u)) {
      auto ins = lg.InNeighbors(v);
      EXPECT_NE(std::find(ins.begin(), ins.end(), u), ins.end());
    }
  }
  EXPECT_EQ(in_total, lg.num_internal_edges());
}

TEST(LocalGraph, EmptySubset) {
  Graph g = Path4();
  LocalGraph lg = LocalGraph::Induce(g, {});
  EXPECT_EQ(lg.num_nodes(), 0u);
  EXPECT_EQ(lg.num_internal_edges(), 0u);
}

TEST(LocalGraph, SelfLoopsStayInternal) {
  Graph g = Path4();
  std::vector<NodeId> subset{3};
  LocalGraph lg = LocalGraph::Induce(g, subset);
  EXPECT_EQ(lg.num_internal_edges(), 1u);
  EXPECT_EQ(lg.OutNeighbors(0)[0], 0u);
}

}  // namespace
}  // namespace dppr
