#include "dppr/ppr/sparse_vector.h"

#include <gtest/gtest.h>

#include "dppr/common/rng.h"

namespace dppr {
namespace {

TEST(SparseVector, FromEntriesSortsAndMerges) {
  SparseVector v = SparseVector::FromEntries({{5, 1.0}, {2, 0.5}, {5, 2.0}});
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v.entries()[0].index, 2u);
  EXPECT_DOUBLE_EQ(v.entries()[0].value, 0.5);
  EXPECT_EQ(v.entries()[1].index, 5u);
  EXPECT_DOUBLE_EQ(v.entries()[1].value, 3.0);
}

TEST(SparseVector, FromDensePrunes) {
  std::vector<double> dense{0.0, 0.5, 1e-9, -0.25};
  SparseVector v = SparseVector::FromDense(dense, 1e-6);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v.ValueAt(1), 0.5);
  EXPECT_DOUBLE_EQ(v.ValueAt(3), -0.25);
  EXPECT_DOUBLE_EQ(v.ValueAt(2), 0.0);
}

TEST(SparseVector, ValueAtMissingIsZero) {
  SparseVector v = SparseVector::FromEntries({{1, 1.0}, {7, 2.0}});
  EXPECT_DOUBLE_EQ(v.ValueAt(0), 0.0);
  EXPECT_DOUBLE_EQ(v.ValueAt(4), 0.0);
  EXPECT_DOUBLE_EQ(v.ValueAt(100), 0.0);
}

TEST(SparseVector, L1Norm) {
  SparseVector v = SparseVector::FromEntries({{0, -1.0}, {3, 2.5}});
  EXPECT_DOUBLE_EQ(v.L1Norm(), 3.5);
}

TEST(SparseVector, AddScaledTo) {
  SparseVector v = SparseVector::FromEntries({{0, 1.0}, {2, 2.0}});
  std::vector<double> dense(4, 1.0);
  v.AddScaledTo(dense, 0.5);
  EXPECT_DOUBLE_EQ(dense[0], 1.5);
  EXPECT_DOUBLE_EQ(dense[1], 1.0);
  EXPECT_DOUBLE_EQ(dense[2], 2.0);
}

TEST(SparseVector, SerializeRoundTrip) {
  Rng rng(77);
  std::vector<SparseVector::Entry> entries;
  for (int i = 0; i < 500; ++i) {
    entries.push_back({static_cast<NodeId>(rng.Uniform(100000)),
                       rng.NextDouble() - 0.5});
  }
  SparseVector v = SparseVector::FromEntries(std::move(entries));
  ByteWriter writer;
  v.SerializeTo(writer);
  EXPECT_EQ(writer.size(), v.SerializedBytes());
  ByteReader reader(writer.bytes());
  SparseVector back = SparseVector::Deserialize(reader);
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(v, back);
}

TEST(SparseVector, SerializedBytesMatchesForEmptyVector) {
  SparseVector v;
  ByteWriter writer;
  v.SerializeTo(writer);
  EXPECT_EQ(writer.size(), v.SerializedBytes());
  EXPECT_EQ(writer.size(), 1u);  // just the varint count 0
}

TEST(SparseVector, PrunedRemovesSmallMagnitudes) {
  SparseVector v =
      SparseVector::FromEntries({{0, 1e-5}, {1, -1e-5}, {2, 0.1}, {3, -0.1}});
  SparseVector pruned = v.Pruned(1e-4);
  ASSERT_EQ(pruned.size(), 2u);
  EXPECT_DOUBLE_EQ(pruned.ValueAt(2), 0.1);
  EXPECT_DOUBLE_EQ(pruned.ValueAt(3), -0.1);
}

TEST(DenseAccumulator, AccumulatesAndClears) {
  DenseAccumulator acc(10);
  acc.Add(3, 1.0);
  acc.Add(3, 2.0);
  acc.Add(7, -1.0);
  EXPECT_DOUBLE_EQ(acc.ValueAt(3), 3.0);
  EXPECT_EQ(acc.TouchedIndices(), (std::vector<NodeId>{3, 7}));

  SparseVector sparse = acc.ToSparse();
  EXPECT_EQ(sparse.size(), 2u);

  acc.Clear();
  EXPECT_DOUBLE_EQ(acc.ValueAt(3), 0.0);
  EXPECT_TRUE(acc.TouchedIndices().empty());
}

TEST(DenseAccumulator, AddVectorWithScale) {
  DenseAccumulator acc(5);
  SparseVector v = SparseVector::FromEntries({{1, 2.0}, {4, 4.0}});
  acc.AddVector(v, 0.25);
  EXPECT_DOUBLE_EQ(acc.ValueAt(1), 0.5);
  EXPECT_DOUBLE_EQ(acc.ValueAt(4), 1.0);
}

TEST(SparseVector, FromEntriesDropsEntriesThatCancelToZero) {
  // Duplicates summing to exactly 0.0 used to survive as stored zeros,
  // inflating SerializedBytes — the paper's coordinator-bytes comm metric.
  SparseVector v = SparseVector::FromEntries(
      {{2, 1.0}, {2, -1.0}, {5, 0.25}, {9, 0.0}});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v.entries()[0].index, 5u);
  EXPECT_DOUBLE_EQ(v.entries()[0].value, 0.25);
  EXPECT_EQ(v.SerializedBytes(),
            SparseVector::FromEntries({{5, 0.25}}).SerializedBytes());
}

TEST(SparseVector, FromEntriesKeepsValuesThatRecoverFromZero) {
  SparseVector v =
      SparseVector::FromEntries({{3, 1.0}, {3, -1.0}, {3, 0.5}});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v.entries()[0].value, 0.5);
}

TEST(SparseVectorDeserialize, TruncatedPayloadDies) {
  SparseVector v = SparseVector::FromEntries({{1, 0.5}, {900, -2.0}});
  ByteWriter writer;
  v.SerializeTo(writer);
  std::vector<uint8_t> bytes = writer.bytes();
  // Chop the payload mid-entry: the reader must refuse, not read OOB.
  std::vector<uint8_t> truncated(bytes.begin(), bytes.end() - 5);
  EXPECT_DEATH(
      {
        ByteReader reader(truncated.data(), truncated.size());
        SparseVector::Deserialize(reader);
      },
      "DPPR_CHECK failed");
}

TEST(SparseVectorDeserialize, HostileEntryCountDies) {
  // A corrupt header claiming ~2^60 entries must be rejected up front
  // instead of driving a giant reserve() and a byte-by-byte crawl.
  ByteWriter writer;
  writer.PutVarU64(1ull << 60);
  writer.PutVarU64(0);
  writer.PutDouble(1.0);
  EXPECT_DEATH(
      {
        ByteReader reader(writer.bytes());
        SparseVector::Deserialize(reader);
      },
      "DPPR_CHECK failed");
}

TEST(SparseVectorDeserialize, WrappedIndexDeltaDies) {
  // A well-framed payload can still smuggle a delta that wraps NodeId; the
  // downstream accumulate bounds checks are DPPR_DCHECK-only, so the reader
  // must reject ids outside the 30-bit range every node id obeys.
  ByteWriter writer;
  writer.PutVarU64(2);
  writer.PutVarU64(5);
  writer.PutDouble(1.0);
  writer.PutVarU64(0xFFFFFFF0ull);  // wraps past 2^30
  writer.PutDouble(2.0);
  EXPECT_DEATH(
      {
        ByteReader reader(writer.bytes());
        SparseVector::Deserialize(reader);
      },
      "DPPR_CHECK failed");
}

TEST(SparseVectorDeserialize, DuplicateIndexDies) {
  // Zero deltas after the first entry would break the sorted-unique invariant
  // ValueAt's binary search relies on; the serializer never emits them.
  ByteWriter writer;
  writer.PutVarU64(2);
  writer.PutVarU64(7);
  writer.PutDouble(1.0);
  writer.PutVarU64(0);  // duplicate index 7
  writer.PutDouble(2.0);
  EXPECT_DEATH(
      {
        ByteReader reader(writer.bytes());
        SparseVector::Deserialize(reader);
      },
      "DPPR_CHECK failed");
}

TEST(SparseVectorDeserialize, MaxRepresentableIdRoundTrips) {
  SparseVector v = SparseVector::FromEntries({{0, 1.0}, {(1u << 30) - 1, 2.0}});
  ByteWriter writer;
  v.SerializeTo(writer);
  ByteReader reader(writer.bytes());
  EXPECT_EQ(SparseVector::Deserialize(reader), v);
}

TEST(DenseAccumulator, ToSparseCancellationStillListed) {
  DenseAccumulator acc(4);
  acc.Add(2, 1.0);
  acc.Add(2, -1.0);
  // Exact zero after cancellation: excluded from the sparse view.
  SparseVector sparse = acc.ToSparse();
  EXPECT_EQ(sparse.size(), 0u);
}

TEST(SparseVector, FromSortedUniqueAdoptsEntries) {
  SparseVector v = SparseVector::FromSortedUnique({{1, 0.5}, {63, -2.0},
                                                   {64, 3.0}});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v.ValueAt(63), -2.0);
  EXPECT_EQ(v, SparseVector::FromEntries({{64, 3.0}, {1, 0.5}, {63, -2.0}}));
}

// Scalar reference for the fold kernels: a plain dense array updated with the
// exact per-entry expression (`dense[i] += scale * value`, in entry order)
// that the pre-kernel DenseAccumulator used. Every sum below is compared with
// ==, not near-equality — the bulk AddVector path must be bit-identical.
struct ScalarFoldOracle {
  explicit ScalarFoldOracle(size_t size) : dense(size, 0.0) {}
  void AddVector(const SparseVector& vec, double scale) {
    for (const auto& e : vec.entries()) dense[e.index] += scale * e.value;
  }
  std::vector<double> dense;
};

TEST(DenseAccumulator, RandomizedFoldBitIdenticalToScalarOracle) {
  Rng rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t size = 1 + rng.Uniform(2000);
    DenseAccumulator acc(size);
    ScalarFoldOracle oracle(size);
    const int num_vectors = 1 + static_cast<int>(rng.Uniform(30));
    for (int v = 0; v < num_vectors; ++v) {
      std::vector<SparseVector::Entry> entries;
      const int num_entries = static_cast<int>(rng.Uniform(200));
      for (int e = 0; e < num_entries; ++e) {
        entries.push_back({static_cast<NodeId>(rng.Uniform(size)),
                           rng.NextDouble() - 0.5});
      }
      SparseVector vec = SparseVector::FromEntries(std::move(entries));
      const double scale = rng.NextDouble() * 2.0 - 1.0;
      acc.AddVector(vec, scale);
      oracle.AddVector(vec, scale);
    }
    // Bit-identical everywhere, including untouched slots.
    EXPECT_EQ(acc.ToDense(), oracle.dense);
    // ToSparse agrees with the dense-oracle sparsification at several
    // thresholds, including 0 (exact-zero exclusion on both sides).
    for (double prune : {0.0, 1e-9, 0.05}) {
      EXPECT_EQ(acc.ToSparse(prune),
                SparseVector::FromDense(oracle.dense, prune));
    }
  }
}

TEST(DenseAccumulator, FoldWithCancellationEdges) {
  // Entries straddling 64-id bitmap words, plus exact cancellation within and
  // across vectors: the bitmap keeps every touched slot listed while ToSparse
  // excludes the exact zeros, matching the dense oracle.
  DenseAccumulator acc(200);
  ScalarFoldOracle oracle(200);
  SparseVector a = SparseVector::FromEntries(
      {{0, 1.0}, {63, 2.0}, {64, -3.0}, {127, 0.5}, {128, 4.0}, {199, -1.0}});
  SparseVector b = SparseVector::FromEntries(
      {{63, -2.0}, {64, 3.0}, {199, 1.0}});
  acc.AddVector(a, 1.0);
  acc.AddVector(b, 1.0);
  oracle.AddVector(a, 1.0);
  oracle.AddVector(b, 1.0);
  EXPECT_EQ(acc.ToDense(), oracle.dense);
  EXPECT_EQ(acc.ToSparse(), SparseVector::FromDense(oracle.dense));
  // 63, 64, and 199 cancelled to exactly zero but stay touched.
  EXPECT_EQ(acc.TouchedIndices(),
            (std::vector<NodeId>{0, 63, 64, 127, 128, 199}));
  EXPECT_EQ(acc.ToSparse().size(), 3u);
}

TEST(DenseAccumulator, ClearResetsForReuse) {
  Rng rng(99);
  DenseAccumulator acc(500);
  std::vector<SparseVector::Entry> entries;
  for (int i = 0; i < 100; ++i) {
    entries.push_back({static_cast<NodeId>(rng.Uniform(500)),
                       rng.NextDouble()});
  }
  SparseVector vec = SparseVector::FromEntries(std::move(entries));
  acc.AddVector(vec, 1.5);
  acc.Clear();
  EXPECT_TRUE(acc.TouchedIndices().empty());
  EXPECT_EQ(acc.ToDense(), std::vector<double>(500, 0.0));
  // A fold after Clear behaves exactly like one on a fresh accumulator.
  acc.AddVector(vec, -0.5);
  DenseAccumulator fresh(500);
  fresh.AddVector(vec, -0.5);
  EXPECT_EQ(acc.ToDense(), fresh.ToDense());
  EXPECT_EQ(acc.ToSparse(), fresh.ToSparse());
}

}  // namespace
}  // namespace dppr
