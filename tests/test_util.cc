#include "test_util.h"

#include "dppr/common/rng.h"

namespace dppr::testing {

Graph RandomDigraph(size_t num_nodes, double avg_degree, uint64_t seed,
                    bool self_loop_dangling) {
  Rng rng(seed);
  GraphBuilder builder(num_nodes);
  size_t num_edges = static_cast<size_t>(avg_degree * static_cast<double>(num_nodes));
  for (size_t i = 0; i < num_edges; ++i) {
    builder.AddEdge(static_cast<NodeId>(rng.Uniform(num_nodes)),
                    static_cast<NodeId>(rng.Uniform(num_nodes)));
  }
  GraphBuildOptions options;
  options.dangling =
      self_loop_dangling ? DanglingPolicy::kSelfLoop : DanglingPolicy::kKeep;
  options.build_in_edges = true;
  return builder.Build(options);
}

SparseVector RandomSparseVector(uint64_t seed, size_t entries) {
  Rng rng(seed);
  std::vector<SparseVector::Entry> out;
  for (size_t i = 0; i < entries; ++i) {
    out.push_back({static_cast<NodeId>(rng.Uniform(1u << 20)),
                   rng.NextDouble() - 0.5});
  }
  return SparseVector::FromEntries(std::move(out));
}

}  // namespace dppr::testing
