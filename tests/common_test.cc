#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "dppr/common/env.h"
#include "dppr/common/rng.h"
#include "dppr/common/serialize.h"
#include "dppr/common/status.h"
#include "dppr/common/thread_pool.h"
#include "dppr/common/timer.h"

namespace dppr {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::NotFound("missing file");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing file");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v(Status::IoError("disk on fire"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kIoError);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformIsRoughlyBalanced) {
  Rng rng(11);
  std::vector<int> buckets(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++buckets[rng.Uniform(10)];
  for (int count : buckets) {
    EXPECT_NEAR(count, kDraws / 10, kDraws / 100);
  }
}

TEST(Rng, ForkGivesIndependentStream) {
  Rng base(5);
  Rng fork = base.Fork(1);
  std::set<uint64_t> values;
  for (int i = 0; i < 32; ++i) {
    values.insert(base.Next());
    values.insert(fork.Next());
  }
  EXPECT_EQ(values.size(), 64u);
}

TEST(Serialize, PrimitivesRoundTrip) {
  ByteWriter writer;
  writer.PutU8(7);
  writer.PutU32(0xDEADBEEF);
  writer.PutU64(0x0123456789ABCDEFULL);
  writer.PutDouble(3.14159);
  writer.PutString("hello world");
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.GetU8(), 7);
  EXPECT_EQ(reader.GetU32(), 0xDEADBEEF);
  EXPECT_EQ(reader.GetU64(), 0x0123456789ABCDEFULL);
  EXPECT_DOUBLE_EQ(reader.GetDouble(), 3.14159);
  EXPECT_EQ(reader.GetString(), "hello world");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(Serialize, VarintRoundTripsBoundaries) {
  ByteWriter writer;
  std::vector<uint64_t> values = {0,    1,    127,        128,
                                  255,  300,  0xFFFF,     0x10000,
                                  1ull << 32, 1ull << 62, ~0ull};
  for (uint64_t v : values) writer.PutVarU64(v);
  ByteReader reader(writer.bytes());
  for (uint64_t v : values) EXPECT_EQ(reader.GetVarU64(), v);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(Serialize, VarintIsCompactForSmallValues) {
  ByteWriter writer;
  writer.PutVarU64(5);
  EXPECT_EQ(writer.size(), 1u);
  writer.PutVarU64(300);
  EXPECT_EQ(writer.size(), 3u);
}

TEST(Serialize, HostileStringLengthDiesInsteadOfWrapping) {
  // A length near UINT64_MAX used to wrap the `pos_ + n` bounds check and
  // pass it, turning a corrupt payload into an out-of-bounds read.
  ByteWriter writer;
  writer.PutVarU64(~0ull);
  writer.PutU8('x');
  EXPECT_DEATH(
      {
        ByteReader reader(writer.bytes());
        reader.GetString();
      },
      "DPPR_CHECK failed");
}

TEST(Serialize, BlobRoundTripsAsView) {
  ByteWriter writer;
  std::vector<uint8_t> payload{1, 2, 3, 4, 5};
  writer.PutBlob(payload.data(), payload.size());
  writer.PutBlob(nullptr, 0);  // empty blob is legal
  writer.PutU8(0xEE);

  ByteReader reader(writer.bytes());
  std::span<const uint8_t> blob = reader.GetBlob();
  ASSERT_EQ(blob.size(), payload.size());
  EXPECT_TRUE(std::equal(blob.begin(), blob.end(), payload.begin()));
  // The view aliases the writer's buffer — no copy.
  EXPECT_GE(blob.data(), writer.bytes().data());
  EXPECT_TRUE(reader.GetBlob().empty());
  EXPECT_EQ(reader.GetU8(), 0xEE);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(Serialize, HostileBlobLengthDiesInsteadOfWrapping) {
  // Same wrap-hazard as GetString: a length near UINT64_MAX must not pass
  // the bounds check via overflow and read out of bounds.
  ByteWriter writer;
  writer.PutVarU64(~0ull);
  writer.PutU8('x');
  EXPECT_DEATH(
      {
        ByteReader reader(writer.bytes());
        reader.GetBlob();
      },
      "DPPR_CHECK failed");
}

TEST(Serialize, TruncatedBlobDies) {
  ByteWriter writer;
  writer.PutVarU64(16);  // promises 16 bytes, delivers 2
  writer.PutU8(1);
  writer.PutU8(2);
  EXPECT_DEATH(
      {
        ByteReader reader(writer.bytes());
        reader.GetBlob();
      },
      "DPPR_CHECK failed");
}

TEST(Serialize, TruncatedPrimitiveDies) {
  ByteWriter writer;
  writer.PutU32(0xDEADBEEF);
  EXPECT_DEATH(
      {
        ByteReader reader(writer.bytes().data(), 2);
        reader.GetU32();
      },
      "DPPR_CHECK failed");
}

TEST(Serialize, ReadPastEndDies) {
  ByteReader reader(nullptr, 0);
  EXPECT_DEATH(reader.GetU8(), "DPPR_CHECK failed");
}

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [&](size_t) { FAIL(); });
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer timer;
  double first = timer.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(timer.ElapsedSeconds(), first);
}

TEST(ThreadCpuTimer, DoesNotChargeSleepTime) {
  if (!ThreadCpuTimer::Available()) GTEST_SKIP() << "no per-thread CPU clock";
  ThreadCpuTimer cpu;
  WallTimer wall;
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Wall time sees the sleep; the thread-CPU clock must not.
  EXPECT_GE(wall.ElapsedSeconds(), 0.045);
  EXPECT_LT(cpu.ElapsedSeconds(), 0.040);
}

TEST(StopWatch, AccumulatesIntervals) {
  StopWatch watch;
  watch.Add(1.5);
  watch.Add(0.5);
  EXPECT_DOUBLE_EQ(watch.TotalSeconds(), 2.0);
  EXPECT_DOUBLE_EQ(watch.TotalMillis(), 2000.0);
  watch.Reset();
  EXPECT_DOUBLE_EQ(watch.TotalSeconds(), 0.0);
}

TEST(Env, FallbackWhenUnset) {
  EXPECT_DOUBLE_EQ(GetEnvDouble("DPPR_DEFINITELY_UNSET_VAR", 2.5), 2.5);
  EXPECT_EQ(GetEnvInt("DPPR_DEFINITELY_UNSET_VAR", 7), 7);
}

TEST(Env, ParsesSetValues) {
  setenv("DPPR_TEST_ENV_VAR", "3.5", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("DPPR_TEST_ENV_VAR", 1.0), 3.5);
  setenv("DPPR_TEST_ENV_VAR", "garbage", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("DPPR_TEST_ENV_VAR", 1.0), 1.0);
  unsetenv("DPPR_TEST_ENV_VAR");
}

}  // namespace
}  // namespace dppr
