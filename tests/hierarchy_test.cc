#include "dppr/partition/hierarchy.h"

#include <gtest/gtest.h>

#include "dppr/graph/datasets.h"
#include "dppr/graph/generators.h"
#include "dppr/partition/hub_selection.h"
#include "test_util.h"

namespace dppr {
namespace {

using ::dppr::testing::RandomDigraph;

HierarchyOptions Defaults(uint32_t max_levels = 16) {
  HierarchyOptions options;
  options.max_levels = max_levels;
  options.min_subgraph_size = 2;
  return options;
}

TEST(HubSelection, CoversEveryCutEdge) {
  Graph g = RandomDigraph(200, 3.0, 3);
  LocalGraph lg = LocalGraph::Whole(g);
  PartitionOptions options;
  std::vector<uint32_t> part = PartitionLocalGraph(lg, 2, options);
  HubSelection selection = SelectHubs(lg, part, 2);
  EXPECT_TRUE(VerifySeparation(lg, part, selection.hubs).ok());
  EXPECT_GT(selection.num_cut_pairs, 0u);
  EXPECT_LE(selection.hubs.size(), selection.num_cut_pairs);
}

TEST(HubSelection, NoCutNoHubs) {
  // Two disconnected cliques split perfectly.
  GraphBuilder builder(8);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      if (u != v) {
        builder.AddEdge(u, v);
        builder.AddEdge(u + 4, v + 4);
      }
    }
  }
  Graph g = builder.Build();
  LocalGraph lg = LocalGraph::Whole(g);
  std::vector<uint32_t> part{0, 0, 0, 0, 1, 1, 1, 1};
  HubSelection selection = SelectHubs(lg, part, 2);
  EXPECT_TRUE(selection.hubs.empty());
  EXPECT_EQ(selection.num_cut_pairs, 0u);
}

TEST(HubSelection, KonigBeatsNaiveEndpointCover) {
  // Star crossing: one part-0 node connected to many part-1 nodes. Minimum
  // cover is 1 (the center), not the number of edges.
  GraphBuilder builder(10);
  for (NodeId v = 1; v < 10; ++v) builder.AddEdge(0, v);
  Graph g = builder.Build();
  LocalGraph lg = LocalGraph::Whole(g);
  std::vector<uint32_t> part(10, 1);
  part[0] = 0;
  HubSelection selection = SelectHubs(lg, part, 2);
  ASSERT_EQ(selection.hubs.size(), 1u);
  EXPECT_EQ(selection.hubs[0], 0u);
}

TEST(Hierarchy, ValidatesOnPaperToyGraph) {
  Graph g = PaperFigure3Graph();
  Hierarchy h = Hierarchy::Build(g, Defaults(4));
  EXPECT_TRUE(h.Validate(g).ok());
  EXPECT_GE(h.num_levels(), 2u);
}

TEST(Hierarchy, EveryNodeHasExactlyOneFinalSubgraph) {
  Graph g = RandomDigraph(300, 3.0, 17);
  Hierarchy h = Hierarchy::Build(g, Defaults());
  ASSERT_TRUE(h.Validate(g).ok());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    SubgraphId f = h.final_subgraph(u);
    ASSERT_NE(f, kInvalidSubgraph);
    const auto& sub = h.subgraph(f);
    if (h.is_hub(u)) {
      EXPECT_TRUE(std::binary_search(sub.hubs.begin(), sub.hubs.end(), u));
    } else {
      EXPECT_TRUE(sub.children.empty()) << "non-hub must land in a leaf";
      EXPECT_TRUE(std::binary_search(sub.nodes.begin(), sub.nodes.end(), u));
    }
  }
}

TEST(Hierarchy, ChainsWalkRootToFinal) {
  Graph g = RandomDigraph(250, 3.0, 29);
  Hierarchy h = Hierarchy::Build(g, Defaults());
  for (NodeId u = 0; u < g.num_nodes(); u += 17) {
    std::vector<SubgraphId> chain = h.Chain(u);
    ASSERT_FALSE(chain.empty());
    EXPECT_EQ(chain.front(), h.root());
    EXPECT_EQ(chain.back(), h.final_subgraph(u));
    for (size_t i = 1; i < chain.size(); ++i) {
      EXPECT_EQ(h.subgraph(chain[i]).parent, chain[i - 1]);
      EXPECT_EQ(h.subgraph(chain[i]).level, i);
    }
  }
}

TEST(Hierarchy, LevelsNestByHalving) {
  Graph g = RandomDigraph(400, 3.0, 5);
  Hierarchy h = Hierarchy::Build(g, Defaults(3));
  EXPECT_LE(h.num_levels(), 4u);
  // Each split subgraph has at most `fanout` children.
  for (const auto& sub : h.subgraphs()) {
    EXPECT_LE(sub.children.size(), 2u);
  }
}

TEST(Hierarchy, DeepPartitioningTerminatesWithEdgeFreeLeaves) {
  Graph g = RandomDigraph(150, 2.0, 23);
  HierarchyOptions options = Defaults(32);
  Hierarchy h = Hierarchy::Build(g, options);
  ASSERT_TRUE(h.Validate(g).ok());
  // The paper partitions "until no edges exist within each subgraph": with a
  // generous level cap every leaf is edge-free or too small for a
  // non-degenerate split (a couple of nodes whose cover would consume the
  // whole subgraph).
  for (SubgraphId leaf : h.leaves()) {
    const auto& sub = h.subgraph(leaf);
    LocalGraph lg = LocalGraph::Induce(g, sub.nodes);
    size_t non_self_loop = 0;
    for (NodeId u = 0; u < lg.num_nodes(); ++u) {
      for (NodeId v : lg.OutNeighbors(u)) non_self_loop += (u != v);
    }
    EXPECT_TRUE(non_self_loop == 0 || sub.nodes.size() <= 4)
        << "leaf " << leaf << " (" << sub.nodes.size() << " nodes) still has "
        << non_self_loop << " edges";
  }
}

TEST(Hierarchy, HubCountPerLevelSumsToTotal) {
  Graph g = RandomDigraph(300, 3.0, 7);
  Hierarchy h = Hierarchy::Build(g, Defaults());
  std::vector<size_t> per_level = h.HubCountPerLevel();
  size_t sum = 0;
  for (size_t c : per_level) sum += c;
  EXPECT_EQ(sum, h.TotalHubCount());
  size_t hub_nodes = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) hub_nodes += h.is_hub(u);
  EXPECT_EQ(hub_nodes, h.TotalHubCount());
}

TEST(Hierarchy, HubsAreMuchFewerThanNodesOnCommunityGraphs) {
  // Key premise of the paper (|H| << |V|, Appendix E).
  Graph g = CommunityDigraph(2000, 16, 3.0, 0.9, 13);
  Hierarchy h = Hierarchy::Build(g, Defaults(4));
  EXPECT_LT(h.TotalHubCount(), g.num_nodes() / 4);
}

TEST(Hierarchy, FlatBuildMatchesGpaShape) {
  Graph g = RandomDigraph(300, 3.0, 19);
  Hierarchy h = Hierarchy::BuildFlat(g, 6, PartitionOptions{});
  ASSERT_TRUE(h.Validate(g).ok());
  EXPECT_LE(h.num_levels(), 2u);
  size_t leaf_nodes = 0;
  for (SubgraphId leaf : h.leaves()) {
    if (leaf != h.root()) leaf_nodes += h.subgraph(leaf).nodes.size();
  }
  EXPECT_EQ(leaf_nodes + h.TotalHubCount(), g.num_nodes());
}

TEST(Hierarchy, MultiwayFanoutProducesMoreChildren) {
  Graph g = RandomDigraph(500, 3.0, 37);
  HierarchyOptions options = Defaults(2);
  options.fanout = 4;
  Hierarchy h = Hierarchy::Build(g, options);
  ASSERT_TRUE(h.Validate(g).ok());
  EXPECT_GE(h.subgraph(h.root()).children.size(), 3u);
}

class HierarchyDatasetTest : public ::testing::TestWithParam<const char*> {};

TEST_P(HierarchyDatasetTest, ValidatesOnScaledDatasets) {
  Graph g = DatasetByName(GetParam(), 0.05);
  Hierarchy h = Hierarchy::Build(g, Defaults(8));
  EXPECT_TRUE(h.Validate(g).ok()) << GetParam();
  EXPECT_LT(h.TotalHubCount(), g.num_nodes()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Datasets, HierarchyDatasetTest,
                         ::testing::Values("email", "web", "youtube", "meetup1"));

}  // namespace
}  // namespace dppr
