#include "dppr/core/hgpa.h"

#include <gtest/gtest.h>

#include "dppr/graph/datasets.h"
#include "dppr/ppr/dense_solver.h"
#include "dppr/ppr/metrics.h"
#include "dppr/ppr/power_iteration.h"
#include "test_util.h"

namespace dppr {
namespace {

using ::dppr::testing::RandomDigraph;

HgpaOptions TightOptions() {
  HgpaOptions options;
  options.ppr.tolerance = 1e-10;
  options.hierarchy.max_levels = 4;
  options.hierarchy.min_subgraph_size = 4;
  return options;
}

TEST(Hgpa, MatchesDenseOracleOnPaperFigure3Graph) {
  Graph g = PaperFigure3Graph();
  auto pre = HgpaPrecomputation::RunHgpa(g, TightOptions());
  HgpaIndex index = HgpaIndex::Distribute(pre, 2);
  HgpaQueryEngine engine(index);
  for (NodeId q = 0; q < g.num_nodes(); ++q) {
    std::vector<double> got = engine.QueryDense(q);
    std::vector<double> oracle = ExactPpvDense(g, q, TightOptions().ppr);
    EXPECT_LT(LInfNorm(got, oracle), 1e-7) << "query " << q;
  }
}

TEST(Hgpa, HubAndNonHubQueriesBothExact) {
  Graph g = RandomDigraph(90, 3.0, 1234);
  auto pre = HgpaPrecomputation::RunHgpa(g, TightOptions());
  HgpaIndex index = HgpaIndex::Distribute(pre, 3);
  HgpaQueryEngine engine(index);

  size_t hub_queries = 0;
  size_t leaf_queries = 0;
  for (NodeId q = 0; q < g.num_nodes(); ++q) {
    std::vector<double> got = engine.QueryDense(q);
    std::vector<double> oracle = ExactPpvDense(g, q, TightOptions().ppr);
    ASSERT_LT(LInfNorm(got, oracle), 1e-6)
        << "query " << q << " is_hub=" << index.hierarchy().is_hub(q);
    if (index.hierarchy().is_hub(q)) {
      ++hub_queries;
    } else {
      ++leaf_queries;
    }
  }
  // The graph must actually have exercised both code paths.
  EXPECT_GT(hub_queries, 0u);
  EXPECT_GT(leaf_queries, 0u);
}

TEST(Hgpa, MachineCountDoesNotChangeTheAnswer) {
  Graph g = RandomDigraph(80, 3.0, 77);
  auto pre = HgpaPrecomputation::RunHgpa(g, TightOptions());
  HgpaIndex one = HgpaIndex::Distribute(pre, 1);
  std::vector<double> reference = HgpaQueryEngine(one).QueryDense(13);
  for (size_t machines : {2u, 3u, 5u, 7u, 11u}) {
    HgpaIndex index = HgpaIndex::Distribute(pre, machines);
    std::vector<double> got = HgpaQueryEngine(index).QueryDense(13);
    EXPECT_LT(LInfNorm(got, reference), 1e-12) << machines << " machines";
  }
}

TEST(Hgpa, GpaMatchesHgpa) {
  // Theorem 3: the hierarchical construction computes exactly Eq. 5.
  Graph g = RandomDigraph(100, 3.0, 2024);
  HgpaOptions options = TightOptions();
  auto hgpa = HgpaPrecomputation::RunHgpa(g, options);
  auto gpa = HgpaPrecomputation::RunGpa(g, 4, options);
  HgpaQueryEngine hgpa_engine{HgpaIndex::Distribute(hgpa, 3)};
  HgpaQueryEngine gpa_engine{HgpaIndex::Distribute(gpa, 3)};
  for (NodeId q : {NodeId{0}, NodeId{33}, NodeId{99}}) {
    std::vector<double> a = hgpa_engine.QueryDense(q);
    std::vector<double> b = gpa_engine.QueryDense(q);
    EXPECT_LT(LInfNorm(a, b), 1e-6) << "query " << q;
  }
}

TEST(Hgpa, CommunicationMetricsArePopulated) {
  Graph g = RandomDigraph(120, 3.0, 5);
  auto pre = HgpaPrecomputation::RunHgpa(g, TightOptions());
  HgpaIndex index = HgpaIndex::Distribute(pre, 4);
  HgpaQueryEngine engine(index);
  QueryMetrics metrics;
  engine.Query(17, &metrics);
  // At most one message per machine (Theorem 4; routing may skip
  // non-contributing machines), non-trivial payloads overall.
  EXPECT_GE(metrics.comm.messages, 1u);
  EXPECT_LE(metrics.comm.messages, 4u);
  EXPECT_GT(metrics.comm.bytes, 4u);
  EXPECT_GT(metrics.simulated_seconds, 0.0);
  EXPECT_GE(metrics.simulated_seconds,
            metrics.max_machine_seconds + metrics.coordinator_seconds);
}

TEST(Hgpa, OfflineLedgerConservesTotalComputeTime) {
  Graph g = RandomDigraph(100, 3.0, 31);
  auto pre = HgpaPrecomputation::RunHgpa(g, TightOptions());
  for (size_t machines : {1u, 3u, 6u}) {
    HgpaIndex index = HgpaIndex::Distribute(pre, machines);
    EXPECT_NEAR(index.offline_ledger().TotalSeconds(), pre->total_seconds(), 1e-9);
    EXPECT_LE(index.offline_ledger().MaxSeconds(),
              pre->total_seconds() + 1e-12);
  }
}

TEST(Hgpa, StorageAccountingIsDistributionInvariant) {
  Graph g = RandomDigraph(100, 3.0, 92);
  auto pre = HgpaPrecomputation::RunHgpa(g, TightOptions());
  size_t expected = pre->TotalBytes();
  for (size_t machines : {1u, 2u, 5u}) {
    HgpaIndex index = HgpaIndex::Distribute(pre, machines);
    EXPECT_EQ(index.TotalBytes(), expected);
    EXPECT_GE(index.MaxMachineBytes() * machines, expected);
  }
}

TEST(Hgpa, MoreMachinesReduceMaxStorage) {
  Graph g = RandomDigraph(200, 3.0, 46);
  auto pre = HgpaPrecomputation::RunHgpa(g, TightOptions());
  size_t one = HgpaIndex::Distribute(pre, 1).MaxMachineBytes();
  size_t eight = HgpaIndex::Distribute(pre, 8).MaxMachineBytes();
  EXPECT_LT(eight, one);
}

TEST(Hgpa, PrunedCopyStaysClose) {
  Graph g = RandomDigraph(100, 3.0, 3);
  HgpaOptions options;
  options.ppr.tolerance = 1e-6;
  options.hierarchy.max_levels = 4;
  auto exact = HgpaPrecomputation::RunHgpa(g, options);
  auto pruned = exact->PrunedCopy(1e-4);
  EXPECT_LT(pruned->TotalBytes(), exact->TotalBytes());

  HgpaQueryEngine exact_engine{HgpaIndex::Distribute(exact, 2)};
  HgpaQueryEngine pruned_engine{HgpaIndex::Distribute(pruned, 2)};
  std::vector<double> a = exact_engine.QueryDense(10);
  std::vector<double> b = pruned_engine.QueryDense(10);
  // HGPA_ad drops entries below 1e-4; the error stays near that scale.
  EXPECT_LT(LInfNorm(a, b), 5e-2);
  EXPECT_LT(AverageL1(a, b), 1e-2);
}

TEST(Hgpa, FixedPointSkeletonGivesSameAnswers) {
  Graph g = RandomDigraph(70, 3.0, 58);
  HgpaOptions reverse_opts = TightOptions();
  HgpaOptions fixed_opts = TightOptions();
  fixed_opts.skeleton_method = SkeletonMethod::kFixedPoint;
  HgpaQueryEngine a{HgpaIndex::Distribute(
      HgpaPrecomputation::RunHgpa(g, reverse_opts), 2)};
  HgpaQueryEngine b{HgpaIndex::Distribute(
      HgpaPrecomputation::RunHgpa(g, fixed_opts), 2)};
  for (NodeId q : {NodeId{4}, NodeId{42}}) {
    EXPECT_LT(LInfNorm(a.QueryDense(q), b.QueryDense(q)), 1e-6);
  }
}

TEST(Hgpa, PreferenceSetQueryIsLinearCombination) {
  // Jeh-Widom linearity: r_P = Σ w_u · r_u, answered in one round.
  Graph g = RandomDigraph(100, 3.0, 64);
  auto pre = HgpaPrecomputation::RunHgpa(g, TightOptions());
  HgpaQueryEngine engine(HgpaIndex::Distribute(pre, 4));

  std::vector<HgpaQueryEngine::Preference> prefs{{5, 0.5}, {42, 0.3}, {77, 0.2}};
  QueryMetrics metrics;
  SparseVector combined = engine.QueryPreferenceSet(prefs, &metrics);
  // Still one round: at most one message per machine.
  EXPECT_GE(metrics.comm.messages, 1u);
  EXPECT_LE(metrics.comm.messages, 4u);

  std::vector<double> expected(g.num_nodes(), 0.0);
  for (const auto& p : prefs) {
    std::vector<double> single = engine.QueryDense(p.node);
    for (NodeId v = 0; v < g.num_nodes(); ++v) expected[v] += p.weight * single[v];
  }
  std::vector<double> got(g.num_nodes(), 0.0);
  combined.AddScaledTo(got, 1.0);
  EXPECT_LT(LInfNorm(got, expected), 1e-12);

  // And it matches the dense oracle of the weighted teleport vector.
  std::vector<double> oracle(g.num_nodes(), 0.0);
  for (const auto& p : prefs) {
    std::vector<double> single = ExactPpvDense(g, p.node, TightOptions().ppr);
    for (NodeId v = 0; v < g.num_nodes(); ++v) oracle[v] += p.weight * single[v];
  }
  EXPECT_LT(LInfNorm(got, oracle), 1e-6);
}

TEST(Hgpa, PreferenceSetMatchesDenseSolverWeightedTeleport) {
  // Stronger oracle than combining single-node solves: solve the Eq. 1
  // system (I - (1-α) Pᵀ) r = α w directly for the weighted teleport
  // vector w and compare against the one-round distributed answer.
  Graph g = PaperFigure3Graph();
  auto pre = HgpaPrecomputation::RunHgpa(g, TightOptions());
  HgpaQueryEngine engine(HgpaIndex::Distribute(pre, 3));

  std::vector<HgpaQueryEngine::Preference> prefs{{0, 0.6}, {3, 0.3}, {5, 0.1}};
  std::vector<double> got(g.num_nodes(), 0.0);
  engine.QueryPreferenceSet(prefs).AddScaledTo(got, 1.0);

  std::vector<std::pair<NodeId, double>> teleport;
  for (const auto& p : prefs) teleport.emplace_back(p.node, p.weight);
  std::vector<double> oracle = ExactPpvDense(g, teleport, TightOptions().ppr);
  EXPECT_LT(LInfNorm(got, oracle), 1e-7);
}

TEST(Hgpa, PreferenceSetWithZeroAndDuplicateWeights) {
  Graph g = RandomDigraph(60, 3.0, 11);
  auto pre = HgpaPrecomputation::RunHgpa(g, TightOptions());
  HgpaQueryEngine engine(HgpaIndex::Distribute(pre, 3));
  std::vector<HgpaQueryEngine::Preference> prefs{{7, 0.0}, {9, 0.5}, {9, 0.5}};
  std::vector<double> got(g.num_nodes(), 0.0);
  engine.QueryPreferenceSet(prefs).AddScaledTo(got, 1.0);
  std::vector<double> single = engine.QueryDense(9);
  EXPECT_LT(LInfNorm(got, single), 1e-12);  // 0.5 + 0.5 of the same node
}

class HgpaSeedPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HgpaSeedPropertyTest, ExactAgainstPowerIterationOnRandomGraphs) {
  uint64_t seed = GetParam();
  Graph g = RandomDigraph(60 + seed % 50, 2.5 + (seed % 3), seed);
  auto pre = HgpaPrecomputation::RunHgpa(g, TightOptions());
  ASSERT_TRUE(pre->hierarchy().Validate(g).ok());
  HgpaIndex index = HgpaIndex::Distribute(pre, 1 + seed % 6);
  HgpaQueryEngine engine(index);

  PowerIterationOptions pi;
  pi.ppr.tolerance = 1e-11;
  pi.dangling = PowerDangling::kAbsorb;
  NodeId q = static_cast<NodeId>(seed % g.num_nodes());
  std::vector<double> got = engine.QueryDense(q);
  std::vector<double> reference = PowerIterationPpv(g, q, pi).ppv;
  EXPECT_LT(LInfNorm(got, reference), 1e-6) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, HgpaSeedPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

}  // namespace
}  // namespace dppr
