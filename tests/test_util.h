#ifndef DPPR_TESTS_TEST_UTIL_H_
#define DPPR_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <vector>

#include "dppr/graph/graph.h"
#include "dppr/graph/graph_builder.h"
#include "dppr/graph/local_graph.h"
#include "dppr/ppr/ppr_options.h"
#include "dppr/ppr/sparse_vector.h"

namespace dppr::testing {

/// Small deterministic random digraph for property tests: `num_nodes` nodes,
/// ~`avg_degree` random out-edges each, self-loops added to dangling nodes so
/// all PPR engines agree on semantics.
Graph RandomDigraph(size_t num_nodes, double avg_degree, uint64_t seed,
                    bool self_loop_dangling = true);

/// Deterministic random sparse vector (duplicate indices merged) — the
/// storage test suites' shared payload generator.
SparseVector RandomSparseVector(uint64_t seed, size_t entries);

/// A GraphView adapter over another view that hides the out-edges of blocked
/// nodes (their degree denominator is preserved). Mass entering a blocked
/// node then never leaves — the oracle for selective-expansion semantics.
class BlockedView {
 public:
  BlockedView(const LocalGraph& base, const std::vector<NodeId>& blocked)
      : base_(base), blocked_(base.num_nodes(), 0) {
    for (NodeId b : blocked) blocked_[b] = 1;
  }

  size_t num_nodes() const { return base_.num_nodes(); }
  uint32_t degree_denominator(NodeId u) const {
    return base_.degree_denominator(u);
  }
  std::span<const NodeId> OutNeighbors(NodeId u) const {
    if (blocked_[u]) return {};
    return base_.OutNeighbors(u);
  }

 private:
  const LocalGraph& base_;
  std::vector<uint8_t> blocked_;
};

/// Tight-tolerance options for near-exact comparisons in tests.
inline PprOptions TightPpr() {
  PprOptions options;
  options.tolerance = 1e-9;
  return options;
}

}  // namespace dppr::testing

#endif  // DPPR_TESTS_TEST_UTIL_H_
