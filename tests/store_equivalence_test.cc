// Acceptance suite for the storage-backend refactor: a disk-backed index
// must answer single-node, preference-set, and top-k queries bit-identically
// to the in-memory owning store on GPA and HGPA — including with a cache
// budget smaller than the largest single vector, where every machine-side
// lookup is a miss served straight off the spill file.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "dppr/core/dist_precompute.h"
#include "dppr/core/hgpa.h"
#include "dppr/serve/query_server.h"
#include "test_util.h"

namespace dppr {
namespace {

using ::dppr::testing::RandomDigraph;

HgpaOptions SmallOptions() {
  HgpaOptions options;
  options.ppr.tolerance = 1e-8;
  options.hierarchy.max_levels = 3;
  options.hierarchy.min_subgraph_size = 4;
  return options;
}

StorageOptions Backend(StorageBackend backend, size_t cache_bytes = 64 << 20) {
  StorageOptions options;
  options.backend = backend;
  options.cache_bytes = cache_bytes;
  return options;
}

DistributedPrecompute::Result RunOffline(const Graph& g, const Hierarchy& h,
                                         const HgpaOptions& options,
                                         const StorageOptions& storage,
                                         size_t machines) {
  DistPrecomputeOptions dist;
  dist.num_machines = machines;
  dist.storage = storage;
  return DistributedPrecompute::Run(g, h, options, dist);
}

// Bit-equality of the full query surface between an owning in-memory index
// and a disk index over the same offline run.
void ExpectQuerySurfaceIdentical(const Graph& g, HgpaQueryEngine& memory,
                                 HgpaQueryEngine& disk) {
  for (NodeId q = 0; q < g.num_nodes(); q += 5) {
    EXPECT_EQ(memory.Query(q), disk.Query(q)) << "query " << q;
  }
  std::vector<HgpaQueryEngine::Preference> prefs{
      {0, 0.5}, {static_cast<NodeId>(g.num_nodes() / 2), 0.3}, {7, 0.2}};
  EXPECT_EQ(memory.QueryPreferenceSet(prefs), disk.QueryPreferenceSet(prefs));
}

TEST(StoreEquivalence, HgpaDiskMatchesMemoryOwned) {
  Graph g = RandomDigraph(110, 3.0, 13);
  HgpaOptions options = SmallOptions();
  Hierarchy h = Hierarchy::Build(g, options.hierarchy);

  auto mem_result =
      RunOffline(g, h, options, Backend(StorageBackend::kMemoryOwned), 4);
  // Tiny cache: smaller than any vector's record, so every access misses.
  auto disk_result =
      RunOffline(g, h, options, Backend(StorageBackend::kDisk, 1), 4);
  EXPECT_EQ(mem_result.TotalBytes(), disk_result.TotalBytes());
  EXPECT_EQ(mem_result.MaxMachineBytes(), disk_result.MaxMachineBytes());

  HgpaQueryEngine memory(HgpaIndex::FromDistributed(std::move(mem_result)));
  HgpaQueryEngine disk(HgpaIndex::FromDistributed(std::move(disk_result)));
  ExpectQuerySurfaceIdentical(g, memory, disk);

  StorageStats stats = disk.index().StorageStatsTotal();
  EXPECT_GT(stats.cache_misses, 0u);
  EXPECT_GT(stats.disk_bytes_read, 0u);
  EXPECT_EQ(stats.cache_hits, 0u);  // budget 1 can never keep anything
  EXPECT_EQ(memory.index().StorageStatsTotal().cache_misses, 0u);
}

TEST(StoreEquivalence, GpaDiskMatchesMemoryOwned) {
  Graph g = RandomDigraph(90, 3.0, 29);
  HgpaOptions options = SmallOptions();
  Hierarchy flat = Hierarchy::BuildFlat(g, 4, options.hierarchy.partition);

  auto mem_result =
      RunOffline(g, flat, options, Backend(StorageBackend::kMemoryOwned), 3);
  auto disk_result =
      RunOffline(g, flat, options, Backend(StorageBackend::kDisk, 1), 3);

  HgpaQueryEngine memory(HgpaIndex::FromDistributed(std::move(mem_result)));
  HgpaQueryEngine disk(HgpaIndex::FromDistributed(std::move(disk_result)));
  ExpectQuerySurfaceIdentical(g, memory, disk);
  EXPECT_GT(disk.index().StorageStatsTotal().cache_misses, 0u);
}

TEST(StoreEquivalence, CentralizedDistributeOnDiskMatchesReferencing) {
  // The referencing oracle path itself can spill: Distribute with the disk
  // backend serializes every placed vector, and queries still agree bit for
  // bit with the aliasing in-memory distribution of the same precomputation.
  Graph g = RandomDigraph(100, 3.0, 41);
  HgpaOptions options = SmallOptions();
  auto pre = HgpaPrecomputation::RunHgpa(g, options);

  HgpaQueryEngine ref(
      HgpaIndex::Distribute(pre, 4, Backend(StorageBackend::kMemoryRef)));
  HgpaQueryEngine disk(
      HgpaIndex::Distribute(pre, 4, Backend(StorageBackend::kDisk, 1)));
  ExpectQuerySurfaceIdentical(g, ref, disk);
}

TEST(StoreEquivalence, TopKThroughServerMatchesAndReportsColdServing) {
  Graph g = RandomDigraph(100, 3.0, 57);
  HgpaOptions options = SmallOptions();
  auto pre = HgpaPrecomputation::RunHgpa(g, options);

  QueryServer memory_server(
      HgpaQueryEngine(HgpaIndex::Distribute(pre, 3, Backend(StorageBackend::kMemoryRef))));
  QueryServer disk_server(
      HgpaQueryEngine(HgpaIndex::Distribute(pre, 3, Backend(StorageBackend::kDisk, 1))));

  for (NodeId q = 0; q < g.num_nodes(); q += 11) {
    QueryServer::TopKResponse a = memory_server.QueryTopK(q, 10);
    QueryServer::TopKResponse b = disk_server.QueryTopK(q, 10);
    ASSERT_EQ(a.top.size(), b.top.size()) << "query " << q;
    for (size_t i = 0; i < a.top.size(); ++i) {
      EXPECT_EQ(a.top[i].index, b.top[i].index) << "query " << q << " rank " << i;
      EXPECT_EQ(a.top[i].value, b.top[i].value) << "query " << q << " rank " << i;
    }
  }

  // Cold vs. warm serving is observable: the disk server's window shows
  // misses and spill reads, the in-memory one only hits.
  ServerStats disk_stats = disk_server.Stats();
  EXPECT_GT(disk_stats.cache_misses, 0u);
  EXPECT_GT(disk_stats.disk_bytes_read, 0u);
  ServerStats memory_stats = memory_server.Stats();
  EXPECT_EQ(memory_stats.cache_misses, 0u);
  EXPECT_EQ(memory_stats.disk_bytes_read, 0u);
  EXPECT_GT(memory_stats.cache_hits, 0u);
}

TEST(StoreEquivalence, WarmCacheIsAlsoBitIdentical) {
  // A budget large enough to keep the working set resident must of course
  // agree too — the cache only changes where bytes are read from.
  Graph g = RandomDigraph(80, 3.0, 71);
  HgpaOptions options = SmallOptions();
  auto pre = HgpaPrecomputation::RunHgpa(g, options);

  HgpaQueryEngine ref(
      HgpaIndex::Distribute(pre, 3, Backend(StorageBackend::kMemoryRef)));
  HgpaQueryEngine disk(
      HgpaIndex::Distribute(pre, 3, Backend(StorageBackend::kDisk)));

  // Two passes: pass one loads (misses), pass two hits; both bit-identical.
  for (int pass = 0; pass < 2; ++pass) {
    for (NodeId q = 0; q < g.num_nodes(); q += 7) {
      EXPECT_EQ(ref.Query(q), disk.Query(q)) << "pass " << pass << " query " << q;
    }
  }
  StorageStats stats = disk.index().StorageStatsTotal();
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_GT(stats.cache_misses, 0u);
  EXPECT_GT(disk.index().ResidentBytesTotal(), 0u);
}

}  // namespace
}  // namespace dppr
