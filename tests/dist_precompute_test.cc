#include "dppr/core/dist_precompute.h"

#include <gtest/gtest.h>

#include "dppr/core/hgpa.h"
#include "dppr/graph/datasets.h"
#include "test_util.h"

namespace dppr {
namespace {

using ::dppr::testing::RandomDigraph;

HgpaOptions SmallOptions() {
  HgpaOptions options;
  options.ppr.tolerance = 1e-8;
  options.hierarchy.max_levels = 3;
  options.hierarchy.min_subgraph_size = 4;
  return options;
}

// Machine that must hold a centralized item under the shared placement plan.
size_t MachineOf(const PlacementPlan& plan, const HgpaPrecomputation::Item& item) {
  return plan.own_machine[item.node];
}

// Asserts the distributed run reproduced the centralized oracle exactly:
// every item bit-identical, placed on the planned machine and nowhere else,
// with matching byte ledgers.
void ExpectBitIdentical(const HgpaPrecomputation& pre,
                        const DistributedPrecompute::Result& result) {
  size_t stored = 0;
  for (const auto& store : result.stores) stored += store.num_vectors();
  ASSERT_EQ(stored, pre.items().size());

  for (const auto& item : pre.items()) {
    size_t machine = MachineOf(result.plan, item);
    PpvRef got = result.stores[machine].Find(item.kind, item.sub, item.node);
    ASSERT_TRUE(got)
        << "kind " << static_cast<int>(item.kind) << " sub " << item.sub
        << " node " << item.node << " missing from machine " << machine;
    EXPECT_EQ(*got, item.vec) << "vector differs for node " << item.node;
    for (size_t other = 0; other < result.stores.size(); ++other) {
      if (other == machine) continue;
      EXPECT_FALSE(result.stores[other].Find(item.kind, item.sub, item.node))
          << "node " << item.node << " duplicated on machine " << other;
    }
  }
}

TEST(DistPrecompute, HgpaVectorsBitIdenticalToCentralized) {
  Graph g = RandomDigraph(120, 3.0, 7);
  HgpaOptions options = SmallOptions();
  auto pre = HgpaPrecomputation::RunHgpa(g, options);

  DistPrecomputeOptions dist;
  dist.num_machines = 4;
  DistributedPrecompute::Result result = DistributedPrecompute::Run(
      g, pre->hierarchy(), options, dist);  // same hierarchy (copied)
  ExpectBitIdentical(*pre, result);
}

TEST(DistPrecompute, GpaFlatHierarchyBitIdenticalToCentralized) {
  Graph g = RandomDigraph(100, 3.0, 21);
  HgpaOptions options = SmallOptions();
  auto pre = HgpaPrecomputation::RunGpa(g, 4, options);

  DistPrecomputeOptions dist;
  dist.num_machines = 3;
  DistributedPrecompute::Result result =
      DistributedPrecompute::Run(g, pre->hierarchy(), options, dist);
  ExpectBitIdentical(*pre, result);
}

TEST(DistPrecompute, SequentialAndParallelClusterModesAgree) {
  Graph g = RandomDigraph(90, 3.0, 33);
  HgpaOptions options = SmallOptions();
  auto pre = HgpaPrecomputation::RunHgpa(g, options);

  for (bool sequential : {false, true}) {
    DistPrecomputeOptions dist;
    dist.num_machines = 5;
    dist.sequential = sequential;
    DistributedPrecompute::Result result =
        DistributedPrecompute::Run(g, pre->hierarchy(), options, dist);
    ExpectBitIdentical(*pre, result);
  }
}

TEST(DistPrecompute, StorageLedgersMatchLegacyDistribute) {
  Graph g = RandomDigraph(110, 3.0, 55);
  HgpaOptions options = SmallOptions();
  auto pre = HgpaPrecomputation::RunHgpa(g, options);

  for (size_t machines : {1u, 3u, 6u}) {
    HgpaIndex legacy = HgpaIndex::Distribute(pre, machines);
    DistPrecomputeOptions dist;
    dist.num_machines = machines;
    DistributedPrecompute::Result result =
        DistributedPrecompute::Run(g, pre->hierarchy(), options, dist);
    EXPECT_EQ(result.MaxMachineBytes(), legacy.MaxMachineBytes());
    EXPECT_EQ(result.TotalBytes(), legacy.TotalBytes());
    for (size_t m = 0; m < machines; ++m) {
      EXPECT_EQ(result.stores[m].TotalSerializedBytes(),
                legacy.store(m).TotalSerializedBytes())
          << "machine " << m << " of " << machines;
    }
  }
}

TEST(DistPrecompute, QueriesFromOwnedStoresMatchLegacyEngineExactly) {
  // Same placement + bit-identical vectors + same fold order ⇒ the two
  // engines must agree to the last bit, not just within tolerance.
  Graph g = RandomDigraph(100, 3.0, 90);
  HgpaOptions options = SmallOptions();
  auto pre = HgpaPrecomputation::RunHgpa(g, options);

  DistPrecomputeOptions dist;
  dist.num_machines = 4;
  DistributedPrecompute::Result result =
      DistributedPrecompute::Run(g, pre->hierarchy(), options, dist);

  HgpaQueryEngine legacy(HgpaIndex::Distribute(pre, 4));
  HgpaIndex owned_index = HgpaIndex::FromDistributed(std::move(result));
  EXPECT_TRUE(owned_index.owns_vectors());
  HgpaQueryEngine owned(std::move(owned_index));

  for (NodeId q = 0; q < g.num_nodes(); q += 7) {
    QueryMetrics legacy_metrics;
    QueryMetrics owned_metrics;
    SparseVector a = legacy.Query(q, &legacy_metrics);
    SparseVector b = owned.Query(q, &owned_metrics);
    EXPECT_EQ(a, b) << "query " << q;
    EXPECT_EQ(legacy_metrics.comm.messages, owned_metrics.comm.messages);
    EXPECT_EQ(legacy_metrics.comm.bytes, owned_metrics.comm.bytes);
  }
}

TEST(DistPrecompute, GpaQueriesFromOwnedStoresMatchLegacyEngine) {
  Graph g = RandomDigraph(80, 3.0, 11);
  HgpaOptions options = SmallOptions();
  auto pre = HgpaPrecomputation::RunGpa(g, 4, options);

  DistPrecomputeOptions dist;
  dist.num_machines = 3;
  dist.sequential = true;
  DistributedPrecompute::Result result =
      DistributedPrecompute::Run(g, pre->hierarchy(), options, dist);
  HgpaQueryEngine legacy(HgpaIndex::Distribute(pre, 3));
  HgpaQueryEngine owned(HgpaIndex::FromDistributed(std::move(result)));
  for (NodeId q = 0; q < g.num_nodes(); q += 13) {
    EXPECT_EQ(legacy.Query(q), owned.Query(q)) << "query " << q;
  }
}

size_t HubLevels(const Hierarchy& hierarchy) {
  size_t hub_levels = 0;
  std::vector<bool> seen(hierarchy.num_levels(), false);
  for (const auto& sub : hierarchy.subgraphs()) {
    if (!sub.hubs.empty() && !seen[sub.level]) {
      seen[sub.level] = true;
      ++hub_levels;
    }
  }
  return hub_levels;
}

TEST(DistPrecompute, OfflineStatsCountSuperstepsAndTraffic) {
  // Placements are pinned (not env-defaulted): these assertions are
  // mode-specific and must hold under every CI DPPR_OFFLINE leg.
  Graph g = RandomDigraph(100, 3.0, 64);
  HgpaOptions options = SmallOptions();

  DistPrecomputeOptions dist;
  dist.num_machines = 4;
  dist.locality = OfflinePlacement::kOwner;
  DistributedPrecompute::Result owner =
      DistributedPrecompute::RunHgpa(g, options, dist);
  dist.locality = OfflinePlacement::kLocality;
  DistributedPrecompute::Result locality =
      DistributedPrecompute::RunHgpa(g, options, dist);

  const size_t hub_levels = HubLevels(*owner.hierarchy);
  ASSERT_GT(hub_levels, 0u);

  // Owner placement: one leaf round plus a skeleton and a partial gather
  // round per level with hubs; nothing ever shuffles machine→machine.
  EXPECT_EQ(owner.placement, OfflinePlacement::kOwner);
  EXPECT_EQ(owner.offline.rounds, 1 + 2 * hub_levels);
  EXPECT_EQ(owner.offline.exchange_rounds, 0u);
  EXPECT_EQ(owner.offline.comm.messages,
            owner.offline.rounds * dist.num_machines);
  EXPECT_EQ(owner.offline.shuffled.bytes, 0u);
  // All shipped payload bytes materialized as stored vectors plus record
  // headers, so traffic must dominate the stores' serialized footprint.
  EXPECT_GT(owner.offline.comm.bytes, owner.TotalBytes());
  // With 4 machines and Eq. 7 spreading, most hub induces are off-home.
  EXPECT_GT(owner.remote_induces, 0u);

  // Locality placement: the hub supersteps collapse into one exchange round
  // per level, the coordinator link carries only the leaf gather, and no
  // machine ever induces a subgraph it is not home to.
  EXPECT_EQ(locality.placement, OfflinePlacement::kLocality);
  EXPECT_EQ(locality.offline.rounds, 1 + hub_levels);
  EXPECT_EQ(locality.offline.exchange_rounds, hub_levels);
  EXPECT_EQ(locality.offline.comm.messages, dist.num_machines);
  EXPECT_EQ(locality.offline.shuffled.messages,
            hub_levels * dist.num_machines * (dist.num_machines - 1));
  EXPECT_EQ(locality.remote_induces, 0u);
  EXPECT_LE(locality.induces, owner.induces);

  // Cross-mode ledger identity: every hub record owner-placement gathered is
  // the same record locality placement either kept at home or shuffled, so
  // the byte columns partition exactly.
  size_t level_bytes = 0;
  ASSERT_EQ(locality.levels.size(), hub_levels);
  for (const auto& level : locality.levels) {
    level_bytes += level.local_bytes + level.shuffled_bytes;
  }
  EXPECT_EQ(owner.offline.comm.bytes,
            locality.offline.comm.bytes + level_bytes);
  EXPECT_EQ(owner.TotalBytes(), locality.TotalBytes());

  for (const DistributedPrecompute::Result* result : {&owner, &locality}) {
    EXPECT_GT(result->offline.simulated_seconds, 0.0);
    EXPECT_GT(result->ledger.TotalSeconds(), 0.0);
    EXPECT_EQ(result->ledger.num_machines(), dist.num_machines);
  }
}

TEST(DistPrecompute, LocalityModeBitIdenticalToOwnerMode) {
  Graph g = RandomDigraph(110, 3.0, 19);
  HgpaOptions options = SmallOptions();
  auto pre = HgpaPrecomputation::RunHgpa(g, options);

  for (bool sequential : {false, true}) {
    DistPrecomputeOptions dist;
    dist.num_machines = 4;
    dist.sequential = sequential;
    dist.locality = OfflinePlacement::kOwner;
    DistributedPrecompute::Result owner =
        DistributedPrecompute::Run(g, pre->hierarchy(), options, dist);
    dist.locality = OfflinePlacement::kLocality;
    DistributedPrecompute::Result locality =
        DistributedPrecompute::Run(g, pre->hierarchy(), options, dist);

    // Both modes must reproduce the centralized oracle on every machine —
    // which also makes them bit-identical to each other.
    ExpectBitIdentical(*pre, owner);
    ExpectBitIdentical(*pre, locality);
    for (size_t m = 0; m < dist.num_machines; ++m) {
      EXPECT_EQ(owner.stores[m].TotalSerializedBytes(),
                locality.stores[m].TotalSerializedBytes())
          << "machine " << m;
    }
  }
}

TEST(DistPrecompute, GpaLocalityModeBitIdenticalToCentralized) {
  Graph g = RandomDigraph(90, 3.0, 47);
  HgpaOptions options = SmallOptions();
  auto pre = HgpaPrecomputation::RunGpa(g, 5, options);

  DistPrecomputeOptions dist;
  dist.num_machines = 3;
  dist.locality = OfflinePlacement::kLocality;
  DistributedPrecompute::Result result =
      DistributedPrecompute::Run(g, pre->hierarchy(), options, dist);
  ExpectBitIdentical(*pre, result);
  // GPA's flat hierarchy has one hub level: one leaf gather + one shuffle.
  EXPECT_EQ(result.offline.rounds, 2u);
  EXPECT_EQ(result.offline.exchange_rounds, 1u);
  EXPECT_EQ(result.remote_induces, 0u);
}

TEST(DistPrecompute, HomeMachinePartitionsSubgraphsAndMatchesLeafPacking) {
  Graph g = RandomDigraph(130, 3.0, 3);
  HgpaOptions options = SmallOptions();

  DistPrecomputeOptions dist;
  dist.num_machines = 4;
  DistributedPrecompute::Result result =
      DistributedPrecompute::RunHgpa(g, options, dist);

  const PlacementPlan& plan = result.plan;
  ASSERT_EQ(plan.home_machine.size(), result.hierarchy->num_subgraphs());
  for (size_t home : plan.home_machine) {
    EXPECT_LT(home, dist.num_machines);
  }
  // A leaf's home is the machine its packing put it on — the machine whose
  // nodes it owns.
  for (size_t m = 0; m < dist.num_machines; ++m) {
    for (SubgraphId leaf : plan.machine_leaves[m]) {
      EXPECT_EQ(plan.home_machine[leaf], m) << "leaf " << leaf;
      for (NodeId u : result.hierarchy->subgraph(leaf).nodes) {
        EXPECT_EQ(plan.own_machine[u], m);
      }
    }
  }
}

TEST(DistPrecompute, CommBytesIndependentOfNetworkModel) {
  Graph g = RandomDigraph(80, 3.0, 29);
  HgpaOptions options = SmallOptions();

  DistPrecomputeOptions slow;
  slow.num_machines = 3;
  slow.sequential = true;
  slow.network = NetworkModel::Lan100Mbit();
  DistPrecomputeOptions fast = slow;
  fast.network = NetworkModel::Datacenter();

  DistributedPrecompute::Result a =
      DistributedPrecompute::RunHgpa(g, options, slow);
  DistributedPrecompute::Result b =
      DistributedPrecompute::RunHgpa(g, options, fast);
  EXPECT_EQ(a.offline.comm.bytes, b.offline.comm.bytes);
  EXPECT_EQ(a.offline.comm.messages, b.offline.comm.messages);
  EXPECT_EQ(a.TotalBytes(), b.TotalBytes());
}

TEST(DistPrecompute, SingleMachineClusterHoldsEverything) {
  Graph g = RandomDigraph(60, 3.0, 42);
  HgpaOptions options = SmallOptions();
  auto pre = HgpaPrecomputation::RunHgpa(g, options);

  DistPrecomputeOptions dist;
  dist.num_machines = 1;
  DistributedPrecompute::Result result =
      DistributedPrecompute::Run(g, pre->hierarchy(), options, dist);
  EXPECT_EQ(result.stores[0].num_vectors(), pre->items().size());
  EXPECT_EQ(result.stores[0].num_owned(), pre->items().size());
  EXPECT_EQ(result.TotalBytes(), pre->TotalBytes());
}

TEST(DistPrecompute, PreferenceSetQueriesMatchAcrossPaths) {
  Graph g = RandomDigraph(90, 3.0, 77);
  HgpaOptions options = SmallOptions();
  auto pre = HgpaPrecomputation::RunHgpa(g, options);

  DistPrecomputeOptions dist;
  dist.num_machines = 4;
  DistributedPrecompute::Result result =
      DistributedPrecompute::Run(g, pre->hierarchy(), options, dist);
  HgpaQueryEngine legacy(HgpaIndex::Distribute(pre, 4));
  HgpaQueryEngine owned(HgpaIndex::FromDistributed(std::move(result)));

  std::vector<HgpaQueryEngine::Preference> prefs{{5, 0.5}, {42, 0.3}, {77, 0.2}};
  EXPECT_EQ(legacy.QueryPreferenceSet(prefs), owned.QueryPreferenceSet(prefs));
}

}  // namespace
}  // namespace dppr
