#include "dppr/ppr/dense_solver.h"

#include <gtest/gtest.h>

#include "dppr/common/rng.h"
#include "dppr/graph/graph_builder.h"
#include "dppr/graph/local_graph.h"
#include "test_util.h"

namespace dppr {
namespace {

TEST(DenseSolver, SolvesIdentity) {
  std::vector<double> a{1, 0, 0, 1};
  std::vector<double> b{3, 4};
  std::vector<double> x = SolveDenseLinearSystem(a, b);
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], 4.0);
}

TEST(DenseSolver, SolvesSystemRequiringPivoting) {
  // First pivot is 0: partial pivoting must swap rows.
  std::vector<double> a{0, 1, 1, 0};
  std::vector<double> b{2, 5};
  std::vector<double> x = SolveDenseLinearSystem(a, b);
  EXPECT_DOUBLE_EQ(x[0], 5.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(DenseSolver, RandomDiagonallyDominantSystems) {
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = 2 + rng.Uniform(20);
    std::vector<double> a(n * n);
    std::vector<double> x_true(n);
    for (size_t i = 0; i < n; ++i) {
      double row_sum = 0;
      for (size_t j = 0; j < n; ++j) {
        if (i != j) {
          a[i * n + j] = rng.NextDouble() - 0.5;
          row_sum += std::abs(a[i * n + j]);
        }
      }
      a[i * n + i] = row_sum + 1.0 + rng.NextDouble();
      x_true[i] = rng.NextDouble() * 10 - 5;
    }
    std::vector<double> b(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) b[i] += a[i * n + j] * x_true[j];
    }
    std::vector<double> x = SolveDenseLinearSystem(a, b);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x[i], x_true[i], 1e-8) << "trial " << trial;
    }
  }
}

TEST(ExactPpvDense, HandEvaluatedThreeCycle) {
  // 0 -> 1 -> 2 -> 0. r(0) = α/(1-(1-α)^3), r(1) = (1-α)r(0), ...
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  Graph g = builder.Build();
  std::vector<double> r = ExactPpvDense(g, 0, PprOptions{});
  double alpha = 0.15;
  double beta = 1.0 - alpha;
  double r0 = alpha / (1.0 - beta * beta * beta);
  EXPECT_NEAR(r[0], r0, 1e-12);
  EXPECT_NEAR(r[1], beta * r0, 1e-12);
  EXPECT_NEAR(r[2], beta * beta * r0, 1e-12);
}

TEST(ExactPpvDense, ProbabilityMassSumsToOneWithoutDangling) {
  Graph g = testing::RandomDigraph(50, 3.0, 21);
  std::vector<double> r = ExactPpvDense(g, 7, PprOptions{});
  double sum = 0.0;
  for (double v : r) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-10);
}

TEST(ExactPpvDense, LinearityInQueryNodes) {
  // PPV of a preference *set* is the average of single-node PPVs ([25]'s
  // linearity theorem) — verify on two nodes by superposition.
  Graph g = testing::RandomDigraph(40, 3.0, 33);
  std::vector<double> r0 = ExactPpvDense(g, 0, PprOptions{});
  std::vector<double> r1 = ExactPpvDense(g, 1, PprOptions{});
  // Solve with preference split 50/50 by summing scaled solutions.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    double combined = 0.5 * r0[v] + 0.5 * r1[v];
    EXPECT_GE(combined, 0.0);
    EXPECT_LE(combined, 1.0);
  }
}

}  // namespace
}  // namespace dppr
