#include "dppr/core/routing.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "dppr/core/hgpa.h"
#include "test_util.h"

namespace dppr {
namespace {

using ::dppr::testing::RandomDigraph;

HgpaOptions RoutingTestOptions() {
  HgpaOptions options;
  options.ppr.tolerance = 1e-8;
  options.hierarchy.max_levels = 4;
  options.hierarchy.min_subgraph_size = 4;
  return options;
}

std::shared_ptr<const HgpaPrecomputation> Precompute(const Graph& graph,
                                                     bool hgpa = true) {
  HgpaOptions options = RoutingTestOptions();
  if (!hgpa) options.hierarchy.max_levels = 1;  // GPA: flat hierarchy
  return HgpaPrecomputation::RunHgpa(graph, options);
}

HgpaQueryEngine MakeEngine(std::shared_ptr<const HgpaPrecomputation> pre,
                           size_t machines, RoutingMode mode,
                           size_t replicate_bytes = 0) {
  ReplicationOptions replication;
  replication.budget_bytes = replicate_bytes;
  return HgpaQueryEngine(
      HgpaIndex::Distribute(std::move(pre), machines, StorageOptions::FromEnv(),
                            replication),
      NetworkModel{}, TransportOptions::FromEnv(), RoutingOptions{mode});
}

/// The core invariant: routed answers are BIT-identical to broadcast for
/// every query node — same fold order per owner, owner-ascending coordinator
/// reduce, so the floating-point sums match exactly.
void ExpectRoutedMatchesBroadcast(const Graph& graph, size_t machines,
                                  bool hgpa, size_t replicate_bytes) {
  auto pre = Precompute(graph, hgpa);
  HgpaQueryEngine routed =
      MakeEngine(pre, machines, RoutingMode::kRoute, replicate_bytes);
  HgpaQueryEngine broadcast =
      MakeEngine(pre, machines, RoutingMode::kBroadcast);
  ASSERT_EQ(routed.routing_mode(), RoutingMode::kRoute);
  ASSERT_EQ(broadcast.routing_mode(), RoutingMode::kBroadcast);
  ASSERT_NE(routed.router(), nullptr);
  ASSERT_EQ(broadcast.router(), nullptr);

  uint64_t routed_messages = 0, broadcast_messages = 0;
  for (NodeId q = 0; q < graph.num_nodes(); ++q) {
    QueryMetrics routed_metrics, broadcast_metrics;
    SparseVector a = routed.Query(q, &routed_metrics);
    SparseVector b = broadcast.Query(q, &broadcast_metrics);
    EXPECT_EQ(a, b) << "query " << q;
    EXPECT_LE(routed_metrics.machines_contacted,
              broadcast_metrics.machines_contacted)
        << "query " << q;
    EXPECT_GE(routed_metrics.machines_contacted, 1u) << "query " << q;
    EXPECT_EQ(broadcast_metrics.machines_contacted, machines);
    EXPECT_EQ(broadcast_metrics.routing_bytes_saved, 0u);
    routed_messages += routed_metrics.comm.messages;
    broadcast_messages += broadcast_metrics.comm.messages;
  }
  EXPECT_LE(routed_messages, broadcast_messages);
}

TEST(QueryRouting, RoutedBitIdenticalToBroadcastHgpa) {
  ExpectRoutedMatchesBroadcast(RandomDigraph(90, 3.0, 17), 4, /*hgpa=*/true,
                               /*replicate_bytes=*/0);
}

TEST(QueryRouting, RoutedBitIdenticalToBroadcastGpa) {
  ExpectRoutedMatchesBroadcast(RandomDigraph(90, 3.0, 29), 4, /*hgpa=*/false,
                               /*replicate_bytes=*/0);
}

TEST(QueryRouting, RoutedBitIdenticalWithReplication) {
  // A generous budget replicates most hub groups: plans collapse toward the
  // source's own machine, and answers must STILL be bit-identical.
  ExpectRoutedMatchesBroadcast(RandomDigraph(90, 3.0, 17), 4, /*hgpa=*/true,
                               /*replicate_bytes=*/64 << 20);
}

TEST(QueryRouting, ManyMachinesLeaveNonContributors) {
  // More machines than any one chain touches: routing must skip machines
  // outright and report the bytes broadcast would have wasted on them.
  Graph graph = RandomDigraph(40, 1.5, 7);
  auto pre = Precompute(graph);
  HgpaQueryEngine routed = MakeEngine(pre, 8, RoutingMode::kRoute);
  HgpaQueryEngine broadcast = MakeEngine(pre, 8, RoutingMode::kBroadcast);
  bool any_skipped = false;
  for (NodeId q = 0; q < graph.num_nodes(); ++q) {
    QueryMetrics metrics;
    SparseVector a = routed.Query(q, &metrics);
    EXPECT_EQ(a, broadcast.Query(q)) << "query " << q;
    if (metrics.machines_contacted < 8) {
      any_skipped = true;
      EXPECT_GT(metrics.routing_bytes_saved, 0u) << "query " << q;
    }
  }
  EXPECT_TRUE(any_skipped);
}

TEST(QueryRouting, PreferenceSetsAndBatchesMatchBroadcast) {
  Graph graph = RandomDigraph(80, 3.0, 5);
  auto pre = Precompute(graph);
  HgpaQueryEngine routed = MakeEngine(pre, 3, RoutingMode::kRoute);
  HgpaQueryEngine broadcast = MakeEngine(pre, 3, RoutingMode::kBroadcast);
  using Preference = HgpaQueryEngine::Preference;

  std::vector<std::vector<Preference>> batch{
      {{7, 1.0}},
      {{3, 0.5}, {40, 0.5}},
      {{12, 0.25}, {13, 0.25}, {60, 0.5}},
      {{7, 1.0}},
  };
  std::vector<QueryMetrics> per_query;
  QueryMetrics round;
  std::vector<SparseVector> got =
      routed.QueryPreferenceSetMany(batch, &per_query, &round);
  ASSERT_EQ(got.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(got[i], broadcast.QueryPreferenceSet(batch[i])) << "slot " << i;
    // Unbatched routed answers match too (same plan, own round).
    EXPECT_EQ(routed.QueryPreferenceSet(batch[i]), got[i]) << "slot " << i;
  }
  EXPECT_GE(round.comm.messages, 1u);
  EXPECT_LE(round.comm.messages, routed.index().num_machines());
}

TEST(QueryRouting, ZeroWeightPreferencesContactNoMachines) {
  Graph graph = RandomDigraph(40, 3.0, 9);
  auto pre = Precompute(graph);
  HgpaQueryEngine routed = MakeEngine(pre, 3, RoutingMode::kRoute);
  QueryMetrics metrics;
  SparseVector ppv = routed.QueryPreferenceSet(
      std::vector<HgpaQueryEngine::Preference>{{5, 0.0}}, &metrics);
  EXPECT_EQ(ppv.size(), 0u);
  EXPECT_EQ(metrics.machines_contacted, 0u);
  EXPECT_EQ(metrics.comm.messages, 0u);
}

TEST(QueryRouting, PlanInvariants) {
  Graph graph = RandomDigraph(90, 3.0, 17);
  auto pre = Precompute(graph);
  HgpaIndex index = HgpaIndex::Distribute(pre, 5);
  QueryRouter router(index);
  for (NodeId q = 0; q < graph.num_nodes(); ++q) {
    NodeId sources[] = {q};
    QueryRouter::Plan plan = router.Route(sources);
    ASSERT_GE(plan.machines.size(), 1u);
    ASSERT_EQ(plan.owners.size(), plan.machines.size());
    // Participants sorted strictly ascending; every participant covers at
    // least itself; owner lists sorted; owners covered exactly once overall.
    std::vector<bool> covered(index.num_machines(), false);
    size_t owners_total = 0;
    for (size_t i = 0; i < plan.machines.size(); ++i) {
      if (i > 0) EXPECT_LT(plan.machines[i - 1], plan.machines[i]);
      ASSERT_LT(plan.machines[i], index.num_machines());
      ASSERT_GE(plan.owners[i].size(), 1u);
      for (size_t j = 0; j < plan.owners[i].size(); ++j) {
        if (j > 0) EXPECT_LT(plan.owners[i][j - 1], plan.owners[i][j]);
        EXPECT_FALSE(covered[plan.owners[i][j]]);
        covered[plan.owners[i][j]] = true;
      }
      owners_total += plan.owners[i].size();
      EXPECT_TRUE(covered[plan.machines[i]]) << "machine must cover itself";
    }
    EXPECT_EQ(owners_total, plan.contributors);
    // The source's own-vector machine always participates or is absorbed.
    EXPECT_TRUE(covered[index.own_vector_machine(q)]);
  }
}

TEST(QueryRouting, ReplicationBookkeeping) {
  Graph graph = RandomDigraph(90, 3.0, 17);
  auto pre = Precompute(graph);
  constexpr size_t kBudget = 1 << 16;
  ReplicationOptions replication;
  replication.budget_bytes = kBudget;
  HgpaIndex plain = HgpaIndex::Distribute(pre, 4);
  HgpaIndex replicated =
      HgpaIndex::Distribute(pre, 4, StorageOptions::FromEnv(), replication);

  EXPECT_EQ(plain.num_replicated_hubs(), 0u);
  EXPECT_EQ(plain.replica_bytes_per_machine(), 0u);
  EXPECT_GT(replicated.num_replicated_hubs(), 0u);
  EXPECT_GT(replicated.replica_bytes_per_machine(), 0u);
  EXPECT_LE(replicated.replica_bytes_per_machine(), kBudget);
  // Replicas are whole (sub, owner) groups: if one hub of a group is
  // replicated, all of that owner's hubs in the subgraph are.
  for (size_t m = 0; m < replicated.num_machines(); ++m) {
    for (const auto& [sub, hubs] : replicated.hubs_on_machine(m)) {
      size_t marked = 0;
      for (NodeId hub : hubs) marked += replicated.hub_replicated(sub, hub);
      EXPECT_TRUE(marked == 0 || marked == hubs.size())
          << "partial group sub=" << sub << " machine=" << m;
    }
  }
  // Replication inflates per-machine bytes by exactly the replica ledger.
  std::vector<size_t> plain_bytes = plain.BytesPerMachine();
  std::vector<size_t> repl_bytes = replicated.BytesPerMachine();
  for (size_t m = 0; m < 4; ++m) {
    EXPECT_GE(repl_bytes[m], plain_bytes[m]);
    EXPECT_LE(repl_bytes[m] - plain_bytes[m],
              replicated.replica_bytes_per_machine());
  }
}

TEST(QueryRouting, EnvSelectsMode) {
  // The suite itself runs under every DPPR_ROUTING CI leg: save and restore.
  const char* prev = ::getenv("DPPR_ROUTING");
  std::string saved = prev ? prev : "";
  ::setenv("DPPR_ROUTING", "broadcast", 1);
  EXPECT_EQ(RoutingOptions::FromEnv().mode, RoutingMode::kBroadcast);
  ::setenv("DPPR_ROUTING", "route", 1);
  EXPECT_EQ(RoutingOptions::FromEnv().mode, RoutingMode::kRoute);
  ::unsetenv("DPPR_ROUTING");
  EXPECT_EQ(RoutingOptions::FromEnv().mode, RoutingMode::kRoute);
  EXPECT_EQ(RoutingOptions::FromEnv(RoutingMode::kBroadcast).mode,
            RoutingMode::kBroadcast);
  if (prev) ::setenv("DPPR_ROUTING", saved.c_str(), 1);
}

}  // namespace
}  // namespace dppr
