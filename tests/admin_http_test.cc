// Admin plane: a real loopback client against AdminHttpServer — the
// built-in routes, status-section composition, and the rejection paths.

#include "dppr/obs/admin_http.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>

#include "dppr/obs/metrics.h"
#include "json_util.h"

namespace dppr {
namespace {

using ::dppr::testing::JsonParser;
using ::dppr::testing::JsonValue;

/// One blocking HTTP exchange against 127.0.0.1:`port`; returns the whole
/// response (status line + headers + body).
std::string Fetch(uint16_t port, const std::string& request) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  EXPECT_EQ(send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

std::string Get(uint16_t port, const std::string& path) {
  return Fetch(port, "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

std::string Body(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  EXPECT_NE(pos, std::string::npos) << response;
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(AdminHttp, HealthzAndIndex) {
  obs::AdminHttpServer server;
  server.Start(0);  // ephemeral port
  ASSERT_NE(server.port(), 0);

  std::string health = Get(server.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos) << health;
  EXPECT_EQ(Body(health), "ok\n");

  std::string index = Get(server.port(), "/");
  EXPECT_NE(Body(index).find("/metrics"), std::string::npos);
  server.Stop();
}

TEST(AdminHttp, MetricsServesPrometheusText) {
  obs::MetricsRegistry::Global().GetCounter("admin.test.counter")->Add(7);
  obs::AdminHttpServer server;
  server.Start(0);
  std::string response = Get(server.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_NE(Body(response).find("dppr_admin_test_counter 7"),
            std::string::npos);
  server.Stop();
}

TEST(AdminHttp, StatuszComposesSectionsAsJson) {
  obs::AdminHttpServer server;
  // Empty /statusz is still a valid JSON object.
  server.Start(0);
  EXPECT_EQ(Body(Get(server.port(), "/statusz")), "{}");

  server.HandleStatus("alpha", [] { return std::string("{\"x\":1}"); });
  server.HandleStatus("beta", [] { return std::string("[2,3]"); });
  JsonValue doc =
      JsonParser(Body(Get(server.port(), "/statusz"))).Parse();
  ASSERT_EQ(doc.kind, JsonValue::kObject);
  EXPECT_EQ(doc.at("alpha").at("x").number, 1.0);
  ASSERT_EQ(doc.at("beta").array.size(), 2u);
  EXPECT_EQ(doc.at("beta").array[1].number, 3.0);

  // Re-registering a section replaces it.
  server.HandleStatus("alpha", [] { return std::string("4"); });
  doc = JsonParser(Body(Get(server.port(), "/statusz"))).Parse();
  EXPECT_EQ(doc.at("alpha").number, 4.0);
  server.Stop();
}

TEST(AdminHttp, RejectsUnknownPathsAndNonGet) {
  obs::AdminHttpServer server;
  server.Start(0);
  EXPECT_NE(Get(server.port(), "/nope").find("404 Not Found"),
            std::string::npos);
  EXPECT_NE(Fetch(server.port(),
                  "POST /metrics HTTP/1.1\r\nHost: x\r\n"
                  "Content-Length: 0\r\n\r\n")
                .find("405 Method Not Allowed"),
            std::string::npos);
  // Query strings are stripped before dispatch.
  EXPECT_EQ(Body(Get(server.port(), "/healthz?probe=1")), "ok\n");
  server.Stop();
}

TEST(AdminHttp, CustomHandlerAndStopIdempotence) {
  obs::AdminHttpServer server;
  server.Handle("/custom", "text/plain", [] { return std::string("hi"); });
  server.Start(0);
  EXPECT_EQ(Body(Get(server.port(), "/custom")), "hi");
  server.Stop();
  server.Stop();  // idempotent
}

}  // namespace
}  // namespace dppr
