#include "dppr/ppr/pagerank.h"

#include <gtest/gtest.h>

#include "dppr/graph/graph_builder.h"
#include "test_util.h"

namespace dppr {
namespace {

TEST(PageRank, UniformOnDirectedCycle) {
  GraphBuilder builder(5);
  for (NodeId u = 0; u < 5; ++u) builder.AddEdge(u, (u + 1) % 5);
  Graph g = builder.Build();
  std::vector<double> pr = GlobalPageRank(g);
  for (double v : pr) EXPECT_NEAR(v, 0.2, 1e-6);
}

TEST(PageRank, SumsToOne) {
  Graph g = testing::RandomDigraph(200, 3.0, 9);
  std::vector<double> pr = GlobalPageRank(g);
  double sum = 0.0;
  for (double v : pr) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(PageRank, SumsToOneWithDanglingNodes) {
  Graph g = testing::RandomDigraph(100, 1.2, 4, /*self_loop_dangling=*/false);
  ASSERT_GT(g.CountDanglingNodes(), 0u);
  std::vector<double> pr = GlobalPageRank(g);
  double sum = 0.0;
  for (double v : pr) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-6);  // dangling mass redistributed, not lost
}

TEST(PageRank, StarCenterDominates) {
  GraphBuilder builder(10);
  for (NodeId u = 1; u < 10; ++u) {
    builder.AddEdge(u, 0);
    builder.AddEdge(0, u);
  }
  Graph g = builder.Build();
  std::vector<double> pr = GlobalPageRank(g);
  for (NodeId u = 1; u < 10; ++u) EXPECT_GT(pr[0], pr[u]);
}

TEST(PageRank, TopNodesAreSortedByScore) {
  Graph g = testing::RandomDigraph(300, 3.0, 17);
  std::vector<double> pr = GlobalPageRank(g);
  std::vector<NodeId> top = TopPageRankNodes(g, 10);
  ASSERT_EQ(top.size(), 10u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(pr[top[i - 1]], pr[top[i]]);
  }
  // Nothing outside the top-10 beats the 10th.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (std::find(top.begin(), top.end(), u) == top.end()) {
      EXPECT_LE(pr[u], pr[top.back()] + 1e-12);
    }
  }
}

TEST(PageRank, KLargerThanGraphIsClamped) {
  Graph g = testing::RandomDigraph(20, 2.0, 3);
  EXPECT_EQ(TopPageRankNodes(g, 100).size(), 20u);
}

}  // namespace
}  // namespace dppr
