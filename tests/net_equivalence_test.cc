// Acceptance suite for the transport subsystem: the full offline
// precomputation and the whole query surface (single-node, preference-set,
// top-k; GPA and HGPA) must be bit-identical whether the cluster's payloads
// move through the in-process hand-off or real localhost TCP sockets — same
// vectors, same byte ledgers, same answers. The transport may only change
// where bytes travel, never what they say.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "dppr/core/dist_precompute.h"
#include "dppr/core/hgpa.h"
#include "dppr/serve/query_server.h"
#include "test_util.h"

namespace dppr {
namespace {

using ::dppr::testing::RandomDigraph;

HgpaOptions SmallOptions() {
  HgpaOptions options;
  options.ppr.tolerance = 1e-8;
  options.hierarchy.max_levels = 3;
  options.hierarchy.min_subgraph_size = 4;
  return options;
}

TransportOptions Backend(TransportBackend backend) {
  TransportOptions options;
  options.backend = backend;
  return options;
}

DistributedPrecompute::Result RunOffline(const Graph& g, const Hierarchy& h,
                                         const HgpaOptions& options,
                                         TransportBackend backend,
                                         size_t machines) {
  DistPrecomputeOptions dist;
  dist.num_machines = machines;
  dist.transport = Backend(backend);
  return DistributedPrecompute::Run(g, h, options, dist);
}

DistributedPrecompute::Result RunOfflineMode(const Graph& g, const Hierarchy& h,
                                             const HgpaOptions& options,
                                             OfflinePlacement placement,
                                             TransportBackend backend,
                                             StorageBackend storage,
                                             size_t machines) {
  DistPrecomputeOptions dist;
  dist.num_machines = machines;
  dist.locality = placement;
  dist.transport = Backend(backend);
  dist.storage = StorageOptions{};
  dist.storage.backend = storage;
  return DistributedPrecompute::Run(g, h, options, dist);
}

// Every stored vector of `tcp` must equal its `inproc` counterpart bit for
// bit. The walk mirrors the placement plan: hubs' skeleton columns and
// partial vectors on the machine owning the hub, own vectors on the machine
// owning the node.
void ExpectStoresIdentical(const DistributedPrecompute::Result& inproc,
                           const DistributedPrecompute::Result& tcp) {
  ASSERT_EQ(inproc.num_machines(), tcp.num_machines());
  const Hierarchy& h = *inproc.hierarchy;
  auto expect_same = [&](VectorKind kind, SubgraphId sub, NodeId node,
                         size_t machine) {
    PpvRef a = inproc.stores[machine].Find(kind, sub, node);
    PpvRef b = tcp.stores[machine].Find(kind, sub, node);
    ASSERT_TRUE(a);
    ASSERT_TRUE(b);
    EXPECT_EQ(*a, *b) << "kind " << static_cast<int>(kind) << " sub " << sub
                      << " node " << node;
  };
  for (const auto& sub : h.subgraphs()) {
    for (NodeId hub : sub.hubs) {
      size_t machine = inproc.plan.own_machine[hub];
      expect_same(VectorKind::kSkeletonColumn, sub.id, hub, machine);
      expect_same(VectorKind::kHubPartial, sub.id, hub, machine);
    }
  }
  for (SubgraphId leaf : h.leaves()) {
    for (NodeId u : h.subgraph(leaf).nodes) {
      if (h.is_hub(u)) continue;  // hubs' own vectors are their partials
      expect_same(VectorKind::kOwnVector, leaf, u, inproc.plan.own_machine[u]);
    }
  }
}

void ExpectOfflineLedgersIdentical(const DistributedPrecompute::Result& inproc,
                                   const DistributedPrecompute::Result& tcp) {
  // The paper's offline metrics — rounds, coordinator ingress, per-machine
  // space — are payload-derived and must not see the backend at all.
  EXPECT_EQ(inproc.offline.rounds, tcp.offline.rounds);
  EXPECT_EQ(inproc.offline.comm.messages, tcp.offline.comm.messages);
  EXPECT_EQ(inproc.offline.comm.bytes, tcp.offline.comm.bytes);
  EXPECT_EQ(inproc.TotalBytes(), tcp.TotalBytes());
  EXPECT_EQ(inproc.MaxMachineBytes(), tcp.MaxMachineBytes());
  for (size_t m = 0; m < inproc.num_machines(); ++m) {
    EXPECT_EQ(inproc.stores[m].TotalSerializedBytes(),
              tcp.stores[m].TotalSerializedBytes())
        << "machine " << m;
    EXPECT_EQ(inproc.stores[m].num_vectors(), tcp.stores[m].num_vectors())
        << "machine " << m;
  }
}

// Cross-placement comparison: locality and owner modes take different routes
// (shuffle vs gather), so round/traffic ledgers legitimately differ — but
// everything derived from the stored vectors must not.
void ExpectStoreFootprintsIdentical(const DistributedPrecompute::Result& a,
                                    const DistributedPrecompute::Result& b) {
  EXPECT_EQ(a.TotalBytes(), b.TotalBytes());
  EXPECT_EQ(a.MaxMachineBytes(), b.MaxMachineBytes());
  for (size_t m = 0; m < a.num_machines(); ++m) {
    EXPECT_EQ(a.stores[m].TotalSerializedBytes(),
              b.stores[m].TotalSerializedBytes())
        << "machine " << m;
    EXPECT_EQ(a.stores[m].num_vectors(), b.stores[m].num_vectors())
        << "machine " << m;
  }
}

// Bit-equality of the query surface, including each query's fragment-level
// byte accounting.
void ExpectQuerySurfaceIdentical(const Graph& g, const HgpaQueryEngine& inproc,
                                 const HgpaQueryEngine& tcp) {
  for (NodeId q = 0; q < g.num_nodes(); q += 5) {
    QueryMetrics im, tm;
    EXPECT_EQ(inproc.Query(q, &im), tcp.Query(q, &tm)) << "query " << q;
    EXPECT_EQ(im.comm.bytes, tm.comm.bytes) << "query " << q;
    EXPECT_EQ(im.comm.messages, tm.comm.messages) << "query " << q;
  }
  std::vector<HgpaQueryEngine::Preference> prefs{
      {0, 0.5}, {static_cast<NodeId>(g.num_nodes() / 2), 0.3}, {7, 0.2}};
  EXPECT_EQ(inproc.QueryPreferenceSet(prefs), tcp.QueryPreferenceSet(prefs));
}

TEST(NetEquivalence, HgpaOfflineAndQueriesMatchOverTcp) {
  Graph g = RandomDigraph(110, 3.0, 13);
  HgpaOptions options = SmallOptions();
  Hierarchy h = Hierarchy::Build(g, options.hierarchy);

  auto inproc_result =
      RunOffline(g, h, options, TransportBackend::kInProcess, 4);
  auto tcp_result = RunOffline(g, h, options, TransportBackend::kTcp, 4);
  ExpectOfflineLedgersIdentical(inproc_result, tcp_result);
  ExpectStoresIdentical(inproc_result, tcp_result);

  HgpaQueryEngine inproc(HgpaIndex::FromDistributed(std::move(inproc_result)),
                         NetworkModel{}, Backend(TransportBackend::kInProcess));
  HgpaQueryEngine tcp(HgpaIndex::FromDistributed(std::move(tcp_result)),
                      NetworkModel{}, Backend(TransportBackend::kTcp));
  ExpectQuerySurfaceIdentical(g, inproc, tcp);
}

TEST(NetEquivalence, GpaOfflineAndQueriesMatchOverTcp) {
  Graph g = RandomDigraph(90, 3.0, 29);
  HgpaOptions options = SmallOptions();
  Hierarchy flat = Hierarchy::BuildFlat(g, 4, options.hierarchy.partition);

  auto inproc_result =
      RunOffline(g, flat, options, TransportBackend::kInProcess, 3);
  auto tcp_result = RunOffline(g, flat, options, TransportBackend::kTcp, 3);
  ExpectOfflineLedgersIdentical(inproc_result, tcp_result);
  ExpectStoresIdentical(inproc_result, tcp_result);

  HgpaQueryEngine inproc(HgpaIndex::FromDistributed(std::move(inproc_result)),
                         NetworkModel{}, Backend(TransportBackend::kInProcess));
  HgpaQueryEngine tcp(HgpaIndex::FromDistributed(std::move(tcp_result)),
                      NetworkModel{}, Backend(TransportBackend::kTcp));
  ExpectQuerySurfaceIdentical(g, inproc, tcp);
}

TEST(NetEquivalence, SequentialAndParallelTcpOfflineAgree) {
  // Sequential mode (deterministic scheduling) and the ThreadPool path must
  // ship the same bytes over sockets — payload content never depends on
  // which worker ran first.
  Graph g = RandomDigraph(70, 3.0, 57);
  HgpaOptions options = SmallOptions();
  Hierarchy h = Hierarchy::Build(g, options.hierarchy);

  DistPrecomputeOptions sequential;
  sequential.num_machines = 3;
  sequential.sequential = true;
  sequential.transport = Backend(TransportBackend::kTcp);
  DistPrecomputeOptions parallel = sequential;
  parallel.sequential = false;

  auto a = DistributedPrecompute::Run(g, h, options, sequential);
  auto b = DistributedPrecompute::Run(g, h, options, parallel);
  ExpectOfflineLedgersIdentical(a, b);
  ExpectStoresIdentical(a, b);
}

TEST(NetEquivalence, LocalityShuffleMatchesOwnerAcrossTransportsAndStores) {
  // The locality pipeline's acceptance matrix: owner vs locality placement,
  // crossed with both transports and both storage backends, must produce
  // bit-identical stores and query answers. The shuffle may only change who
  // computes and which link the record crosses — never its bytes.
  Graph g = RandomDigraph(100, 3.0, 67);
  HgpaOptions options = SmallOptions();
  Hierarchy h = Hierarchy::Build(g, options.hierarchy);

  for (TransportBackend transport :
       {TransportBackend::kInProcess, TransportBackend::kTcp}) {
    for (StorageBackend storage :
         {StorageBackend::kMemoryOwned, StorageBackend::kDisk}) {
      auto owner = RunOfflineMode(g, h, options, OfflinePlacement::kOwner,
                                  transport, storage, 4);
      auto locality = RunOfflineMode(g, h, options, OfflinePlacement::kLocality,
                                     transport, storage, 4);
      EXPECT_EQ(locality.remote_induces, 0u);
      EXPECT_GT(owner.remote_induces, 0u);
      EXPECT_GT(locality.offline.exchange_rounds, 0u);
      ExpectStoreFootprintsIdentical(owner, locality);
      ExpectStoresIdentical(owner, locality);

      HgpaQueryEngine owner_engine(
          HgpaIndex::FromDistributed(std::move(owner)), NetworkModel{},
          Backend(transport));
      HgpaQueryEngine locality_engine(
          HgpaIndex::FromDistributed(std::move(locality)), NetworkModel{},
          Backend(transport));
      ExpectQuerySurfaceIdentical(g, owner_engine, locality_engine);
    }
  }
}

TEST(NetEquivalence, GpaLocalityShuffleMatchesOwnerOverTcp) {
  Graph g = RandomDigraph(80, 3.0, 71);
  HgpaOptions options = SmallOptions();
  Hierarchy flat = Hierarchy::BuildFlat(g, 4, options.hierarchy.partition);

  auto owner =
      RunOfflineMode(g, flat, options, OfflinePlacement::kOwner,
                     TransportBackend::kTcp, StorageBackend::kMemoryOwned, 3);
  auto locality =
      RunOfflineMode(g, flat, options, OfflinePlacement::kLocality,
                     TransportBackend::kTcp, StorageBackend::kMemoryOwned, 3);
  ExpectStoreFootprintsIdentical(owner, locality);
  ExpectStoresIdentical(owner, locality);
}

TEST(NetEquivalence, LocalityShuffledBytesIdenticalAcrossBackends) {
  // The shuffle ledger column is payload-derived like the gather one: the
  // same bytes must be reported whether the exchange rode the in-process
  // mailbox or TCP sockets, sequential or parallel.
  Graph g = RandomDigraph(90, 3.0, 83);
  HgpaOptions options = SmallOptions();
  Hierarchy h = Hierarchy::Build(g, options.hierarchy);

  std::vector<DistributedPrecompute::Result> runs;
  for (TransportBackend transport :
       {TransportBackend::kInProcess, TransportBackend::kTcp}) {
    for (bool sequential : {false, true}) {
      DistPrecomputeOptions dist;
      dist.num_machines = 4;
      dist.sequential = sequential;
      dist.locality = OfflinePlacement::kLocality;
      dist.transport = Backend(transport);
      runs.push_back(DistributedPrecompute::Run(g, h, options, dist));
    }
  }
  const auto& first = runs.front();
  EXPECT_GT(first.offline.shuffled.bytes, 0u);
  for (size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].offline.shuffled.bytes, first.offline.shuffled.bytes);
    EXPECT_EQ(runs[i].offline.shuffled.messages,
              first.offline.shuffled.messages);
    EXPECT_EQ(runs[i].offline.rounds, first.offline.rounds);
    EXPECT_EQ(runs[i].offline.exchange_rounds, first.offline.exchange_rounds);
    ASSERT_EQ(runs[i].levels.size(), first.levels.size());
    for (size_t l = 0; l < first.levels.size(); ++l) {
      EXPECT_EQ(runs[i].levels[l].shuffled_bytes, first.levels[l].shuffled_bytes);
      EXPECT_EQ(runs[i].levels[l].local_bytes, first.levels[l].local_bytes);
      EXPECT_EQ(runs[i].levels[l].induces, first.levels[l].induces);
    }
  }
}

TEST(NetEquivalence, ServedTopKAndStatsMatchOverTcp) {
  Graph g = RandomDigraph(100, 3.0, 41);
  HgpaOptions options = SmallOptions();
  auto pre = HgpaPrecomputation::RunHgpa(g, options);

  QueryServer inproc_server(
      HgpaQueryEngine(HgpaIndex::Distribute(pre, 3), NetworkModel{},
                      Backend(TransportBackend::kInProcess)));
  QueryServer tcp_server(
      HgpaQueryEngine(HgpaIndex::Distribute(pre, 3), NetworkModel{},
                      Backend(TransportBackend::kTcp)));

  for (NodeId q = 0; q < g.num_nodes(); q += 11) {
    QueryServer::TopKResponse a = inproc_server.QueryTopK(q, 10);
    QueryServer::TopKResponse b = tcp_server.QueryTopK(q, 10);
    ASSERT_EQ(a.top.size(), b.top.size()) << "query " << q;
    for (size_t i = 0; i < a.top.size(); ++i) {
      EXPECT_EQ(a.top[i].index, b.top[i].index) << "query " << q << " rank " << i;
      EXPECT_EQ(a.top[i].value, b.top[i].value) << "query " << q << " rank " << i;
    }
  }

  // The servers ran the same requests, so the coordinator byte ledger must
  // agree exactly across backends.
  ServerStats a = inproc_server.Stats();
  ServerStats b = tcp_server.Stats();
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.comm.bytes, b.comm.bytes);
  EXPECT_EQ(a.comm.messages, b.comm.messages);
}

}  // namespace
}  // namespace dppr
