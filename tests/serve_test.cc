#include "dppr/serve/query_server.h"

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "dppr/core/hgpa.h"
#include "test_util.h"

namespace dppr {
namespace {

using ::dppr::testing::RandomDigraph;

HgpaOptions ServeTestOptions() {
  HgpaOptions options;
  options.ppr.tolerance = 1e-8;
  options.hierarchy.max_levels = 4;
  options.hierarchy.min_subgraph_size = 4;
  return options;
}

// `graph` must stay alive in the caller's scope: the precomputation keeps a
// pointer to it.
HgpaQueryEngine MakeEngine(const Graph& graph, size_t machines) {
  auto pre = HgpaPrecomputation::RunHgpa(graph, ServeTestOptions());
  return HgpaQueryEngine(HgpaIndex::Distribute(pre, machines));
}

TEST(ConcurrentServing, EngineQueriesBitIdenticalToSequentialRun) {
  Graph graph = RandomDigraph(90, 3.0, 17);
  HgpaQueryEngine engine = MakeEngine(graph, 4);
  const size_t n = engine.index().graph().num_nodes();

  std::vector<SparseVector> expected(n);
  std::vector<CommStats> expected_comm(n);
  for (NodeId q = 0; q < n; ++q) {
    QueryMetrics metrics;
    expected[q] = engine.Query(q, &metrics);
    expected_comm[q] = metrics.comm;
  }

  constexpr size_t kThreads = 8;
  std::vector<SparseVector> got(n);
  std::vector<CommStats> got_comm(n);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (NodeId q = t; q < n; q += kThreads) {
        QueryMetrics metrics;
        got[q] = engine.Query(q, &metrics);
        got_comm[q] = metrics.comm;
      }
    });
  }
  for (auto& thread : threads) thread.join();

  for (NodeId q = 0; q < n; ++q) {
    EXPECT_EQ(got[q], expected[q]) << "query " << q;
    EXPECT_EQ(got_comm[q].bytes, expected_comm[q].bytes) << "query " << q;
    EXPECT_EQ(got_comm[q].messages, expected_comm[q].messages) << "query " << q;
  }
}

TEST(ConcurrentServing, BatchedQueryMatchesSingleQueries) {
  Graph graph = RandomDigraph(80, 3.0, 5);
  HgpaQueryEngine engine = MakeEngine(graph, 3);
  using Preference = HgpaQueryEngine::Preference;

  std::vector<std::vector<Preference>> batch{
      {{7, 1.0}},
      {{3, 0.5}, {40, 0.5}},
      {{7, 1.0}},  // duplicate of the first query: identical answer expected
      {{12, 1.0}},
  };
  std::vector<QueryMetrics> per_query;
  QueryMetrics round;
  std::vector<SparseVector> got =
      engine.QueryPreferenceSetMany(batch, &per_query, &round);
  ASSERT_EQ(got.size(), batch.size());
  ASSERT_EQ(per_query.size(), batch.size());

  uint64_t fragment_bytes = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    QueryMetrics solo_metrics;
    SparseVector solo = engine.QueryPreferenceSet(batch[i], &solo_metrics);
    EXPECT_EQ(got[i], solo) << "batch slot " << i;
    // A query's own fragment traffic is unchanged by batching.
    EXPECT_EQ(per_query[i].comm.bytes, solo_metrics.comm.bytes) << i;
    EXPECT_GE(per_query[i].comm.messages, 1u) << i;
    EXPECT_LE(per_query[i].comm.messages, engine.index().num_machines()) << i;
    fragment_bytes += per_query[i].comm.bytes;
  }
  // The whole batch cost at most one message per machine (routing may skip
  // non-contributors), and the round's payloads are exactly the
  // concatenated per-query fragments.
  EXPECT_GE(round.comm.messages, 1u);
  EXPECT_LE(round.comm.messages, engine.index().num_machines());
  EXPECT_GE(round.comm.bytes, fragment_bytes);
}

TEST(ConcurrentServing, EmptyBatchIsFine) {
  Graph graph = RandomDigraph(40, 3.0, 9);
  HgpaQueryEngine engine = MakeEngine(graph, 2);
  std::vector<QueryMetrics> per_query;
  QueryMetrics round;
  EXPECT_TRUE(engine
                  .QueryPreferenceSetMany(
                      std::span<const std::vector<HgpaQueryEngine::Preference>>{},
                      &per_query, &round)
                  .empty());
  EXPECT_EQ(round.comm.messages, 0u);
}

TEST(ConcurrentServing, ServerAnswersBitIdenticalUnderContention) {
  Graph graph = RandomDigraph(90, 3.0, 23);
  HgpaQueryEngine engine = MakeEngine(graph, 4);
  const size_t n = engine.index().graph().num_nodes();

  std::vector<SparseVector> expected(n);
  std::vector<CommStats> expected_comm(n);
  uint64_t expected_total_bytes = 0;
  for (NodeId q = 0; q < n; ++q) {
    QueryMetrics metrics;
    expected[q] = engine.Query(q, &metrics);
    expected_comm[q] = metrics.comm;
    expected_total_bytes += metrics.comm.bytes;
  }

  ServeOptions options;
  options.max_batch = 4;
  QueryServer server(std::move(engine), options);

  constexpr size_t kThreads = 8;
  std::vector<SparseVector> got(n);
  std::vector<CommStats> got_comm(n);
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (NodeId q = t; q < n; q += kThreads) {
        QueryServer::Response response = server.Query(q);
        got[q] = std::move(response.ppv);
        got_comm[q] = response.metrics.comm;
      }
    });
  }
  for (auto& thread : clients) thread.join();

  for (NodeId q = 0; q < n; ++q) {
    EXPECT_EQ(got[q], expected[q]) << "query " << q;
    EXPECT_EQ(got_comm[q].bytes, expected_comm[q].bytes) << "query " << q;
  }

  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.queries, n);
  EXPECT_GE(stats.rounds, 1u);
  EXPECT_LE(stats.rounds, stats.queries);
  EXPECT_GE(stats.mean_batch, 1.0);
  EXPECT_GT(stats.qps, 0.0);
  EXPECT_GE(stats.p95_latency_ms, stats.p50_latency_ms);
  // Batching never changes total coordinator ingress, only message count.
  EXPECT_EQ(stats.comm.bytes, expected_total_bytes);
}

TEST(ConcurrentServing, ServerPreferenceSetMatchesEngine) {
  Graph graph = RandomDigraph(70, 3.0, 31);
  HgpaQueryEngine engine = MakeEngine(graph, 3);
  std::vector<HgpaQueryEngine::Preference> prefs{{5, 0.6}, {44, 0.4}};
  SparseVector expected = engine.QueryPreferenceSet(prefs);
  QueryServer server(std::move(engine));
  QueryServer::Response response = server.QueryPreferenceSet(prefs);
  EXPECT_EQ(response.ppv, expected);
  EXPECT_GE(response.latency_seconds, 0.0);
}

TEST(ConcurrentServing, TopKReturnsHighestScoresInOrder) {
  Graph graph = RandomDigraph(70, 3.0, 41);
  HgpaQueryEngine engine = MakeEngine(graph, 3);
  SparseVector full = engine.Query(8);
  QueryServer server(std::move(engine));

  constexpr size_t kK = 5;
  QueryServer::TopKResponse topk = server.QueryTopK(8, kK);
  ASSERT_EQ(topk.top.size(), std::min(kK, full.size()));
  for (size_t i = 1; i < topk.top.size(); ++i) {
    EXPECT_GE(topk.top[i - 1].value, topk.top[i].value);
  }
  // Every reported score is a true entry, and no omitted entry beats the cut.
  for (const auto& entry : topk.top) {
    EXPECT_DOUBLE_EQ(full.ValueAt(entry.index), entry.value);
  }
  double cutoff = topk.top.back().value;
  size_t at_least_cutoff = 0;
  for (const auto& entry : full.entries()) {
    if (entry.value >= cutoff) ++at_least_cutoff;
  }
  EXPECT_GE(at_least_cutoff, topk.top.size());
}

TEST(ConcurrentServing, ResetStatsClearsWindow) {
  Graph graph = RandomDigraph(40, 3.0, 3);
  HgpaQueryEngine engine = MakeEngine(graph, 2);
  QueryServer server(std::move(engine));
  server.Query(1);
  server.Query(2);
  EXPECT_EQ(server.Stats().queries, 2u);
  server.ResetStats();
  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.queries, 0u);
  EXPECT_EQ(stats.rounds, 0u);
  EXPECT_EQ(stats.comm.bytes, 0u);
}

}  // namespace
}  // namespace dppr
