#include "dppr/baseline/bsp_engine.h"

#include <gtest/gtest.h>

#include "dppr/graph/datasets.h"
#include "dppr/graph/generators.h"
#include "dppr/ppr/metrics.h"
#include "dppr/ppr/power_iteration.h"
#include "test_util.h"

namespace dppr {
namespace {

using ::dppr::testing::RandomDigraph;

PprOptions Tight() {
  PprOptions ppr;
  ppr.tolerance = 1e-9;
  return ppr;
}

TEST(BspEngine, PlacementCoversAllMachines) {
  Graph g = RandomDigraph(500, 3.0, 7);
  for (BspPlacement placement : {BspPlacement::kHash, BspPlacement::kPartition}) {
    BspOptions options;
    options.num_machines = 5;
    options.placement = placement;
    std::vector<uint32_t> machine_of = BspComputePlacement(g, options);
    std::vector<size_t> counts(5, 0);
    for (uint32_t m : machine_of) {
      ASSERT_LT(m, 5u);
      ++counts[m];
    }
    for (size_t c : counts) EXPECT_GT(c, 0u);
  }
}

class BspCorrectnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BspCorrectnessTest, MatchesCentralizedPowerIteration) {
  uint64_t seed = GetParam();
  Graph g = RandomDigraph(120, 3.0, seed);
  PowerIterationOptions pi;
  pi.ppr = Tight();
  pi.dangling = PowerDangling::kAbsorb;
  NodeId q = static_cast<NodeId>(seed % g.num_nodes());
  std::vector<double> reference = PowerIterationPpv(g, q, pi).ppv;

  for (BspPlacement placement : {BspPlacement::kHash, BspPlacement::kPartition}) {
    BspOptions options;
    options.num_machines = 1 + seed % 6;
    options.placement = placement;
    BspPpvResult result = BspPowerIterationPpv(g, q, Tight(), options);
    EXPECT_LT(LInfNorm(result.ppv, reference), 1e-8)
        << "seed=" << seed << " placement=" << static_cast<int>(placement);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BspCorrectnessTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

TEST(BspEngine, SingleMachineSendsNothing) {
  Graph g = RandomDigraph(100, 3.0, 3);
  BspOptions options;
  options.num_machines = 1;
  BspPpvResult result = BspPowerIterationPpv(g, 5, Tight(), options);
  EXPECT_EQ(result.network_traffic.bytes, 0u);
  EXPECT_GT(result.supersteps, 10u);  // geometric convergence needs many steps
}

TEST(BspEngine, PartitionPlacementBeatsHashOnCommunityGraph) {
  // The Blogel-vs-Pregel+ gap (Figures 21-22): locality-aware placement
  // crosses machines only on cut edges.
  Graph g = CommunityDigraph(3000, 12, 4.0, 0.93, 11);
  PprOptions ppr;  // default 1e-4
  BspOptions hash;
  hash.num_machines = 6;
  hash.placement = BspPlacement::kHash;
  BspOptions part = hash;
  part.placement = BspPlacement::kPartition;
  BspPpvResult pregel = BspPowerIterationPpv(g, 17, ppr, hash);
  BspPpvResult blogel = BspPowerIterationPpv(g, 17, ppr, part);
  EXPECT_LT(blogel.network_traffic.bytes, pregel.network_traffic.bytes / 2);
}

TEST(BspEngine, TrafficGrowsWithMachines) {
  Graph g = WebLike(0.05);
  PprOptions ppr;
  size_t previous = 0;
  for (size_t machines : {2u, 6u, 10u}) {
    BspOptions options;
    options.num_machines = machines;
    options.placement = BspPlacement::kHash;
    BspPpvResult result = BspPowerIterationPpv(g, 3, ppr, options);
    EXPECT_GT(result.network_traffic.bytes, previous);
    previous = result.network_traffic.bytes;
  }
}

TEST(BspEngine, SenderSideCombiningReducesMessages) {
  Graph g = RandomDigraph(400, 6.0, 21);
  PprOptions ppr;
  BspOptions combined;
  combined.num_machines = 4;
  combined.combining = BspCombining::kSenderSide;
  BspOptions raw = combined;
  raw.combining = BspCombining::kNone;
  BspPpvResult with_combiner = BspPowerIterationPpv(g, 9, ppr, combined);
  BspPpvResult without = BspPowerIterationPpv(g, 9, ppr, raw);
  EXPECT_LE(with_combiner.network_traffic.messages,
            without.network_traffic.messages);
  EXPECT_LT(LInfNorm(with_combiner.ppv, without.ppv), 1e-12);
}

TEST(BspEngine, PlacementOverrideIsHonored) {
  Graph g = RandomDigraph(50, 3.0, 2);
  std::vector<uint32_t> everything_on_zero(g.num_nodes(), 0);
  BspOptions options;
  options.num_machines = 4;
  options.placement_override = &everything_on_zero;
  BspPpvResult result = BspPowerIterationPpv(g, 1, Tight(), options);
  EXPECT_EQ(result.network_traffic.bytes, 0u);  // nothing crosses machines
}

TEST(BspEngine, SimulatedTimeIncludesBarrierCosts) {
  Graph g = RandomDigraph(150, 3.0, 6);
  BspOptions options;
  options.num_machines = 4;
  options.superstep_overhead_seconds = 0.01;
  BspPpvResult result = BspPowerIterationPpv(g, 0, PprOptions{}, options);
  EXPECT_GE(result.simulated_seconds,
            0.01 * static_cast<double>(result.supersteps));
}

}  // namespace
}  // namespace dppr
