#include "dppr/ppr/metrics.h"

#include <gtest/gtest.h>

namespace dppr {
namespace {

TEST(Metrics, AverageL1AndLInf) {
  std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{1.5, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(AverageL1(a, b), (0.5 + 0.0 + 2.0) / 3.0);
  EXPECT_DOUBLE_EQ(LInfNorm(a, b), 2.0);
}

TEST(Metrics, IdenticalVectorsHaveZeroError) {
  std::vector<double> a{0.2, 0.8, 0.0};
  EXPECT_DOUBLE_EQ(AverageL1(a, a), 0.0);
  EXPECT_DOUBLE_EQ(LInfNorm(a, a), 0.0);
}

TEST(Metrics, TopKOrdersByScoreThenId) {
  std::vector<double> scores{0.1, 0.5, 0.5, 0.9};
  std::vector<NodeId> top = TopK(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 3u);
  EXPECT_EQ(top[1], 1u);  // tie broken by smaller id
  EXPECT_EQ(top[2], 2u);
}

TEST(Metrics, TopKClampsToSize) {
  std::vector<double> scores{0.3, 0.1};
  EXPECT_EQ(TopK(scores, 10).size(), 2u);
}

TEST(Metrics, PrecisionCountsOverlap) {
  std::vector<double> exact{0.9, 0.8, 0.7, 0.1, 0.0};
  std::vector<double> approx{0.9, 0.0, 0.8, 0.7, 0.0};  // swaps 1 out of top-3
  EXPECT_DOUBLE_EQ(PrecisionAtK(exact, approx, 3), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(exact, exact, 3), 1.0);
}

TEST(Metrics, RagIsOneForPerfectTopK) {
  std::vector<double> exact{0.5, 0.3, 0.2, 0.0};
  EXPECT_DOUBLE_EQ(RagAtK(exact, exact, 2), 1.0);
}

TEST(Metrics, RagPenalizesMissedMass) {
  std::vector<double> exact{0.5, 0.3, 0.1, 0.1};
  std::vector<double> approx{0.5, 0.0, 0.3, 0.0};  // picks node 2 over node 1
  // approx top-2 = {0, 2}: captures 0.6 of the best-possible 0.8.
  EXPECT_NEAR(RagAtK(exact, approx, 2), 0.6 / 0.8, 1e-12);
}

TEST(Metrics, KendallPerfectAgreement) {
  std::vector<double> exact{0.4, 0.3, 0.2, 0.1};
  EXPECT_DOUBLE_EQ(KendallTauAtK(exact, exact, 4), 1.0);
}

TEST(Metrics, KendallPerfectDisagreement) {
  std::vector<double> exact{0.4, 0.3, 0.2, 0.1};
  std::vector<double> reversed{0.1, 0.2, 0.3, 0.4};
  EXPECT_DOUBLE_EQ(KendallTauAtK(exact, reversed, 4), -1.0);
}

TEST(Metrics, KendallSingleSwap) {
  std::vector<double> exact{0.4, 0.3, 0.2};
  std::vector<double> approx{0.3, 0.4, 0.2};  // swap the top pair
  // pairs: (0,1) discordant, (0,2) concordant, (1,2) concordant => 1/3.
  EXPECT_NEAR(KendallTauAtK(exact, approx, 3), 1.0 / 3.0, 1e-12);
}

TEST(Metrics, KendallIgnoresTies) {
  std::vector<double> exact{0.4, 0.4, 0.2};
  std::vector<double> approx{0.3, 0.4, 0.2};
  // The (0,1) pair is tied in `exact` and must not count either way.
  EXPECT_DOUBLE_EQ(KendallTauAtK(exact, approx, 3), 1.0);
}

}  // namespace
}  // namespace dppr
