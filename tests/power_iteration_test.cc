#include "dppr/ppr/power_iteration.h"

#include <gtest/gtest.h>

#include "dppr/graph/graph_builder.h"
#include "dppr/graph/local_graph.h"
#include "dppr/ppr/dense_solver.h"
#include "dppr/ppr/metrics.h"
#include "test_util.h"

namespace dppr {
namespace {

using ::dppr::testing::RandomDigraph;

PowerIterationOptions Tight() {
  PowerIterationOptions options;
  options.ppr.tolerance = 1e-11;
  options.dangling = PowerDangling::kAbsorb;
  return options;
}

TEST(PowerIteration, TwoNodeCycleClosedForm) {
  // 0 <-> 1: r_0(0) = α / (1 - (1-α)^2), r_0(1) = (1-α) r_0(0).
  GraphBuilder builder(2);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  Graph g = builder.Build();
  auto result = PowerIterationPpv(g, 0, Tight());
  double alpha = 0.15;
  double expected0 = alpha / (1.0 - (1.0 - alpha) * (1.0 - alpha));
  EXPECT_NEAR(result.ppv[0], expected0, 1e-9);
  EXPECT_NEAR(result.ppv[1], (1.0 - alpha) * expected0, 1e-9);
}

TEST(PowerIteration, SelfLoopOnlyNodeGetsFullMass) {
  GraphBuilder builder(1);
  builder.AddEdge(0, 0);
  Graph g = builder.Build();
  auto result = PowerIterationPpv(g, 0, Tight());
  EXPECT_NEAR(result.ppv[0], 1.0, 1e-9);
}

TEST(PowerIteration, MassSumsToOneOnStronglyConnectedGraph) {
  Graph g = RandomDigraph(50, 4.0, 7);
  auto result = PowerIterationPpv(g, 3, Tight());
  double sum = 0.0;
  for (double v : result.ppv) sum += v;
  // Self-loop dangling policy: no mass is lost.
  EXPECT_NEAR(sum, 1.0, 1e-8);
}

TEST(PowerIteration, AbsorbPolicyLosesDanglingMass) {
  // 0 -> 1, 1 dangling (no self-loop added).
  GraphBuilder builder(2);
  builder.AddEdge(0, 1);
  GraphBuildOptions opts;
  opts.dangling = DanglingPolicy::kKeep;
  Graph g = builder.Build(opts);
  auto result = PowerIterationPpv(g, 0, Tight());
  // r(0) = α, r(1) = (1-α)·α; the rest of the mass dies at node 1.
  EXPECT_NEAR(result.ppv[0], 0.15, 1e-9);
  EXPECT_NEAR(result.ppv[1], 0.85 * 0.15, 1e-9);
}

TEST(PowerIteration, RedirectPolicyMatchesExplicitBackEdge) {
  // Redirect-to-query (paper Algorithm 2 lines 14-16) must equal solving the
  // graph where the dangling node has an explicit edge to the query node.
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);  // 2 dangling
  GraphBuildOptions keep;
  keep.dangling = DanglingPolicy::kKeep;
  Graph g = builder.Build(keep);

  PowerIterationOptions options = Tight();
  options.dangling = PowerDangling::kRedirectToQuery;
  auto redirected = PowerIterationPpv(g, 0, options);

  GraphBuilder explicit_builder(3);
  explicit_builder.AddEdge(0, 1);
  explicit_builder.AddEdge(1, 2);
  explicit_builder.AddEdge(2, 0);  // explicit back edge to the query
  Graph g2 = explicit_builder.Build(keep);
  std::vector<double> oracle = ExactPpvDense(g2, 0, Tight().ppr);

  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_NEAR(redirected.ppv[v], oracle[v], 1e-8) << "node " << v;
  }
}

class PowerIterationPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PowerIterationPropertyTest, MatchesDenseOracle) {
  uint64_t seed = GetParam();
  Graph g = RandomDigraph(60, 3.0, seed);
  for (NodeId q : {NodeId{0}, NodeId{17}, NodeId{59}}) {
    auto iterative = PowerIterationPpv(g, q, Tight());
    std::vector<double> oracle = ExactPpvDense(g, q, Tight().ppr);
    EXPECT_LT(LInfNorm(iterative.ppv, oracle), 1e-7)
        << "seed=" << seed << " query=" << q;
  }
}

TEST_P(PowerIterationPropertyTest, LocalGraphMatchesDenseOracle) {
  uint64_t seed = GetParam();
  Graph g = RandomDigraph(60, 3.0, seed);
  // Take an arbitrary half of the nodes as a virtual subgraph.
  std::vector<NodeId> subset;
  for (NodeId u = 0; u < 30; ++u) subset.push_back(u);
  LocalGraph lg = LocalGraph::Induce(g, subset);
  auto iterative = PowerIterationPpv(lg, 5, Tight());
  std::vector<double> oracle = ExactPpvDense(lg, 5, Tight().ppr);
  EXPECT_LT(LInfNorm(iterative.ppv, oracle), 1e-7) << "seed=" << seed;
}

TEST_P(PowerIterationPropertyTest, ToleranceBoundsError) {
  uint64_t seed = GetParam();
  Graph g = RandomDigraph(80, 3.0, seed);
  std::vector<double> oracle = ExactPpvDense(g, 11, PprOptions{});
  for (double tol : {1e-4, 1e-6, 1e-8}) {
    PowerIterationOptions options;
    options.ppr.tolerance = tol;
    options.dangling = PowerDangling::kAbsorb;
    auto result = PowerIterationPpv(g, 11, options);
    // Geometric tail: per-entry error is within tol/α of the fixed point.
    EXPECT_LT(LInfNorm(result.ppv, oracle), tol / 0.15 + 1e-12)
        << "seed=" << seed << " tol=" << tol;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PowerIterationPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace dppr
