// Concurrent pin/evict stress on the disk backend's residency cache: many
// threads hammering lookups through a cache budget of ~one vector, so every
// access races loads, insertions, and evictions of the same entries. Run
// under TSAN in CI (see .github/workflows/ci.yml); the assertions double as
// a bit-identity check — eviction pressure must never change an answer.

#include <gtest/gtest.h>

#include <span>
#include <thread>
#include <vector>

#include "dppr/common/rng.h"
#include "dppr/core/hgpa.h"
#include "dppr/serve/query_server.h"
#include "dppr/store/ppv_store.h"
#include "test_util.h"

namespace dppr {
namespace {

using ::dppr::testing::RandomDigraph;
using ::dppr::testing::RandomSparseVector;

TEST(StoreStress, ConcurrentPinEvictThroughOneVectorBudget) {
  constexpr size_t kVectors = 8;
  constexpr size_t kThreads = 8;
  constexpr size_t kIters = 300;

  StorageOptions options;
  options.backend = StorageBackend::kDisk;
  // Roughly one record resident: almost every lookup races a load against
  // another thread's eviction of the same entry.
  options.cache_bytes = 600;
  PpvStore store(options);
  std::vector<SparseVector> expected;
  for (NodeId node = 0; node < kVectors; ++node) {
    expected.push_back(RandomSparseVector(node, 50));
    store.PutOwned(VectorKind::kOwnVector, 0, node, expected.back(),
                   expected.back().SerializedBytes());
  }

  std::vector<std::thread> threads;
  std::vector<uint8_t> ok(kThreads, 0);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      bool all_good = true;
      for (size_t i = 0; i < kIters; ++i) {
        NodeId node = static_cast<NodeId>(rng.Uniform(kVectors));
        PpvRef ref = store.Find(VectorKind::kOwnVector, 0, node);
        // The pin must keep the vector intact while other threads churn the
        // cache underneath it.
        all_good = all_good && ref && *ref == expected[node];
      }
      ok[t] = all_good ? 1 : 0;
    });
  }
  for (auto& thread : threads) thread.join();
  for (size_t t = 0; t < kThreads; ++t) EXPECT_TRUE(ok[t]) << "thread " << t;

  StorageStats stats = store.storage_stats();
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, kThreads * kIters);
  EXPECT_GT(stats.cache_misses, 0u);
}

TEST(StoreStress, ThunderingHerdMissesCoalesceOntoOneDiskRead) {
  // Singleflight on the miss path: T threads all missing the same cold
  // vector must trigger exactly one extent read — the first thread loads,
  // the rest rendezvous on its result (and later arrivals hit the cache,
  // which a generous budget keeps warm). Without coalescing this read count
  // is racy-anything-up-to-T; with it, exactly one, regardless of
  // interleaving. Runs under TSAN in CI.
  StorageOptions options;
  options.backend = StorageBackend::kDisk;
  options.cache_bytes = 64 << 20;
  PpvStore store(options);
  SparseVector expected = RandomSparseVector(7, 80);
  store.PutOwned(VectorKind::kOwnVector, 0, 7, expected,
                 expected.SerializedBytes());

  // Learn the record's on-disk extent length from a solo cold read.
  PpvStore probe = store;  // clone: shares the spill file, fresh cache+stats
  (void)probe.Find(VectorKind::kOwnVector, 0, 7);
  const uint64_t extent_bytes = probe.storage_stats().disk_bytes_read;
  ASSERT_GT(extent_bytes, 0u);

  constexpr size_t kThreads = 8;
  PpvStore cold = store;  // fresh cache: every thread starts at a miss
  std::vector<std::thread> threads;
  std::vector<uint8_t> ok(kThreads, 0);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      PpvRef ref = cold.Find(VectorKind::kOwnVector, 0, 7);
      ok[t] = (ref && *ref == expected) ? 1 : 0;
    });
  }
  for (auto& thread : threads) thread.join();
  for (size_t t = 0; t < kThreads; ++t) EXPECT_TRUE(ok[t]) << "thread " << t;

  StorageStats stats = cold.storage_stats();
  EXPECT_EQ(stats.disk_bytes_read, extent_bytes);  // exactly one pread
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, kThreads);
  EXPECT_GE(stats.cache_misses, 1u);  // at least the loading leader
}

TEST(StoreStress, ConcurrentPrefetchAndFindShareTheSingleflightTable) {
  // Prefetch and Find race through the same singleflight table: prefetch
  // runs may be loading extents a Find is waiting on (and vice versa), while
  // a small budget keeps evicting what either just brought in. Every Find
  // must still pin the right vector bit for bit, and the accounting must
  // stay conserved. Runs under TSAN in CI.
  constexpr size_t kVectors = 16;
  constexpr size_t kFinders = 4;
  constexpr size_t kPrefetchers = 4;
  constexpr size_t kIters = 200;

  StorageOptions options;
  options.backend = StorageBackend::kDisk;
  // A few records resident: prefetch runs and Find loads keep evicting each
  // other's insertions.
  options.cache_bytes = 1500;
  PpvStore store(options);
  std::vector<SparseVector> expected;
  std::vector<uint64_t> keys;
  for (NodeId node = 0; node < kVectors; ++node) {
    // Two kinds, so both eviction lists and two spill segments churn.
    VectorKind kind = (node % 2 == 0) ? VectorKind::kOwnVector
                                      : VectorKind::kSkeletonColumn;
    expected.push_back(RandomSparseVector(500 + node, 40));
    store.PutOwned(kind, 0, node, expected.back(),
                   expected.back().SerializedBytes());
    keys.push_back(MakeVectorKey(kind, 0, node));
  }

  std::vector<std::thread> threads;
  std::vector<uint8_t> ok(kFinders, 0);
  for (size_t t = 0; t < kPrefetchers; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(9000 + t);
      for (size_t i = 0; i < kIters; ++i) {
        // A random contiguous slice of the key list, so runs overlap both
        // with each other and with in-flight Find loads.
        size_t begin = rng.Uniform(kVectors);
        size_t len = 1 + rng.Uniform(kVectors - begin);
        store.Prefetch(std::span<const uint64_t>(keys).subspan(begin, len));
      }
    });
  }
  for (size_t t = 0; t < kFinders; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(7000 + t);
      bool all_good = true;
      for (size_t i = 0; i < kIters; ++i) {
        NodeId node = static_cast<NodeId>(rng.Uniform(kVectors));
        VectorKind kind = (node % 2 == 0) ? VectorKind::kOwnVector
                                          : VectorKind::kSkeletonColumn;
        PpvRef ref = store.Find(kind, 0, node);
        all_good = all_good && ref && *ref == expected[node];
      }
      ok[t] = all_good ? 1 : 0;
    });
  }
  for (auto& thread : threads) thread.join();
  for (size_t t = 0; t < kFinders; ++t) EXPECT_TRUE(ok[t]) << "finder " << t;

  StorageStats stats = store.storage_stats();
  // Finds account exactly once each; prefetch loads add misses on top.
  EXPECT_GE(stats.cache_hits + stats.cache_misses, kFinders * kIters);
  EXPECT_GT(stats.prefetch_issued, 0u);
  EXPECT_GT(stats.prefetch_bytes, 0u);
}

TEST(StoreStress, ConcurrentQueriesThroughTinyCacheStayBitIdentical) {
  // Whole-stack version: K client threads against a QueryServer whose index
  // lives on disk behind a pathologically small cache. Answers must match
  // the in-memory engine bit for bit, interleaving notwithstanding.
  Graph g = RandomDigraph(80, 3.0, 5);
  HgpaOptions options;
  options.ppr.tolerance = 1e-7;
  options.hierarchy.max_levels = 2;
  options.hierarchy.min_subgraph_size = 4;
  auto pre = HgpaPrecomputation::RunHgpa(g, options);

  StorageOptions memory;
  memory.backend = StorageBackend::kMemoryRef;
  HgpaQueryEngine oracle(HgpaIndex::Distribute(pre, 3, memory));
  std::vector<SparseVector> want;
  for (NodeId q = 0; q < g.num_nodes(); ++q) want.push_back(oracle.Query(q));

  StorageOptions disk;
  disk.backend = StorageBackend::kDisk;
  disk.cache_bytes = 1;  // every machine-side lookup reads the spill file
  QueryServer server(HgpaQueryEngine(HgpaIndex::Distribute(pre, 3, disk)));

  constexpr size_t kThreads = 6;
  constexpr size_t kQueriesPerThread = 40;
  std::vector<std::thread> threads;
  std::vector<uint8_t> ok(kThreads, 0);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(77 + t);
      bool all_good = true;
      for (size_t i = 0; i < kQueriesPerThread; ++i) {
        NodeId q = static_cast<NodeId>(rng.Uniform(g.num_nodes()));
        all_good = all_good && server.Query(q).ppv == want[q];
      }
      ok[t] = all_good ? 1 : 0;
    });
  }
  for (auto& thread : threads) thread.join();
  for (size_t t = 0; t < kThreads; ++t) EXPECT_TRUE(ok[t]) << "thread " << t;

  ServerStats stats = server.Stats();
  EXPECT_GT(stats.cache_misses, 0u);
  EXPECT_GT(stats.disk_bytes_read, 0u);
}

}  // namespace
}  // namespace dppr
