#include "dppr/core/ppv_store.h"

#include <gtest/gtest.h>

#include <utility>

#include "dppr/common/rng.h"

namespace dppr {
namespace {

SparseVector TestVector(uint64_t seed, size_t entries) {
  Rng rng(seed);
  std::vector<SparseVector::Entry> out;
  for (size_t i = 0; i < entries; ++i) {
    out.push_back({static_cast<NodeId>(rng.Uniform(1u << 20)),
                   rng.NextDouble() - 0.5});
  }
  return SparseVector::FromEntries(std::move(out));
}

TEST(MakeVectorKey, PacksDisjointFields) {
  uint64_t a = MakeVectorKey(VectorKind::kHubPartial, 1, 2);
  uint64_t b = MakeVectorKey(VectorKind::kSkeletonColumn, 1, 2);
  uint64_t c = MakeVectorKey(VectorKind::kHubPartial, 2, 1);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
}

TEST(MakeVectorKey, OverflowingSubgraphDiesEvenInRelease) {
  // Regression: these used to be DPPR_DCHECKs, so a release build silently
  // built an aliased key and returned another vector's data.
  EXPECT_DEATH(MakeVectorKey(VectorKind::kOwnVector, 1u << 30, 0),
               "DPPR_CHECK failed");
}

TEST(MakeVectorKey, OverflowingNodeDiesEvenInRelease) {
  EXPECT_DEATH(MakeVectorKey(VectorKind::kOwnVector, 0, 1u << 30),
               "DPPR_CHECK failed");
}

TEST(PpvStore, OwnedVectorsAreFindable) {
  PpvStore store;
  SparseVector vec = TestVector(1, 50);
  size_t bytes = vec.SerializedBytes();
  const SparseVector* stored =
      store.PutOwned(VectorKind::kOwnVector, 3, 7, vec, bytes);
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(*stored, vec);
  EXPECT_EQ(store.Find(VectorKind::kOwnVector, 3, 7), stored);
  EXPECT_EQ(store.Find(VectorKind::kHubPartial, 3, 7), nullptr);
  EXPECT_EQ(store.num_vectors(), 1u);
  EXPECT_EQ(store.num_owned(), 1u);
  EXPECT_EQ(store.TotalSerializedBytes(), bytes);
}

TEST(PpvStore, OwnedAddressesSurviveGrowthAndMove) {
  PpvStore store;
  std::vector<const SparseVector*> stored;
  for (NodeId node = 0; node < 200; ++node) {
    SparseVector vec = TestVector(node, 20);
    stored.push_back(store.PutOwned(VectorKind::kOwnVector, 0, node, vec,
                                    vec.SerializedBytes()));
  }
  PpvStore moved = std::move(store);
  for (NodeId node = 0; node < 200; ++node) {
    EXPECT_EQ(moved.Find(VectorKind::kOwnVector, 0, node), stored[node]);
  }
}

TEST(PpvStore, CopyDeepCopiesOwnedVectors) {
  PpvStore store;
  SparseVector vec = TestVector(9, 30);
  store.PutOwned(VectorKind::kSkeletonColumn, 2, 5, vec, vec.SerializedBytes());

  PpvStore copy = store;
  const SparseVector* original = store.Find(VectorKind::kSkeletonColumn, 2, 5);
  const SparseVector* copied = copy.Find(VectorKind::kSkeletonColumn, 2, 5);
  ASSERT_NE(copied, nullptr);
  EXPECT_NE(copied, original);  // must not alias the source store's memory
  EXPECT_EQ(*copied, vec);
  EXPECT_EQ(copy.TotalSerializedBytes(), store.TotalSerializedBytes());

  // The copy stays valid after the source dies.
  { PpvStore doomed = std::move(store); }
  EXPECT_EQ(*copy.Find(VectorKind::kSkeletonColumn, 2, 5), vec);
}

TEST(PpvStore, MixedReferencingAndOwnedCopy) {
  SparseVector external = TestVector(4, 10);
  PpvStore store;
  store.Put(VectorKind::kHubPartial, 1, 1, &external, external.SerializedBytes());
  SparseVector owned_vec = TestVector(5, 10);
  store.PutOwned(VectorKind::kOwnVector, 1, 2, owned_vec,
                 owned_vec.SerializedBytes());

  PpvStore copy = store;
  // Referencing entries still alias the external vector; owned ones don't.
  EXPECT_EQ(copy.Find(VectorKind::kHubPartial, 1, 1), &external);
  EXPECT_NE(copy.Find(VectorKind::kOwnVector, 1, 2),
            store.Find(VectorKind::kOwnVector, 1, 2));
  EXPECT_EQ(*copy.Find(VectorKind::kOwnVector, 1, 2), owned_vec);
}

TEST(PpvStore, BytesLedgerSplitsByKind) {
  PpvStore store;
  SparseVector partial = TestVector(1, 40);
  SparseVector own = TestVector(2, 10);
  store.PutOwned(VectorKind::kHubPartial, 0, 1, partial,
                 partial.SerializedBytes());
  store.PutOwned(VectorKind::kOwnVector, 0, 2, own, own.SerializedBytes());
  EXPECT_EQ(store.SerializedBytesByKind(VectorKind::kHubPartial),
            partial.SerializedBytes());
  EXPECT_EQ(store.SerializedBytesByKind(VectorKind::kOwnVector),
            own.SerializedBytes());
  EXPECT_EQ(store.SerializedBytesByKind(VectorKind::kSkeletonColumn), 0u);
  EXPECT_EQ(store.TotalSerializedBytes(),
            partial.SerializedBytes() + own.SerializedBytes());
}

TEST(PpvStore, DuplicateKeyDies) {
  PpvStore store;
  SparseVector vec = TestVector(3, 5);
  store.PutOwned(VectorKind::kOwnVector, 0, 0, vec, vec.SerializedBytes());
  EXPECT_DEATH(
      store.PutOwned(VectorKind::kOwnVector, 0, 0, vec, vec.SerializedBytes()),
      "DPPR_CHECK failed");
}

TEST(VectorRecord, RoundTripsAllKinds) {
  for (uint8_t k = 0; k < kNumVectorKinds; ++k) {
    VectorRecord record;
    record.kind = static_cast<VectorKind>(k);
    record.sub = 12345;
    record.node = (1u << 30) - 1;  // max representable id
    record.seconds = 0.125;
    record.vec = TestVector(k, 100);

    ByteWriter writer;
    record.SerializeTo(writer);
    ByteReader reader(writer.bytes());
    VectorRecord back = VectorRecord::Deserialize(reader);
    EXPECT_TRUE(reader.AtEnd());
    EXPECT_EQ(back.kind, record.kind);
    EXPECT_EQ(back.sub, record.sub);
    EXPECT_EQ(back.node, record.node);
    EXPECT_DOUBLE_EQ(back.seconds, record.seconds);
    EXPECT_EQ(back.vec, record.vec);
  }
}

TEST(VectorRecord, ConcatenatedRecordsRoundTrip) {
  // The distributed driver's payloads are record streams read until AtEnd.
  ByteWriter writer;
  std::vector<VectorRecord> records;
  for (NodeId node = 0; node < 5; ++node) {
    VectorRecord record;
    record.kind = VectorKind::kOwnVector;
    record.sub = 7;
    record.node = node;
    record.seconds = node * 0.5;
    record.vec = TestVector(100 + node, 25);
    record.SerializeTo(writer);
    records.push_back(std::move(record));
  }
  ByteReader reader(writer.bytes());
  for (const VectorRecord& expected : records) {
    VectorRecord got = VectorRecord::Deserialize(reader);
    EXPECT_EQ(got.node, expected.node);
    EXPECT_EQ(got.vec, expected.vec);
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(VectorRecord, IngestChargesStoreAndReturnsSeconds) {
  VectorRecord record;
  record.kind = VectorKind::kSkeletonColumn;
  record.sub = 4;
  record.node = 9;
  record.seconds = 2.5;
  record.vec = TestVector(8, 60);
  size_t bytes = record.vec.SerializedBytes();
  SparseVector expected = record.vec;

  PpvStore store;
  EXPECT_DOUBLE_EQ(store.Ingest(std::move(record)), 2.5);
  const SparseVector* found = store.Find(VectorKind::kSkeletonColumn, 4, 9);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(*found, expected);
  EXPECT_EQ(store.TotalSerializedBytes(), bytes);
}

TEST(VectorRecordDeserialize, UnknownKindDies) {
  ByteWriter writer;
  writer.PutU8(7);  // no such VectorKind
  writer.PutVarU64(0);
  writer.PutVarU64(0);
  writer.PutDouble(0.0);
  writer.PutBlob(nullptr, 0);
  EXPECT_DEATH(
      {
        ByteReader reader(writer.bytes());
        VectorRecord::Deserialize(reader);
      },
      "DPPR_CHECK failed");
}

TEST(VectorRecordDeserialize, OutOfRangeSubgraphDies) {
  ByteWriter writer;
  writer.PutU8(0);
  writer.PutVarU64(1ull << 30);  // exceeds the key's 30-bit subgraph field
  writer.PutVarU64(0);
  writer.PutDouble(0.0);
  writer.PutBlob(nullptr, 0);
  EXPECT_DEATH(
      {
        ByteReader reader(writer.bytes());
        VectorRecord::Deserialize(reader);
      },
      "DPPR_CHECK failed");
}

TEST(VectorRecordDeserialize, TruncatedPayloadDies) {
  VectorRecord record;
  record.kind = VectorKind::kHubPartial;
  record.sub = 1;
  record.node = 2;
  record.vec = TestVector(11, 20);
  ByteWriter writer;
  record.SerializeTo(writer);
  std::vector<uint8_t> truncated(writer.bytes().begin(),
                                 writer.bytes().end() - 7);
  EXPECT_DEATH(
      {
        ByteReader reader(truncated.data(), truncated.size());
        VectorRecord::Deserialize(reader);
      },
      "DPPR_CHECK failed");
}

TEST(VectorRecordDeserialize, OversizedBlobLengthDies) {
  // Hostile blob length claiming more bytes than remain must die up front
  // (wrap-safe bounds check), not read out of bounds.
  ByteWriter writer;
  writer.PutU8(0);
  writer.PutVarU64(1);
  writer.PutVarU64(1);
  writer.PutDouble(0.0);
  writer.PutVarU64(~0ull);  // blob "length"
  writer.PutU8(0);
  EXPECT_DEATH(
      {
        ByteReader reader(writer.bytes());
        VectorRecord::Deserialize(reader);
      },
      "DPPR_CHECK failed");
}

TEST(VectorRecordDeserialize, TrailingGarbageInsideBlobDies) {
  // A blob longer than the vector it frames hides trailing bytes — corrupt.
  ByteWriter vec_bytes;
  SparseVector vec = TestVector(13, 3);
  vec.SerializeTo(vec_bytes);
  ByteWriter writer;
  writer.PutU8(2);
  writer.PutVarU64(0);
  writer.PutVarU64(5);
  writer.PutDouble(1.0);
  std::vector<uint8_t> padded = vec_bytes.bytes();
  padded.push_back(0xAB);
  writer.PutBlob(padded.data(), padded.size());
  EXPECT_DEATH(
      {
        ByteReader reader(writer.bytes());
        VectorRecord::Deserialize(reader);
      },
      "DPPR_CHECK failed");
}

}  // namespace
}  // namespace dppr
