#include "dppr/store/ppv_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "dppr/store/disk_storage.h"
#include "test_util.h"

namespace dppr {
namespace {

using ::dppr::testing::RandomSparseVector;

// Backend pinned explicitly where a test asserts aliasing or address
// stability — those are kMemoryRef guarantees the disk CI leg must not
// reinterpret. Tests built on default-constructed stores run under whatever
// DPPR_STORE selects.
StorageOptions MemRef() {
  StorageOptions options;
  options.backend = StorageBackend::kMemoryRef;
  return options;
}

// Unique path in the test's temp dir for named spill files.
std::string SpillPath(const std::string& name) {
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
  return dir + "/dppr_ppv_store_test_" + name + ".spill";
}

TEST(MakeVectorKey, PacksDisjointFields) {
  uint64_t a = MakeVectorKey(VectorKind::kHubPartial, 1, 2);
  uint64_t b = MakeVectorKey(VectorKind::kSkeletonColumn, 1, 2);
  uint64_t c = MakeVectorKey(VectorKind::kHubPartial, 2, 1);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
}

TEST(MakeVectorKey, OverflowingSubgraphDiesEvenInRelease) {
  // Regression: these used to be DPPR_DCHECKs, so a release build silently
  // built an aliased key and returned another vector's data.
  EXPECT_DEATH(MakeVectorKey(VectorKind::kOwnVector, 1u << 30, 0),
               "DPPR_CHECK failed");
}

TEST(MakeVectorKey, OverflowingNodeDiesEvenInRelease) {
  EXPECT_DEATH(MakeVectorKey(VectorKind::kOwnVector, 0, 1u << 30),
               "DPPR_CHECK failed");
}

TEST(PpvStore, OwnedVectorsAreFindable) {
  PpvStore store;
  SparseVector vec = RandomSparseVector(1, 50);
  size_t bytes = vec.SerializedBytes();
  store.PutOwned(VectorKind::kOwnVector, 3, 7, vec, bytes);
  PpvRef found = store.Find(VectorKind::kOwnVector, 3, 7);
  ASSERT_TRUE(found);
  EXPECT_EQ(*found, vec);
  EXPECT_FALSE(store.Find(VectorKind::kHubPartial, 3, 7));
  EXPECT_EQ(store.num_vectors(), 1u);
  EXPECT_EQ(store.num_owned(), 1u);
  EXPECT_EQ(store.TotalSerializedBytes(), bytes);
}

TEST(PpvStore, OwnedAddressesSurviveGrowthAndMove) {
  PpvStore store(MemRef());
  std::vector<const SparseVector*> stored;
  for (NodeId node = 0; node < 200; ++node) {
    SparseVector vec = RandomSparseVector(node, 20);
    store.PutOwned(VectorKind::kOwnVector, 0, node, vec, vec.SerializedBytes());
    stored.push_back(&*store.Find(VectorKind::kOwnVector, 0, node));
  }
  PpvStore moved = std::move(store);
  for (NodeId node = 0; node < 200; ++node) {
    EXPECT_EQ(&*moved.Find(VectorKind::kOwnVector, 0, node), stored[node]);
  }
}

TEST(PpvStore, CopyDeepCopiesOwnedVectors) {
  PpvStore store(MemRef());
  SparseVector vec = RandomSparseVector(9, 30);
  store.PutOwned(VectorKind::kSkeletonColumn, 2, 5, vec, vec.SerializedBytes());

  PpvStore copy = store;
  const SparseVector* original = &*store.Find(VectorKind::kSkeletonColumn, 2, 5);
  PpvRef copied = copy.Find(VectorKind::kSkeletonColumn, 2, 5);
  ASSERT_TRUE(copied);
  EXPECT_NE(&*copied, original);  // must not alias the source store's memory
  EXPECT_EQ(*copied, vec);
  EXPECT_EQ(copy.TotalSerializedBytes(), store.TotalSerializedBytes());

  // The copy stays valid after the source dies.
  { PpvStore doomed = std::move(store); }
  EXPECT_EQ(*copy.Find(VectorKind::kSkeletonColumn, 2, 5), vec);
}

TEST(PpvStore, SelfAssignmentIsANoOp) {
  // Regression: the deep-copy re-pointing path was untested for `s = s;`.
  // Without the self-assignment guard the copy would read from the store it
  // is simultaneously overwriting.
  PpvStore store(MemRef());
  SparseVector vec = RandomSparseVector(21, 25);
  store.PutOwned(VectorKind::kOwnVector, 1, 3, vec, vec.SerializedBytes());
  SparseVector external = RandomSparseVector(22, 10);
  store.Put(VectorKind::kHubPartial, 1, 4, &external, external.SerializedBytes());

  PpvStore& alias = store;  // dodge -Wself-assign-overloaded
  store = alias;

  EXPECT_EQ(store.num_vectors(), 2u);
  ASSERT_TRUE(store.Find(VectorKind::kOwnVector, 1, 3));
  EXPECT_EQ(*store.Find(VectorKind::kOwnVector, 1, 3), vec);
  EXPECT_EQ(&*store.Find(VectorKind::kHubPartial, 1, 4), &external);
  EXPECT_EQ(store.TotalSerializedBytes(),
            vec.SerializedBytes() + external.SerializedBytes());
}

TEST(PpvStore, MixedReferencingAndOwnedCopy) {
  SparseVector external = RandomSparseVector(4, 10);
  PpvStore store(MemRef());
  store.Put(VectorKind::kHubPartial, 1, 1, &external, external.SerializedBytes());
  SparseVector owned_vec = RandomSparseVector(5, 10);
  store.PutOwned(VectorKind::kOwnVector, 1, 2, owned_vec,
                 owned_vec.SerializedBytes());

  PpvStore copy = store;
  // Referencing entries still alias the external vector; owned ones don't.
  EXPECT_EQ(&*copy.Find(VectorKind::kHubPartial, 1, 1), &external);
  EXPECT_NE(&*copy.Find(VectorKind::kOwnVector, 1, 2),
            &*store.Find(VectorKind::kOwnVector, 1, 2));
  EXPECT_EQ(*copy.Find(VectorKind::kOwnVector, 1, 2), owned_vec);
}

TEST(PpvStore, BytesLedgerSplitsByKind) {
  PpvStore store;
  SparseVector partial = RandomSparseVector(1, 40);
  SparseVector own = RandomSparseVector(2, 10);
  store.PutOwned(VectorKind::kHubPartial, 0, 1, partial,
                 partial.SerializedBytes());
  store.PutOwned(VectorKind::kOwnVector, 0, 2, own, own.SerializedBytes());
  EXPECT_EQ(store.SerializedBytesByKind(VectorKind::kHubPartial),
            partial.SerializedBytes());
  EXPECT_EQ(store.SerializedBytesByKind(VectorKind::kOwnVector),
            own.SerializedBytes());
  EXPECT_EQ(store.SerializedBytesByKind(VectorKind::kSkeletonColumn), 0u);
  EXPECT_EQ(store.TotalSerializedBytes(),
            partial.SerializedBytes() + own.SerializedBytes());
}

TEST(PpvStore, DuplicateKeyDies) {
  PpvStore store;
  SparseVector vec = RandomSparseVector(3, 5);
  store.PutOwned(VectorKind::kOwnVector, 0, 0, vec, vec.SerializedBytes());
  EXPECT_DEATH(
      store.PutOwned(VectorKind::kOwnVector, 0, 0, vec, vec.SerializedBytes()),
      "DPPR_CHECK failed");
}

TEST(VectorRecord, RoundTripsAllKinds) {
  for (uint8_t k = 0; k < kNumVectorKinds; ++k) {
    VectorRecord record;
    record.kind = static_cast<VectorKind>(k);
    record.sub = 12345;
    record.node = (1u << 30) - 1;  // max representable id
    record.seconds = 0.125;
    record.vec = RandomSparseVector(k, 100);

    ByteWriter writer;
    record.SerializeTo(writer);
    ByteReader reader(writer.bytes());
    VectorRecord back = VectorRecord::Deserialize(reader);
    EXPECT_TRUE(reader.AtEnd());
    EXPECT_EQ(back.kind, record.kind);
    EXPECT_EQ(back.sub, record.sub);
    EXPECT_EQ(back.node, record.node);
    EXPECT_DOUBLE_EQ(back.seconds, record.seconds);
    EXPECT_EQ(back.vec, record.vec);
  }
}

TEST(VectorRecord, ConcatenatedRecordsRoundTrip) {
  // The distributed driver's payloads are record streams read until AtEnd.
  ByteWriter writer;
  std::vector<VectorRecord> records;
  for (NodeId node = 0; node < 5; ++node) {
    VectorRecord record;
    record.kind = VectorKind::kOwnVector;
    record.sub = 7;
    record.node = node;
    record.seconds = node * 0.5;
    record.vec = RandomSparseVector(100 + node, 25);
    record.SerializeTo(writer);
    records.push_back(std::move(record));
  }
  ByteReader reader(writer.bytes());
  for (const VectorRecord& expected : records) {
    VectorRecord got = VectorRecord::Deserialize(reader);
    EXPECT_EQ(got.node, expected.node);
    EXPECT_EQ(got.vec, expected.vec);
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(VectorRecord, IngestChargesStoreAndReturnsSeconds) {
  VectorRecord record;
  record.kind = VectorKind::kSkeletonColumn;
  record.sub = 4;
  record.node = 9;
  record.seconds = 2.5;
  record.vec = RandomSparseVector(8, 60);
  size_t bytes = record.vec.SerializedBytes();
  SparseVector expected = record.vec;

  PpvStore store;
  EXPECT_DOUBLE_EQ(store.Ingest(std::move(record)), 2.5);
  PpvRef found = store.Find(VectorKind::kSkeletonColumn, 4, 9);
  ASSERT_TRUE(found);
  EXPECT_EQ(*found, expected);
  EXPECT_EQ(store.TotalSerializedBytes(), bytes);
}

TEST(VectorRecord, IngestFromConsumesExactlyOneRecord) {
  ByteWriter writer;
  VectorRecord a;
  a.kind = VectorKind::kOwnVector;
  a.sub = 1;
  a.node = 2;
  a.seconds = 1.5;
  a.vec = RandomSparseVector(31, 40);
  a.SerializeTo(writer);
  VectorRecord b = a;
  b.node = 3;
  b.SerializeTo(writer);

  PpvStore store;
  ByteReader reader(writer.bytes());
  EXPECT_DOUBLE_EQ(store.IngestFrom(reader), 1.5);
  EXPECT_EQ(store.num_vectors(), 1u);
  EXPECT_DOUBLE_EQ(store.IngestFrom(reader), 1.5);
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(*store.Find(VectorKind::kOwnVector, 1, 2), a.vec);
  EXPECT_EQ(*store.Find(VectorKind::kOwnVector, 1, 3), b.vec);
}

TEST(VectorRecordDeserialize, UnknownKindDies) {
  ByteWriter writer;
  writer.PutU8(7);  // no such VectorKind
  writer.PutVarU64(0);
  writer.PutVarU64(0);
  writer.PutDouble(0.0);
  writer.PutBlob(nullptr, 0);
  EXPECT_DEATH(
      {
        ByteReader reader(writer.bytes());
        VectorRecord::Deserialize(reader);
      },
      "DPPR_CHECK failed");
}

TEST(VectorRecordDeserialize, OutOfRangeSubgraphDies) {
  ByteWriter writer;
  writer.PutU8(0);
  writer.PutVarU64(1ull << 30);  // exceeds the key's 30-bit subgraph field
  writer.PutVarU64(0);
  writer.PutDouble(0.0);
  writer.PutBlob(nullptr, 0);
  EXPECT_DEATH(
      {
        ByteReader reader(writer.bytes());
        VectorRecord::Deserialize(reader);
      },
      "DPPR_CHECK failed");
}

TEST(VectorRecordDeserialize, TruncatedPayloadDies) {
  VectorRecord record;
  record.kind = VectorKind::kHubPartial;
  record.sub = 1;
  record.node = 2;
  record.vec = RandomSparseVector(11, 20);
  ByteWriter writer;
  record.SerializeTo(writer);
  std::vector<uint8_t> truncated(writer.bytes().begin(),
                                 writer.bytes().end() - 7);
  EXPECT_DEATH(
      {
        ByteReader reader(truncated.data(), truncated.size());
        VectorRecord::Deserialize(reader);
      },
      "DPPR_CHECK failed");
}

TEST(VectorRecordDeserialize, OversizedBlobLengthDies) {
  // Hostile blob length claiming more bytes than remain must die up front
  // (wrap-safe bounds check), not read out of bounds.
  ByteWriter writer;
  writer.PutU8(0);
  writer.PutVarU64(1);
  writer.PutVarU64(1);
  writer.PutDouble(0.0);
  writer.PutVarU64(~0ull);  // blob "length"
  writer.PutU8(0);
  EXPECT_DEATH(
      {
        ByteReader reader(writer.bytes());
        VectorRecord::Deserialize(reader);
      },
      "DPPR_CHECK failed");
}

TEST(VectorRecordDeserialize, TrailingGarbageInsideBlobDies) {
  // A blob longer than the vector it frames hides trailing bytes — corrupt.
  ByteWriter vec_bytes;
  SparseVector vec = RandomSparseVector(13, 3);
  vec.SerializeTo(vec_bytes);
  ByteWriter writer;
  writer.PutU8(2);
  writer.PutVarU64(0);
  writer.PutVarU64(5);
  writer.PutDouble(1.0);
  std::vector<uint8_t> padded = vec_bytes.bytes();
  padded.push_back(0xAB);
  writer.PutBlob(padded.data(), padded.size());
  EXPECT_DEATH(
      {
        ByteReader reader(writer.bytes());
        VectorRecord::Deserialize(reader);
      },
      "DPPR_CHECK failed");
}

// ---------------------------------------------------------------------------
// Hostile spill files: a disk store must refuse truncated/corrupted storage
// at open, and out-of-range extents at read — never serve garbage.
// ---------------------------------------------------------------------------

// Writes a well-formed spill file at `path` and returns its bytes.
std::vector<uint8_t> WriteValidSpill(const std::string& path) {
  StorageOptions options;
  options.backend = StorageBackend::kDisk;
  options.spill_path = path;
  PpvStore store(options);
  for (NodeId node = 0; node < 4; ++node) {
    SparseVector vec = RandomSparseVector(50 + node, 30);
    store.PutOwned(VectorKind::kOwnVector, 2, node, vec, vec.SerializedBytes());
  }
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST(DiskSpillHostile, ReopenedSpillServesBitIdenticalVectors) {
  std::string path = SpillPath("reopen");
  WriteValidSpill(path);
  PpvStore reopened = PpvStore::OpenSpill(path);
  EXPECT_EQ(reopened.num_vectors(), 4u);
  for (NodeId node = 0; node < 4; ++node) {
    PpvRef found = reopened.Find(VectorKind::kOwnVector, 2, node);
    ASSERT_TRUE(found);
    EXPECT_EQ(*found, RandomSparseVector(50 + node, 30));
  }
  std::remove(path.c_str());
}

TEST(DiskSpillHostile, TruncatedSpillFileDiesAtOpen) {
  std::string path = SpillPath("truncated");
  std::vector<uint8_t> bytes = WriteValidSpill(path);
  bytes.resize(bytes.size() - 9);  // chop into the last record
  WriteFile(path, bytes);
  EXPECT_DEATH(PpvStore::OpenSpill(path), "DPPR_CHECK failed");
  std::remove(path.c_str());
}

TEST(DiskSpillHostile, CorruptedRecordDiesAtOpen) {
  std::string path = SpillPath("corrupt");
  std::vector<uint8_t> bytes = WriteValidSpill(path);
  // Stamp a hostile kind byte over the first record's header: no such
  // VectorKind, so the open-time re-validation scan must refuse the file.
  bytes[0] = 0xFF;
  WriteFile(path, bytes);
  EXPECT_DEATH(PpvStore::OpenSpill(path), "DPPR_CHECK failed");
  std::remove(path.c_str());
}

TEST(DiskSpillHostile, OutOfRangeExtentDiesAtRead) {
  std::string path = SpillPath("extent");
  WriteValidSpill(path);
  auto file = SpillFile::Open(path);
  std::vector<uint8_t> buf(16);
  // Offset beyond the file.
  EXPECT_DEATH(file->Read({file->size() + 1, 16}, buf), "DPPR_CHECK failed");
  // Length reaching past the end.
  EXPECT_DEATH(file->Read({file->size() - 4, 16}, buf), "DPPR_CHECK failed");
  // Hostile offset chosen so offset + length wraps uint64 — the wrap-safe
  // bounds check must still refuse it.
  EXPECT_DEATH(file->Read({~0ull - 4, 16}, buf), "DPPR_CHECK failed");
  std::remove(path.c_str());
}

TEST(DiskSpillHostile, AppendToReadOnlySpillDies) {
  std::string path = SpillPath("readonly");
  WriteValidSpill(path);
  PpvStore reopened = PpvStore::OpenSpill(path);
  SparseVector vec = RandomSparseVector(99, 5);
  EXPECT_DEATH(
      reopened.PutOwned(VectorKind::kOwnVector, 9, 9, vec, vec.SerializedBytes()),
      "DPPR_CHECK failed");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dppr
