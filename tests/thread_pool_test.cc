#include "dppr/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace dppr {
namespace {

// Regression: ParallelFor completion used to be tracked by one global
// in-flight counter, so two ParallelFor calls from different threads waited
// on each other's tasks (and could return early or late). With per-call task
// groups, each call covers exactly its own indices.
TEST(ThreadPool, ConcurrentParallelForsFromDifferentThreads) {
  ThreadPool pool(4);
  constexpr size_t kN = 500;
  std::vector<std::atomic<int>> a(kN);
  std::vector<std::atomic<int>> b(kN);
  std::thread t1([&] {
    for (int rep = 0; rep < 5; ++rep) {
      pool.ParallelFor(kN, [&](size_t i) { a[i].fetch_add(1); });
    }
  });
  std::thread t2([&] {
    for (int rep = 0; rep < 5; ++rep) {
      pool.ParallelFor(kN, [&](size_t i) { b[i].fetch_add(1); });
    }
  });
  t1.join();
  t2.join();
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(a[i].load(), 5) << i;
    EXPECT_EQ(b[i].load(), 5) << i;
  }
}

// Regression: a ParallelFor issued from inside a pool task deadlocked — the
// worker blocked on the global counter that its own queued tasks kept
// nonzero. The waiting thread now runs its group's queued tasks inline.
TEST(ThreadPool, NestedParallelForInsidePoolTaskDoesNotDeadlock) {
  ThreadPool pool(2);  // fewer workers than outer tasks forces the collision
  std::atomic<int> inner_runs{0};
  for (int outer = 0; outer < 4; ++outer) {
    pool.Submit([&] {
      pool.ParallelFor(8, [&](size_t) { inner_runs.fetch_add(1); });
    });
  }
  pool.Wait();
  EXPECT_EQ(inner_runs.load(), 4 * 8);
}

TEST(ThreadPool, ParallelForNestedInsideParallelFor) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  pool.ParallelFor(6, [&](size_t) {
    pool.ParallelFor(7, [&](size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 6 * 7);
}

TEST(ThreadPool, SingleWorkerPoolStillCompletesNestedWork) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.ParallelFor(3, [&](size_t) {
    pool.ParallelFor(3, [&](size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 9);
}

TEST(ThreadPool, TaskGroupsWaitIndependently) {
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  std::atomic<int> slow_done{0};
  ThreadPool::TaskGroup slow(pool);
  ThreadPool::TaskGroup fast(pool);
  slow.Submit([&] {
    while (!release.load()) std::this_thread::yield();
    slow_done.fetch_add(1);
  });
  std::atomic<int> fast_done{0};
  for (int i = 0; i < 16; ++i) fast.Submit([&] { fast_done.fetch_add(1); });
  // fast must complete even though slow's task is still parked on a worker.
  fast.Wait();
  EXPECT_EQ(fast_done.load(), 16);
  EXPECT_EQ(slow_done.load(), 0);
  release.store(true);
  slow.Wait();
  EXPECT_EQ(slow_done.load(), 1);
}

TEST(ThreadPool, PoolWaitDoesNotCoverGroupTasks) {
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  ThreadPool::TaskGroup group(pool);
  group.Submit([&] {
    while (!release.load()) std::this_thread::yield();
  });
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();  // must return while the group task still spins
  EXPECT_EQ(counter.load(), 1);
  release.store(true);
  group.Wait();
}

TEST(ThreadPool, ManyThreadsHammeringNestedParallelFor) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&] {
      for (int rep = 0; rep < 3; ++rep) {
        pool.ParallelFor(5, [&](size_t) {
          pool.ParallelFor(11, [&](size_t) { total.fetch_add(1); });
        });
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(total.load(), 6L * 3 * 5 * 11);
}

}  // namespace
}  // namespace dppr
