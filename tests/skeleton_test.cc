#include "dppr/ppr/skeleton.h"

#include <gtest/gtest.h>

#include "dppr/graph/local_graph.h"
#include "dppr/ppr/dense_solver.h"
#include "dppr/ppr/metrics.h"
#include "test_util.h"

namespace dppr {
namespace {

using ::dppr::testing::RandomDigraph;

PprOptions Tight() {
  PprOptions options;
  options.tolerance = 1e-10;
  return options;
}

TEST(Skeleton, IterationCountCoversTolerance) {
  PprOptions options;
  options.alpha = 0.15;
  options.tolerance = 1e-4;
  size_t k = SkeletonIterationCount(options);
  EXPECT_LE(std::pow(1.0 - options.alpha, static_cast<double>(k)), 1e-4);
  EXPECT_GT(std::pow(1.0 - options.alpha, static_cast<double>(k - 1)), 1e-4);
}

TEST(Skeleton, FixedPointColumnMatchesPerSourceOracle) {
  // Theorem 6 / Definition 2: F(u) == r_u(h) for every source u.
  Graph g = RandomDigraph(40, 3.0, 3);
  LocalGraph lg = LocalGraph::Whole(g);
  NodeId hub = 9;
  std::vector<double> column = SkeletonFixedPoint(lg, hub, Tight());
  for (NodeId u = 0; u < lg.num_nodes(); ++u) {
    std::vector<double> ppv = ExactPpvDense(lg, u, Tight());
    EXPECT_NEAR(column[u], ppv[hub], 1e-7) << "source " << u;
  }
}

TEST(Skeleton, HubSeesItsOwnTeleportMass) {
  Graph g = RandomDigraph(30, 2.0, 11);
  LocalGraph lg = LocalGraph::Whole(g);
  std::vector<double> column = SkeletonFixedPoint(lg, 4, Tight());
  // s_h(h) = r_h(h) >= α (the zero-length tour).
  EXPECT_GE(column[4], 0.15 - 1e-9);
}

TEST(Skeleton, VirtualSubgraphLosesEscapingMass) {
  // Path 0 -> 1 -> 2; induce {0, 1}: from 0, reaching 1 still works but mass
  // forwarded from 1 escapes to the virtual node.
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 2);
  Graph g = builder.Build();
  std::vector<NodeId> subset{0, 1};
  LocalGraph lg = LocalGraph::Induce(g, subset);
  std::vector<double> column = SkeletonFixedPoint(lg, /*hub=*/1, Tight());
  // r_0(1) within the virtual subgraph: walk 0->1 then absorb: α(1-α).
  EXPECT_NEAR(column[0], 0.15 * 0.85, 1e-9);
  EXPECT_NEAR(column[1], 0.15, 1e-9);
}

class SkeletonPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SkeletonPropertyTest, ReversePushMatchesFixedPoint) {
  uint64_t seed = GetParam();
  Graph g = RandomDigraph(80, 3.0, seed);
  LocalGraph lg = LocalGraph::Whole(g, /*build_in_edges=*/true);
  PprOptions options;
  options.tolerance = 1e-9;
  for (NodeId hub : {NodeId{2}, NodeId{41}, NodeId{77}}) {
    std::vector<double> fixed = SkeletonFixedPoint(lg, hub, options);
    std::vector<double> pushed = SkeletonReversePush(lg, hub, options);
    // Both carry per-entry error <= tolerance against the true column.
    EXPECT_LT(LInfNorm(fixed, pushed), 3e-9) << "seed=" << seed << " hub=" << hub;
  }
}

TEST_P(SkeletonPropertyTest, ReversePushOnInducedSubgraph) {
  uint64_t seed = GetParam();
  Graph g = RandomDigraph(60, 3.0, seed);
  std::vector<NodeId> subset;
  for (NodeId u = 0; u < 35; ++u) subset.push_back(u);
  LocalGraph lg = LocalGraph::Induce(g, subset, /*build_in_edges=*/true);
  PprOptions options;
  options.tolerance = 1e-9;
  std::vector<double> fixed = SkeletonFixedPoint(lg, 7, options);
  std::vector<double> pushed = SkeletonReversePush(lg, 7, options);
  EXPECT_LT(LInfNorm(fixed, pushed), 3e-9) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkeletonPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace dppr
