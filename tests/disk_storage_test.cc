#include "dppr/store/disk_storage.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "dppr/store/ppv_store.h"
#include "test_util.h"

namespace dppr {
namespace {

using ::dppr::testing::RandomSparseVector;

StorageOptions DiskOptions(size_t cache_bytes) {
  StorageOptions options;
  options.backend = StorageBackend::kDisk;
  options.cache_bytes = cache_bytes;
  return options;
}

TEST(DiskSpillStorage, RoundTripsBitIdenticalVectors) {
  PpvStore store(DiskOptions(1 << 20));
  std::vector<SparseVector> vecs;
  for (NodeId node = 0; node < 20; ++node) {
    vecs.push_back(RandomSparseVector(node, 40 + node));
    store.PutOwned(VectorKind::kOwnVector, 1, node, vecs.back(),
                   vecs.back().SerializedBytes());
  }
  EXPECT_EQ(store.backend(), StorageBackend::kDisk);
  EXPECT_EQ(store.num_vectors(), 20u);
  EXPECT_EQ(store.num_owned(), 20u);
  for (NodeId node = 0; node < 20; ++node) {
    PpvRef found = store.Find(VectorKind::kOwnVector, 1, node);
    ASSERT_TRUE(found);
    EXPECT_EQ(*found, vecs[node]) << "node " << node;
  }
  EXPECT_FALSE(store.Find(VectorKind::kOwnVector, 1, 99));
}

TEST(DiskSpillStorage, LedgerChargesSerializedBytesLikeMemory) {
  // The paper's space metric must be backend-invariant: same vectors, same
  // serialized-bytes ledger, even though disk also pays record headers.
  PpvStore disk(DiskOptions(1 << 20));
  PpvStore memory;
  for (NodeId node = 0; node < 10; ++node) {
    SparseVector vec = RandomSparseVector(100 + node, 25);
    size_t bytes = vec.SerializedBytes();
    disk.PutOwned(VectorKind::kSkeletonColumn, 3, node, vec, bytes);
    memory.PutOwned(VectorKind::kSkeletonColumn, 3, node, std::move(vec), bytes);
  }
  EXPECT_EQ(disk.TotalSerializedBytes(), memory.TotalSerializedBytes());
  EXPECT_EQ(disk.SerializedBytesByKind(VectorKind::kSkeletonColumn),
            memory.SerializedBytesByKind(VectorKind::kSkeletonColumn));
}

TEST(DiskSpillStorage, WarmLookupsHitColdLookupsMiss) {
  PpvStore store(DiskOptions(1 << 20));  // budget fits everything
  SparseVector vec = RandomSparseVector(7, 50);
  store.PutOwned(VectorKind::kOwnVector, 0, 1, vec, vec.SerializedBytes());

  EXPECT_EQ(store.storage_stats().cache_misses, 0u);
  ASSERT_TRUE(store.Find(VectorKind::kOwnVector, 0, 1));  // cold: disk read
  StorageStats cold = store.storage_stats();
  EXPECT_EQ(cold.cache_misses, 1u);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_GT(cold.disk_bytes_read, vec.SerializedBytes());  // record > vector

  ASSERT_TRUE(store.Find(VectorKind::kOwnVector, 0, 1));  // warm: cached
  StorageStats warm = store.storage_stats();
  EXPECT_EQ(warm.cache_misses, 1u);
  EXPECT_EQ(warm.cache_hits, 1u);
  EXPECT_EQ(warm.disk_bytes_read, cold.disk_bytes_read);
  EXPECT_GT(store.ResidentBytes(), 0u);
}

TEST(DiskSpillStorage, BudgetSmallerThanOneVectorStillServes) {
  // The acceptance-criteria configuration: every access is a miss, the
  // residency cache can never keep anything, and answers stay bit-identical.
  PpvStore store(DiskOptions(1));
  SparseVector vec = RandomSparseVector(9, 60);
  store.PutOwned(VectorKind::kHubPartial, 2, 4, vec, vec.SerializedBytes());

  for (int i = 0; i < 3; ++i) {
    PpvRef found = store.Find(VectorKind::kHubPartial, 2, 4);
    ASSERT_TRUE(found);
    EXPECT_EQ(*found, vec);
  }
  StorageStats stats = store.storage_stats();
  EXPECT_EQ(stats.cache_misses, 3u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(store.ResidentBytes(), 0u);  // nothing ever stays resident
}

TEST(DiskSpillStorage, LruEvictsColdestUnderPressure) {
  // Budget sized for roughly one record: touching A, then B, evicts A; a
  // re-touch of A misses again while B (just loaded) is the one evicted next.
  SparseVector a = RandomSparseVector(1, 50);
  SparseVector b = RandomSparseVector(2, 50);
  ByteWriter probe;
  VectorRecord record;
  record.vec = a;
  record.SerializeTo(probe);
  PpvStore store(DiskOptions(probe.size() + 8));  // ~one record resident

  store.PutOwned(VectorKind::kOwnVector, 0, 1, a, a.SerializedBytes());
  store.PutOwned(VectorKind::kOwnVector, 0, 2, b, b.SerializedBytes());

  EXPECT_EQ(*store.Find(VectorKind::kOwnVector, 0, 1), a);  // miss, A resident
  EXPECT_EQ(*store.Find(VectorKind::kOwnVector, 0, 1), a);  // hit
  EXPECT_EQ(*store.Find(VectorKind::kOwnVector, 0, 2), b);  // miss, evicts A
  EXPECT_EQ(*store.Find(VectorKind::kOwnVector, 0, 1), a);  // miss again
  StorageStats stats = store.storage_stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 3u);
  EXPECT_LE(store.ResidentBytes(), probe.size() + 8);
}

TEST(DiskSpillStorage, PinOutlivesEviction) {
  // A pinned vector stays valid after the cache dropped it — the whole point
  // of PpvRef over raw pointers.
  PpvStore store(DiskOptions(1));
  SparseVector a = RandomSparseVector(3, 40);
  SparseVector b = RandomSparseVector(4, 40);
  store.PutOwned(VectorKind::kOwnVector, 0, 1, a, a.SerializedBytes());
  store.PutOwned(VectorKind::kOwnVector, 0, 2, b, b.SerializedBytes());

  PpvRef pin = store.Find(VectorKind::kOwnVector, 0, 1);
  ASSERT_TRUE(pin);
  // Churn the cache hard; `pin`'s entry was evicted immediately (budget 1).
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(*store.Find(VectorKind::kOwnVector, 0, 2), b);
  }
  EXPECT_EQ(*pin, a);  // still alive and intact
}

TEST(DiskSpillStorage, IngestStreamsWireBytes) {
  VectorRecord record;
  record.kind = VectorKind::kSkeletonColumn;
  record.sub = 5;
  record.node = 6;
  record.seconds = 1.25;
  record.vec = RandomSparseVector(11, 30);
  ByteWriter writer;
  record.SerializeTo(writer);

  PpvStore store(DiskOptions(1 << 20));
  ByteReader reader(writer.bytes());
  EXPECT_DOUBLE_EQ(store.IngestFrom(reader), 1.25);
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(store.TotalSerializedBytes(), record.vec.SerializedBytes());
  EXPECT_EQ(*store.Find(VectorKind::kSkeletonColumn, 5, 6), record.vec);
}

TEST(DiskSpillStorage, CopySharesSpillFileWithIndependentCaches) {
  PpvStore store(DiskOptions(1 << 20));
  SparseVector vec = RandomSparseVector(13, 35);
  store.PutOwned(VectorKind::kOwnVector, 1, 1, vec, vec.SerializedBytes());

  PpvStore copy = store;
  EXPECT_EQ(copy.num_vectors(), 1u);
  EXPECT_EQ(copy.TotalSerializedBytes(), store.TotalSerializedBytes());
  EXPECT_EQ(*copy.Find(VectorKind::kOwnVector, 1, 1), vec);
  // The copy's cold read is its own: the source's stats are untouched.
  EXPECT_EQ(copy.storage_stats().cache_misses, 1u);
  EXPECT_EQ(store.storage_stats().cache_misses, 0u);

  // Writes after the copy are private to each store.
  SparseVector extra = RandomSparseVector(14, 10);
  copy.PutOwned(VectorKind::kOwnVector, 1, 2, extra, extra.SerializedBytes());
  EXPECT_EQ(*copy.Find(VectorKind::kOwnVector, 1, 2), extra);
  EXPECT_FALSE(store.Find(VectorKind::kOwnVector, 1, 2));

  // And the spill file outlives the original store.
  { PpvStore doomed = std::move(store); }
  EXPECT_EQ(*copy.Find(VectorKind::kOwnVector, 1, 1), vec);
}

TEST(DiskSpillStorage, DuplicateKeyDies) {
  PpvStore store(DiskOptions(1 << 20));
  SparseVector vec = RandomSparseVector(15, 5);
  store.PutOwned(VectorKind::kOwnVector, 0, 0, vec, vec.SerializedBytes());
  EXPECT_DEATH(
      store.PutOwned(VectorKind::kOwnVector, 0, 0, vec, vec.SerializedBytes()),
      "DPPR_CHECK failed");
}

TEST(DiskSpillStorage, ReferencingPutAdoptsACopy) {
  // Put on the disk backend spills the bytes: no lifetime dependence on the
  // caller's vector (unlike kMemoryRef).
  PpvStore store(DiskOptions(1 << 20));
  SparseVector expected;
  {
    SparseVector temp = RandomSparseVector(16, 20);
    expected = temp;
    store.Put(VectorKind::kHubPartial, 4, 2, &temp, temp.SerializedBytes());
  }  // temp destroyed
  EXPECT_EQ(*store.Find(VectorKind::kHubPartial, 4, 2), expected);
}

}  // namespace
}  // namespace dppr
