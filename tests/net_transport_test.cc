// Transport behavior on both backends (gather, p2p exchange, concurrent
// rounds, empty payloads) plus the hostile-frame suite: truncated headers,
// wrong magic, oversized/wrapping lengths, checksum mismatches, and
// mid-stream disconnects must die cleanly — never hang a gatherer or hand
// garbage to the reducer — mirroring the existing hostile-payload tests for
// ByteReader/VectorRecord/spill files.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "dppr/dist/cluster.h"
#include "dppr/net/frame.h"
#include "dppr/net/tcp_transport.h"
#include "dppr/net/transport.h"

namespace dppr {
namespace {

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

TEST(Frame, HeaderRoundTrips) {
  std::vector<uint8_t> payload{1, 2, 3, 4, 5};
  std::vector<uint8_t> frame =
      BuildFrame(FrameKind::kExchange, 77, 3, 9, payload);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + payload.size());

  FrameHeader header = DecodeFrameHeader(frame);
  EXPECT_EQ(header.kind, FrameKind::kExchange);
  EXPECT_EQ(header.src, 3u);
  EXPECT_EQ(header.dst, 9u);
  EXPECT_EQ(header.round, 77u);
  EXPECT_EQ(header.payload_bytes, payload.size());
  EXPECT_EQ(header.checksum, FrameChecksum(payload));
}

TEST(Frame, ChecksumDetectsSingleBitFlips) {
  std::vector<uint8_t> payload(64, 0xAB);
  uint64_t want = FrameChecksum(payload);
  payload[17] ^= 0x01;
  EXPECT_NE(FrameChecksum(payload), want);
  EXPECT_EQ(FrameChecksum({}), FrameChecksum(std::vector<uint8_t>{}));
}

TEST(FrameHostileDeath, TruncatedHeaderDies) {
  std::vector<uint8_t> frame = BuildFrame(FrameKind::kGather, 1, 0, kCoordinatorDst, {});
  frame.resize(kFrameHeaderBytes - 1);
  EXPECT_DEATH(DecodeFrameHeader(frame), "DPPR_CHECK failed");
}

TEST(FrameHostileDeath, WrongMagicDies) {
  std::vector<uint8_t> frame = BuildFrame(FrameKind::kGather, 1, 0, kCoordinatorDst, {});
  frame[0] ^= 0xFF;
  EXPECT_DEATH(DecodeFrameHeader(frame), "DPPR_CHECK failed");
}

TEST(FrameHostileDeath, UnknownKindDies) {
  std::vector<uint8_t> frame = BuildFrame(FrameKind::kGather, 1, 0, kCoordinatorDst, {});
  frame[4] = 0x7F;
  EXPECT_DEATH(DecodeFrameHeader(frame), "DPPR_CHECK failed");
}

TEST(FrameHostileDeath, OversizedAndWrappingLengthsDie) {
  // An absurd length field must die at decode, before any allocation or
  // `header + length` arithmetic that could wrap.
  FrameHeader header;
  header.payload_bytes = kMaxFramePayloadBytes + 1;
  std::vector<uint8_t> bytes(kFrameHeaderBytes);
  EncodeFrameHeader(header, bytes);
  EXPECT_DEATH(DecodeFrameHeader(bytes), "DPPR_CHECK failed");

  header.payload_bytes = ~uint64_t{0};  // would wrap any offset it is added to
  EncodeFrameHeader(header, bytes);
  EXPECT_DEATH(DecodeFrameHeader(bytes), "DPPR_CHECK failed");
}

TEST(FrameInboxHostileDeath, DuplicateFrameForOneSlotDies) {
  // One payload per (round, src): a duplicate could swap a round's data
  // mid-gather, so it must die rather than overwrite.
  FrameInbox inbox(2);
  inbox.Push(0, 1, {1, 2, 3});
  EXPECT_DEATH(inbox.Push(0, 1, {4, 5, 6}), "DPPR_CHECK failed");
}

TEST(FrameInboxHostileDeath, ReplayOfACollectedRoundDies) {
  // Nobody ever waits on a collected round again; absorbing a replay would
  // orphan a slot (and its payload copy) in the inbox forever.
  FrameInbox inbox(1);
  inbox.Push(3, 0, {1});
  EXPECT_EQ(inbox.WaitAll(3).size(), 1u);
  EXPECT_DEATH(inbox.Push(3, 0, {1}), "DPPR_CHECK failed");
}

// ---------------------------------------------------------------------------
// Behavior shared by both backends
// ---------------------------------------------------------------------------

class TransportBehavior : public ::testing::TestWithParam<TransportBackend> {
 protected:
  std::shared_ptr<Transport> Make(size_t num_machines) {
    TransportOptions options;
    options.backend = GetParam();
    return MakeTransport(num_machines, options);
  }
};

TEST_P(TransportBehavior, GatherReturnsPayloadsIndexedBySource) {
  auto transport = Make(4);
  uint64_t round = transport->AllocateRound(FrameKind::kGather);
  std::vector<std::thread> senders;
  for (size_t m = 0; m < 4; ++m) {
    senders.emplace_back([&, m] {
      transport->SendToCoordinator(
          round, m, std::vector<uint8_t>(m + 1, static_cast<uint8_t>(m)));
    });
  }
  for (auto& s : senders) s.join();

  auto payloads = transport->GatherRound(round);
  ASSERT_EQ(payloads.size(), 4u);
  for (size_t m = 0; m < 4; ++m) {
    EXPECT_EQ(payloads[m],
              std::vector<uint8_t>(m + 1, static_cast<uint8_t>(m)));
  }
}

TEST_P(TransportBehavior, EmptyPayloadsAreDelivered) {
  auto transport = Make(2);
  uint64_t round = transport->AllocateRound(FrameKind::kGather);
  transport->SendToCoordinator(round, 0, {});
  transport->SendToCoordinator(round, 1, {42});
  auto payloads = transport->GatherRound(round);
  EXPECT_TRUE(payloads[0].empty());
  EXPECT_EQ(payloads[1], std::vector<uint8_t>{42});
}

TEST_P(TransportBehavior, ConcurrentRoundsNeverMixFrames) {
  // Serving runs many rounds on one transport at once; frames must route by
  // round id even when sends interleave arbitrarily.
  auto transport = Make(3);
  constexpr size_t kRounds = 16;
  std::vector<uint64_t> rounds;
  for (size_t r = 0; r < kRounds; ++r) rounds.push_back(transport->AllocateRound(FrameKind::kGather));

  std::vector<std::thread> senders;
  for (size_t m = 0; m < 3; ++m) {
    senders.emplace_back([&, m] {
      for (size_t r = 0; r < kRounds; ++r) {
        transport->SendToCoordinator(
            rounds[r], m,
            std::vector<uint8_t>{static_cast<uint8_t>(r), static_cast<uint8_t>(m)});
      }
    });
  }
  std::vector<std::thread> gatherers;
  std::vector<uint8_t> ok(kRounds, 0);
  for (size_t r = 0; r < kRounds; ++r) {
    gatherers.emplace_back([&, r] {
      auto payloads = transport->GatherRound(rounds[r]);
      bool good = payloads.size() == 3;
      for (size_t m = 0; good && m < 3; ++m) {
        good = payloads[m] == std::vector<uint8_t>{static_cast<uint8_t>(r),
                                                   static_cast<uint8_t>(m)};
      }
      ok[r] = good ? 1 : 0;
    });
  }
  for (auto& s : senders) s.join();
  for (auto& g : gatherers) g.join();
  for (size_t r = 0; r < kRounds; ++r) EXPECT_TRUE(ok[r]) << "round " << r;
}

TEST_P(TransportBehavior, ExchangeDeliversAllToAll) {
  auto transport = Make(3);
  uint64_t round = transport->AllocateRound(FrameKind::kExchange);
  std::vector<std::thread> senders;
  for (size_t src = 0; src < 3; ++src) {
    senders.emplace_back([&, src] {
      for (size_t dst = 0; dst < 3; ++dst) {
        transport->SendToMachine(
            round, src, dst,
            std::vector<uint8_t>{static_cast<uint8_t>(src),
                                 static_cast<uint8_t>(dst)});
      }
    });
  }
  for (auto& s : senders) s.join();

  for (size_t dst = 0; dst < 3; ++dst) {
    auto inbox = transport->ReceiveExchange(round, dst);
    ASSERT_EQ(inbox.size(), 3u);
    for (size_t src = 0; src < 3; ++src) {
      EXPECT_EQ(inbox[src], (std::vector<uint8_t>{static_cast<uint8_t>(src),
                                                  static_cast<uint8_t>(dst)}));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportBehavior,
                         ::testing::Values(TransportBackend::kInProcess,
                                           TransportBackend::kTcp),
                         [](const auto& info) {
                           return std::string(TransportBackendName(info.param));
                         });

// ---------------------------------------------------------------------------
// SimCluster over the transports
// ---------------------------------------------------------------------------

SimCluster MakeCluster(size_t machines, TransportBackend backend,
                       bool sequential = false) {
  TransportOptions options;
  options.backend = backend;
  return SimCluster(machines, NetworkModel{}, sequential, options);
}

TEST(SimClusterTransport, TcpRoundMatchesInProcessByteForByte) {
  auto task = [](size_t machine) {
    return std::vector<uint8_t>(machine * 3 + 1, static_cast<uint8_t>(machine));
  };
  SimCluster inproc_cluster = MakeCluster(5, TransportBackend::kInProcess);
  SimCluster tcp_cluster = MakeCluster(5, TransportBackend::kTcp);
  // The ctor must honor the options, not the env default.
  EXPECT_EQ(inproc_cluster.transport_backend(), TransportBackend::kInProcess);
  EXPECT_EQ(tcp_cluster.transport_backend(), TransportBackend::kTcp);
  auto inproc = inproc_cluster.RunRound(task);
  auto tcp = tcp_cluster.RunRound(task);
  EXPECT_EQ(inproc.payloads, tcp.payloads);
  EXPECT_EQ(inproc.metrics.to_coordinator.bytes, tcp.metrics.to_coordinator.bytes);
  EXPECT_EQ(inproc.metrics.to_coordinator.messages,
            tcp.metrics.to_coordinator.messages);
}

TEST(SimClusterTransport, ExchangeRunsOnBothBackendsAndBothModes) {
  auto task = [](size_t machine) {
    std::vector<std::vector<uint8_t>> outbox(4);
    for (size_t dst = 0; dst < 4; ++dst) {
      // Self-addressed and empty payloads are legal (machine 0 sends none).
      if (machine == 0) continue;
      outbox[dst] = {static_cast<uint8_t>(machine), static_cast<uint8_t>(dst)};
    }
    return outbox;
  };
  for (TransportBackend backend :
       {TransportBackend::kInProcess, TransportBackend::kTcp}) {
    for (bool sequential : {false, true}) {
      SimCluster cluster = MakeCluster(4, backend, sequential);
      SimCluster::ExchangeResult result = cluster.RunExchange(task);
      ASSERT_EQ(result.inboxes.size(), 4u);
      // Every payload is one message, empty or not — n² per exchange.
      EXPECT_EQ(result.metrics.exchanged.messages, 16u);
      EXPECT_EQ(result.metrics.exchanged.bytes, 3u * 4u * 2u);  // machines 1..3 × 4 dsts × 2 bytes
      // The shuffled column excludes the n self-addressed payloads: 12
      // messages, and machines 1..3 each keep their own 2-byte self payload.
      EXPECT_EQ(result.metrics.shuffled.messages, 12u);
      EXPECT_EQ(result.metrics.shuffled.bytes, 3u * 4u * 2u - 3u * 2u);
      ASSERT_EQ(result.metrics.ingress.size(), 4u);
      for (const CommStats& in : result.metrics.ingress) {
        EXPECT_EQ(in.messages, 3u);
      }
      for (size_t dst = 0; dst < 4; ++dst) {
        EXPECT_TRUE(result.inboxes[dst][0].empty());
        for (size_t src = 1; src < 4; ++src) {
          EXPECT_EQ(result.inboxes[dst][src],
                    (std::vector<uint8_t>{static_cast<uint8_t>(src),
                                          static_cast<uint8_t>(dst)}));
        }
      }
      EXPECT_EQ(result.metrics.machine_seconds.size(), 4u);
    }
  }
}

TEST(SimClusterTransport, NestedRoundsOverTcpDoNotDeadlock) {
  // The serving layer runs rounds from inside other rounds' machine tasks;
  // the transport must keep rounds independent there too.
  SimCluster outer = MakeCluster(2, TransportBackend::kTcp);
  SimCluster inner = MakeCluster(2, TransportBackend::kTcp);
  auto result = outer.RunRound([&](size_t machine) {
    auto nested = inner.RunRound([&](size_t m) {
      return std::vector<uint8_t>{static_cast<uint8_t>(machine),
                                  static_cast<uint8_t>(m)};
    });
    return nested.payloads[1];
  });
  EXPECT_EQ(result.payloads[0], (std::vector<uint8_t>{0, 1}));
  EXPECT_EQ(result.payloads[1], (std::vector<uint8_t>{1, 1}));
}

// ---------------------------------------------------------------------------
// DPPR_TRANSPORT env knob
// ---------------------------------------------------------------------------

TEST(TransportOptions, FromEnvParsesBackends) {
  ::setenv("DPPR_TRANSPORT", "tcp", 1);
  EXPECT_EQ(TransportOptions::FromEnv().backend, TransportBackend::kTcp);
  ::setenv("DPPR_TRANSPORT", "inproc", 1);
  EXPECT_EQ(TransportOptions::FromEnv(TransportBackend::kTcp).backend,
            TransportBackend::kInProcess);
  ::unsetenv("DPPR_TRANSPORT");
  EXPECT_EQ(TransportOptions::FromEnv().backend, TransportBackend::kInProcess);
  EXPECT_EQ(TransportOptions::FromEnv(TransportBackend::kTcp).backend,
            TransportBackend::kTcp);
}

TEST(TransportOptionsDeath, TypoInEnvDiesInsteadOfSilentFallback) {
  // Threadsafe style: earlier tests started the process-global ThreadPool
  // workers, and forking fast-style from a multithreaded process can wedge
  // the child on a lock a worker held at fork time.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ::setenv("DPPR_TRANSPORT", "tpc", 1);
  EXPECT_DEATH(TransportOptions::FromEnv(), "DPPR_CHECK failed");
  ::unsetenv("DPPR_TRANSPORT");
}

// ---------------------------------------------------------------------------
// Hostile frames over a real socket
// ---------------------------------------------------------------------------

int ConnectLoopback(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

void SendAll(int fd, const std::vector<uint8_t>& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, 0);
    ASSERT_GT(n, 0);
    sent += static_cast<size_t>(n);
  }
}

// Each scenario runs wholly inside the death-test child: build a transport,
// inject hostile bytes at its coordinator listener, and wait. The receive
// loop must abort the process; if it ever "just hangs" instead, the bounded
// sleep makes the child exit cleanly and the death assertion fail. Round 0
// is allocated first so frames carrying it get past the round-watermark
// check and die on the defect each scenario actually targets.
void InjectAndWait(const std::vector<uint8_t>& bytes, bool disconnect) {
  TcpTransport transport(2);
  transport.AllocateRound(FrameKind::kGather);
  int fd = ConnectLoopback(transport.port(transport.coordinator_endpoint()));
  SendAll(fd, bytes);
  if (disconnect) ::close(fd);
  std::this_thread::sleep_for(std::chrono::seconds(20));
}

TEST(TcpTransportHostileDeath, ChecksumMismatchDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::vector<uint8_t> payload{1, 2, 3, 4};
  std::vector<uint8_t> frame =
      BuildFrame(FrameKind::kGather, 0, 0, kCoordinatorDst, payload);
  frame[kFrameHeaderBytes] ^= 0xFF;  // corrupt payload after checksumming
  EXPECT_DEATH(InjectAndWait(frame, /*disconnect=*/false), "DPPR_CHECK failed");
}

TEST(TcpTransportHostileDeath, WrongMagicOnTheWireDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::vector<uint8_t> frame =
      BuildFrame(FrameKind::kGather, 0, 0, kCoordinatorDst, {});
  frame[0] ^= 0xFF;
  EXPECT_DEATH(InjectAndWait(frame, /*disconnect=*/false), "DPPR_CHECK failed");
}

TEST(TcpTransportHostileDeath, OversizedLengthOnTheWireDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  FrameHeader header;
  header.payload_bytes = ~uint64_t{0};
  std::vector<uint8_t> bytes(kFrameHeaderBytes);
  EncodeFrameHeader(header, bytes);
  EXPECT_DEATH(InjectAndWait(bytes, /*disconnect=*/false), "DPPR_CHECK failed");
}

TEST(TcpTransportHostileDeath, OutOfRangeSourceMachineDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Valid frame, but from "machine 7" of a 2-machine cluster: a frame that
  // indexes outside the gather would corrupt another machine's slot.
  std::vector<uint8_t> payload{1};
  std::vector<uint8_t> frame =
      BuildFrame(FrameKind::kGather, 0, 7, kCoordinatorDst, payload);
  EXPECT_DEATH(InjectAndWait(frame, /*disconnect=*/false), "DPPR_CHECK failed");
}

TEST(TcpTransportHostileDeath, UnallocatedRoundIdDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // A perfectly well-formed frame for a round this transport never handed
  // out: accepting it would squat on a future round's slot (turning the real
  // machine's later send into a "duplicate") or let a stream of bogus ids
  // grow the inbox without bound.
  std::vector<uint8_t> payload{9};
  std::vector<uint8_t> frame =
      BuildFrame(FrameKind::kGather, 5, 0, kCoordinatorDst, payload);
  EXPECT_DEATH(InjectAndWait(frame, /*disconnect=*/false), "DPPR_CHECK failed");
}

TEST(TcpTransportHostileDeath, MidFrameDisconnectDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Header promises 1 KiB of payload; the peer vanishes after the header. A
  // gatherer would otherwise wait forever on bytes that can never arrive.
  std::vector<uint8_t> frame =
      BuildFrame(FrameKind::kGather, 0, 0, kCoordinatorDst,
                 std::vector<uint8_t>(1024, 0x5A));
  frame.resize(kFrameHeaderBytes + 16);
  EXPECT_DEATH(InjectAndWait(frame, /*disconnect=*/true), "DPPR_CHECK failed");
}

TEST(TcpTransportHostileDeath, TruncatedHeaderDisconnectDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Not even a whole header arrives before the close.
  std::vector<uint8_t> partial(kFrameHeaderBytes / 2, 0x11);
  EXPECT_DEATH(InjectAndWait(partial, /*disconnect=*/true), "DPPR_CHECK failed");
}

}  // namespace
}  // namespace dppr
