#include "dppr/ppr/forward_push.h"

#include <gtest/gtest.h>

#include "dppr/graph/graph_builder.h"
#include "dppr/graph/local_graph.h"
#include "dppr/ppr/dense_solver.h"
#include "test_util.h"

namespace dppr {
namespace {

using ::dppr::testing::BlockedView;
using ::dppr::testing::RandomDigraph;

PprOptions Tight() {
  PprOptions options;
  options.tolerance = 1e-11;
  return options;
}

TEST(ForwardPush, UnblockedPushIsLocalPpv) {
  Graph g = RandomDigraph(40, 3.0, 42);
  LocalGraph lg = LocalGraph::Whole(g);
  ForwardPusher<LocalGraph> pusher(lg);
  ForwardPushResult result = pusher.Run(7, {}, Tight());

  std::vector<double> oracle = ExactPpvDense(lg, 7, Tight());
  for (NodeId v = 0; v < lg.num_nodes(); ++v) {
    EXPECT_NEAR(result.reserve.ValueAt(v), oracle[v], 1e-7) << "node " << v;
  }
  EXPECT_TRUE(result.residual_at_blocked.empty());
}

TEST(ForwardPush, SourceReserveIncludesTeleportMass) {
  Graph g = RandomDigraph(30, 2.5, 9);
  LocalGraph lg = LocalGraph::Whole(g);
  ForwardPusher<LocalGraph> pusher(lg);
  ForwardPushResult result = pusher.Run(0, {}, Tight());
  // The trivial zero-length tour contributes α.
  EXPECT_GE(result.reserve.ValueAt(0), 0.15 - 1e-9);
}

TEST(ForwardPush, BlockedSourceIsExpandedOnce) {
  // The tour start is exempt: blocking the source must not change anything
  // on a graph with no cycles back to it.
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 2);
  Graph g = builder.Build();
  LocalGraph lg = LocalGraph::Whole(g);
  ForwardPusher<LocalGraph> pusher(lg);
  std::vector<NodeId> blocked{0};
  ForwardPushResult with_source_blocked = pusher.Run(0, blocked, Tight());
  ForwardPushResult unblocked = pusher.Run(0, {}, Tight());
  EXPECT_EQ(with_source_blocked.reserve, unblocked.reserve);
}

TEST(ForwardPush, BlockedSourceReturningMassParks) {
  // 2-cycle with the source blocked: the closed form of p^H_b for H = {b} is
  // α(1+β²) at b and αβ at a (walks may end at b but not pass through it).
  GraphBuilder builder(2);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  Graph g = builder.Build();
  LocalGraph lg = LocalGraph::Whole(g);
  ForwardPusher<LocalGraph> pusher(lg);
  std::vector<NodeId> blocked{0};
  ForwardPushResult push = pusher.Run(0, blocked, Tight());
  double alpha = 0.15;
  double beta = 1.0 - alpha;
  EXPECT_NEAR(push.reserve.ValueAt(0), alpha * (1.0 + beta * beta), 1e-9);
  EXPECT_NEAR(push.reserve.ValueAt(1), alpha * beta, 1e-9);
  EXPECT_NEAR(push.residual_at_blocked.ValueAt(0), beta * beta, 1e-9);
}

TEST(ForwardPush, ReusedEngineGivesIdenticalResults) {
  Graph g = RandomDigraph(50, 3.0, 4);
  LocalGraph lg = LocalGraph::Whole(g);
  ForwardPusher<LocalGraph> pusher(lg);
  std::vector<NodeId> blocked{3, 11, 29};
  ForwardPushResult first = pusher.Run(5, blocked, Tight());
  ForwardPushResult again = pusher.Run(5, blocked, Tight());
  EXPECT_EQ(first.reserve, again.reserve);
  EXPECT_EQ(first.residual_at_blocked, again.residual_at_blocked);

  // Scratch state fully resets: an unrelated run in between must not leak.
  pusher.Run(9, {}, Tight());
  ForwardPushResult third = pusher.Run(5, blocked, Tight());
  EXPECT_EQ(first.reserve, third.reserve);
}

TEST(ForwardPush, PruneDropsSmallEntries) {
  Graph g = RandomDigraph(60, 3.0, 17);
  LocalGraph lg = LocalGraph::Whole(g);
  ForwardPusher<LocalGraph> pusher(lg);
  ForwardPushResult full = pusher.Run(2, {}, Tight(), /*prune_below=*/0.0);
  ForwardPushResult pruned = pusher.Run(2, {}, Tight(), /*prune_below=*/1e-3);
  EXPECT_LT(pruned.reserve.size(), full.reserve.size());
  for (const auto& e : pruned.reserve.entries()) {
    EXPECT_GT(e.value, 1e-3);
  }
}

class ForwardPushPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ForwardPushPropertyTest, PartialVectorMatchesBlockedOracle) {
  uint64_t seed = GetParam();
  Graph g = RandomDigraph(50, 3.0, seed);
  LocalGraph lg = LocalGraph::Whole(g);
  // Arbitrary "hub" set; the push result (Eq. 9) must match the dense PPV of
  // the graph where hub out-edges are hidden (tours die at hubs), with the
  // reserve zero at blocked nodes and the arrival mass parked instead.
  std::vector<NodeId> hubs{1, 8, 21, 33};
  NodeId source = 5;
  ForwardPusher<LocalGraph> pusher(lg);
  ForwardPushResult push = pusher.Run(source, hubs, Tight());

  BlockedView blocked_view(lg, hubs);
  std::vector<double> oracle = ExactPpvDense(blocked_view, source, Tight());

  double alpha = 0.15;
  for (NodeId v = 0; v < lg.num_nodes(); ++v) {
    // Tours may END at a hub (endpoint exemption), so the partial vector
    // matches the hub-absorbing oracle at every coordinate, hubs included.
    EXPECT_NEAR(push.reserve.ValueAt(v), oracle[v], 1e-7)
        << "node " << v << " seed=" << seed;
    bool is_hub = std::find(hubs.begin(), hubs.end(), v) != hubs.end();
    if (is_hub) {
      // Hub arrival mass is reported separately: reserve(h) = α·parked(h).
      EXPECT_NEAR(alpha * push.residual_at_blocked.ValueAt(v),
                  push.reserve.ValueAt(v), 1e-12)
          << "hub " << v << " seed=" << seed;
    }
  }
}

TEST_P(ForwardPushPropertyTest, MassConservation) {
  uint64_t seed = GetParam();
  Graph g = RandomDigraph(70, 3.0, seed);  // self-loops: no dangling loss
  LocalGraph lg = LocalGraph::Whole(g);
  std::vector<NodeId> hubs{0, 13, 27, 45, 66};
  ForwardPusher<LocalGraph> pusher(lg);
  ForwardPushResult push = pusher.Run(30, hubs, Tight());
  // The reserve is a (sub-)probability vector: at most the full unit of walk
  // mass gets absorbed, and parked arrival mass never exceeds what entered.
  double absorbed = push.reserve.L1Norm();
  double parked = push.residual_at_blocked.L1Norm();
  EXPECT_LE(absorbed, 1.0 + 1e-9);
  EXPECT_LE(parked, 1.0 + 1e-9);
  EXPECT_GT(absorbed, 0.15 - 1e-9);  // at least the trivial tour
  // Everything absorbed beyond the trivial tour flowed through (1-α) decay.
  EXPECT_LE(absorbed - 0.15, (1.0 - 0.15) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForwardPushPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace dppr
