#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "dppr/dist/cluster.h"
#include "dppr/dist/network.h"

namespace dppr {
namespace {

// A deterministic machine task with a payload that depends only on the
// machine index (so any run order must yield the same bytes).
std::vector<uint8_t> DeterministicPayload(size_t machine) {
  std::vector<uint8_t> payload((machine * 7) % 13 + 1);
  std::iota(payload.begin(), payload.end(), static_cast<uint8_t>(machine));
  return payload;
}

TEST(SimClusterDeterminism, SequentialModeIsByteIdenticalAcrossRuns) {
  SimCluster cluster(17, NetworkModel{}, /*sequential=*/true);
  ASSERT_TRUE(cluster.sequential());
  auto first = cluster.RunRound(DeterministicPayload);
  auto second = cluster.RunRound(DeterministicPayload);
  EXPECT_EQ(first.payloads, second.payloads);
  EXPECT_EQ(first.metrics.to_coordinator.messages,
            second.metrics.to_coordinator.messages);
  EXPECT_EQ(first.metrics.to_coordinator.bytes,
            second.metrics.to_coordinator.bytes);
}

TEST(SimClusterDeterminism, ParallelModeMatchesSequentialPayloads) {
  // Payload slots are indexed by machine, so scheduling (however many pool
  // threads run the round) must not change the gathered bytes or CommStats.
  SimCluster sequential(23, NetworkModel{}, /*sequential=*/true);
  SimCluster parallel(23, NetworkModel{}, /*sequential=*/false);
  auto seq = sequential.RunRound(DeterministicPayload);
  auto par = parallel.RunRound(DeterministicPayload);
  EXPECT_EQ(seq.payloads, par.payloads);
  EXPECT_EQ(seq.metrics.to_coordinator.messages,
            par.metrics.to_coordinator.messages);
  EXPECT_EQ(seq.metrics.to_coordinator.bytes,
            par.metrics.to_coordinator.bytes);
}

TEST(SimClusterDeterminism, SequentialModeAdmitsSharedMutableState) {
  // Tasks that append to shared state observe machine order 0..n-1.
  SimCluster cluster(8, NetworkModel{}, /*sequential=*/true);
  std::vector<size_t> order;
  cluster.RunRound([&](size_t machine) {
    order.push_back(machine);
    return std::vector<uint8_t>{static_cast<uint8_t>(machine)};
  });
  std::vector<size_t> expected(8);
  std::iota(expected.begin(), expected.end(), size_t{0});
  EXPECT_EQ(order, expected);
}

TEST(SimClusterDeterminism, MultiRoundStatsAccumulateAcrossRounds) {
  SimCluster cluster(4, NetworkModel{}, /*sequential=*/true);
  MultiRoundStats stats;
  size_t reduced_payloads = 0;
  for (int round = 0; round < 3; ++round) {
    cluster.RunRound(
        DeterministicPayload,
        [&](SimCluster::RoundResult& r) { reduced_payloads += r.payloads.size(); },
        &stats);
  }
  EXPECT_EQ(stats.rounds, 3u);
  EXPECT_EQ(stats.comm.messages, 12u);
  EXPECT_EQ(reduced_payloads, 12u);
  auto one = cluster.RunRound(DeterministicPayload);
  EXPECT_EQ(stats.comm.bytes, 3 * one.metrics.to_coordinator.bytes);
  // Each round pays at least one latency per message, and the timed reduce
  // callback lands in coordinator_seconds.
  EXPECT_GE(stats.simulated_seconds,
            12 * cluster.network().latency_seconds);
  EXPECT_GE(stats.coordinator_seconds, 0.0);
  EXPECT_GE(stats.simulated_seconds, stats.coordinator_seconds);
}

TEST(SimClusterDeterminism, SetSequentialToggles) {
  SimCluster cluster(3);
  EXPECT_FALSE(cluster.sequential());
  cluster.set_sequential(true);
  EXPECT_TRUE(cluster.sequential());
  auto result = cluster.RunRound(DeterministicPayload);
  EXPECT_EQ(result.payloads.size(), 3u);
}

}  // namespace
}  // namespace dppr
