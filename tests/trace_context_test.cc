// End-to-end query attribution: TraceContext propagation from the serving
// front door through SimCluster machine tasks (and, over TCP, through frame
// headers on real sockets) to machine-lane trace spans; QueryProfile
// assembly and its bit-for-bit reconciliation against the registry counters;
// the slow-query JSONL log; and the signal-flush path.

#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "dppr/core/hgpa.h"
#include "dppr/net/frame.h"
#include "dppr/net/transport.h"
#include "dppr/obs/flush.h"
#include "dppr/obs/metrics.h"
#include "dppr/obs/trace.h"
#include "dppr/serve/query_server.h"
#include "json_util.h"
#include "test_util.h"

namespace dppr {
namespace {

using ::dppr::testing::JsonParser;
using ::dppr::testing::JsonValue;
using ::dppr::testing::RandomDigraph;

// ---------------------------------------------------------------------------
// TraceContext plumbing
// ---------------------------------------------------------------------------

TEST(TraceContext, ScopeEstablishesAndRestores) {
  EXPECT_FALSE(obs::CurrentTraceContext());
  {
    obs::TraceContextScope outer({11, 12});
    EXPECT_EQ(obs::CurrentTraceContext().trace_id, 11u);
    EXPECT_EQ(obs::CurrentTraceContext().span_id, 12u);
    {
      obs::TraceContextScope inner({21, 22});
      EXPECT_EQ(obs::CurrentTraceContext().trace_id, 21u);
    }
    EXPECT_EQ(obs::CurrentTraceContext().trace_id, 11u);
  }
  EXPECT_FALSE(obs::CurrentTraceContext());
}

TEST(TraceContext, NewTraceIdIsUniqueAndNonzero) {
  std::set<uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    uint64_t id = obs::NewTraceId();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(ids.insert(id).second) << "duplicate trace id " << id;
  }
}

TEST(TraceContext, SpansCaptureAndRenderTheContext) {
  obs::Tracer tracer(/*enabled=*/true);
  {
    obs::TraceContextScope scope({777, 1});
    obs::TraceSpan span(tracer, obs::MachineLane(0), "traced_work");
  }
  {
    obs::TraceSpan span(tracer, obs::MachineLane(1), "untraced_work");
  }
  JsonValue doc = JsonParser(tracer.RenderJson()).Parse();
  for (const JsonValue& e : doc.at("traceEvents").array) {
    if (e.at("ph").str != "X") continue;
    if (e.at("name").str == "traced_work") {
      EXPECT_EQ(e.at("args").at("trace").number, 777.0);
    } else {
      // No context in scope -> no trace arg at all (0 is never rendered).
      EXPECT_EQ(e.object.count("args"), 0u);
    }
  }
}

TEST(FrameHeader, CarriesTheSendingThreadsContext) {
  std::vector<uint8_t> payload = {1, 2, 3};
  FrameHeader untraced = MakeFrameHeader(FrameKind::kGather, 5, 1,
                                         kCoordinatorDst, payload);
  EXPECT_EQ(untraced.trace_id, 0u);
  EXPECT_EQ(untraced.span_id, 0u);

  obs::TraceContextScope scope({0xABCDEF12u, 0x34567u});
  FrameHeader header = MakeFrameHeader(FrameKind::kExchange, 9, 2, 3, payload);
  EXPECT_EQ(header.trace_id, 0xABCDEF12u);
  EXPECT_EQ(header.span_id, 0x34567u);

  // The ids survive the wire encoding, and the layout self-check holds.
  std::vector<uint8_t> buf(kFrameHeaderBytes);
  EncodeFrameHeader(header, buf);
  FrameHeader decoded = DecodeFrameHeader(buf);
  EXPECT_EQ(decoded.trace_id, header.trace_id);
  EXPECT_EQ(decoded.span_id, header.span_id);
  EXPECT_EQ(decoded.round, header.round);
  EXPECT_EQ(decoded.payload_bytes, header.payload_bytes);
  EXPECT_EQ(decoded.checksum, header.checksum);

  std::vector<uint8_t> frame = BuildFrame(FrameKind::kGather, 7, 0,
                                          kCoordinatorDst, payload);
  EXPECT_EQ(DecodeFrameHeader(frame).trace_id, 0xABCDEF12u);
}

// ---------------------------------------------------------------------------
// Served-query propagation: spans on exactly the routed machines
// ---------------------------------------------------------------------------

HgpaOptions SmallOptions() {
  HgpaOptions options;
  options.ppr.tolerance = 1e-8;
  options.hierarchy.max_levels = 4;
  options.hierarchy.min_subgraph_size = 4;
  return options;
}

/// Runs one served query under the (test-enabled) global tracer and asserts
/// every machine-lane span tagged with the query's trace id sits on exactly
/// the machines the router selected for it.
void ExpectSpansOnExactlyTheRoutedMachines(TransportBackend backend) {
  Graph graph = RandomDigraph(80, 3.0, 17);
  auto pre = HgpaPrecomputation::RunHgpa(graph, SmallOptions());
  TransportOptions transport;
  transport.backend = backend;
  QueryServer server(
      HgpaQueryEngine(HgpaIndex::Distribute(pre, 4), NetworkModel{}, transport,
                      RoutingOptions{RoutingMode::kRoute}),
      ServeOptions{});
  ASSERT_NE(server.engine().router(), nullptr);

  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.set_enabled(true);
  QueryServer::Response response = server.Query(13);
  tracer.set_enabled(false);
  ASSERT_NE(response.trace_id, 0u);
  ASSERT_FALSE(response.ppv.entries().empty());

  const NodeId source = 13;
  QueryRouter::Plan plan = server.engine().router()->Route({&source, 1});
  ASSERT_FALSE(plan.machines.empty());
  EXPECT_EQ(response.metrics.machines, plan.machines);

  std::set<uint32_t> expected_lanes;
  for (size_t m : plan.machines) expected_lanes.insert(obs::MachineLane(m));

  // The global tracer accumulates events across tests; our freshly minted
  // trace id isolates exactly this query's spans.
  JsonValue doc = JsonParser(tracer.RenderJson()).Parse();
  std::set<uint32_t> machine_lanes_with_our_trace;
  std::set<uint32_t> lanes_with_machine_span;
  bool saw_request_span = false;
  for (const JsonValue& e : doc.at("traceEvents").array) {
    if (e.at("ph").str != "X") continue;
    if (e.object.count("args") == 0 || e.at("args").object.count("trace") == 0)
      continue;
    if (e.at("args").at("trace").number !=
        static_cast<double>(response.trace_id))
      continue;
    const uint32_t pid = static_cast<uint32_t>(e.at("pid").number);
    if (pid != obs::kCoordinatorLane) {
      machine_lanes_with_our_trace.insert(pid);
      if (e.at("name").str == "cluster.machine") {
        lanes_with_machine_span.insert(pid);
      }
    } else if (e.at("name").str == "serve.request") {
      saw_request_span = true;
    }
  }
  EXPECT_TRUE(saw_request_span);
  // Every routed machine ran a cluster.machine span under our trace id, and
  // NO machine lane outside the plan carries any span with it (store and
  // net.tcp.send spans included — they inherit the same context).
  EXPECT_EQ(lanes_with_machine_span, expected_lanes);
  EXPECT_EQ(machine_lanes_with_our_trace, expected_lanes)
      << "spans must land on the routed machines, all of them, and no others";
}

TEST(TracePropagation, RoutedQuerySpansInproc) {
  ExpectSpansOnExactlyTheRoutedMachines(TransportBackend::kInProcess);
}

TEST(TracePropagation, RoutedQuerySpansTcp) {
  ExpectSpansOnExactlyTheRoutedMachines(TransportBackend::kTcp);
}

// ---------------------------------------------------------------------------
// QueryProfile reconciliation against the registry counters
// ---------------------------------------------------------------------------

TEST(QueryProfileReconciliation, TotalsMatchCounterDeltas) {
  Graph graph = RandomDigraph(80, 3.0, 29);
  auto pre = HgpaPrecomputation::RunHgpa(graph, SmallOptions());
  QueryServer server(
      HgpaQueryEngine(HgpaIndex::Distribute(pre, 4), NetworkModel{},
                      TransportOptions{}, RoutingOptions{RoutingMode::kRoute}),
      ServeOptions{});
  server.ResetStats();

  constexpr size_t kQueries = 12;
  std::vector<uint64_t> trace_ids;
  for (NodeId q = 0; q < kQueries; ++q) {
    QueryServer::Response r = server.Query(q);
    ASSERT_FALSE(r.shed);
    trace_ids.push_back(r.trace_id);
  }

  std::vector<QueryProfile> profiles = server.RecentProfiles();
  ASSERT_EQ(profiles.size(), kQueries);

  // Single-threaded serving: every query was its own round and its own
  // profile; RecentProfiles is newest-first.
  CommStats fragment_total, round_total;
  uint64_t machine_rounds = 0;
  uint64_t bytes_saved = 0;
  StorageStats storage_total;
  std::set<uint64_t> round_ids;
  for (size_t i = 0; i < kQueries; ++i) {
    const QueryProfile& p = profiles[kQueries - 1 - i];
    EXPECT_EQ(p.trace_id, trace_ids[i]);
    EXPECT_EQ(p.outcome, QueryProfile::Outcome::kServed);
    EXPECT_EQ(p.source, static_cast<NodeId>(i));
    EXPECT_EQ(p.batch_size, 1u);
    // Transport rounds are allocated from 0, so round_id itself can be 0 on
    // a fresh transport; what must hold is one distinct round per query.
    round_ids.insert(p.round_id);
    EXPECT_EQ(p.machines.size(), p.machines_contacted);
    // Unbatched: the query's own fragments ARE the round payloads.
    EXPECT_EQ(p.fragment_comm.bytes, p.round_comm.bytes);
    EXPECT_EQ(p.fragment_comm.messages, p.round_comm.messages);
    EXPECT_EQ(p.fragment_comm.messages, p.machines_contacted);
    // machine_seconds is full cluster width; non-participants are zero.
    EXPECT_EQ(p.machine_seconds.size(), 4u);
    for (size_t m = 0; m < p.machine_seconds.size(); ++m) {
      const bool participant =
          std::find(p.machines.begin(), p.machines.end(), m) !=
          p.machines.end();
      if (!participant) EXPECT_EQ(p.machine_seconds[m], 0.0);
      EXPECT_LE(p.machine_seconds[m], p.max_machine_seconds);
    }
    fragment_total += p.fragment_comm;
    round_total += p.round_comm;
    machine_rounds += p.machines_contacted;
    bytes_saved += p.routing_bytes_saved;
    storage_total += p.storage;
  }

  // The reconciliation: profile sums equal the registry/window deltas
  // exactly. Profiles are attributions of the same ledgers, never a second
  // measurement, so this holds bit-for-bit.
  ServerStats stats = server.Stats();
  EXPECT_EQ(round_ids.size(), kQueries);
  EXPECT_EQ(stats.queries, kQueries);
  EXPECT_EQ(stats.rounds, kQueries);
  EXPECT_EQ(round_total.bytes, stats.comm.bytes);
  EXPECT_EQ(round_total.messages, stats.comm.messages);
  EXPECT_EQ(fragment_total.bytes, stats.comm.bytes);
  EXPECT_EQ(machine_rounds, stats.routing_machine_rounds);
  EXPECT_EQ(bytes_saved, stats.routing_bytes_saved);
  EXPECT_EQ(storage_total.cache_hits, stats.cache_hits);
  EXPECT_EQ(storage_total.cache_misses, stats.cache_misses);
  EXPECT_EQ(storage_total.disk_bytes_read, stats.disk_bytes_read);
}

TEST(QueryProfileReconciliation, BatchFragmentsSumToTheRound) {
  // Two queries forced into one round via a preference-set pair submitted by
  // one thread is not possible through the public API (batching needs
  // concurrency), so check the batched invariant at the engine level:
  // Σ per-query fragment bytes == round payload bytes.
  Graph graph = RandomDigraph(60, 3.0, 7);
  auto pre = HgpaPrecomputation::RunHgpa(graph, SmallOptions());
  HgpaQueryEngine engine(HgpaIndex::Distribute(pre, 3), NetworkModel{},
                         TransportOptions{},
                         RoutingOptions{RoutingMode::kRoute});
  std::vector<std::vector<HgpaQueryEngine::Preference>> queries;
  for (NodeId q = 0; q < 6; ++q) queries.push_back({{q, 1.0}});
  std::vector<QueryMetrics> per_query;
  QueryMetrics round;
  engine.QueryPreferenceSetMany(queries, &per_query, &round);
  ASSERT_EQ(per_query.size(), queries.size());
  CommStats fragments;
  for (const QueryMetrics& m : per_query) {
    fragments += m.comm;
    EXPECT_EQ(m.round_id, round.round_id);
  }
  EXPECT_EQ(fragments.bytes, round.comm.bytes);
}

// ---------------------------------------------------------------------------
// Slow-query JSONL log
// ---------------------------------------------------------------------------

TEST(SlowQueryLog, WritesParseableJsonlWithTheProfileSchema) {
  Graph graph = RandomDigraph(60, 3.0, 11);
  auto pre = HgpaPrecomputation::RunHgpa(graph, SmallOptions());
  const std::string path =
      ::testing::TempDir() + "/dppr_slow_query_test.jsonl";
  std::remove(path.c_str());

  ServeOptions options;
  options.slow_query_us = 0;  // log every request
  options.slow_query_log_path = path;
  QueryServer server(HgpaQueryEngine(HgpaIndex::Distribute(pre, 3)),
                     std::move(options));

  std::vector<uint64_t> trace_ids;
  for (NodeId q = 0; q < 3; ++q) {
    trace_ids.push_back(server.Query(q).trace_id);
  }
  EXPECT_EQ(server.RecentSlowQueries().size(), 3u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    JsonValue doc = JsonParser(line).Parse();
    ASSERT_EQ(doc.kind, JsonValue::kObject);
    EXPECT_EQ(doc.at("trace_id").number,
              static_cast<double>(trace_ids[lines]));
    EXPECT_EQ(doc.at("outcome").str, "served");
    EXPECT_EQ(doc.at("source").number, static_cast<double>(lines));
    EXPECT_EQ(doc.at("batch_size").number, 1.0);
    // Catalog spot-checks: the documented keys are all present.
    for (const char* key :
         {"request_id", "latency_seconds", "wait_seconds", "round_id",
          "machines", "machines_contacted", "fragment_bytes", "round_bytes",
          "routing_bytes_saved", "machine_seconds", "max_machine_seconds",
          "coordinator_seconds", "store_cache_hits", "disk_bytes_read"}) {
      EXPECT_EQ(doc.object.count(key), 1u) << "missing " << key;
    }
    ++lines;
  }
  EXPECT_EQ(lines, 3u);
  std::remove(path.c_str());
}

TEST(SlowQueryLog, ThresholdDisabledKeepsRingsOnly) {
  Graph graph = RandomDigraph(40, 3.0, 13);
  auto pre = HgpaPrecomputation::RunHgpa(graph, SmallOptions());
  QueryServer server(HgpaQueryEngine(HgpaIndex::Distribute(pre, 2)),
                     ServeOptions{});  // slow_query_us = -1: log disabled
  server.Query(1);
  EXPECT_EQ(server.RecentProfiles().size(), 1u);
  EXPECT_TRUE(server.RecentSlowQueries().empty());
}

// ---------------------------------------------------------------------------
// Tracer drop accounting
// ---------------------------------------------------------------------------

TEST(TracerDrops, OverflowCountsIntoTheRegistry) {
  obs::Counter* dropped = obs::MetricsRegistry::Global().GetCounter(
      "trace.dropped");
  const uint64_t before = dropped->Value();

  obs::Tracer tracer(/*enabled=*/true);
  // Single-threaded: every event lands in the calling thread's shard, so
  // one-over-capacity overflows that shard deterministically.
  constexpr size_t kPerShard = (4u << 20) / 16;
  for (size_t i = 0; i <= kPerShard; ++i) {
    tracer.RecordComplete("spin", 0.0, 1.0, 0, {});
  }
  EXPECT_EQ(tracer.event_count(), kPerShard);
  EXPECT_EQ(tracer.dropped_events(), 1u);
  EXPECT_EQ(dropped->Value(), before + 1);
}

// ---------------------------------------------------------------------------
// Signal flush
// ---------------------------------------------------------------------------

TEST(SignalFlushDeathTest, SigtermStillWritesTheMetricsDump) {
  const std::string path = ::testing::TempDir() + "/dppr_signal_dump.json";
  std::remove(path.c_str());
  EXPECT_EXIT(
      {
        setenv("DPPR_METRICS_DUMP", path.c_str(), 1);
        obs::MetricsRegistry::Global().GetCounter("signal.test")->Add(5);
        obs::InstallSignalFlushOnce();
        std::raise(SIGTERM);
      },
      ::testing::KilledBySignal(SIGTERM), "");
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "signal handler must have written " << path;
  std::stringstream body;
  body << in.rdbuf();
  JsonValue doc = JsonParser(body.str()).Parse();
  EXPECT_EQ(doc.at("counters").at("signal.test").number, 5.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dppr
