#include "dppr/partition/matching.h"

#include <gtest/gtest.h>

#include "dppr/common/rng.h"
#include "dppr/partition/vertex_cover.h"

namespace dppr {
namespace {

// Exhaustive maximum matching for tiny bipartite graphs (oracle).
size_t BruteForceMatching(size_t num_left, size_t num_right,
                          const EdgeList& edges) {
  size_t best = 0;
  size_t m = edges.size();
  for (uint32_t mask = 0; mask < (1u << m); ++mask) {
    std::vector<bool> used_left(num_left, false);
    std::vector<bool> used_right(num_right, false);
    size_t size = 0;
    bool valid = true;
    for (size_t e = 0; e < m && valid; ++e) {
      if (!(mask & (1u << e))) continue;
      auto [l, r] = edges[e];
      if (used_left[l] || used_right[r]) {
        valid = false;
      } else {
        used_left[l] = true;
        used_right[r] = true;
        ++size;
      }
    }
    if (valid) best = std::max(best, size);
  }
  return best;
}

TEST(BipartiteMatcher, PerfectMatchingOnIdentity) {
  BipartiteMatcher matcher(4, 4);
  for (NodeId i = 0; i < 4; ++i) matcher.AddEdge(i, i);
  EXPECT_EQ(matcher.Solve(), 4u);
}

TEST(BipartiteMatcher, StarGraphMatchesOnce) {
  BipartiteMatcher matcher(1, 5);
  for (NodeId r = 0; r < 5; ++r) matcher.AddEdge(0, r);
  EXPECT_EQ(matcher.Solve(), 1u);
}

TEST(BipartiteMatcher, AugmentingPathIsFound) {
  // l0-{r0}, l1-{r0, r1}: greedy could match l0-r0 and starve l1 without
  // augmenting paths.
  BipartiteMatcher matcher(2, 2);
  matcher.AddEdge(0, 0);
  matcher.AddEdge(1, 0);
  matcher.AddEdge(1, 1);
  EXPECT_EQ(matcher.Solve(), 2u);
}

TEST(BipartiteMatcher, SolveIsIdempotent) {
  BipartiteMatcher matcher(3, 3);
  matcher.AddEdge(0, 1);
  matcher.AddEdge(1, 1);
  matcher.AddEdge(2, 2);
  size_t first = matcher.Solve();
  EXPECT_EQ(matcher.Solve(), first);
}

TEST(BipartiteMatcher, EmptyGraph) {
  BipartiteMatcher matcher(3, 2);
  EXPECT_EQ(matcher.Solve(), 0u);
  auto [cl, cr] = matcher.MinVertexCover();
  for (bool c : cl) EXPECT_FALSE(c);
  for (bool c : cr) EXPECT_FALSE(c);
}

class MatcherPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatcherPropertyTest, MatchesBruteForceOracle) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  size_t num_left = 2 + rng.Uniform(5);
  size_t num_right = 2 + rng.Uniform(5);
  EdgeList edges;
  size_t num_edges = rng.Uniform(13);  // <= 12 edges keeps 2^m tractable
  for (size_t e = 0; e < num_edges; ++e) {
    edges.emplace_back(static_cast<NodeId>(rng.Uniform(num_left)),
                       static_cast<NodeId>(rng.Uniform(num_right)));
  }
  BipartiteMatcher matcher(num_left, num_right);
  for (auto [l, r] : edges) matcher.AddEdge(l, r);
  EXPECT_EQ(matcher.Solve(), BruteForceMatching(num_left, num_right, edges))
      << "seed=" << seed;
}

TEST_P(MatcherPropertyTest, KonigCoverIsValidAndMinimum) {
  uint64_t seed = GetParam();
  Rng rng(seed ^ 0xC0FFEE);
  size_t num_left = 2 + rng.Uniform(6);
  size_t num_right = 2 + rng.Uniform(6);
  EdgeList edges;
  for (size_t e = 0; e < 4 + rng.Uniform(9); ++e) {
    edges.emplace_back(static_cast<NodeId>(rng.Uniform(num_left)),
                       static_cast<NodeId>(rng.Uniform(num_right)));
  }
  BipartiteMatcher matcher(num_left, num_right);
  for (auto [l, r] : edges) matcher.AddEdge(l, r);
  size_t matching = matcher.Solve();
  auto [cover_left, cover_right] = matcher.MinVertexCover();

  // Valid: every edge covered.
  for (auto [l, r] : edges) {
    EXPECT_TRUE(cover_left[l] || cover_right[r])
        << "edge (" << l << "," << r << ") uncovered, seed=" << seed;
  }
  // Minimum: |cover| == max matching (Kőnig).
  size_t cover_size = 0;
  for (bool c : cover_left) cover_size += c;
  for (bool c : cover_right) cover_size += c;
  EXPECT_EQ(cover_size, matching) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherPropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{41}));

}  // namespace
}  // namespace dppr
