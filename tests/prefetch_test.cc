// Coverage for the hot-path raw-speed pass: batched extent prefetch through
// the disk store's singleflight table, the paired (skeleton, partial) lookup,
// per-kind spill segments with their manifest, and bit-identity of the full
// query surface across prefetch on/off, storage backends, and transports.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "dppr/core/hgpa.h"
#include "dppr/net/transport.h"
#include "dppr/serve/query_server.h"
#include "dppr/store/disk_storage.h"
#include "dppr/store/ppv_store.h"
#include "test_util.h"

namespace dppr {
namespace {

using ::dppr::testing::RandomDigraph;
using ::dppr::testing::RandomSparseVector;

StorageOptions Disk(size_t cache_bytes = 64 << 20) {
  StorageOptions options;
  options.backend = StorageBackend::kDisk;
  options.cache_bytes = cache_bytes;
  return options;
}

std::string TempPath(const std::string& name) {
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
  return dir + "/dppr_prefetch_test_" + name + ".spill";
}

std::string ReadText(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteText(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

void RemoveSpill(const std::string& path) {
  std::remove(path.c_str());
  for (const char* suffix : {"hub_partial", "skeleton_column", "own_vector"}) {
    std::remove((path + "." + suffix).c_str());
  }
}

/// Env override restored on scope exit (engines read DPPR_PREFETCH at
/// construction, so tests pin it only around the constructor).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string old_;
  bool had_old_ = false;
};

// ---------------------------------------------------------------------------
// Prefetch unit behavior on a raw disk store
// ---------------------------------------------------------------------------

TEST(Prefetch, AdjacentExtentsCoalesceIntoOneRead) {
  PpvStore store(Disk());
  std::vector<SparseVector> expected;
  std::vector<uint64_t> keys;
  for (NodeId node = 0; node < 8; ++node) {
    expected.push_back(RandomSparseVector(200 + node, 40));
    store.PutOwned(VectorKind::kOwnVector, 1, node, expected.back(),
                   expected.back().SerializedBytes());
    keys.push_back(MakeVectorKey(VectorKind::kOwnVector, 1, node));
  }

  store.Prefetch(keys);
  StorageStats cold = store.storage_stats();
  EXPECT_EQ(cold.prefetch_issued, 8u);
  EXPECT_EQ(cold.prefetch_hits, 0u);
  // Eight consecutive appends of one kind are byte-adjacent in the segment:
  // one coalesced pread covers them all.
  EXPECT_EQ(cold.prefetch_coalesced_reads, 1u);
  EXPECT_GT(cold.prefetch_bytes, 0u);
  EXPECT_EQ(cold.disk_bytes_read, cold.prefetch_bytes);
  EXPECT_EQ(cold.cache_misses, 8u);  // prefetch loads are disk reads
  EXPECT_EQ(cold.cache_hits, 0u);

  // Every Find is now a RAM hit, no further disk bytes.
  for (NodeId node = 0; node < 8; ++node) {
    PpvRef found = store.Find(VectorKind::kOwnVector, 1, node);
    ASSERT_TRUE(found);
    EXPECT_EQ(*found, expected[node]);
  }
  StorageStats warm = store.storage_stats();
  EXPECT_EQ(warm.cache_hits, 8u);
  EXPECT_EQ(warm.disk_bytes_read, cold.disk_bytes_read);

  // Prefetching resident keys is pure bookkeeping: no loads, no reads.
  store.Prefetch(keys);
  StorageStats again = store.storage_stats();
  EXPECT_EQ(again.prefetch_hits, 8u);
  EXPECT_EQ(again.prefetch_issued, 8u);
  EXPECT_EQ(again.prefetch_coalesced_reads, 1u);
  EXPECT_EQ(again.disk_bytes_read, cold.disk_bytes_read);
}

TEST(Prefetch, PerKindSegmentsKeepEachKindAdjacent) {
  // Kinds interleaved at ingest land in three separate segments, so a batch
  // spanning all kinds still coalesces into one read per segment — the
  // clustering the per-kind split exists to provide.
  PpvStore store(Disk());
  std::vector<uint64_t> keys;
  for (NodeId i = 0; i < 6; ++i) {
    for (VectorKind kind : {VectorKind::kHubPartial, VectorKind::kSkeletonColumn,
                            VectorKind::kOwnVector}) {
      SparseVector vec = RandomSparseVector(300 + 10 * i + static_cast<int>(kind),
                                            25);
      store.PutOwned(kind, 0, i, vec, vec.SerializedBytes());
      keys.push_back(MakeVectorKey(kind, 0, i));
    }
  }
  store.Prefetch(keys);
  StorageStats stats = store.storage_stats();
  EXPECT_EQ(stats.prefetch_issued, 18u);
  EXPECT_EQ(stats.prefetch_coalesced_reads, 3u);
}

TEST(Prefetch, SkipsAbsentKeysAndOversizedExtents) {
  // Budget 1: every record is bigger than the whole cache, so prefetch must
  // refuse to read anything (the load could never stay cached — it would
  // only double the I/O) and the budget-1 invariant "no hit ever" holds.
  PpvStore store(Disk(/*cache_bytes=*/1));
  SparseVector vec = RandomSparseVector(77, 30);
  store.PutOwned(VectorKind::kOwnVector, 0, 0, vec, vec.SerializedBytes());
  std::vector<uint64_t> keys = {
      MakeVectorKey(VectorKind::kOwnVector, 0, 0),
      MakeVectorKey(VectorKind::kOwnVector, 0, 999),     // never stored
      MakeVectorKey(VectorKind::kSkeletonColumn, 5, 5),  // never stored
  };
  store.Prefetch(keys);
  StorageStats stats = store.storage_stats();
  EXPECT_EQ(stats.prefetch_issued, 0u);
  EXPECT_EQ(stats.prefetch_hits, 0u);
  EXPECT_EQ(stats.prefetch_coalesced_reads, 0u);
  EXPECT_EQ(stats.disk_bytes_read, 0u);

  // The vector is still served correctly, as a plain miss.
  PpvRef found = store.Find(VectorKind::kOwnVector, 0, 0);
  ASSERT_TRUE(found);
  EXPECT_EQ(*found, vec);
  EXPECT_EQ(store.storage_stats().cache_hits, 0u);
}

TEST(Prefetch, InMemoryBackendsIgnoreIt) {
  for (StorageBackend backend :
       {StorageBackend::kMemoryRef, StorageBackend::kMemoryOwned}) {
    StorageOptions options;
    options.backend = backend;
    PpvStore store(options);
    SparseVector vec = RandomSparseVector(5, 10);
    store.PutOwned(VectorKind::kOwnVector, 0, 1, vec, vec.SerializedBytes());
    std::vector<uint64_t> keys = {MakeVectorKey(VectorKind::kOwnVector, 0, 1)};
    store.Prefetch(keys);  // no-op, must not crash or count anything
    EXPECT_EQ(store.storage_stats().prefetch_issued, 0u);
    EXPECT_EQ(*store.Find(VectorKind::kOwnVector, 0, 1), vec);
  }
}

// ---------------------------------------------------------------------------
// FindPair
// ---------------------------------------------------------------------------

TEST(FindPair, MatchesTwoFindsAcrossBackends) {
  for (StorageBackend backend :
       {StorageBackend::kMemoryRef, StorageBackend::kMemoryOwned,
        StorageBackend::kDisk}) {
    StorageOptions options;
    options.backend = backend;
    PpvStore store(options);
    for (NodeId hub = 0; hub < 5; ++hub) {
      SparseVector skel = RandomSparseVector(400 + hub, 12);
      SparseVector part = RandomSparseVector(500 + hub, 30);
      store.PutOwned(VectorKind::kSkeletonColumn, 2, hub, skel,
                     skel.SerializedBytes());
      store.PutOwned(VectorKind::kHubPartial, 2, hub, part,
                     part.SerializedBytes());
    }
    // A lone skeleton (no partial) and a fully absent hub exercise the
    // partial-pair edges.
    SparseVector lonely = RandomSparseVector(600, 8);
    store.PutOwned(VectorKind::kSkeletonColumn, 2, 5, lonely,
                   lonely.SerializedBytes());

    for (NodeId hub = 0; hub < 5; ++hub) {
      PpvPair pair = store.FindPair(2, hub);
      ASSERT_TRUE(pair.skeleton) << "backend " << static_cast<int>(backend);
      ASSERT_TRUE(pair.partial);
      EXPECT_EQ(*pair.skeleton, *store.Find(VectorKind::kSkeletonColumn, 2, hub));
      EXPECT_EQ(*pair.partial, *store.Find(VectorKind::kHubPartial, 2, hub));
    }
    PpvPair partial_pair = store.FindPair(2, 5);
    ASSERT_TRUE(partial_pair.skeleton);
    EXPECT_EQ(*partial_pair.skeleton, lonely);
    EXPECT_FALSE(partial_pair.partial);
    PpvPair absent = store.FindPair(2, 99);
    EXPECT_FALSE(absent.skeleton);
    EXPECT_FALSE(absent.partial);
  }
}

TEST(FindPair, WarmPairCountsTwoHitsLikeTwoFinds) {
  PpvStore store(Disk());
  SparseVector skel = RandomSparseVector(1, 10);
  SparseVector part = RandomSparseVector(2, 20);
  store.PutOwned(VectorKind::kSkeletonColumn, 0, 0, skel, skel.SerializedBytes());
  store.PutOwned(VectorKind::kHubPartial, 0, 0, part, part.SerializedBytes());

  (void)store.FindPair(0, 0);  // cold: two loads
  StorageStats cold = store.storage_stats();
  EXPECT_EQ(cold.cache_misses, 2u);
  (void)store.FindPair(0, 0);  // warm: both from the single-lock fast path
  StorageStats warm = store.storage_stats();
  EXPECT_EQ(warm.cache_hits, cold.cache_hits + 2);
  EXPECT_EQ(warm.cache_misses, cold.cache_misses);
  EXPECT_EQ(warm.disk_bytes_read, cold.disk_bytes_read);
}

TEST(FindPair, CopiedStoreDoesNotAliasSourcePairIndex) {
  // Clone re-points the paired index at the copied owned vectors; the copy
  // must stay valid after the source dies.
  StorageOptions options;
  options.backend = StorageBackend::kMemoryOwned;
  auto store = std::make_optional<PpvStore>(options);
  SparseVector skel = RandomSparseVector(8, 10);
  SparseVector part = RandomSparseVector(9, 10);
  store->PutOwned(VectorKind::kSkeletonColumn, 1, 2, skel, skel.SerializedBytes());
  store->PutOwned(VectorKind::kHubPartial, 1, 2, part, part.SerializedBytes());

  PpvStore copy = *store;
  PpvPair pair = copy.FindPair(1, 2);
  EXPECT_NE(&*pair.skeleton, &*store->FindPair(1, 2).skeleton);
  store.reset();
  EXPECT_EQ(*pair.skeleton, skel);
  EXPECT_EQ(*copy.FindPair(1, 2).partial, part);
}

// ---------------------------------------------------------------------------
// Per-kind segments: manifest round trip, legacy compatibility, hostile input
// ---------------------------------------------------------------------------

TEST(SpillSegments, NamedSpillWritesManifestAndSegments) {
  std::string path = TempPath("manifest");
  StorageOptions options = Disk();
  options.spill_path = path;
  std::vector<SparseVector> expected;
  {
    PpvStore store(options);
    for (uint8_t k = 0; k < kNumVectorKinds; ++k) {
      expected.push_back(RandomSparseVector(700 + k, 20));
      store.PutOwned(static_cast<VectorKind>(k), 3, k, expected.back(),
                     expected.back().SerializedBytes());
    }
  }
  EXPECT_EQ(ReadText(path).rfind("DPPR-SPILL-MANIFEST v1", 0), 0u);
  for (const char* suffix : {"hub_partial", "skeleton_column", "own_vector"}) {
    EXPECT_TRUE(std::ifstream(path + "." + suffix).good()) << suffix;
  }

  PpvStore reopened = PpvStore::OpenSpill(path);
  EXPECT_EQ(reopened.num_vectors(), size_t{kNumVectorKinds});
  for (uint8_t k = 0; k < kNumVectorKinds; ++k) {
    PpvRef found = reopened.Find(static_cast<VectorKind>(k), 3, k);
    ASSERT_TRUE(found);
    EXPECT_EQ(*found, expected[k]);
  }
  RemoveSpill(path);
}

TEST(SpillSegments, LegacySingleFileSpillStillOpensAndPrefetches) {
  // A pre-segment spill is one concatenated record stream with every kind
  // interleaved. It must open (all segment slots alias the one file), serve
  // bit-identical vectors, and still accept Prefetch.
  std::string path = TempPath("legacy");
  ByteWriter writer;
  std::vector<SparseVector> expected;
  std::vector<uint64_t> keys;
  for (NodeId i = 0; i < 4; ++i) {
    for (uint8_t k = 0; k < kNumVectorKinds; ++k) {
      expected.push_back(RandomSparseVector(800 + 10 * i + k, 15));
      VectorRecord::Serialize(writer, static_cast<VectorKind>(k), 1, i,
                              /*seconds=*/0.0, expected.back());
      keys.push_back(MakeVectorKey(static_cast<VectorKind>(k), 1, i));
    }
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(writer.bytes().data()),
              static_cast<std::streamsize>(writer.bytes().size()));
  }

  // Explicit budget: the env legs' tiny DPPR_CACHE_BYTES would cap how many
  // loads one Prefetch pass may plan, and this test counts them exactly.
  PpvStore legacy = PpvStore::OpenSpill(path, Disk());
  EXPECT_EQ(legacy.num_vectors(), expected.size());
  legacy.Prefetch(keys);
  EXPECT_EQ(legacy.storage_stats().prefetch_issued, expected.size());
  size_t i = 0;
  for (NodeId node = 0; node < 4; ++node) {
    for (uint8_t k = 0; k < kNumVectorKinds; ++k) {
      PpvRef found = legacy.Find(static_cast<VectorKind>(k), 1, node);
      ASSERT_TRUE(found);
      EXPECT_EQ(*found, expected[i++]);
    }
  }
  std::remove(path.c_str());
}

std::string WriteValidSegmentSpill(const std::string& path) {
  StorageOptions options = Disk();
  options.spill_path = path;
  PpvStore store(options);
  for (uint8_t k = 0; k < kNumVectorKinds; ++k) {
    SparseVector vec = RandomSparseVector(900 + k, 20);
    store.PutOwned(static_cast<VectorKind>(k), 0, k, vec, vec.SerializedBytes());
  }
  return ReadText(path);
}

TEST(SpillManifestHostile, MissingEndTrailerDies) {
  std::string path = TempPath("noend");
  std::string manifest = WriteValidSegmentSpill(path);
  size_t end = manifest.rfind("end\n");
  ASSERT_NE(end, std::string::npos);
  WriteText(path, manifest.substr(0, end));
  EXPECT_DEATH(PpvStore::OpenSpill(path), "DPPR_CHECK failed");
  RemoveSpill(path);
}

TEST(SpillManifestHostile, WrongKindLineDies) {
  std::string path = TempPath("wrongkind");
  std::string manifest = WriteValidSegmentSpill(path);
  size_t pos = manifest.find("skeleton_column ");
  ASSERT_NE(pos, std::string::npos);
  manifest.replace(pos, 16, "skeleton_kolumn ");
  WriteText(path, manifest);
  EXPECT_DEATH(PpvStore::OpenSpill(path), "DPPR_CHECK failed");
  RemoveSpill(path);
}

TEST(SpillManifestHostile, PathTraversalBasenameDies) {
  // A hostile manifest must not be able to point a segment outside the
  // manifest's own directory.
  std::string path = TempPath("traversal");
  std::string manifest = WriteValidSegmentSpill(path);
  size_t line = manifest.find("own_vector ");
  ASSERT_NE(line, std::string::npos);
  size_t eol = manifest.find('\n', line);
  manifest.replace(line, eol - line, "own_vector ../../etc/passwd");
  WriteText(path, manifest);
  EXPECT_DEATH(PpvStore::OpenSpill(path), "DPPR_CHECK failed");
  RemoveSpill(path);
}

TEST(SpillManifestHostile, MissingSegmentFileDies) {
  std::string path = TempPath("missingseg");
  WriteValidSegmentSpill(path);
  std::remove((path + ".hub_partial").c_str());
  EXPECT_DEATH(PpvStore::OpenSpill(path), "DPPR_CHECK failed");
  RemoveSpill(path);
}

TEST(SpillManifestHostile, RecordInWrongSegmentDies) {
  // A record whose kind contradicts its segment would be read back from the
  // wrong file; the open-time scan must refuse it.
  std::string path = TempPath("wrongseg");
  WriteValidSegmentSpill(path);
  ByteWriter writer;
  VectorRecord::Serialize(writer, VectorKind::kOwnVector, 0, 42, 0.0,
                          RandomSparseVector(42, 5));
  std::string skeleton_segment = path + ".skeleton_column";
  std::ofstream out(skeleton_segment,
                    std::ios::binary | std::ios::app);
  out.write(reinterpret_cast<const char*>(writer.bytes().data()),
            static_cast<std::streamsize>(writer.bytes().size()));
  out.close();
  EXPECT_DEATH(PpvStore::OpenSpill(path), "DPPR_CHECK failed");
  RemoveSpill(path);
}

// ---------------------------------------------------------------------------
// Engine-level equivalence: prefetch on/off x transport x backend
// ---------------------------------------------------------------------------

HgpaOptions SmallOptions() {
  HgpaOptions options;
  options.ppr.tolerance = 1e-8;
  options.hierarchy.max_levels = 3;
  options.hierarchy.min_subgraph_size = 4;
  return options;
}

void ExpectEnginesAgree(const Graph& g, HgpaQueryEngine& a, HgpaQueryEngine& b) {
  for (NodeId q = 0; q < g.num_nodes(); q += 4) {
    EXPECT_EQ(a.Query(q), b.Query(q)) << "query " << q;
  }
  std::vector<HgpaQueryEngine::Preference> prefs{
      {1, 0.6}, {static_cast<NodeId>(g.num_nodes() / 2), 0.4}};
  EXPECT_EQ(a.QueryPreferenceSet(prefs), b.QueryPreferenceSet(prefs));
}

TEST(PrefetchEquivalence, OnOffAndMemoryBitIdenticalOnBothTransports) {
  Graph g = RandomDigraph(90, 3.0, 17);
  HgpaOptions options = SmallOptions();
  auto pre = HgpaPrecomputation::RunHgpa(g, options);

  StorageOptions memory;
  memory.backend = StorageBackend::kMemoryRef;
  // Budget comfortably above single records so the prefetcher really loads.
  StorageOptions disk = Disk(size_t{1} << 20);

  for (TransportBackend backend :
       {TransportBackend::kInProcess, TransportBackend::kTcp}) {
    TransportOptions transport;
    transport.backend = backend;
    HgpaQueryEngine reference(HgpaIndex::Distribute(pre, 3, memory),
                              NetworkModel{}, transport);
    std::optional<HgpaQueryEngine> disk_on;
    {
      ScopedEnv env("DPPR_PREFETCH", "on");
      disk_on.emplace(HgpaIndex::Distribute(pre, 3, disk), NetworkModel{},
                      transport);
    }
    std::optional<HgpaQueryEngine> disk_off;
    {
      ScopedEnv env("DPPR_PREFETCH", "off");
      disk_off.emplace(HgpaIndex::Distribute(pre, 3, disk), NetworkModel{},
                       transport);
    }

    ExpectEnginesAgree(g, reference, *disk_on);
    ExpectEnginesAgree(g, reference, *disk_off);
    ExpectEnginesAgree(g, *disk_on, *disk_off);

    // The gate is observable: only the prefetching engine issues loads, and
    // the off engine reads every extent inside the fold instead.
    StorageStats on_stats = disk_on->index().StorageStatsTotal();
    StorageStats off_stats = disk_off->index().StorageStatsTotal();
    EXPECT_GT(on_stats.prefetch_issued, 0u);
    EXPECT_GT(on_stats.prefetch_bytes, 0u);
    EXPECT_GT(on_stats.prefetch_coalesced_reads, 0u);
    EXPECT_EQ(off_stats.prefetch_issued, 0u);
    EXPECT_EQ(off_stats.prefetch_bytes, 0u);
    EXPECT_EQ(reference.index().StorageStatsTotal().prefetch_issued, 0u);
  }
}

TEST(PrefetchEquivalence, ServerStatsExposeThePrefetchWindow) {
  Graph g = RandomDigraph(70, 3.0, 23);
  HgpaOptions options = SmallOptions();
  auto pre = HgpaPrecomputation::RunHgpa(g, options);

  std::optional<QueryServer> server;
  {
    ScopedEnv env("DPPR_PREFETCH", "on");
    server.emplace(
        HgpaQueryEngine(HgpaIndex::Distribute(pre, 3, Disk(size_t{1} << 20))));
  }
  for (NodeId q = 0; q < g.num_nodes(); q += 6) (void)server->Query(q);
  ServerStats stats = server->Stats();
  EXPECT_GT(stats.prefetch_issued, 0u);
  EXPECT_GT(stats.prefetch_coalesced_reads, 0u);
  EXPECT_GT(stats.prefetch_bytes, 0u);
  EXPECT_GT(stats.cache_hits, 0u);
}

TEST(PrefetchGate, TypoDies) {
  // DPPR_PREFETCH=fats must not silently serve unprefetched (or prefetched):
  // same refuse-to-guess policy as DPPR_STORE.
  Graph g = RandomDigraph(30, 2.0, 3);
  HgpaOptions options = SmallOptions();
  auto pre = HgpaPrecomputation::RunHgpa(g, options);
  ScopedEnv env("DPPR_PREFETCH", "fats");
  EXPECT_DEATH(HgpaQueryEngine(HgpaIndex::Distribute(pre, 2)),
               "DPPR_CHECK failed");
}

}  // namespace
}  // namespace dppr
