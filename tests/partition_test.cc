#include "dppr/partition/partition.h"

#include <gtest/gtest.h>

#include "dppr/common/rng.h"
#include "dppr/graph/generators.h"
#include "dppr/partition/bisect.h"
#include "dppr/partition/coarsen.h"
#include "dppr/partition/kway.h"
#include "dppr/partition/wgraph.h"
#include "test_util.h"

namespace dppr {
namespace {

using ::dppr::testing::RandomDigraph;

TEST(WGraph, FromLocalGraphSymmetrizesAndWeights) {
  // 0 -> 1, 1 -> 0 collapse into one undirected edge of weight 2.
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  builder.AddEdge(1, 2);
  Graph g = builder.Build();
  WGraph wg = WGraph::FromLocalGraph(LocalGraph::Whole(g));
  ASSERT_EQ(wg.num_nodes(), 3u);
  ASSERT_EQ(wg.neighbors(0).size(), 1u);
  EXPECT_EQ(wg.neighbors(0)[0].to, 1u);
  EXPECT_EQ(wg.neighbors(0)[0].weight, 2u);
  EXPECT_EQ(wg.neighbors(1).size(), 2u);
}

TEST(WGraph, SelfLoopsIgnored) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 0);
  builder.AddEdge(0, 1);
  Graph g = builder.Build();
  WGraph wg = WGraph::FromLocalGraph(LocalGraph::Whole(g));
  EXPECT_EQ(wg.neighbors(0).size(), 1u);
}

TEST(WGraph, CutWeightCountsCrossingEdges) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(2, 3);
  builder.AddEdge(1, 2);
  Graph g = builder.Build();
  WGraph wg = WGraph::FromLocalGraph(LocalGraph::Whole(g));
  std::vector<uint8_t> side{0, 0, 1, 1};
  EXPECT_EQ(wg.CutWeight(side), 1u);  // only edge 1-2 crosses
}

TEST(Coarsen, PreservesTotalNodeWeight) {
  Graph g = RandomDigraph(300, 4.0, 5);
  WGraph wg = WGraph::FromLocalGraph(LocalGraph::Whole(g));
  Rng rng(1);
  CoarsenResult step = CoarsenHeavyEdge(wg, rng);
  EXPECT_LT(step.coarse.num_nodes(), wg.num_nodes());
  EXPECT_EQ(step.coarse.total_node_weight(), wg.total_node_weight());
  for (NodeId u = 0; u < wg.num_nodes(); ++u) {
    ASSERT_LT(step.fine_to_coarse[u], step.coarse.num_nodes());
  }
}

TEST(Coarsen, CutIsPreservedUnderProjection) {
  // Any coarse bisection projected to the fine graph has the same cut.
  Graph g = RandomDigraph(200, 3.0, 9);
  WGraph wg = WGraph::FromLocalGraph(LocalGraph::Whole(g));
  Rng rng(2);
  CoarsenResult step = CoarsenHeavyEdge(wg, rng);
  std::vector<uint8_t> coarse_side(step.coarse.num_nodes());
  Rng side_rng(3);
  for (auto& s : coarse_side) s = static_cast<uint8_t>(side_rng.Uniform(2));
  std::vector<uint8_t> fine_side(wg.num_nodes());
  for (NodeId u = 0; u < wg.num_nodes(); ++u) {
    fine_side[u] = coarse_side[step.fine_to_coarse[u]];
  }
  EXPECT_EQ(step.coarse.CutWeight(coarse_side), wg.CutWeight(fine_side));
}

TEST(Bisect, ProducesBalancedSides) {
  Graph g = RandomDigraph(1000, 4.0, 17);
  WGraph wg = WGraph::FromLocalGraph(LocalGraph::Whole(g));
  BisectOptions options;
  options.seed = 4;
  std::vector<uint8_t> side = MultilevelBisect(wg, options);
  size_t zero = 0;
  for (uint8_t s : side) zero += (s == 0);
  double fraction = static_cast<double>(zero) / static_cast<double>(side.size());
  EXPECT_GT(fraction, 0.35);
  EXPECT_LT(fraction, 0.65);
}

TEST(Bisect, CutBeatsRandomSplit) {
  Graph g = CommunityDigraph(1500, 6, 4.0, 0.95, 21);
  WGraph wg = WGraph::FromLocalGraph(LocalGraph::Whole(g));
  BisectOptions options;
  options.seed = 5;
  std::vector<uint8_t> side = MultilevelBisect(wg, options);
  uint64_t cut = wg.CutWeight(side);

  Rng rng(6);
  std::vector<uint8_t> random_side(wg.num_nodes());
  for (auto& s : random_side) s = static_cast<uint8_t>(rng.Uniform(2));
  uint64_t random_cut = wg.CutWeight(random_side);
  EXPECT_LT(cut, random_cut / 3) << "multilevel should crush random splits";
}

TEST(Bisect, FindsThePlantedCutOnTwoCliques) {
  // Two 20-cliques joined by one edge: optimal cut weight is 1.
  GraphBuilder builder(40);
  for (NodeId u = 0; u < 20; ++u) {
    for (NodeId v = 0; v < 20; ++v) {
      if (u != v) {
        builder.AddEdge(u, v);
        builder.AddEdge(u + 20, v + 20);
      }
    }
  }
  builder.AddEdge(0, 20);
  Graph g = builder.Build();
  WGraph wg = WGraph::FromLocalGraph(LocalGraph::Whole(g));
  BisectOptions options;
  options.seed = 11;
  std::vector<uint8_t> side = MultilevelBisect(wg, options);
  EXPECT_EQ(wg.CutWeight(side), 1u);
}

TEST(Kway, CoversAllParts) {
  Graph g = RandomDigraph(600, 4.0, 23);
  WGraph wg = WGraph::FromLocalGraph(LocalGraph::Whole(g));
  BisectOptions options;
  options.seed = 7;
  for (uint32_t k : {2u, 3u, 4u, 8u}) {
    std::vector<uint32_t> part = RecursiveKway(wg, k, options);
    std::vector<size_t> sizes(k, 0);
    for (uint32_t p : part) {
      ASSERT_LT(p, k);
      ++sizes[p];
    }
    for (uint32_t p = 0; p < k; ++p) {
      EXPECT_GT(sizes[p], 0u) << "empty part " << p << " of " << k;
      EXPECT_LT(sizes[p], 2 * wg.num_nodes() / k) << "part " << p << " of " << k;
    }
  }
}

TEST(PartitionLocalGraph, AllMethodsProduceValidAssignments) {
  Graph g = RandomDigraph(400, 3.0, 31);
  LocalGraph lg = LocalGraph::Whole(g);
  for (PartitionMethod method : {PartitionMethod::kMultilevel,
                                 PartitionMethod::kBfs, PartitionMethod::kRandom}) {
    PartitionOptions options;
    options.method = method;
    std::vector<uint32_t> part = PartitionLocalGraph(lg, 4, options);
    PartitionQuality quality = EvaluatePartition(lg, part, 4);
    EXPECT_GT(quality.smallest_part, 0u);
    EXPECT_LT(quality.balance, 2.0);
  }
}

TEST(PartitionLocalGraph, MultilevelHasSmallestCut) {
  Graph g = CommunityDigraph(1200, 8, 4.0, 0.92, 3);
  LocalGraph lg = LocalGraph::Whole(g);
  auto cut_for = [&](PartitionMethod method) {
    PartitionOptions options;
    options.method = method;
    return EvaluatePartition(lg, PartitionLocalGraph(lg, 4, options), 4).cut_edges;
  };
  uint64_t multilevel = cut_for(PartitionMethod::kMultilevel);
  uint64_t random = cut_for(PartitionMethod::kRandom);
  EXPECT_LT(multilevel, random);
}

TEST(PartitionLocalGraph, SinglePartIsTrivial) {
  Graph g = RandomDigraph(50, 2.0, 1);
  LocalGraph lg = LocalGraph::Whole(g);
  std::vector<uint32_t> part = PartitionLocalGraph(lg, 1);
  for (uint32_t p : part) EXPECT_EQ(p, 0u);
}

class BisectSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BisectSeedTest, BalanceHoldsAcrossSeedsAndShapes) {
  uint64_t seed = GetParam();
  Graph g = RandomDigraph(300 + 40 * (seed % 5), 2.0 + (seed % 4), seed);
  WGraph wg = WGraph::FromLocalGraph(LocalGraph::Whole(g));
  BisectOptions options;
  options.seed = seed;
  std::vector<uint8_t> side = MultilevelBisect(wg, options);
  uint64_t weight0 = 0;
  for (NodeId u = 0; u < wg.num_nodes(); ++u) {
    if (side[u] == 0) weight0 += wg.node_weight(u);
  }
  double fraction =
      static_cast<double>(weight0) / static_cast<double>(wg.total_node_weight());
  EXPECT_GT(fraction, 0.30) << "seed=" << seed;
  EXPECT_LT(fraction, 0.70) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BisectSeedTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace dppr
