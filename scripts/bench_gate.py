#!/usr/bin/env python3
"""Bench-regression gate: rerun the serving benches and diff key rows
against the committed bench/snapshots/BENCH_*.json.

Runs `fig_serving_throughput --json` and `fig_query_fold --json` at each
snapshot's recorded scale (DPPR_BENCH_SCALE), then compares every metric the
snapshot carries:

  * deterministic metrics (byte/round/read counts) must match within a tight
    tolerance -- drift here is a logic change, not noise;
  * timing metrics (qps, latency, ns/entry) get a loose tolerance -- CI
    machines are noisy, and the gate's job is catching collapses, not
    single-digit regressions.

Exit code 1 when any metric lands outside its tolerance. The CI leg runs
this with continue-on-error: the deltas are printed for the reviewer, the
build is never blocked on shared-runner timing noise.
"""

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile

# Metrics whose values are deterministic re-runs of the same workload (byte
# accounting, read counts). Anything else is timing-dependent — including
# `rounds` and `mean_batch` in the closed-loop serving bench, where how many
# requests a combining leader absorbs per round is pure scheduler timing.
# Per-query fragment bytes are batch-invariant, so comm_kb_per_query stays
# deterministic even as batching shifts.
DETERMINISTIC = {
    "comm_kb_per_query",
    "entries_per_round",
    "disk_mb_read",
    "preads",
    "prefetch_issued",
    "prefetch_coalesced_reads",
}

BENCHES = ["fig_serving_throughput", "fig_query_fold"]


def run_bench(build_dir: pathlib.Path, bench: str, scale: float) -> dict:
    binary = build_dir / bench
    if not binary.exists():
        sys.exit(f"bench binary not found: {binary} (build first)")
    env = dict(os.environ, DPPR_BENCH_SCALE=str(scale))
    with tempfile.TemporaryDirectory() as tmp:
        snapshot = pathlib.Path(tmp) / f"{bench}.json"
        subprocess.run([str(binary), f"--json={snapshot}"], check=True,
                       env=env, stdout=subprocess.DEVNULL)
        return json.loads(snapshot.read_text())


def rows_by_name(doc: dict) -> dict:
    return {row["name"]: row["metrics"] for row in doc["rows"]}


def check(bench: str, snapshot: dict, fresh: dict, det_tol: float,
          timing_tol: float) -> list:
    failures = []
    fresh_rows = rows_by_name(fresh)
    print(f"\n== {bench} ==")
    print(f"{'row/metric':<52} {'snapshot':>12} {'now':>12} {'delta':>9}")
    for row in snapshot["rows"]:
        name = row["name"]
        if name not in fresh_rows:
            failures.append(f"{bench}: row {name} missing from fresh run")
            print(f"{name:<52} {'(missing row)':>12}")
            continue
        for metric, want in row["metrics"].items():
            got = fresh_rows[name].get(metric)
            label = f"{name}/{metric}"
            if got is None:
                failures.append(f"{bench}: {label} missing from fresh run")
                print(f"{label:<52} {'(missing)':>12}")
                continue
            tol = det_tol if metric in DETERMINISTIC else timing_tol
            if want == 0:
                ok = got == 0
                delta = "n/a" if ok else "inf"
            else:
                rel = (got - want) / want
                ok = abs(rel) <= tol
                delta = f"{rel:+.1%}"
            flag = "" if ok else "  <-- outside ±" + f"{tol:.0%}"
            print(f"{label:<52} {want:>12.4g} {got:>12.4g} {delta:>9}{flag}")
            if not ok:
                failures.append(
                    f"{bench}: {label} = {got:.4g}, snapshot {want:.4g} "
                    f"({delta}, tolerance ±{tol:.0%})")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build", type=pathlib.Path)
    parser.add_argument("--snapshots", default="bench/snapshots",
                        type=pathlib.Path)
    parser.add_argument("--deterministic-tolerance", default=0.05, type=float,
                        help="relative tolerance for byte/round counts")
    parser.add_argument("--timing-tolerance", default=1.50, type=float,
                        help="relative tolerance for qps/latency metrics "
                             "(wide on purpose: the gate catches collapses, "
                             "not machine-to-machine variance)")
    args = parser.parse_args()

    failures = []
    for bench in BENCHES:
        snapshot_path = args.snapshots / f"BENCH_{bench}.json"
        snapshot = json.loads(snapshot_path.read_text())
        scale = snapshot.get("params", {}).get("scale", 1.0)
        fresh = run_bench(args.build_dir, bench, scale)
        failures += check(bench, snapshot, fresh,
                          args.deterministic_tolerance, args.timing_tolerance)

    if failures:
        print(f"\nBENCH GATE: {len(failures)} metric(s) outside tolerance:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nBENCH GATE: all metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
