#ifndef DPPR_DIST_NETWORK_H_
#define DPPR_DIST_NETWORK_H_

#include <cstddef>
#include <cstdint>

namespace dppr {

/// Cost model for one machine↔coordinator link. The experiments in the paper
/// run on a cluster connected by a 100 Mbit switch (§6.1), so that is the
/// default; the presets let benches ask "what if the cluster were faster".
/// All simulated-latency numbers in this repo flow through TransferSeconds.
struct NetworkModel {
  /// Payload throughput of one link. 100 Mbit/s = 12.5 MB/s.
  double bandwidth_bytes_per_sec = 12.5e6;
  /// Fixed per-message cost (propagation + switch + protocol overhead).
  double latency_seconds = 1e-3;

  /// Modeled time to move one `bytes`-sized message across the link.
  double TransferSeconds(size_t bytes) const;

  /// The paper's evaluation cluster: 100 Mbit LAN (identical to a
  /// default-constructed model; named for call-site readability).
  static NetworkModel Lan100Mbit();

  /// Commodity gigabit switch.
  static NetworkModel Lan1Gbit();

  /// Modern datacenter fabric (~40 Gbit, tens of microseconds latency).
  static NetworkModel Datacenter();
};

/// Message/byte counters for one direction of traffic. The paper reports
/// "bytes received by the coordinator" as its communication-cost metric.
struct CommStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;

  void Record(size_t message_bytes) {
    ++messages;
    bytes += message_bytes;
  }

  CommStats& operator+=(const CommStats& other) {
    messages += other.messages;
    bytes += other.bytes;
    return *this;
  }

  double kilobytes() const { return static_cast<double>(bytes) / 1024.0; }
  double megabytes() const {
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
  }
};

}  // namespace dppr

#endif  // DPPR_DIST_NETWORK_H_
