#include "dppr/dist/network.h"

namespace dppr {

double NetworkModel::TransferSeconds(size_t bytes) const {
  return latency_seconds + static_cast<double>(bytes) / bandwidth_bytes_per_sec;
}

NetworkModel NetworkModel::Lan100Mbit() { return NetworkModel{}; }

NetworkModel NetworkModel::Lan1Gbit() { return NetworkModel{125e6, 2e-4}; }

NetworkModel NetworkModel::Datacenter() { return NetworkModel{5e9, 2e-5}; }

}  // namespace dppr
