#ifndef DPPR_DIST_LEDGER_H_
#define DPPR_DIST_LEDGER_H_

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <vector>

#include "dppr/common/macros.h"

namespace dppr {

/// Per-machine accumulated compute time. Offline precomputation charges each
/// vector's build time to the machine that stores it; the paper's offline
/// metric is then MaxSeconds() (machines work in parallel) while
/// TotalSeconds() is the centralized-equivalent cost.
class MachineTimeLedger {
 public:
  explicit MachineTimeLedger(size_t num_machines)
      : seconds_(num_machines, 0.0) {
    DPPR_CHECK_GE(num_machines, 1u);
  }

  void Add(size_t machine, double seconds) {
    DPPR_CHECK_LT(machine, seconds_.size());
    seconds_[machine] += seconds;
  }

  double Seconds(size_t machine) const {
    DPPR_CHECK_LT(machine, seconds_.size());
    return seconds_[machine];
  }

  /// Parallel makespan: the slowest machine's total.
  double MaxSeconds() const {
    return *std::max_element(seconds_.begin(), seconds_.end());
  }

  /// Work-sum across machines (what one machine would have paid).
  double TotalSeconds() const {
    return std::accumulate(seconds_.begin(), seconds_.end(), 0.0);
  }

  size_t num_machines() const { return seconds_.size(); }

 private:
  std::vector<double> seconds_;
};

}  // namespace dppr

#endif  // DPPR_DIST_LEDGER_H_
