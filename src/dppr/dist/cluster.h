#ifndef DPPR_DIST_CLUSTER_H_
#define DPPR_DIST_CLUSTER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "dppr/dist/ledger.h"
#include "dppr/dist/network.h"
#include "dppr/net/transport.h"

namespace dppr {

/// Measured + modeled cost of one communication round (all machines compute,
/// then every machine ships one payload to the coordinator, which reduces).
struct RoundMetrics {
  /// Measured compute time of each simulated machine's task.
  std::vector<double> machine_seconds;
  /// Coordinator-bound traffic (the paper's communication-cost metric).
  CommStats to_coordinator;
  /// Measured coordinator reduce time (filled in by the caller).
  double coordinator_seconds = 0.0;

  double MaxMachineSeconds() const;

  /// End-to-end latency of the round under `net`: machines run in parallel
  /// (max compute), their sends serialize into the coordinator's link (total
  /// bytes at link bandwidth plus one latency per message), then the
  /// coordinator reduces. This is the paper's reported "runtime".
  double SimulatedSeconds(const NetworkModel& net) const;
};

/// Measured + modeled cost of one machine→machine shuffle round (all
/// machines compute their outboxes, then every p2p payload moves, then the
/// caller's reduce ingests).
struct ExchangeMetrics {
  /// Measured compute time of each machine's task (outbox construction).
  std::vector<double> machine_seconds;
  /// All n² p2p payloads, recorded in (dst, src) order. Every payload counts
  /// as one message even when empty, mirroring the gather path.
  CommStats exchanged;
  /// Off-machine traffic only (src != dst): a machine's self-addressed
  /// payload never crosses the network, so shuffle ledgers price exactly the
  /// records that actually moved.
  CommStats shuffled;
  /// `shuffled` split by destination; each machine's ingress link drains
  /// independently in the transfer model (p2p links are not the
  /// coordinator's shared ingress).
  std::vector<CommStats> ingress;
  /// Measured coordinator reduce (ingest) time, filled in by the caller.
  double coordinator_seconds = 0.0;

  double MaxMachineSeconds() const;

  /// End-to-end latency of the round under `net`: machines compute in
  /// parallel, then every destination's ingress drains in parallel (the
  /// slowest link gates the barrier), then the reduce.
  double SimulatedSeconds(const NetworkModel& net) const;
};

/// Accumulates RoundMetrics across the supersteps of a multi-round algorithm
/// (the BSP baseline pays one round per superstep; HGPA pays exactly one).
/// Exchange (p2p shuffle) rounds fold into the same report: they count into
/// `rounds`/`simulated_seconds` alongside gathers, with their traffic kept in
/// the distinct `shuffled` column (coordinator ingress and machine→machine
/// bytes are different links and the paper's tables price them apart).
struct MultiRoundStats {
  size_t rounds = 0;
  /// How many of `rounds` were machine→machine shuffles.
  size_t exchange_rounds = 0;
  /// Σ per-round SimulatedSeconds under the network given to Accumulate.
  double simulated_seconds = 0.0;
  /// Σ per-round max machine compute (the compute-only critical path).
  double max_machine_seconds = 0.0;
  double coordinator_seconds = 0.0;
  /// Coordinator ingress (gather rounds).
  CommStats comm;
  /// Machine→machine shuffle traffic (exchange rounds; self-sends excluded).
  CommStats shuffled;

  void Accumulate(const RoundMetrics& round, const NetworkModel& net);
  void AccumulateExchange(const ExchangeMetrics& round, const NetworkModel& net);
};

/// A cluster of `n` simulated machines sharing this process's cores. One
/// round runs a caller-supplied task per machine on the shared ThreadPool
/// (tasks only time their own work, so n may far exceed the physical core
/// count), ships each machine's serialized payload to the coordinator over
/// the cluster's Transport, and reports measured compute plus modeled
/// network cost.
///
/// The Transport is where the bytes physically move: InProcessTransport
/// hands buffers over in memory (the historical behavior), TcpTransport
/// pushes every payload through real localhost sockets. `DPPR_TRANSPORT=tcp`
/// flips the default for every cluster in the process; payloads, CommStats,
/// and results are bit-identical across backends (byte ledgers are computed
/// from payload sizes, never wire overhead).
///
/// Threading contract: RunRound/RunExchange are safe to call from many
/// threads at once on one SimCluster, and from inside another round's
/// machine task. All per-round state (payloads, metrics, timers) is local to
/// the call; concurrent rounds on the shared Transport never mix frames
/// (each round gets a unique id). The shared ThreadPool scopes each round's
/// machine tasks to a per-call task group — the pool's earlier single global
/// in-flight counter made one round's Wait block on every other round's
/// tasks and deadlocked nested rounds outright, which is why ThreadPool was
/// redesigned around TaskGroup (see thread_pool.h). The setters
/// (set_sequential, set_timer) are configuration-time only: don't flip them
/// concurrently with RunRound.
class SimCluster {
 public:
  /// Machine task: given the machine index, returns the payload that machine
  /// sends to the coordinator at the end of the round.
  using MachineTask = std::function<std::vector<uint8_t>(size_t machine)>;

  struct RoundResult {
    /// Payload of machine m at index m, independent of execution order.
    std::vector<std::vector<uint8_t>> payloads;
    RoundMetrics metrics;
    /// Transport round id (unique per kind per transport); the id trace
    /// spans of this round carry, so a timeline groups by it.
    uint64_t round_id = 0;
  };

  /// Exchange task: given the machine index, returns one outbound payload
  /// per destination machine (size must be num_machines(); entries may be
  /// empty, including the self-addressed one).
  using ExchangeTask =
      std::function<std::vector<std::vector<uint8_t>>(size_t machine)>;

  /// Result of one machine→machine shuffle round (the primitive behind
  /// DistributedPrecompute's locality-placement record shipping).
  struct ExchangeResult {
    /// inboxes[dst][src]: the payload machine src addressed to machine dst,
    /// independent of execution order.
    std::vector<std::vector<std::vector<uint8_t>>> inboxes;
    ExchangeMetrics metrics;
    /// Transport round id (see RoundResult::round_id).
    uint64_t round_id = 0;
  };

  /// What a machine's measured compute time charges. kWallClock matches the
  /// paper's single-query-at-a-time experiments; kThreadCpu charges only CPU
  /// actually consumed (CLOCK_THREAD_CPUTIME_ID), so machine_seconds stays
  /// honest when concurrent rounds contend for the same physical cores — the
  /// serving layer's regime. Wall time is the default because it also counts
  /// involuntary preemption, which a dedicated real cluster would not suffer.
  enum class TimerKind { kWallClock, kThreadCpu };

  /// `sequential` runs machine tasks in machine order on the calling thread:
  /// fully deterministic (no scheduler interleaving), at the price of wall
  /// clock. Payloads and CommStats are deterministic in both modes as long as
  /// the task itself is; sequential mode additionally admits tasks that share
  /// mutable state across machines. `transport` picks where round payloads
  /// physically move (default: DPPR_TRANSPORT, else in-process).
  explicit SimCluster(size_t num_machines, NetworkModel network = {},
                      bool sequential = false,
                      TransportOptions transport = TransportOptions::FromEnv());

  size_t num_machines() const { return num_machines_; }
  const NetworkModel& network() const { return network_; }
  bool sequential() const { return sequential_; }
  void set_sequential(bool sequential) { sequential_ = sequential; }
  TimerKind timer() const { return timer_; }
  void set_timer(TimerKind timer) { timer_ = timer; }
  /// Which backend this cluster's rounds actually travel over.
  TransportBackend transport_backend() const { return transport_->backend(); }

  /// Runs one round: `task(m)` for every machine m, each timed individually;
  /// every payload travels machine → coordinator through the Transport.
  /// The returned metrics have machine_seconds and to_coordinator filled;
  /// coordinator_seconds is left 0 for the caller's reduce phase.
  RoundResult RunRound(const MachineTask& task) const;

  /// Routed round: runs `task` only on `machines` (sorted, unique, non-empty
  /// subset of 0..n-1) — the non-participants pay no compute, send nothing,
  /// and charge no comm. The result keeps full-cluster indexing: payloads
  /// has num_machines() entries (empty for non-participants) and
  /// machine_seconds stays n-wide with zeros, so reduce code written against
  /// RunRound works unchanged. CommStats covers participants only, in
  /// machine order.
  RoundResult RunRoundOn(std::span<const size_t> machines,
                         const MachineTask& task) const;

  /// Multi-round convenience: runs one round, times `reduce` as the
  /// coordinator phase (stored into the round's coordinator_seconds), and
  /// folds the completed round into `stats` under this cluster's network
  /// model. Callers with no reduce work may pass a no-op.
  RoundResult RunRound(const MachineTask& task,
                       const std::function<void(RoundResult&)>& reduce,
                       MultiRoundStats* stats) const;

  /// Runs one machine→machine shuffle round: `task(m)` produces machine m's
  /// outbox, every payload travels p2p through the Transport, and each
  /// machine's inbox comes back indexed by source. Sends happen while tasks
  /// run and receives only start after every task finished, so the round is
  /// deadlock-free in sequential mode and over real sockets alike.
  ExchangeResult RunExchange(const ExchangeTask& task) const;

  /// Multi-round convenience mirroring the gather overload: runs one
  /// exchange round, times `reduce` as the coordinator phase, and folds the
  /// completed round into `stats` (rounds, exchange_rounds, shuffled bytes)
  /// under this cluster's network model.
  ExchangeResult RunExchange(const ExchangeTask& task,
                             const std::function<void(ExchangeResult&)>& reduce,
                             MultiRoundStats* stats) const;

 private:
  size_t num_machines_;
  NetworkModel network_;
  bool sequential_;
  TimerKind timer_ = TimerKind::kWallClock;
  /// Shared (not per-round) so concurrent rounds reuse listeners and
  /// connections; copies of a SimCluster share one transport.
  std::shared_ptr<Transport> transport_;
};

}  // namespace dppr

#endif  // DPPR_DIST_CLUSTER_H_
