#include "dppr/dist/cluster.h"

#include <algorithm>

#include "dppr/common/macros.h"
#include "dppr/common/thread_pool.h"
#include "dppr/common/timer.h"

namespace dppr {

double RoundMetrics::MaxMachineSeconds() const {
  double max = 0.0;
  for (double s : machine_seconds) max = std::max(max, s);
  return max;
}

double RoundMetrics::SimulatedSeconds(const NetworkModel& net) const {
  // Σ over messages of TransferSeconds(bytes_i), folded into aggregate form:
  // all coordinator-bound sends share the coordinator's ingress link.
  double transfer =
      static_cast<double>(to_coordinator.bytes) / net.bandwidth_bytes_per_sec +
      static_cast<double>(to_coordinator.messages) * net.latency_seconds;
  return MaxMachineSeconds() + transfer + coordinator_seconds;
}

void MultiRoundStats::Accumulate(const RoundMetrics& round,
                                 const NetworkModel& net) {
  ++rounds;
  simulated_seconds += round.SimulatedSeconds(net);
  max_machine_seconds += round.MaxMachineSeconds();
  coordinator_seconds += round.coordinator_seconds;
  comm += round.to_coordinator;
}

SimCluster::SimCluster(size_t num_machines, NetworkModel network,
                       bool sequential)
    : num_machines_(num_machines),
      network_(network),
      sequential_(sequential) {
  DPPR_CHECK_GE(num_machines, 1u);
}

SimCluster::RoundResult SimCluster::RunRound(const MachineTask& task) const {
  DPPR_CHECK(task != nullptr);
  RoundResult result;
  result.payloads.resize(num_machines_);
  result.metrics.machine_seconds.assign(num_machines_, 0.0);

  auto run_machine = [&](size_t machine) {
    if (timer_ == TimerKind::kThreadCpu) {
      ThreadCpuTimer timer;
      result.payloads[machine] = task(machine);
      result.metrics.machine_seconds[machine] = timer.ElapsedSeconds();
    } else {
      WallTimer timer;
      result.payloads[machine] = task(machine);
      result.metrics.machine_seconds[machine] = timer.ElapsedSeconds();
    }
  };

  if (sequential_ || num_machines_ == 1) {
    for (size_t machine = 0; machine < num_machines_; ++machine) {
      run_machine(machine);
    }
  } else {
    ThreadPool::Default().ParallelFor(num_machines_, run_machine);
  }

  // Charge traffic in machine order so CommStats is independent of which
  // worker finished first.
  for (const auto& payload : result.payloads) {
    result.metrics.to_coordinator.Record(payload.size());
  }
  return result;
}

SimCluster::RoundResult SimCluster::RunRound(
    const MachineTask& task, const std::function<void(RoundResult&)>& reduce,
    MultiRoundStats* stats) const {
  DPPR_CHECK(stats != nullptr);
  RoundResult result = RunRound(task);
  if (reduce != nullptr) {
    WallTimer timer;
    reduce(result);
    result.metrics.coordinator_seconds = timer.ElapsedSeconds();
  }
  stats->Accumulate(result.metrics, network_);
  return result;
}

}  // namespace dppr
