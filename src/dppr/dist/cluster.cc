#include "dppr/dist/cluster.h"

#include <algorithm>
#include <utility>

#include "dppr/common/macros.h"
#include "dppr/common/thread_pool.h"
#include "dppr/common/timer.h"
#include "dppr/obs/metrics.h"
#include "dppr/obs/trace.h"

namespace dppr {
namespace {

/// Registry handles resolved once; afterwards every round touches only
/// atomics. CommStats in RoundMetrics and these counters are charged from
/// the same gathered payload sizes, so the registry rollup and the per-round
/// struct can never disagree.
struct ClusterMetrics {
  obs::Counter* gather_rounds;
  obs::Counter* gather_bytes;
  obs::Counter* gather_messages;
  obs::Counter* exchange_rounds;
  obs::Counter* exchange_bytes;
  obs::Counter* exchange_messages;
  obs::Histogram* machine_task_us;
  obs::Histogram* reduce_us;

  static const ClusterMetrics& Get() {
    static const ClusterMetrics metrics = [] {
      auto& r = obs::MetricsRegistry::Global();
      return ClusterMetrics{r.GetCounter("cluster.gather.rounds"),
                            r.GetCounter("cluster.gather.bytes"),
                            r.GetCounter("cluster.gather.messages"),
                            r.GetCounter("cluster.exchange.rounds"),
                            r.GetCounter("cluster.exchange.bytes"),
                            r.GetCounter("cluster.exchange.messages"),
                            r.GetHistogram("cluster.machine_task_us"),
                            r.GetHistogram("cluster.reduce_us")};
    }();
    return metrics;
  }
};

/// Runs `fn` under the configured machine timer and returns its seconds.
template <typename Fn>
double RunTimed(SimCluster::TimerKind kind, const Fn& fn) {
  if (kind == SimCluster::TimerKind::kThreadCpu) {
    ThreadCpuTimer timer;
    fn();
    return timer.ElapsedSeconds();
  }
  WallTimer timer;
  fn();
  return timer.ElapsedSeconds();
}

}  // namespace

double RoundMetrics::MaxMachineSeconds() const {
  double max = 0.0;
  for (double s : machine_seconds) max = std::max(max, s);
  return max;
}

double RoundMetrics::SimulatedSeconds(const NetworkModel& net) const {
  // Σ over messages of TransferSeconds(bytes_i), folded into aggregate form:
  // all coordinator-bound sends share the coordinator's ingress link.
  double transfer =
      static_cast<double>(to_coordinator.bytes) / net.bandwidth_bytes_per_sec +
      static_cast<double>(to_coordinator.messages) * net.latency_seconds;
  return MaxMachineSeconds() + transfer + coordinator_seconds;
}

double ExchangeMetrics::MaxMachineSeconds() const {
  double max = 0.0;
  for (double s : machine_seconds) max = std::max(max, s);
  return max;
}

double ExchangeMetrics::SimulatedSeconds(const NetworkModel& net) const {
  // Destinations drain their ingress links in parallel; the round's barrier
  // waits for the slowest one.
  double slowest_link = 0.0;
  for (const CommStats& in : ingress) {
    double t = static_cast<double>(in.bytes) / net.bandwidth_bytes_per_sec +
               static_cast<double>(in.messages) * net.latency_seconds;
    slowest_link = std::max(slowest_link, t);
  }
  return MaxMachineSeconds() + slowest_link + coordinator_seconds;
}

void MultiRoundStats::Accumulate(const RoundMetrics& round,
                                 const NetworkModel& net) {
  ++rounds;
  simulated_seconds += round.SimulatedSeconds(net);
  max_machine_seconds += round.MaxMachineSeconds();
  coordinator_seconds += round.coordinator_seconds;
  comm += round.to_coordinator;
}

void MultiRoundStats::AccumulateExchange(const ExchangeMetrics& round,
                                         const NetworkModel& net) {
  ++rounds;
  ++exchange_rounds;
  simulated_seconds += round.SimulatedSeconds(net);
  max_machine_seconds += round.MaxMachineSeconds();
  coordinator_seconds += round.coordinator_seconds;
  shuffled += round.shuffled;
}

SimCluster::SimCluster(size_t num_machines, NetworkModel network,
                       bool sequential, TransportOptions transport)
    : num_machines_(num_machines),
      network_(network),
      sequential_(sequential),
      transport_(MakeTransport(num_machines, transport)) {
  DPPR_CHECK_GE(num_machines, 1u);
}

SimCluster::RoundResult SimCluster::RunRound(const MachineTask& task) const {
  DPPR_CHECK(task != nullptr);
  const uint64_t round = transport_->AllocateRound(FrameKind::kGather);
  RoundResult result;
  result.round_id = round;
  result.metrics.machine_seconds.assign(num_machines_, 0.0);

  // Machine tasks run on pool threads; re-establish the caller's (query's)
  // trace context there so machine/store/net spans and outgoing frame
  // headers stay attributed to the query that triggered the round.
  const obs::TraceContext trace_ctx = obs::CurrentTraceContext();
  auto run_machine = [&](size_t machine) {
    obs::TraceContextScope ctx_scope(trace_ctx);
    // One span per machine superstep, on the machine's own timeline lane:
    // covers compute and the send, so gaps between spans are queueing.
    obs::TraceSpan span(obs::MachineLane(machine), "cluster.machine");
    span.Arg("round", round);
    span.Arg("machine", machine);
    std::vector<uint8_t> payload;
    result.metrics.machine_seconds[machine] =
        RunTimed(timer_, [&] { payload = task(machine); });
    // The send sits outside the machine timer: machine_seconds charges task
    // compute only, so measured compute stays comparable across transport
    // backends (the socket tax shows up in wall clock and benches instead).
    transport_->SendToCoordinator(round, machine, std::move(payload));
  };

  if (sequential_ || num_machines_ == 1) {
    // Sends complete before the gather starts; the transport buffers them
    // (in-process mailbox / kernel socket buffers drained by the receive
    // loop), so sequential mode cannot deadlock.
    for (size_t machine = 0; machine < num_machines_; ++machine) {
      run_machine(machine);
    }
  } else {
    ThreadPool::Default().ParallelFor(num_machines_, run_machine);
  }

  result.payloads = transport_->GatherRound(round);
  DPPR_CHECK_EQ(result.payloads.size(), num_machines_);
  // Charge traffic in machine order so CommStats is independent of which
  // worker finished first (GatherRound indexes payloads by machine).
  for (const auto& payload : result.payloads) {
    result.metrics.to_coordinator.Record(payload.size());
  }
  const ClusterMetrics& metrics = ClusterMetrics::Get();
  metrics.gather_rounds->Increment();
  metrics.gather_bytes->Add(result.metrics.to_coordinator.bytes);
  metrics.gather_messages->Add(result.metrics.to_coordinator.messages);
  for (double s : result.metrics.machine_seconds) {
    metrics.machine_task_us->Record(static_cast<uint64_t>(s * 1e6));
  }
  return result;
}

SimCluster::RoundResult SimCluster::RunRoundOn(std::span<const size_t> machines,
                                               const MachineTask& task) const {
  DPPR_CHECK(task != nullptr);
  DPPR_CHECK_GE(machines.size(), 1u);
  for (size_t i = 0; i < machines.size(); ++i) {
    DPPR_CHECK_LT(machines[i], num_machines_);
    if (i > 0) DPPR_CHECK_LT(machines[i - 1], machines[i]);
  }
  const uint64_t round = transport_->AllocateRound(FrameKind::kGather);
  RoundResult result;
  result.round_id = round;
  result.metrics.machine_seconds.assign(num_machines_, 0.0);

  const obs::TraceContext trace_ctx = obs::CurrentTraceContext();
  auto run_machine = [&](size_t index) {
    obs::TraceContextScope ctx_scope(trace_ctx);
    const size_t machine = machines[index];
    obs::TraceSpan span(obs::MachineLane(machine), "cluster.machine");
    span.Arg("round", round);
    span.Arg("machine", machine);
    std::vector<uint8_t> payload;
    result.metrics.machine_seconds[machine] =
        RunTimed(timer_, [&] { payload = task(machine); });
    transport_->SendToCoordinator(round, machine, std::move(payload));
  };

  if (sequential_ || machines.size() == 1) {
    for (size_t i = 0; i < machines.size(); ++i) run_machine(i);
  } else {
    ThreadPool::Default().ParallelFor(machines.size(), run_machine);
  }

  result.payloads = transport_->GatherRoundPartial(round, machines.size());
  DPPR_CHECK_EQ(result.payloads.size(), num_machines_);
  // Only participants' payloads exist; charge them in machine order so
  // CommStats stays independent of completion order, like the full round.
  for (size_t machine : machines) {
    result.metrics.to_coordinator.Record(result.payloads[machine].size());
  }
  const ClusterMetrics& metrics = ClusterMetrics::Get();
  metrics.gather_rounds->Increment();
  metrics.gather_bytes->Add(result.metrics.to_coordinator.bytes);
  metrics.gather_messages->Add(result.metrics.to_coordinator.messages);
  for (size_t machine : machines) {
    metrics.machine_task_us->Record(static_cast<uint64_t>(
        result.metrics.machine_seconds[machine] * 1e6));
  }
  return result;
}

SimCluster::RoundResult SimCluster::RunRound(
    const MachineTask& task, const std::function<void(RoundResult&)>& reduce,
    MultiRoundStats* stats) const {
  DPPR_CHECK(stats != nullptr);
  RoundResult result = RunRound(task);
  if (reduce != nullptr) {
    obs::TraceSpan span(obs::kCoordinatorLane, "cluster.reduce");
    span.Arg("round", result.round_id);
    WallTimer timer;
    reduce(result);
    result.metrics.coordinator_seconds = timer.ElapsedSeconds();
    ClusterMetrics::Get().reduce_us->Record(
        static_cast<uint64_t>(result.metrics.coordinator_seconds * 1e6));
  }
  stats->Accumulate(result.metrics, network_);
  return result;
}

SimCluster::ExchangeResult SimCluster::RunExchange(const ExchangeTask& task) const {
  DPPR_CHECK(task != nullptr);
  const uint64_t round = transport_->AllocateRound(FrameKind::kExchange);
  ExchangeResult result;
  result.round_id = round;
  result.metrics.machine_seconds.assign(num_machines_, 0.0);

  const obs::TraceContext trace_ctx = obs::CurrentTraceContext();
  auto run_machine = [&](size_t machine) {
    obs::TraceContextScope ctx_scope(trace_ctx);
    obs::TraceSpan span(obs::MachineLane(machine), "cluster.exchange.machine");
    span.Arg("round", round);
    span.Arg("machine", machine);
    std::vector<std::vector<uint8_t>> outbox;
    result.metrics.machine_seconds[machine] =
        RunTimed(timer_, [&] { outbox = task(machine); });
    DPPR_CHECK_EQ(outbox.size(), num_machines_);
    for (size_t dst = 0; dst < num_machines_; ++dst) {
      transport_->SendToMachine(round, machine, dst, std::move(outbox[dst]));
    }
  };

  if (sequential_ || num_machines_ == 1) {
    for (size_t machine = 0; machine < num_machines_; ++machine) {
      run_machine(machine);
    }
  } else {
    ThreadPool::Default().ParallelFor(num_machines_, run_machine);
  }

  // All sends are complete, so the receives below can never wait on a task
  // that has not run yet — the exchange is a barrier, like a BSP superstep.
  result.inboxes.resize(num_machines_);
  result.metrics.ingress.assign(num_machines_, CommStats{});
  for (size_t dst = 0; dst < num_machines_; ++dst) {
    result.inboxes[dst] = transport_->ReceiveExchange(round, dst);
    DPPR_CHECK_EQ(result.inboxes[dst].size(), num_machines_);
  }
  for (size_t dst = 0; dst < num_machines_; ++dst) {
    for (size_t src = 0; src < num_machines_; ++src) {
      size_t size = result.inboxes[dst][src].size();
      result.metrics.exchanged.Record(size);
      if (src != dst) result.metrics.ingress[dst].Record(size);
    }
    result.metrics.shuffled += result.metrics.ingress[dst];
  }
  const ClusterMetrics& metrics = ClusterMetrics::Get();
  metrics.exchange_rounds->Increment();
  metrics.exchange_bytes->Add(result.metrics.exchanged.bytes);
  metrics.exchange_messages->Add(result.metrics.exchanged.messages);
  for (double s : result.metrics.machine_seconds) {
    metrics.machine_task_us->Record(static_cast<uint64_t>(s * 1e6));
  }
  return result;
}

SimCluster::ExchangeResult SimCluster::RunExchange(
    const ExchangeTask& task,
    const std::function<void(ExchangeResult&)>& reduce,
    MultiRoundStats* stats) const {
  DPPR_CHECK(stats != nullptr);
  ExchangeResult result = RunExchange(task);
  if (reduce != nullptr) {
    obs::TraceSpan span(obs::kCoordinatorLane, "cluster.reduce");
    span.Arg("round", result.round_id);
    WallTimer timer;
    reduce(result);
    result.metrics.coordinator_seconds = timer.ElapsedSeconds();
    ClusterMetrics::Get().reduce_us->Record(
        static_cast<uint64_t>(result.metrics.coordinator_seconds * 1e6));
  }
  stats->AccumulateExchange(result.metrics, network_);
  return result;
}

}  // namespace dppr
