#ifndef DPPR_STORE_VECTOR_RECORD_H_
#define DPPR_STORE_VECTOR_RECORD_H_

#include <cstdint>

#include "dppr/common/macros.h"
#include "dppr/common/serialize.h"
#include "dppr/graph/types.h"
#include "dppr/partition/hierarchy.h"
#include "dppr/ppr/sparse_vector.h"

namespace dppr {

/// The three precomputed vector kinds of the paper's decomposition.
enum class VectorKind : uint8_t {
  /// p^H_h[S]: partial vector of hub h w.r.t. subgraph S (Def. 1 / Thm. 2).
  kHubPartial = 0,
  /// Skeleton column of hub h over S: entry u holds s_u[S](h) (Def. 2).
  kSkeletonColumn = 1,
  /// Leaf-level local PPV r_u[leaf] of a non-hub node (Eq. 6 last term).
  kOwnVector = 2,
};
inline constexpr uint8_t kNumVectorKinds = 3;

/// Packs (kind, subgraph, node) into a lookup key. The range checks are
/// always on (DPPR_CHECK): a silently truncated key aliases another vector's
/// slot and returns wrong data, which a release build must refuse too.
inline uint64_t MakeVectorKey(VectorKind kind, SubgraphId sub, NodeId node) {
  DPPR_CHECK_LT(sub, 1u << 30);
  DPPR_CHECK_LT(node, 1u << 30);
  return (static_cast<uint64_t>(kind) << 60) | (static_cast<uint64_t>(sub) << 30) |
         node;
}

/// Kind bits of a packed key — the disk backend's per-kind spill segments and
/// skeleton-favoring eviction both route on this without unpacking the rest.
inline VectorKind VectorKindOfKey(uint64_t key) {
  uint64_t kind = key >> 60;
  DPPR_DCHECK(kind < kNumVectorKinds);
  return static_cast<VectorKind>(kind);
}

/// Wire format for shipping one precomputed vector between machines: header
/// (kind, subgraph, owner node, compute seconds) followed by the serialized
/// SparseVector as a length-prefixed blob, so a receiver can bounds-check the
/// nested payload before trusting it. This is what DistributedPrecompute's
/// SimCluster rounds put on the wire, what vector storage deserializes into
/// an owned vector, and — byte for byte — what the disk backend appends to
/// its spill file, so a spill file is just a concatenation of wire records.
struct VectorRecord {
  VectorKind kind = VectorKind::kOwnVector;
  SubgraphId sub = kInvalidSubgraph;
  NodeId node = kInvalidNode;
  /// Compute time on the producing machine (offline ledger accounting).
  double seconds = 0.0;
  SparseVector vec;

  void SerializeTo(ByteWriter& writer) const;

  /// Same wire format from loose parts, so a producer holding only a
  /// reference to the vector (e.g. the disk backend spilling a referenced
  /// vector) can emit a record without copying it into one.
  static void Serialize(ByteWriter& writer, VectorKind kind, SubgraphId sub,
                        NodeId node, double seconds, const SparseVector& vec);

  /// DPPR_CHECK-fails on malformed input: unknown kind, out-of-range ids,
  /// truncated or oversized nested vector payload.
  static VectorRecord Deserialize(ByteReader& reader);
};

}  // namespace dppr

#endif  // DPPR_STORE_VECTOR_RECORD_H_
