#ifndef DPPR_STORE_PPV_STORE_H_
#define DPPR_STORE_PPV_STORE_H_

#include <memory>
#include <string>

#include "dppr/store/vector_record.h"
#include "dppr/store/vector_storage.h"

namespace dppr {

/// One simulated machine's vector storage: a value-type handle over a
/// pluggable VectorStorage backend (see StorageBackend). Call sites pick a
/// backend per construction — the centralized oracle path defaults to
/// kMemoryRef, the distributed offline path to kMemoryOwned — and
/// `DPPR_STORE=disk` flips any default-constructed store to the disk-backed
/// spill backend, which is how the CI disk leg runs the whole suite
/// out-of-core.
///
/// Lookups return PpvRef pin handles, never raw pointers: the disk backend's
/// residency cache may evict a vector at any moment, and the pin is what
/// keeps it alive while a query folds it.
class PpvStore {
 public:
  /// Backend from the environment (in-memory referencing unless DPPR_STORE
  /// overrides).
  PpvStore() : PpvStore(StorageOptions::FromEnv()) {}
  explicit PpvStore(const StorageOptions& options)
      : storage_(MakeVectorStorage(options)) {}

  /// Reopens a disk store from a named spill file written via
  /// StorageOptions::spill_path. Scanning re-validates every record:
  /// truncated or corrupted spill files DPPR_CHECK-fail here, at open.
  static PpvStore OpenSpill(const std::string& path,
                            const StorageOptions& options = StorageOptions::FromEnv(
                                StorageBackend::kDisk));

  /// Copying is legal in every backend: owned vectors are deep-copied (the
  /// lookup table re-pointed at the copies), disk clones share the immutable
  /// spill file and start a fresh residency cache. Self-assignment is a
  /// no-op.
  PpvStore(const PpvStore& other) : storage_(other.storage_->Clone()) {}
  PpvStore& operator=(const PpvStore& other) {
    if (this != &other) storage_ = other.storage_->Clone();
    return *this;
  }
  PpvStore(PpvStore&&) = default;
  PpvStore& operator=(PpvStore&&) = default;

  /// Referencing put: `vec` must outlive the store under kMemoryRef; the
  /// owning and disk backends adopt a copy instead.
  void Put(VectorKind kind, SubgraphId sub, NodeId node, const SparseVector* vec,
           size_t serialized_bytes) {
    storage_->Put(kind, sub, node, vec, serialized_bytes);
  }

  /// Owning put: adopts `vec` (spills it under the disk backend).
  void PutOwned(VectorKind kind, SubgraphId sub, NodeId node, SparseVector vec,
                size_t serialized_bytes) {
    storage_->PutOwned(kind, sub, node, std::move(vec), serialized_bytes);
  }

  /// Adopts one wire record; the byte ledger is charged the vector's
  /// serialized size. Returns the record's compute seconds so the caller can
  /// charge its offline ledger.
  double Ingest(VectorRecord record) { return storage_->Ingest(std::move(record)); }

  /// Consumes exactly one record from `reader` and stores it — the disk
  /// backend streams the raw wire bytes straight to its spill file. Hostile
  /// bytes DPPR_CHECK-fail before anything is stored.
  double IngestFrom(ByteReader& reader) { return storage_->IngestFrom(reader); }

  /// Empty ref when this machine does not hold the vector. Thread-safe once
  /// ingest is done; the ref pins the vector resident while in scope.
  PpvRef Find(VectorKind kind, SubgraphId sub, NodeId node) const {
    return storage_->Find(kind, sub, node);
  }

  /// The (skeleton column, hub partial) pair for one hub from a single
  /// probe — what the query fold resolves per hub. Results and hit/miss
  /// accounting match two Finds exactly.
  PpvPair FindPair(SubgraphId sub, NodeId hub) const {
    return storage_->FindPair(sub, hub);
  }

  /// Advisory bulk-load hint for packed keys (MakeVectorKey) about to be
  /// looked up: the disk backend pulls the missing extents into its
  /// residency cache with offset-sorted, coalesced reads; the in-memory
  /// backends ignore it. Never changes any Find result.
  void Prefetch(std::span<const uint64_t> keys) const {
    storage_->Prefetch(keys);
  }

  StorageBackend backend() const { return storage_->backend(); }
  size_t num_vectors() const { return storage_->num_vectors(); }
  /// Vectors whose bytes the store itself holds (owned or spilled).
  size_t num_owned() const { return storage_->num_owned(); }

  /// Serialized size of everything stored here (the paper's per-machine
  /// space metric; backend-invariant).
  size_t TotalSerializedBytes() const { return storage_->TotalSerializedBytes(); }

  /// Ledger breakdown: serialized bytes held per vector kind.
  size_t SerializedBytesByKind(VectorKind kind) const {
    return storage_->SerializedBytesByKind(kind);
  }

  /// Serialized bytes currently resident in RAM (≤ cache budget for disk).
  size_t ResidentBytes() const { return storage_->ResidentBytes(); }

  /// Residency counters: hits/misses and bytes read from the spill file.
  StorageStats storage_stats() const { return storage_->stats(); }

 private:
  explicit PpvStore(std::unique_ptr<VectorStorage> storage)
      : storage_(std::move(storage)) {}

  std::unique_ptr<VectorStorage> storage_;
};

}  // namespace dppr

#endif  // DPPR_STORE_PPV_STORE_H_
