#include "dppr/store/disk_storage.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <utility>
#include <vector>

#include "dppr/common/timer.h"
#include "dppr/obs/metrics.h"
#include "dppr/obs/trace.h"

namespace dppr {
namespace {

/// Process-wide rollup of every DiskSpillStorage's miss path. Charged at the
/// same code sites as the per-store hits_/misses_/disk_bytes_read_ atomics
/// (the per-store stats() remain the source for per-index views), so the
/// registry dump and summed StorageStats can never disagree.
struct DiskMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* bytes_read;
  obs::Histogram* miss_extent_read_us;
  obs::Histogram* singleflight_wait_us;

  static const DiskMetrics& Get() {
    static const DiskMetrics metrics = [] {
      auto& r = obs::MetricsRegistry::Global();
      return DiskMetrics{r.GetCounter("store.disk.hits"),
                         r.GetCounter("store.disk.misses"),
                         r.GetCounter("store.disk.bytes_read"),
                         r.GetHistogram("store.disk.miss_extent_read_us"),
                         r.GetHistogram("store.disk.singleflight_wait_us")};
    }();
    return metrics;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// SpillFile
// ---------------------------------------------------------------------------

std::shared_ptr<SpillFile> SpillFile::CreateTemp(const std::string& dir) {
  std::string base = dir;
  if (base.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    base = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
  }
  std::string templ = base + "/dppr-spill-XXXXXX";
  // mkstemp wants a mutable buffer.
  std::vector<char> path(templ.begin(), templ.end());
  path.push_back('\0');
  int fd = ::mkstemp(path.data());
  DPPR_CHECK_GE(fd, 0);
  // Unlink-after-open: the file has no name, cannot collide, and the kernel
  // reclaims it the moment the last fd closes — spill cleanup is automatic
  // even on abort.
  DPPR_CHECK_EQ(::unlink(path.data()), 0);
  return std::shared_ptr<SpillFile>(new SpillFile(fd, 0, /*writable=*/true));
}

std::shared_ptr<SpillFile> SpillFile::CreateAt(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  DPPR_CHECK_GE(fd, 0);
  return std::shared_ptr<SpillFile>(new SpillFile(fd, 0, /*writable=*/true));
}

std::shared_ptr<SpillFile> SpillFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  DPPR_CHECK_GE(fd, 0);
  struct stat st{};
  DPPR_CHECK_EQ(::fstat(fd, &st), 0);
  return std::shared_ptr<SpillFile>(
      new SpillFile(fd, static_cast<uint64_t>(st.st_size), /*writable=*/false));
}

SpillFile::~SpillFile() { ::close(fd_); }

SpillExtent SpillFile::Append(std::span<const uint8_t> bytes) {
  DPPR_CHECK(writable_);
  std::lock_guard<std::mutex> lock(append_mu_);
  uint64_t offset = size_.load(std::memory_order_relaxed);
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::pwrite(fd_, bytes.data() + written, bytes.size() - written,
                         static_cast<off_t>(offset + written));
    if (n < 0 && errno == EINTR) continue;
    DPPR_CHECK_GT(n, 0);
    written += static_cast<size_t>(n);
  }
  // Release-publish the new size so concurrent readers' bounds checks see
  // every byte the extent covers.
  size_.store(offset + bytes.size(), std::memory_order_release);
  return {offset, bytes.size()};
}

void SpillFile::Read(SpillExtent extent, std::span<uint8_t> out) const {
  DPPR_CHECK_EQ(out.size(), extent.length);
  // Wrap-safe bounds check (offset + length could overflow for hostile
  // extents): both ends must sit inside the bytes written so far.
  uint64_t file_size = size();
  DPPR_CHECK_LE(extent.offset, file_size);
  DPPR_CHECK_LE(extent.length, file_size - extent.offset);
  size_t done = 0;
  while (done < extent.length) {
    ssize_t n = ::pread(fd_, out.data() + done, extent.length - done,
                        static_cast<off_t>(extent.offset + done));
    if (n < 0 && errno == EINTR) continue;
    // A short read inside the checked range means the file shrank under us —
    // corrupt/truncated storage, refuse to serve.
    DPPR_CHECK_GT(n, 0);
    done += static_cast<size_t>(n);
  }
}

void SpillFile::Scan(
    const std::function<void(std::span<const uint8_t>)>& scan) const {
  uint64_t file_size = size();
  if (file_size == 0) {
    scan({});
    return;
  }
  void* map = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd_, 0);
  DPPR_CHECK(map != MAP_FAILED);
  scan({static_cast<const uint8_t*>(map), static_cast<size_t>(file_size)});
  ::munmap(map, file_size);
}

// ---------------------------------------------------------------------------
// DiskSpillStorage
// ---------------------------------------------------------------------------

DiskSpillStorage::DiskSpillStorage(const StorageOptions& options)
    : DiskSpillStorage(options.spill_path.empty()
                           ? SpillFile::CreateTemp(options.spill_dir)
                           : SpillFile::CreateAt(options.spill_path),
                       options.cache_bytes) {}

std::unique_ptr<DiskSpillStorage> DiskSpillStorage::OpenExisting(
    const std::string& path, const StorageOptions& options) {
  std::unique_ptr<DiskSpillStorage> store(
      new DiskSpillStorage(SpillFile::Open(path), options.cache_bytes));
  // Rebuild the index by walking the record stream. Every record is fully
  // re-validated (VectorRecord::Deserialize DPPR_CHECKs kinds, id ranges and
  // blob framing), so truncation or corruption dies here — at open — rather
  // than serving garbage at query time.
  store->file_->Scan([&](std::span<const uint8_t> bytes) {
    ByteReader reader(bytes.data(), bytes.size());
    while (!reader.AtEnd()) {
      size_t start = reader.position();
      VectorRecord record = VectorRecord::Deserialize(reader);
      store->IndexExtent(MakeVectorKey(record.kind, record.sub, record.node),
                         {start, reader.position() - start});
      store->Charge(record.kind, record.vec.SerializedBytes());
    }
  });
  return store;
}

void DiskSpillStorage::IndexExtent(uint64_t key, SpillExtent extent) {
  bool inserted = extents_.emplace(key, extent).second;
  DPPR_CHECK(inserted);
}

void DiskSpillStorage::AppendVector(VectorKind kind, SubgraphId sub, NodeId node,
                                    double seconds, const SparseVector& vec,
                                    size_t serialized_bytes) {
  ByteWriter writer;
  VectorRecord::Serialize(writer, kind, sub, node, seconds, vec);
  SpillExtent extent = file_->Append(writer.bytes());
  IndexExtent(MakeVectorKey(kind, sub, node), extent);
  // The ledger charges the vector's serialized size, same as the in-memory
  // backends, so the paper's space metrics are backend-invariant; the record
  // header overhead is visible via SpillFile::size() instead.
  Charge(kind, serialized_bytes);
}

void DiskSpillStorage::Put(VectorKind kind, SubgraphId sub, NodeId node,
                           const SparseVector* vec, size_t serialized_bytes) {
  DPPR_CHECK(vec != nullptr);
  AppendVector(kind, sub, node, /*seconds=*/0.0, *vec, serialized_bytes);
}

void DiskSpillStorage::PutOwned(VectorKind kind, SubgraphId sub, NodeId node,
                                SparseVector vec, size_t serialized_bytes) {
  AppendVector(kind, sub, node, /*seconds=*/0.0, vec, serialized_bytes);
}

double DiskSpillStorage::Ingest(VectorRecord record) {
  AppendVector(record.kind, record.sub, record.node, record.seconds, record.vec,
               record.vec.SerializedBytes());
  return record.seconds;
}

double DiskSpillStorage::IngestFrom(ByteReader& reader) {
  size_t start = reader.position();
  // Validation parse: hostile wire bytes die here, and the parsed vector is
  // dropped right after — ingest streams the raw record bytes to the spill
  // file, so coordinator RAM stays bounded by one record, not the index.
  VectorRecord record = VectorRecord::Deserialize(reader);
  SpillExtent extent = file_->Append(reader.Slice(start, reader.position()));
  IndexExtent(MakeVectorKey(record.kind, record.sub, record.node), extent);
  Charge(record.kind, record.vec.SerializedBytes());
  return record.seconds;
}

PpvRef DiskSpillStorage::Find(VectorKind kind, SubgraphId sub, NodeId node) const {
  uint64_t key = MakeVectorKey(kind, sub, node);
  auto eit = extents_.find(key);
  if (eit == extents_.end()) return {};
  for (;;) {
    std::shared_ptr<InFlightLoad> load;
    {
      std::unique_lock<std::mutex> lock(mu_);
      auto cit = cache_.find(key);
      if (cit != cache_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        DiskMetrics::Get().hits->Increment();
        lru_.splice(lru_.begin(), lru_, cit->second.lru_it);
        return PpvRef(cit->second.vec);
      }
      // Singleflight: if another thread is already reading this extent, wait
      // for its result instead of issuing a duplicate pread. A follower still
      // counts as a miss (the lookup was not served from RAM) but adds no
      // disk bytes — the leader's read is billed exactly once.
      auto fit = inflight_.find(key);
      if (fit != inflight_.end()) {
        std::shared_ptr<InFlightLoad> lead = fit->second;
        misses_.fetch_add(1, std::memory_order_relaxed);
        DiskMetrics::Get().misses->Increment();
        {
          obs::TraceSpan wait_span(obs::kCoordinatorLane,
                                   "store.singleflight_wait");
          WallTimer wait;
          lead->done_cv.wait(lock, [&] { return lead->done; });
          DiskMetrics::Get().singleflight_wait_us->Record(
              static_cast<uint64_t>(wait.ElapsedSeconds() * 1e6));
        }
        if (!lead->failed) return PpvRef(lead->vec);
        // The leader unwound without a result; start the lookup over (this
        // thread may become the next leader and surface the error itself).
        continue;
      }
      // Leader: the load is fully constructed before it enters the table, so
      // an allocation failure here leaves the table untouched rather than
      // holding a null entry every later lookup would wait on forever.
      load = std::make_shared<InFlightLoad>();
      inflight_.emplace(key, load);
    }
    return Load(key, kind, sub, node, eit->second, std::move(load));
  }
}

PpvRef DiskSpillStorage::Load(uint64_t key, VectorKind kind, SubgraphId sub,
                              NodeId node, SpillExtent extent,
                              std::shared_ptr<InFlightLoad> load) const {
  // If anything below unwinds (the reads and parses allocate, so bad_alloc
  // is possible), retire the singleflight entry and wake the followers as
  // failed — otherwise they, and every future lookup of this key, would wait
  // forever on a result that can no longer arrive.
  struct AbandonOnUnwind {
    const DiskSpillStorage* store;
    uint64_t key;
    const std::shared_ptr<InFlightLoad>& load;
    bool armed = true;
    ~AbandonOnUnwind() {
      if (!armed) return;
      std::lock_guard<std::mutex> lock(store->mu_);
      load->failed = true;
      load->done = true;
      store->inflight_.erase(key);
      load->done_cv.notify_all();
    }
  } abandon{this, key, load};

  // Disk I/O and deserialization happen outside the cache lock so concurrent
  // misses on different vectors overlap their reads.
  std::vector<uint8_t> buf(extent.length);
  VectorRecord record = [&] {
    obs::TraceSpan read_span(obs::kCoordinatorLane, "store.extent_read");
    read_span.Arg("bytes", extent.length);
    WallTimer read_timer;
    file_->Read(extent, buf);
    ByteReader reader(buf.data(), buf.size());
    VectorRecord parsed = VectorRecord::Deserialize(reader);
    DPPR_CHECK(reader.AtEnd());
    DiskMetrics::Get().miss_extent_read_us->Record(
        static_cast<uint64_t>(read_timer.ElapsedSeconds() * 1e6));
    return parsed;
  }();
  // The record must be the one the key promised: a corrupted extent table or
  // spill file fails here instead of returning another vector's data.
  DPPR_CHECK(record.kind == kind);
  DPPR_CHECK_EQ(record.sub, sub);
  DPPR_CHECK_EQ(record.node, node);
  auto vec = std::make_shared<const SparseVector>(std::move(record.vec));

  std::lock_guard<std::mutex> lock(mu_);
  misses_.fetch_add(1, std::memory_order_relaxed);
  disk_bytes_read_.fetch_add(extent.length, std::memory_order_relaxed);
  const DiskMetrics& disk_metrics = DiskMetrics::Get();
  disk_metrics.misses->Increment();
  disk_metrics.bytes_read->Add(extent.length);
  // Publish to followers parked on this load, then retire the singleflight
  // entry — later lookups either hit the cache or start a fresh load.
  load->vec = vec;
  load->done = true;
  inflight_.erase(key);
  abandon.armed = false;
  load->done_cv.notify_all();
  // The singleflight table guarantees no concurrent load of this key, so the
  // cache cannot already hold it (insertion only ever happens right here).
  DPPR_DCHECK(cache_.find(key) == cache_.end());
  lru_.push_front(key);
  cache_.emplace(key, CacheEntry{vec, static_cast<size_t>(extent.length),
                                 lru_.begin()});
  resident_bytes_ += static_cast<size_t>(extent.length);
  while (resident_bytes_ > cache_budget_ && !lru_.empty()) {
    uint64_t victim = lru_.back();
    lru_.pop_back();
    auto vit = cache_.find(victim);
    resident_bytes_ -= vit->second.bytes;
    // Outstanding PpvRef pins (including the one returned below when the
    // budget is smaller than this record) share ownership and stay valid.
    cache_.erase(vit);
  }
  return PpvRef(std::move(vec));
}

std::unique_ptr<VectorStorage> DiskSpillStorage::Clone() const {
  std::unique_ptr<DiskSpillStorage> clone(
      new DiskSpillStorage(file_, cache_budget_));
  clone->extents_ = extents_;
  clone->CopyLedgerFrom(*this);
  return clone;
}

size_t DiskSpillStorage::ResidentBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

}  // namespace dppr
