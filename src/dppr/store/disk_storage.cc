#include "dppr/store/disk_storage.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <string_view>
#include <utility>
#include <vector>

#include "dppr/common/timer.h"
#include "dppr/obs/metrics.h"
#include "dppr/obs/trace.h"

namespace dppr {
namespace {

/// Process-wide rollup of every DiskSpillStorage's miss path. Charged at the
/// same code sites as the per-store hits_/misses_/disk_bytes_read_ atomics
/// (the per-store stats() remain the source for per-index views), so the
/// registry dump and summed StorageStats can never disagree.
struct DiskMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* bytes_read;
  obs::Histogram* miss_extent_read_us;
  obs::Histogram* singleflight_wait_us;
  obs::Counter* prefetch_issued;
  obs::Counter* prefetch_hits;
  obs::Counter* prefetch_coalesced_reads;
  obs::Counter* prefetch_bytes;

  static const DiskMetrics& Get() {
    static const DiskMetrics metrics = [] {
      auto& r = obs::MetricsRegistry::Global();
      return DiskMetrics{r.GetCounter("store.disk.hits"),
                         r.GetCounter("store.disk.misses"),
                         r.GetCounter("store.disk.bytes_read"),
                         r.GetHistogram("store.disk.miss_extent_read_us"),
                         r.GetHistogram("store.disk.singleflight_wait_us"),
                         r.GetCounter("store.prefetch.issued"),
                         r.GetCounter("store.prefetch.hits"),
                         r.GetCounter("store.prefetch.coalesced_reads"),
                         r.GetCounter("store.prefetch.bytes")};
    }();
    return metrics;
  }
};

/// First line of a segment-manifest spill. A named spill path holds this
/// small text manifest; the records live in per-kind segment files next to
/// it. A path whose bytes don't start with the magic is a legacy single-file
/// record stream and still opens (all segment slots alias the one file).
constexpr std::string_view kManifestMagic = "DPPR-SPILL-MANIFEST v1";

/// Manifest line prefixes and named-segment filename suffixes, indexed by
/// VectorKind.
constexpr const char* kSegmentName[kNumVectorKinds] = {
    "hub_partial", "skeleton_column", "own_vector"};

/// One coalesced prefetch read covers at most this many bytes, bounding the
/// transient buffer regardless of how many adjacent extents line up.
constexpr uint64_t kMaxPrefetchRunBytes = uint64_t{4} << 20;

std::string DirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

std::string BaseOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DPPR_CHECK(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  DPPR_CHECK(!in.bad());
  return text;
}

/// True when the file at `path` starts with the manifest magic (reads only
/// the prefix — a legacy spill can be huge).
bool HasManifestMagic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DPPR_CHECK(in.good());
  std::string prefix(kManifestMagic.size(), '\0');
  in.read(prefix.data(), static_cast<std::streamsize>(prefix.size()));
  return static_cast<size_t>(in.gcount()) == prefix.size() &&
         prefix == kManifestMagic;
}

}  // namespace

// ---------------------------------------------------------------------------
// SpillFile
// ---------------------------------------------------------------------------

std::shared_ptr<SpillFile> SpillFile::CreateTemp(const std::string& dir) {
  std::string base = dir;
  if (base.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    base = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
  }
  std::string templ = base + "/dppr-spill-XXXXXX";
  // mkstemp wants a mutable buffer.
  std::vector<char> path(templ.begin(), templ.end());
  path.push_back('\0');
  int fd = ::mkstemp(path.data());
  DPPR_CHECK_GE(fd, 0);
  // Unlink-after-open: the file has no name, cannot collide, and the kernel
  // reclaims it the moment the last fd closes — spill cleanup is automatic
  // even on abort.
  DPPR_CHECK_EQ(::unlink(path.data()), 0);
  return std::shared_ptr<SpillFile>(new SpillFile(fd, 0, /*writable=*/true));
}

std::shared_ptr<SpillFile> SpillFile::CreateAt(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  DPPR_CHECK_GE(fd, 0);
  return std::shared_ptr<SpillFile>(new SpillFile(fd, 0, /*writable=*/true));
}

std::shared_ptr<SpillFile> SpillFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  DPPR_CHECK_GE(fd, 0);
  struct stat st{};
  DPPR_CHECK_EQ(::fstat(fd, &st), 0);
  return std::shared_ptr<SpillFile>(
      new SpillFile(fd, static_cast<uint64_t>(st.st_size), /*writable=*/false));
}

SpillFile::~SpillFile() { ::close(fd_); }

SpillExtent SpillFile::Append(std::span<const uint8_t> bytes) {
  DPPR_CHECK(writable_);
  std::lock_guard<std::mutex> lock(append_mu_);
  uint64_t offset = size_.load(std::memory_order_relaxed);
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::pwrite(fd_, bytes.data() + written, bytes.size() - written,
                         static_cast<off_t>(offset + written));
    if (n < 0 && errno == EINTR) continue;
    DPPR_CHECK_GT(n, 0);
    written += static_cast<size_t>(n);
  }
  // Release-publish the new size so concurrent readers' bounds checks see
  // every byte the extent covers.
  size_.store(offset + bytes.size(), std::memory_order_release);
  return {offset, bytes.size()};
}

void SpillFile::Read(SpillExtent extent, std::span<uint8_t> out) const {
  DPPR_CHECK_EQ(out.size(), extent.length);
  // Wrap-safe bounds check (offset + length could overflow for hostile
  // extents): both ends must sit inside the bytes written so far.
  uint64_t file_size = size();
  DPPR_CHECK_LE(extent.offset, file_size);
  DPPR_CHECK_LE(extent.length, file_size - extent.offset);
  size_t done = 0;
  while (done < extent.length) {
    ssize_t n = ::pread(fd_, out.data() + done, extent.length - done,
                        static_cast<off_t>(extent.offset + done));
    if (n < 0 && errno == EINTR) continue;
    // A short read inside the checked range means the file shrank under us —
    // corrupt/truncated storage, refuse to serve.
    DPPR_CHECK_GT(n, 0);
    done += static_cast<size_t>(n);
  }
}

void SpillFile::Scan(
    const std::function<void(std::span<const uint8_t>)>& scan) const {
  uint64_t file_size = size();
  if (file_size == 0) {
    scan({});
    return;
  }
  void* map = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd_, 0);
  DPPR_CHECK(map != MAP_FAILED);
  scan({static_cast<const uint8_t*>(map), static_cast<size_t>(file_size)});
  ::munmap(map, file_size);
}

// ---------------------------------------------------------------------------
// DiskSpillStorage
// ---------------------------------------------------------------------------

namespace {

/// Fresh segment set: three anonymous temp files, or — for a named spill —
/// three `<path>.<kind>` segment files plus the manifest written at `path`.
/// Segments are created eagerly (not on first append of their kind) so a
/// clone taken at any time shares every file the original will ever write.
std::array<std::shared_ptr<SpillFile>, kNumVectorKinds> CreateSegments(
    const StorageOptions& options) {
  std::array<std::shared_ptr<SpillFile>, kNumVectorKinds> files;
  if (options.spill_path.empty()) {
    for (auto& file : files) file = SpillFile::CreateTemp(options.spill_dir);
    return files;
  }
  std::string dir = DirOf(options.spill_path);
  std::string base = BaseOf(options.spill_path);
  std::string manifest(kManifestMagic);
  manifest += '\n';
  for (uint8_t k = 0; k < kNumVectorKinds; ++k) {
    std::string segment_base = base + "." + kSegmentName[k];
    files[k] = SpillFile::CreateAt(dir + "/" + segment_base);
    manifest += std::string(kSegmentName[k]) + " " + segment_base + "\n";
  }
  manifest += "end\n";
  std::ofstream out(options.spill_path,
                    std::ios::binary | std::ios::trunc);
  out << manifest;
  out.flush();
  DPPR_CHECK(out.good());
  return files;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

}  // namespace

DiskSpillStorage::DiskSpillStorage(const StorageOptions& options)
    : DiskSpillStorage(CreateSegments(options), options.cache_bytes) {}

std::unique_ptr<DiskSpillStorage> DiskSpillStorage::OpenExisting(
    const std::string& path, const StorageOptions& options) {
  // Rebuild the index by walking the record stream(s). Every record is fully
  // re-validated (VectorRecord::Deserialize DPPR_CHECKs kinds, id ranges and
  // blob framing), so truncation or corruption dies here — at open — rather
  // than serving garbage at query time.
  auto scan_into = [](DiskSpillStorage& store, SpillFile& file,
                      int expected_kind) {
    file.Scan([&](std::span<const uint8_t> bytes) {
      ByteReader reader(bytes.data(), bytes.size());
      while (!reader.AtEnd()) {
        size_t start = reader.position();
        VectorRecord record = VectorRecord::Deserialize(reader);
        // In a per-kind segment every record must carry that segment's kind:
        // a record smuggled into the wrong file would later be read back
        // from the wrong segment.
        DPPR_CHECK(expected_kind < 0 ||
                   static_cast<int>(record.kind) == expected_kind);
        store.IndexExtent(MakeVectorKey(record.kind, record.sub, record.node),
                          {start, reader.position() - start});
        store.Charge(record.kind, record.vec.SerializedBytes());
      }
    });
  };

  if (!HasManifestMagic(path)) {
    // Legacy single-file spill: one record stream holds every kind, and all
    // three segment slots alias it, so key-derived segment routing still
    // lands on the right file.
    SegmentArray files;
    files.fill(SpillFile::Open(path));
    std::unique_ptr<DiskSpillStorage> store(
        new DiskSpillStorage(std::move(files), options.cache_bytes));
    scan_into(*store, *store->files_[0], /*expected_kind=*/-1);
    return store;
  }

  // Segment manifest: magic line, one "<kind> <basename>" line per kind in
  // enum order, then the "end" trailer — a truncated manifest loses the
  // trailer and dies here.
  std::vector<std::string> lines = SplitLines(ReadWholeFile(path));
  DPPR_CHECK_GE(lines.size(), size_t{kNumVectorKinds} + 2);
  DPPR_CHECK(lines[0] == kManifestMagic);
  DPPR_CHECK(lines[1 + kNumVectorKinds] == "end");
  std::string dir = DirOf(path);
  SegmentArray files;
  for (uint8_t k = 0; k < kNumVectorKinds; ++k) {
    const std::string& line = lines[1 + k];
    std::string prefix = std::string(kSegmentName[k]) + " ";
    DPPR_CHECK(line.rfind(prefix, 0) == 0);
    std::string basename = line.substr(prefix.size());
    DPPR_CHECK(!basename.empty());
    // Segments live next to the manifest; a path component would let a
    // hostile manifest read arbitrary files.
    DPPR_CHECK(basename.find('/') == std::string::npos);
    files[k] = SpillFile::Open(dir + "/" + basename);
  }
  std::unique_ptr<DiskSpillStorage> store(
      new DiskSpillStorage(std::move(files), options.cache_bytes));
  for (uint8_t k = 0; k < kNumVectorKinds; ++k) {
    scan_into(*store, *store->files_[k], /*expected_kind=*/k);
  }
  return store;
}

void DiskSpillStorage::IndexExtent(uint64_t key, SpillExtent extent) {
  bool inserted = extents_.emplace(key, extent).second;
  DPPR_CHECK(inserted);
}

void DiskSpillStorage::AppendVector(VectorKind kind, SubgraphId sub, NodeId node,
                                    double seconds, const SparseVector& vec,
                                    size_t serialized_bytes) {
  ByteWriter writer;
  VectorRecord::Serialize(writer, kind, sub, node, seconds, vec);
  SpillExtent extent = files_[static_cast<uint8_t>(kind)]->Append(writer.bytes());
  IndexExtent(MakeVectorKey(kind, sub, node), extent);
  // The ledger charges the vector's serialized size, same as the in-memory
  // backends, so the paper's space metrics are backend-invariant; the record
  // header overhead is visible via SpillFile::size() instead.
  Charge(kind, serialized_bytes);
}

void DiskSpillStorage::Put(VectorKind kind, SubgraphId sub, NodeId node,
                           const SparseVector* vec, size_t serialized_bytes) {
  DPPR_CHECK(vec != nullptr);
  AppendVector(kind, sub, node, /*seconds=*/0.0, *vec, serialized_bytes);
}

void DiskSpillStorage::PutOwned(VectorKind kind, SubgraphId sub, NodeId node,
                                SparseVector vec, size_t serialized_bytes) {
  AppendVector(kind, sub, node, /*seconds=*/0.0, vec, serialized_bytes);
}

double DiskSpillStorage::Ingest(VectorRecord record) {
  AppendVector(record.kind, record.sub, record.node, record.seconds, record.vec,
               record.vec.SerializedBytes());
  return record.seconds;
}

double DiskSpillStorage::IngestFrom(ByteReader& reader) {
  size_t start = reader.position();
  // Validation parse: hostile wire bytes die here, and the parsed vector is
  // dropped right after — ingest streams the raw record bytes to the spill
  // file, so coordinator RAM stays bounded by one record, not the index.
  VectorRecord record = VectorRecord::Deserialize(reader);
  SpillExtent extent = files_[static_cast<uint8_t>(record.kind)]->Append(
      reader.Slice(start, reader.position()));
  IndexExtent(MakeVectorKey(record.kind, record.sub, record.node), extent);
  Charge(record.kind, record.vec.SerializedBytes());
  return record.seconds;
}

PpvRef DiskSpillStorage::CachedLocked(uint64_t key) const {
  auto cit = cache_.find(key);
  if (cit == cache_.end()) return {};
  hits_.fetch_add(1, std::memory_order_relaxed);
  DiskMetrics::Get().hits->Increment();
  std::list<uint64_t>& lru = LruFor(key);
  lru.splice(lru.begin(), lru, cit->second.lru_it);
  return PpvRef(cit->second.vec);
}

PpvRef DiskSpillStorage::Find(VectorKind kind, SubgraphId sub, NodeId node) const {
  uint64_t key = MakeVectorKey(kind, sub, node);
  auto eit = extents_.find(key);
  if (eit == extents_.end()) return {};
  for (;;) {
    std::shared_ptr<InFlightLoad> load;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (PpvRef cached = CachedLocked(key)) return cached;
      // Singleflight: if another thread is already reading this extent, wait
      // for its result instead of issuing a duplicate pread. A follower still
      // counts as a miss (the lookup was not served from RAM) but adds no
      // disk bytes — the leader's read is billed exactly once.
      auto fit = inflight_.find(key);
      if (fit != inflight_.end()) {
        std::shared_ptr<InFlightLoad> lead = fit->second;
        misses_.fetch_add(1, std::memory_order_relaxed);
        DiskMetrics::Get().misses->Increment();
        {
          obs::TraceSpan wait_span(obs::kCoordinatorLane,
                                   "store.singleflight_wait");
          WallTimer wait;
          lead->done_cv.wait(lock, [&] { return lead->done; });
          DiskMetrics::Get().singleflight_wait_us->Record(
              static_cast<uint64_t>(wait.ElapsedSeconds() * 1e6));
        }
        if (!lead->failed) return PpvRef(lead->vec);
        // The leader unwound without a result; start the lookup over (this
        // thread may become the next leader and surface the error itself).
        continue;
      }
      // Leader: the load is fully constructed before it enters the table, so
      // an allocation failure here leaves the table untouched rather than
      // holding a null entry every later lookup would wait on forever.
      load = std::make_shared<InFlightLoad>();
      inflight_.emplace(key, load);
    }
    return Load(key, kind, sub, node, eit->second, std::move(load));
  }
}

PpvPair DiskSpillStorage::FindPair(SubgraphId sub, NodeId hub) const {
  const uint64_t skel_key = MakeVectorKey(VectorKind::kSkeletonColumn, sub, hub);
  const uint64_t part_key = MakeVectorKey(VectorKind::kHubPartial, sub, hub);
  const bool has_skel = extents_.find(skel_key) != extents_.end();
  const bool has_part = extents_.find(part_key) != extents_.end();
  PpvPair pair;
  if (!has_skel && !has_part) return pair;
  {
    // Fast path: both vectors resident (the steady state once Prefetch has
    // run) resolve under a single lock acquisition.
    std::lock_guard<std::mutex> lock(mu_);
    if (has_skel) pair.skeleton = CachedLocked(skel_key);
    if (has_part) pair.partial = CachedLocked(part_key);
  }
  // Whatever the cache couldn't serve takes the full per-key Find (miss
  // accounting, singleflight, extent load) — same behavior as two Finds.
  if (has_skel && !pair.skeleton) {
    pair.skeleton = Find(VectorKind::kSkeletonColumn, sub, hub);
  }
  if (has_part && !pair.partial) {
    pair.partial = Find(VectorKind::kHubPartial, sub, hub);
  }
  return pair;
}

void DiskSpillStorage::Prefetch(std::span<const uint64_t> keys) const {
  if (keys.empty()) return;
  obs::TraceSpan span(obs::kCoordinatorLane, "store.prefetch");
  span.Arg("keys", keys.size());
  const DiskMetrics& metrics = DiskMetrics::Get();

  struct Pending {
    uint64_t key = 0;
    SpillExtent extent;
    /// Null once the load has been published (or never registered).
    std::shared_ptr<InFlightLoad> load;
  };
  // Per-kind buckets: extents sort and coalesce within their own segment.
  std::array<std::vector<Pending>, kNumVectorKinds> buckets;
  uint64_t already_resident = 0;
  {
    // A pass never plans more than half the budget of new loads: beyond
    // that the cache would evict prefetched records before the fold reads
    // them, and the batch would pay the prefetch reads AND the fold's
    // re-reads. Keys arrive in fold order, so the prefix we keep is exactly
    // what the fold needs first; the tail cold-misses as before.
    const uint64_t planned_cap = cache_budget_ / 2;
    uint64_t planned_bytes = 0;
    std::lock_guard<std::mutex> lock(mu_);
    for (uint64_t key : keys) {
      auto eit = extents_.find(key);
      if (eit == extents_.end()) continue;  // not stored on this machine
      // A record larger than the whole budget can never stay cached;
      // prefetching it would read the extent now and again at Find time,
      // doubling the I/O instead of hiding it.
      if (eit->second.length > cache_budget_) continue;
      if (cache_.find(key) != cache_.end()) {
        ++already_resident;
        continue;
      }
      // Someone (a Find leader or an earlier duplicate in `keys`) is already
      // reading this extent; they will populate the cache.
      if (inflight_.find(key) != inflight_.end()) continue;
      if (planned_bytes + eit->second.length > planned_cap) break;
      planned_bytes += eit->second.length;
      auto load = std::make_shared<InFlightLoad>();
      inflight_.emplace(key, load);
      buckets[key >> 60].push_back({key, eit->second, std::move(load)});
    }
  }
  prefetch_hits_.fetch_add(already_resident, std::memory_order_relaxed);
  metrics.prefetch_hits->Add(already_resident);
  size_t issued = 0;
  for (const auto& bucket : buckets) issued += bucket.size();
  span.Arg("loads", issued);
  if (issued == 0) return;
  prefetch_issued_.fetch_add(issued, std::memory_order_relaxed);
  metrics.prefetch_issued->Add(issued);

  // Every registered load must be resolved even if something below unwinds
  // (the reads and parses allocate): mark the unpublished remainder failed
  // and wake their followers, exactly like a failed Find leader.
  struct AbandonRest {
    const DiskSpillStorage* store;
    std::array<std::vector<Pending>, kNumVectorKinds>& buckets;
    ~AbandonRest() {
      std::lock_guard<std::mutex> lock(store->mu_);
      for (auto& bucket : buckets) {
        for (Pending& p : bucket) {
          if (p.load == nullptr) continue;
          p.load->failed = true;
          p.load->done = true;
          store->inflight_.erase(p.key);
          p.load->done_cv.notify_all();
        }
      }
    }
  } abandon{this, buckets};

  uint64_t reads = 0;
  uint64_t bytes_read = 0;
  for (auto& bucket : buckets) {
    if (bucket.empty()) continue;
    // Offset order within the segment: adjacent records — consecutive
    // appends of the same kind, the common case after per-kind segmentation
    // — coalesce into one pread.
    std::sort(bucket.begin(), bucket.end(), [](const Pending& a, const Pending& b) {
      return a.extent.offset < b.extent.offset;
    });
    SpillFile& file = SegmentFor(bucket.front().key);
    size_t i = 0;
    while (i < bucket.size()) {
      size_t j = i + 1;
      uint64_t run_end = bucket[i].extent.offset + bucket[i].extent.length;
      while (j < bucket.size() && bucket[j].extent.offset == run_end &&
             run_end - bucket[i].extent.offset + bucket[j].extent.length <=
                 kMaxPrefetchRunBytes) {
        run_end += bucket[j].extent.length;
        ++j;
      }
      const SpillExtent run{bucket[i].extent.offset,
                            run_end - bucket[i].extent.offset};
      std::vector<uint8_t> buf(run.length);
      file.Read(run, buf);
      ++reads;
      bytes_read += run.length;

      // Parse each record out of its slice of the run, then publish the
      // whole run under one lock acquisition.
      std::vector<std::pair<size_t, std::shared_ptr<const SparseVector>>> loaded;
      loaded.reserve(j - i);
      for (size_t k = i; k < j; ++k) {
        const Pending& p = bucket[k];
        ByteReader reader(buf.data() + (p.extent.offset - run.offset),
                          p.extent.length);
        VectorRecord record = VectorRecord::Deserialize(reader);
        DPPR_CHECK(reader.AtEnd());
        // The record must be the one its key promised — same aliased-extent
        // refusal as the Find miss path.
        DPPR_CHECK_EQ(MakeVectorKey(record.kind, record.sub, record.node),
                      p.key);
        loaded.emplace_back(
            k, std::make_shared<const SparseVector>(std::move(record.vec)));
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto& [k, vec] : loaded) {
          Pending& p = bucket[k];
          // A prefetched extent was read from disk, not served from RAM:
          // cache-miss semantics, billed once here (the later Find hits).
          misses_.fetch_add(1, std::memory_order_relaxed);
          metrics.misses->Increment();
          p.load->vec = vec;
          p.load->done = true;
          inflight_.erase(p.key);
          p.load->done_cv.notify_all();
          InsertIntoCacheLocked(p.key, std::move(vec),
                                static_cast<size_t>(p.extent.length));
          p.load.reset();
        }
      }
      i = j;
    }
  }
  disk_bytes_read_.fetch_add(bytes_read, std::memory_order_relaxed);
  metrics.bytes_read->Add(bytes_read);
  prefetch_coalesced_reads_.fetch_add(reads, std::memory_order_relaxed);
  metrics.prefetch_coalesced_reads->Add(reads);
  prefetch_bytes_.fetch_add(bytes_read, std::memory_order_relaxed);
  metrics.prefetch_bytes->Add(bytes_read);
  span.Arg("reads", reads);
  span.Arg("bytes", bytes_read);
}

PpvRef DiskSpillStorage::Load(uint64_t key, VectorKind kind, SubgraphId sub,
                              NodeId node, SpillExtent extent,
                              std::shared_ptr<InFlightLoad> load) const {
  // If anything below unwinds (the reads and parses allocate, so bad_alloc
  // is possible), retire the singleflight entry and wake the followers as
  // failed — otherwise they, and every future lookup of this key, would wait
  // forever on a result that can no longer arrive.
  struct AbandonOnUnwind {
    const DiskSpillStorage* store;
    uint64_t key;
    const std::shared_ptr<InFlightLoad>& load;
    bool armed = true;
    ~AbandonOnUnwind() {
      if (!armed) return;
      std::lock_guard<std::mutex> lock(store->mu_);
      load->failed = true;
      load->done = true;
      store->inflight_.erase(key);
      load->done_cv.notify_all();
    }
  } abandon{this, key, load};

  // Disk I/O and deserialization happen outside the cache lock so concurrent
  // misses on different vectors overlap their reads.
  std::vector<uint8_t> buf(extent.length);
  VectorRecord record = [&] {
    obs::TraceSpan read_span(obs::kCoordinatorLane, "store.extent_read");
    read_span.Arg("bytes", extent.length);
    WallTimer read_timer;
    SegmentFor(key).Read(extent, buf);
    ByteReader reader(buf.data(), buf.size());
    VectorRecord parsed = VectorRecord::Deserialize(reader);
    DPPR_CHECK(reader.AtEnd());
    DiskMetrics::Get().miss_extent_read_us->Record(
        static_cast<uint64_t>(read_timer.ElapsedSeconds() * 1e6));
    return parsed;
  }();
  // The record must be the one the key promised: a corrupted extent table or
  // spill file fails here instead of returning another vector's data.
  DPPR_CHECK(record.kind == kind);
  DPPR_CHECK_EQ(record.sub, sub);
  DPPR_CHECK_EQ(record.node, node);
  auto vec = std::make_shared<const SparseVector>(std::move(record.vec));

  std::lock_guard<std::mutex> lock(mu_);
  misses_.fetch_add(1, std::memory_order_relaxed);
  disk_bytes_read_.fetch_add(extent.length, std::memory_order_relaxed);
  const DiskMetrics& disk_metrics = DiskMetrics::Get();
  disk_metrics.misses->Increment();
  disk_metrics.bytes_read->Add(extent.length);
  // Publish to followers parked on this load, then retire the singleflight
  // entry — later lookups either hit the cache or start a fresh load.
  load->vec = vec;
  load->done = true;
  inflight_.erase(key);
  abandon.armed = false;
  load->done_cv.notify_all();
  InsertIntoCacheLocked(key, vec, static_cast<size_t>(extent.length));
  return PpvRef(std::move(vec));
}

void DiskSpillStorage::InsertIntoCacheLocked(
    uint64_t key, std::shared_ptr<const SparseVector> vec, size_t bytes) const {
  // The singleflight table guarantees no concurrent load of this key, so the
  // cache cannot already hold it (insertion only ever happens right here).
  DPPR_DCHECK(cache_.find(key) == cache_.end());
  std::list<uint64_t>& lru = LruFor(key);
  lru.push_front(key);
  cache_.emplace(key, CacheEntry{std::move(vec), bytes, lru.begin()});
  resident_bytes_ += bytes;
  while (resident_bytes_ > cache_budget_) {
    // Bulky kinds (hub partials, own vectors) are evicted first; the tiny
    // skeleton columns — read on every chain walk — go only once no bulky
    // entry is left to give back.
    std::list<uint64_t>& victims =
        !bulky_lru_.empty() ? bulky_lru_ : skeleton_lru_;
    if (victims.empty()) break;
    uint64_t victim = victims.back();
    victims.pop_back();
    auto vit = cache_.find(victim);
    resident_bytes_ -= vit->second.bytes;
    // Outstanding PpvRef pins (including the caller's when the budget is
    // smaller than this record) share ownership and stay valid.
    cache_.erase(vit);
  }
}

std::unique_ptr<VectorStorage> DiskSpillStorage::Clone() const {
  std::unique_ptr<DiskSpillStorage> clone(
      new DiskSpillStorage(files_, cache_budget_));
  clone->extents_ = extents_;
  clone->CopyLedgerFrom(*this);
  return clone;
}

size_t DiskSpillStorage::ResidentBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

}  // namespace dppr
