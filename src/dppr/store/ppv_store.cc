#include "dppr/store/ppv_store.h"

#include "dppr/store/disk_storage.h"

namespace dppr {

PpvStore PpvStore::OpenSpill(const std::string& path,
                             const StorageOptions& options) {
  return PpvStore(DiskSpillStorage::OpenExisting(path, options));
}

}  // namespace dppr
