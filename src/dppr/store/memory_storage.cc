#include "dppr/store/memory_storage.h"

namespace dppr {
namespace {

/// Strips the kind bits off a packed vector key: the paired index is keyed
/// on (sub, node) alone.
constexpr uint64_t kPairKeyMask = (uint64_t{1} << 60) - 1;

}  // namespace

void MemoryRefStorage::Insert(VectorKind kind, SubgraphId sub, NodeId node,
                              const SparseVector* vec, size_t serialized_bytes) {
  uint64_t key = MakeVectorKey(kind, sub, node);
  bool inserted = map_.emplace(key, vec).second;
  DPPR_CHECK(inserted);
  if (kind == VectorKind::kSkeletonColumn) {
    pair_map_[key & kPairKeyMask].first = vec;
  } else if (kind == VectorKind::kHubPartial) {
    pair_map_[key & kPairKeyMask].second = vec;
  }
  Charge(kind, serialized_bytes);
}

void MemoryRefStorage::Put(VectorKind kind, SubgraphId sub, NodeId node,
                           const SparseVector* vec, size_t serialized_bytes) {
  DPPR_CHECK(vec != nullptr);
  Insert(kind, sub, node, vec, serialized_bytes);
}

void MemoryRefStorage::PutOwned(VectorKind kind, SubgraphId sub, NodeId node,
                                SparseVector vec, size_t serialized_bytes) {
  owned_.emplace_back(MakeVectorKey(kind, sub, node), std::move(vec));
  Insert(kind, sub, node, &owned_.back().second, serialized_bytes);
}

PpvRef MemoryRefStorage::Find(VectorKind kind, SubgraphId sub, NodeId node) const {
  auto it = map_.find(MakeVectorKey(kind, sub, node));
  if (it == map_.end()) return {};
  hits_.fetch_add(1, std::memory_order_relaxed);
  return PpvRef::Unowned(it->second);
}

PpvPair MemoryRefStorage::FindPair(SubgraphId sub, NodeId hub) const {
  auto it = pair_map_.find(MakeVectorKey(VectorKind::kHubPartial, sub, hub) &
                           kPairKeyMask);
  if (it == pair_map_.end()) return {};
  // Same accounting as two Finds: one hit per present member.
  uint64_t present = (it->second.first != nullptr ? 1u : 0u) +
                     (it->second.second != nullptr ? 1u : 0u);
  hits_.fetch_add(present, std::memory_order_relaxed);
  return {PpvRef::Unowned(it->second.first), PpvRef::Unowned(it->second.second)};
}

void MemoryRefStorage::CopyStateFrom(const MemoryRefStorage& other) {
  map_ = other.map_;
  pair_map_ = other.pair_map_;
  owned_ = other.owned_;
  CopyLedgerFrom(other);
  for (auto& [key, vec] : owned_) {
    map_[key] = &vec;
    // Re-point the paired index too — an entry for a copied owned vector
    // must not alias the source store's deque.
    VectorKind kind = VectorKindOfKey(key);
    if (kind == VectorKind::kSkeletonColumn) {
      pair_map_[key & kPairKeyMask].first = &vec;
    } else if (kind == VectorKind::kHubPartial) {
      pair_map_[key & kPairKeyMask].second = &vec;
    }
  }
}

std::unique_ptr<VectorStorage> MemoryRefStorage::Clone() const {
  auto clone = std::make_unique<MemoryRefStorage>();
  clone->CopyStateFrom(*this);
  return clone;
}

void MemoryOwnedStorage::Put(VectorKind kind, SubgraphId sub, NodeId node,
                             const SparseVector* vec, size_t serialized_bytes) {
  DPPR_CHECK(vec != nullptr);
  PutOwned(kind, sub, node, *vec, serialized_bytes);
}

std::unique_ptr<VectorStorage> MemoryOwnedStorage::Clone() const {
  auto clone = std::make_unique<MemoryOwnedStorage>();
  clone->CopyStateFrom(*this);
  return clone;
}

}  // namespace dppr
