#include "dppr/store/memory_storage.h"

namespace dppr {

void MemoryRefStorage::Insert(VectorKind kind, SubgraphId sub, NodeId node,
                              const SparseVector* vec, size_t serialized_bytes) {
  bool inserted = map_.emplace(MakeVectorKey(kind, sub, node), vec).second;
  DPPR_CHECK(inserted);
  Charge(kind, serialized_bytes);
}

void MemoryRefStorage::Put(VectorKind kind, SubgraphId sub, NodeId node,
                           const SparseVector* vec, size_t serialized_bytes) {
  DPPR_CHECK(vec != nullptr);
  Insert(kind, sub, node, vec, serialized_bytes);
}

void MemoryRefStorage::PutOwned(VectorKind kind, SubgraphId sub, NodeId node,
                                SparseVector vec, size_t serialized_bytes) {
  owned_.emplace_back(MakeVectorKey(kind, sub, node), std::move(vec));
  Insert(kind, sub, node, &owned_.back().second, serialized_bytes);
}

PpvRef MemoryRefStorage::Find(VectorKind kind, SubgraphId sub, NodeId node) const {
  auto it = map_.find(MakeVectorKey(kind, sub, node));
  if (it == map_.end()) return {};
  hits_.fetch_add(1, std::memory_order_relaxed);
  return PpvRef::Unowned(it->second);
}

void MemoryRefStorage::CopyStateFrom(const MemoryRefStorage& other) {
  map_ = other.map_;
  owned_ = other.owned_;
  CopyLedgerFrom(other);
  for (auto& [key, vec] : owned_) map_[key] = &vec;
}

std::unique_ptr<VectorStorage> MemoryRefStorage::Clone() const {
  auto clone = std::make_unique<MemoryRefStorage>();
  clone->CopyStateFrom(*this);
  return clone;
}

void MemoryOwnedStorage::Put(VectorKind kind, SubgraphId sub, NodeId node,
                             const SparseVector* vec, size_t serialized_bytes) {
  DPPR_CHECK(vec != nullptr);
  PutOwned(kind, sub, node, *vec, serialized_bytes);
}

std::unique_ptr<VectorStorage> MemoryOwnedStorage::Clone() const {
  auto clone = std::make_unique<MemoryOwnedStorage>();
  clone->CopyStateFrom(*this);
  return clone;
}

}  // namespace dppr
