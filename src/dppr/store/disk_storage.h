#ifndef DPPR_STORE_DISK_STORAGE_H_
#define DPPR_STORE_DISK_STORAGE_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "dppr/store/vector_storage.h"

namespace dppr {

/// (offset, length) of one VectorRecord inside a spill file.
struct SpillExtent {
  uint64_t offset = 0;
  uint64_t length = 0;
};

/// Append-only record file shared by a disk store and its clones. Appends are
/// serialized under a mutex and return the written extent; reads are
/// positional (`pread`), so concurrent readers never share a file offset.
/// Extents are bounds-checked against the bytes actually written — an
/// out-of-range extent DPPR_CHECK-fails instead of reading garbage.
class SpillFile {
 public:
  /// Anonymous spill: mkstemp in `dir` (or $TMPDIR / /tmp when empty), then
  /// unlinked immediately — the file lives exactly as long as its fd.
  static std::shared_ptr<SpillFile> CreateTemp(const std::string& dir);

  /// Named spill kept on disk (reopenable via Open after the store dies).
  /// Truncates any existing file at `path`.
  static std::shared_ptr<SpillFile> CreateAt(const std::string& path);

  /// Opens an existing spill file read-only; Append on it dies.
  static std::shared_ptr<SpillFile> Open(const std::string& path);

  ~SpillFile();
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Thread-safe append; returns the record's extent.
  SpillExtent Append(std::span<const uint8_t> bytes);

  /// pread of `extent` into `out` (out.size() == extent.length). DPPR_CHECKs
  /// the extent against the current file size and a short read.
  void Read(SpillExtent extent, std::span<uint8_t> out) const;

  /// Runs `scan` over a read-only mmap view of the whole file (index rebuild
  /// on open); the view is unmapped before returning.
  void Scan(const std::function<void(std::span<const uint8_t>)>& scan) const;

  uint64_t size() const { return size_.load(std::memory_order_acquire); }
  bool writable() const { return writable_; }

 private:
  SpillFile(int fd, uint64_t size, bool writable)
      : fd_(fd), writable_(writable), size_(size) {}

  int fd_;
  bool writable_;
  std::mutex append_mu_;
  std::atomic<uint64_t> size_;
};

/// Disk-backed spill storage: every put serializes its vector as a
/// VectorRecord and appends it to one of three per-kind spill segments —
/// hub partials, skeleton columns, and own vectors each get their own file,
/// so the tiny skeleton columns a query chain walks cluster into a dense,
/// prefetch-friendly segment instead of interleaving with multi-KB partials.
/// Ingest streams the raw wire bytes straight through, so the coordinator
/// never materializes a machine's index in RAM. Lookups go through a
/// byte-budgeted read-through LRU residency cache keyed on the vector key. A
/// cache miss preads the record's extent, re-validates it (header must match
/// the key — a corrupted or aliased extent dies rather than serving
/// garbage), and inserts the vector; eviction drops least-recently-used
/// entries until the budget holds — bulky kinds (partials, own vectors)
/// first, skeleton columns only when no bulky entry is left, since a
/// skeleton column is read on every chain walk but costs little to keep —
/// and outstanding PpvRef pins keep their vectors alive regardless.
///
/// A named store (options.spill_path) writes a small text manifest at the
/// path plus one `<path>.<kind>` segment per kind; PpvStore::OpenSpill reads
/// the manifest back. A path holding a legacy single-file record stream
/// (no manifest magic) still opens: all three segment slots alias the one
/// file, so pre-segment spills stay readable.
///
/// The miss path is singleflighted: concurrent misses of the same vector
/// coalesce onto one disk read — the first thread loads, the rest wait for
/// its result instead of each pread-ing the extent (thundering herds on one
/// hot vector used to multiply the I/O). Followers still count as cache
/// misses (the lookup was not served from RAM) but charge no disk bytes;
/// only the loading thread's read is billed. Prefetch registers its loads in
/// the same table, so a concurrent Find of a key being prefetched waits for
/// that read instead of issuing its own.
///
/// Find/FindPair/Prefetch are thread-safe (cache state under a mutex, disk
/// reads outside it); writes follow the single-threaded-ingest contract.
class DiskSpillStorage final : public VectorStorage {
 public:
  /// Fresh store spilling to options.spill_path (manifest + named segments
  /// kept on disk) or anonymous temp segments in options.spill_dir.
  explicit DiskSpillStorage(const StorageOptions& options);

  /// Rebuilds a store from an existing spill (segment manifest or legacy
  /// single file) by scanning its records. Truncated or corrupted files
  /// DPPR_CHECK-fail here, at open. The store is read-only: further puts die
  /// in SpillFile::Append.
  static std::unique_ptr<DiskSpillStorage> OpenExisting(
      const std::string& path, const StorageOptions& options);

  StorageBackend backend() const override { return StorageBackend::kDisk; }

  void Put(VectorKind kind, SubgraphId sub, NodeId node, const SparseVector* vec,
           size_t serialized_bytes) override;
  void PutOwned(VectorKind kind, SubgraphId sub, NodeId node, SparseVector vec,
                size_t serialized_bytes) override;
  double Ingest(VectorRecord record) override;
  double IngestFrom(ByteReader& reader) override;
  PpvRef Find(VectorKind kind, SubgraphId sub, NodeId node) const override;
  /// One cache-lock pass resolving both hub vectors when both are resident
  /// (the steady state behind Prefetch); anything colder falls back to the
  /// full per-key Find path. Accounting matches two Finds exactly.
  PpvPair FindPair(SubgraphId sub, NodeId hub) const override;
  /// Loads the missing extents among `keys` into the residency cache:
  /// filters out absent / already-cached / in-flight keys and extents larger
  /// than the whole budget (they could never stay cached — reading them
  /// twice would only double the I/O), plans at most half the budget of new
  /// loads per pass (more would evict prefetched records before the fold
  /// reads them; keys come in fold order, so the kept prefix is what the
  /// fold needs first), groups the rest by segment, sorts by
  /// file offset, and issues one coalesced pread per adjacent run. Each
  /// loaded extent counts as a cache miss + disk bytes (it was read from
  /// disk), so cold-window stats invariants hold whether the engine
  /// prefetches or not.
  void Prefetch(std::span<const uint64_t> keys) const override;
  /// Shares the spill segments with the clone (appends interleave safely;
  /// each store only indexes its own records) and starts a fresh cache.
  std::unique_ptr<VectorStorage> Clone() const override;
  size_t num_owned() const override { return extents_.size(); }
  size_t ResidentBytes() const override;

  size_t cache_budget_bytes() const { return cache_budget_; }
  const std::shared_ptr<SpillFile>& segment(VectorKind kind) const {
    return files_[static_cast<uint8_t>(kind)];
  }

 private:
  using SegmentArray = std::array<std::shared_ptr<SpillFile>, kNumVectorKinds>;

  DiskSpillStorage(SegmentArray files, size_t cache_budget)
      : files_(std::move(files)), cache_budget_(cache_budget) {}

  /// Serializes one record from loose parts (seconds included — a reopened
  /// store inherits the offline ledger), appends it to its kind's segment,
  /// and indexes the extent under its key. Takes the vector by reference so
  /// referenced vectors spill without an intermediate copy.
  void AppendVector(VectorKind kind, SubgraphId sub, NodeId node, double seconds,
                    const SparseVector& vec, size_t serialized_bytes);
  void IndexExtent(uint64_t key, SpillExtent extent);

  /// The segment holding `key`'s record (derived from the key's kind bits —
  /// extents never need to remember their file).
  SpillFile& SegmentFor(uint64_t key) const {
    return *files_[static_cast<uint8_t>(VectorKindOfKey(key))];
  }

  /// One in-flight load that concurrent misses of the same key rendezvous
  /// on. Lives in inflight_ while the leader reads; followers keep it alive
  /// through the shared_ptr after the leader erased the map entry. If the
  /// leader unwinds without a result (e.g. bad_alloc mid-read), it marks the
  /// load failed and wakes everyone; followers retry the lookup from scratch
  /// instead of waiting forever on a result that will never come.
  struct InFlightLoad {
    bool done = false;
    bool failed = false;
    std::shared_ptr<const SparseVector> vec;
    std::condition_variable done_cv;
  };

  /// Leader's miss path: pread + validate + insert into the cache (evicting
  /// LRU past the budget), then publish through `load` and wake followers.
  /// The just-loaded vector may itself be evicted immediately under a tiny
  /// budget; the returned pin keeps it alive either way.
  PpvRef Load(uint64_t key, VectorKind kind, SubgraphId sub, NodeId node,
              SpillExtent extent, std::shared_ptr<InFlightLoad> load) const;

  /// Cache-hit lookup under mu_; returns an empty ref on miss without
  /// touching the singleflight table. Shared by Find/FindPair fast paths.
  PpvRef CachedLocked(uint64_t key) const;

  /// The LRU list `key`'s cache entry lives on: skeleton columns get their
  /// own list so eviction can drain the bulky kinds first.
  std::list<uint64_t>& LruFor(uint64_t key) const {
    return VectorKindOfKey(key) == VectorKind::kSkeletonColumn ? skeleton_lru_
                                                               : bulky_lru_;
  }

  /// Inserts a loaded vector into the cache and evicts past-budget entries —
  /// bulky LRU first, skeleton LRU only once the bulky list is empty. Caller
  /// holds mu_.
  void InsertIntoCacheLocked(uint64_t key, std::shared_ptr<const SparseVector> vec,
                             size_t bytes) const;

  SegmentArray files_;
  size_t cache_budget_;
  /// key -> record extent (within the key's kind segment). Written during
  /// ingest, read-only while serving.
  std::unordered_map<uint64_t, SpillExtent> extents_;

  struct CacheEntry {
    std::shared_ptr<const SparseVector> vec;
    /// Charged against the budget: the record's on-disk length.
    size_t bytes = 0;
    std::list<uint64_t>::iterator lru_it;
  };
  mutable std::mutex mu_;
  mutable std::unordered_map<uint64_t, CacheEntry> cache_;
  /// Front = most recently used. Hub partials + own vectors (the eviction
  /// victims of first resort) on one list, skeleton columns on the other.
  mutable std::list<uint64_t> bulky_lru_;
  mutable std::list<uint64_t> skeleton_lru_;
  mutable size_t resident_bytes_ = 0;
  /// Singleflight table: key -> the load currently reading that extent.
  mutable std::unordered_map<uint64_t, std::shared_ptr<InFlightLoad>> inflight_;
};

}  // namespace dppr

#endif  // DPPR_STORE_DISK_STORAGE_H_
