#include "dppr/store/vector_record.h"

namespace dppr {

void VectorRecord::SerializeTo(ByteWriter& writer) const {
  Serialize(writer, kind, sub, node, seconds, vec);
}

void VectorRecord::Serialize(ByteWriter& writer, VectorKind kind, SubgraphId sub,
                             NodeId node, double seconds,
                             const SparseVector& vec) {
  writer.PutU8(static_cast<uint8_t>(kind));
  writer.PutVarU64(sub);
  writer.PutVarU64(node);
  writer.PutDouble(seconds);
  // Nested blob framing: the receiver bounds-checks the vector payload
  // against the declared length before parsing it. SerializedBytes() is the
  // exact size of SerializeTo's output, so the blob header can be written
  // up front without buffering the vector twice.
  writer.PutVarU64(vec.SerializedBytes());
  vec.SerializeTo(writer);
}

VectorRecord VectorRecord::Deserialize(ByteReader& reader) {
  VectorRecord record;
  uint8_t kind = reader.GetU8();
  DPPR_CHECK_LT(kind, kNumVectorKinds);
  record.kind = static_cast<VectorKind>(kind);
  uint64_t sub = reader.GetVarU64();
  uint64_t node = reader.GetVarU64();
  // Same ranges MakeVectorKey enforces; rejecting here pins the failure on
  // the wire bytes rather than a later store insert.
  DPPR_CHECK_LT(sub, 1u << 30);
  DPPR_CHECK_LT(node, 1u << 30);
  record.sub = static_cast<SubgraphId>(sub);
  record.node = static_cast<NodeId>(node);
  record.seconds = reader.GetDouble();
  std::span<const uint8_t> blob = reader.GetBlob();
  ByteReader vec_reader(blob.data(), blob.size());
  record.vec = SparseVector::Deserialize(vec_reader);
  // A declared length longer than the vector payload means trailing garbage
  // inside the record — corrupt, not just padded.
  DPPR_CHECK(vec_reader.AtEnd());
  return record;
}

}  // namespace dppr
