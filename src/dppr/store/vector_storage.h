#ifndef DPPR_STORE_VECTOR_STORAGE_H_
#define DPPR_STORE_VECTOR_STORAGE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "dppr/common/macros.h"
#include "dppr/common/serialize.h"
#include "dppr/store/vector_record.h"

namespace dppr {

/// Pin handle returned by vector lookups. While a PpvRef is alive the vector
/// it refers to stays resident: for the in-memory backends that is trivially
/// true (the store owns or references the vector for its whole lifetime); for
/// the disk backend the ref shares ownership of the residency-cache entry, so
/// eviction under cache pressure can drop the entry from the cache without
/// invalidating outstanding pins. An empty ref means "not stored here".
///
/// This is the only way a vector leaves a VectorStorage — no raw
/// `const SparseVector*` escapes to callers — which is what makes the disk
/// backend's evict-anytime cache safe to put behind the same API.
class PpvRef {
 public:
  /// Empty (vector not present).
  PpvRef() = default;

  /// Pinned: shares ownership with the residency cache (disk backend).
  explicit PpvRef(std::shared_ptr<const SparseVector> pin) : pin_(std::move(pin)) {}

  /// Non-owning view of a vector whose lifetime is bounded by its store, not
  /// by cache pressure (in-memory backends). Uses the aliasing constructor
  /// with an empty owner, so no control block is allocated: the in-memory
  /// Find stays allocation-free.
  static PpvRef Unowned(const SparseVector* vec) {
    if (vec == nullptr) return {};
    return PpvRef(std::shared_ptr<const SparseVector>(
        std::shared_ptr<const SparseVector>{}, vec));
  }

  const SparseVector& operator*() const {
    DPPR_DCHECK(pin_ != nullptr);
    return *pin_;
  }
  const SparseVector* operator->() const {
    DPPR_DCHECK(pin_ != nullptr);
    return pin_.get();
  }
  explicit operator bool() const { return pin_ != nullptr; }

 private:
  std::shared_ptr<const SparseVector> pin_;
};

/// The (skeleton column, hub partial) pair the query fold resolves per hub —
/// one FindPair call instead of two independent Find probes on the same
/// (sub, hub). Either member may be empty exactly as Find would return it.
struct PpvPair {
  PpvRef skeleton;
  PpvRef partial;
};

/// The pluggable representations behind PpvStore.
enum class StorageBackend : uint8_t {
  /// Vectors alias an external owner (the centralized HgpaPrecomputation);
  /// `PutOwned`/`Ingest` still adopt copies, so mixed stores are legal.
  kMemoryRef = 0,
  /// Every vector lives in the store (referencing `Put` deep-copies), the
  /// distributed offline path's mode.
  kMemoryOwned = 1,
  /// Vectors are appended to a per-store spill file in VectorRecord wire
  /// format and served through a byte-budgeted read-through LRU residency
  /// cache; index size is bounded by disk, not RAM.
  kDisk = 2,
};

const char* StorageBackendName(StorageBackend backend);

/// Backend selection + disk-backend knobs. `FromEnv` lets one env switch
/// flip every store in the process (the CI disk leg runs the whole test
/// suite under `DPPR_STORE=disk DPPR_CACHE_BYTES=<small>`):
///
///   DPPR_STORE        "disk" forces the spill backend, "memory" keeps the
///                     call site's in-memory default; unset keeps the default;
///                     anything else DPPR_CHECK-fails (a typo must not
///                     silently serve from RAM).
///   DPPR_CACHE_BYTES  residency-cache budget in bytes (default 64 MiB).
///   DPPR_SPILL_DIR    directory for anonymous spill files (default $TMPDIR
///                     or /tmp).
struct StorageOptions {
  StorageBackend backend = StorageBackend::kMemoryRef;
  /// Disk backend: serialized bytes the residency cache may keep in RAM.
  /// A budget smaller than one vector still serves correctly — every access
  /// is a miss that reads the extent from disk.
  size_t cache_bytes = size_t{64} << 20;
  /// Disk backend: directory for the anonymous (unlinked) spill file when
  /// `spill_path` is empty.
  std::string spill_dir;
  /// Disk backend: named spill file to create (kept on disk, reopenable via
  /// PpvStore::OpenSpill). Empty = anonymous temp file, deleted on close.
  std::string spill_path;

  static StorageOptions FromEnv(StorageBackend fallback = StorageBackend::kMemoryRef);
};

/// Residency-cache counters (monotonic since store construction). A "hit" is
/// a lookup served from RAM, a "miss" one that had to read its extent from
/// the spill file; the in-memory backends serve every present vector from
/// RAM, so they only ever count hits. Cheap enough to keep on the query hot
/// path (relaxed atomics), and what ServerStats' cold/warm view aggregates.
struct StorageStats {
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t disk_bytes_read = 0;
  /// Prefetch accounting (disk backend; zero elsewhere). `prefetch_issued`
  /// counts keys a Prefetch call actually started loads for;
  /// `prefetch_hits` keys that were already resident when examined;
  /// `prefetch_coalesced_reads` the preads issued after adjacent extents
  /// were merged; `prefetch_bytes` the bytes those reads pulled in. Prefetch
  /// loads also count as cache_misses + disk_bytes_read — the extent was
  /// read from disk — so the cold-window invariants hold with the gate on
  /// or off.
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_coalesced_reads = 0;
  uint64_t prefetch_bytes = 0;

  StorageStats& operator+=(const StorageStats& other) {
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    disk_bytes_read += other.disk_bytes_read;
    prefetch_issued += other.prefetch_issued;
    prefetch_hits += other.prefetch_hits;
    prefetch_coalesced_reads += other.prefetch_coalesced_reads;
    prefetch_bytes += other.prefetch_bytes;
    return *this;
  }
  /// Counter delta since `baseline` (ServerStats windows).
  StorageStats Since(const StorageStats& baseline) const {
    return {cache_hits - baseline.cache_hits,
            cache_misses - baseline.cache_misses,
            disk_bytes_read - baseline.disk_bytes_read,
            prefetch_issued - baseline.prefetch_issued,
            prefetch_hits - baseline.prefetch_hits,
            prefetch_coalesced_reads - baseline.prefetch_coalesced_reads,
            prefetch_bytes - baseline.prefetch_bytes};
  }
};

/// Storage-backend interface behind PpvStore: one simulated machine's vector
/// storage plus the serialized-bytes ledger (total and per kind) that is the
/// paper's per-machine space metric. The ledger always charges the vector's
/// *serialized* size regardless of representation, so byte metrics are
/// bit-identical across backends.
///
/// Threading contract: writes (Put/PutOwned/Ingest*) are single-threaded —
/// they happen in the coordinator's ingest phase — while Find is safe from
/// many threads at once after the writes are done (the serving regime). Don't
/// interleave writes with concurrent Finds.
class VectorStorage {
 public:
  virtual ~VectorStorage() = default;

  virtual StorageBackend backend() const = 0;

  /// Referencing put: `vec` must outlive the store. Backends that cannot
  /// alias (owning, disk) adopt a copy instead, so the lifetime requirement
  /// is only real for kMemoryRef.
  virtual void Put(VectorKind kind, SubgraphId sub, NodeId node,
                   const SparseVector* vec, size_t serialized_bytes) = 0;

  /// Owning put: adopts `vec`.
  virtual void PutOwned(VectorKind kind, SubgraphId sub, NodeId node,
                        SparseVector vec, size_t serialized_bytes) = 0;

  /// Adopts one wire record; the byte ledger is charged the vector's
  /// serialized size. Returns the record's compute seconds so the caller can
  /// charge its offline ledger.
  virtual double Ingest(VectorRecord record);

  /// Consumes exactly one record from `reader` (validating it — hostile
  /// bytes DPPR_CHECK-fail) and stores it. The disk backend overrides this
  /// to append the raw record bytes straight to its spill file instead of
  /// materializing the vector in RAM beyond the transient validation parse.
  virtual double IngestFrom(ByteReader& reader);

  /// Empty ref when this machine does not hold the vector.
  virtual PpvRef Find(VectorKind kind, SubgraphId sub, NodeId node) const = 0;

  /// Resolves the (skeleton column, hub partial) pair for one hub. Exactly
  /// equivalent to two Finds — same results, same hit/miss accounting per
  /// present member — but backends override it to answer from one probe
  /// (memory: a paired index; disk: one cache-lock pass for both keys).
  virtual PpvPair FindPair(SubgraphId sub, NodeId hub) const {
    return {Find(VectorKind::kSkeletonColumn, sub, hub),
            Find(VectorKind::kHubPartial, sub, hub)};
  }

  /// Hint that the packed keys (MakeVectorKey) are about to be looked up.
  /// Purely advisory: a no-op for the in-memory backends, and the disk
  /// backend loads the missing extents into its residency cache with reads
  /// sorted by file offset and coalesced across adjacent records — cold
  /// misses overlap up front instead of serializing inside the query fold.
  /// Never changes any Find result; keys not stored here are ignored.
  /// Thread-safe alongside concurrent Finds (shares their singleflight).
  virtual void Prefetch(std::span<const uint64_t> keys) const {
    (void)keys;
  }

  /// Deep copy with the same ledger; residency cache and stats start fresh.
  virtual std::unique_ptr<VectorStorage> Clone() const = 0;

  /// Vectors whose bytes the store itself holds (owned or spilled).
  virtual size_t num_owned() const = 0;

  /// Serialized bytes currently resident in RAM: everything for the
  /// in-memory backends, the cache's live footprint for the disk backend.
  virtual size_t ResidentBytes() const { return total_bytes_; }

  size_t num_vectors() const { return num_vectors_; }
  size_t TotalSerializedBytes() const { return total_bytes_; }
  size_t SerializedBytesByKind(VectorKind kind) const {
    return bytes_by_kind_[static_cast<uint8_t>(kind)];
  }

  StorageStats stats() const {
    return {hits_.load(std::memory_order_relaxed),
            misses_.load(std::memory_order_relaxed),
            disk_bytes_read_.load(std::memory_order_relaxed),
            prefetch_issued_.load(std::memory_order_relaxed),
            prefetch_hits_.load(std::memory_order_relaxed),
            prefetch_coalesced_reads_.load(std::memory_order_relaxed),
            prefetch_bytes_.load(std::memory_order_relaxed)};
  }

 protected:
  /// Ledger charge shared by every backend's insert path.
  void Charge(VectorKind kind, size_t serialized_bytes) {
    total_bytes_ += serialized_bytes;
    bytes_by_kind_[static_cast<uint8_t>(kind)] += serialized_bytes;
    ++num_vectors_;
  }
  void CopyLedgerFrom(const VectorStorage& other) {
    total_bytes_ = other.total_bytes_;
    bytes_by_kind_ = other.bytes_by_kind_;
    num_vectors_ = other.num_vectors_;
  }

  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  mutable std::atomic<uint64_t> disk_bytes_read_{0};
  mutable std::atomic<uint64_t> prefetch_issued_{0};
  mutable std::atomic<uint64_t> prefetch_hits_{0};
  mutable std::atomic<uint64_t> prefetch_coalesced_reads_{0};
  mutable std::atomic<uint64_t> prefetch_bytes_{0};

 private:
  size_t total_bytes_ = 0;
  std::array<size_t, kNumVectorKinds> bytes_by_kind_{};
  size_t num_vectors_ = 0;
};

/// Factory for StorageOptions::backend.
std::unique_ptr<VectorStorage> MakeVectorStorage(const StorageOptions& options);

}  // namespace dppr

#endif  // DPPR_STORE_VECTOR_STORAGE_H_
