#ifndef DPPR_STORE_MEMORY_STORAGE_H_
#define DPPR_STORE_MEMORY_STORAGE_H_

#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>

#include "dppr/store/vector_storage.h"

namespace dppr {

/// Referencing in-memory backend (the legacy PpvStore representation): `Put`
/// aliases a vector owned by the placement-independent HgpaPrecomputation
/// (the centralized oracle path), while `PutOwned`/`Ingest` adopt vectors
/// into an address-stable deque, so one store may mix both per vector.
/// Every present vector is permanently resident: Find is an allocation-free
/// hash lookup returning an unowned pin, and every successful lookup counts
/// as a cache hit (there is no miss path).
class MemoryRefStorage : public VectorStorage {
 public:
  StorageBackend backend() const override { return StorageBackend::kMemoryRef; }

  void Put(VectorKind kind, SubgraphId sub, NodeId node, const SparseVector* vec,
           size_t serialized_bytes) override;
  void PutOwned(VectorKind kind, SubgraphId sub, NodeId node, SparseVector vec,
                size_t serialized_bytes) override;
  PpvRef Find(VectorKind kind, SubgraphId sub, NodeId node) const override;
  /// One probe of the paired (skeleton, partial) index instead of two map_
  /// lookups — the query fold resolves both hub vectors per hub, so this
  /// halves its hash probes on the in-memory backends.
  PpvPair FindPair(SubgraphId sub, NodeId hub) const override;
  std::unique_ptr<VectorStorage> Clone() const override;
  size_t num_owned() const override { return owned_.size(); }

 protected:
  void Insert(VectorKind kind, SubgraphId sub, NodeId node,
              const SparseVector* vec, size_t serialized_bytes);
  /// Deep-copies maps/deque from `other` and re-points map entries at the
  /// copied owned vectors (referencing entries keep aliasing the original
  /// owner). Shared by Clone of both in-memory backends.
  void CopyStateFrom(const MemoryRefStorage& other);

 private:
  std::unordered_map<uint64_t, const SparseVector*> map_;
  /// (sub, hub) -> (skeleton column, hub partial), maintained alongside map_
  /// for the two paired kinds; keyed on the kind-less low 60 bits of the
  /// packed key. Missing members stay null.
  std::unordered_map<uint64_t,
                     std::pair<const SparseVector*, const SparseVector*>>
      pair_map_;
  /// Owned vectors with their keys; deque for address stability under
  /// growth, keys so Clone can re-point map_ entries.
  std::deque<std::pair<uint64_t, SparseVector>> owned_;
};

/// Owning in-memory backend (the distributed offline path's mode): every
/// vector lives in the store — the referencing `Put` adopts a deep copy, so
/// the store never depends on an external owner's lifetime.
class MemoryOwnedStorage final : public MemoryRefStorage {
 public:
  StorageBackend backend() const override { return StorageBackend::kMemoryOwned; }

  void Put(VectorKind kind, SubgraphId sub, NodeId node, const SparseVector* vec,
           size_t serialized_bytes) override;
  std::unique_ptr<VectorStorage> Clone() const override;
};

}  // namespace dppr

#endif  // DPPR_STORE_MEMORY_STORAGE_H_
