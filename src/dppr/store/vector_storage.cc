#include "dppr/store/vector_storage.h"

#include <utility>

#include "dppr/common/env.h"
#include "dppr/store/disk_storage.h"
#include "dppr/store/memory_storage.h"

namespace dppr {

const char* StorageBackendName(StorageBackend backend) {
  switch (backend) {
    case StorageBackend::kMemoryRef:
      return "memory-ref";
    case StorageBackend::kMemoryOwned:
      return "memory-owned";
    case StorageBackend::kDisk:
      return "disk";
  }
  DPPR_CHECK(false);
  return nullptr;
}

StorageOptions StorageOptions::FromEnv(StorageBackend fallback) {
  StorageOptions options;
  options.backend = fallback;
  std::string store = GetEnvString("DPPR_STORE", "");
  if (store == "disk") {
    options.backend = StorageBackend::kDisk;
  } else if (!store.empty() && store != "memory") {
    // A typo must fail loudly: silently serving from RAM when the operator
    // asked for out-of-core storage defeats the point of the knob.
    std::fprintf(stderr, "unknown DPPR_STORE value: %s\n", store.c_str());
    DPPR_CHECK(store == "disk" || store == "memory");
  }
  int64_t cache = GetEnvInt("DPPR_CACHE_BYTES", static_cast<int64_t>(options.cache_bytes));
  DPPR_CHECK_GE(cache, 0);
  options.cache_bytes = static_cast<size_t>(cache);
  options.spill_dir = GetEnvString("DPPR_SPILL_DIR", "");
  return options;
}

double VectorStorage::Ingest(VectorRecord record) {
  size_t bytes = record.vec.SerializedBytes();
  PutOwned(record.kind, record.sub, record.node, std::move(record.vec), bytes);
  return record.seconds;
}

double VectorStorage::IngestFrom(ByteReader& reader) {
  return Ingest(VectorRecord::Deserialize(reader));
}

std::unique_ptr<VectorStorage> MakeVectorStorage(const StorageOptions& options) {
  switch (options.backend) {
    case StorageBackend::kMemoryRef:
      return std::make_unique<MemoryRefStorage>();
    case StorageBackend::kMemoryOwned:
      return std::make_unique<MemoryOwnedStorage>();
    case StorageBackend::kDisk:
      return std::make_unique<DiskSpillStorage>(options);
  }
  DPPR_CHECK(false);
  return nullptr;
}

}  // namespace dppr
