#include "dppr/partition/kway.h"

#include "dppr/common/macros.h"

namespace dppr {
namespace {

// Extracts the sub-WGraph induced on nodes with side[u] == which.
struct SubWGraph {
  WGraph graph;
  std::vector<NodeId> to_parent;
};

SubWGraph Extract(const WGraph& graph, const std::vector<uint8_t>& side,
                  uint8_t which) {
  SubWGraph sub;
  std::vector<NodeId> to_sub(graph.num_nodes(), kInvalidNode);
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    if (side[u] == which) {
      to_sub[u] = static_cast<NodeId>(sub.to_parent.size());
      sub.to_parent.push_back(u);
    }
  }
  sub.graph = WGraph(sub.to_parent.size());
  for (NodeId s = 0; s < sub.to_parent.size(); ++s) {
    sub.graph.set_node_weight(s, graph.node_weight(sub.to_parent[s]));
  }
  for (NodeId s = 0; s < sub.to_parent.size(); ++s) {
    NodeId u = sub.to_parent[s];
    for (const auto& nbr : graph.neighbors(u)) {
      NodeId t = to_sub[nbr.to];
      if (t != kInvalidNode && s < t) sub.graph.AddEdgeWeight(s, t, nbr.weight);
    }
  }
  return sub;
}

void KwayRecurse(const WGraph& graph, uint32_t num_parts, uint32_t first_part,
                 const BisectOptions& options, const std::vector<NodeId>& to_root,
                 std::vector<uint32_t>& out) {
  if (num_parts <= 1 || graph.num_nodes() == 0) {
    for (NodeId u : to_root) out[u] = first_part;
    return;
  }
  uint32_t left_parts = num_parts / 2;
  uint32_t right_parts = num_parts - left_parts;

  BisectOptions local = options;
  local.target_fraction =
      static_cast<double>(left_parts) / static_cast<double>(num_parts);
  local.seed = options.seed ^ (0x9E3779B9u * (first_part + num_parts));
  std::vector<uint8_t> side = MultilevelBisect(graph, local);

  SubWGraph left = Extract(graph, side, 0);
  SubWGraph right = Extract(graph, side, 1);
  // Lift local ids back to root ids.
  for (auto& id : left.to_parent) id = to_root[id];
  for (auto& id : right.to_parent) id = to_root[id];
  KwayRecurse(left.graph, left_parts, first_part, options, left.to_parent, out);
  KwayRecurse(right.graph, right_parts, first_part + left_parts, options,
              right.to_parent, out);
}

}  // namespace

std::vector<uint32_t> RecursiveKway(const WGraph& graph, uint32_t num_parts,
                                    const BisectOptions& options) {
  DPPR_CHECK_GE(num_parts, 1u);
  std::vector<uint32_t> part(graph.num_nodes(), 0);
  std::vector<NodeId> identity(graph.num_nodes());
  for (NodeId u = 0; u < identity.size(); ++u) identity[u] = u;
  KwayRecurse(graph, num_parts, 0, options, identity, part);
  return part;
}

}  // namespace dppr
