#include "dppr/partition/hierarchy.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "dppr/partition/hub_selection.h"

namespace dppr {
namespace {

struct BuildState {
  std::vector<HierarchySubgraph> subgraphs;
  std::vector<SubgraphId> hub_of;
  std::vector<SubgraphId> final_subgraph;
};

void FinishAsLeaf(BuildState& state, SubgraphId id) {
  for (NodeId u : state.subgraphs[id].nodes) state.final_subgraph[u] = id;
}

// Splits subgraph `id`; returns true if children were created.
bool SplitSubgraph(const Graph& graph, const HierarchyOptions& options,
                   BuildState& state, SubgraphId id) {
  HierarchySubgraph& sub = state.subgraphs[id];
  LocalGraph lg = LocalGraph::Induce(graph, sub.nodes);
  sub.internal_edges = lg.num_internal_edges();
  if (sub.level >= options.max_levels) return false;
  if (sub.nodes.size() <= options.min_subgraph_size) return false;
  if (lg.num_internal_edges() == 0) return false;

  PartitionOptions popt = options.partition;
  popt.seed = options.partition.seed ^ (0x51ED2701ULL * (id + 1));
  std::vector<uint32_t> part = PartitionLocalGraph(lg, options.fanout, popt);

  HubSelection selection = SelectHubs(lg, part, options.fanout);
  std::vector<uint8_t> is_local_hub(lg.num_nodes(), 0);
  for (NodeId h : selection.hubs) is_local_hub[h] = 1;

  // Child node sets: per part, non-hub members.
  std::vector<std::vector<NodeId>> child_nodes(options.fanout);
  for (NodeId local = 0; local < lg.num_nodes(); ++local) {
    if (!is_local_hub[local]) {
      child_nodes[part[local]].push_back(lg.ToGlobal(local));
    }
  }
  size_t nonempty = 0;
  for (const auto& nodes : child_nodes) nonempty += !nodes.empty();
  // Degenerate splits: everything became a hub, or nothing separated.
  if (nonempty == 0) return false;
  if (nonempty == 1 && selection.hubs.empty()) return false;

  std::vector<NodeId> hub_globals;
  hub_globals.reserve(selection.hubs.size());
  for (NodeId h : selection.hubs) hub_globals.push_back(lg.ToGlobal(h));
  std::sort(hub_globals.begin(), hub_globals.end());
  sub.hubs = hub_globals;
  for (NodeId h : hub_globals) {
    state.hub_of[h] = id;
    state.final_subgraph[h] = id;
  }

  uint32_t child_level = sub.level + 1;
  for (auto& nodes : child_nodes) {
    if (nodes.empty()) continue;
    HierarchySubgraph child;
    child.id = static_cast<SubgraphId>(state.subgraphs.size());
    child.level = child_level;
    child.parent = id;
    std::sort(nodes.begin(), nodes.end());
    child.nodes = std::move(nodes);
    state.subgraphs[id].children.push_back(child.id);
    state.subgraphs.push_back(std::move(child));
  }
  return true;
}

}  // namespace

// -- Hierarchy definition ----------------------------------------------------

Hierarchy Hierarchy::Build(const Graph& graph, const HierarchyOptions& options) {
  DPPR_CHECK_GE(options.fanout, 2u);
  BuildState state;
  state.hub_of.assign(graph.num_nodes(), kInvalidSubgraph);
  state.final_subgraph.assign(graph.num_nodes(), kInvalidSubgraph);

  HierarchySubgraph root;
  root.id = 0;
  root.level = 0;
  root.nodes.resize(graph.num_nodes());
  for (NodeId u = 0; u < graph.num_nodes(); ++u) root.nodes[u] = u;
  state.subgraphs.push_back(std::move(root));

  std::deque<SubgraphId> queue{0};
  while (!queue.empty()) {
    SubgraphId id = queue.front();
    queue.pop_front();
    if (SplitSubgraph(graph, options, state, id)) {
      for (SubgraphId child : state.subgraphs[id].children) queue.push_back(child);
    } else {
      FinishAsLeaf(state, id);
    }
  }

  Hierarchy h;
  h.subgraphs_ = std::move(state.subgraphs);
  h.hub_of_ = std::move(state.hub_of);
  h.final_subgraph_ = std::move(state.final_subgraph);
  for (const auto& sub : h.subgraphs_) {
    if (sub.children.empty()) h.leaves_.push_back(sub.id);
    h.num_levels_ = std::max(h.num_levels_, sub.level + 1);
  }
  return h;
}

Hierarchy Hierarchy::BuildFlat(const Graph& graph, uint32_t num_parts,
                               const PartitionOptions& options) {
  HierarchyOptions hopt;
  hopt.fanout = std::max(2u, num_parts);
  hopt.max_levels = 1;
  hopt.partition = options;
  return Build(graph, hopt);
}

std::vector<SubgraphId> Hierarchy::Chain(NodeId u) const {
  DPPR_CHECK_LT(u, final_subgraph_.size());
  std::vector<SubgraphId> chain;
  SubgraphId id = final_subgraph_[u];
  while (id != kInvalidSubgraph) {
    chain.push_back(id);
    id = subgraphs_[id].parent;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

std::vector<size_t> Hierarchy::HubCountPerLevel() const {
  std::vector<size_t> counts(num_levels_, 0);
  for (const auto& sub : subgraphs_) counts[sub.level] += sub.hubs.size();
  while (!counts.empty() && counts.back() == 0) counts.pop_back();
  return counts;
}

size_t Hierarchy::TotalHubCount() const {
  size_t total = 0;
  for (const auto& sub : subgraphs_) total += sub.hubs.size();
  return total;
}

Status Hierarchy::Validate(const Graph& graph) const {
  if (final_subgraph_.size() != graph.num_nodes()) {
    return Status::FailedPrecondition("hierarchy built for a different graph");
  }
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    if (final_subgraph_[u] == kInvalidSubgraph) {
      return Status::Internal("node without final subgraph: " + std::to_string(u));
    }
  }
  for (const auto& sub : subgraphs_) {
    if (sub.children.empty()) {
      if (!sub.hubs.empty()) return Status::Internal("leaf with hubs");
      continue;
    }
    // children ∪ hubs must equal nodes, disjointly.
    size_t child_total = sub.hubs.size();
    std::unordered_set<NodeId> seen(sub.hubs.begin(), sub.hubs.end());
    if (seen.size() != sub.hubs.size()) return Status::Internal("duplicate hubs");
    for (SubgraphId c : sub.children) {
      const auto& child = subgraphs_[c];
      if (child.parent != sub.id || child.level != sub.level + 1) {
        return Status::Internal("broken parent/level link");
      }
      child_total += child.nodes.size();
      for (NodeId u : child.nodes) {
        if (!seen.insert(u).second) {
          return Status::Internal("node in two children: " + std::to_string(u));
        }
      }
    }
    if (child_total != sub.nodes.size()) {
      return Status::Internal("children+hubs do not cover subgraph");
    }
    // Separation: an original edge between two non-hub members of this
    // subgraph must stay within one child.
    std::unordered_map<NodeId, SubgraphId> owner;
    owner.reserve(sub.nodes.size());
    for (SubgraphId c : sub.children) {
      for (NodeId u : subgraphs_[c].nodes) owner[u] = c;
    }
    for (const auto& [u, cu] : owner) {
      for (NodeId v : graph.OutNeighbors(u)) {
        auto it = owner.find(v);
        if (it != owner.end() && it->second != cu) {
          return Status::FailedPrecondition(
              "separation violated in subgraph " + std::to_string(sub.id));
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace dppr
