#ifndef DPPR_PARTITION_HUB_SELECTION_H_
#define DPPR_PARTITION_HUB_SELECTION_H_

#include <vector>

#include "dppr/common/status.h"
#include "dppr/graph/local_graph.h"

namespace dppr {

/// Result of turning a partition's cut edges into hub nodes (paper §3.1,
/// §4.2, Appendix D). Ids are local to the LocalGraph that was partitioned.
struct HubSelection {
  std::vector<NodeId> hubs;     // sorted local ids
  size_t num_cut_pairs = 0;     // undirected crossing pairs
};

/// Selects a vertex cover of the cut edges of `part`. For 2-way partitions
/// the cut graph is bipartite and the cover is *minimum* (Hopcroft–Karp +
/// Kőnig, paper ref [33]); for more parts a greedy cover is used (App. D).
HubSelection SelectHubs(const LocalGraph& lg, const std::vector<uint32_t>& part,
                        uint32_t num_parts);

/// Verifies the defining hub property: after removing hub nodes, no internal
/// edge connects different parts. This is what makes GPA/HGPA exact.
Status VerifySeparation(const LocalGraph& lg, const std::vector<uint32_t>& part,
                        const std::vector<NodeId>& hubs);

}  // namespace dppr

#endif  // DPPR_PARTITION_HUB_SELECTION_H_
