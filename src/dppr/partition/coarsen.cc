#include "dppr/partition/coarsen.h"

#include <numeric>
#include <unordered_map>

namespace dppr {

CoarsenResult CoarsenHeavyEdge(const WGraph& graph, Rng& rng,
                               uint64_t max_node_weight) {
  size_t n = graph.num_nodes();
  std::vector<NodeId> match(n, kInvalidNode);
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  for (size_t i = n; i > 1; --i) {  // Fisher-Yates
    std::swap(order[i - 1], order[rng.Uniform(i)]);
  }

  for (NodeId u : order) {
    if (match[u] != kInvalidNode) continue;
    NodeId best = kInvalidNode;
    uint32_t best_weight = 0;
    for (const auto& nbr : graph.neighbors(u)) {
      if (match[nbr.to] != kInvalidNode || nbr.to == u) continue;
      if (max_node_weight > 0 &&
          static_cast<uint64_t>(graph.node_weight(u)) + graph.node_weight(nbr.to) >
              max_node_weight) {
        continue;
      }
      if (nbr.weight > best_weight) {
        best_weight = nbr.weight;
        best = nbr.to;
      }
    }
    if (best != kInvalidNode) {
      match[u] = best;
      match[best] = u;
    } else {
      match[u] = u;  // singleton
    }
  }

  CoarsenResult result;
  result.fine_to_coarse.assign(n, kInvalidNode);
  NodeId next_coarse = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (result.fine_to_coarse[u] != kInvalidNode) continue;
    result.fine_to_coarse[u] = next_coarse;
    if (match[u] != u) result.fine_to_coarse[match[u]] = next_coarse;
    ++next_coarse;
  }

  WGraph coarse(next_coarse);
  for (NodeId c = 0; c < next_coarse; ++c) coarse.set_node_weight(c, 0);
  for (NodeId u = 0; u < n; ++u) {
    NodeId c = result.fine_to_coarse[u];
    coarse.set_node_weight(c, coarse.node_weight(c) + graph.node_weight(u));
  }
  // Merge edges between coarse endpoints.
  std::unordered_map<uint64_t, uint32_t> pair_weight;
  for (NodeId u = 0; u < n; ++u) {
    NodeId cu = result.fine_to_coarse[u];
    for (const auto& nbr : graph.neighbors(u)) {
      if (u >= nbr.to) continue;  // each undirected edge once
      NodeId cv = result.fine_to_coarse[nbr.to];
      if (cu == cv) continue;  // interior edge disappears
      NodeId lo = std::min(cu, cv);
      NodeId hi = std::max(cu, cv);
      pair_weight[(static_cast<uint64_t>(lo) << 32) | hi] += nbr.weight;
    }
  }
  for (const auto& [key, weight] : pair_weight) {
    coarse.AddEdgeWeight(static_cast<NodeId>(key >> 32),
                         static_cast<NodeId>(key & 0xFFFFFFFFu), weight);
  }
  result.coarse = std::move(coarse);
  return result;
}

}  // namespace dppr
