#ifndef DPPR_PARTITION_VERTEX_COVER_H_
#define DPPR_PARTITION_VERTEX_COVER_H_

#include <cstddef>
#include <vector>

#include "dppr/graph/types.h"

namespace dppr {

/// Vertex covers over an explicit edge list (node ids are arbitrary dense
/// ids; `num_nodes` bounds them). Used to turn cut edges into hub nodes
/// (paper Appendix D).

/// Greedy max-degree cover: repeatedly take the endpoint covering the most
/// uncovered edges. Good in practice for the multi-way cut graphs.
std::vector<NodeId> GreedyVertexCover(size_t num_nodes, const EdgeList& edges);

/// Classic 2-approximation: take both endpoints of a maximal matching.
std::vector<NodeId> TwoApproxVertexCover(size_t num_nodes, const EdgeList& edges);

/// True iff every edge has at least one endpoint flagged in `in_cover`.
bool IsVertexCover(const EdgeList& edges, const std::vector<uint8_t>& in_cover);

}  // namespace dppr

#endif  // DPPR_PARTITION_VERTEX_COVER_H_
