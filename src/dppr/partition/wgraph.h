#ifndef DPPR_PARTITION_WGRAPH_H_
#define DPPR_PARTITION_WGRAPH_H_

#include <cstdint>
#include <vector>

#include "dppr/graph/local_graph.h"
#include "dppr/graph/types.h"

namespace dppr {

/// Weighted undirected multigraph used by the partitioner. Node ids are the
/// local ids of the LocalGraph (or coarse ids after contraction); node
/// weights carry the number of original nodes a coarse node represents, edge
/// weights the number of original directed edges collapsed into the pair.
class WGraph {
 public:
  struct Neighbor {
    NodeId to;
    uint32_t weight;
  };

  WGraph() = default;
  explicit WGraph(size_t num_nodes)
      : node_weight_(num_nodes, 1),
        adj_(num_nodes),
        total_node_weight_(num_nodes) {}

  /// Symmetrizes the internal edges of `lg` (self-loops dropped; parallel and
  /// antiparallel directed edges accumulate into one weighted undirected
  /// edge).
  static WGraph FromLocalGraph(const LocalGraph& lg);

  size_t num_nodes() const { return adj_.size(); }

  uint64_t total_node_weight() const { return total_node_weight_; }

  uint32_t node_weight(NodeId u) const { return node_weight_[u]; }
  void set_node_weight(NodeId u, uint32_t w);

  const std::vector<Neighbor>& neighbors(NodeId u) const { return adj_[u]; }

  /// Adds (or accumulates onto an existing) undirected edge {u, v}.
  /// Callers must not pass u == v.
  void AddEdgeWeight(NodeId u, NodeId v, uint32_t weight);

  /// Sum of edge weights crossing the given bipartition (side values 0/1).
  uint64_t CutWeight(const std::vector<uint8_t>& side) const;

  /// Sum of edge weights crossing any pair of parts in a k-way assignment.
  uint64_t CutWeightKway(const std::vector<uint32_t>& part) const;

 private:
  std::vector<uint32_t> node_weight_;
  std::vector<std::vector<Neighbor>> adj_;
  uint64_t total_node_weight_ = 0;
};

}  // namespace dppr

#endif  // DPPR_PARTITION_WGRAPH_H_
