#include "dppr/partition/vertex_cover.h"

#include <algorithm>
#include <queue>
#include <tuple>

#include "dppr/common/macros.h"

namespace dppr {

std::vector<NodeId> GreedyVertexCover(size_t num_nodes, const EdgeList& edges) {
  std::vector<std::vector<uint32_t>> incident(num_nodes);
  for (uint32_t i = 0; i < edges.size(); ++i) {
    DPPR_CHECK_LT(edges[i].first, num_nodes);
    DPPR_CHECK_LT(edges[i].second, num_nodes);
    incident[edges[i].first].push_back(i);
    if (edges[i].second != edges[i].first) incident[edges[i].second].push_back(i);
  }
  std::vector<uint32_t> degree(num_nodes, 0);
  using Entry = std::tuple<uint32_t, NodeId>;  // (uncovered degree, node)
  std::priority_queue<Entry> pq;
  for (NodeId u = 0; u < num_nodes; ++u) {
    degree[u] = static_cast<uint32_t>(incident[u].size());
    if (degree[u] > 0) pq.push({degree[u], u});
  }
  std::vector<uint8_t> covered(edges.size(), 0);
  std::vector<uint8_t> in_cover(num_nodes, 0);
  size_t remaining = edges.size();
  while (remaining > 0) {
    DPPR_CHECK(!pq.empty());
    auto [d, u] = pq.top();
    pq.pop();
    if (in_cover[u] || d != degree[u] || degree[u] == 0) continue;  // stale
    in_cover[u] = 1;
    for (uint32_t e : incident[u]) {
      if (covered[e]) continue;
      covered[e] = 1;
      --remaining;
      NodeId other = edges[e].first == u ? edges[e].second : edges[e].first;
      if (other != u && degree[other] > 0) {
        --degree[other];
        pq.push({degree[other], other});
      }
    }
    degree[u] = 0;
  }
  std::vector<NodeId> cover;
  for (NodeId u = 0; u < num_nodes; ++u) {
    if (in_cover[u]) cover.push_back(u);
  }
  return cover;
}

std::vector<NodeId> TwoApproxVertexCover(size_t num_nodes, const EdgeList& edges) {
  std::vector<uint8_t> in_cover(num_nodes, 0);
  for (const auto& [u, v] : edges) {
    DPPR_CHECK_LT(u, num_nodes);
    DPPR_CHECK_LT(v, num_nodes);
    if (!in_cover[u] && !in_cover[v]) {
      in_cover[u] = 1;
      in_cover[v] = 1;
    }
  }
  std::vector<NodeId> cover;
  for (NodeId u = 0; u < num_nodes; ++u) {
    if (in_cover[u]) cover.push_back(u);
  }
  return cover;
}

bool IsVertexCover(const EdgeList& edges, const std::vector<uint8_t>& in_cover) {
  for (const auto& [u, v] : edges) {
    if (!in_cover[u] && !in_cover[v]) return false;
  }
  return true;
}

}  // namespace dppr
