#ifndef DPPR_PARTITION_MATCHING_H_
#define DPPR_PARTITION_MATCHING_H_

#include <cstddef>
#include <vector>

#include "dppr/graph/types.h"

namespace dppr {

/// Hopcroft–Karp maximum matching on a bipartite graph with `num_left` and
/// `num_right` vertices (dense local indices). Used to compute minimum vertex
/// covers of 2-way cut graphs via Kőnig's theorem (paper §4.2, ref [33]).
class BipartiteMatcher {
 public:
  BipartiteMatcher(size_t num_left, size_t num_right);

  void AddEdge(NodeId left, NodeId right);

  /// Runs Hopcroft–Karp; returns the matching size. Idempotent.
  size_t Solve();

  /// Matched partner of a left vertex (kInvalidNode if unmatched). Valid
  /// after Solve().
  NodeId MatchOfLeft(NodeId left) const { return match_left_[left]; }
  NodeId MatchOfRight(NodeId right) const { return match_right_[right]; }

  /// Kőnig construction: a minimum vertex cover (size equals the maximum
  /// matching). Returns flags (in_cover_left, in_cover_right). Valid after
  /// Solve().
  std::pair<std::vector<uint8_t>, std::vector<uint8_t>> MinVertexCover() const;

 private:
  bool Bfs();
  bool Dfs(NodeId left);

  size_t num_left_;
  size_t num_right_;
  std::vector<std::vector<NodeId>> adj_;
  std::vector<NodeId> match_left_;
  std::vector<NodeId> match_right_;
  std::vector<uint32_t> dist_;
  bool solved_ = false;
};

}  // namespace dppr

#endif  // DPPR_PARTITION_MATCHING_H_
