#include "dppr/partition/bisect.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <tuple>

#include "dppr/common/macros.h"
#include "dppr/common/rng.h"
#include "dppr/partition/coarsen.h"

namespace dppr {
namespace {

struct Balance {
  uint64_t total;
  uint64_t target0;
  uint64_t max0;
  uint64_t max1;

  static Balance From(const WGraph& g, const BisectOptions& options) {
    Balance b;
    b.total = g.total_node_weight();
    b.target0 = static_cast<uint64_t>(
        std::llround(options.target_fraction * static_cast<double>(b.total)));
    auto cap = [&](uint64_t target) {
      return std::min<uint64_t>(
          b.total, static_cast<uint64_t>(std::ceil(options.imbalance *
                                                   static_cast<double>(target))));
    };
    b.max0 = cap(b.target0);
    b.max1 = cap(b.total - b.target0);
    return b;
  }

  bool Feasible(uint64_t w0) const { return w0 <= max0 && (total - w0) <= max1; }

  /// How far w0 is from the feasible band (0 when feasible).
  uint64_t InfeasibilityDistance(uint64_t w0) const {
    uint64_t over0 = w0 > max0 ? w0 - max0 : 0;
    uint64_t over1 = (total - w0) > max1 ? (total - w0) - max1 : 0;
    return over0 + over1;
  }

  /// Smallest feasible side-0 weight.
  uint64_t MinWeight0() const { return total > max1 ? total - max1 : 0; }
};

// Lexicographic quality: feasibility beats everything, then smaller
// infeasibility distance, then smaller cut.
bool BetterState(const Balance& balance, uint64_t cut_a, uint64_t w_a,
                 uint64_t cut_b, uint64_t w_b) {
  uint64_t dist_a = balance.InfeasibilityDistance(w_a);
  uint64_t dist_b = balance.InfeasibilityDistance(w_b);
  if (dist_a != dist_b) return dist_a < dist_b;
  return cut_a < cut_b;
}

// Gain of moving u to the other side: (cut edges removed) - (cut edges added).
int64_t MoveGain(const WGraph& g, const std::vector<uint8_t>& side, NodeId u) {
  int64_t gain = 0;
  for (const auto& nbr : g.neighbors(u)) {
    gain += (side[nbr.to] != side[u]) ? nbr.weight : -static_cast<int64_t>(nbr.weight);
  }
  return gain;
}

// Greedy graph growing: grow side 0 from a random seed, preferring frontier
// nodes with the strongest connection into the region, until the target
// weight is reached without overshooting the balance cap.
std::vector<uint8_t> GrowInitial(const WGraph& g, const Balance& balance, Rng& rng) {
  size_t n = g.num_nodes();
  std::vector<uint8_t> side(n, 1);
  if (n == 0 || balance.target0 == 0) return side;

  // preference[u] = weight of edges into the grown region.
  std::vector<int64_t> preference(n, 0);
  std::vector<uint8_t> in_region(n, 0);
  using Entry = std::tuple<int64_t, uint64_t, NodeId>;  // (pref, tiebreak, node)
  std::priority_queue<Entry> frontier;

  uint64_t weight0 = 0;
  size_t grown = 0;
  size_t skipped_in_a_row = 0;
  while (weight0 < balance.target0 && grown < n && skipped_in_a_row < 2 * n) {
    if (frontier.empty()) {
      // Seed (or re-seed for disconnected graphs) with a random outside node.
      NodeId seed = kInvalidNode;
      for (size_t tries = 0; tries < 2 * n && seed == kInvalidNode; ++tries) {
        NodeId candidate = static_cast<NodeId>(rng.Uniform(n));
        if (!in_region[candidate]) seed = candidate;
      }
      if (seed == kInvalidNode) {
        for (NodeId u = 0; u < n; ++u) {
          if (!in_region[u]) {
            seed = u;
            break;
          }
        }
      }
      if (seed == kInvalidNode) break;
      frontier.push({preference[seed], rng.Next(), seed});
    }
    auto [pref, tiebreak, u] = frontier.top();
    frontier.pop();
    if (in_region[u] || pref != preference[u]) continue;  // stale entry
    // Skip nodes that would push the region past the cap once the region is
    // already feasible (heavy coarse nodes would otherwise overshoot badly).
    if (weight0 + g.node_weight(u) > balance.max0 &&
        weight0 >= balance.MinWeight0()) {
      ++skipped_in_a_row;
      continue;
    }
    skipped_in_a_row = 0;
    in_region[u] = 1;
    side[u] = 0;
    weight0 += g.node_weight(u);
    ++grown;
    for (const auto& nbr : g.neighbors(u)) {
      if (in_region[nbr.to]) continue;
      preference[nbr.to] += nbr.weight;
      frontier.push({preference[nbr.to], rng.Next(), nbr.to});
    }
  }
  return side;
}

}  // namespace

uint64_t FmRefine(const WGraph& g, std::vector<uint8_t>& side,
                  const BisectOptions& options) {
  size_t n = g.num_nodes();
  DPPR_CHECK_EQ(side.size(), n);
  Balance balance = Balance::From(g, options);

  uint64_t weight0 = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (side[u] == 0) weight0 += g.node_weight(u);
  }
  uint64_t cut = g.CutWeight(side);

  std::vector<int64_t> gain(n, 0);
  std::vector<uint64_t> stamp(n, 0);
  std::vector<uint8_t> locked(n, 0);

  for (int pass = 0; pass < options.refine_passes; ++pass) {
    std::fill(locked.begin(), locked.end(), 0);
    using Entry = std::tuple<int64_t, uint64_t, NodeId>;  // (gain, stamp, node)
    std::priority_queue<Entry> pq;
    bool start_feasible = balance.Feasible(weight0);
    for (NodeId u = 0; u < n; ++u) {
      gain[u] = MoveGain(g, side, u);
      ++stamp[u];
      bool boundary = false;
      for (const auto& nbr : g.neighbors(u)) {
        if (side[nbr.to] != side[u]) {
          boundary = true;
          break;
        }
      }
      // From an infeasible start every node is a candidate — boundary-only
      // scanning could never empty an overweight side with no cut edges.
      if (boundary || !start_feasible) pq.push({gain[u], stamp[u], u});
    }

    std::vector<NodeId> moves;
    uint64_t best_cut = cut;
    uint64_t best_weight0 = weight0;
    size_t best_prefix = 0;
    uint64_t current_cut = cut;
    uint64_t current_weight0 = weight0;

    while (!pq.empty()) {
      auto [gu, su, u] = pq.top();
      pq.pop();
      if (locked[u] || su != stamp[u]) continue;
      uint64_t next_weight0 = side[u] == 0 ? current_weight0 - g.node_weight(u)
                                           : current_weight0 + g.node_weight(u);
      // Never worsen the balance class: feasible states only move to
      // feasible states; infeasible states must not drift further out.
      if (balance.InfeasibilityDistance(next_weight0) >
          balance.InfeasibilityDistance(current_weight0)) {
        continue;
      }
      locked[u] = 1;
      side[u] ^= 1;
      current_weight0 = next_weight0;
      current_cut = static_cast<uint64_t>(static_cast<int64_t>(current_cut) - gu);
      moves.push_back(u);
      for (const auto& nbr : g.neighbors(u)) {
        if (locked[nbr.to]) continue;
        gain[nbr.to] = MoveGain(g, side, nbr.to);
        ++stamp[nbr.to];
        pq.push({gain[nbr.to], stamp[nbr.to], nbr.to});
      }
      if (BetterState(balance, current_cut, current_weight0, best_cut,
                      best_weight0)) {
        best_cut = current_cut;
        best_weight0 = current_weight0;
        best_prefix = moves.size();
      }
      if (moves.size() > n) break;  // safety: every node moved at most once
    }

    // Roll back past the best prefix.
    for (size_t i = moves.size(); i > best_prefix; --i) {
      side[moves[i - 1]] ^= 1;
    }
    bool improved =
        BetterState(balance, best_cut, best_weight0, cut, weight0);
    cut = best_cut;
    weight0 = best_weight0;
    if (!improved || best_prefix == 0) break;
  }
  return cut;
}

std::vector<uint8_t> MultilevelBisect(const WGraph& graph,
                                      const BisectOptions& options) {
  Rng rng(options.seed);
  size_t n = graph.num_nodes();
  if (n == 0) return {};
  if (n == 1) return {0};

  // Coarsening phase. The per-node weight cap keeps coarse nodes small
  // enough that a balanced split of the coarsest graph exists.
  uint64_t weight_cap =
      std::max<uint64_t>(1, graph.total_node_weight() /
                                std::max<size_t>(16, options.coarsest_size / 2));
  std::vector<WGraph> levels;
  std::vector<std::vector<NodeId>> mappings;  // fine -> coarse per level
  levels.push_back(graph);
  while (levels.back().num_nodes() > options.coarsest_size) {
    CoarsenResult step = CoarsenHeavyEdge(levels.back(), rng, weight_cap);
    // Stop if matching degenerates (e.g. star graphs barely shrink).
    if (step.coarse.num_nodes() >
        static_cast<size_t>(0.95 * static_cast<double>(levels.back().num_nodes()))) {
      break;
    }
    mappings.push_back(std::move(step.fine_to_coarse));
    levels.push_back(std::move(step.coarse));
  }

  // Initial partition on the coarsest level: several tries, keep best state.
  const WGraph& coarsest = levels.back();
  Balance balance = Balance::From(coarsest, options);
  std::vector<uint8_t> best_side;
  uint64_t best_cut = 0;
  uint64_t best_weight0 = 0;
  for (int attempt = 0; attempt < options.num_initial_tries; ++attempt) {
    std::vector<uint8_t> side = GrowInitial(coarsest, balance, rng);
    uint64_t cut = FmRefine(coarsest, side, options);
    uint64_t weight0 = 0;
    for (NodeId u = 0; u < coarsest.num_nodes(); ++u) {
      if (side[u] == 0) weight0 += coarsest.node_weight(u);
    }
    if (best_side.empty() ||
        BetterState(balance, cut, weight0, best_cut, best_weight0)) {
      best_cut = cut;
      best_weight0 = weight0;
      best_side = std::move(side);
    }
  }

  // Uncoarsen with refinement at each finer level.
  std::vector<uint8_t> side = std::move(best_side);
  for (size_t level = levels.size() - 1; level > 0; --level) {
    const std::vector<NodeId>& map = mappings[level - 1];
    std::vector<uint8_t> fine_side(map.size());
    for (NodeId u = 0; u < map.size(); ++u) fine_side[u] = side[map[u]];
    side = std::move(fine_side);
    FmRefine(levels[level - 1], side, options);
  }
  return side;
}

}  // namespace dppr
