#ifndef DPPR_PARTITION_KWAY_H_
#define DPPR_PARTITION_KWAY_H_

#include <cstdint>
#include <vector>

#include "dppr/partition/bisect.h"
#include "dppr/partition/wgraph.h"

namespace dppr {

/// k-way partitioning by recursive bisection (the multilevel 2-way method of
/// [26] applied recursively, as the paper does for its m-way hierarchies).
/// Returns part ids in [0, num_parts). num_parts may be any value >= 1; odd
/// values split proportionally.
std::vector<uint32_t> RecursiveKway(const WGraph& graph, uint32_t num_parts,
                                    const BisectOptions& options);

}  // namespace dppr

#endif  // DPPR_PARTITION_KWAY_H_
