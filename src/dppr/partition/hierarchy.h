#ifndef DPPR_PARTITION_HIERARCHY_H_
#define DPPR_PARTITION_HIERARCHY_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "dppr/common/status.h"
#include "dppr/graph/graph.h"
#include "dppr/graph/local_graph.h"
#include "dppr/partition/partition.h"

namespace dppr {

using SubgraphId = uint32_t;
inline constexpr SubgraphId kInvalidSubgraph =
    std::numeric_limits<SubgraphId>::max();

/// One node of the subgraph tree (paper Figure 6). `nodes` contains the
/// subgraph's global node ids *including* its hubs; `hubs` are the separators
/// of its children (empty for leaves). Children's node sets partition
/// `nodes` minus `hubs`.
struct HierarchySubgraph {
  SubgraphId id = kInvalidSubgraph;
  uint32_t level = 0;
  SubgraphId parent = kInvalidSubgraph;
  std::vector<SubgraphId> children;
  std::vector<NodeId> nodes;  // sorted global ids
  std::vector<NodeId> hubs;   // sorted global ids, subset of nodes
  size_t internal_edges = 0;
};

/// Options controlling hierarchical partitioning (paper §4.2).
struct HierarchyOptions {
  /// Subgraphs per split (2 = the paper's default two-way hierarchy).
  uint32_t fanout = 2;
  /// Number of partitioning levels; leaves live at this level. The paper
  /// partitions "until no edges exist within each subgraph"; a high cap with
  /// stop_when_no_edges keeps that behaviour.
  uint32_t max_levels = 32;
  /// Subgraphs at or below this size are not split further.
  size_t min_subgraph_size = 2;
  PartitionOptions partition;
};

/// The full hierarchical partition of a graph: the subgraph tree plus
/// per-node lookups (is the node a hub and of which subgraph / which leaf
/// holds it). Immutable after Build.
class Hierarchy {
 public:
  /// Builds the hierarchy by recursive partitioning with hub extraction.
  static Hierarchy Build(const Graph& graph, const HierarchyOptions& options);

  /// Builds a flat single-level "hierarchy": the root is split `num_parts`
  /// ways, its children are leaves. This is exactly the structure GPA uses,
  /// letting GPA and HGPA share precomputation machinery.
  static Hierarchy BuildFlat(const Graph& graph, uint32_t num_parts,
                             const PartitionOptions& options);

  size_t num_subgraphs() const { return subgraphs_.size(); }
  const HierarchySubgraph& subgraph(SubgraphId id) const {
    DPPR_CHECK_LT(id, subgraphs_.size());
    return subgraphs_[id];
  }
  const std::vector<HierarchySubgraph>& subgraphs() const { return subgraphs_; }

  SubgraphId root() const { return 0; }

  /// Number of levels (root level 0 .. deepest leaf level inclusive).
  uint32_t num_levels() const { return num_levels_; }

  size_t num_nodes() const { return final_subgraph_.size(); }

  bool is_hub(NodeId u) const { return hub_of_[u] != kInvalidSubgraph; }

  /// Subgraph whose hub set contains u (kInvalidSubgraph for non-hubs).
  SubgraphId hub_subgraph(NodeId u) const { return hub_of_[u]; }

  /// Deepest subgraph containing u: the leaf for non-hubs, the subgraph
  /// where u became a hub otherwise.
  SubgraphId final_subgraph(NodeId u) const { return final_subgraph_[u]; }

  /// Chain of subgraph ids containing u from root down to final_subgraph(u).
  std::vector<SubgraphId> Chain(NodeId u) const;

  /// Ids of all leaves (subgraphs with no children).
  const std::vector<SubgraphId>& leaves() const { return leaves_; }

  /// Total hub count at each level (paper Tables 2–5).
  std::vector<size_t> HubCountPerLevel() const;

  /// Total number of hub nodes across all levels.
  size_t TotalHubCount() const;

  /// Structural validation against the original graph:
  ///  - children node sets partition (nodes minus hubs),
  ///  - every node has a final subgraph,
  ///  - hub separation: within each split subgraph, no original edge links
  ///    two different children (Thms. 1/3 rely on this).
  Status Validate(const Graph& graph) const;

 private:
  std::vector<HierarchySubgraph> subgraphs_;
  std::vector<SubgraphId> hub_of_;          // per node
  std::vector<SubgraphId> final_subgraph_;  // per node
  std::vector<SubgraphId> leaves_;
  uint32_t num_levels_ = 0;
};

}  // namespace dppr

#endif  // DPPR_PARTITION_HIERARCHY_H_
