#ifndef DPPR_PARTITION_PARTITION_H_
#define DPPR_PARTITION_PARTITION_H_

#include <cstdint>
#include <vector>

#include "dppr/graph/local_graph.h"
#include "dppr/partition/bisect.h"

namespace dppr {

/// Partitioning strategies. kMultilevel is the METIS-substitute used by GPA
/// and HGPA; kBfs and kRandom exist for the partitioner ablation (they yield
/// many more hub nodes, blowing up precomputation space).
enum class PartitionMethod {
  kMultilevel,
  kBfs,
  kRandom,
};

struct PartitionOptions {
  PartitionMethod method = PartitionMethod::kMultilevel;
  uint64_t seed = 1;
  BisectOptions bisect;
};

/// Splits the local graph into `num_parts` balanced parts; returns part ids
/// in [0, num_parts) indexed by local node id.
std::vector<uint32_t> PartitionLocalGraph(const LocalGraph& lg, uint32_t num_parts,
                                          const PartitionOptions& options = {});

/// Quality summary of a k-way partition.
struct PartitionQuality {
  uint64_t cut_edges = 0;      // directed internal edges crossing parts
  size_t largest_part = 0;
  size_t smallest_part = 0;
  double balance = 0.0;        // largest / ideal
};

PartitionQuality EvaluatePartition(const LocalGraph& lg,
                                   const std::vector<uint32_t>& part,
                                   uint32_t num_parts);

}  // namespace dppr

#endif  // DPPR_PARTITION_PARTITION_H_
