#include "dppr/partition/hub_selection.h"

#include <algorithm>
#include <unordered_set>

#include "dppr/partition/matching.h"
#include "dppr/partition/vertex_cover.h"

namespace dppr {
namespace {

// Collects undirected crossing pairs {u, v} with part[u] != part[v].
EdgeList CollectCutPairs(const LocalGraph& lg, const std::vector<uint32_t>& part) {
  std::unordered_set<uint64_t> seen;
  EdgeList pairs;
  for (NodeId u = 0; u < lg.num_nodes(); ++u) {
    for (NodeId v : lg.OutNeighbors(u)) {
      if (part[u] == part[v]) continue;
      NodeId lo = std::min(u, v);
      NodeId hi = std::max(u, v);
      uint64_t key = (static_cast<uint64_t>(lo) << 32) | hi;
      if (seen.insert(key).second) pairs.emplace_back(lo, hi);
    }
  }
  return pairs;
}

std::vector<NodeId> KonigCover(const LocalGraph& lg,
                               const std::vector<uint32_t>& part,
                               const EdgeList& pairs) {
  // Compact the incident vertices of each side.
  std::vector<NodeId> left_nodes;
  std::vector<NodeId> right_nodes;
  std::vector<NodeId> left_index(lg.num_nodes(), kInvalidNode);
  std::vector<NodeId> right_index(lg.num_nodes(), kInvalidNode);
  auto intern = [](std::vector<NodeId>& nodes, std::vector<NodeId>& index,
                   NodeId u) {
    if (index[u] == kInvalidNode) {
      index[u] = static_cast<NodeId>(nodes.size());
      nodes.push_back(u);
    }
    return index[u];
  };
  EdgeList bipartite;
  bipartite.reserve(pairs.size());
  for (const auto& [a, b] : pairs) {
    NodeId u0 = part[a] == 0 ? a : b;  // endpoint in part 0
    NodeId u1 = part[a] == 0 ? b : a;  // endpoint in part 1
    bipartite.emplace_back(intern(left_nodes, left_index, u0),
                           intern(right_nodes, right_index, u1));
  }
  BipartiteMatcher matcher(left_nodes.size(), right_nodes.size());
  for (const auto& [l, r] : bipartite) matcher.AddEdge(l, r);
  matcher.Solve();
  auto [cover_left, cover_right] = matcher.MinVertexCover();
  std::vector<NodeId> hubs;
  for (NodeId l = 0; l < left_nodes.size(); ++l) {
    if (cover_left[l]) hubs.push_back(left_nodes[l]);
  }
  for (NodeId r = 0; r < right_nodes.size(); ++r) {
    if (cover_right[r]) hubs.push_back(right_nodes[r]);
  }
  return hubs;
}

}  // namespace

HubSelection SelectHubs(const LocalGraph& lg, const std::vector<uint32_t>& part,
                        uint32_t num_parts) {
  DPPR_CHECK_EQ(part.size(), lg.num_nodes());
  HubSelection selection;
  EdgeList pairs = CollectCutPairs(lg, part);
  selection.num_cut_pairs = pairs.size();
  if (pairs.empty()) return selection;

  bool two_way = num_parts == 2 &&
                 std::all_of(part.begin(), part.end(),
                             [](uint32_t p) { return p <= 1; });
  selection.hubs = two_way ? KonigCover(lg, part, pairs)
                           : GreedyVertexCover(lg.num_nodes(), pairs);
  std::sort(selection.hubs.begin(), selection.hubs.end());
  return selection;
}

Status VerifySeparation(const LocalGraph& lg, const std::vector<uint32_t>& part,
                        const std::vector<NodeId>& hubs) {
  std::vector<uint8_t> is_hub(lg.num_nodes(), 0);
  for (NodeId h : hubs) {
    if (h >= lg.num_nodes()) return Status::InvalidArgument("hub id out of range");
    is_hub[h] = 1;
  }
  for (NodeId u = 0; u < lg.num_nodes(); ++u) {
    if (is_hub[u]) continue;
    for (NodeId v : lg.OutNeighbors(u)) {
      if (is_hub[v]) continue;
      if (part[u] != part[v]) {
        return Status::FailedPrecondition(
            "edge between parts " + std::to_string(part[u]) + " and " +
            std::to_string(part[v]) + " not covered by hubs");
      }
    }
  }
  return Status::OK();
}

}  // namespace dppr
