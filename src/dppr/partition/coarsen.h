#ifndef DPPR_PARTITION_COARSEN_H_
#define DPPR_PARTITION_COARSEN_H_

#include <vector>

#include "dppr/common/rng.h"
#include "dppr/partition/wgraph.h"

namespace dppr {

/// One coarsening step: heavy-edge matching + contraction (the METIS
/// multilevel scheme [26]).
struct CoarsenResult {
  WGraph coarse;
  /// fine node id -> coarse node id.
  std::vector<NodeId> fine_to_coarse;
};

/// Matches each unmatched node with its heaviest-edge unmatched neighbor
/// (visit order randomized by `rng`) and contracts matched pairs. A node with
/// no unmatched neighbor maps to a singleton coarse node.
/// `max_node_weight` (0 = unlimited) rejects matches whose combined weight
/// would exceed the cap — without it, star-like graphs collapse into a few
/// monster nodes that no balanced bisection can split.
CoarsenResult CoarsenHeavyEdge(const WGraph& graph, Rng& rng,
                               uint64_t max_node_weight = 0);

}  // namespace dppr

#endif  // DPPR_PARTITION_COARSEN_H_
