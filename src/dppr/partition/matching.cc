#include "dppr/partition/matching.h"

#include <deque>
#include <limits>

#include "dppr/common/macros.h"

namespace dppr {
namespace {
constexpr uint32_t kInf = std::numeric_limits<uint32_t>::max();
}  // namespace

BipartiteMatcher::BipartiteMatcher(size_t num_left, size_t num_right)
    : num_left_(num_left),
      num_right_(num_right),
      adj_(num_left),
      match_left_(num_left, kInvalidNode),
      match_right_(num_right, kInvalidNode),
      dist_(num_left, kInf) {}

void BipartiteMatcher::AddEdge(NodeId left, NodeId right) {
  DPPR_CHECK_LT(left, num_left_);
  DPPR_CHECK_LT(right, num_right_);
  adj_[left].push_back(right);
}

bool BipartiteMatcher::Bfs() {
  std::deque<NodeId> queue;
  for (NodeId l = 0; l < num_left_; ++l) {
    if (match_left_[l] == kInvalidNode) {
      dist_[l] = 0;
      queue.push_back(l);
    } else {
      dist_[l] = kInf;
    }
  }
  bool found_augmenting = false;
  while (!queue.empty()) {
    NodeId l = queue.front();
    queue.pop_front();
    for (NodeId r : adj_[l]) {
      NodeId next = match_right_[r];
      if (next == kInvalidNode) {
        found_augmenting = true;
      } else if (dist_[next] == kInf) {
        dist_[next] = dist_[l] + 1;
        queue.push_back(next);
      }
    }
  }
  return found_augmenting;
}

bool BipartiteMatcher::Dfs(NodeId left) {
  for (NodeId r : adj_[left]) {
    NodeId next = match_right_[r];
    if (next == kInvalidNode || (dist_[next] == dist_[left] + 1 && Dfs(next))) {
      match_left_[left] = r;
      match_right_[r] = left;
      return true;
    }
  }
  dist_[left] = kInf;
  return false;
}

size_t BipartiteMatcher::Solve() {
  if (!solved_) {
    while (Bfs()) {
      for (NodeId l = 0; l < num_left_; ++l) {
        if (match_left_[l] == kInvalidNode) Dfs(l);
      }
    }
    solved_ = true;
  }
  size_t size = 0;
  for (NodeId l = 0; l < num_left_; ++l) {
    if (match_left_[l] != kInvalidNode) ++size;
  }
  return size;
}

std::pair<std::vector<uint8_t>, std::vector<uint8_t>>
BipartiteMatcher::MinVertexCover() const {
  DPPR_CHECK(solved_);
  // Kőnig: let Z = vertices reachable from unmatched left vertices by
  // alternating paths (unmatched edges left->right, matched edges
  // right->left). Cover = (L \ Z) ∪ (R ∩ Z).
  std::vector<uint8_t> visited_left(num_left_, 0);
  std::vector<uint8_t> visited_right(num_right_, 0);
  std::deque<NodeId> queue;
  for (NodeId l = 0; l < num_left_; ++l) {
    if (match_left_[l] == kInvalidNode) {
      visited_left[l] = 1;
      queue.push_back(l);
    }
  }
  while (!queue.empty()) {
    NodeId l = queue.front();
    queue.pop_front();
    for (NodeId r : adj_[l]) {
      if (match_left_[l] == r || visited_right[r]) continue;  // only unmatched edges
      visited_right[r] = 1;
      NodeId next = match_right_[r];
      if (next != kInvalidNode && !visited_left[next]) {
        visited_left[next] = 1;
        queue.push_back(next);
      }
    }
  }
  std::vector<uint8_t> cover_left(num_left_, 0);
  std::vector<uint8_t> cover_right(num_right_, 0);
  for (NodeId l = 0; l < num_left_; ++l) cover_left[l] = !visited_left[l];
  for (NodeId r = 0; r < num_right_; ++r) cover_right[r] = visited_right[r];
  // Only vertices incident to edges can be required; strip isolated lefts.
  for (NodeId l = 0; l < num_left_; ++l) {
    if (adj_[l].empty()) cover_left[l] = 0;
  }
  return {std::move(cover_left), std::move(cover_right)};
}

}  // namespace dppr
