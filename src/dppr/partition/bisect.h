#ifndef DPPR_PARTITION_BISECT_H_
#define DPPR_PARTITION_BISECT_H_

#include <cstdint>
#include <vector>

#include "dppr/partition/wgraph.h"

namespace dppr {

/// Options for multilevel 2-way partitioning (METIS-style: coarsen with
/// heavy-edge matching, greedy graph growing on the coarsest graph, FM
/// refinement while uncoarsening).
struct BisectOptions {
  /// Weight fraction assigned to side 0 (0.5 = balanced bisection; recursive
  /// k-way uses other fractions for odd splits).
  double target_fraction = 0.5;
  /// A side may weigh at most `imbalance` times its target weight.
  double imbalance = 1.10;
  /// Independent initial partitions tried on the coarsest graph.
  int num_initial_tries = 4;
  /// Coarsening stops at this many nodes.
  size_t coarsest_size = 64;
  /// FM passes per level.
  int refine_passes = 4;
  uint64_t seed = 1;
};

/// Computes a 2-way partition; result[u] in {0, 1}.
std::vector<uint8_t> MultilevelBisect(const WGraph& graph,
                                      const BisectOptions& options);

/// In-place boundary FM refinement of an existing bisection; returns the
/// final cut weight. Exposed for tests and for the k-way driver.
uint64_t FmRefine(const WGraph& graph, std::vector<uint8_t>& side,
                  const BisectOptions& options);

}  // namespace dppr

#endif  // DPPR_PARTITION_BISECT_H_
