#include "dppr/partition/partition.h"

#include <algorithm>
#include <deque>
#include <numeric>

#include "dppr/common/rng.h"
#include "dppr/partition/kway.h"

namespace dppr {
namespace {

std::vector<uint32_t> RandomPartition(const LocalGraph& lg, uint32_t num_parts,
                                      uint64_t seed) {
  Rng rng(seed);
  std::vector<uint32_t> part(lg.num_nodes());
  // Balanced random: shuffle, then deal round-robin.
  std::vector<NodeId> order(lg.num_nodes());
  std::iota(order.begin(), order.end(), NodeId{0});
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.Uniform(i)]);
  }
  for (size_t i = 0; i < order.size(); ++i) {
    part[order[i]] = static_cast<uint32_t>(i % num_parts);
  }
  return part;
}

std::vector<uint32_t> BfsPartition(const LocalGraph& lg, uint32_t num_parts,
                                   uint64_t seed) {
  Rng rng(seed);
  size_t n = lg.num_nodes();
  std::vector<uint32_t> part(n, 0);
  std::vector<uint8_t> visited(n, 0);
  size_t chunk = (n + num_parts - 1) / num_parts;
  size_t assigned = 0;
  std::deque<NodeId> queue;
  NodeId scan = 0;
  while (assigned < n) {
    if (queue.empty()) {
      while (scan < n && visited[scan]) ++scan;
      if (scan >= n) break;
      queue.push_back(scan);
      visited[scan] = 1;
    }
    NodeId u = queue.front();
    queue.pop_front();
    part[u] = static_cast<uint32_t>(std::min<size_t>(assigned / chunk, num_parts - 1));
    ++assigned;
    for (NodeId v : lg.OutNeighbors(u)) {
      if (!visited[v]) {
        visited[v] = 1;
        queue.push_back(v);
      }
    }
  }
  (void)rng;
  return part;
}

}  // namespace

std::vector<uint32_t> PartitionLocalGraph(const LocalGraph& lg, uint32_t num_parts,
                                          const PartitionOptions& options) {
  DPPR_CHECK_GE(num_parts, 1u);
  if (num_parts == 1 || lg.num_nodes() <= 1) {
    return std::vector<uint32_t>(lg.num_nodes(), 0);
  }
  switch (options.method) {
    case PartitionMethod::kRandom:
      return RandomPartition(lg, num_parts, options.seed);
    case PartitionMethod::kBfs:
      return BfsPartition(lg, num_parts, options.seed);
    case PartitionMethod::kMultilevel: {
      WGraph wg = WGraph::FromLocalGraph(lg);
      BisectOptions bisect = options.bisect;
      bisect.seed = options.seed;
      return RecursiveKway(wg, num_parts, bisect);
    }
  }
  DPPR_CHECK(false);
  return {};
}

PartitionQuality EvaluatePartition(const LocalGraph& lg,
                                   const std::vector<uint32_t>& part,
                                   uint32_t num_parts) {
  DPPR_CHECK_EQ(part.size(), lg.num_nodes());
  PartitionQuality quality;
  std::vector<size_t> sizes(num_parts, 0);
  for (NodeId u = 0; u < lg.num_nodes(); ++u) {
    DPPR_CHECK_LT(part[u], num_parts);
    ++sizes[part[u]];
    for (NodeId v : lg.OutNeighbors(u)) {
      if (part[v] != part[u]) ++quality.cut_edges;
    }
  }
  quality.largest_part = *std::max_element(sizes.begin(), sizes.end());
  quality.smallest_part = *std::min_element(sizes.begin(), sizes.end());
  double ideal =
      static_cast<double>(lg.num_nodes()) / static_cast<double>(num_parts);
  quality.balance =
      ideal > 0 ? static_cast<double>(quality.largest_part) / ideal : 0.0;
  return quality;
}

}  // namespace dppr
