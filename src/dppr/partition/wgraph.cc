#include "dppr/partition/wgraph.h"

#include <unordered_map>

#include "dppr/common/macros.h"

namespace dppr {

WGraph WGraph::FromLocalGraph(const LocalGraph& lg) {
  WGraph wg(lg.num_nodes());
  // Accumulate undirected pair weights; key packs (min, max).
  std::unordered_map<uint64_t, uint32_t> pair_weight;
  pair_weight.reserve(lg.num_internal_edges());
  for (NodeId u = 0; u < lg.num_nodes(); ++u) {
    for (NodeId v : lg.OutNeighbors(u)) {
      if (u == v) continue;
      NodeId lo = std::min(u, v);
      NodeId hi = std::max(u, v);
      uint64_t key = (static_cast<uint64_t>(lo) << 32) | hi;
      ++pair_weight[key];
    }
  }
  for (const auto& [key, weight] : pair_weight) {
    NodeId lo = static_cast<NodeId>(key >> 32);
    NodeId hi = static_cast<NodeId>(key & 0xFFFFFFFFu);
    wg.adj_[lo].push_back({hi, weight});
    wg.adj_[hi].push_back({lo, weight});
  }
  return wg;
}

void WGraph::set_node_weight(NodeId u, uint32_t w) {
  DPPR_DCHECK(u < num_nodes());
  total_node_weight_ += w;
  total_node_weight_ -= node_weight_[u];
  node_weight_[u] = w;
}

void WGraph::AddEdgeWeight(NodeId u, NodeId v, uint32_t weight) {
  DPPR_DCHECK(u != v);
  for (auto& nbr : adj_[u]) {
    if (nbr.to == v) {
      nbr.weight += weight;
      for (auto& back : adj_[v]) {
        if (back.to == u) {
          back.weight += weight;
          return;
        }
      }
    }
  }
  adj_[u].push_back({v, weight});
  adj_[v].push_back({u, weight});
}

uint64_t WGraph::CutWeight(const std::vector<uint8_t>& side) const {
  DPPR_CHECK_EQ(side.size(), num_nodes());
  uint64_t cut = 0;
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (const auto& nbr : adj_[u]) {
      if (u < nbr.to && side[u] != side[nbr.to]) cut += nbr.weight;
    }
  }
  return cut;
}

uint64_t WGraph::CutWeightKway(const std::vector<uint32_t>& part) const {
  DPPR_CHECK_EQ(part.size(), num_nodes());
  uint64_t cut = 0;
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (const auto& nbr : adj_[u]) {
      if (u < nbr.to && part[u] != part[nbr.to]) cut += nbr.weight;
    }
  }
  return cut;
}

}  // namespace dppr
