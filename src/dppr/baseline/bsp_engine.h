#ifndef DPPR_BASELINE_BSP_ENGINE_H_
#define DPPR_BASELINE_BSP_ENGINE_H_

#include <cstdint>
#include <vector>

#include "dppr/dist/network.h"
#include "dppr/graph/graph.h"
#include "dppr/ppr/ppr_options.h"

namespace dppr {

/// Vertex placement across machines.
enum class BspPlacement {
  /// Hash vertices to machines — what Pregel+ [48] does by default. Almost
  /// every edge crosses machines, so message volume is ~|E| per superstep.
  kHash,
  /// Balanced-partition placement with block-locality — the essence of
  /// Blogel [47]'s block-centric model: only cut edges cross machines.
  kPartition,
};

/// Sender-side message handling.
enum class BspCombining {
  /// One message per cross-machine edge (plain Pregel).
  kNone,
  /// Messages from one machine to the same target vertex are combined
  /// (Pregel+'s sender-side combiner; Blogel combines within blocks too).
  kSenderSide,
};

struct BspOptions {
  size_t num_machines = 6;
  BspPlacement placement = BspPlacement::kHash;
  BspCombining combining = BspCombining::kSenderSide;
  NetworkModel network;
  /// Wire size of one combined message: target vertex id + value.
  size_t bytes_per_message = 12;
  /// Barrier + scheduling overhead charged per superstep (BSP's fixed cost).
  double superstep_overhead_seconds = 2e-3;
  uint64_t partition_seed = 1;
  /// Optional externally computed placement (vertex -> machine); overrides
  /// `placement` when non-null. Benches reuse one partitioning across runs.
  const std::vector<uint32_t>* placement_override = nullptr;
};

struct BspPpvResult {
  std::vector<double> ppv;
  size_t supersteps = 0;
  /// Total cross-machine traffic (the paper's communication-cost metric for
  /// Pregel+/Blogel, Figures 22/27).
  CommStats network_traffic;
  /// Σ over supersteps of (max per-machine compute + network + barrier).
  double simulated_seconds = 0.0;
  double compute_seconds_total = 0.0;
};

/// Power-iteration PPV on a BSP engine (paper §6.2.8): each superstep every
/// active vertex scatters (1-α)·value/degree along its out-edges and the
/// query vertex adds the teleport α; iterate to the shared tolerance. This
/// is the baseline the paper implements on Pregel+ and Blogel — exact like
/// HGPA, but paying one message wave per superstep.
BspPpvResult BspPowerIterationPpv(const Graph& graph, NodeId query,
                                  const PprOptions& ppr, const BspOptions& options);

/// Computes the vertex->machine placement a BSP run would use (exposed so
/// benches can pre-compute and share it via placement_override).
std::vector<uint32_t> BspComputePlacement(const Graph& graph,
                                          const BspOptions& options);

}  // namespace dppr

#endif  // DPPR_BASELINE_BSP_ENGINE_H_
