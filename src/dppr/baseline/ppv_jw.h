#ifndef DPPR_BASELINE_PPV_JW_H_
#define DPPR_BASELINE_PPV_JW_H_

#include <unordered_map>
#include <vector>

#include "dppr/graph/graph.h"
#include "dppr/ppr/ppr_options.h"
#include "dppr/ppr/sparse_vector.h"

namespace dppr {

/// PPV-JW — the brute-force extension of Jeh–Widom [25] described in paper
/// §2.3: hub nodes are the top-|H| PageRank nodes (NOT graph separators), so
/// partial vectors of non-hub nodes can reach the whole graph and total
/// space degenerates towards O(|V|²). The query construction (Eq. 4) is
/// still exact for any hub set; this baseline exists to demonstrate the
/// space blow-up GPA/HGPA avoid.
struct PpvJwOptions {
  PprOptions ppr;
  /// |H|: number of high-PageRank hubs.
  size_t num_hubs = 64;
};

class PpvJwIndex {
 public:
  static PpvJwIndex Build(const Graph& graph, const PpvJwOptions& options);

  /// Exact PPV (to tolerance) via Eq. 4 with hub-coordinate replacement.
  std::vector<double> Query(NodeId query) const;

  const std::vector<NodeId>& hubs() const { return hubs_; }
  size_t TotalBytes() const { return total_bytes_; }
  double build_seconds() const { return build_seconds_; }
  const PpvJwOptions& options() const { return options_; }

 private:
  const Graph* graph_ = nullptr;
  PpvJwOptions options_;
  std::vector<NodeId> hubs_;  // sorted
  /// Partial vector per node (hub coordinates dropped; see DESIGN.md).
  std::vector<SparseVector> partials_;
  /// Skeleton column per hub: entry u holds s_u(h).
  std::unordered_map<NodeId, SparseVector> skeleton_columns_;
  size_t total_bytes_ = 0;
  double build_seconds_ = 0.0;
};

}  // namespace dppr

#endif  // DPPR_BASELINE_PPV_JW_H_
