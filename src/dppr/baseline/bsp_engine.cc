#include "dppr/baseline/bsp_engine.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "dppr/common/macros.h"
#include "dppr/common/timer.h"
#include "dppr/graph/local_graph.h"
#include "dppr/partition/partition.h"

namespace dppr {

std::vector<uint32_t> BspComputePlacement(const Graph& graph,
                                          const BspOptions& options) {
  std::vector<uint32_t> machine_of(graph.num_nodes());
  if (options.placement == BspPlacement::kHash) {
    for (NodeId u = 0; u < graph.num_nodes(); ++u) {
      // Multiplicative hash — scatters consecutive ids like Pregel+.
      machine_of[u] = static_cast<uint32_t>(
          (u * 0x9E3779B97F4A7C15ULL >> 32) % options.num_machines);
    }
  } else {
    LocalGraph whole = LocalGraph::Whole(graph);
    PartitionOptions popt;
    popt.method = PartitionMethod::kMultilevel;
    popt.seed = options.partition_seed;
    machine_of = PartitionLocalGraph(
        whole, static_cast<uint32_t>(options.num_machines), popt);
  }
  return machine_of;
}

BspPpvResult BspPowerIterationPpv(const Graph& graph, NodeId query,
                                  const PprOptions& ppr,
                                  const BspOptions& options) {
  const size_t n = graph.num_nodes();
  DPPR_CHECK_LT(query, n);
  DPPR_CHECK_GE(options.num_machines, 1u);
  const double alpha = ppr.alpha;

  std::vector<uint32_t> machine_of = options.placement_override != nullptr
                                         ? *options.placement_override
                                         : BspComputePlacement(graph, options);
  DPPR_CHECK_EQ(machine_of.size(), n);

  BspPpvResult result;
  std::vector<double> current(n, 0.0);
  std::vector<double> next(n, 0.0);
  std::vector<std::vector<NodeId>> active_of(options.num_machines);
  std::vector<std::vector<NodeId>> next_active_of(options.num_machines);
  std::vector<uint8_t> in_next(n, 0);

  current[query] = 1.0;
  active_of[machine_of[query]].push_back(query);

  // Per-machine scratch for sender-side combining: the set of distinct
  // (cross-machine target) vertices touched this superstep.
  std::vector<std::unordered_set<NodeId>> combined_targets(options.num_machines);

  for (size_t step = 0; step < ppr.max_iterations; ++step) {
    ++result.supersteps;
    size_t step_messages = 0;
    double step_max_compute = 0.0;

    for (size_t machine = 0; machine < options.num_machines; ++machine) {
      WallTimer machine_timer;
      auto& targets = combined_targets[machine];
      targets.clear();
      size_t raw_messages = 0;
      for (NodeId u : active_of[machine]) {
        double value = current[u];
        if (value == 0.0) continue;
        uint32_t degree = graph.out_degree(u);
        if (degree == 0) continue;  // datasets carry self-loops; mass would die
        double share = (1.0 - alpha) * value / static_cast<double>(degree);
        for (NodeId v : graph.OutNeighbors(u)) {
          next[v] += share;
          if (!in_next[v]) {
            in_next[v] = 1;
            next_active_of[machine_of[v]].push_back(v);
          }
          if (machine_of[v] != machine) {
            ++raw_messages;
            if (options.combining == BspCombining::kSenderSide) {
              targets.insert(v);
            }
          }
        }
      }
      size_t machine_messages = options.combining == BspCombining::kSenderSide
                                    ? targets.size()
                                    : raw_messages;
      step_messages += machine_messages;
      double compute = machine_timer.ElapsedSeconds();
      result.compute_seconds_total += compute;
      step_max_compute = std::max(step_max_compute, compute);
    }

    // Teleport lands at the query vertex (its machine's compute, negligible).
    next[query] += alpha;
    if (!in_next[query]) {
      in_next[query] = 1;
      next_active_of[machine_of[query]].push_back(query);
    }

    size_t step_bytes = step_messages * options.bytes_per_message;
    result.network_traffic.messages += step_messages;
    result.network_traffic.bytes += step_bytes;
    result.simulated_seconds +=
        step_max_compute + options.superstep_overhead_seconds +
        static_cast<double>(step_bytes) / options.network.bandwidth_bytes_per_sec;

    // Convergence aggregator (a global max, as Pregel aggregators provide).
    double max_delta = 0.0;
    for (const auto& list : next_active_of) {
      for (NodeId v : list) max_delta = std::max(max_delta, std::abs(next[v] - current[v]));
    }
    for (const auto& list : active_of) {
      for (NodeId v : list) {
        if (!in_next[v]) max_delta = std::max(max_delta, current[v]);
      }
    }

    for (auto& list : active_of) {
      for (NodeId v : list) current[v] = 0.0;
      list.clear();
    }
    for (auto& list : next_active_of) {
      for (NodeId v : list) {
        current[v] = next[v];
        next[v] = 0.0;
        in_next[v] = 0;
      }
    }
    active_of.swap(next_active_of);

    if (max_delta <= ppr.tolerance) break;
  }

  result.ppv = std::move(current);
  return result;
}

}  // namespace dppr
