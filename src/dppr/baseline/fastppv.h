#ifndef DPPR_BASELINE_FASTPPV_H_
#define DPPR_BASELINE_FASTPPV_H_

#include <unordered_map>
#include <vector>

#include "dppr/graph/graph.h"
#include "dppr/graph/local_graph.h"
#include "dppr/ppr/ppr_options.h"
#include "dppr/ppr/sparse_vector.h"

namespace dppr {

/// FastPPV substitute (Zhu et al. [49], "scheduled approximation"): tours
/// are partitioned by how many hub nodes they cross, and the query
/// aggregates tour sets from the most important (0 hub crossings) to less
/// important ones round by round. Hubs are the top-|H| PageRank nodes; per
/// hub we precompute a *prime vector* (hub-free walk mass absorbed from the
/// hub) and a *transfer vector* (walk mass handed to the next hub). A query
/// runs one hub-free push and then `max_rounds` rounds of hub expansion; the
/// un-expanded hub mass bounds the approximation error.
struct FastPpvOptions {
  PprOptions ppr;
  /// Number of PageRank hubs (the paper's Fast-100 / Fast-1000 knob).
  size_t num_hubs = 1000;
  /// Scheduled rounds of hub-mass expansion at query time.
  size_t max_rounds = 8;
  /// Early exit once the remaining (pessimistic) hub mass drops below this.
  double min_round_mass = 1e-7;
};

class FastPpvIndex {
 public:
  static FastPpvIndex Build(const Graph& graph, const FastPpvOptions& options);

  struct QueryStats {
    size_t rounds = 0;
    /// Un-expanded hub mass when the query stopped (error upper bound).
    double remaining_mass = 0.0;
  };

  /// Approximate PPV of `query`.
  std::vector<double> Query(NodeId query, QueryStats* stats = nullptr) const;

  const std::vector<NodeId>& hubs() const { return hubs_; }
  size_t TotalBytes() const { return total_bytes_; }
  double build_seconds() const { return build_seconds_; }

 private:
  const Graph* graph_ = nullptr;
  FastPpvOptions options_;
  LocalGraph whole_;
  std::vector<NodeId> hubs_;                       // sorted
  std::unordered_map<NodeId, uint32_t> hub_rank_;  // hub id -> dense rank
  std::vector<SparseVector> prime_;                // per rank: absorbed mass
  std::vector<SparseVector> transfer_;             // per rank: mass to hubs
  size_t total_bytes_ = 0;
  double build_seconds_ = 0.0;
};

}  // namespace dppr

#endif  // DPPR_BASELINE_FASTPPV_H_
