#include "dppr/baseline/ppv_jw.h"

#include <algorithm>

#include "dppr/common/thread_pool.h"
#include "dppr/common/timer.h"
#include "dppr/graph/local_graph.h"
#include "dppr/ppr/forward_push.h"
#include "dppr/ppr/pagerank.h"
#include "dppr/ppr/skeleton.h"

namespace dppr {
namespace {

SparseVector DropSorted(const SparseVector& vec, std::span<const NodeId> sorted) {
  std::vector<SparseVector::Entry> entries;
  entries.reserve(vec.size());
  for (const auto& e : vec.entries()) {
    if (!std::binary_search(sorted.begin(), sorted.end(), e.index)) {
      entries.push_back(e);
    }
  }
  return SparseVector::FromEntries(std::move(entries));
}

}  // namespace

PpvJwIndex PpvJwIndex::Build(const Graph& graph, const PpvJwOptions& options) {
  WallTimer timer;
  PpvJwIndex index;
  index.graph_ = &graph;
  index.options_ = options;
  index.hubs_ = TopPageRankNodes(graph, options.num_hubs, options.ppr);
  std::sort(index.hubs_.begin(), index.hubs_.end());

  LocalGraph whole = LocalGraph::Whole(graph, /*build_in_edges=*/true);

  // Partial vectors for every node, blocked (interior) at H.
  index.partials_.resize(graph.num_nodes());
  ThreadPool::Default().ParallelFor(graph.num_nodes(), [&](size_t u) {
    ForwardPusher<LocalGraph> pusher(whole);
    ForwardPushResult push =
        pusher.Run(static_cast<NodeId>(u), index.hubs_, options.ppr);
    index.partials_[u] = DropSorted(push.reserve, index.hubs_);
  });

  // Skeleton columns for every hub.
  std::vector<SparseVector> columns(index.hubs_.size());
  ThreadPool::Default().ParallelFor(index.hubs_.size(), [&](size_t i) {
    std::vector<double> column =
        SkeletonReversePush(whole, index.hubs_[i], options.ppr);
    columns[i] = SparseVector::FromDense(column);
  });
  for (size_t i = 0; i < index.hubs_.size(); ++i) {
    index.skeleton_columns_.emplace(index.hubs_[i], std::move(columns[i]));
  }

  for (const auto& p : index.partials_) index.total_bytes_ += p.SerializedBytes();
  for (const auto& [h, c] : index.skeleton_columns_) {
    index.total_bytes_ += c.SerializedBytes();
  }
  index.build_seconds_ = timer.ElapsedSeconds();
  return index;
}

std::vector<double> PpvJwIndex::Query(NodeId query) const {
  DPPR_CHECK_LT(query, graph_->num_nodes());
  const double alpha = options_.ppr.alpha;
  DenseAccumulator acc(graph_->num_nodes());

  // Eq. 4 with hub-coordinate replacement (DESIGN.md §3): non-hub
  // coordinates from the scaled partials, hub coordinates directly from the
  // skeleton values.
  for (NodeId hub : hubs_) {
    const SparseVector& column = skeleton_columns_.at(hub);
    double s = column.ValueAt(query);
    if (s == 0.0) continue;
    acc.Add(hub, s);
    if (query == hub) s -= alpha;
    if (s != 0.0) acc.AddVector(partials_[hub], s / alpha);
  }
  acc.AddVector(partials_[query], 1.0);
  return acc.ToDense();
}

}  // namespace dppr
