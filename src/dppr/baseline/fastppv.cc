#include "dppr/baseline/fastppv.h"

#include <algorithm>

#include "dppr/common/thread_pool.h"
#include "dppr/common/timer.h"
#include "dppr/ppr/forward_push.h"
#include "dppr/ppr/pagerank.h"

namespace dppr {

FastPpvIndex FastPpvIndex::Build(const Graph& graph,
                                 const FastPpvOptions& options) {
  WallTimer timer;
  FastPpvIndex index;
  index.graph_ = &graph;
  index.options_ = options;
  index.whole_ = LocalGraph::Whole(graph);
  index.hubs_ = TopPageRankNodes(graph, options.num_hubs, options.ppr);
  std::sort(index.hubs_.begin(), index.hubs_.end());
  for (uint32_t rank = 0; rank < index.hubs_.size(); ++rank) {
    index.hub_rank_.emplace(index.hubs_[rank], rank);
  }

  index.prime_.resize(index.hubs_.size());
  index.transfer_.resize(index.hubs_.size());
  ThreadPool::Default().ParallelFor(index.hubs_.size(), [&](size_t rank) {
    ForwardPusher<LocalGraph> pusher(index.whole_);
    ForwardPushResult push =
        pusher.Run(index.hubs_[rank], index.hubs_, options.ppr);
    // The prime vector keeps the hub-free absorbed mass; arrival mass at
    // other hubs (and returns to this one) feeds the next scheduled round.
    index.prime_[rank] = push.reserve;
    index.transfer_[rank] = push.residual_at_blocked;
  });

  for (const auto& v : index.prime_) index.total_bytes_ += v.SerializedBytes();
  for (const auto& v : index.transfer_) index.total_bytes_ += v.SerializedBytes();
  index.build_seconds_ = timer.ElapsedSeconds();
  return index;
}

std::vector<double> FastPpvIndex::Query(NodeId query, QueryStats* stats) const {
  DPPR_CHECK_LT(query, graph_->num_nodes());
  const double alpha = options_.ppr.alpha;

  // Round 0: hub-free tours from the query (plus arrival mass at hubs).
  ForwardPusher<LocalGraph> pusher(whole_);
  ForwardPushResult base = pusher.Run(query, hubs_, options_.ppr);

  DenseAccumulator acc(graph_->num_nodes());
  acc.AddVector(base.reserve, 1.0);

  // mass[rank]: walk mass parked at each hub awaiting its tour set.
  std::vector<double> mass(hubs_.size(), 0.0);
  double total_mass = 0.0;
  for (const auto& e : base.residual_at_blocked.entries()) {
    uint32_t rank = hub_rank_.at(e.index);
    mass[rank] += e.value;
    total_mass += e.value;
  }

  size_t rounds = 0;
  std::vector<double> next_mass(hubs_.size(), 0.0);
  while (rounds < options_.max_rounds && total_mass > options_.min_round_mass) {
    ++rounds;
    std::fill(next_mass.begin(), next_mass.end(), 0.0);
    double next_total = 0.0;
    for (uint32_t rank = 0; rank < hubs_.size(); ++rank) {
      double m = mass[rank];
      if (m == 0.0) continue;
      // Tour-set recursion r_u = p'_u + Σ_h C'_u(h)·(r_h − α·x_h): the walk
      // decay is already inside the transfer masses, so the hub's prime
      // vector is scaled by the raw arrival mass. Subtracting α·m at the hub
      // removes the prime vector's leading teleport entry, which the parent
      // round's reserve already counted as "tours ending at this hub".
      acc.AddVector(prime_[rank], m);
      acc.Add(hubs_[rank], -m * alpha);
      for (const auto& e : transfer_[rank].entries()) {
        uint32_t next_rank = hub_rank_.at(e.index);
        next_mass[next_rank] += m * e.value;
        next_total += m * e.value;
      }
    }
    mass.swap(next_mass);
    total_mass = next_total;
  }

  if (stats != nullptr) {
    stats->rounds = rounds;
    stats->remaining_mass = total_mass;
  }
  return acc.ToDense();
}

}  // namespace dppr
