#ifndef DPPR_CORE_PLACEMENT_H_
#define DPPR_CORE_PLACEMENT_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "dppr/partition/hierarchy.h"

namespace dppr {

/// Which machine computes and stores each precomputed vector, decided from
/// the hierarchy alone (placement is independent of the vectors' contents):
///
///  - hub vectors: each subgraph's hub set is split evenly over machines
///    (Eq. 7), rotated by subgraph id so remainder hubs spread out;
///  - leaf subgraphs: greedy least-loaded packing by node count, larger
///    leaves first ("distribute the leaf level subgraphs evenly", §4.4).
///
/// Both the offline drivers (HgpaIndex::Distribute over a centralized
/// precomputation, DistributedPrecompute's SimCluster rounds) and the query
/// engine consume the same plan, so the distributed rebuild reproduces the
/// centralized placement exactly — including the per-(machine, subgraph) hub
/// order the query-time accumulation depends on.
///
/// Every subgraph additionally has a *home machine* — its compute site under
/// locality placement, distinct from the Eq. 7 *owner* that stores each hub's
/// vectors. Leaves are home where the leaf packing put them (that machine
/// already holds their data); internal subgraphs span many leaves, so they
/// fall back to deterministic least-loaded packing by node count.
struct PlacementPlan {
  /// Hubs a machine is responsible for, grouped by subgraph, in Eq. 7 rank
  /// order (the order query-time accumulation folds them in).
  std::vector<std::unordered_map<SubgraphId, std::vector<NodeId>>> machine_hubs;
  /// Leaf subgraphs packed onto each machine, in assignment order.
  std::vector<std::vector<SubgraphId>> machine_leaves;
  /// Per node: the machine holding its own vector (leaf local PPV for
  /// non-hubs, the hub partial vector for hubs).
  std::vector<size_t> own_machine;
  /// Per subgraph: the machine that computes the subgraph's vectors under
  /// locality placement (DistributedPrecompute's default). For leaves this is
  /// the leaf-packing machine; internal subgraphs are packed greedy
  /// least-loaded by node count, larger first, seeded with the leaf loads so
  /// leaf-heavy machines pick up fewer hub subgraphs.
  std::vector<size_t> home_machine;

  size_t num_machines() const { return machine_hubs.size(); }

  static PlacementPlan Build(const Hierarchy& hierarchy, size_t num_machines);
};

}  // namespace dppr

#endif  // DPPR_CORE_PLACEMENT_H_
