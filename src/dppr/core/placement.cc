#include "dppr/core/placement.h"

#include <algorithm>

#include "dppr/common/macros.h"

namespace dppr {

PlacementPlan PlacementPlan::Build(const Hierarchy& hierarchy,
                                   size_t num_machines) {
  DPPR_CHECK_GE(num_machines, 1u);
  PlacementPlan plan;
  plan.machine_hubs.resize(num_machines);
  plan.machine_leaves.resize(num_machines);
  plan.own_machine.assign(hierarchy.num_nodes(), 0);

  // Eq. 7: split each subgraph's hub set evenly over machines. The rotation
  // by subgraph id spreads the remainder hubs across machines.
  for (const auto& sub : hierarchy.subgraphs()) {
    for (size_t rank = 0; rank < sub.hubs.size(); ++rank) {
      size_t machine = (rank + sub.id) % num_machines;
      NodeId hub = sub.hubs[rank];
      plan.machine_hubs[machine][sub.id].push_back(hub);
      plan.own_machine[hub] = machine;  // hub's own vector = its partial
    }
  }

  // Leaf subgraphs: greedy least-loaded by node count, larger leaves first.
  std::vector<SubgraphId> leaves = hierarchy.leaves();
  std::sort(leaves.begin(), leaves.end(), [&](SubgraphId a, SubgraphId b) {
    size_t sa = hierarchy.subgraph(a).nodes.size();
    size_t sb = hierarchy.subgraph(b).nodes.size();
    if (sa != sb) return sa > sb;
    return a < b;
  });
  std::vector<size_t> leaf_load(num_machines, 0);
  for (SubgraphId leaf : leaves) {
    size_t machine = static_cast<size_t>(
        std::min_element(leaf_load.begin(), leaf_load.end()) - leaf_load.begin());
    const auto& sub = hierarchy.subgraph(leaf);
    leaf_load[machine] += sub.nodes.size();
    plan.machine_leaves[machine].push_back(leaf);
    for (NodeId u : sub.nodes) plan.own_machine[u] = machine;
  }
  return plan;
}

}  // namespace dppr
