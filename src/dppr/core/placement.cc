#include "dppr/core/placement.h"

#include <algorithm>

#include "dppr/common/macros.h"

namespace dppr {

PlacementPlan PlacementPlan::Build(const Hierarchy& hierarchy,
                                   size_t num_machines) {
  DPPR_CHECK_GE(num_machines, 1u);
  PlacementPlan plan;
  plan.machine_hubs.resize(num_machines);
  plan.machine_leaves.resize(num_machines);
  plan.own_machine.assign(hierarchy.num_nodes(), 0);

  // Eq. 7: split each subgraph's hub set evenly over machines. The rotation
  // by subgraph id spreads the remainder hubs across machines.
  for (const auto& sub : hierarchy.subgraphs()) {
    for (size_t rank = 0; rank < sub.hubs.size(); ++rank) {
      size_t machine = (rank + sub.id) % num_machines;
      NodeId hub = sub.hubs[rank];
      plan.machine_hubs[machine][sub.id].push_back(hub);
      plan.own_machine[hub] = machine;  // hub's own vector = its partial
    }
  }

  // Larger-first, lowest-machine / lowest-id tie breaks: the packing below
  // must be identical on every run (home assignments feed byte ledgers that
  // equivalence tests compare bit for bit).
  auto by_size_desc = [&](SubgraphId a, SubgraphId b) {
    size_t sa = hierarchy.subgraph(a).nodes.size();
    size_t sb = hierarchy.subgraph(b).nodes.size();
    if (sa != sb) return sa > sb;
    return a < b;
  };
  auto least_loaded = [](const std::vector<size_t>& load) {
    return static_cast<size_t>(std::min_element(load.begin(), load.end()) -
                               load.begin());
  };

  // Leaf subgraphs: greedy least-loaded by node count, larger leaves first.
  // The packing machine is also the leaf's home — it is the one machine that
  // holds the leaf's data after the offline phase.
  plan.home_machine.assign(hierarchy.num_subgraphs(), 0);
  std::vector<SubgraphId> leaves = hierarchy.leaves();
  std::sort(leaves.begin(), leaves.end(), by_size_desc);
  std::vector<size_t> load(num_machines, 0);
  for (SubgraphId leaf : leaves) {
    size_t machine = least_loaded(load);
    const auto& sub = hierarchy.subgraph(leaf);
    load[machine] += sub.nodes.size();
    plan.machine_leaves[machine].push_back(leaf);
    plan.home_machine[leaf] = machine;
    for (NodeId u : sub.nodes) plan.own_machine[u] = machine;
  }

  // Internal subgraphs (the hub compute sites): their nodes span many leaves
  // on many machines, so no machine is "where the data lives" — fall back to
  // the same greedy least-loaded packing, continuing from the leaf loads.
  std::vector<SubgraphId> internal;
  for (const auto& sub : hierarchy.subgraphs()) {
    if (!sub.children.empty()) internal.push_back(sub.id);
  }
  std::sort(internal.begin(), internal.end(), by_size_desc);
  for (SubgraphId id : internal) {
    size_t machine = least_loaded(load);
    load[machine] += hierarchy.subgraph(id).nodes.size();
    plan.home_machine[id] = machine;
  }
  return plan;
}

}  // namespace dppr
