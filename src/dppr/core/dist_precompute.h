#ifndef DPPR_CORE_DIST_PRECOMPUTE_H_
#define DPPR_CORE_DIST_PRECOMPUTE_H_

#include <memory>
#include <vector>

#include "dppr/core/placement.h"
#include "dppr/core/precompute.h"
#include "dppr/dist/cluster.h"
#include "dppr/graph/graph.h"
#include "dppr/partition/hierarchy.h"
#include "dppr/store/ppv_store.h"

namespace dppr {

/// How the offline phase assigns compute sites to vectors.
///
///  - kLocality (the default): each machine induces only the subgraphs it is
///    *home* to (PlacementPlan::home_machine — the machine whose leaf packing
///    already holds the data), computes every hub for them, and ships each
///    record to its Eq. 7 owner in one machine→machine exchange round per
///    level. Induces never cross machines; records do.
///  - kOwner: each machine induces every subgraph it owns hubs in (the
///    literal Eq. 7 reading) and sends its records coordinator-ward. Most
///    induces are remote — on a real cluster each one is a full subgraph
///    transfer — which is exactly the traffic the locality mode removes.
///
/// Both modes produce bit-identical stores, ledgers, and query answers; they
/// differ only in who computes what and which link the bytes cross.
enum class OfflinePlacement : uint8_t { kLocality = 0, kOwner = 1 };

/// "locality" or "owner" (bench row labels, demo output).
const char* OfflinePlacementName(OfflinePlacement placement);

/// Reads DPPR_OFFLINE ("locality" | "owner"); unset/empty returns `fallback`,
/// anything else dies — a typo silently falling back would un-pin every CI
/// leg that crosses this knob with transports and stores.
OfflinePlacement OfflinePlacementFromEnv(
    OfflinePlacement fallback = OfflinePlacement::kLocality);

struct DistPrecomputeOptions {
  size_t num_machines = 4;
  /// Network model the offline MultiRoundStats are priced under.
  NetworkModel network{};
  /// Run each round's machine tasks in machine order on the calling thread
  /// (fully deterministic scheduling) instead of on the process ThreadPool.
  bool sequential = false;
  /// Backend of each machine's store. Defaults to in-memory owning;
  /// DPPR_STORE=disk spills every ingested record to per-machine spill files
  /// instead, so coordinator RAM stays bounded by one record per ingest.
  StorageOptions storage = StorageOptions::FromEnv(StorageBackend::kMemoryOwned);
  /// Message layer every superstep's payloads travel over. Defaults to the
  /// in-process hand-off; DPPR_TRANSPORT=tcp moves them through real
  /// localhost sockets. Produced vectors and byte ledgers are bit-identical
  /// either way (net_equivalence_test enforces this).
  TransportOptions transport = TransportOptions::FromEnv();
  /// Compute-site policy (see OfflinePlacement). Defaults to DPPR_OFFLINE,
  /// else the locality shuffle pipeline.
  OfflinePlacement locality = OfflinePlacementFromEnv();
};

/// The paper's *distributed offline phase* (§5): plans per-machine work from
/// the hierarchy (PlacementPlan) and executes it as SimCluster supersteps —
/// one gather round of leaf local PPVs, then per hierarchy level (deepest
/// first) either one shuffle round (locality placement: each home machine
/// induces its subgraphs once, computes skeleton column + hub partial for
/// every hub, and ships each VectorRecord to its Eq. 7 owner via
/// RunExchange) or two gather rounds (owner placement: a skeleton-column
/// round and a hub-partial round, each owner inducing the subgraphs it holds
/// hubs in). Either way the record lands in its owner's PpvStore, and the
/// folded MultiRoundStats — rounds, simulated seconds, bytes shipped, with
/// shuffle traffic in its own column — are the numbers the paper's offline
/// tables measure.
///
/// The produced vectors are bit-identical to HgpaPrecomputation::Run on the
/// same hierarchy (both call the same compute kernels and the wire format
/// round-trips doubles exactly); the centralized path remains the oracle.
class DistributedPrecompute {
 public:
  struct Result {
    const Graph* graph = nullptr;
    std::shared_ptr<const Hierarchy> hierarchy;
    HgpaOptions options;
    /// Machine m's vectors, owned (deserialized from its round payloads).
    std::vector<PpvStore> stores;
    PlacementPlan plan;
    /// Which compute-site policy produced this result.
    OfflinePlacement placement = OfflinePlacement::kLocality;
    /// Offline cost report: one entry accumulated per superstep.
    MultiRoundStats offline;
    /// Per hub level (deepest first): what the level's superstep(s) induced
    /// and shipped. `remote_induces` counts induces on a machine that is not
    /// the subgraph's home (always 0 under locality placement — that is the
    /// mode's whole point). `shuffled_*` count records whose owner differed
    /// from their compute site; under owner placement nothing shuffles (the
    /// owner computed it), so those columns read 0 and the records ride the
    /// gather payloads instead (`local_*`).
    struct LevelStats {
      uint32_t level = 0;
      size_t induces = 0;
      size_t remote_induces = 0;
      size_t local_records = 0;
      size_t local_bytes = 0;
      size_t shuffled_records = 0;
      size_t shuffled_bytes = 0;
    };
    std::vector<LevelStats> levels;
    /// Σ induces across all supersteps, leaf round included.
    size_t induces = 0;
    /// Σ induces whose machine != the subgraph's home machine.
    size_t remote_induces = 0;
    /// Per-vector compute time charged to the machine that stores it (same
    /// semantics as HgpaIndex::offline_ledger on the centralized path).
    MachineTimeLedger ledger{1};

    size_t num_machines() const { return stores.size(); }
    /// Paper's space metric: max serialized bytes over machines.
    size_t MaxMachineBytes() const;
    size_t TotalBytes() const;
  };

  /// Runs the distributed offline phase for `hierarchy` over `graph`.
  /// The graph must outlive the returned Result.
  static Result Run(const Graph& graph, Hierarchy hierarchy,
                    const HgpaOptions& options, const DistPrecomputeOptions& dist);

  /// HGPA over a fresh hierarchy built with options.hierarchy.
  static Result RunHgpa(const Graph& graph, const HgpaOptions& options,
                        const DistPrecomputeOptions& dist);

  /// GPA: flat one-level partition into `num_subgraphs` parts (§3).
  static Result RunGpa(const Graph& graph, uint32_t num_subgraphs,
                       const HgpaOptions& options,
                       const DistPrecomputeOptions& dist);
};

}  // namespace dppr

#endif  // DPPR_CORE_DIST_PRECOMPUTE_H_
