#ifndef DPPR_CORE_DIST_PRECOMPUTE_H_
#define DPPR_CORE_DIST_PRECOMPUTE_H_

#include <memory>
#include <vector>

#include "dppr/core/placement.h"
#include "dppr/core/precompute.h"
#include "dppr/dist/cluster.h"
#include "dppr/graph/graph.h"
#include "dppr/partition/hierarchy.h"
#include "dppr/store/ppv_store.h"

namespace dppr {

struct DistPrecomputeOptions {
  size_t num_machines = 4;
  /// Network model the offline MultiRoundStats are priced under.
  NetworkModel network{};
  /// Run each round's machine tasks in machine order on the calling thread
  /// (fully deterministic scheduling) instead of on the process ThreadPool.
  bool sequential = false;
  /// Backend of each machine's store. Defaults to in-memory owning;
  /// DPPR_STORE=disk spills every ingested record to per-machine spill files
  /// instead, so coordinator RAM stays bounded by one record per ingest.
  StorageOptions storage = StorageOptions::FromEnv(StorageBackend::kMemoryOwned);
  /// Message layer every superstep's payloads travel over. Defaults to the
  /// in-process hand-off; DPPR_TRANSPORT=tcp moves them through real
  /// localhost sockets. Produced vectors and byte ledgers are bit-identical
  /// either way (net_equivalence_test enforces this).
  TransportOptions transport = TransportOptions::FromEnv();
};

/// The paper's *distributed offline phase* (§5): plans per-machine work from
/// the hierarchy (PlacementPlan) and executes it as SimCluster supersteps —
/// one round of leaf local PPVs, then per hierarchy level (deepest first) a
/// skeleton-column round and a hub-partial round. Each machine serializes the
/// vectors it produced as its round payload (VectorRecord wire format); the
/// coordinator ingests machine m's payload into machine m's own PpvStore.
/// The folded MultiRoundStats — rounds, simulated seconds, bytes shipped —
/// are the numbers the paper's offline tables measure.
///
/// The produced vectors are bit-identical to HgpaPrecomputation::Run on the
/// same hierarchy (both call the same compute kernels and the wire format
/// round-trips doubles exactly); the centralized path remains the oracle.
class DistributedPrecompute {
 public:
  struct Result {
    const Graph* graph = nullptr;
    std::shared_ptr<const Hierarchy> hierarchy;
    HgpaOptions options;
    /// Machine m's vectors, owned (deserialized from its round payloads).
    std::vector<PpvStore> stores;
    PlacementPlan plan;
    /// Offline cost report: one entry accumulated per superstep.
    MultiRoundStats offline;
    /// Per-vector compute time charged to the machine that stores it (same
    /// semantics as HgpaIndex::offline_ledger on the centralized path).
    MachineTimeLedger ledger{1};

    size_t num_machines() const { return stores.size(); }
    /// Paper's space metric: max serialized bytes over machines.
    size_t MaxMachineBytes() const;
    size_t TotalBytes() const;
  };

  /// Runs the distributed offline phase for `hierarchy` over `graph`.
  /// The graph must outlive the returned Result.
  static Result Run(const Graph& graph, Hierarchy hierarchy,
                    const HgpaOptions& options, const DistPrecomputeOptions& dist);

  /// HGPA over a fresh hierarchy built with options.hierarchy.
  static Result RunHgpa(const Graph& graph, const HgpaOptions& options,
                        const DistPrecomputeOptions& dist);

  /// GPA: flat one-level partition into `num_subgraphs` parts (§3).
  static Result RunGpa(const Graph& graph, uint32_t num_subgraphs,
                       const HgpaOptions& options,
                       const DistPrecomputeOptions& dist);
};

}  // namespace dppr

#endif  // DPPR_CORE_DIST_PRECOMPUTE_H_
