#include "dppr/core/routing.h"

#include <algorithm>
#include <cstdio>
#include <string>

#include "dppr/common/env.h"
#include "dppr/common/macros.h"
#include "dppr/core/hgpa.h"

namespace dppr {

const char* RoutingModeName(RoutingMode mode) {
  switch (mode) {
    case RoutingMode::kRoute:
      return "route";
    case RoutingMode::kBroadcast:
      return "broadcast";
  }
  DPPR_CHECK(false);
  return nullptr;
}

RoutingOptions RoutingOptions::FromEnv(RoutingMode fallback) {
  RoutingOptions options;
  options.mode = fallback;
  std::string mode = GetEnvString("DPPR_ROUTING", "");
  if (mode == "route") {
    options.mode = RoutingMode::kRoute;
  } else if (mode == "broadcast") {
    options.mode = RoutingMode::kBroadcast;
  } else if (!mode.empty()) {
    // A typo must not silently serve under the wrong fan-out.
    std::fprintf(stderr, "unknown DPPR_ROUTING value: %s\n", mode.c_str());
    DPPR_CHECK(mode == "route" || mode == "broadcast");
  }
  return options;
}

QueryRouter::QueryRouter(const HgpaIndex& index)
    : hierarchy_(index.shared_hierarchy()),
      num_machines_(index.num_machines()),
      own_machine_(index.own_machine()) {
  sub_contributors_.resize(hierarchy_->num_subgraphs());
  for (size_t m = 0; m < num_machines_; ++m) {
    for (const auto& [sub, hubs] : index.hubs_on_machine(m)) {
      bool absorbable = true;
      for (NodeId hub : hubs) {
        if (!index.hub_replicated(sub, hub)) {
          absorbable = false;
          break;
        }
      }
      sub_contributors_[sub].push_back(
          {static_cast<uint32_t>(m), static_cast<uint8_t>(absorbable)});
    }
  }
  for (auto& contributors : sub_contributors_) {
    std::sort(contributors.begin(), contributors.end(),
              [](const SubContributor& a, const SubContributor& b) {
                return a.machine < b.machine;
              });
  }
  own_term_replicated_.assign(hierarchy_->num_nodes(), 0);
  for (NodeId u = 0; u < hierarchy_->num_nodes(); ++u) {
    // A hub's own term is its (unadjusted) partial vector — replicated iff
    // its hub pair is. Leaf own vectors only ever live on their own machine.
    if (hierarchy_->is_hub(u) &&
        index.hub_replicated(hierarchy_->final_subgraph(u), u)) {
      own_term_replicated_[u] = 1;
    }
  }
}

QueryRouter::Plan QueryRouter::Route(std::span<const NodeId> sources) const {
  // Per machine: 0 = no vector of this query, 1 = contributes but every
  // needed vector is replicated (fold can run anywhere), 2 = must run.
  std::vector<uint8_t> state(num_machines_, 0);
  for (NodeId u : sources) {
    DPPR_CHECK_LT(u, own_machine_.size());
    for (SubgraphId sub : hierarchy_->Chain(u)) {
      for (const SubContributor& c : sub_contributors_[sub]) {
        const uint8_t need = c.absorbable ? 1 : 2;
        if (state[c.machine] < need) state[c.machine] = need;
      }
    }
    const size_t own = own_machine_[u];
    const uint8_t need = own_term_replicated_[u] ? 1 : 2;
    if (state[own] < need) state[own] = need;
  }

  Plan plan;
  std::vector<size_t> absorbable;
  for (size_t m = 0; m < num_machines_; ++m) {
    if (state[m] == 2) {
      plan.machines.push_back(m);
    } else if (state[m] == 1) {
      absorbable.push_back(m);
    }
  }
  plan.contributors = plan.machines.size() + absorbable.size();
  if (plan.contributors == 0) return plan;

  // Absorbed owners fold on the anchor machine (from its replicas) but ship
  // as separate per-owner fragments, so the coordinator's owner-order
  // reduce — and therefore the floating-point sum — matches broadcast
  // exactly. Anchor preference: the first source's own-vector machine when
  // it must run anyway (its store is warm for this query), else the lowest
  // must-run machine, else — everything replicated — the own-vector machine
  // alone serves the whole query.
  size_t anchor;
  if (plan.machines.empty()) {
    anchor = own_machine_[sources.front()];
    plan.machines.push_back(anchor);
  } else {
    const size_t preferred = own_machine_[sources.front()];
    anchor = state[preferred] == 2 ? preferred : plan.machines.front();
  }
  plan.owners.resize(plan.machines.size());
  size_t anchor_slot = 0;
  for (size_t i = 0; i < plan.machines.size(); ++i) {
    plan.owners[i].push_back(plan.machines[i]);
    if (plan.machines[i] == anchor) anchor_slot = i;
  }
  if (!absorbable.empty()) {
    std::vector<size_t>& anchor_owners = plan.owners[anchor_slot];
    for (size_t m : absorbable) {
      if (m != anchor) anchor_owners.push_back(m);
    }
    std::sort(anchor_owners.begin(), anchor_owners.end());
  }
  return plan;
}

}  // namespace dppr
