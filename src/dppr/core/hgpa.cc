#include "dppr/core/hgpa.h"

#include <algorithm>
#include <numeric>

#include "dppr/common/serialize.h"
#include "dppr/common/timer.h"
#include "dppr/ppr/sparse_vector.h"

namespace dppr {

HgpaIndex HgpaIndex::Distribute(
    std::shared_ptr<const HgpaPrecomputation> precomputation,
    size_t num_machines) {
  DPPR_CHECK(precomputation != nullptr);
  DPPR_CHECK_GE(num_machines, 1u);

  HgpaIndex index;
  index.precomputation_ = std::move(precomputation);
  const HgpaPrecomputation& pre = *index.precomputation_;
  const Hierarchy& hierarchy = pre.hierarchy();

  index.stores_.resize(num_machines);
  index.machine_hubs_.resize(num_machines);
  index.own_machine_.assign(hierarchy.num_nodes(), 0);
  index.offline_ = MachineTimeLedger(num_machines);

  auto place = [&](VectorKind kind, SubgraphId sub, NodeId node, size_t machine) {
    const HgpaPrecomputation::Item* item = pre.FindItem(kind, sub, node);
    DPPR_CHECK(item != nullptr);
    index.stores_[machine].Put(kind, sub, node, &item->vec, item->bytes);
    index.offline_.Add(machine, item->seconds);
  };

  // Eq. 7: split each subgraph's hub set evenly over machines. The rotation
  // by subgraph id spreads the remainder hubs across machines.
  for (const auto& sub : hierarchy.subgraphs()) {
    for (size_t rank = 0; rank < sub.hubs.size(); ++rank) {
      size_t machine = (rank + sub.id) % num_machines;
      NodeId hub = sub.hubs[rank];
      place(VectorKind::kHubPartial, sub.id, hub, machine);
      place(VectorKind::kSkeletonColumn, sub.id, hub, machine);
      index.machine_hubs_[machine][sub.id].push_back(hub);
      index.own_machine_[hub] = machine;  // hub's own vector = its partial
    }
  }

  // Leaf subgraphs: greedy least-loaded by node count ("distribute the leaf
  // level subgraphs evenly", §4.4). Larger leaves first.
  std::vector<SubgraphId> leaves = hierarchy.leaves();
  std::sort(leaves.begin(), leaves.end(), [&](SubgraphId a, SubgraphId b) {
    size_t sa = hierarchy.subgraph(a).nodes.size();
    size_t sb = hierarchy.subgraph(b).nodes.size();
    if (sa != sb) return sa > sb;
    return a < b;
  });
  std::vector<size_t> leaf_load(num_machines, 0);
  for (SubgraphId leaf : leaves) {
    size_t machine = static_cast<size_t>(
        std::min_element(leaf_load.begin(), leaf_load.end()) - leaf_load.begin());
    const auto& sub = hierarchy.subgraph(leaf);
    leaf_load[machine] += sub.nodes.size();
    for (NodeId u : sub.nodes) {
      place(VectorKind::kOwnVector, leaf, u, machine);
      index.own_machine_[u] = machine;
    }
  }
  return index;
}

size_t HgpaIndex::MaxMachineBytes() const {
  size_t max = 0;
  for (const auto& store : stores_) max = std::max(max, store.TotalSerializedBytes());
  return max;
}

size_t HgpaIndex::TotalBytes() const {
  size_t total = 0;
  for (const auto& store : stores_) total += store.TotalSerializedBytes();
  return total;
}

std::vector<size_t> HgpaIndex::BytesPerMachine() const {
  std::vector<size_t> bytes;
  bytes.reserve(stores_.size());
  for (const auto& store : stores_) bytes.push_back(store.TotalSerializedBytes());
  return bytes;
}

HgpaQueryEngine::HgpaQueryEngine(HgpaIndex index, NetworkModel network)
    : index_(std::move(index)), cluster_(index_.num_machines(), network) {}

std::vector<uint8_t> HgpaQueryEngine::MachineTask(
    size_t machine, std::span<const Preference> preferences) const {
  const Hierarchy& hierarchy = index_.hierarchy();
  const PpvStore& store = index_.store(machine);
  const double alpha = index_.options().ppr.alpha;

  DenseAccumulator acc(hierarchy.num_nodes());
  const auto& my_hubs = index_.hubs_on_machine(machine);

  for (const Preference& pref : preferences) {
    NodeId query = pref.node;
    double query_weight = pref.weight;
    if (query_weight == 0.0) continue;

    // Eq. 7 inner sums: for every subgraph on the query chain, fold this
    // machine's share of its hubs (Algorithm 1 lines 2-5). Stored hub partial
    // vectors carry no hub coordinates; instead each hub coordinate h of level
    // m receives the *replacement* value s_u[S_m](h) directly — by the
    // decomposition, r_u(h) = Σ_{j<m} hubsum_j(h) + s_u[S_m](h), and the
    // deeper levels never touch coordinate h again.
    for (SubgraphId sub : hierarchy.Chain(query)) {
      auto it = my_hubs.find(sub);
      if (it == my_hubs.end()) continue;
      for (NodeId hub : it->second) {
        const SparseVector* skeleton =
            store.Find(VectorKind::kSkeletonColumn, sub, hub);
        DPPR_DCHECK(skeleton != nullptr);
        double s = skeleton->ValueAt(query);
        if (s == 0.0) continue;
        // Hub-coordinate replacement: coordinate h gets its exact local PPV
        // value at this level.
        acc.Add(hub, query_weight * s);
        // Adjusted skeleton weight S_u(h) = s_u(h) - α·f_u(h) scales the
        // hub's partial vector over the non-hub coordinates.
        if (query == hub) s -= alpha;
        if (s == 0.0) continue;
        const SparseVector* partial =
            store.Find(VectorKind::kHubPartial, sub, hub);
        DPPR_DCHECK(partial != nullptr);
        acc.AddVector(*partial, query_weight * s / alpha);
      }
    }

    // Own term (Algorithm 1 lines 6-8): leaf local PPV for non-hubs, the
    // unadjusted partial vector for hubs.
    if (index_.own_vector_machine(query) == machine) {
      SubgraphId final_sub = hierarchy.final_subgraph(query);
      VectorKind kind = hierarchy.is_hub(query) ? VectorKind::kHubPartial
                                                : VectorKind::kOwnVector;
      const SparseVector* own = store.Find(kind, final_sub, query);
      DPPR_DCHECK(own != nullptr);
      acc.AddVector(*own, query_weight);
    }
  }

  ByteWriter writer;
  acc.ToSparse().SerializeTo(writer);
  return writer.Release();
}

SparseVector HgpaQueryEngine::RunDistributed(
    std::span<const Preference> preferences, QueryMetrics* metrics) const {
  SimCluster::RoundResult round = cluster_.RunRound(
      [&](size_t machine) { return MachineTask(machine, preferences); });

  WallTimer coordinator_timer;
  DenseAccumulator acc(index_.graph().num_nodes());
  for (const auto& payload : round.payloads) {
    ByteReader reader(payload.data(), payload.size());
    SparseVector fragment = SparseVector::Deserialize(reader);
    acc.AddVector(fragment, 1.0);
  }
  SparseVector ppv = acc.ToSparse();
  round.metrics.coordinator_seconds = coordinator_timer.ElapsedSeconds();

  if (metrics != nullptr) {
    metrics->max_machine_seconds = round.metrics.MaxMachineSeconds();
    metrics->coordinator_seconds = round.metrics.coordinator_seconds;
    metrics->simulated_seconds = round.metrics.SimulatedSeconds(cluster_.network());
    metrics->comm = round.metrics.to_coordinator;
  }
  return ppv;
}

SparseVector HgpaQueryEngine::Query(NodeId query, QueryMetrics* metrics) const {
  DPPR_CHECK_LT(query, index_.graph().num_nodes());
  Preference single{query, 1.0};
  return RunDistributed({&single, 1}, metrics);
}

SparseVector HgpaQueryEngine::QueryPreferenceSet(
    std::span<const Preference> preferences, QueryMetrics* metrics) const {
  for (const Preference& p : preferences) {
    DPPR_CHECK_LT(p.node, index_.graph().num_nodes());
  }
  return RunDistributed(preferences, metrics);
}

std::vector<double> HgpaQueryEngine::QueryDense(NodeId query,
                                                QueryMetrics* metrics) const {
  SparseVector sparse = Query(query, metrics);
  std::vector<double> dense(index_.graph().num_nodes(), 0.0);
  sparse.AddScaledTo(dense, 1.0);
  return dense;
}

}  // namespace dppr
