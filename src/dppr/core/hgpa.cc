#include "dppr/core/hgpa.h"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <utility>

#include "dppr/common/env.h"
#include "dppr/common/serialize.h"
#include "dppr/common/timer.h"
#include "dppr/ppr/sparse_vector.h"

namespace dppr {
namespace {

/// DPPR_PREFETCH=on|off (default on). A typo must not silently serve
/// unprefetched — same refuse-to-guess policy as DPPR_STORE.
bool PrefetchEnabledFromEnv() {
  std::string value = GetEnvString("DPPR_PREFETCH", "on");
  if (value == "on") return true;
  if (value == "off") return false;
  DPPR_CHECK(false && "DPPR_PREFETCH must be \"on\" or \"off\"");
  return true;
}

}  // namespace

ReplicationOptions ReplicationOptions::FromEnv() {
  ReplicationOptions options;
  int64_t budget = GetEnvInt("DPPR_REPLICATE_BYTES", 0);
  DPPR_CHECK_GE(budget, 0);
  options.budget_bytes = static_cast<size_t>(budget);
  return options;
}

HgpaIndex HgpaIndex::Distribute(
    std::shared_ptr<const HgpaPrecomputation> precomputation,
    size_t num_machines, const StorageOptions& storage,
    const ReplicationOptions& replication) {
  DPPR_CHECK(precomputation != nullptr);
  DPPR_CHECK_GE(num_machines, 1u);

  HgpaIndex index;
  index.precomputation_ = std::move(precomputation);
  const HgpaPrecomputation& pre = *index.precomputation_;
  // Aliasing share: the hierarchy lives inside the precomputation, which the
  // index keeps alive for its own lifetime.
  index.hierarchy_ = std::shared_ptr<const Hierarchy>(index.precomputation_,
                                                      &pre.hierarchy());
  index.graph_ = &pre.graph();
  index.options_ = pre.options();
  const Hierarchy& hierarchy = *index.hierarchy_;

  PlacementPlan plan = PlacementPlan::Build(hierarchy, num_machines);
  index.stores_.reserve(num_machines);
  for (size_t m = 0; m < num_machines; ++m) index.stores_.emplace_back(storage);
  index.offline_ = MachineTimeLedger(num_machines);

  auto place = [&](VectorKind kind, SubgraphId sub, NodeId node, size_t machine) {
    const HgpaPrecomputation::Item* item = pre.FindItem(kind, sub, node);
    DPPR_CHECK(item != nullptr);
    index.stores_[machine].Put(kind, sub, node, &item->vec, item->bytes);
    index.offline_.Add(machine, item->seconds);
  };

  // Walk the hierarchy in subgraph order (not the plan's hash-map order) so
  // the ledger's floating-point sums are deterministic across runs.
  for (const auto& sub : hierarchy.subgraphs()) {
    for (NodeId hub : sub.hubs) {
      size_t machine = plan.own_machine[hub];
      place(VectorKind::kHubPartial, sub.id, hub, machine);
      place(VectorKind::kSkeletonColumn, sub.id, hub, machine);
    }
  }
  for (SubgraphId leaf : hierarchy.leaves()) {
    for (NodeId u : hierarchy.subgraph(leaf).nodes) {
      place(VectorKind::kOwnVector, leaf, u, plan.own_machine[u]);
    }
  }

  index.machine_hubs_ = std::move(plan.machine_hubs);
  index.own_machine_ = std::move(plan.own_machine);
  index.ReplicateHotShards(replication);
  return index;
}

HgpaIndex HgpaIndex::FromDistributed(DistributedPrecompute::Result result,
                                     const ReplicationOptions& replication) {
  DPPR_CHECK(result.graph != nullptr);
  DPPR_CHECK(result.hierarchy != nullptr);
  DPPR_CHECK_GE(result.stores.size(), 1u);

  HgpaIndex index;
  index.graph_ = result.graph;
  index.hierarchy_ = std::move(result.hierarchy);
  index.options_ = result.options;
  index.stores_ = std::move(result.stores);
  index.machine_hubs_ = std::move(result.plan.machine_hubs);
  index.own_machine_ = std::move(result.plan.own_machine);
  index.offline_ = std::move(result.ledger);
  index.ReplicateHotShards(replication);
  return index;
}

void HgpaIndex::ReplicateHotShards(const ReplicationOptions& replication) {
  if (replication.budget_bytes == 0 || stores_.size() <= 1) return;
  // Routing can only skip (or absorb) a machine for a chain subgraph when
  // EVERY hub that machine owns in the subgraph is replicated — a partial
  // group still forces the machine into the round. So replication packs
  // whole (subgraph, owner) hub groups. Heat proxy: a subgraph's reach —
  // the nodes whose query chain passes through it is exactly its node set,
  // so high-level groups that sit on every chain score highest — divided by
  // the group's bytes (most fan-out reduction per replicated byte).
  struct Group {
    double score;
    SubgraphId sub;
    uint32_t owner;
    size_t bytes;
  };
  std::vector<Group> groups;
  for (size_t m = 0; m < stores_.size(); ++m) {
    for (const auto& [sub, hubs] : machine_hubs_[m]) {
      size_t bytes = 0;
      for (NodeId hub : hubs) {
        PpvPair pair = stores_[m].FindPair(sub, hub);
        DPPR_CHECK(pair.skeleton);
        DPPR_CHECK(pair.partial);
        bytes += pair.skeleton->SerializedBytes() +
                 pair.partial->SerializedBytes();
      }
      const double reach =
          static_cast<double>(hierarchy_->subgraph(sub).nodes.size());
      groups.push_back({reach / static_cast<double>(bytes), sub,
                        static_cast<uint32_t>(m), bytes});
    }
  }
  // (sub, owner) is unique, so the order is total and every machine
  // replicates the same set regardless of hash-map iteration order.
  std::sort(groups.begin(), groups.end(), [](const Group& a, const Group& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.sub != b.sub) return a.sub < b.sub;
    return a.owner < b.owner;
  });
  for (const Group& g : groups) {
    // Groups are replicated whole or not at all; an oversized group is
    // skipped and packing continues with the smaller ones behind it.
    if (replica_bytes_ + g.bytes > replication.budget_bytes) continue;
    for (NodeId hub : machine_hubs_[g.owner].at(g.sub)) {
      PpvPair pair = stores_[g.owner].FindPair(g.sub, hub);
      const size_t skeleton_bytes = pair.skeleton->SerializedBytes();
      const size_t partial_bytes = pair.partial->SerializedBytes();
      for (size_t m = 0; m < stores_.size(); ++m) {
        if (m == g.owner) continue;
        stores_[m].PutOwned(VectorKind::kSkeletonColumn, g.sub, hub,
                            *pair.skeleton, skeleton_bytes);
        stores_[m].PutOwned(VectorKind::kHubPartial, g.sub, hub,
                            *pair.partial, partial_bytes);
      }
      replicated_hubs_.insert(
          MakeVectorKey(VectorKind::kHubPartial, g.sub, hub));
    }
    replica_bytes_ += g.bytes;
  }
}

size_t HgpaIndex::MaxMachineBytes() const {
  size_t max = 0;
  for (const auto& store : stores_) max = std::max(max, store.TotalSerializedBytes());
  return max;
}

size_t HgpaIndex::TotalBytes() const {
  size_t total = 0;
  for (const auto& store : stores_) total += store.TotalSerializedBytes();
  return total;
}

std::vector<size_t> HgpaIndex::BytesPerMachine() const {
  std::vector<size_t> bytes;
  bytes.reserve(stores_.size());
  for (const auto& store : stores_) bytes.push_back(store.TotalSerializedBytes());
  return bytes;
}

StorageStats HgpaIndex::StorageStatsTotal() const {
  StorageStats total;
  for (const auto& store : stores_) total += store.storage_stats();
  return total;
}

size_t HgpaIndex::ResidentBytesTotal() const {
  size_t total = 0;
  for (const auto& store : stores_) total += store.ResidentBytes();
  return total;
}

HgpaQueryEngine::HgpaQueryEngine(HgpaIndex index, NetworkModel network,
                                 TransportOptions transport,
                                 RoutingOptions routing)
    : index_(std::move(index)),
      cluster_(index_.num_machines(), network, /*sequential=*/false, transport),
      prefetch_enabled_(PrefetchEnabledFromEnv()) {
  if (routing.mode == RoutingMode::kRoute) {
    router_ = std::make_shared<const QueryRouter>(index_);
  }
}

void HgpaQueryEngine::CollectOwnerKeys(size_t owner,
                                       std::span<const Preference> preferences,
                                       std::vector<uint64_t>& keys) const {
  const Hierarchy& hierarchy = index_.hierarchy();
  const auto& owner_hubs = index_.hubs_on_machine(owner);
  for (const Preference& pref : preferences) {
    if (pref.weight == 0.0) continue;
    NodeId query = pref.node;
    for (SubgraphId sub : hierarchy.Chain(query)) {
      auto it = owner_hubs.find(sub);
      if (it == owner_hubs.end()) continue;
      for (NodeId hub : it->second) {
        keys.push_back(MakeVectorKey(VectorKind::kSkeletonColumn, sub, hub));
        keys.push_back(MakeVectorKey(VectorKind::kHubPartial, sub, hub));
      }
    }
    if (index_.own_vector_machine(query) == owner) {
      SubgraphId final_sub = hierarchy.final_subgraph(query);
      VectorKind kind = hierarchy.is_hub(query) ? VectorKind::kHubPartial
                                                : VectorKind::kOwnVector;
      keys.push_back(MakeVectorKey(kind, final_sub, query));
    }
  }
}

std::vector<uint64_t> HgpaQueryEngine::CollectBatchKeys(
    size_t machine, std::span<const std::span<const Preference>> queries) const {
  std::vector<uint64_t> keys;
  for (std::span<const Preference> preferences : queries) {
    CollectOwnerKeys(machine, preferences, keys);
  }
  return keys;
}

std::vector<uint8_t> HgpaQueryEngine::MachineTask(
    size_t machine, std::span<const std::span<const Preference>> queries) const {
  // Pull the batch's cold extents in up front with sorted, coalesced reads:
  // without this every miss preads one extent inside the fold, serialized
  // per hub. Only the disk backend has anything to load, so the in-memory
  // backends skip the key enumeration entirely.
  const PpvStore& store = index_.store(machine);
  if (prefetch_enabled_ && store.backend() == StorageBackend::kDisk) {
    store.Prefetch(CollectBatchKeys(machine, queries));
  }
  // One accumulator reused across the batch (Clear is O(touched)); the
  // payload concatenates one serialized fragment per query, in query order.
  DenseAccumulator acc(index_.hierarchy().num_nodes());
  ByteWriter writer;
  for (std::span<const Preference> preferences : queries) {
    AccumulateOwner(machine, machine, preferences, acc);
    acc.ToSparse().SerializeTo(writer);
    acc.Clear();
  }
  return writer.Release();
}

std::vector<uint8_t> HgpaQueryEngine::RoutedMachineTask(
    size_t machine, std::span<const std::span<const Preference>> queries,
    std::span<const QueryRouter::Plan> plans) const {
  // Which slot of each plan this machine fills (SIZE_MAX = not targeted).
  auto slot_of = [&](const QueryRouter::Plan& plan) -> size_t {
    auto it = std::lower_bound(plan.machines.begin(), plan.machines.end(),
                               machine);
    if (it == plan.machines.end() || *it != machine) return SIZE_MAX;
    return static_cast<size_t>(it - plan.machines.begin());
  };

  const PpvStore& store = index_.store(machine);
  if (prefetch_enabled_ && store.backend() == StorageBackend::kDisk) {
    std::vector<uint64_t> keys;
    for (size_t q = 0; q < queries.size(); ++q) {
      const size_t slot = slot_of(plans[q]);
      if (slot == SIZE_MAX) continue;
      for (size_t owner : plans[q].owners[slot]) {
        CollectOwnerKeys(owner, queries[q], keys);
      }
    }
    store.Prefetch(keys);
  }

  DenseAccumulator acc(index_.hierarchy().num_nodes());
  ByteWriter writer;
  for (size_t q = 0; q < queries.size(); ++q) {
    const size_t slot = slot_of(plans[q]);
    if (slot == SIZE_MAX) continue;
    // One fragment per covered owner, each folded with the exact loop the
    // owner itself would run — absorbed owners differ only in which store
    // the (replicated) vectors are read from, never in fold order.
    for (size_t owner : plans[q].owners[slot]) {
      AccumulateOwner(machine, owner, queries[q], acc);
      acc.ToSparse().SerializeTo(writer);
      acc.Clear();
    }
  }
  return writer.Release();
}

void HgpaQueryEngine::AccumulateOwner(size_t machine, size_t owner,
                                      std::span<const Preference> preferences,
                                      DenseAccumulator& acc) const {
  const Hierarchy& hierarchy = index_.hierarchy();
  const PpvStore& store = index_.store(machine);
  const double alpha = index_.options().ppr.alpha;

  const auto& my_hubs = index_.hubs_on_machine(owner);

  for (const Preference& pref : preferences) {
    NodeId query = pref.node;
    double query_weight = pref.weight;
    if (query_weight == 0.0) continue;

    // Eq. 7 inner sums: for every subgraph on the query chain, fold this
    // machine's share of its hubs (Algorithm 1 lines 2-5). Stored hub partial
    // vectors carry no hub coordinates; instead each hub coordinate h of level
    // m receives the *replacement* value s_u[S_m](h) directly — by the
    // decomposition, r_u(h) = Σ_{j<m} hubsum_j(h) + s_u[S_m](h), and the
    // deeper levels never touch coordinate h again.
    for (SubgraphId sub : hierarchy.Chain(query)) {
      auto it = my_hubs.find(sub);
      if (it == my_hubs.end()) continue;
      for (NodeId hub : it->second) {
        // One paired probe resolves both hub vectors (a hub placed here
        // always stores its skeleton column and partial together). PpvRef
        // pins keep each vector resident for exactly the fold that uses it —
        // under the disk backend the residency cache may evict it the moment
        // the pin drops.
        PpvPair hub_vectors = store.FindPair(sub, hub);
        DPPR_DCHECK(hub_vectors.skeleton);
        DPPR_DCHECK(hub_vectors.partial);
        double s = hub_vectors.skeleton->ValueAt(query);
        if (s == 0.0) continue;
        // Hub-coordinate replacement: coordinate h gets its exact local PPV
        // value at this level.
        acc.Add(hub, query_weight * s);
        // Adjusted skeleton weight S_u(h) = s_u(h) - α·f_u(h) scales the
        // hub's partial vector over the non-hub coordinates.
        if (query == hub) s -= alpha;
        if (s == 0.0) continue;
        acc.AddVector(*hub_vectors.partial, query_weight * s / alpha);
      }
    }

    // Own term (Algorithm 1 lines 6-8): leaf local PPV for non-hubs, the
    // unadjusted partial vector for hubs.
    if (index_.own_vector_machine(query) == owner) {
      SubgraphId final_sub = hierarchy.final_subgraph(query);
      VectorKind kind = hierarchy.is_hub(query) ? VectorKind::kHubPartial
                                                : VectorKind::kOwnVector;
      PpvRef own = store.Find(kind, final_sub, query);
      DPPR_DCHECK(own);
      acc.AddVector(*own, query_weight);
    }
  }
}

std::vector<SparseVector> HgpaQueryEngine::RunDistributed(
    std::span<const std::span<const Preference>> queries,
    std::vector<QueryMetrics>* per_query_metrics,
    QueryMetrics* round_metrics) const {
  const size_t num_queries = queries.size();
  std::vector<SparseVector> results(num_queries);
  if (num_queries == 0) {
    // Still honor the metrics contract, so callers reusing out-params don't
    // read a previous round's numbers.
    if (round_metrics != nullptr) *round_metrics = QueryMetrics{};
    if (per_query_metrics != nullptr) per_query_metrics->clear();
    return results;
  }

  if (router_ != nullptr) {
    return RunRouted(queries, per_query_metrics, round_metrics);
  }

  SimCluster::RoundResult round = cluster_.RunRound(
      [&](size_t machine) { return MachineTask(machine, queries); });

  WallTimer coordinator_timer;
  std::vector<CommStats> per_query_comm(num_queries);
  DenseAccumulator acc(index_.graph().num_nodes());
  if (num_queries == 1) {
    // Hot single-query path: payload order is already machine order — the
    // reduce order — so fold each fragment as it is deserialized instead of
    // materializing all n fragments at once. Same AddVector sequence as the
    // batch path below, so results stay bit-identical across both.
    for (const auto& payload : round.payloads) {
      ByteReader reader(payload.data(), payload.size());
      size_t before = reader.remaining();
      acc.AddVector(SparseVector::Deserialize(reader), 1.0);
      per_query_comm[0].Record(before - reader.remaining());
      DPPR_CHECK(reader.AtEnd());
    }
    results[0] = acc.ToSparse();
  } else {
    // Split every machine payload back into its per-query fragments; fragment
    // boundaries also yield each query's own share of the round's traffic.
    std::vector<std::vector<SparseVector>> fragments(num_queries);
    for (const auto& payload : round.payloads) {
      ByteReader reader(payload.data(), payload.size());
      for (size_t q = 0; q < num_queries; ++q) {
        size_t before = reader.remaining();
        fragments[q].push_back(SparseVector::Deserialize(reader));
        per_query_comm[q].Record(before - reader.remaining());
      }
      DPPR_CHECK(reader.AtEnd());
    }
    // Reduce each query over its fragments in machine order, so the result is
    // bit-identical to the single-query path regardless of batch composition.
    for (size_t q = 0; q < num_queries; ++q) {
      for (const SparseVector& fragment : fragments[q]) acc.AddVector(fragment, 1.0);
      results[q] = acc.ToSparse();
      acc.Clear();
    }
  }
  round.metrics.coordinator_seconds = coordinator_timer.ElapsedSeconds();

  QueryMetrics shared;
  shared.max_machine_seconds = round.metrics.MaxMachineSeconds();
  shared.coordinator_seconds = round.metrics.coordinator_seconds;
  shared.simulated_seconds = round.metrics.SimulatedSeconds(cluster_.network());
  shared.comm = round.metrics.to_coordinator;
  shared.machines_contacted = index_.num_machines();
  shared.round_id = round.round_id;
  shared.machine_seconds = round.metrics.machine_seconds;
  shared.machines.resize(index_.num_machines());
  for (size_t m = 0; m < shared.machines.size(); ++m) shared.machines[m] = m;
  if (round_metrics != nullptr) *round_metrics = shared;
  if (per_query_metrics != nullptr) {
    per_query_metrics->assign(num_queries, shared);
    for (size_t q = 0; q < num_queries; ++q) {
      (*per_query_metrics)[q].comm = per_query_comm[q];
    }
  }
  return results;
}

std::vector<SparseVector> HgpaQueryEngine::RunRouted(
    std::span<const std::span<const Preference>> queries,
    std::vector<QueryMetrics>* per_query_metrics,
    QueryMetrics* round_metrics) const {
  const size_t num_queries = queries.size();
  const size_t num_machines = index_.num_machines();
  std::vector<SparseVector> results(num_queries);

  // Per-query routing plans over the nonzero-weight sources, then the round's
  // participant set: the ascending union of every plan's targets.
  std::vector<QueryRouter::Plan> plans(num_queries);
  std::vector<NodeId> sources;
  for (size_t q = 0; q < num_queries; ++q) {
    sources.clear();
    for (const Preference& pref : queries[q]) {
      if (pref.weight != 0.0) sources.push_back(pref.node);
    }
    plans[q] = router_->Route(sources);
  }
  std::vector<uint8_t> is_participant(num_machines, 0);
  for (const QueryRouter::Plan& plan : plans) {
    for (size_t m : plan.machines) is_participant[m] = 1;
  }
  std::vector<size_t> participants;
  for (size_t m = 0; m < num_machines; ++m) {
    if (is_participant[m]) participants.push_back(m);
  }

  // What broadcast would have shipped for every machine routing skipped: the
  // fixed serialization of an empty fragment.
  const uint64_t empty_fragment_bytes = SparseVector().SerializedBytes();

  QueryMetrics shared;
  std::vector<CommStats> per_query_comm(num_queries);
  if (!participants.empty()) {
    SimCluster::RoundResult round =
        cluster_.RunRoundOn(participants, [&](size_t machine) {
          return RoutedMachineTask(machine, queries, plans);
        });

    WallTimer coordinator_timer;
    // Re-walk each participant's (query, owner) serialization order to slice
    // its payload back into per-query owner fragments.
    std::vector<std::vector<std::pair<size_t, SparseVector>>> fragments(
        num_queries);
    for (size_t machine : participants) {
      const auto& payload = round.payloads[machine];
      ByteReader reader(payload.data(), payload.size());
      for (size_t q = 0; q < num_queries; ++q) {
        const QueryRouter::Plan& plan = plans[q];
        auto it = std::lower_bound(plan.machines.begin(), plan.machines.end(),
                                   machine);
        if (it == plan.machines.end() || *it != machine) continue;
        const size_t slot = static_cast<size_t>(it - plan.machines.begin());
        for (size_t owner : plan.owners[slot]) {
          size_t before = reader.remaining();
          fragments[q].emplace_back(owner, SparseVector::Deserialize(reader));
          per_query_comm[q].Record(before - reader.remaining());
        }
      }
      DPPR_CHECK(reader.AtEnd());
    }
    // Reduce every query in OWNER order — the broadcast oracle's machine
    // order. Which physical machine computed a fragment never reorders the
    // floating-point fold, and the owners broadcast would have gathered
    // empty fragments from add nothing, so results stay bit-identical.
    DenseAccumulator acc(index_.graph().num_nodes());
    for (size_t q = 0; q < num_queries; ++q) {
      std::sort(fragments[q].begin(), fragments[q].end(),
                [](const std::pair<size_t, SparseVector>& a,
                   const std::pair<size_t, SparseVector>& b) {
                  return a.first < b.first;
                });
      for (const auto& [owner, fragment] : fragments[q]) {
        acc.AddVector(fragment, 1.0);
      }
      results[q] = acc.ToSparse();
      acc.Clear();
    }
    round.metrics.coordinator_seconds = coordinator_timer.ElapsedSeconds();

    shared.max_machine_seconds = round.metrics.MaxMachineSeconds();
    shared.coordinator_seconds = round.metrics.coordinator_seconds;
    shared.simulated_seconds =
        round.metrics.SimulatedSeconds(cluster_.network());
    shared.comm = round.metrics.to_coordinator;
    shared.round_id = round.round_id;
    shared.machine_seconds = round.metrics.machine_seconds;
  }
  shared.machines = participants;
  shared.machines_contacted = participants.size();
  for (const QueryRouter::Plan& plan : plans) {
    shared.routing_bytes_saved +=
        (num_machines - plan.contributors) * empty_fragment_bytes;
  }
  if (round_metrics != nullptr) *round_metrics = shared;
  if (per_query_metrics != nullptr) {
    per_query_metrics->assign(num_queries, shared);
    for (size_t q = 0; q < num_queries; ++q) {
      QueryMetrics& m = (*per_query_metrics)[q];
      m.comm = per_query_comm[q];
      m.machines = plans[q].machines;
      m.machines_contacted = plans[q].machines.size();
      m.routing_bytes_saved =
          (num_machines - plans[q].contributors) * empty_fragment_bytes;
    }
  }
  return results;
}

SparseVector HgpaQueryEngine::Query(NodeId query, QueryMetrics* metrics) const {
  DPPR_CHECK_LT(query, index_.graph().num_nodes());
  Preference single{query, 1.0};
  std::span<const Preference> preferences{&single, 1};
  return std::move(
      RunDistributed({&preferences, 1}, nullptr, metrics).front());
}

SparseVector HgpaQueryEngine::QueryPreferenceSet(
    std::span<const Preference> preferences, QueryMetrics* metrics) const {
  for (const Preference& p : preferences) {
    DPPR_CHECK_LT(p.node, index_.graph().num_nodes());
  }
  return std::move(
      RunDistributed({&preferences, 1}, nullptr, metrics).front());
}

std::vector<SparseVector> HgpaQueryEngine::QueryPreferenceSetMany(
    std::span<const std::vector<Preference>> queries,
    std::vector<QueryMetrics>* per_query_metrics,
    QueryMetrics* round_metrics) const {
  std::vector<std::span<const Preference>> spans;
  spans.reserve(queries.size());
  for (const std::vector<Preference>& prefs : queries) {
    for (const Preference& p : prefs) {
      DPPR_CHECK_LT(p.node, index_.graph().num_nodes());
    }
    spans.emplace_back(prefs);
  }
  return RunDistributed(spans, per_query_metrics, round_metrics);
}

std::vector<double> HgpaQueryEngine::QueryDense(NodeId query,
                                                QueryMetrics* metrics) const {
  SparseVector sparse = Query(query, metrics);
  std::vector<double> dense(index_.graph().num_nodes(), 0.0);
  sparse.AddScaledTo(dense, 1.0);
  return dense;
}

}  // namespace dppr
