#include "dppr/core/hgpa.h"

#include <algorithm>
#include <numeric>

#include "dppr/common/env.h"
#include "dppr/common/serialize.h"
#include "dppr/common/timer.h"
#include "dppr/ppr/sparse_vector.h"

namespace dppr {
namespace {

/// DPPR_PREFETCH=on|off (default on). A typo must not silently serve
/// unprefetched — same refuse-to-guess policy as DPPR_STORE.
bool PrefetchEnabledFromEnv() {
  std::string value = GetEnvString("DPPR_PREFETCH", "on");
  if (value == "on") return true;
  if (value == "off") return false;
  DPPR_CHECK(false && "DPPR_PREFETCH must be \"on\" or \"off\"");
  return true;
}

}  // namespace

HgpaIndex HgpaIndex::Distribute(
    std::shared_ptr<const HgpaPrecomputation> precomputation,
    size_t num_machines, const StorageOptions& storage) {
  DPPR_CHECK(precomputation != nullptr);
  DPPR_CHECK_GE(num_machines, 1u);

  HgpaIndex index;
  index.precomputation_ = std::move(precomputation);
  const HgpaPrecomputation& pre = *index.precomputation_;
  // Aliasing share: the hierarchy lives inside the precomputation, which the
  // index keeps alive for its own lifetime.
  index.hierarchy_ = std::shared_ptr<const Hierarchy>(index.precomputation_,
                                                      &pre.hierarchy());
  index.graph_ = &pre.graph();
  index.options_ = pre.options();
  const Hierarchy& hierarchy = *index.hierarchy_;

  PlacementPlan plan = PlacementPlan::Build(hierarchy, num_machines);
  index.stores_.reserve(num_machines);
  for (size_t m = 0; m < num_machines; ++m) index.stores_.emplace_back(storage);
  index.offline_ = MachineTimeLedger(num_machines);

  auto place = [&](VectorKind kind, SubgraphId sub, NodeId node, size_t machine) {
    const HgpaPrecomputation::Item* item = pre.FindItem(kind, sub, node);
    DPPR_CHECK(item != nullptr);
    index.stores_[machine].Put(kind, sub, node, &item->vec, item->bytes);
    index.offline_.Add(machine, item->seconds);
  };

  // Walk the hierarchy in subgraph order (not the plan's hash-map order) so
  // the ledger's floating-point sums are deterministic across runs.
  for (const auto& sub : hierarchy.subgraphs()) {
    for (NodeId hub : sub.hubs) {
      size_t machine = plan.own_machine[hub];
      place(VectorKind::kHubPartial, sub.id, hub, machine);
      place(VectorKind::kSkeletonColumn, sub.id, hub, machine);
    }
  }
  for (SubgraphId leaf : hierarchy.leaves()) {
    for (NodeId u : hierarchy.subgraph(leaf).nodes) {
      place(VectorKind::kOwnVector, leaf, u, plan.own_machine[u]);
    }
  }

  index.machine_hubs_ = std::move(plan.machine_hubs);
  index.own_machine_ = std::move(plan.own_machine);
  return index;
}

HgpaIndex HgpaIndex::FromDistributed(DistributedPrecompute::Result result) {
  DPPR_CHECK(result.graph != nullptr);
  DPPR_CHECK(result.hierarchy != nullptr);
  DPPR_CHECK_GE(result.stores.size(), 1u);

  HgpaIndex index;
  index.graph_ = result.graph;
  index.hierarchy_ = std::move(result.hierarchy);
  index.options_ = result.options;
  index.stores_ = std::move(result.stores);
  index.machine_hubs_ = std::move(result.plan.machine_hubs);
  index.own_machine_ = std::move(result.plan.own_machine);
  index.offline_ = std::move(result.ledger);
  return index;
}

size_t HgpaIndex::MaxMachineBytes() const {
  size_t max = 0;
  for (const auto& store : stores_) max = std::max(max, store.TotalSerializedBytes());
  return max;
}

size_t HgpaIndex::TotalBytes() const {
  size_t total = 0;
  for (const auto& store : stores_) total += store.TotalSerializedBytes();
  return total;
}

std::vector<size_t> HgpaIndex::BytesPerMachine() const {
  std::vector<size_t> bytes;
  bytes.reserve(stores_.size());
  for (const auto& store : stores_) bytes.push_back(store.TotalSerializedBytes());
  return bytes;
}

StorageStats HgpaIndex::StorageStatsTotal() const {
  StorageStats total;
  for (const auto& store : stores_) total += store.storage_stats();
  return total;
}

size_t HgpaIndex::ResidentBytesTotal() const {
  size_t total = 0;
  for (const auto& store : stores_) total += store.ResidentBytes();
  return total;
}

HgpaQueryEngine::HgpaQueryEngine(HgpaIndex index, NetworkModel network,
                                 TransportOptions transport)
    : index_(std::move(index)),
      cluster_(index_.num_machines(), network, /*sequential=*/false, transport),
      prefetch_enabled_(PrefetchEnabledFromEnv()) {}

std::vector<uint64_t> HgpaQueryEngine::CollectBatchKeys(
    size_t machine, std::span<const std::span<const Preference>> queries) const {
  const Hierarchy& hierarchy = index_.hierarchy();
  const auto& my_hubs = index_.hubs_on_machine(machine);
  std::vector<uint64_t> keys;
  for (std::span<const Preference> preferences : queries) {
    for (const Preference& pref : preferences) {
      if (pref.weight == 0.0) continue;
      NodeId query = pref.node;
      for (SubgraphId sub : hierarchy.Chain(query)) {
        auto it = my_hubs.find(sub);
        if (it == my_hubs.end()) continue;
        for (NodeId hub : it->second) {
          keys.push_back(MakeVectorKey(VectorKind::kSkeletonColumn, sub, hub));
          keys.push_back(MakeVectorKey(VectorKind::kHubPartial, sub, hub));
        }
      }
      if (index_.own_vector_machine(query) == machine) {
        SubgraphId final_sub = hierarchy.final_subgraph(query);
        VectorKind kind = hierarchy.is_hub(query) ? VectorKind::kHubPartial
                                                  : VectorKind::kOwnVector;
        keys.push_back(MakeVectorKey(kind, final_sub, query));
      }
    }
  }
  return keys;
}

std::vector<uint8_t> HgpaQueryEngine::MachineTask(
    size_t machine, std::span<const std::span<const Preference>> queries) const {
  // Pull the batch's cold extents in up front with sorted, coalesced reads:
  // without this every miss preads one extent inside the fold, serialized
  // per hub. Only the disk backend has anything to load, so the in-memory
  // backends skip the key enumeration entirely.
  const PpvStore& store = index_.store(machine);
  if (prefetch_enabled_ && store.backend() == StorageBackend::kDisk) {
    store.Prefetch(CollectBatchKeys(machine, queries));
  }
  // One accumulator reused across the batch (Clear is O(touched)); the
  // payload concatenates one serialized fragment per query, in query order.
  DenseAccumulator acc(index_.hierarchy().num_nodes());
  ByteWriter writer;
  for (std::span<const Preference> preferences : queries) {
    AccumulateQuery(machine, preferences, acc);
    acc.ToSparse().SerializeTo(writer);
    acc.Clear();
  }
  return writer.Release();
}

void HgpaQueryEngine::AccumulateQuery(size_t machine,
                                      std::span<const Preference> preferences,
                                      DenseAccumulator& acc) const {
  const Hierarchy& hierarchy = index_.hierarchy();
  const PpvStore& store = index_.store(machine);
  const double alpha = index_.options().ppr.alpha;

  const auto& my_hubs = index_.hubs_on_machine(machine);

  for (const Preference& pref : preferences) {
    NodeId query = pref.node;
    double query_weight = pref.weight;
    if (query_weight == 0.0) continue;

    // Eq. 7 inner sums: for every subgraph on the query chain, fold this
    // machine's share of its hubs (Algorithm 1 lines 2-5). Stored hub partial
    // vectors carry no hub coordinates; instead each hub coordinate h of level
    // m receives the *replacement* value s_u[S_m](h) directly — by the
    // decomposition, r_u(h) = Σ_{j<m} hubsum_j(h) + s_u[S_m](h), and the
    // deeper levels never touch coordinate h again.
    for (SubgraphId sub : hierarchy.Chain(query)) {
      auto it = my_hubs.find(sub);
      if (it == my_hubs.end()) continue;
      for (NodeId hub : it->second) {
        // One paired probe resolves both hub vectors (a hub placed here
        // always stores its skeleton column and partial together). PpvRef
        // pins keep each vector resident for exactly the fold that uses it —
        // under the disk backend the residency cache may evict it the moment
        // the pin drops.
        PpvPair hub_vectors = store.FindPair(sub, hub);
        DPPR_DCHECK(hub_vectors.skeleton);
        DPPR_DCHECK(hub_vectors.partial);
        double s = hub_vectors.skeleton->ValueAt(query);
        if (s == 0.0) continue;
        // Hub-coordinate replacement: coordinate h gets its exact local PPV
        // value at this level.
        acc.Add(hub, query_weight * s);
        // Adjusted skeleton weight S_u(h) = s_u(h) - α·f_u(h) scales the
        // hub's partial vector over the non-hub coordinates.
        if (query == hub) s -= alpha;
        if (s == 0.0) continue;
        acc.AddVector(*hub_vectors.partial, query_weight * s / alpha);
      }
    }

    // Own term (Algorithm 1 lines 6-8): leaf local PPV for non-hubs, the
    // unadjusted partial vector for hubs.
    if (index_.own_vector_machine(query) == machine) {
      SubgraphId final_sub = hierarchy.final_subgraph(query);
      VectorKind kind = hierarchy.is_hub(query) ? VectorKind::kHubPartial
                                                : VectorKind::kOwnVector;
      PpvRef own = store.Find(kind, final_sub, query);
      DPPR_DCHECK(own);
      acc.AddVector(*own, query_weight);
    }
  }
}

std::vector<SparseVector> HgpaQueryEngine::RunDistributed(
    std::span<const std::span<const Preference>> queries,
    std::vector<QueryMetrics>* per_query_metrics,
    QueryMetrics* round_metrics) const {
  const size_t num_queries = queries.size();
  std::vector<SparseVector> results(num_queries);
  if (num_queries == 0) {
    // Still honor the metrics contract, so callers reusing out-params don't
    // read a previous round's numbers.
    if (round_metrics != nullptr) *round_metrics = QueryMetrics{};
    if (per_query_metrics != nullptr) per_query_metrics->clear();
    return results;
  }

  SimCluster::RoundResult round = cluster_.RunRound(
      [&](size_t machine) { return MachineTask(machine, queries); });

  WallTimer coordinator_timer;
  std::vector<CommStats> per_query_comm(num_queries);
  DenseAccumulator acc(index_.graph().num_nodes());
  if (num_queries == 1) {
    // Hot single-query path: payload order is already machine order — the
    // reduce order — so fold each fragment as it is deserialized instead of
    // materializing all n fragments at once. Same AddVector sequence as the
    // batch path below, so results stay bit-identical across both.
    for (const auto& payload : round.payloads) {
      ByteReader reader(payload.data(), payload.size());
      size_t before = reader.remaining();
      acc.AddVector(SparseVector::Deserialize(reader), 1.0);
      per_query_comm[0].Record(before - reader.remaining());
      DPPR_CHECK(reader.AtEnd());
    }
    results[0] = acc.ToSparse();
  } else {
    // Split every machine payload back into its per-query fragments; fragment
    // boundaries also yield each query's own share of the round's traffic.
    std::vector<std::vector<SparseVector>> fragments(num_queries);
    for (const auto& payload : round.payloads) {
      ByteReader reader(payload.data(), payload.size());
      for (size_t q = 0; q < num_queries; ++q) {
        size_t before = reader.remaining();
        fragments[q].push_back(SparseVector::Deserialize(reader));
        per_query_comm[q].Record(before - reader.remaining());
      }
      DPPR_CHECK(reader.AtEnd());
    }
    // Reduce each query over its fragments in machine order, so the result is
    // bit-identical to the single-query path regardless of batch composition.
    for (size_t q = 0; q < num_queries; ++q) {
      for (const SparseVector& fragment : fragments[q]) acc.AddVector(fragment, 1.0);
      results[q] = acc.ToSparse();
      acc.Clear();
    }
  }
  round.metrics.coordinator_seconds = coordinator_timer.ElapsedSeconds();

  QueryMetrics shared;
  shared.max_machine_seconds = round.metrics.MaxMachineSeconds();
  shared.coordinator_seconds = round.metrics.coordinator_seconds;
  shared.simulated_seconds = round.metrics.SimulatedSeconds(cluster_.network());
  shared.comm = round.metrics.to_coordinator;
  if (round_metrics != nullptr) *round_metrics = shared;
  if (per_query_metrics != nullptr) {
    per_query_metrics->assign(num_queries, shared);
    for (size_t q = 0; q < num_queries; ++q) {
      (*per_query_metrics)[q].comm = per_query_comm[q];
    }
  }
  return results;
}

SparseVector HgpaQueryEngine::Query(NodeId query, QueryMetrics* metrics) const {
  DPPR_CHECK_LT(query, index_.graph().num_nodes());
  Preference single{query, 1.0};
  std::span<const Preference> preferences{&single, 1};
  return std::move(
      RunDistributed({&preferences, 1}, nullptr, metrics).front());
}

SparseVector HgpaQueryEngine::QueryPreferenceSet(
    std::span<const Preference> preferences, QueryMetrics* metrics) const {
  for (const Preference& p : preferences) {
    DPPR_CHECK_LT(p.node, index_.graph().num_nodes());
  }
  return std::move(
      RunDistributed({&preferences, 1}, nullptr, metrics).front());
}

std::vector<SparseVector> HgpaQueryEngine::QueryPreferenceSetMany(
    std::span<const std::vector<Preference>> queries,
    std::vector<QueryMetrics>* per_query_metrics,
    QueryMetrics* round_metrics) const {
  std::vector<std::span<const Preference>> spans;
  spans.reserve(queries.size());
  for (const std::vector<Preference>& prefs : queries) {
    for (const Preference& p : prefs) {
      DPPR_CHECK_LT(p.node, index_.graph().num_nodes());
    }
    spans.emplace_back(prefs);
  }
  return RunDistributed(spans, per_query_metrics, round_metrics);
}

std::vector<double> HgpaQueryEngine::QueryDense(NodeId query,
                                                QueryMetrics* metrics) const {
  SparseVector sparse = Query(query, metrics);
  std::vector<double> dense(index_.graph().num_nodes(), 0.0);
  sparse.AddScaledTo(dense, 1.0);
  return dense;
}

}  // namespace dppr
