#ifndef DPPR_CORE_ROUTING_H_
#define DPPR_CORE_ROUTING_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "dppr/partition/hierarchy.h"

namespace dppr {

class HgpaIndex;

/// How HgpaQueryEngine picks the machines of a query round.
enum class RoutingMode : uint8_t {
  /// Run the round only on machines that can contribute to the query's
  /// chains (the routing-table plan below). Answers are bit-identical to
  /// broadcast; comm and machine time shrink to the contributing shards.
  kRoute = 0,
  /// Fan every query out to all n machines — the original behavior, kept as
  /// the bit-equality oracle.
  kBroadcast = 1,
};

const char* RoutingModeName(RoutingMode mode);

/// Mode selection. `FromEnv` reads DPPR_ROUTING ("route" | "broadcast";
/// unset keeps the fallback, anything else DPPR_CHECK-fails — same
/// refuse-to-guess policy as DPPR_STORE / DPPR_TRANSPORT).
struct RoutingOptions {
  RoutingMode mode = RoutingMode::kRoute;

  static RoutingOptions FromEnv(RoutingMode fallback = RoutingMode::kRoute);
};

/// Query routing table derived from the shared placement: which machines
/// hold any vector a given source set's fold needs (the source's own-vector
/// machine plus every machine owning hubs on the source's subgraph chain,
/// via own_vector_machine + hubs_on_machine), and which of those owners'
/// vectors are replicated everywhere so their fold can be absorbed onto
/// another contributing machine instead of waking their own.
///
/// Self-contained snapshot: construction copies what it needs out of the
/// index (the hierarchy is shared, the tables are small), so a router stays
/// valid when the engine that built it is moved.
class QueryRouter {
 public:
  explicit QueryRouter(const HgpaIndex& index);

  /// One query's routed round. `machines` is the sorted set of physical
  /// machines to run; `owners[i]` lists, ascending, the logical owner
  /// machines whose fragments machines[i] computes and ships — its own,
  /// plus any fully-replicated owners absorbed onto it. Owner lists are
  /// disjoint and their union is the full contributor set, so the
  /// coordinator can fold fragments in owner order and reproduce the
  /// broadcast reduce bit for bit.
  struct Plan {
    std::vector<size_t> machines;
    std::vector<std::vector<size_t>> owners;
    /// Number of logical contributors (Σ |owners[i]|); n - contributors
    /// machines would have shipped an empty fragment under broadcast.
    size_t contributors = 0;
  };

  /// Routing plan for the nonzero-weight sources of one query. An empty
  /// `sources` (or a source set nothing holds) yields an empty plan: the
  /// round can be skipped outright, which is bit-neutral because skipped
  /// machines only ever contribute empty fragments.
  Plan Route(std::span<const NodeId> sources) const;

  size_t num_machines() const { return num_machines_; }

 private:
  /// One machine owning hubs in a subgraph; `absorbable` when every hub it
  /// owns there is replicated on all machines (its fold for this subgraph
  /// can run anywhere).
  struct SubContributor {
    uint32_t machine;
    uint8_t absorbable;
  };

  std::shared_ptr<const Hierarchy> hierarchy_;
  size_t num_machines_ = 0;
  /// Per subgraph, machine-ascending: machines owning hubs there.
  std::vector<std::vector<SubContributor>> sub_contributors_;
  /// Per node: the own term is readable on every machine (hubs whose
  /// (skeleton, partial) pair is replicated; never true for leaf own
  /// vectors, which are not replicated).
  std::vector<uint8_t> own_term_replicated_;
  std::vector<size_t> own_machine_;
};

}  // namespace dppr

#endif  // DPPR_CORE_ROUTING_H_
