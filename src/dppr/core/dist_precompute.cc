#include "dppr/core/dist_precompute.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>

#include "dppr/common/env.h"
#include "dppr/common/serialize.h"
#include "dppr/common/timer.h"
#include "dppr/graph/local_graph.h"
#include "dppr/obs/metrics.h"
#include "dppr/obs/trace.h"

namespace dppr {
namespace {

/// Registry handles for the offline phase, resolved once (same pattern as
/// cluster.cc's ClusterMetrics). The shuffle counters mirror the
/// cluster.exchange.* transport-side counters but count *records*, the unit
/// the placement policy actually routes; induce counters are the tentpole
/// metric — remote induces are the subgraph transfers a real cluster would
/// pay that locality placement removes.
struct ShuffleMetrics {
  obs::Counter* rounds;
  obs::Counter* bytes;
  obs::Counter* messages;
  obs::Counter* records;
  obs::Counter* local_records;
  obs::Counter* induces;
  obs::Counter* remote_induces;

  static const ShuffleMetrics& Get() {
    static const ShuffleMetrics metrics = [] {
      auto& r = obs::MetricsRegistry::Global();
      return ShuffleMetrics{r.GetCounter("precompute.shuffle.rounds"),
                            r.GetCounter("precompute.shuffle.bytes"),
                            r.GetCounter("precompute.shuffle.messages"),
                            r.GetCounter("precompute.shuffle.records"),
                            r.GetCounter("precompute.shuffle.local_records"),
                            r.GetCounter("precompute.induce.total"),
                            r.GetCounter("precompute.induce.remote")};
    }();
    return metrics;
  }
};

/// Serializes one record and returns its wire size (what the byte ledgers
/// and LevelStats charge for it).
size_t AppendRecord(ByteWriter& writer, VectorKind kind, SubgraphId sub,
                    NodeId node, double seconds, SparseVector vec) {
  const size_t before = writer.size();
  VectorRecord record;
  record.kind = kind;
  record.sub = sub;
  record.node = node;
  record.seconds = seconds;
  record.vec = std::move(vec);
  record.SerializeTo(writer);
  return writer.size() - before;
}

size_t Sum(const std::vector<size_t>& values) {
  size_t total = 0;
  for (size_t v : values) total += v;
  return total;
}

}  // namespace

const char* OfflinePlacementName(OfflinePlacement placement) {
  switch (placement) {
    case OfflinePlacement::kLocality:
      return "locality";
    case OfflinePlacement::kOwner:
      return "owner";
  }
  DPPR_CHECK(false);
  return nullptr;
}

OfflinePlacement OfflinePlacementFromEnv(OfflinePlacement fallback) {
  std::string mode = GetEnvString("DPPR_OFFLINE", "");
  if (mode == "locality") return OfflinePlacement::kLocality;
  if (mode == "owner") return OfflinePlacement::kOwner;
  if (!mode.empty()) {
    // Same policy as DPPR_TRANSPORT/DPPR_STORE: a typo must fail loudly, not
    // silently measure the other placement.
    std::fprintf(stderr, "unknown DPPR_OFFLINE value: %s\n", mode.c_str());
    DPPR_CHECK(mode == "locality" || mode == "owner");
  }
  return fallback;
}

size_t DistributedPrecompute::Result::MaxMachineBytes() const {
  size_t max = 0;
  for (const auto& store : stores) {
    max = std::max(max, store.TotalSerializedBytes());
  }
  return max;
}

size_t DistributedPrecompute::Result::TotalBytes() const {
  size_t total = 0;
  for (const auto& store : stores) total += store.TotalSerializedBytes();
  return total;
}

DistributedPrecompute::Result DistributedPrecompute::Run(
    const Graph& graph, Hierarchy hierarchy, const HgpaOptions& options,
    const DistPrecomputeOptions& dist) {
  const size_t num_machines = dist.num_machines;
  DPPR_CHECK_GE(num_machines, 1u);

  Result result;
  result.graph = &graph;
  result.hierarchy = std::make_shared<const Hierarchy>(std::move(hierarchy));
  result.options = options;
  result.placement = dist.locality;
  result.plan = PlacementPlan::Build(*result.hierarchy, num_machines);
  result.stores.reserve(num_machines);
  for (size_t m = 0; m < num_machines; ++m) result.stores.emplace_back(dist.storage);
  result.ledger = MachineTimeLedger(num_machines);

  const Hierarchy& h = *result.hierarchy;
  SimCluster cluster(num_machines, dist.network, dist.sequential,
                     dist.transport);
  const ShuffleMetrics& shuffle_metrics = ShuffleMetrics::Get();

  // Coordinator reduce shared by the gather supersteps: machine m's payload
  // streams record by record into machine m's store (straight to its spill
  // file under the disk backend — the coordinator never materializes a
  // machine's index in RAM), and each record's compute time is charged to
  // that machine's offline ledger. Record order within a payload is the
  // producing task's deterministic iteration order.
  auto ingest = [&](SimCluster::RoundResult& round) {
    for (size_t m = 0; m < num_machines; ++m) {
      ByteReader reader(round.payloads[m]);
      while (!reader.AtEnd()) {
        result.ledger.Add(m, result.stores[m].IngestFrom(reader));
      }
    }
  };

  // Superstep 1: leaf local PPVs. Identical in both placements — the leaf
  // packing makes every leaf's home also the owner of all its nodes, so
  // there is nothing to shuffle. The coordinator-lane spans here and below
  // name each superstep, so a DPPR_TRACE of an offline run reads as
  // leaf/skeleton/hub (or leaf/shuffle) phases over the per-machine
  // cluster.machine spans.
  {
    obs::TraceSpan span(obs::kCoordinatorLane, "precompute.leaf_superstep");
    cluster.RunRound(
        [&](size_t machine) {
          ByteWriter writer;
          for (SubgraphId leaf : result.plan.machine_leaves[machine]) {
            const HierarchySubgraph& sub = h.subgraph(leaf);
            LocalGraph lg = LocalGraph::Induce(graph, sub.nodes);
            for (NodeId u : sub.nodes) {
              WallTimer timer;
              SparseVector vec = ComputeLeafVector(lg, u, options);
              AppendRecord(writer, VectorKind::kOwnVector, leaf, u,
                           timer.ElapsedSeconds(), std::move(vec));
            }
          }
          return writer.Release();
        },
        ingest, &result.offline);
    for (size_t m = 0; m < num_machines; ++m) {
      result.induces += result.plan.machine_leaves[m].size();
    }
    shuffle_metrics.induces->Add(result.induces);
  }

  // Per hierarchy level, deepest first. Levels whose subgraphs have no hubs
  // cost nothing and are skipped entirely rather than billed as empty rounds.
  std::vector<uint32_t> hub_levels;
  for (const auto& sub : h.subgraphs()) {
    if (!sub.hubs.empty()) hub_levels.push_back(sub.level);
  }
  std::sort(hub_levels.begin(), hub_levels.end(), std::greater<>());
  hub_levels.erase(std::unique(hub_levels.begin(), hub_levels.end()),
                   hub_levels.end());

  const bool skeleton_in_edges = PrecomputeNeedsInEdges(options);
  for (uint32_t level : hub_levels) {
    // Per-machine tallies written only from each machine's own slot, so the
    // parallel scheduler never races them; folded into LevelStats after the
    // round's barrier.
    std::vector<size_t> induces_m(num_machines, 0);
    std::vector<size_t> remote_m(num_machines, 0);
    std::vector<size_t> local_records_m(num_machines, 0);
    std::vector<size_t> local_bytes_m(num_machines, 0);
    std::vector<size_t> shuffled_records_m(num_machines, 0);
    std::vector<size_t> shuffled_bytes_m(num_machines, 0);

    Result::LevelStats level_stats;
    level_stats.level = level;

    if (dist.locality == OfflinePlacement::kLocality) {
      // One shuffle superstep: each machine induces its *home* subgraphs at
      // this level exactly once, computes the skeleton column and hub
      // partial for every hub of the subgraph, and routes each record to
      // the hub's Eq. 7 owner — owner == home stays in the self-addressed
      // slot (never crosses the network), everything else rides the
      // exchange. The receive side ingests (dst, src) in index order, so
      // store contents are independent of task scheduling.
      obs::TraceSpan span(obs::kCoordinatorLane,
                          "precompute.shuffle_superstep");
      span.Arg("level", level);
      SimCluster::ExchangeResult round = cluster.RunExchange(
          [&](size_t machine) {
            std::vector<ByteWriter> outbox(num_machines);
            for (const auto& sub : h.subgraphs()) {
              if (sub.level != level || sub.hubs.empty()) continue;
              if (result.plan.home_machine[sub.id] != machine) continue;
              LocalGraph lg =
                  LocalGraph::Induce(graph, sub.nodes, skeleton_in_edges);
              ++induces_m[machine];
              // ComputeHubPartial's forward push reads only out-adjacency,
              // so sharing the (possibly in-edge-bearing) skeleton induce is
              // bit-safe — same hoist the owner path below uses.
              const std::vector<NodeId> local_hubs = LocalizeHubs(lg, sub);
              for (NodeId hub : sub.hubs) {
                const size_t dst = result.plan.own_machine[hub];
                size_t bytes = 0;
                {
                  WallTimer timer;
                  SparseVector vec = ComputeSkeletonColumn(lg, hub, options);
                  bytes += AppendRecord(outbox[dst],
                                        VectorKind::kSkeletonColumn, sub.id,
                                        hub, timer.ElapsedSeconds(),
                                        std::move(vec));
                }
                {
                  WallTimer timer;
                  SparseVector vec =
                      ComputeHubPartial(lg, sub, local_hubs, hub, options);
                  bytes += AppendRecord(outbox[dst], VectorKind::kHubPartial,
                                        sub.id, hub, timer.ElapsedSeconds(),
                                        std::move(vec));
                }
                if (dst == machine) {
                  local_records_m[machine] += 2;
                  local_bytes_m[machine] += bytes;
                } else {
                  shuffled_records_m[machine] += 2;
                  shuffled_bytes_m[machine] += bytes;
                }
              }
            }
            std::vector<std::vector<uint8_t>> payloads;
            payloads.reserve(num_machines);
            for (ByteWriter& writer : outbox) payloads.push_back(writer.Release());
            return payloads;
          },
          [&](SimCluster::ExchangeResult& exchanged) {
            for (size_t dst = 0; dst < num_machines; ++dst) {
              for (size_t src = 0; src < num_machines; ++src) {
                ByteReader reader(exchanged.inboxes[dst][src]);
                while (!reader.AtEnd()) {
                  result.ledger.Add(dst, result.stores[dst].IngestFrom(reader));
                }
              }
            }
          },
          &result.offline);
      shuffle_metrics.rounds->Increment();
      shuffle_metrics.bytes->Add(round.metrics.shuffled.bytes);
      shuffle_metrics.messages->Add(round.metrics.shuffled.messages);
    } else {
      // Owner placement: the literal Eq. 7 reading — every machine induces
      // each subgraph it owns hubs in (usually not the machine holding the
      // data) and its records ride the gather payloads. Two supersteps per
      // level, sharing one induce per (machine, subgraph): the skeleton
      // superstep builds the graphs (with in-edges iff the skeleton method
      // needs them), the hub superstep reuses them.
      std::vector<std::unordered_map<SubgraphId, LocalGraph>> induced(
          num_machines);
      auto for_each_my_subgraph = [&](size_t machine, auto&& emit) {
        const auto& my_hubs = result.plan.machine_hubs[machine];
        for (const auto& sub : h.subgraphs()) {
          if (sub.level != level || sub.hubs.empty()) continue;
          auto it = my_hubs.find(sub.id);
          if (it == my_hubs.end()) continue;
          emit(sub, it->second);
        }
      };

      {
        obs::TraceSpan span(obs::kCoordinatorLane,
                            "precompute.skeleton_superstep");
        span.Arg("level", level);
        cluster.RunRound(
            [&](size_t machine) {
              ByteWriter writer;
              for_each_my_subgraph(
                  machine, [&](const HierarchySubgraph& sub,
                               const std::vector<NodeId>& hubs) {
                    LocalGraph& lg =
                        induced[machine]
                            .emplace(sub.id,
                                     LocalGraph::Induce(graph, sub.nodes,
                                                        skeleton_in_edges))
                            .first->second;
                    ++induces_m[machine];
                    if (result.plan.home_machine[sub.id] != machine) {
                      ++remote_m[machine];
                    }
                    for (NodeId hub : hubs) {
                      WallTimer timer;
                      SparseVector vec = ComputeSkeletonColumn(lg, hub, options);
                      local_bytes_m[machine] += AppendRecord(
                          writer, VectorKind::kSkeletonColumn, sub.id, hub,
                          timer.ElapsedSeconds(), std::move(vec));
                      ++local_records_m[machine];
                    }
                  });
              return writer.Release();
            },
            ingest, &result.offline);
      }

      obs::TraceSpan hub_span(obs::kCoordinatorLane,
                              "precompute.hub_partial_superstep");
      hub_span.Arg("level", level);
      cluster.RunRound(
          [&](size_t machine) {
            ByteWriter writer;
            for_each_my_subgraph(
                machine, [&](const HierarchySubgraph& sub,
                             const std::vector<NodeId>& hubs) {
                  const LocalGraph& lg = induced[machine].at(sub.id);
                  const std::vector<NodeId> local_hubs = LocalizeHubs(lg, sub);
                  for (NodeId hub : hubs) {
                    WallTimer timer;
                    SparseVector vec =
                        ComputeHubPartial(lg, sub, local_hubs, hub, options);
                    local_bytes_m[machine] += AppendRecord(
                        writer, VectorKind::kHubPartial, sub.id, hub,
                        timer.ElapsedSeconds(), std::move(vec));
                    ++local_records_m[machine];
                  }
                });
            return writer.Release();
          },
          ingest, &result.offline);
    }

    level_stats.induces = Sum(induces_m);
    level_stats.remote_induces = Sum(remote_m);
    level_stats.local_records = Sum(local_records_m);
    level_stats.local_bytes = Sum(local_bytes_m);
    level_stats.shuffled_records = Sum(shuffled_records_m);
    level_stats.shuffled_bytes = Sum(shuffled_bytes_m);
    result.induces += level_stats.induces;
    result.remote_induces += level_stats.remote_induces;
    shuffle_metrics.induces->Add(level_stats.induces);
    shuffle_metrics.remote_induces->Add(level_stats.remote_induces);
    shuffle_metrics.records->Add(level_stats.shuffled_records);
    shuffle_metrics.local_records->Add(level_stats.local_records);
    result.levels.push_back(level_stats);
  }

  return result;
}

DistributedPrecompute::Result DistributedPrecompute::RunHgpa(
    const Graph& graph, const HgpaOptions& options,
    const DistPrecomputeOptions& dist) {
  return Run(graph, Hierarchy::Build(graph, options.hierarchy), options, dist);
}

DistributedPrecompute::Result DistributedPrecompute::RunGpa(
    const Graph& graph, uint32_t num_subgraphs, const HgpaOptions& options,
    const DistPrecomputeOptions& dist) {
  Hierarchy flat =
      Hierarchy::BuildFlat(graph, num_subgraphs, options.hierarchy.partition);
  return Run(graph, std::move(flat), options, dist);
}

}  // namespace dppr
