#include "dppr/core/dist_precompute.h"

#include <algorithm>
#include <utility>

#include "dppr/common/serialize.h"
#include "dppr/common/timer.h"
#include "dppr/graph/local_graph.h"
#include "dppr/obs/trace.h"

namespace dppr {
namespace {

void AppendRecord(ByteWriter& writer, VectorKind kind, SubgraphId sub,
                  NodeId node, double seconds, SparseVector vec) {
  VectorRecord record;
  record.kind = kind;
  record.sub = sub;
  record.node = node;
  record.seconds = seconds;
  record.vec = std::move(vec);
  record.SerializeTo(writer);
}

}  // namespace

size_t DistributedPrecompute::Result::MaxMachineBytes() const {
  size_t max = 0;
  for (const auto& store : stores) {
    max = std::max(max, store.TotalSerializedBytes());
  }
  return max;
}

size_t DistributedPrecompute::Result::TotalBytes() const {
  size_t total = 0;
  for (const auto& store : stores) total += store.TotalSerializedBytes();
  return total;
}

DistributedPrecompute::Result DistributedPrecompute::Run(
    const Graph& graph, Hierarchy hierarchy, const HgpaOptions& options,
    const DistPrecomputeOptions& dist) {
  const size_t num_machines = dist.num_machines;
  DPPR_CHECK_GE(num_machines, 1u);

  Result result;
  result.graph = &graph;
  result.hierarchy = std::make_shared<const Hierarchy>(std::move(hierarchy));
  result.options = options;
  result.plan = PlacementPlan::Build(*result.hierarchy, num_machines);
  result.stores.reserve(num_machines);
  for (size_t m = 0; m < num_machines; ++m) result.stores.emplace_back(dist.storage);
  result.ledger = MachineTimeLedger(num_machines);

  const Hierarchy& h = *result.hierarchy;
  SimCluster cluster(num_machines, dist.network, dist.sequential,
                     dist.transport);

  // Coordinator reduce shared by every superstep: machine m's payload
  // streams record by record into machine m's store (straight to its spill
  // file under the disk backend — the coordinator never materializes a
  // machine's index in RAM), and each record's compute time is charged to
  // that machine's offline ledger. Record order within a payload is the
  // producing task's deterministic iteration order.
  auto ingest = [&](SimCluster::RoundResult& round) {
    for (size_t m = 0; m < num_machines; ++m) {
      ByteReader reader(round.payloads[m]);
      while (!reader.AtEnd()) {
        result.ledger.Add(m, result.stores[m].IngestFrom(reader));
      }
    }
  };

  // Superstep 1: leaf local PPVs. Each machine walks the leaves packed onto
  // it, inducing each leaf's virtual subgraph once. The coordinator-lane
  // spans here and below name each superstep, so a DPPR_TRACE of an offline
  // run reads as leaf/skeleton/hub phases over the per-machine
  // cluster.machine spans.
  {
    obs::TraceSpan span(obs::kCoordinatorLane, "precompute.leaf_superstep");
    cluster.RunRound(
        [&](size_t machine) {
          ByteWriter writer;
          for (SubgraphId leaf : result.plan.machine_leaves[machine]) {
            const HierarchySubgraph& sub = h.subgraph(leaf);
            LocalGraph lg = LocalGraph::Induce(graph, sub.nodes);
            for (NodeId u : sub.nodes) {
              WallTimer timer;
              SparseVector vec = ComputeLeafVector(lg, u, options);
              AppendRecord(writer, VectorKind::kOwnVector, leaf, u,
                           timer.ElapsedSeconds(), std::move(vec));
            }
          }
          return writer.Release();
        },
        ingest, &result.offline);
  }

  // Per hierarchy level, deepest first: a skeleton-column superstep, then a
  // hub-partial superstep. Levels whose subgraphs have no hubs cost nothing
  // and are skipped entirely rather than billed as empty rounds.
  std::vector<uint32_t> hub_levels;
  for (const auto& sub : h.subgraphs()) {
    if (!sub.hubs.empty()) hub_levels.push_back(sub.level);
  }
  std::sort(hub_levels.begin(), hub_levels.end(), std::greater<>());
  hub_levels.erase(std::unique(hub_levels.begin(), hub_levels.end()),
                   hub_levels.end());

  const bool skeleton_in_edges = PrecomputeNeedsInEdges(options);
  for (uint32_t level : hub_levels) {
    // A machine's share of one level: every subgraph at that level whose hub
    // set intersects the machine's Eq. 7 slice, hubs in rank order. The emit
    // callback gets the whole slice so per-subgraph work (inducing, hub
    // localization) happens once, not once per hub.
    auto for_each_my_subgraph = [&](size_t machine, bool build_in_edges,
                                    auto&& emit) {
      const auto& my_hubs = result.plan.machine_hubs[machine];
      for (const auto& sub : h.subgraphs()) {
        if (sub.level != level || sub.hubs.empty()) continue;
        auto it = my_hubs.find(sub.id);
        if (it == my_hubs.end()) continue;
        LocalGraph lg = LocalGraph::Induce(graph, sub.nodes, build_in_edges);
        emit(lg, sub, it->second);
      }
    };

    {
      obs::TraceSpan span(obs::kCoordinatorLane,
                          "precompute.skeleton_superstep");
      span.Arg("level", level);
      cluster.RunRound(
          [&](size_t machine) {
            ByteWriter writer;
            for_each_my_subgraph(
                machine, skeleton_in_edges,
                [&](const LocalGraph& lg, const HierarchySubgraph& sub,
                    const std::vector<NodeId>& hubs) {
                  for (NodeId hub : hubs) {
                    WallTimer timer;
                    SparseVector vec = ComputeSkeletonColumn(lg, hub, options);
                    AppendRecord(writer, VectorKind::kSkeletonColumn, sub.id,
                                 hub, timer.ElapsedSeconds(), std::move(vec));
                  }
                });
            return writer.Release();
          },
          ingest, &result.offline);
    }

    obs::TraceSpan hub_span(obs::kCoordinatorLane,
                            "precompute.hub_partial_superstep");
    hub_span.Arg("level", level);
    cluster.RunRound(
        [&](size_t machine) {
          ByteWriter writer;
          for_each_my_subgraph(
              machine, /*build_in_edges=*/false,
              [&](const LocalGraph& lg, const HierarchySubgraph& sub,
                  const std::vector<NodeId>& hubs) {
                const std::vector<NodeId> local_hubs = LocalizeHubs(lg, sub);
                for (NodeId hub : hubs) {
                  WallTimer timer;
                  SparseVector vec =
                      ComputeHubPartial(lg, sub, local_hubs, hub, options);
                  AppendRecord(writer, VectorKind::kHubPartial, sub.id, hub,
                               timer.ElapsedSeconds(), std::move(vec));
                }
              });
          return writer.Release();
        },
        ingest, &result.offline);
  }

  return result;
}

DistributedPrecompute::Result DistributedPrecompute::RunHgpa(
    const Graph& graph, const HgpaOptions& options,
    const DistPrecomputeOptions& dist) {
  return Run(graph, Hierarchy::Build(graph, options.hierarchy), options, dist);
}

DistributedPrecompute::Result DistributedPrecompute::RunGpa(
    const Graph& graph, uint32_t num_subgraphs, const HgpaOptions& options,
    const DistPrecomputeOptions& dist) {
  Hierarchy flat =
      Hierarchy::BuildFlat(graph, num_subgraphs, options.hierarchy.partition);
  return Run(graph, std::move(flat), options, dist);
}

}  // namespace dppr
