#ifndef DPPR_CORE_PRECOMPUTE_H_
#define DPPR_CORE_PRECOMPUTE_H_

#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "dppr/graph/graph.h"
#include "dppr/graph/local_graph.h"
#include "dppr/partition/hierarchy.h"
#include "dppr/ppr/ppr_options.h"
#include "dppr/store/vector_record.h"

namespace dppr {

/// How skeleton columns are computed (§5.2).
enum class SkeletonMethod {
  /// Reverse local push from the hub — output-equivalent to Eq. 8 within the
  /// tolerance but touches only nodes that actually reach the hub. Default;
  /// the ablation bench quantifies the speedup.
  kReversePush,
  /// The paper's Eq. 8 per-hub fixed point (Theorem 6).
  kFixedPoint,
};

struct HgpaOptions {
  PprOptions ppr;
  HierarchyOptions hierarchy;
  SkeletonMethod skeleton_method = SkeletonMethod::kReversePush;
  /// Stored entries with |value| <= storage_prune are dropped (HGPA_ad uses
  /// 1e-4, §6.2.9). 0 keeps every non-zero entry.
  double storage_prune = 0.0;
  /// Run precomputation tasks on the process thread pool.
  bool parallel = true;
};

/// Whether LocalGraph::Induce must materialize in-adjacency for the
/// configured skeleton method.
bool PrecomputeNeedsInEdges(const HgpaOptions& options);

/// Per-vector compute kernels, shared verbatim by the centralized
/// HgpaPrecomputation::Run loop and the distributed SimCluster driver
/// (DistributedPrecompute) — both paths calling the same deterministic code
/// is what makes their outputs bit-identical. `lg` must be the virtual
/// subgraph induced on the owning subgraph's `nodes` (with in-edges for
/// ComputeSkeletonColumn under kReversePush); node arguments are global ids.

/// `sub`'s hub set mapped into `lg`'s local id space, in `sub.hubs` order.
/// Hoisted out of ComputeHubPartial so drivers localize once per subgraph,
/// not once per hub.
std::vector<NodeId> LocalizeHubs(const LocalGraph& lg,
                                 const HierarchySubgraph& sub);

/// p^H_hub[S]: forward push blocked at `sub`'s hub set (`local_hubs` =
/// LocalizeHubs(lg, sub)), lifted to global ids, with all hub coordinates
/// dropped (reconstructed from skeleton columns at query time).
SparseVector ComputeHubPartial(const LocalGraph& lg, const HierarchySubgraph& sub,
                               std::span<const NodeId> local_hubs, NodeId hub,
                               const HgpaOptions& options);

/// Skeleton column s_.[S](hub) via the configured method.
SparseVector ComputeSkeletonColumn(const LocalGraph& lg, NodeId hub,
                                   const HgpaOptions& options);

/// Leaf local PPV r_node[leaf] (unblocked push on the leaf's virtual subgraph).
SparseVector ComputeLeafVector(const LocalGraph& lg, NodeId node,
                               const HgpaOptions& options);

/// Placement-independent precomputation: all partial vectors, skeleton
/// columns and leaf vectors of a hierarchy, with per-vector compute time and
/// serialized size. The same precomputation can be distributed onto any
/// machine count (placement does not change the vectors), which is how the
/// machine-sweep experiments avoid recomputing.
class HgpaPrecomputation {
 public:
  struct Item {
    VectorKind kind;
    SubgraphId sub = kInvalidSubgraph;
    NodeId node = kInvalidNode;  // hub id for partial/skeleton, owner for own
    SparseVector vec;            // entries indexed by *global* node id
    double seconds = 0.0;        // compute time of this vector
    size_t bytes = 0;            // serialized size
  };

  /// Runs the full precomputation for `hierarchy` over `graph`.
  /// The graph must outlive the returned object.
  static std::shared_ptr<const HgpaPrecomputation> Run(const Graph& graph,
                                                       Hierarchy hierarchy,
                                                       const HgpaOptions& options);

  /// HGPA over a fresh hierarchy built with options.hierarchy.
  static std::shared_ptr<const HgpaPrecomputation> RunHgpa(
      const Graph& graph, const HgpaOptions& options);

  /// GPA: a flat one-level partition into `num_subgraphs` parts (§3). The
  /// same query machinery then implements Eq. 5 exactly.
  static std::shared_ptr<const HgpaPrecomputation> RunGpa(
      const Graph& graph, uint32_t num_subgraphs, const HgpaOptions& options);

  const Graph& graph() const { return *graph_; }
  const Hierarchy& hierarchy() const { return hierarchy_; }
  const HgpaOptions& options() const { return options_; }
  const std::vector<Item>& items() const { return items_; }

  const Item* FindItem(VectorKind kind, SubgraphId sub, NodeId node) const;

  /// Sum of per-item compute seconds (single-machine offline cost).
  double total_seconds() const { return total_seconds_; }
  size_t TotalBytes() const;

  /// Copy with every stored vector pruned at `threshold` (HGPA_ad). Compute
  /// times are inherited: pruning is a storage-time filter, not a recompute.
  std::shared_ptr<const HgpaPrecomputation> PrunedCopy(double threshold) const;

 private:
  HgpaPrecomputation() = default;

  const Graph* graph_ = nullptr;
  Hierarchy hierarchy_;
  HgpaOptions options_;
  std::vector<Item> items_;
  std::unordered_map<uint64_t, size_t> index_;
  double total_seconds_ = 0.0;
};

}  // namespace dppr

#endif  // DPPR_CORE_PRECOMPUTE_H_
