#ifndef DPPR_CORE_HGPA_H_
#define DPPR_CORE_HGPA_H_

#include <memory>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dppr/core/dist_precompute.h"
#include "dppr/core/placement.h"
#include "dppr/core/precompute.h"
#include "dppr/core/routing.h"
#include "dppr/dist/cluster.h"
#include "dppr/ppr/sparse_vector.h"
#include "dppr/store/ppv_store.h"

namespace dppr {

/// Hot-shard replication policy. Hub (skeleton column, partial vector)
/// pairs are tiny, read-only after precompute, and sit on every query
/// chain's fold path — copying the hottest of them into every machine's
/// store lets the routed query path absorb those owners' folds onto a
/// machine that must run anyway, shrinking most routing sets toward the
/// source's own-vector machine. A pair is replicated whole (the fold needs
/// both halves; a skeleton without its partial absorbs nothing).
struct ReplicationOptions {
  /// Per-machine byte budget for replicated pairs (serialized bytes, the
  /// same ledger unit as MaxMachineBytes). 0 disables replication — the
  /// default, so byte-ledger equivalence across backends is unaffected
  /// unless explicitly asked for.
  size_t budget_bytes = 0;

  /// DPPR_REPLICATE_BYTES (bytes; unset or 0 keeps replication off).
  static ReplicationOptions FromEnv();
};

/// A precomputation distributed onto n simulated machines under a shared
/// PlacementPlan: the paper's hub-node partitioning (Eq. 7) splits every
/// subgraph's hub set evenly across machines, and leaf subgraphs are packed
/// onto machines by greedy least-loaded assignment. The same type serves GPA
/// (flat hierarchy) and HGPA (deep hierarchy), built either from a
/// centralized precomputation (stores reference its vectors) or from a
/// distributed offline run (stores own their vectors).
class HgpaIndex {
 public:
  /// Places `precomputation` onto `num_machines` machines. With the default
  /// referencing backend this is cheap relative to precomputation (vectors
  /// are shared, not copied), so machine sweeps can redistribute one
  /// precomputation many times; retained as the bit-equality oracle for the
  /// distributed offline path. `storage` picks each machine store's backend
  /// (DPPR_STORE=disk spills every placed vector to per-machine spill files).
  static HgpaIndex Distribute(
      std::shared_ptr<const HgpaPrecomputation> precomputation,
      size_t num_machines,
      const StorageOptions& storage = StorageOptions::FromEnv(),
      const ReplicationOptions& replication = ReplicationOptions::FromEnv());

  /// Adopts the machine-owned stores a DistributedPrecompute run produced
  /// (placement is already fixed by the run's PlacementPlan). The offline
  /// ledger carries the run's per-machine compute charges.
  static HgpaIndex FromDistributed(
      DistributedPrecompute::Result result,
      const ReplicationOptions& replication = ReplicationOptions::FromEnv());

  const Graph& graph() const { return *graph_; }
  const Hierarchy& hierarchy() const { return *hierarchy_; }
  const HgpaOptions& options() const { return options_; }
  size_t num_machines() const { return stores_.size(); }

  /// True when the stores own their vectors (distributed offline path);
  /// false when they reference a shared centralized precomputation.
  bool owns_vectors() const { return precomputation_ == nullptr; }

  const PpvStore& store(size_t machine) const { return stores_[machine]; }

  /// Hubs a machine is responsible for, grouped by subgraph. Query-time
  /// machine work iterates the query chain against this map.
  const std::unordered_map<SubgraphId, std::vector<NodeId>>& hubs_on_machine(
      size_t machine) const {
    return machine_hubs_[machine];
  }

  /// Machine holding u's own vector (leaf local PPV for non-hubs, the hub
  /// partial vector for hubs).
  size_t own_vector_machine(NodeId u) const { return own_machine_[u]; }

  /// Full own-vector placement table (what QueryRouter snapshots).
  const std::vector<size_t>& own_machine() const { return own_machine_; }

  /// Hierarchy as a shared handle (kept alive by the index; lets a router
  /// outlive index moves).
  std::shared_ptr<const Hierarchy> shared_hierarchy() const {
    return hierarchy_;
  }

  /// True when this hub's (skeleton, partial) pair was replicated into every
  /// machine's store under the replication budget.
  bool hub_replicated(SubgraphId sub, NodeId hub) const {
    return replicated_hubs_.count(MakeVectorKey(VectorKind::kHubPartial, sub,
                                                hub)) > 0;
  }
  /// Replicated hub pairs, and the serialized bytes each machine spends
  /// holding the other machines' replicated pairs (≤ the budget).
  size_t num_replicated_hubs() const { return replicated_hubs_.size(); }
  size_t replica_bytes_per_machine() const { return replica_bytes_; }

  /// Per-machine offline time: each vector's compute time charged to the
  /// machine that stores it (§5: "each machine only needs to handle the
  /// nodes assigned to it").
  const MachineTimeLedger& offline_ledger() const { return offline_; }

  /// Paper's space metric: max serialized bytes over machines.
  size_t MaxMachineBytes() const;
  size_t TotalBytes() const;
  std::vector<size_t> BytesPerMachine() const;

  /// Residency counters summed over machine stores (cache hits/misses and
  /// spill bytes read; all hits for in-memory backends). Safe to call while
  /// queries are in flight — this is what ServerStats' cold/warm view reads.
  StorageStats StorageStatsTotal() const;
  /// Serialized bytes currently resident in RAM across machine stores.
  size_t ResidentBytesTotal() const;

 private:
  /// Copies the hottest (subgraph, owner) hub groups — ranked by chain
  /// reach per byte, deterministic tie-break — whole into every other
  /// machine's store until the per-machine budget is full; oversized groups
  /// are skipped and packing continues.
  void ReplicateHotShards(const ReplicationOptions& replication);

  const Graph* graph_ = nullptr;
  std::shared_ptr<const Hierarchy> hierarchy_;
  HgpaOptions options_;
  /// Keep-alive for referencing-mode stores; null when stores_ own vectors.
  std::shared_ptr<const HgpaPrecomputation> precomputation_;
  std::vector<PpvStore> stores_;
  std::vector<std::unordered_map<SubgraphId, std::vector<NodeId>>> machine_hubs_;
  std::vector<size_t> own_machine_;
  MachineTimeLedger offline_{1};
  /// Keys (kHubPartial-kinded) of the replicated hub pairs.
  std::unordered_set<uint64_t> replicated_hubs_;
  /// Serialized bytes of replicas each non-owner machine holds.
  size_t replica_bytes_ = 0;
};

/// Query statistics reported by the paper's experiments.
struct QueryMetrics {
  /// max over machines of the measured per-machine compute time.
  double max_machine_seconds = 0.0;
  double coordinator_seconds = 0.0;
  /// End-to-end latency under the network model (the paper's "runtime").
  double simulated_seconds = 0.0;
  /// Bytes received by the coordinator (the paper's communication cost).
  CommStats comm;
  /// Machines that actually ran for this query: num_machines under
  /// broadcast, the routed plan's target set under routing (0 when the
  /// round was skipped entirely, e.g. a result-cache hit or an all-zero
  /// preference set).
  size_t machines_contacted = 0;
  /// Bytes routing did NOT ship versus broadcast: one empty serialized
  /// fragment per non-contributing machine that a full fan-out would have
  /// gathered anyway. Zero under broadcast.
  uint64_t routing_bytes_saved = 0;
  /// Transport round id of the communication round that answered this query
  /// (shared by every query in a batch; 0 when no round ran).
  uint64_t round_id = 0;
  /// The machines that ran, ascending (all of them under broadcast; the
  /// routed union for a batch, this query's own plan in per-query metrics).
  /// Empty when no round ran.
  std::vector<size_t> machines;
  /// Full-cluster-width measured per-machine compute seconds for the round
  /// (zeros for machines that did not participate). Empty when no round ran.
  std::vector<double> machine_seconds;

  /// Compute-only runtime (machines overlap their sends in a real cluster,
  /// and the paper observes network transfer does not dominate; Appendix B).
  double ComputeSeconds() const {
    return max_machine_seconds + coordinator_seconds;
  }
};

/// Distributed PPV construction (Algorithm 1 + Eq. 6/7): each machine folds
/// the contributions of its hubs along the query node's subgraph chain into
/// one vector and ships it to the coordinator exactly once; the coordinator
/// sums the n replies.
///
/// All query methods are const and safe to call from many threads at once on
/// one shared engine (every round's state is call-local; the underlying
/// SimCluster and ThreadPool support concurrent rounds). Results and each
/// query's fragment traffic are deterministic regardless of interleaving.
/// set_machine_timer is configuration-time only.
class HgpaQueryEngine {
 public:
  /// Takes the index by value: an index is a cheap handle (vector stores
  /// reference the shared precomputation), and owning it keeps the engine
  /// safe to build from temporaries. `transport` picks the message layer the
  /// per-query fragment rounds travel over (DPPR_TRANSPORT=tcp → real
  /// localhost sockets); answers and fragment byte accounting are
  /// bit-identical across backends.
  /// `routing` picks the query fan-out (DPPR_ROUTING; default route — only
  /// contributing shards run each query's round; broadcast is the oracle).
  explicit HgpaQueryEngine(HgpaIndex index, NetworkModel network = {},
                           TransportOptions transport = TransportOptions::FromEnv(),
                           RoutingOptions routing = RoutingOptions::FromEnv());

  RoutingMode routing_mode() const {
    return router_ != nullptr ? RoutingMode::kRoute : RoutingMode::kBroadcast;
  }
  /// The routing table (null under broadcast).
  const QueryRouter* router() const { return router_.get(); }

  /// Switches how machine compute time is measured (see SimCluster::TimerKind;
  /// the serving layer uses kThreadCpu so concurrent rounds don't inflate
  /// each other's machine_seconds). Call before serving traffic.
  void set_machine_timer(SimCluster::TimerKind timer) {
    cluster_.set_timer(timer);
  }

  /// Exact PPV of `query` (to the index tolerance), with optional metrics.
  SparseVector Query(NodeId query, QueryMetrics* metrics = nullptr) const;

  /// Dense convenience wrapper (metrics identical to Query).
  std::vector<double> QueryDense(NodeId query, QueryMetrics* metrics = nullptr) const;

  /// One entry of a preference set P: a node and its teleport weight.
  struct Preference {
    NodeId node;
    double weight;
  };

  /// Exact PPV of an arbitrary preference set (the paper's general problem
  /// statement; §1 Eq. 1). By the Jeh–Widom linearity theorem the PPV of P is
  /// the weight-combination of single-node PPVs; each machine folds all of
  /// P's chains locally, so the query still costs one message per machine.
  /// Weights should sum to 1 for a probability vector (not enforced).
  SparseVector QueryPreferenceSet(std::span<const Preference> preferences,
                                  QueryMetrics* metrics = nullptr) const;

  /// Batched form: answers every query in `queries` in ONE communication
  /// round. Each machine ships one payload holding one PPV fragment per
  /// query, so an admission batch of b queries still costs one message per
  /// machine (b·n fewer latency charges than b single rounds pay). Results —
  /// and each query's own fragment bytes — are bit-identical to issuing the
  /// queries one at a time.
  ///
  /// `per_query_metrics` (resized to queries.size() when non-null) reports
  /// per query: comm = that query's own fragments (messages = one per
  /// machine), while the compute/latency fields carry the shared round's
  /// costs (the whole batch waits for the round). `round_metrics` reports
  /// the round once: comm = whole payloads.
  std::vector<SparseVector> QueryPreferenceSetMany(
      std::span<const std::vector<Preference>> queries,
      std::vector<QueryMetrics>* per_query_metrics = nullptr,
      QueryMetrics* round_metrics = nullptr) const;

  const HgpaIndex& index() const { return index_; }

 private:
  std::vector<uint8_t> MachineTask(
      size_t machine,
      std::span<const std::span<const Preference>> queries) const;

  /// Routed counterpart: `machine` computes, for every query whose plan
  /// targets it, one fragment per owner it covers (its own plus absorbed
  /// replicated owners), in (query, owner) order.
  std::vector<uint8_t> RoutedMachineTask(
      size_t machine,
      std::span<const std::span<const Preference>> queries,
      std::span<const QueryRouter::Plan> plans) const;

  /// Folds owner `owner`'s share of the query — its hubs along every
  /// preference chain plus its own terms — reading vectors from `machine`'s
  /// store. Broadcast passes owner == machine; the routed path may pass a
  /// replicated owner absorbed onto `machine`. The fold order is identical
  /// either way, which is what keeps routed results bit-identical.
  void AccumulateOwner(size_t machine, size_t owner,
                       std::span<const Preference> preferences,
                       DenseAccumulator& acc) const;

  /// Appends every storage key owner `owner`'s fold of this query will look
  /// up, in fold order — what the machine tasks hand to PpvStore::Prefetch
  /// so the disk backend's cold misses overlap up front instead of
  /// serializing inside AccumulateOwner.
  void CollectOwnerKeys(size_t owner, std::span<const Preference> preferences,
                        std::vector<uint64_t>& keys) const;

  std::vector<uint64_t> CollectBatchKeys(
      size_t machine,
      std::span<const std::span<const Preference>> queries) const;

  std::vector<SparseVector> RunDistributed(
      std::span<const std::span<const Preference>> queries,
      std::vector<QueryMetrics>* per_query_metrics,
      QueryMetrics* round_metrics) const;

  std::vector<SparseVector> RunRouted(
      std::span<const std::span<const Preference>> queries,
      std::vector<QueryMetrics>* per_query_metrics,
      QueryMetrics* round_metrics) const;

  HgpaIndex index_;
  SimCluster cluster_;
  /// DPPR_PREFETCH gate, read once at construction ("on" unless overridden;
  /// a typo dies). Only consulted for disk-backed stores — the in-memory
  /// backends have nothing to prefetch, so key enumeration is skipped too.
  bool prefetch_enabled_;
  /// Routing table under RoutingMode::kRoute; null under broadcast. Shared
  /// (and self-contained) so engine copies and moves stay cheap and safe.
  std::shared_ptr<const QueryRouter> router_;
};

}  // namespace dppr

#endif  // DPPR_CORE_HGPA_H_
