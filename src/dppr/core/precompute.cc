#include "dppr/core/precompute.h"

#include <algorithm>

#include "dppr/common/thread_pool.h"
#include "dppr/common/timer.h"
#include "dppr/graph/local_graph.h"
#include "dppr/ppr/forward_push.h"
#include "dppr/ppr/skeleton.h"

namespace dppr {
namespace {

// Lifts a local-id sparse/dense result into a global-id SparseVector,
// dropping |value| <= prune.
SparseVector LiftToGlobal(const LocalGraph& lg, const SparseVector& local,
                          double prune) {
  std::vector<SparseVector::Entry> entries;
  entries.reserve(local.size());
  for (const auto& e : local.entries()) {
    if (std::abs(e.value) > prune) entries.push_back({lg.ToGlobal(e.index), e.value});
  }
  return SparseVector::FromEntries(std::move(entries));
}

SparseVector LiftDenseToGlobal(const LocalGraph& lg, std::span<const double> dense,
                               double prune) {
  std::vector<SparseVector::Entry> entries;
  for (NodeId local = 0; local < dense.size(); ++local) {
    if (std::abs(dense[local]) > prune) {
      entries.push_back({lg.ToGlobal(local), dense[local]});
    }
  }
  return SparseVector::FromEntries(std::move(entries));
}

// Removes entries at the given sorted global indices. Stored hub partial
// vectors drop all hub coordinates of their subgraph: at query time those
// coordinates are reconstructed exactly from the skeleton columns (the
// hub-coordinate replacement rule, see HgpaQueryEngine), so keeping them
// would only waste space and wire bytes.
SparseVector DropIndices(const SparseVector& vec,
                         std::span<const NodeId> sorted_indices) {
  std::vector<SparseVector::Entry> entries;
  entries.reserve(vec.size());
  for (const auto& e : vec.entries()) {
    if (!std::binary_search(sorted_indices.begin(), sorted_indices.end(),
                            e.index)) {
      entries.push_back(e);
    }
  }
  return SparseVector::FromEntries(std::move(entries));
}

}  // namespace

bool PrecomputeNeedsInEdges(const HgpaOptions& options) {
  return options.skeleton_method == SkeletonMethod::kReversePush;
}

std::vector<NodeId> LocalizeHubs(const LocalGraph& lg,
                                 const HierarchySubgraph& sub) {
  std::vector<NodeId> local_hubs(sub.hubs.size());
  for (size_t i = 0; i < sub.hubs.size(); ++i) {
    local_hubs[i] = lg.ToLocal(sub.hubs[i]);
    DPPR_CHECK_NE(local_hubs[i], kInvalidNode);
  }
  return local_hubs;
}

SparseVector ComputeHubPartial(const LocalGraph& lg, const HierarchySubgraph& sub,
                               std::span<const NodeId> local_hubs, NodeId hub,
                               const HgpaOptions& options) {
  DPPR_CHECK_EQ(local_hubs.size(), sub.hubs.size());
  NodeId hub_local = lg.ToLocal(hub);
  DPPR_CHECK_NE(hub_local, kInvalidNode);
  // Push blocked at the subgraph's hub set (tours may start and end at hubs
  // but not cross them).
  ForwardPusher<LocalGraph> pusher(lg);
  ForwardPushResult push =
      pusher.Run(hub_local, local_hubs, options.ppr, /*prune_below=*/0.0);
  return DropIndices(LiftToGlobal(lg, push.reserve, options.storage_prune),
                     sub.hubs);
}

SparseVector ComputeSkeletonColumn(const LocalGraph& lg, NodeId hub,
                                   const HgpaOptions& options) {
  NodeId hub_local = lg.ToLocal(hub);
  DPPR_CHECK_NE(hub_local, kInvalidNode);
  std::vector<double> column =
      options.skeleton_method == SkeletonMethod::kFixedPoint
          ? SkeletonFixedPoint(lg, hub_local, options.ppr)
          : SkeletonReversePush(lg, hub_local, options.ppr);
  return LiftDenseToGlobal(lg, column, options.storage_prune);
}

SparseVector ComputeLeafVector(const LocalGraph& lg, NodeId node,
                               const HgpaOptions& options) {
  NodeId node_local = lg.ToLocal(node);
  DPPR_CHECK_NE(node_local, kInvalidNode);
  ForwardPusher<LocalGraph> pusher(lg);
  ForwardPushResult push =
      pusher.Run(node_local, {}, options.ppr, /*prune_below=*/0.0);
  return LiftToGlobal(lg, push.reserve, options.storage_prune);
}

std::shared_ptr<const HgpaPrecomputation> HgpaPrecomputation::Run(
    const Graph& graph, Hierarchy hierarchy, const HgpaOptions& options) {
  auto result = std::shared_ptr<HgpaPrecomputation>(new HgpaPrecomputation());
  result->graph_ = &graph;
  result->hierarchy_ = std::move(hierarchy);
  result->options_ = options;
  const Hierarchy& h = result->hierarchy_;

  // Deterministic item layout: per subgraph, two items per hub (partial then
  // skeleton); per leaf, one item per node. Computed up front so parallel
  // workers write disjoint slots.
  std::vector<Item>& items = result->items_;
  size_t total_items = 0;
  for (const auto& sub : h.subgraphs()) {
    total_items += 2 * sub.hubs.size();
    if (sub.children.empty()) total_items += sub.nodes.size();
  }
  items.resize(total_items);

  const bool need_in_edges = PrecomputeNeedsInEdges(options);
  ThreadPool& pool = ThreadPool::Default();

  size_t next_slot = 0;
  for (const auto& sub : h.subgraphs()) {
    const bool is_leaf = sub.children.empty();
    if (sub.hubs.empty() && !is_leaf) continue;

    // One induced virtual subgraph shared by all tasks of this subgraph.
    LocalGraph lg = LocalGraph::Induce(graph, sub.nodes, need_in_edges);

    if (!sub.hubs.empty()) {
      const std::vector<NodeId> local_hubs = LocalizeHubs(lg, sub);
      size_t base = next_slot;
      next_slot += 2 * sub.hubs.size();
      auto hub_task = [&](size_t i) {
        NodeId hub_global = sub.hubs[i];

        Item& partial = items[base + 2 * i];
        {
          WallTimer timer;
          partial.vec = ComputeHubPartial(lg, sub, local_hubs, hub_global, options);
          partial.seconds = timer.ElapsedSeconds();
        }
        partial.kind = VectorKind::kHubPartial;
        partial.sub = sub.id;
        partial.node = hub_global;
        partial.bytes = partial.vec.SerializedBytes();

        Item& skeleton = items[base + 2 * i + 1];
        {
          WallTimer timer;
          skeleton.vec = ComputeSkeletonColumn(lg, hub_global, options);
          skeleton.seconds = timer.ElapsedSeconds();
        }
        skeleton.kind = VectorKind::kSkeletonColumn;
        skeleton.sub = sub.id;
        skeleton.node = hub_global;
        skeleton.bytes = skeleton.vec.SerializedBytes();
      };
      if (options.parallel) {
        pool.ParallelFor(sub.hubs.size(), hub_task);
      } else {
        for (size_t i = 0; i < sub.hubs.size(); ++i) hub_task(i);
      }
    }

    if (is_leaf) {
      size_t base = next_slot;
      next_slot += sub.nodes.size();
      auto leaf_task = [&](size_t i) {
        NodeId node_global = sub.nodes[i];
        Item& own = items[base + i];
        WallTimer timer;
        own.vec = ComputeLeafVector(lg, node_global, options);
        own.seconds = timer.ElapsedSeconds();
        own.kind = VectorKind::kOwnVector;
        own.sub = sub.id;
        own.node = node_global;
        own.bytes = own.vec.SerializedBytes();
      };
      if (options.parallel) {
        pool.ParallelFor(sub.nodes.size(), leaf_task);
      } else {
        for (size_t i = 0; i < sub.nodes.size(); ++i) leaf_task(i);
      }
    }
  }
  DPPR_CHECK_EQ(next_slot, items.size());

  result->index_.reserve(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    const Item& item = items[i];
    result->index_.emplace(MakeVectorKey(item.kind, item.sub, item.node), i);
    result->total_seconds_ += item.seconds;
  }
  return result;
}

std::shared_ptr<const HgpaPrecomputation> HgpaPrecomputation::RunHgpa(
    const Graph& graph, const HgpaOptions& options) {
  return Run(graph, Hierarchy::Build(graph, options.hierarchy), options);
}

std::shared_ptr<const HgpaPrecomputation> HgpaPrecomputation::RunGpa(
    const Graph& graph, uint32_t num_subgraphs, const HgpaOptions& options) {
  Hierarchy flat =
      Hierarchy::BuildFlat(graph, num_subgraphs, options.hierarchy.partition);
  return Run(graph, std::move(flat), options);
}

const HgpaPrecomputation::Item* HgpaPrecomputation::FindItem(VectorKind kind,
                                                             SubgraphId sub,
                                                             NodeId node) const {
  auto it = index_.find(MakeVectorKey(kind, sub, node));
  return it == index_.end() ? nullptr : &items_[it->second];
}

size_t HgpaPrecomputation::TotalBytes() const {
  size_t total = 0;
  for (const Item& item : items_) total += item.bytes;
  return total;
}

std::shared_ptr<const HgpaPrecomputation> HgpaPrecomputation::PrunedCopy(
    double threshold) const {
  auto copy = std::shared_ptr<HgpaPrecomputation>(new HgpaPrecomputation());
  copy->graph_ = graph_;
  copy->hierarchy_ = hierarchy_;
  copy->options_ = options_;
  copy->options_.storage_prune = threshold;
  copy->items_.reserve(items_.size());
  for (const Item& item : items_) {
    Item pruned = item;
    pruned.vec = item.vec.Pruned(threshold);
    pruned.bytes = pruned.vec.SerializedBytes();
    copy->items_.push_back(std::move(pruned));
  }
  copy->index_ = index_;
  copy->total_seconds_ = total_seconds_;
  return copy;
}

}  // namespace dppr
