#include "dppr/core/ppv_store.h"

#include <utility>

namespace dppr {

void VectorRecord::SerializeTo(ByteWriter& writer) const {
  writer.PutU8(static_cast<uint8_t>(kind));
  writer.PutVarU64(sub);
  writer.PutVarU64(node);
  writer.PutDouble(seconds);
  // Nested blob framing: the receiver bounds-checks the vector payload
  // against the declared length before parsing it. SerializedBytes() is the
  // exact size of SerializeTo's output, so the blob header can be written
  // up front without buffering the vector twice.
  writer.PutVarU64(vec.SerializedBytes());
  vec.SerializeTo(writer);
}

VectorRecord VectorRecord::Deserialize(ByteReader& reader) {
  VectorRecord record;
  uint8_t kind = reader.GetU8();
  DPPR_CHECK_LT(kind, kNumVectorKinds);
  record.kind = static_cast<VectorKind>(kind);
  uint64_t sub = reader.GetVarU64();
  uint64_t node = reader.GetVarU64();
  // Same ranges MakeVectorKey enforces; rejecting here pins the failure on
  // the wire bytes rather than a later store insert.
  DPPR_CHECK_LT(sub, 1u << 30);
  DPPR_CHECK_LT(node, 1u << 30);
  record.sub = static_cast<SubgraphId>(sub);
  record.node = static_cast<NodeId>(node);
  record.seconds = reader.GetDouble();
  std::span<const uint8_t> blob = reader.GetBlob();
  ByteReader vec_reader(blob.data(), blob.size());
  record.vec = SparseVector::Deserialize(vec_reader);
  // A declared length longer than the vector payload means trailing garbage
  // inside the record — corrupt, not just padded.
  DPPR_CHECK(vec_reader.AtEnd());
  return record;
}

PpvStore::PpvStore(const PpvStore& other)
    : map_(other.map_),
      owned_(other.owned_),
      total_bytes_(other.total_bytes_),
      bytes_by_kind_(other.bytes_by_kind_),
      num_vectors_(other.num_vectors_) {
  for (auto& [key, vec] : owned_) map_[key] = &vec;
}

PpvStore& PpvStore::operator=(const PpvStore& other) {
  if (this != &other) *this = PpvStore(other);
  return *this;
}

const SparseVector* PpvStore::PutOwned(VectorKind kind, SubgraphId sub,
                                       NodeId node, SparseVector vec,
                                       size_t serialized_bytes) {
  owned_.emplace_back(MakeVectorKey(kind, sub, node), std::move(vec));
  const SparseVector* stored = &owned_.back().second;
  Insert(kind, sub, node, stored, serialized_bytes);
  return stored;
}

double PpvStore::Ingest(VectorRecord record) {
  size_t bytes = record.vec.SerializedBytes();
  PutOwned(record.kind, record.sub, record.node, std::move(record.vec), bytes);
  return record.seconds;
}

}  // namespace dppr
