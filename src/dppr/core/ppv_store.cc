#include "dppr/core/ppv_store.h"

// Header-only; TU anchors the target.
