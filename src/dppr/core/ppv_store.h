#ifndef DPPR_CORE_PPV_STORE_H_
#define DPPR_CORE_PPV_STORE_H_

#include <cstdint>
#include <unordered_map>

#include "dppr/common/macros.h"
#include "dppr/graph/types.h"
#include "dppr/partition/hierarchy.h"
#include "dppr/ppr/sparse_vector.h"

namespace dppr {

/// The three precomputed vector kinds of the paper's decomposition.
enum class VectorKind : uint8_t {
  /// p^H_h[S]: partial vector of hub h w.r.t. subgraph S (Def. 1 / Thm. 2).
  kHubPartial = 0,
  /// Skeleton column of hub h over S: entry u holds s_u[S](h) (Def. 2).
  kSkeletonColumn = 1,
  /// Leaf-level local PPV r_u[leaf] of a non-hub node (Eq. 6 last term).
  kOwnVector = 2,
};

/// Packs (kind, subgraph, node) into a lookup key.
inline uint64_t MakeVectorKey(VectorKind kind, SubgraphId sub, NodeId node) {
  DPPR_DCHECK(sub < (1u << 30));
  DPPR_DCHECK(node < (1u << 30));
  return (static_cast<uint64_t>(kind) << 60) | (static_cast<uint64_t>(sub) << 30) |
         node;
}

/// One simulated machine's vector storage. Vectors are owned by the
/// placement-independent HgpaPrecomputation; the store references them and
/// tracks serialized storage bytes (the paper's per-machine space metric).
class PpvStore {
 public:
  void Put(VectorKind kind, SubgraphId sub, NodeId node, const SparseVector* vec,
           size_t serialized_bytes) {
    bool inserted =
        map_.emplace(MakeVectorKey(kind, sub, node), vec).second;
    DPPR_CHECK(inserted);
    total_bytes_ += serialized_bytes;
    ++num_vectors_;
  }

  /// nullptr when this machine does not hold the vector.
  const SparseVector* Find(VectorKind kind, SubgraphId sub, NodeId node) const {
    auto it = map_.find(MakeVectorKey(kind, sub, node));
    return it == map_.end() ? nullptr : it->second;
  }

  size_t num_vectors() const { return num_vectors_; }

  /// Serialized size of everything stored here (disk/memory accounting).
  size_t TotalSerializedBytes() const { return total_bytes_; }

 private:
  std::unordered_map<uint64_t, const SparseVector*> map_;
  size_t total_bytes_ = 0;
  size_t num_vectors_ = 0;
};

}  // namespace dppr

#endif  // DPPR_CORE_PPV_STORE_H_
