#ifndef DPPR_CORE_PPV_STORE_H_
#define DPPR_CORE_PPV_STORE_H_

#include <array>
#include <cstdint>
#include <deque>
#include <unordered_map>

#include "dppr/common/macros.h"
#include "dppr/common/serialize.h"
#include "dppr/graph/types.h"
#include "dppr/partition/hierarchy.h"
#include "dppr/ppr/sparse_vector.h"

namespace dppr {

/// The three precomputed vector kinds of the paper's decomposition.
enum class VectorKind : uint8_t {
  /// p^H_h[S]: partial vector of hub h w.r.t. subgraph S (Def. 1 / Thm. 2).
  kHubPartial = 0,
  /// Skeleton column of hub h over S: entry u holds s_u[S](h) (Def. 2).
  kSkeletonColumn = 1,
  /// Leaf-level local PPV r_u[leaf] of a non-hub node (Eq. 6 last term).
  kOwnVector = 2,
};
inline constexpr uint8_t kNumVectorKinds = 3;

/// Packs (kind, subgraph, node) into a lookup key. The range checks are
/// always on (DPPR_CHECK): a silently truncated key aliases another vector's
/// slot and returns wrong data, which a release build must refuse too.
inline uint64_t MakeVectorKey(VectorKind kind, SubgraphId sub, NodeId node) {
  DPPR_CHECK_LT(sub, 1u << 30);
  DPPR_CHECK_LT(node, 1u << 30);
  return (static_cast<uint64_t>(kind) << 60) | (static_cast<uint64_t>(sub) << 30) |
         node;
}

/// Wire format for shipping one precomputed vector between machines: header
/// (kind, subgraph, owner node, compute seconds) followed by the serialized
/// SparseVector as a length-prefixed blob, so a receiver can bounds-check the
/// nested payload before trusting it. This is what DistributedPrecompute's
/// SimCluster rounds put on the wire and what PpvStore deserializes into an
/// owned vector.
struct VectorRecord {
  VectorKind kind = VectorKind::kOwnVector;
  SubgraphId sub = kInvalidSubgraph;
  NodeId node = kInvalidNode;
  /// Compute time on the producing machine (offline ledger accounting).
  double seconds = 0.0;
  SparseVector vec;

  void SerializeTo(ByteWriter& writer) const;

  /// DPPR_CHECK-fails on malformed input: unknown kind, out-of-range ids,
  /// truncated or oversized nested vector payload.
  static VectorRecord Deserialize(ByteReader& reader);
};

/// One simulated machine's vector storage, in one of two modes per vector:
///
///  - *referencing*: `Put` aliases a vector owned by the placement-independent
///    HgpaPrecomputation (the legacy centralized path, kept as the oracle);
///  - *owning*: `PutOwned` adopts a vector, typically deserialized from the
///    wire bytes a DistributedPrecompute round shipped (`Ingest`).
///
/// Either way the store keeps a serialized-bytes ledger — total and per kind —
/// which is the paper's per-machine space metric.
class PpvStore {
 public:
  PpvStore() = default;

  /// Copying is legal in both modes: owned vectors are deep-copied and the
  /// lookup table is re-pointed at the copies.
  PpvStore(const PpvStore& other);
  PpvStore& operator=(const PpvStore& other);
  // Moving std::deque never relocates elements, so owned addresses survive.
  PpvStore(PpvStore&&) = default;
  PpvStore& operator=(PpvStore&&) = default;

  /// Referencing mode: `vec` must outlive the store.
  void Put(VectorKind kind, SubgraphId sub, NodeId node, const SparseVector* vec,
           size_t serialized_bytes) {
    Insert(kind, sub, node, vec, serialized_bytes);
  }

  /// Owning mode: adopts `vec`. Returns the stored vector's stable address.
  const SparseVector* PutOwned(VectorKind kind, SubgraphId sub, NodeId node,
                               SparseVector vec, size_t serialized_bytes);

  /// Deserializes and adopts one wire record; the byte ledger is charged the
  /// vector's serialized size. Returns the record's compute seconds so the
  /// caller can charge its offline ledger.
  double Ingest(VectorRecord record);

  /// nullptr when this machine does not hold the vector.
  const SparseVector* Find(VectorKind kind, SubgraphId sub, NodeId node) const {
    auto it = map_.find(MakeVectorKey(kind, sub, node));
    return it == map_.end() ? nullptr : it->second;
  }

  size_t num_vectors() const { return num_vectors_; }
  size_t num_owned() const { return owned_.size(); }

  /// Serialized size of everything stored here (disk/memory accounting).
  size_t TotalSerializedBytes() const { return total_bytes_; }

  /// Ledger breakdown: serialized bytes held per vector kind.
  size_t SerializedBytesByKind(VectorKind kind) const {
    return bytes_by_kind_[static_cast<uint8_t>(kind)];
  }

 private:
  void Insert(VectorKind kind, SubgraphId sub, NodeId node,
              const SparseVector* vec, size_t serialized_bytes) {
    bool inserted = map_.emplace(MakeVectorKey(kind, sub, node), vec).second;
    DPPR_CHECK(inserted);
    total_bytes_ += serialized_bytes;
    bytes_by_kind_[static_cast<uint8_t>(kind)] += serialized_bytes;
    ++num_vectors_;
  }

  std::unordered_map<uint64_t, const SparseVector*> map_;
  /// Owned vectors with their keys; deque for address stability under growth,
  /// keys so the copy constructor can re-point map_ entries.
  std::deque<std::pair<uint64_t, SparseVector>> owned_;
  size_t total_bytes_ = 0;
  std::array<size_t, kNumVectorKinds> bytes_by_kind_{};
  size_t num_vectors_ = 0;
};

}  // namespace dppr

#endif  // DPPR_CORE_PPV_STORE_H_
