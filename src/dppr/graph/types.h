#ifndef DPPR_GRAPH_TYPES_H_
#define DPPR_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace dppr {

/// Node identifier. Graphs in this library are dense-id directed graphs with
/// ids in [0, num_nodes).
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// A directed edge (source, target).
using Edge = std::pair<NodeId, NodeId>;

using EdgeList = std::vector<Edge>;

}  // namespace dppr

#endif  // DPPR_GRAPH_TYPES_H_
