#include "dppr/graph/local_graph.h"

#include <algorithm>

namespace dppr {

LocalGraph LocalGraph::Induce(const Graph& original,
                              std::span<const NodeId> global_nodes,
                              bool build_in_edges) {
  LocalGraph lg;
  lg.global_ids_.assign(global_nodes.begin(), global_nodes.end());
  lg.global_to_local_.reserve(global_nodes.size());
  for (NodeId local = 0; local < lg.global_ids_.size(); ++local) {
    NodeId global = lg.global_ids_[local];
    DPPR_CHECK_LT(global, original.num_nodes());
    bool inserted = lg.global_to_local_.emplace(global, local).second;
    DPPR_CHECK(inserted);  // node subsets must not contain duplicates
  }

  size_t n = lg.global_ids_.size();
  lg.degree_denominator_.resize(n);
  lg.out_offsets_.assign(n + 1, 0);

  // First pass: count internal targets per node.
  for (NodeId local = 0; local < n; ++local) {
    NodeId global = lg.global_ids_[local];
    lg.degree_denominator_[local] = original.out_degree(global);
    size_t internal = 0;
    for (NodeId target : original.OutNeighbors(global)) {
      if (lg.global_to_local_.contains(target)) ++internal;
    }
    lg.out_offsets_[local + 1] = internal;
  }
  for (size_t i = 1; i <= n; ++i) lg.out_offsets_[i] += lg.out_offsets_[i - 1];

  lg.out_targets_.resize(lg.out_offsets_[n]);
  {
    std::vector<size_t> cursor(lg.out_offsets_.begin(), lg.out_offsets_.end() - 1);
    for (NodeId local = 0; local < n; ++local) {
      NodeId global = lg.global_ids_[local];
      for (NodeId target : original.OutNeighbors(global)) {
        auto it = lg.global_to_local_.find(target);
        if (it != lg.global_to_local_.end()) {
          lg.out_targets_[cursor[local]++] = it->second;
        }
      }
    }
  }

  if (build_in_edges) {
    lg.in_offsets_.assign(n + 1, 0);
    for (NodeId t : lg.out_targets_) ++lg.in_offsets_[t + 1];
    for (size_t i = 1; i <= n; ++i) lg.in_offsets_[i] += lg.in_offsets_[i - 1];
    lg.in_sources_.resize(lg.out_targets_.size());
    std::vector<size_t> cursor(lg.in_offsets_.begin(), lg.in_offsets_.end() - 1);
    for (NodeId local = 0; local < n; ++local) {
      for (NodeId target : lg.OutNeighbors(local)) {
        lg.in_sources_[cursor[target]++] = local;
      }
    }
  }
  return lg;
}

LocalGraph LocalGraph::Whole(const Graph& original, bool build_in_edges) {
  std::vector<NodeId> all(original.num_nodes());
  for (NodeId u = 0; u < all.size(); ++u) all[u] = u;
  LocalGraph lg = Induce(original, all, build_in_edges);
  lg.identity_ = true;
  lg.global_to_local_.clear();
  return lg;
}

}  // namespace dppr
