#ifndef DPPR_GRAPH_IO_H_
#define DPPR_GRAPH_IO_H_

#include <string>

#include "dppr/common/status.h"
#include "dppr/graph/graph.h"
#include "dppr/graph/graph_builder.h"

namespace dppr {

/// Loads a whitespace-separated edge list ("src dst" per line; '#' and '%'
/// comment lines ignored — the SNAP format used by the paper's datasets).
/// Node-id space is [0, max_id + 1].
StatusOr<Graph> LoadEdgeList(const std::string& path,
                             const GraphBuildOptions& options = {});

/// Writes "src dst" lines with a short header comment.
Status SaveEdgeList(const Graph& graph, const std::string& path);

/// Compact binary snapshot (magic + varint delta-encoded CSR). Round-trips
/// exactly; used to cache generated datasets between bench runs.
Status SaveBinary(const Graph& graph, const std::string& path);
StatusOr<Graph> LoadBinary(const std::string& path,
                           const GraphBuildOptions& options = {});

}  // namespace dppr

#endif  // DPPR_GRAPH_IO_H_
