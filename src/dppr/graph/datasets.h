#ifndef DPPR_GRAPH_DATASETS_H_
#define DPPR_GRAPH_DATASETS_H_

#include <string>
#include <vector>

#include "dppr/graph/graph.h"

namespace dppr {

/// Synthetic stand-ins for the paper's five evaluation datasets (§6.1),
/// scaled roughly 1/100 so the full experiment suite runs in minutes.
/// `scale` multiplies node/edge counts; it defaults to the DPPR_SCALE
/// environment variable (1.0 when unset). All datasets are deterministic, use
/// the self-loop dangling policy, and build in-edges.
///
/// Paper originals:
///   Email   265,214 nodes /    420,045 edges (EU research institution email)
///   Web     875,713 nodes /  5,105,039 edges (Google web graph)
///   Youtube 1,134,890 nodes / 2,987,624 edges (social)
///   PLD     3,000,000 nodes / 18,185,350 edges (Common Crawl pay-level-domain)
///   Meetup  M1..M5, 0.99M..1.8M nodes, 83M..194M edges (event co-attendance)
///   PLD_full 101M nodes / 1.94B edges (Appendix B)

Graph EmailLike(double scale = -1.0);
Graph WebLike(double scale = -1.0);
Graph YoutubeLike(double scale = -1.0);
Graph PldLike(double scale = -1.0);

/// Meetup scalability series, index in [1, 5] (Table 6: M1..M5).
Graph MeetupLike(int index, double scale = -1.0);

/// Appendix-B large-graph stand-in (used with coarse tolerance 1e-2).
Graph PldFullLike(double scale = -1.0);

/// The 6-node toy graph of paper Figure 3 (hub node u2 separates it).
/// Node ids: u1=0 .. u6=5.
Graph PaperFigure3Graph();

/// The 5-node example of paper Figure 1 / Figure 2.
/// Node ids: u1=0 .. u5=4.
Graph PaperFigure2Graph();

/// Resolves a dataset by name ("email", "web", "youtube", "pld", "meetup1"..
/// "meetup5", "pld_full"). DPPR_CHECK-fails on unknown names.
Graph DatasetByName(const std::string& name, double scale = -1.0);

/// Names accepted by DatasetByName.
std::vector<std::string> DatasetNames();

}  // namespace dppr

#endif  // DPPR_GRAPH_DATASETS_H_
