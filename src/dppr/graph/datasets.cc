#include "dppr/graph/datasets.h"

#include <cmath>

#include "dppr/common/env.h"
#include "dppr/common/macros.h"
#include "dppr/graph/generators.h"
#include "dppr/graph/graph_builder.h"

namespace dppr {
namespace {

double EffectiveScale(double scale) {
  if (scale > 0) return scale;
  double env = GetEnvDouble("DPPR_SCALE", 1.0);
  return env > 0 ? env : 1.0;
}

GraphBuildOptions DatasetOptions() {
  GraphBuildOptions options;
  options.dangling = DanglingPolicy::kSelfLoop;
  options.build_in_edges = true;
  return options;
}

size_t Scaled(size_t base, double scale) {
  return std::max<size_t>(16, static_cast<size_t>(std::llround(base * scale)));
}

}  // namespace

Graph EmailLike(double scale) {
  double s = EffectiveScale(scale);
  // Email networks: strong in-degree skew, many leaf senders, sparse.
  return PreferentialAttachment(Scaled(2652, s), /*out_degree=*/2,
                                /*seed=*/0xE3A11ULL, /*reciprocal_prob=*/0.3,
                                DatasetOptions());
}

Graph WebLike(double scale) {
  double s = EffectiveScale(scale);
  size_t nodes = Scaled(8757, s);
  uint32_t log2n = 1;
  while ((size_t{1} << log2n) < nodes) ++log2n;
  return Rmat(log2n, Scaled(51050, s), /*seed=*/0x3EBULL, RmatParams{},
              DatasetOptions());
}

Graph YoutubeLike(double scale) {
  double s = EffectiveScale(scale);
  return CommunityDigraph(Scaled(11349, s), /*num_communities=*/64,
                          /*avg_out_degree=*/2.63, /*intra_prob=*/0.8,
                          /*seed=*/0x707BULL, DatasetOptions());
}

Graph PldLike(double scale) {
  double s = EffectiveScale(scale);
  size_t nodes = Scaled(30000, s);
  uint32_t log2n = 1;
  while ((size_t{1} << log2n) < nodes) ++log2n;
  RmatParams params;
  params.a = 0.50;
  params.b = 0.22;
  params.c = 0.22;
  params.d = 0.06;
  return Rmat(log2n, Scaled(181854, s), /*seed=*/0x91DULL, params,
              DatasetOptions());
}

Graph MeetupLike(int index, double scale) {
  DPPR_CHECK_GE(index, 1);
  DPPR_CHECK_LE(index, 5);
  double s = EffectiveScale(scale);
  // Paper Table 6: nodes grow ~1.0M -> 1.8M linearly, edges 83M -> 194M.
  size_t users = Scaled(4986 + 999 * (index - 1), s);
  size_t events = users / 3;
  return CoAttendanceGraph(users, events, /*attendees_per_event=*/8,
                           /*max_pairs_per_event=*/12,
                           /*seed=*/0x3EE70ULL + index, DatasetOptions());
}

Graph PldFullLike(double scale) {
  double s = EffectiveScale(scale);
  size_t nodes = Scaled(60000, s);
  uint32_t log2n = 1;
  while ((size_t{1} << log2n) < nodes) ++log2n;
  RmatParams params;
  params.a = 0.50;
  params.b = 0.22;
  params.c = 0.22;
  params.d = 0.06;
  return Rmat(log2n, Scaled(360000, s), /*seed=*/0xF0FULL, params,
              DatasetOptions());
}

Graph PaperFigure3Graph() {
  // u1=0, u2=1, u3=2, u4=3, u5=4, u6=5. Hub u2 separates {u1,u3} from
  // {u4,u5,u6} (Figure 3/4/5 discussion).
  GraphBuilder builder(6);
  builder.AddEdge(0, 1);  // u1 -> u2
  builder.AddEdge(1, 0);  // u2 -> u1
  builder.AddEdge(2, 1);  // u3 -> u2
  builder.AddEdge(1, 2);  // u2 -> u3
  builder.AddEdge(1, 4);  // u2 -> u5
  builder.AddEdge(4, 3);  // u5 -> u4
  builder.AddEdge(4, 5);  // u5 -> u6
  builder.AddEdge(5, 4);  // u6 -> u5
  builder.AddEdge(3, 1);  // u4 -> u2 (gives u5 out-degree context, u4 links back)
  GraphBuildOptions options;
  options.dangling = DanglingPolicy::kSelfLoop;
  return builder.Build(options);
}

Graph PaperFigure2Graph() {
  // u1=0, u2=1, u3=2, u4=3, u5=4; hub candidates u1/u2 split G1={u1,u3,u2}
  // top from G2={u4,u5} bottom (Figure 2).
  GraphBuilder builder(5);
  builder.AddEdge(0, 2);  // u1 -> u3
  builder.AddEdge(2, 1);  // u3 -> u2
  builder.AddEdge(1, 0);  // u2 -> u1
  builder.AddEdge(0, 3);  // u1 -> u4
  builder.AddEdge(3, 4);  // u4 -> u5
  builder.AddEdge(4, 1);  // u5 -> u2
  GraphBuildOptions options;
  options.dangling = DanglingPolicy::kSelfLoop;
  return builder.Build(options);
}

Graph DatasetByName(const std::string& name, double scale) {
  if (name == "email") return EmailLike(scale);
  if (name == "web") return WebLike(scale);
  if (name == "youtube") return YoutubeLike(scale);
  if (name == "pld") return PldLike(scale);
  if (name == "pld_full") return PldFullLike(scale);
  if (name.rfind("meetup", 0) == 0 && name.size() == 7) {
    int index = name[6] - '0';
    DPPR_CHECK_GE(index, 1);
    DPPR_CHECK_LE(index, 5);
    return MeetupLike(index, scale);
  }
  DPPR_CHECK(false);  // unknown dataset name
  return Graph();
}

std::vector<std::string> DatasetNames() {
  return {"email",   "web",     "youtube", "pld",     "meetup1", "meetup2",
          "meetup3", "meetup4", "meetup5", "pld_full"};
}

}  // namespace dppr
