#include "dppr/graph/graph_builder.h"

#include <algorithm>

namespace dppr {

void GraphBuilder::AddEdge(NodeId from, NodeId to) {
  DPPR_CHECK_LT(from, num_nodes_);
  DPPR_CHECK_LT(to, num_nodes_);
  edges_.emplace_back(from, to);
}

void GraphBuilder::AddEdges(const EdgeList& edges) {
  for (const auto& [from, to] : edges) AddEdge(from, to);
}

Graph GraphBuilder::Build(const GraphBuildOptions& options) const {
  EdgeList edges = edges_;
  if (options.remove_self_loops) {
    std::erase_if(edges, [](const Edge& e) { return e.first == e.second; });
  }
  std::sort(edges.begin(), edges.end());
  if (options.dedupe_parallel_edges) {
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }

  if (options.dangling == DanglingPolicy::kSelfLoop) {
    std::vector<bool> has_out(num_nodes_, false);
    for (const auto& [from, to] : edges) has_out[from] = true;
    bool added = false;
    for (NodeId u = 0; u < num_nodes_; ++u) {
      if (!has_out[u]) {
        edges.emplace_back(u, u);
        added = true;
      }
    }
    if (added) std::sort(edges.begin(), edges.end());
  }

  Graph g;
  g.out_offsets_.assign(num_nodes_ + 1, 0);
  for (const auto& [from, to] : edges) ++g.out_offsets_[from + 1];
  for (size_t i = 1; i <= num_nodes_; ++i) g.out_offsets_[i] += g.out_offsets_[i - 1];
  g.out_targets_.resize(edges.size());
  {
    std::vector<size_t> cursor(g.out_offsets_.begin(), g.out_offsets_.end() - 1);
    for (const auto& [from, to] : edges) g.out_targets_[cursor[from]++] = to;
  }

  if (options.build_in_edges) {
    g.in_offsets_.assign(num_nodes_ + 1, 0);
    for (const auto& [from, to] : edges) ++g.in_offsets_[to + 1];
    for (size_t i = 1; i <= num_nodes_; ++i) g.in_offsets_[i] += g.in_offsets_[i - 1];
    g.in_sources_.resize(edges.size());
    std::vector<size_t> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
    for (const auto& [from, to] : edges) g.in_sources_[cursor[to]++] = from;
    for (NodeId u = 0; u < num_nodes_; ++u) {
      std::sort(g.in_sources_.begin() + g.in_offsets_[u],
                g.in_sources_.begin() + g.in_offsets_[u + 1]);
    }
  }
  return g;
}

}  // namespace dppr
