#include "dppr/graph/io.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "dppr/common/serialize.h"

namespace dppr {
namespace {

constexpr uint64_t kBinaryMagic = 0x44505052'47525048ULL;  // "DPPRGRPH"
constexpr uint32_t kBinaryVersion = 1;

}  // namespace

StatusOr<Graph> LoadEdgeList(const std::string& path,
                             const GraphBuildOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);

  EdgeList edges;
  NodeId max_id = 0;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    uint64_t u = 0;
    uint64_t v = 0;
    if (!(ls >> u >> v)) {
      return Status::InvalidArgument("bad edge at " + path + ":" +
                                     std::to_string(line_number));
    }
    if (u >= kInvalidNode || v >= kInvalidNode) {
      return Status::OutOfRange("node id too large at " + path + ":" +
                                std::to_string(line_number));
    }
    edges.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
    max_id = std::max({max_id, static_cast<NodeId>(u), static_cast<NodeId>(v)});
  }
  size_t num_nodes = edges.empty() ? 0 : static_cast<size_t>(max_id) + 1;
  GraphBuilder builder(num_nodes);
  builder.AddEdges(edges);
  return builder.Build(options);
}

Status SaveEdgeList(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "# dppr edge list: nodes=" << graph.num_nodes()
      << " edges=" << graph.num_edges() << "\n";
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.OutNeighbors(u)) out << u << ' ' << v << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status SaveBinary(const Graph& graph, const std::string& path) {
  ByteWriter writer;
  writer.PutU64(kBinaryMagic);
  writer.PutU32(kBinaryVersion);
  writer.PutVarU64(graph.num_nodes());
  writer.PutVarU64(graph.num_edges());
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    auto nbrs = graph.OutNeighbors(u);
    writer.PutVarU64(nbrs.size());
    NodeId prev = 0;
    for (NodeId v : nbrs) {  // sorted by builder; delta-encode
      writer.PutVarU64(v - prev);
      prev = v;
    }
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(writer.bytes().data()),
            static_cast<std::streamsize>(writer.size()));
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

StatusOr<Graph> LoadBinary(const std::string& path,
                           const GraphBuildOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  ByteReader reader(bytes);
  if (reader.remaining() < 12 || reader.GetU64() != kBinaryMagic) {
    return Status::InvalidArgument("not a dppr binary graph: " + path);
  }
  if (reader.GetU32() != kBinaryVersion) {
    return Status::InvalidArgument("unsupported version: " + path);
  }
  size_t num_nodes = reader.GetVarU64();
  size_t num_edges = reader.GetVarU64();
  GraphBuilder builder(num_nodes);
  size_t total = 0;
  for (NodeId u = 0; u < num_nodes; ++u) {
    size_t degree = reader.GetVarU64();
    NodeId prev = 0;
    for (size_t i = 0; i < degree; ++i) {
      prev += static_cast<NodeId>(reader.GetVarU64());
      builder.AddEdge(u, prev);
    }
    total += degree;
  }
  if (total != num_edges) {
    return Status::InvalidArgument("edge count mismatch in " + path);
  }
  return builder.Build(options);
}

}  // namespace dppr
