#ifndef DPPR_GRAPH_LOCAL_GRAPH_H_
#define DPPR_GRAPH_LOCAL_GRAPH_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "dppr/graph/graph.h"
#include "dppr/graph/types.h"

namespace dppr {

/// A *virtual subgraph* (paper Definition 3) over a node subset of an
/// original graph.
///
/// Semantics: the subgraph keeps every node of the subset with its **original
/// out-degree** as random-walk denominator, but adjacency lists contain only
/// the targets inside the subset. Every dropped (external) edge is an edge
/// into the implicit virtual node VN; since VN is a sink that never receives
/// teleport mass, walk mass using such an edge simply vanishes — exactly the
/// behaviour required by Theorem 2 (partial vector == local PPV on the
/// virtual subgraph).
///
/// LocalGraph satisfies the same GraphView concept as Graph: num_nodes(),
/// degree_denominator(u), OutNeighbors(u) (all in *local* id space).
class LocalGraph {
 public:
  LocalGraph() = default;

  /// Induces the virtual subgraph of `original` on `global_nodes`.
  /// `global_nodes` must contain distinct valid ids; order defines the local
  /// id space: local id i <=> global_nodes[i].
  /// When `build_in_edges` is set, the local in-adjacency (used by the
  /// reverse-push skeleton extension) is also materialized.
  static LocalGraph Induce(const Graph& original,
                           std::span<const NodeId> global_nodes,
                           bool build_in_edges = false);

  /// Views the entire graph as a LocalGraph (identity mapping). Used so HGPA
  /// level-0 machinery is uniform across levels.
  static LocalGraph Whole(const Graph& original, bool build_in_edges = false);

  size_t num_nodes() const { return global_ids_.size(); }

  /// Number of edges kept inside the subset.
  size_t num_internal_edges() const { return out_targets_.size(); }

  /// Random-walk denominator: the node's out-degree in the ORIGINAL graph
  /// (internal edges + edges to the virtual node).
  uint32_t degree_denominator(NodeId local) const {
    DPPR_DCHECK(local < num_nodes());
    return degree_denominator_[local];
  }

  /// Internal out-neighbors, as local ids.
  std::span<const NodeId> OutNeighbors(NodeId local) const {
    DPPR_DCHECK(local < num_nodes());
    return {out_targets_.data() + out_offsets_[local],
            out_targets_.data() + out_offsets_[local + 1]};
  }

  bool has_in_edges() const { return !in_offsets_.empty(); }

  /// Internal in-neighbors, as local ids.
  std::span<const NodeId> InNeighbors(NodeId local) const {
    DPPR_DCHECK(has_in_edges() && local < num_nodes());
    return {in_sources_.data() + in_offsets_[local],
            in_sources_.data() + in_offsets_[local + 1]};
  }

  NodeId ToGlobal(NodeId local) const {
    DPPR_DCHECK(local < num_nodes());
    return global_ids_[local];
  }

  /// Maps a global id into the local id space; kInvalidNode when the node is
  /// not part of this subgraph.
  NodeId ToLocal(NodeId global) const {
    if (identity_) {
      return global < num_nodes() ? global : kInvalidNode;
    }
    auto it = global_to_local_.find(global);
    return it == global_to_local_.end() ? kInvalidNode : it->second;
  }

  std::span<const NodeId> global_ids() const { return global_ids_; }

 private:
  bool identity_ = false;
  std::vector<NodeId> global_ids_;
  std::vector<uint32_t> degree_denominator_;
  std::vector<size_t> out_offsets_;
  std::vector<NodeId> out_targets_;
  std::vector<size_t> in_offsets_;
  std::vector<NodeId> in_sources_;
  std::unordered_map<NodeId, NodeId> global_to_local_;
};

}  // namespace dppr

#endif  // DPPR_GRAPH_LOCAL_GRAPH_H_
