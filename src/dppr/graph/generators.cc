#include "dppr/graph/generators.h"

#include <algorithm>
#include <vector>

#include "dppr/common/rng.h"

namespace dppr {

Graph ErdosRenyi(size_t num_nodes, size_t num_edges, uint64_t seed,
                 const GraphBuildOptions& options) {
  DPPR_CHECK_GT(num_nodes, 0u);
  Rng rng(seed);
  GraphBuilder builder(num_nodes);
  for (size_t i = 0; i < num_edges; ++i) {
    NodeId u = static_cast<NodeId>(rng.Uniform(num_nodes));
    NodeId v = static_cast<NodeId>(rng.Uniform(num_nodes));
    builder.AddEdge(u, v);
  }
  return builder.Build(options);
}

Graph PreferentialAttachment(size_t num_nodes, uint32_t out_degree, uint64_t seed,
                             double reciprocal_prob, const GraphBuildOptions& options) {
  DPPR_CHECK_GT(num_nodes, 0u);
  Rng rng(seed);
  GraphBuilder builder(num_nodes);
  // `endpoints` holds one entry per received edge plus one per node, so
  // sampling uniformly from it is proportional to (in_degree + 1).
  std::vector<NodeId> endpoints;
  endpoints.reserve(num_nodes * (out_degree + 1));
  endpoints.push_back(0);
  for (NodeId u = 1; u < num_nodes; ++u) {
    for (uint32_t k = 0; k < out_degree; ++k) {
      NodeId target = endpoints[rng.Uniform(endpoints.size())];
      if (target == u) continue;  // occasional short degree keeps tail natural
      builder.AddEdge(u, target);
      endpoints.push_back(target);
      if (rng.NextBool(reciprocal_prob)) builder.AddEdge(target, u);
    }
    endpoints.push_back(u);
  }
  return builder.Build(options);
}

Graph Rmat(uint32_t scale, size_t num_edges, uint64_t seed,
           const RmatParams& params, const GraphBuildOptions& options) {
  DPPR_CHECK_LE(scale, 30u);
  size_t num_nodes = size_t{1} << scale;
  Rng rng(seed);
  GraphBuilder builder(num_nodes);
  for (size_t i = 0; i < num_edges; ++i) {
    NodeId u = 0;
    NodeId v = 0;
    for (uint32_t level = 0; level < scale; ++level) {
      double r = rng.NextDouble();
      // Mild per-level noise avoids the exact self-similar artifacts of pure
      // R-MAT while preserving skew.
      double a = params.a * (0.95 + 0.1 * rng.NextDouble());
      double b = params.b;
      double c = params.c;
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left: no bits set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    builder.AddEdge(u, v);
  }
  return builder.Build(options);
}

Graph CommunityDigraph(size_t num_nodes, size_t num_communities,
                       double avg_out_degree, double intra_prob, uint64_t seed,
                       const GraphBuildOptions& options) {
  DPPR_CHECK_GT(num_nodes, 0u);
  DPPR_CHECK_GT(num_communities, 0u);
  DPPR_CHECK_LE(num_communities, num_nodes);
  Rng rng(seed);

  // Contiguous community blocks of near-equal size.
  std::vector<NodeId> community_of(num_nodes);
  std::vector<std::vector<NodeId>> members(num_communities);
  for (NodeId u = 0; u < num_nodes; ++u) {
    NodeId c = static_cast<NodeId>((static_cast<uint64_t>(u) * num_communities) /
                                   num_nodes);
    community_of[u] = c;
    members[c].push_back(u);
  }

  GraphBuilder builder(num_nodes);
  // Per-community preferential endpoint pools.
  std::vector<std::vector<NodeId>> pools(num_communities);
  for (size_t c = 0; c < num_communities; ++c) pools[c] = members[c];

  size_t total_edges = static_cast<size_t>(avg_out_degree * num_nodes);
  for (size_t i = 0; i < total_edges; ++i) {
    NodeId u = static_cast<NodeId>(rng.Uniform(num_nodes));
    NodeId v;
    if (rng.NextBool(intra_prob)) {
      auto& pool = pools[community_of[u]];
      v = pool[rng.Uniform(pool.size())];
      pool.push_back(v);  // rich get richer within the community
    } else {
      v = static_cast<NodeId>(rng.Uniform(num_nodes));
    }
    if (u == v) continue;
    builder.AddEdge(u, v);
  }
  return builder.Build(options);
}

Graph CoAttendanceGraph(size_t num_users, size_t num_events,
                        uint32_t attendees_per_event, uint32_t max_pairs_per_event,
                        uint64_t seed, const GraphBuildOptions& options) {
  DPPR_CHECK_GT(num_users, 1u);
  Rng rng(seed);
  GraphBuilder builder(num_users);
  // Activity-weighted attendance pool (users who attended more events attend
  // more future events).
  std::vector<NodeId> pool;
  pool.reserve(num_users + num_events * attendees_per_event);
  for (NodeId u = 0; u < num_users; ++u) pool.push_back(u);

  std::vector<NodeId> attendees;
  for (size_t e = 0; e < num_events; ++e) {
    attendees.clear();
    for (uint32_t i = 0; i < attendees_per_event; ++i) {
      NodeId u = pool[rng.Uniform(pool.size())];
      attendees.push_back(u);
    }
    std::sort(attendees.begin(), attendees.end());
    attendees.erase(std::unique(attendees.begin(), attendees.end()),
                    attendees.end());
    for (NodeId u : attendees) pool.push_back(u);
    if (attendees.size() < 2) continue;
    for (uint32_t p = 0; p < max_pairs_per_event; ++p) {
      NodeId a = attendees[rng.Uniform(attendees.size())];
      NodeId b = attendees[rng.Uniform(attendees.size())];
      if (a == b) continue;
      builder.AddEdge(a, b);
      builder.AddEdge(b, a);
    }
  }
  return builder.Build(options);
}

}  // namespace dppr
