#ifndef DPPR_GRAPH_GENERATORS_H_
#define DPPR_GRAPH_GENERATORS_H_

#include <cstddef>
#include <cstdint>

#include "dppr/graph/graph.h"
#include "dppr/graph/graph_builder.h"

namespace dppr {

/// Deterministic synthetic graph generators. These are the stand-ins for the
/// paper's real datasets (DESIGN.md §2); every generator is seeded and
/// reproducible.

/// G(n, m): m directed edges with uniformly random distinct endpoints.
Graph ErdosRenyi(size_t num_nodes, size_t num_edges, uint64_t seed,
                 const GraphBuildOptions& options = {});

/// Directed preferential attachment: node u >= 1 adds `out_degree` edges
/// whose targets are sampled proportionally to (in_degree + 1) over earlier
/// nodes; each edge is reciprocated with probability `reciprocal_prob`
/// (email graphs are reply-heavy, which keeps early nodes from becoming
/// absorbing sinks). Produces the heavy-tailed in-degree typical of
/// email/web link data.
Graph PreferentialAttachment(size_t num_nodes, uint32_t out_degree, uint64_t seed,
                             double reciprocal_prob = 0.3,
                             const GraphBuildOptions& options = {});

/// Recursive-matrix (R-MAT) generator; `scale` = log2 of node-id space.
/// Defaults mimic the classic (0.57, 0.19, 0.19, 0.05) web-like skew.
struct RmatParams {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
};
Graph Rmat(uint32_t scale, size_t num_edges, uint64_t seed,
           const RmatParams& params = {}, const GraphBuildOptions& options = {});

/// Community-structured digraph: nodes are split into `num_communities`
/// groups; each node draws `avg_out_degree` edges on average, choosing an
/// intra-community target with probability `intra_prob` (preferential inside
/// the community, uniform across the rest). Models social graphs whose
/// communities give graph partitioning small separators.
Graph CommunityDigraph(size_t num_nodes, size_t num_communities,
                       double avg_out_degree, double intra_prob, uint64_t seed,
                       const GraphBuildOptions& options = {});

/// Co-attendance social graph (Meetup stand-in): `num_events` events each
/// draw an attendee set (preferentially towards active users) and connect a
/// bounded number of attendee pairs in both directions. Yields the dense,
/// overlapping-clique structure of event co-attendance networks.
Graph CoAttendanceGraph(size_t num_users, size_t num_events,
                        uint32_t attendees_per_event, uint32_t max_pairs_per_event,
                        uint64_t seed, const GraphBuildOptions& options = {});

}  // namespace dppr

#endif  // DPPR_GRAPH_GENERATORS_H_
