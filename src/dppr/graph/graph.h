#ifndef DPPR_GRAPH_GRAPH_H_
#define DPPR_GRAPH_GRAPH_H_

#include <cstddef>
#include <span>
#include <vector>

#include "dppr/common/macros.h"
#include "dppr/graph/types.h"

namespace dppr {

/// Immutable directed graph in CSR (compressed sparse row) form.
///
/// Out-adjacency is always present; in-adjacency is built on demand by
/// GraphBuilder (needed by reverse-push skeleton computation and by some
/// generators/analyses). Construction goes through GraphBuilder; Graph itself
/// only exposes read access.
///
/// Graph satisfies the GraphView concept used by the PPR kernels:
///   num_nodes(), degree_denominator(u), OutNeighbors(u).
/// For a full graph the random-walk denominator equals the out-degree.
class Graph {
 public:
  Graph() = default;

  size_t num_nodes() const { return out_offsets_.empty() ? 0 : out_offsets_.size() - 1; }
  size_t num_edges() const { return out_targets_.size(); }

  uint32_t out_degree(NodeId u) const {
    DPPR_DCHECK(u < num_nodes());
    return static_cast<uint32_t>(out_offsets_[u + 1] - out_offsets_[u]);
  }

  /// Random-walk denominator: the number of outgoing edges of u. Named this
  /// way for interface parity with LocalGraph, where the denominator is the
  /// *original* out-degree, not the local one.
  uint32_t degree_denominator(NodeId u) const { return out_degree(u); }

  std::span<const NodeId> OutNeighbors(NodeId u) const {
    DPPR_DCHECK(u < num_nodes());
    return {out_targets_.data() + out_offsets_[u],
            out_targets_.data() + out_offsets_[u + 1]};
  }

  bool has_in_edges() const { return !in_offsets_.empty(); }

  uint32_t in_degree(NodeId u) const {
    DPPR_DCHECK(has_in_edges() && u < num_nodes());
    return static_cast<uint32_t>(in_offsets_[u + 1] - in_offsets_[u]);
  }

  std::span<const NodeId> InNeighbors(NodeId u) const {
    DPPR_DCHECK(has_in_edges() && u < num_nodes());
    return {in_sources_.data() + in_offsets_[u],
            in_sources_.data() + in_offsets_[u + 1]};
  }

  /// Number of nodes with zero out-degree.
  size_t CountDanglingNodes() const;

  /// True if the directed edge (u, v) exists (binary search; adjacency is
  /// sorted by GraphBuilder).
  bool HasEdge(NodeId u, NodeId v) const;

  /// Approximate heap footprint of the CSR arrays, in bytes.
  size_t MemoryBytes() const;

 private:
  friend class GraphBuilder;

  std::vector<size_t> out_offsets_;
  std::vector<NodeId> out_targets_;
  std::vector<size_t> in_offsets_;   // empty unless built
  std::vector<NodeId> in_sources_;
};

}  // namespace dppr

#endif  // DPPR_GRAPH_GRAPH_H_
