#include "dppr/graph/graph_stats.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <vector>

namespace dppr {
namespace {

// Union-find over node ids for weak-connectivity.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n), rank_(n, 0) {
    std::iota(parent_.begin(), parent_.end(), NodeId{0});
  }

  NodeId Find(NodeId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(NodeId a, NodeId b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
  }

 private:
  std::vector<NodeId> parent_;
  std::vector<uint8_t> rank_;
};

}  // namespace

GraphStats ComputeGraphStats(const Graph& graph) {
  GraphStats stats;
  stats.num_nodes = graph.num_nodes();
  stats.num_edges = graph.num_edges();

  DisjointSets sets(graph.num_nodes());
  std::vector<uint32_t> in_degree(graph.num_nodes(), 0);
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    uint32_t d = graph.out_degree(u);
    if (d == 0) ++stats.num_dangling;
    stats.max_out_degree = std::max(stats.max_out_degree, d);
    for (NodeId v : graph.OutNeighbors(u)) {
      if (v == u) ++stats.num_self_loops;
      ++in_degree[v];
      sets.Union(u, v);
    }
  }
  for (uint32_t d : in_degree) stats.max_in_degree = std::max(stats.max_in_degree, d);
  stats.avg_out_degree =
      stats.num_nodes == 0
          ? 0.0
          : static_cast<double>(stats.num_edges) / static_cast<double>(stats.num_nodes);

  std::vector<size_t> component_size(graph.num_nodes(), 0);
  for (NodeId u = 0; u < graph.num_nodes(); ++u) ++component_size[sets.Find(u)];
  for (size_t size : component_size) {
    if (size > 0) {
      ++stats.num_weak_components;
      stats.largest_weak_component = std::max(stats.largest_weak_component, size);
    }
  }
  return stats;
}

std::vector<size_t> OutDegreeHistogram(const Graph& graph, uint32_t max_degree) {
  std::vector<size_t> histogram(max_degree + 1, 0);
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    ++histogram[std::min(graph.out_degree(u), max_degree)];
  }
  return histogram;
}

std::string GraphStats::ToString() const {
  std::ostringstream os;
  os << "nodes=" << num_nodes << " edges=" << num_edges
     << " avg_out=" << avg_out_degree << " dangling=" << num_dangling
     << " self_loops=" << num_self_loops << " max_out=" << max_out_degree
     << " max_in=" << max_in_degree << " weak_components=" << num_weak_components
     << " largest_weak=" << largest_weak_component;
  return os.str();
}

}  // namespace dppr
