#include "dppr/graph/graph.h"

#include <algorithm>

namespace dppr {

size_t Graph::CountDanglingNodes() const {
  size_t count = 0;
  for (NodeId u = 0; u < num_nodes(); ++u) {
    if (out_degree(u) == 0) ++count;
  }
  return count;
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  auto nbrs = OutNeighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

size_t Graph::MemoryBytes() const {
  return out_offsets_.size() * sizeof(size_t) +
         out_targets_.size() * sizeof(NodeId) +
         in_offsets_.size() * sizeof(size_t) + in_sources_.size() * sizeof(NodeId);
}

}  // namespace dppr
