#ifndef DPPR_GRAPH_GRAPH_BUILDER_H_
#define DPPR_GRAPH_GRAPH_BUILDER_H_

#include <vector>

#include "dppr/graph/graph.h"
#include "dppr/graph/types.h"

namespace dppr {

/// What to do with dangling nodes (zero out-degree) at build time.
///
/// The Jeh–Widom decomposition requires query-independent precomputation, so
/// the paper's Algorithm-2 trick of redirecting dangling mass to the query
/// node cannot be used by the indexes. The library therefore normalizes
/// dangling nodes once at build time and runs every engine (power iteration,
/// GPA, HGPA, baselines) on the identical graph, keeping exactness
/// comparisons meaningful. See DESIGN.md §2.
enum class DanglingPolicy {
  /// Leave dangling nodes in place; random-walk mass entering them dies.
  kKeep,
  /// Add a self-loop to every dangling node (default for datasets).
  kSelfLoop,
};

struct GraphBuildOptions {
  /// Collapse parallel edges. PPR weights walk steps by 1/out_degree, so
  /// duplicates would skew transition probabilities unless intended.
  bool dedupe_parallel_edges = true;
  /// Drop edges (u, u).
  bool remove_self_loops = false;
  DanglingPolicy dangling = DanglingPolicy::kKeep;
  /// Also build the in-adjacency CSR.
  bool build_in_edges = true;
};

/// Accumulates edges and produces an immutable CSR Graph.
class GraphBuilder {
 public:
  /// `num_nodes` fixes the id space [0, num_nodes). Edges with endpoints
  /// outside the range are rejected with DPPR_CHECK.
  explicit GraphBuilder(size_t num_nodes) : num_nodes_(num_nodes) {}

  void AddEdge(NodeId from, NodeId to);
  void AddEdges(const EdgeList& edges);

  size_t num_pending_edges() const { return edges_.size(); }

  /// Builds the graph. The builder may be reused afterwards (it keeps its
  /// edge buffer untouched).
  Graph Build(const GraphBuildOptions& options = {}) const;

 private:
  size_t num_nodes_;
  EdgeList edges_;
};

}  // namespace dppr

#endif  // DPPR_GRAPH_GRAPH_BUILDER_H_
