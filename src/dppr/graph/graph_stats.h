#ifndef DPPR_GRAPH_GRAPH_STATS_H_
#define DPPR_GRAPH_GRAPH_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "dppr/graph/graph.h"

namespace dppr {

/// Summary statistics used by dataset validation and bench logging.
struct GraphStats {
  size_t num_nodes = 0;
  size_t num_edges = 0;
  size_t num_dangling = 0;
  size_t num_self_loops = 0;
  uint32_t max_out_degree = 0;
  uint32_t max_in_degree = 0;
  double avg_out_degree = 0.0;
  size_t num_weak_components = 0;
  size_t largest_weak_component = 0;

  std::string ToString() const;
};

GraphStats ComputeGraphStats(const Graph& graph);

/// out-degree histogram: result[d] = #nodes with out-degree d (capped at
/// `max_degree`, larger degrees counted in the last bucket).
std::vector<size_t> OutDegreeHistogram(const Graph& graph, uint32_t max_degree);

}  // namespace dppr

#endif  // DPPR_GRAPH_GRAPH_STATS_H_
