#ifndef DPPR_SERVE_RESULT_CACHE_H_
#define DPPR_SERVE_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "dppr/obs/metrics.h"
#include "dppr/ppr/sparse_vector.h"

namespace dppr {

/// Front-door result cache: completed PPVs keyed by an opaque 64-bit key
/// (the server packs source, prune tolerance, and query kind into it),
/// byte-budgeted LRU, sharded so concurrent clients hitting different
/// sources never contend on one mutex. Values are shared_ptr snapshots — a
/// hit pins the vector it returns, so Invalidate/eviction racing a reader
/// can never free bytes mid-copy.
///
/// hits/misses/evictions/bytes live in the process MetricsRegistry under the
/// owning server's label (`serve.cache.*{server="N"}`), so a metrics dump
/// and ServerStats read the same counters.
class ResultCache {
 public:
  struct Options {
    /// Total byte budget across shards; 0 disables the cache entirely
    /// (Find always misses silently, Insert is a no-op).
    size_t byte_budget = 0;
    size_t shards = 16;
  };

  /// `series_label` is the owning server's registry label suffix (e.g.
  /// `{server="0"}`).
  ResultCache(const Options& options, const std::string& series_label);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  bool enabled() const { return budget_per_shard_ > 0; }

  /// The cached PPV, or null on a miss (counts a hit or miss when enabled;
  /// disabled caches count nothing).
  std::shared_ptr<const SparseVector> Find(uint64_t key);

  /// Copies `value` in under `key` (replacing any previous entry), then
  /// evicts LRU entries until the shard fits its budget share. Entries
  /// larger than a whole shard's budget are not cached — they would evict
  /// everything and then themselves.
  void Insert(uint64_t key, const SparseVector& value);

  /// Drops one key (the refresh path's per-source hook); missing keys are a
  /// no-op.
  void Invalidate(uint64_t key);
  void InvalidateAll();

  uint64_t hits() const { return hits_->Value(); }
  uint64_t misses() const { return misses_->Value(); }
  uint64_t evictions() const { return evictions_->Value(); }
  /// Approximate resident bytes (entry payloads + bookkeeping overhead).
  int64_t bytes() const { return bytes_->Value(); }
  size_t entries() const;

 private:
  struct Entry {
    uint64_t key;
    std::shared_ptr<const SparseVector> value;
    size_t bytes;
  };
  struct Shard {
    std::mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index;
    size_t bytes = 0;
  };

  Shard& ShardFor(uint64_t key);

  size_t budget_per_shard_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* evictions_;
  obs::Gauge* bytes_;
};

}  // namespace dppr

#endif  // DPPR_SERVE_RESULT_CACHE_H_
