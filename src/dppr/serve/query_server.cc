#include "dppr/serve/query_server.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "dppr/common/macros.h"

namespace dppr {

QueryServer::QueryServer(HgpaQueryEngine engine, ServeOptions options)
    : engine_(std::move(engine)), options_(options) {
  DPPR_CHECK_GE(options_.max_batch, 1u);
  if (options_.thread_cpu_timer) {
    engine_.set_machine_timer(SimCluster::TimerKind::kThreadCpu);
  }
  storage_baseline_ = engine_.index().StorageStatsTotal();
}

QueryServer::Response QueryServer::Query(NodeId node) {
  return Submit({{node, 1.0}});
}

QueryServer::Response QueryServer::QueryPreferenceSet(
    std::vector<Preference> preferences) {
  return Submit(std::move(preferences));
}

QueryServer::TopKResponse QueryServer::QueryTopK(NodeId node, size_t k) {
  Response full = Query(node);
  std::vector<SparseVector::Entry> entries(full.ppv.entries().begin(),
                                           full.ppv.entries().end());
  size_t keep = std::min(k, entries.size());
  std::partial_sort(entries.begin(), entries.begin() + keep, entries.end(),
                    [](const SparseVector::Entry& a, const SparseVector::Entry& b) {
                      if (a.value != b.value) return a.value > b.value;
                      return a.index < b.index;
                    });
  entries.resize(keep);
  return TopKResponse{std::move(entries), full.metrics, full.latency_seconds};
}

QueryServer::Response QueryServer::Submit(std::vector<Preference> preferences) {
  Request request;
  request.preferences = std::move(preferences);

  std::unique_lock<std::mutex> lock(mu_);
  request.admitted.Restart();
  pending_.push_back(&request);
  while (!request.done) {
    if (!leader_active_) {
      // Combining leader: serve FIFO batches until our own request is done,
      // then hand leadership to a still-waiting thread. Leading only to our
      // own completion (not until the queue drains) keeps every caller's
      // latency bounded under sustained load — a drain-to-empty leader never
      // returns while new requests keep arriving.
      leader_active_ = true;
      while (!request.done) RunOneBatch(lock);
      leader_active_ = false;
      if (!pending_.empty()) done_cv_.notify_all();
    } else {
      done_cv_.wait(lock, [&] { return request.done || !leader_active_; });
    }
  }
  return Response{std::move(request.result), request.metrics,
                  request.latency_seconds};
}

void QueryServer::RunOneBatch(std::unique_lock<std::mutex>& lock) {
  // The leader only loops while its own request is unanswered, and that
  // request sits in pending_ until the batch that answers it.
  DPPR_CHECK(!pending_.empty());
  size_t take = std::min(options_.max_batch, pending_.size());
  std::vector<Request*> batch(pending_.begin(), pending_.begin() + take);
  pending_.erase(pending_.begin(), pending_.begin() + take);

  std::vector<std::vector<Preference>> queries;
  queries.reserve(take);
  // Moved, not copied: the request only needs its result from here on.
  for (Request* request : batch) queries.push_back(std::move(request->preferences));

  lock.unlock();
  std::vector<QueryMetrics> per_query;
  QueryMetrics round;
  std::vector<SparseVector> ppvs =
      engine_.QueryPreferenceSetMany(queries, &per_query, &round);
  lock.lock();

  for (size_t i = 0; i < batch.size(); ++i) {
    Request* request = batch[i];
    request->result = std::move(ppvs[i]);
    request->metrics = per_query[i];
    request->latency_seconds = request->admitted.ElapsedSeconds();
    request->done = true;
    if (latencies_seconds_.size() < kLatencyWindow) {
      latencies_seconds_.push_back(request->latency_seconds);
    } else {
      latencies_seconds_[latency_cursor_] = request->latency_seconds;
      latency_cursor_ = (latency_cursor_ + 1) % kLatencyWindow;
    }
  }
  queries_ += take;
  ++rounds_;
  comm_ += round.comm;
  done_cv_.notify_all();
}

namespace {

double PercentileMs(std::vector<double>& seconds_scratch, double fraction) {
  if (seconds_scratch.empty()) return 0.0;
  size_t rank = static_cast<size_t>(
      std::ceil(fraction * static_cast<double>(seconds_scratch.size())));
  rank = std::min(std::max<size_t>(rank, 1), seconds_scratch.size()) - 1;
  std::nth_element(seconds_scratch.begin(), seconds_scratch.begin() + rank,
                   seconds_scratch.end());
  return seconds_scratch[rank] * 1e3;
}

}  // namespace

ServerStats QueryServer::Stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  ServerStats stats;
  stats.queries = queries_;
  stats.rounds = rounds_;
  stats.wall_seconds = window_.ElapsedSeconds();
  stats.qps = stats.wall_seconds > 0.0
                  ? static_cast<double>(queries_) / stats.wall_seconds
                  : 0.0;
  stats.mean_batch = rounds_ > 0
                         ? static_cast<double>(queries_) / static_cast<double>(rounds_)
                         : 0.0;
  std::vector<double> scratch = latencies_seconds_;  // one copy for both
  stats.p50_latency_ms = PercentileMs(scratch, 0.50);
  stats.p95_latency_ms = PercentileMs(scratch, 0.95);
  stats.comm = comm_;
  StorageStats storage =
      engine_.index().StorageStatsTotal().Since(storage_baseline_);
  stats.cache_hits = storage.cache_hits;
  stats.cache_misses = storage.cache_misses;
  stats.disk_bytes_read = storage.disk_bytes_read;
  return stats;
}

void QueryServer::ResetStats() {
  std::unique_lock<std::mutex> lock(mu_);
  queries_ = 0;
  rounds_ = 0;
  comm_ = CommStats{};
  latencies_seconds_.clear();
  latency_cursor_ = 0;
  storage_baseline_ = engine_.index().StorageStatsTotal();
  window_.Restart();
}

}  // namespace dppr
