#include "dppr/serve/query_server.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <utility>

#include "dppr/common/macros.h"
#include "dppr/obs/trace.h"

namespace dppr {
namespace {

/// Distinct label per server instance, so several servers in one process
/// (equivalence tests run an inproc and a tcp server side by side) keep
/// independent series and windowed stats never bleed across servers.
std::string ServerLabel() {
  static std::atomic<uint64_t> next_id{0};
  return "{server=\"" +
         std::to_string(next_id.fetch_add(1, std::memory_order_relaxed)) +
         "\"}";
}

}  // namespace

QueryServer::QueryServer(HgpaQueryEngine engine, ServeOptions options)
    : engine_(std::move(engine)), options_(options) {
  DPPR_CHECK_GE(options_.max_batch, 1u);
  if (options_.thread_cpu_timer) {
    engine_.set_machine_timer(SimCluster::TimerKind::kThreadCpu);
  }
  const std::string label = ServerLabel();
  auto& registry = obs::MetricsRegistry::Global();
  series_ = Series{registry.GetCounter("serve.queries" + label),
                   registry.GetCounter("serve.rounds" + label),
                   registry.GetCounter("serve.comm_bytes" + label),
                   registry.GetCounter("serve.comm_messages" + label),
                   registry.GetHistogram("serve.query_latency_us" + label),
                   registry.GetHistogram("serve.admission_wait_us" + label),
                   registry.GetHistogram("serve.batch_size" + label)};
  window_baseline_ = CaptureBaseline();
  storage_baseline_ = engine_.index().StorageStatsTotal();
}

QueryServer::Response QueryServer::Query(NodeId node) {
  return Submit({{node, 1.0}});
}

QueryServer::Response QueryServer::QueryPreferenceSet(
    std::vector<Preference> preferences) {
  return Submit(std::move(preferences));
}

QueryServer::TopKResponse QueryServer::QueryTopK(NodeId node, size_t k) {
  Response full = Query(node);
  std::vector<SparseVector::Entry> entries(full.ppv.entries().begin(),
                                           full.ppv.entries().end());
  size_t keep = std::min(k, entries.size());
  std::partial_sort(entries.begin(), entries.begin() + keep, entries.end(),
                    [](const SparseVector::Entry& a, const SparseVector::Entry& b) {
                      if (a.value != b.value) return a.value > b.value;
                      return a.index < b.index;
                    });
  entries.resize(keep);
  return TopKResponse{std::move(entries), full.metrics, full.latency_seconds};
}

QueryServer::Response QueryServer::Submit(std::vector<Preference> preferences) {
  Request request;
  request.preferences = std::move(preferences);

  obs::TraceSpan span(obs::kCoordinatorLane, "serve.request");

  std::unique_lock<std::mutex> lock(mu_);
  request.id = next_request_id_++;
  span.Arg("request", request.id);
  request.admitted.Restart();
  pending_.push_back(&request);
  while (!request.done) {
    if (!leader_active_) {
      // Combining leader: serve FIFO batches until our own request is done,
      // then hand leadership to a still-waiting thread. Leading only to our
      // own completion (not until the queue drains) keeps every caller's
      // latency bounded under sustained load — a drain-to-empty leader never
      // returns while new requests keep arriving.
      leader_active_ = true;
      while (!request.done) RunOneBatch(lock);
      leader_active_ = false;
      if (!pending_.empty()) done_cv_.notify_all();
    } else {
      done_cv_.wait(lock, [&] { return request.done || !leader_active_; });
    }
  }
  return Response{std::move(request.result), request.metrics,
                  request.latency_seconds};
}

void QueryServer::RunOneBatch(std::unique_lock<std::mutex>& lock) {
  // The leader only loops while its own request is unanswered, and that
  // request sits in pending_ until the batch that answers it.
  DPPR_CHECK(!pending_.empty());
  size_t take = std::min(options_.max_batch, pending_.size());
  std::vector<Request*> batch(pending_.begin(), pending_.begin() + take);
  pending_.erase(pending_.begin(), pending_.begin() + take);

  obs::Tracer& tracer = obs::Tracer::Global();
  std::vector<std::vector<Preference>> queries;
  queries.reserve(take);
  for (Request* request : batch) {
    // Admission wait ends here: the request leaves the queue for a round.
    const double wait_seconds = request->admitted.ElapsedSeconds();
    series_.admission_wait_us->Record(
        static_cast<uint64_t>(wait_seconds * 1e6));
    if (tracer.enabled()) {
      const double wait_us = wait_seconds * 1e6;
      tracer.RecordComplete("serve.wait", tracer.NowMicros() - wait_us,
                            wait_us, obs::kCoordinatorLane,
                            {{{"request", request->id}, {}, {}}});
    }
    // Moved, not copied: the request only needs its result from here on.
    queries.push_back(std::move(request->preferences));
  }
  series_.batch_size->Record(take);

  lock.unlock();
  std::vector<QueryMetrics> per_query;
  QueryMetrics round;
  std::vector<SparseVector> ppvs;
  {
    obs::TraceSpan round_span(obs::kCoordinatorLane, "serve.round");
    round_span.Arg("batch", take);
    round_span.Arg("first_request", batch.front()->id);
    ppvs = engine_.QueryPreferenceSetMany(queries, &per_query, &round);
  }
  lock.lock();

  for (size_t i = 0; i < batch.size(); ++i) {
    Request* request = batch[i];
    request->result = std::move(ppvs[i]);
    request->metrics = per_query[i];
    request->latency_seconds = request->admitted.ElapsedSeconds();
    request->done = true;
    series_.latency_us->Record(
        static_cast<uint64_t>(request->latency_seconds * 1e6));
  }
  series_.queries->Add(take);
  series_.rounds->Increment();
  series_.comm_bytes->Add(round.comm.bytes);
  series_.comm_messages->Add(round.comm.messages);
  done_cv_.notify_all();
}

QueryServer::WindowBaseline QueryServer::CaptureBaseline() const {
  return WindowBaseline{series_.queries->Value(),
                        series_.rounds->Value(),
                        series_.comm_bytes->Value(),
                        series_.comm_messages->Value(),
                        series_.latency_us->TakeSnapshot()};
}

ServerStats QueryServer::Stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  ServerStats stats;
  stats.queries = series_.queries->Value() - window_baseline_.queries;
  stats.rounds = series_.rounds->Value() - window_baseline_.rounds;
  stats.wall_seconds = window_.ElapsedSeconds();
  stats.qps = stats.wall_seconds > 0.0
                  ? static_cast<double>(stats.queries) / stats.wall_seconds
                  : 0.0;
  stats.mean_batch =
      stats.rounds > 0 ? static_cast<double>(stats.queries) /
                             static_cast<double>(stats.rounds)
                       : 0.0;
  const obs::Histogram::Snapshot window =
      series_.latency_us->TakeSnapshot().Since(window_baseline_.latency);
  stats.p50_latency_ms = static_cast<double>(window.Quantile(0.5)) / 1e3;
  stats.p95_latency_ms = static_cast<double>(window.Quantile(0.95)) / 1e3;
  stats.p99_latency_ms = static_cast<double>(window.Quantile(0.99)) / 1e3;
  stats.p999_latency_ms = static_cast<double>(window.Quantile(0.999)) / 1e3;
  stats.comm.bytes = series_.comm_bytes->Value() - window_baseline_.comm_bytes;
  stats.comm.messages =
      series_.comm_messages->Value() - window_baseline_.comm_messages;
  StorageStats storage =
      engine_.index().StorageStatsTotal().Since(storage_baseline_);
  stats.cache_hits = storage.cache_hits;
  stats.cache_misses = storage.cache_misses;
  stats.disk_bytes_read = storage.disk_bytes_read;
  stats.prefetch_issued = storage.prefetch_issued;
  stats.prefetch_hits = storage.prefetch_hits;
  stats.prefetch_coalesced_reads = storage.prefetch_coalesced_reads;
  stats.prefetch_bytes = storage.prefetch_bytes;
  return stats;
}

void QueryServer::ResetStats() {
  std::unique_lock<std::mutex> lock(mu_);
  window_baseline_ = CaptureBaseline();
  storage_baseline_ = engine_.index().StorageStatsTotal();
  window_.Restart();
}

}  // namespace dppr
