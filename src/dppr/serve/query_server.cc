#include "dppr/serve/query_server.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdio>
#include <string>
#include <utility>

#include "dppr/common/env.h"
#include "dppr/common/macros.h"
#include "dppr/obs/trace.h"

namespace dppr {
namespace {

/// Distinct label per server instance, so several servers in one process
/// (equivalence tests run an inproc and a tcp server side by side) keep
/// independent series and windowed stats never bleed across servers.
std::string ServerLabel() {
  static std::atomic<uint64_t> next_id{0};
  return "{server=\"" +
         std::to_string(next_id.fetch_add(1, std::memory_order_relaxed)) +
         "\"}";
}

}  // namespace

ServeOptions ServeOptions::FromEnv() {
  ServeOptions options;
  int64_t max_pending = GetEnvInt("DPPR_MAX_PENDING", 0);
  DPPR_CHECK_GE(max_pending, 0);
  options.max_pending = static_cast<size_t>(max_pending);
  std::string admission = GetEnvString("DPPR_ADMISSION", "");
  if (admission == "shed") {
    options.shed_on_overload = true;
  } else if (admission == "block") {
    options.shed_on_overload = false;
  } else if (!admission.empty()) {
    // Same policy as the other knobs: a typo must not silently pick a
    // different overload behavior than the operator asked for.
    std::fprintf(stderr, "unknown DPPR_ADMISSION value: %s\n",
                 admission.c_str());
    DPPR_CHECK(admission == "shed" || admission == "block");
  }
  int64_t cache_bytes = GetEnvInt("DPPR_RESULT_CACHE_BYTES", 0);
  DPPR_CHECK_GE(cache_bytes, 0);
  options.result_cache_bytes = static_cast<size_t>(cache_bytes);
  options.slow_query_us = GetEnvInt("DPPR_SLOW_QUERY_US", -1);
  options.slow_query_log_path = GetEnvString("DPPR_SLOW_QUERY_LOG", "");
  return options;
}

QueryServer::QueryServer(HgpaQueryEngine engine, ServeOptions options)
    : engine_(std::move(engine)),
      options_(options),
      label_(ServerLabel()),
      cache_(ResultCache::Options{options.result_cache_bytes, 16}, label_),
      profiles_(ProfileLog::Options{options.slow_query_us,
                                    options.slow_query_log_path, 64, 32}) {
  DPPR_CHECK_GE(options_.max_batch, 1u);
  if (options_.thread_cpu_timer) {
    engine_.set_machine_timer(SimCluster::TimerKind::kThreadCpu);
  }
  auto& registry = obs::MetricsRegistry::Global();
  series_ = Series{registry.GetCounter("serve.queries" + label_),
                   registry.GetCounter("serve.rounds" + label_),
                   registry.GetCounter("serve.comm_bytes" + label_),
                   registry.GetCounter("serve.comm_messages" + label_),
                   registry.GetHistogram("serve.query_latency_us" + label_),
                   registry.GetHistogram("serve.admission_wait_us" + label_),
                   registry.GetHistogram("serve.batch_size" + label_),
                   registry.GetCounter("serve.shed" + label_),
                   registry.GetCounter("serve.routing.machine_rounds" + label_),
                   registry.GetCounter("serve.routing.bytes_saved" + label_),
                   registry.GetHistogram("serve.routing.machines_per_query" +
                                         label_)};
  window_baseline_ = CaptureBaseline();
  storage_baseline_ = engine_.index().StorageStatsTotal();
}

uint64_t QueryServer::CacheKey(NodeId source) const {
  // Mix the tolerance bits (and a kind byte, currently always full-PPV) so
  // entries from servers over differently-pruned indexes can never alias if
  // the key space is ever shared.
  uint64_t h = std::bit_cast<uint64_t>(engine_.index().options().ppr.tolerance);
  h ^= h >> 33;
  h *= 0x9E3779B97F4A7C15ULL;
  h ^= h >> 29;
  return h ^ static_cast<uint64_t>(source);
}

void QueryServer::Invalidate(NodeId source) {
  cache_.Invalidate(CacheKey(source));
}

void QueryServer::InvalidateAll() { cache_.InvalidateAll(); }

QueryServer::Response QueryServer::Query(NodeId node) {
  return Submit({{node, 1.0}});
}

QueryServer::Response QueryServer::QueryPreferenceSet(
    std::vector<Preference> preferences) {
  return Submit(std::move(preferences));
}

QueryServer::TopKResponse QueryServer::QueryTopK(NodeId node, size_t k) {
  Response full = Query(node);
  if (full.shed) {
    return TopKResponse{{},   full.metrics, full.latency_seconds,
                        true, false,        full.trace_id};
  }
  std::vector<SparseVector::Entry> entries(full.ppv.entries().begin(),
                                           full.ppv.entries().end());
  size_t keep = std::min(k, entries.size());
  std::partial_sort(entries.begin(), entries.begin() + keep, entries.end(),
                    [](const SparseVector::Entry& a, const SparseVector::Entry& b) {
                      if (a.value != b.value) return a.value > b.value;
                      return a.index < b.index;
                    });
  entries.resize(keep);
  return TopKResponse{std::move(entries), full.metrics,   full.latency_seconds,
                      false,              full.cache_hit, full.trace_id};
}

QueryServer::Response QueryServer::Submit(std::vector<Preference> preferences) {
  // Every request gets a fresh trace identity at the front door; the scope
  // makes it the calling thread's context, so the serve.request span — and,
  // via SimCluster's context re-establishment, every machine/store/net span
  // and frame header this request causes — carries its trace id.
  const obs::TraceContext trace{obs::NewTraceId(), obs::NewTraceId()};
  obs::TraceContextScope trace_scope(trace);
  // Single-source weight-1.0 identity, for the cache and the profile.
  const NodeId source = preferences.size() == 1 && preferences[0].weight == 1.0
                            ? preferences[0].node
                            : kInvalidNode;
  const size_t num_preferences = preferences.size();

  // Front-door cache: only single-source weight-1.0 requests are cacheable
  // (preference sets are combinatorial — caching them would thrash the
  // budget for near-zero reuse). A hit never touches the cluster.
  const bool cacheable = cache_.enabled() && source != kInvalidNode;
  uint64_t cache_key = 0;
  if (cacheable) {
    cache_key = CacheKey(source);
    WallTimer lookup;
    if (std::shared_ptr<const SparseVector> hit = cache_.Find(cache_key)) {
      Response response;
      response.ppv = *hit;
      response.cache_hit = true;
      response.latency_seconds = lookup.ElapsedSeconds();
      response.trace_id = trace.trace_id;
      // A hit is a served query: it counts into qps and the latency
      // histogram (that is the goodput the cache buys), but runs no round.
      series_.queries->Add(1);
      series_.latency_us->Record(
          static_cast<uint64_t>(response.latency_seconds * 1e6));
      series_.machines_per_query->Record(0);
      QueryProfile profile;
      profile.trace_id = trace.trace_id;
      profile.outcome = QueryProfile::Outcome::kCacheHit;
      profile.source = source;
      profile.num_preferences = num_preferences;
      profile.latency_seconds = response.latency_seconds;
      profiles_.Observe(profile);
      return response;
    }
  }

  Request request;
  request.preferences = std::move(preferences);
  request.cacheable = cacheable;
  request.cache_key = cache_key;
  request.trace = trace;

  obs::TraceSpan span(obs::kCoordinatorLane, "serve.request");

  std::unique_lock<std::mutex> lock(mu_);
  if (options_.max_pending > 0 && pending_.size() >= options_.max_pending) {
    if (options_.shed_on_overload) {
      series_.shed->Increment();
      Response response;
      response.shed = true;
      response.trace_id = trace.trace_id;
      QueryProfile profile;
      profile.trace_id = trace.trace_id;
      profile.outcome = QueryProfile::Outcome::kShed;
      profile.source = source;
      profile.num_preferences = num_preferences;
      lock.unlock();  // Observe may touch the log sink; don't hold mu_
      profiles_.Observe(profile);
      return response;
    }
    // Block policy: wait for the leader to drain the queue below the bound.
    done_cv_.wait(lock,
                  [&] { return pending_.size() < options_.max_pending; });
  }
  request.id = next_request_id_++;
  span.Arg("request", request.id);
  request.admitted.Restart();
  pending_.push_back(&request);
  while (!request.done) {
    if (!leader_active_) {
      // Combining leader: serve FIFO batches until our own request is done,
      // then hand leadership to a still-waiting thread. Leading only to our
      // own completion (not until the queue drains) keeps every caller's
      // latency bounded under sustained load — a drain-to-empty leader never
      // returns while new requests keep arriving.
      leader_active_ = true;
      while (!request.done) RunOneBatch(lock);
      leader_active_ = false;
      if (!pending_.empty()) done_cv_.notify_all();
    } else {
      done_cv_.wait(lock, [&] { return request.done || !leader_active_; });
    }
  }
  Response response;
  response.ppv = std::move(request.result);
  response.metrics = request.metrics;
  response.latency_seconds = request.latency_seconds;
  response.trace_id = trace.trace_id;
  return response;
}

void QueryServer::RunOneBatch(std::unique_lock<std::mutex>& lock) {
  // The leader only loops while its own request is unanswered, and that
  // request sits in pending_ until the batch that answers it.
  DPPR_CHECK(!pending_.empty());
  size_t take = std::min(options_.max_batch, pending_.size());
  std::vector<Request*> batch(pending_.begin(), pending_.begin() + take);
  pending_.erase(pending_.begin(), pending_.begin() + take);

  obs::Tracer& tracer = obs::Tracer::Global();
  std::vector<std::vector<Preference>> queries;
  queries.reserve(take);
  // Profile skeletons: request identity must be copied out before the
  // preferences move below (and before waiters can wake and destroy their
  // stack-allocated Requests).
  std::vector<QueryProfile> profiles(take);
  for (size_t i = 0; i < take; ++i) {
    Request* request = batch[i];
    // Admission wait ends here: the request leaves the queue for a round.
    request->wait_seconds = request->admitted.ElapsedSeconds();
    series_.admission_wait_us->Record(
        static_cast<uint64_t>(request->wait_seconds * 1e6));
    if (tracer.enabled()) {
      const double wait_us = request->wait_seconds * 1e6;
      // Recorded on the request's behalf: the leader's thread runs this, so
      // the wait span carries the waiter's context explicitly.
      tracer.RecordComplete("serve.wait", tracer.NowMicros() - wait_us,
                            wait_us, obs::kCoordinatorLane,
                            {{{"request", request->id}, {}, {}}},
                            request->trace);
    }
    QueryProfile& profile = profiles[i];
    profile.trace_id = request->trace.trace_id;
    profile.request_id = request->id;
    profile.num_preferences = request->preferences.size();
    if (profile.num_preferences == 1 &&
        request->preferences[0].weight == 1.0) {
      profile.source = request->preferences[0].node;
    }
    profile.wait_seconds = request->wait_seconds;
    profile.batch_size = take;
    // Moved, not copied: the request only needs its result from here on.
    queries.push_back(std::move(request->preferences));
  }
  series_.batch_size->Record(take);

  lock.unlock();
  std::vector<QueryMetrics> per_query;
  QueryMetrics round;
  std::vector<SparseVector> ppvs;
  const StorageStats storage_before = engine_.index().StorageStatsTotal();
  {
    // The shared round runs under the FIRST request's context: its trace id
    // is what the round's machine/store/net spans and frame headers carry.
    // Exact for unbatched serving; under batching the other members'
    // profiles still link to the round via round_id.
    obs::TraceContextScope round_ctx(batch.front()->trace);
    obs::TraceSpan round_span(obs::kCoordinatorLane, "serve.round");
    round_span.Arg("batch", take);
    round_span.Arg("first_request", batch.front()->id);
    ppvs = engine_.QueryPreferenceSetMany(queries, &per_query, &round);
  }
  const StorageStats round_storage =
      engine_.index().StorageStatsTotal().Since(storage_before);
  // Populate the result cache before re-locking: Insert copies the vector
  // and takes only the shard's own mutex, so waiters aren't held up by it.
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i]->cacheable) cache_.Insert(batch[i]->cache_key, ppvs[i]);
  }
  lock.lock();

  for (size_t i = 0; i < batch.size(); ++i) {
    Request* request = batch[i];
    request->result = std::move(ppvs[i]);
    request->metrics = per_query[i];
    request->latency_seconds = request->admitted.ElapsedSeconds();
    request->done = true;
    series_.latency_us->Record(
        static_cast<uint64_t>(request->latency_seconds * 1e6));
    series_.machines_per_query->Record(per_query[i].machines_contacted);

    // Attribution, not re-measurement: every number below is copied from
    // the same QueryMetrics / StorageStats the aggregate counters are fed
    // from, so profile totals reconcile exactly with the registry deltas.
    QueryProfile& profile = profiles[i];
    profile.latency_seconds = request->latency_seconds;
    profile.round_id = per_query[i].round_id;
    profile.machines = per_query[i].machines;
    profile.machines_contacted = per_query[i].machines_contacted;
    profile.fragment_comm = per_query[i].comm;
    profile.round_comm = round.comm;
    profile.routing_bytes_saved = per_query[i].routing_bytes_saved;
    profile.machine_seconds = round.machine_seconds;
    profile.max_machine_seconds = round.max_machine_seconds;
    profile.coordinator_seconds = round.coordinator_seconds;
    profile.storage = round_storage;
  }
  series_.queries->Add(take);
  series_.rounds->Increment();
  series_.comm_bytes->Add(round.comm.bytes);
  series_.comm_messages->Add(round.comm.messages);
  // Machine-rounds: machines this round actually ran on (the whole cluster
  // under broadcast; the participant union under routing).
  series_.routing_machine_rounds->Add(round.machines_contacted);
  series_.routing_bytes_saved->Add(round.routing_bytes_saved);
  done_cv_.notify_all();

  // Profile observation (ring updates + possible slow-log file I/O) happens
  // outside mu_ so waiters and new arrivals are never held up by it.
  lock.unlock();
  for (const QueryProfile& profile : profiles) profiles_.Observe(profile);
  lock.lock();
}

QueryServer::WindowBaseline QueryServer::CaptureBaseline() const {
  return WindowBaseline{series_.queries->Value(),
                        series_.rounds->Value(),
                        series_.comm_bytes->Value(),
                        series_.comm_messages->Value(),
                        series_.latency_us->TakeSnapshot(),
                        series_.shed->Value(),
                        series_.routing_machine_rounds->Value(),
                        series_.routing_bytes_saved->Value(),
                        series_.machines_per_query->TakeSnapshot(),
                        cache_.hits(),
                        cache_.misses(),
                        cache_.evictions()};
}

ServerStats QueryServer::Stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  ServerStats stats;
  stats.queries = series_.queries->Value() - window_baseline_.queries;
  stats.rounds = series_.rounds->Value() - window_baseline_.rounds;
  stats.wall_seconds = window_.ElapsedSeconds();
  stats.qps = stats.wall_seconds > 0.0
                  ? static_cast<double>(stats.queries) / stats.wall_seconds
                  : 0.0;
  stats.mean_batch =
      stats.rounds > 0 ? static_cast<double>(stats.queries) /
                             static_cast<double>(stats.rounds)
                       : 0.0;
  const obs::Histogram::Snapshot window =
      series_.latency_us->TakeSnapshot().Since(window_baseline_.latency);
  stats.p50_latency_ms = static_cast<double>(window.Quantile(0.5)) / 1e3;
  stats.p95_latency_ms = static_cast<double>(window.Quantile(0.95)) / 1e3;
  stats.p99_latency_ms = static_cast<double>(window.Quantile(0.99)) / 1e3;
  stats.p999_latency_ms = static_cast<double>(window.Quantile(0.999)) / 1e3;
  stats.comm.bytes = series_.comm_bytes->Value() - window_baseline_.comm_bytes;
  stats.comm.messages =
      series_.comm_messages->Value() - window_baseline_.comm_messages;
  StorageStats storage =
      engine_.index().StorageStatsTotal().Since(storage_baseline_);
  stats.cache_hits = storage.cache_hits;
  stats.cache_misses = storage.cache_misses;
  stats.disk_bytes_read = storage.disk_bytes_read;
  stats.prefetch_issued = storage.prefetch_issued;
  stats.prefetch_hits = storage.prefetch_hits;
  stats.prefetch_coalesced_reads = storage.prefetch_coalesced_reads;
  stats.prefetch_bytes = storage.prefetch_bytes;
  stats.shed = series_.shed->Value() - window_baseline_.shed;
  stats.routing_machine_rounds = series_.routing_machine_rounds->Value() -
                                 window_baseline_.routing_machine_rounds;
  stats.routing_bytes_saved = series_.routing_bytes_saved->Value() -
                              window_baseline_.routing_bytes_saved;
  stats.machines_per_query_mean = series_.machines_per_query->TakeSnapshot()
                                      .Since(window_baseline_.machines_per_query)
                                      .Mean();
  stats.result_cache_hits = cache_.hits() - window_baseline_.cache_hits;
  stats.result_cache_misses = cache_.misses() - window_baseline_.cache_misses;
  stats.result_cache_evictions =
      cache_.evictions() - window_baseline_.cache_evictions;
  stats.result_cache_bytes = static_cast<uint64_t>(
      std::max<int64_t>(cache_.bytes(), 0));
  return stats;
}

void QueryServer::ResetStats() {
  std::unique_lock<std::mutex> lock(mu_);
  window_baseline_ = CaptureBaseline();
  storage_baseline_ = engine_.index().StorageStatsTotal();
  window_.Restart();
}

std::vector<QueryProfile> QueryServer::RecentProfiles() const {
  return profiles_.Recent();
}

std::vector<QueryProfile> QueryServer::RecentSlowQueries() const {
  return profiles_.RecentSlow();
}

std::string QueryServer::StatusJson() const {
  const ServerStats stats = Stats();
  const HgpaIndex& index = engine_.index();
  char buf[256];
  std::string out = "{";

  // Placement plan summary.
  const std::vector<size_t> bytes_per_machine = index.BytesPerMachine();
  std::snprintf(buf, sizeof(buf),
                "\"placement\":{\"machines\":%zu,\"routing\":\"%s\","
                "\"max_machine_bytes\":%zu,\"total_bytes\":%zu,"
                "\"bytes_per_machine\":[",
                index.num_machines(),
                engine_.routing_mode() == RoutingMode::kRoute ? "route"
                                                              : "broadcast",
                index.MaxMachineBytes(), index.TotalBytes());
  out += buf;
  for (size_t m = 0; m < bytes_per_machine.size(); ++m) {
    std::snprintf(buf, sizeof(buf), "%s%zu", m == 0 ? "" : ",",
                  bytes_per_machine[m]);
    out += buf;
  }
  out += "]},";

  // Hot-shard replication budget vs. usage.
  std::snprintf(buf, sizeof(buf),
                "\"replication\":{\"replicated_hubs\":%zu,"
                "\"replica_bytes_per_machine\":%zu},",
                index.num_replicated_hubs(), index.replica_bytes_per_machine());
  out += buf;

  std::snprintf(
      buf, sizeof(buf),
      "\"serving\":{\"queries\":%llu,\"rounds\":%llu,\"qps\":%.2f,"
      "\"mean_batch\":%.3f,\"shed\":%llu,\"p50_latency_ms\":%.3f,"
      "\"p99_latency_ms\":%.3f,\"comm_bytes\":%llu,"
      "\"routing_machine_rounds\":%llu,\"routing_bytes_saved\":%llu},",
      static_cast<unsigned long long>(stats.queries),
      static_cast<unsigned long long>(stats.rounds), stats.qps,
      stats.mean_batch, static_cast<unsigned long long>(stats.shed),
      stats.p50_latency_ms, stats.p99_latency_ms,
      static_cast<unsigned long long>(stats.comm.bytes),
      static_cast<unsigned long long>(stats.routing_machine_rounds),
      static_cast<unsigned long long>(stats.routing_bytes_saved));
  out += buf;

  std::snprintf(
      buf, sizeof(buf),
      "\"result_cache\":{\"enabled\":%s,\"hits\":%llu,\"misses\":%llu,"
      "\"evictions\":%llu,\"entries\":%zu,\"bytes\":%llu},",
      cache_.enabled() ? "true" : "false",
      static_cast<unsigned long long>(stats.result_cache_hits),
      static_cast<unsigned long long>(stats.result_cache_misses),
      static_cast<unsigned long long>(stats.result_cache_evictions),
      cache_.entries(),
      static_cast<unsigned long long>(stats.result_cache_bytes));
  out += buf;

  out += "\"slow_queries\":[";
  const std::vector<QueryProfile> slow = profiles_.RecentSlow();
  for (size_t i = 0; i < slow.size(); ++i) {
    if (i > 0) out += ",";
    out += slow[i].ToJson();
  }
  out += "]}";
  return out;
}

}  // namespace dppr
