#include "dppr/serve/result_cache.h"

#include <algorithm>
#include <utility>

#include "dppr/common/macros.h"

namespace dppr {
namespace {

/// Fixed per-entry overhead charged on top of the vector payload: list node,
/// index slot, shared_ptr control block (approximate, but stable — budget
/// math must not depend on allocator details).
constexpr size_t kEntryOverhead = 96;

/// splitmix-style finalizer: keys are structured (source in the low bits),
/// so shard selection must mix before it masks.
uint64_t MixKey(uint64_t key) {
  key ^= key >> 33;
  key *= 0xff51afd7ed558ccdULL;
  key ^= key >> 29;
  key *= 0xc4ceb9fe1a85ec53ULL;
  key ^= key >> 32;
  return key;
}

}  // namespace

ResultCache::ResultCache(const Options& options,
                         const std::string& series_label) {
  auto& registry = obs::MetricsRegistry::Global();
  hits_ = registry.GetCounter("serve.cache.hits" + series_label);
  misses_ = registry.GetCounter("serve.cache.misses" + series_label);
  evictions_ = registry.GetCounter("serve.cache.evictions" + series_label);
  bytes_ = registry.GetGauge("serve.cache.bytes" + series_label);
  if (options.byte_budget == 0) return;
  const size_t num_shards = std::max<size_t>(options.shards, 1);
  budget_per_shard_ = std::max<size_t>(options.byte_budget / num_shards, 1);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::ShardFor(uint64_t key) {
  return *shards_[MixKey(key) % shards_.size()];
}

std::shared_ptr<const SparseVector> ResultCache::Find(uint64_t key) {
  if (!enabled()) return nullptr;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_->Increment();
    return nullptr;
  }
  // Refresh recency: splice the entry to the front without invalidating the
  // index's iterator.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_->Increment();
  return it->second->value;
}

void ResultCache::Insert(uint64_t key, const SparseVector& value) {
  if (!enabled()) return;
  const size_t entry_bytes = value.MemoryBytes() + kEntryOverhead;
  if (entry_bytes > budget_per_shard_) return;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Replace in place (a concurrent recompute of the same source); recency
    // refreshes like a hit.
    shard.bytes -= it->second->bytes;
    bytes_->Add(-static_cast<int64_t>(it->second->bytes));
    it->second->value = std::make_shared<const SparseVector>(value);
    it->second->bytes = entry_bytes;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.lru.push_front(Entry{
        key, std::make_shared<const SparseVector>(value), entry_bytes});
    shard.index[key] = shard.lru.begin();
  }
  shard.bytes += entry_bytes;
  bytes_->Add(static_cast<int64_t>(entry_bytes));
  while (shard.bytes > budget_per_shard_) {
    DPPR_CHECK(!shard.lru.empty());
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    bytes_->Add(-static_cast<int64_t>(victim.bytes));
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    evictions_->Increment();
  }
}

void ResultCache::Invalidate(uint64_t key) {
  if (!enabled()) return;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return;
  shard.bytes -= it->second->bytes;
  bytes_->Add(-static_cast<int64_t>(it->second->bytes));
  shard.lru.erase(it->second);
  shard.index.erase(it);
}

void ResultCache::InvalidateAll() {
  if (!enabled()) return;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    bytes_->Add(-static_cast<int64_t>(shard->bytes));
    shard->bytes = 0;
    shard->lru.clear();
    shard->index.clear();
  }
}

size_t ResultCache::entries() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->index.size();
  }
  return total;
}

}  // namespace dppr
