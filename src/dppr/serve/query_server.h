#ifndef DPPR_SERVE_QUERY_SERVER_H_
#define DPPR_SERVE_QUERY_SERVER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "dppr/common/timer.h"
#include "dppr/core/hgpa.h"

namespace dppr {

/// Serving configuration.
struct ServeOptions {
  /// Upper bound on queries folded into one cluster round. 1 disables
  /// batching: every request pays its own round (and its own per-machine
  /// message latency).
  size_t max_batch = 16;
  /// Charge machine compute in per-thread CPU time instead of wall time, so
  /// concurrent rounds contending for cores don't inflate each other's
  /// machine_seconds (SimCluster::TimerKind::kThreadCpu).
  bool thread_cpu_timer = true;
};

/// Aggregate serving statistics since construction or the last ResetStats().
struct ServerStats {
  uint64_t queries = 0;
  /// Cluster rounds run; queries/rounds is the realized mean batch size.
  uint64_t rounds = 0;
  /// Observation window (wall time since construction / ResetStats).
  double wall_seconds = 0.0;
  /// queries / wall_seconds.
  double qps = 0.0;
  double mean_batch = 0.0;
  /// Request latency percentiles in milliseconds: admission to completion,
  /// so queueing and batching delay are included. Computed over the most
  /// recent QueryServer::kLatencyWindow requests (bounded memory on a
  /// long-running server).
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  /// Coordinator ingress across all rounds (bytes shipped).
  CommStats comm;
  /// Residency view over the window, summed across machine stores: lookups
  /// served from RAM vs. spill-file reads (cold vs. warm serving). In-memory
  /// backends only ever count hits; nonzero misses / disk bytes mean the
  /// disk backend's cache budget is doing real eviction work.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t disk_bytes_read = 0;
};

/// Concurrent query front-end over one shared HgpaIndex/HgpaQueryEngine.
///
/// Many client threads call Query / QueryPreferenceSet / QueryTopK
/// concurrently; each call blocks until its answer is ready. Compatible
/// in-flight requests are folded into shared SimCluster rounds: the first
/// thread to find no round in progress becomes the batch leader, serves
/// FIFO chunks of at most ServeOptions::max_batch through
/// HgpaQueryEngine::QueryPreferenceSetMany (one communication round per
/// chunk) until its own request is answered, then hands leadership to a
/// waiting thread — so every caller's latency stays bounded under sustained
/// load. Threads arriving while a leader is active enqueue and sleep.
/// Answers are bit-identical to unbatched queries — batching changes only
/// cost sharing, never results.
class QueryServer {
 public:
  using Preference = HgpaQueryEngine::Preference;

  /// Takes the engine by value (an engine is a cheap handle over the shared
  /// precomputation) and owns it for the server's lifetime.
  explicit QueryServer(HgpaQueryEngine engine, ServeOptions options = {});

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  struct Response {
    SparseVector ppv;
    /// Per-query view of the round that served it: comm is this query's own
    /// fragment traffic; compute/latency fields are the shared round's.
    QueryMetrics metrics;
    /// Admission to completion (includes queueing + batching delay).
    double latency_seconds = 0.0;
  };

  /// Single-node PPV.
  Response Query(NodeId node);

  /// PPV of an arbitrary Jeh–Widom preference set.
  Response QueryPreferenceSet(std::vector<Preference> preferences);

  struct TopKResponse {
    /// The k highest-scoring (node, value) pairs, descending by value, ties
    /// broken by node id.
    std::vector<SparseVector::Entry> top;
    QueryMetrics metrics;
    double latency_seconds = 0.0;
  };

  /// Top-k nodes of `node`'s PPV (k = 0 returns the full ranking header,
  /// i.e. an empty list).
  TopKResponse QueryTopK(NodeId node, size_t k);

  /// Snapshot of the aggregate stats; safe to call while serving.
  ServerStats Stats() const;
  void ResetStats();

  const HgpaQueryEngine& engine() const { return engine_; }
  const ServeOptions& options() const { return options_; }

  /// Latency percentiles cover this many most-recent requests.
  static constexpr size_t kLatencyWindow = 4096;

 private:
  struct Request {
    std::vector<Preference> preferences;
    SparseVector result;
    QueryMetrics metrics;
    double latency_seconds = 0.0;
    bool done = false;
    WallTimer admitted;
  };

  Response Submit(std::vector<Preference> preferences);
  /// Leader: takes up to max_batch requests off the queue, runs one cluster
  /// round, publishes results. `lock` is held on entry and exit.
  void RunOneBatch(std::unique_lock<std::mutex>& lock);

  HgpaQueryEngine engine_;
  ServeOptions options_;

  mutable std::mutex mu_;
  std::condition_variable done_cv_;
  std::deque<Request*> pending_;
  bool leader_active_ = false;

  // Aggregate stats, guarded by mu_.
  uint64_t queries_ = 0;
  uint64_t rounds_ = 0;
  CommStats comm_;
  /// Storage counters at the window start; Stats() reports deltas from here
  /// (the stores' own counters are monotonic for their whole lifetime).
  StorageStats storage_baseline_;
  /// Ring of the last kLatencyWindow request latencies.
  std::vector<double> latencies_seconds_;
  size_t latency_cursor_ = 0;
  WallTimer window_;
};

}  // namespace dppr

#endif  // DPPR_SERVE_QUERY_SERVER_H_
