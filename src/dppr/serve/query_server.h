#ifndef DPPR_SERVE_QUERY_SERVER_H_
#define DPPR_SERVE_QUERY_SERVER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "dppr/common/timer.h"
#include "dppr/core/hgpa.h"
#include "dppr/obs/metrics.h"
#include "dppr/obs/trace.h"
#include "dppr/serve/query_profile.h"
#include "dppr/serve/result_cache.h"

namespace dppr {

/// Serving configuration.
struct ServeOptions {
  /// Upper bound on queries folded into one cluster round. 1 disables
  /// batching: every request pays its own round (and its own per-machine
  /// message latency).
  size_t max_batch = 16;
  /// Charge machine compute in per-thread CPU time instead of wall time, so
  /// concurrent rounds contending for cores don't inflate each other's
  /// machine_seconds (SimCluster::TimerKind::kThreadCpu).
  bool thread_cpu_timer = true;
  /// Admission bound: maximum requests waiting in the pending queue. 0 means
  /// unbounded (the historical behavior). With a bound, an arrival finding
  /// the queue full is shed (Response::shed, counted in `serve.shed`) or
  /// blocks until space frees, per shed_on_overload.
  size_t max_pending = 0;
  /// Full-queue policy: true sheds (degrade gracefully, keep latency
  /// bounded), false blocks the caller (backpressure instead of loss).
  bool shed_on_overload = true;
  /// Front-door result cache budget in bytes; 0 disables. Cacheable
  /// requests are single-source weight-1.0 queries (Query / QueryTopK);
  /// preference sets always recompute.
  size_t result_cache_bytes = 0;
  /// Slow-query threshold in microseconds: a completed request at or over it
  /// is written to the structured JSONL slow-query log and retained in the
  /// slow ring. < 0 disables the log (profiles still enter the recent ring);
  /// 0 logs every request.
  int64_t slow_query_us = -1;
  /// Slow-query JSONL sink (appended); empty logs to stderr.
  std::string slow_query_log_path;

  /// Env-tunable serving knobs: DPPR_MAX_PENDING (count; 0 unbounded),
  /// DPPR_ADMISSION ("shed" | "block"; a typo dies),
  /// DPPR_RESULT_CACHE_BYTES (bytes; 0 off), DPPR_SLOW_QUERY_US (µs; unset
  /// off, 0 logs everything), and DPPR_SLOW_QUERY_LOG (path; empty stderr).
  /// max_batch/thread_cpu_timer keep their defaults — they are call-site
  /// decisions.
  static ServeOptions FromEnv();
};

/// Aggregate serving statistics since construction or the last ResetStats().
///
/// Every number is a windowed view over this server's metric series in the
/// process-wide obs::MetricsRegistry (each server registers its own
/// `serve.*{server="N"}` series at construction): Stats() reads the live
/// registry values and subtracts the window baseline, so ServerStats and a
/// DPPR_METRICS_DUMP snapshot can never disagree — there is exactly one set
/// of counters, and the latency percentiles are exact quantile queries over
/// the same `serve.query_latency_us` histogram the dump renders.
struct ServerStats {
  uint64_t queries = 0;
  /// Cluster rounds run; queries/rounds is the realized mean batch size.
  uint64_t rounds = 0;
  /// Observation window (wall time since construction / ResetStats).
  double wall_seconds = 0.0;
  /// queries / wall_seconds.
  double qps = 0.0;
  double mean_batch = 0.0;
  /// Request latency percentiles in milliseconds: admission to completion,
  /// so queueing and batching delay are included. Quantiles of the server's
  /// registry histogram over the whole stats window, at the histogram's
  /// log-bucket resolution (<= 3.125% relative error; see obs::Histogram).
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double p999_latency_ms = 0.0;
  /// Coordinator ingress across all rounds (bytes shipped).
  CommStats comm;
  /// Residency view over the window, summed across machine stores: lookups
  /// served from RAM vs. spill-file reads (cold vs. warm serving). In-memory
  /// backends only ever count hits; nonzero misses / disk bytes mean the
  /// disk backend's cache budget is doing real eviction work.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t disk_bytes_read = 0;
  /// Batched extent prefetch over the window (disk backend with
  /// DPPR_PREFETCH=on; zero otherwise): loads started by Prefetch, keys
  /// already resident when examined, coalesced preads issued, and bytes
  /// those reads pulled in.
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_coalesced_reads = 0;
  uint64_t prefetch_bytes = 0;
  /// Requests rejected by admission control (queue full under
  /// ServeOptions::max_pending with shed_on_overload).
  uint64_t shed = 0;
  /// Front-door result cache over the window (serve.cache.*; all zero when
  /// ServeOptions::result_cache_bytes is 0). `result_cache_bytes` is the
  /// current resident size, not a windowed delta.
  uint64_t result_cache_hits = 0;
  uint64_t result_cache_misses = 0;
  uint64_t result_cache_evictions = 0;
  uint64_t result_cache_bytes = 0;
  /// Shard routing over the window: mean machines per served query (n under
  /// broadcast), total machine-rounds (Σ machines contacted), and bytes the
  /// routed rounds did not ship versus a broadcast fan-out.
  double machines_per_query_mean = 0.0;
  uint64_t routing_machine_rounds = 0;
  uint64_t routing_bytes_saved = 0;
};

/// Concurrent query front-end over one shared HgpaIndex/HgpaQueryEngine.
///
/// Many client threads call Query / QueryPreferenceSet / QueryTopK
/// concurrently; each call blocks until its answer is ready. Compatible
/// in-flight requests are folded into shared SimCluster rounds: the first
/// thread to find no round in progress becomes the batch leader, serves
/// FIFO chunks of at most ServeOptions::max_batch through
/// HgpaQueryEngine::QueryPreferenceSetMany (one communication round per
/// chunk) until its own request is answered, then hands leadership to a
/// waiting thread — so every caller's latency stays bounded under sustained
/// load. Threads arriving while a leader is active enqueue and sleep.
/// Answers are bit-identical to unbatched queries — batching changes only
/// cost sharing, never results.
///
/// With DPPR_TRACE set, every request contributes spans to the process
/// trace: `serve.request` (admission to completion, on the caller's
/// thread), `serve.wait` (time parked in the admission queue), and
/// `serve.round` around each leader batch — plus the per-machine
/// `cluster.machine` spans of the round itself.
class QueryServer {
 public:
  using Preference = HgpaQueryEngine::Preference;

  /// Takes the engine by value (an engine is a cheap handle over the shared
  /// precomputation) and owns it for the server's lifetime. The default
  /// options pick up the serving env knobs (DPPR_MAX_PENDING,
  /// DPPR_ADMISSION, DPPR_RESULT_CACHE_BYTES).
  explicit QueryServer(HgpaQueryEngine engine,
                       ServeOptions options = ServeOptions::FromEnv());

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  struct Response {
    SparseVector ppv;
    /// Per-query view of the round that served it: comm is this query's own
    /// fragment traffic; compute/latency fields are the shared round's.
    QueryMetrics metrics;
    /// Admission to completion (includes queueing + batching delay).
    double latency_seconds = 0.0;
    /// Rejected by admission control: ppv is empty and no round ran. Callers
    /// are expected to retry with backoff.
    bool shed = false;
    /// Served from the front-door result cache: no round ran, metrics.comm
    /// is zero.
    bool cache_hit = false;
    /// Trace id minted for this request — the id its spans, frame headers,
    /// and QueryProfile carry (0 only for default-constructed responses).
    uint64_t trace_id = 0;
  };

  /// Single-node PPV.
  Response Query(NodeId node);

  /// PPV of an arbitrary Jeh–Widom preference set.
  Response QueryPreferenceSet(std::vector<Preference> preferences);

  struct TopKResponse {
    /// The k highest-scoring (node, value) pairs, descending by value, ties
    /// broken by node id.
    std::vector<SparseVector::Entry> top;
    QueryMetrics metrics;
    double latency_seconds = 0.0;
    bool shed = false;
    bool cache_hit = false;
    uint64_t trace_id = 0;
  };

  /// Top-k nodes of `node`'s PPV (k = 0 returns the full ranking header,
  /// i.e. an empty list).
  TopKResponse QueryTopK(NodeId node, size_t k);

  /// Drops `source`'s cached result so the next query recomputes — the hook
  /// the incremental-refresh path calls when an update touches a source's
  /// PPV. No-ops when the cache is disabled.
  void Invalidate(NodeId source);
  void InvalidateAll();

  /// Snapshot of the aggregate stats; safe to call while serving.
  ServerStats Stats() const;
  void ResetStats();

  /// Newest-first per-query cost profiles (bounded rings; see ProfileLog).
  /// Safe to call while serving.
  std::vector<QueryProfile> RecentProfiles() const;
  std::vector<QueryProfile> RecentSlowQueries() const;

  /// Live introspection JSON for the admin plane's /statusz: placement and
  /// replication summary, serving stats, result-cache occupancy, and the
  /// recent slow queries. Safe to call while serving.
  std::string StatusJson() const;

  const HgpaQueryEngine& engine() const { return engine_; }
  const ServeOptions& options() const { return options_; }

 private:
  struct Request {
    std::vector<Preference> preferences;
    SparseVector result;
    QueryMetrics metrics;
    double latency_seconds = 0.0;
    bool done = false;
    /// Server-unique request id; trace spans carry it so a request's wait,
    /// round, and completion line up in the timeline.
    uint64_t id = 0;
    /// Trace context minted at admission; the leader re-establishes it
    /// around the round and stamps it on spans recorded on the request's
    /// behalf.
    obs::TraceContext trace;
    /// Admission-queue time, recorded when a leader picks the request up.
    double wait_seconds = 0.0;
    /// Insert the result into the result cache under cache_key when done
    /// (single-source weight-1.0 queries with the cache enabled).
    bool cacheable = false;
    uint64_t cache_key = 0;
    WallTimer admitted;
  };

  /// This server's registry series (`serve.*{server="N"}`). Resolved once
  /// at construction; pointers live for the process lifetime.
  struct Series {
    obs::Counter* queries;
    obs::Counter* rounds;
    obs::Counter* comm_bytes;
    obs::Counter* comm_messages;
    obs::Histogram* latency_us;
    obs::Histogram* admission_wait_us;
    obs::Histogram* batch_size;
    obs::Counter* shed;
    obs::Counter* routing_machine_rounds;
    obs::Counter* routing_bytes_saved;
    obs::Histogram* machines_per_query;
  };

  /// Registry values at the start of the stats window; Stats() reports
  /// deltas from here (the registry series are monotonic process-wide).
  struct WindowBaseline {
    uint64_t queries = 0;
    uint64_t rounds = 0;
    uint64_t comm_bytes = 0;
    uint64_t comm_messages = 0;
    obs::Histogram::Snapshot latency;
    uint64_t shed = 0;
    uint64_t routing_machine_rounds = 0;
    uint64_t routing_bytes_saved = 0;
    obs::Histogram::Snapshot machines_per_query;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    uint64_t cache_evictions = 0;
  };

  /// Cache key for a single-source full-PPV query: the source mixed with
  /// the index's prune tolerance and the query kind, so a future
  /// multi-tolerance server never collides entries.
  uint64_t CacheKey(NodeId source) const;

  Response Submit(std::vector<Preference> preferences);
  /// Leader: takes up to max_batch requests off the queue, runs one cluster
  /// round, publishes results. `lock` is held on entry and exit.
  void RunOneBatch(std::unique_lock<std::mutex>& lock);
  /// Call with mu_ held.
  WindowBaseline CaptureBaseline() const;

  HgpaQueryEngine engine_;
  ServeOptions options_;
  /// Registry label suffix of this server (`{server="N"}`); declared before
  /// cache_, which registers its series under it.
  std::string label_;
  ResultCache cache_;
  Series series_;
  /// Per-query cost profiles + the slow-query JSONL log. Internally locked
  /// (never under mu_ — Observe may do file I/O).
  ProfileLog profiles_;

  mutable std::mutex mu_;
  std::condition_variable done_cv_;
  std::deque<Request*> pending_;
  bool leader_active_ = false;
  uint64_t next_request_id_ = 0;

  // Stats window state, guarded by mu_ (the registry series themselves are
  // atomic; the baseline and wall timer define this server's window).
  WindowBaseline window_baseline_;
  /// Storage counters at the window start (the stores' own counters are
  /// monotonic for their whole lifetime).
  StorageStats storage_baseline_;
  WallTimer window_;
};

}  // namespace dppr

#endif  // DPPR_SERVE_QUERY_SERVER_H_
