#include "dppr/serve/query_profile.h"

#include <cinttypes>
#include <utility>

namespace dppr {
namespace {

const char* OutcomeName(QueryProfile::Outcome outcome) {
  switch (outcome) {
    case QueryProfile::Outcome::kServed:
      return "served";
    case QueryProfile::Outcome::kCacheHit:
      return "cache_hit";
    case QueryProfile::Outcome::kShed:
      return "shed";
  }
  return "unknown";
}

void AppendU64(std::string& out, const char* key, uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64 ",", key, value);
  out += buf;
}

void AppendF(std::string& out, const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.6f,", key, value);
  out += buf;
}

}  // namespace

std::string QueryProfile::ToJson() const {
  std::string out = "{";
  AppendU64(out, "trace_id", trace_id);
  AppendU64(out, "request_id", request_id);
  out += "\"outcome\":\"";
  out += OutcomeName(outcome);
  out += "\",";
  if (source != kInvalidNode) AppendU64(out, "source", source);
  AppendU64(out, "num_preferences", num_preferences);
  AppendF(out, "latency_seconds", latency_seconds);
  AppendF(out, "wait_seconds", wait_seconds);
  AppendU64(out, "round_id", round_id);
  AppendU64(out, "batch_size", batch_size);
  out += "\"machines\":[";
  for (size_t i = 0; i < machines.size(); ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%s%zu", i == 0 ? "" : ",", machines[i]);
    out += buf;
  }
  out += "],";
  AppendU64(out, "machines_contacted", machines_contacted);
  AppendU64(out, "fragment_messages", fragment_comm.messages);
  AppendU64(out, "fragment_bytes", fragment_comm.bytes);
  AppendU64(out, "round_messages", round_comm.messages);
  AppendU64(out, "round_bytes", round_comm.bytes);
  AppendU64(out, "routing_bytes_saved", routing_bytes_saved);
  // Only participants' entries are interesting; the full-width vector is
  // mostly zeros under routing, so emit (machine, seconds) pairs.
  out += "\"machine_seconds\":{";
  bool first = true;
  for (size_t m : machines) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s\"%zu\":%.6f", first ? "" : ",", m,
                  m < machine_seconds.size() ? machine_seconds[m] : 0.0);
    out += buf;
    first = false;
  }
  out += "},";
  AppendF(out, "max_machine_seconds", max_machine_seconds);
  AppendF(out, "coordinator_seconds", coordinator_seconds);
  AppendU64(out, "store_cache_hits", storage.cache_hits);
  AppendU64(out, "store_cache_misses", storage.cache_misses);
  AppendU64(out, "disk_bytes_read", storage.disk_bytes_read);
  AppendU64(out, "prefetch_issued", storage.prefetch_issued);
  AppendU64(out, "prefetch_hits", storage.prefetch_hits);
  AppendU64(out, "prefetch_coalesced_reads", storage.prefetch_coalesced_reads);
  AppendU64(out, "prefetch_bytes", storage.prefetch_bytes);
  out.pop_back();  // drop the trailing comma
  out += "}";
  return out;
}

ProfileLog::ProfileLog(Options options) : options_(std::move(options)) {}

ProfileLog::~ProfileLog() {
  if (sink_ != nullptr) std::fclose(sink_);
}

void ProfileLog::Observe(const QueryProfile& profile) {
  const bool slow =
      options_.slow_threshold_us >= 0 &&
      profile.latency_seconds * 1e6 >=
          static_cast<double>(options_.slow_threshold_us);
  std::string line;
  if (slow) line = profile.ToJson();

  std::lock_guard<std::mutex> lock(mu_);
  recent_.push_back(profile);
  if (recent_.size() > options_.recent_capacity) recent_.pop_front();
  if (!slow) return;
  slow_.push_back(profile);
  if (slow_.size() > options_.slow_capacity) slow_.pop_front();
  if (!options_.path.empty() && sink_ == nullptr && !sink_failed_) {
    sink_ = std::fopen(options_.path.c_str(), "a");
    if (sink_ == nullptr) {
      sink_failed_ = true;  // warn once, then fall back to stderr
      std::fprintf(stderr, "dppr: cannot append slow-query log to %s\n",
                   options_.path.c_str());
    }
  }
  std::FILE* out = sink_ != nullptr ? sink_ : stderr;
  std::fprintf(out, "%s\n", line.c_str());
  std::fflush(out);
}

std::vector<QueryProfile> ProfileLog::Recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {recent_.rbegin(), recent_.rend()};
}

std::vector<QueryProfile> ProfileLog::RecentSlow() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {slow_.rbegin(), slow_.rend()};
}

}  // namespace dppr
