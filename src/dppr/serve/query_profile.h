#ifndef DPPR_SERVE_QUERY_PROFILE_H_
#define DPPR_SERVE_QUERY_PROFILE_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "dppr/dist/network.h"
#include "dppr/graph/types.h"
#include "dppr/store/vector_storage.h"

namespace dppr {

/// Everything one served request cost, assembled by QueryServer after the
/// request completes. The distributed numbers are copied from the same
/// QueryMetrics / StorageStats the aggregate counters are fed from, so a
/// profile's totals reconcile exactly with the `serve.*` registry deltas over
/// the same window — a profile is an attribution of the ledgers, never a
/// second measurement. Rendered as one JSON object per line (JSONL) in the
/// slow-query log; the field catalog is documented in README.md.
struct QueryProfile {
  /// How the request left the server.
  enum class Outcome : uint8_t {
    /// Answered by a cluster round (possibly shared with a batch).
    kServed = 0,
    /// Answered from the front-door result cache; no round ran.
    kCacheHit = 1,
    /// Rejected by admission control; no round ran.
    kShed = 2,
  };

  /// Trace id minted at admission — the same id every cluster/store/net span
  /// of this request carries, and the join key between a slow-log line and a
  /// DPPR_TRACE file.
  uint64_t trace_id = 0;
  /// Server-unique request id (the `req` arg on serve.* spans).
  uint64_t request_id = 0;
  Outcome outcome = Outcome::kServed;

  /// Source node for single-source queries; kInvalidNode for preference
  /// sets.
  NodeId source = kInvalidNode;
  size_t num_preferences = 0;

  /// Admission to completion, queueing included.
  double latency_seconds = 0.0;
  /// Time parked in the admission queue before a leader picked the request
  /// up (0 for cache hits / sheds).
  double wait_seconds = 0.0;

  /// The communication round that answered the request. round_id is the
  /// transport round; batch_size is how many requests shared it (their
  /// round-level numbers below are identical — the round ran once).
  uint64_t round_id = 0;
  size_t batch_size = 0;
  /// Machines the round ran on, ascending (the routed union for a batch).
  std::vector<size_t> machines;
  /// Machines this request's own plan targeted (== machines.size() under
  /// broadcast or an unbatched routed query).
  size_t machines_contacted = 0;

  /// This request's own fragment traffic (one message per plan machine).
  /// Σ fragment_comm over a batch == round_comm, bit-for-bit: fragments are
  /// sliced from the round payloads, never re-measured.
  CommStats fragment_comm;
  /// Whole coordinator ingress of the shared round.
  CommStats round_comm;
  /// Bytes this request's routed plan did not ship versus broadcast.
  uint64_t routing_bytes_saved = 0;

  /// Measured per-machine compute seconds of the round, full cluster width
  /// (zeros for machines that did not run).
  std::vector<double> machine_seconds;
  double max_machine_seconds = 0.0;
  double coordinator_seconds = 0.0;

  /// Storage-counter delta over the shared round, summed across machine
  /// stores: cache hits/misses, spill reads, prefetch work. Round-level (a
  /// store lookup cannot be attributed to one query of a batch).
  StorageStats storage;

  /// One JSON object, no trailing newline. Keys are stable — they are the
  /// slow-log schema.
  std::string ToJson() const;
};

/// Bounded, thread-safe record of recent query profiles plus the structured
/// slow-query log. Every completed request is Observe()d: it enters the
/// recent ring, and — when its latency is at or over the slow threshold —
/// the slow ring and the JSONL sink (a file when `path` is set, stderr
/// otherwise).
class ProfileLog {
 public:
  struct Options {
    /// Latency threshold in microseconds; a request at or over it is logged.
    /// < 0 disables slow-query logging entirely (profiles still enter the
    /// recent ring); 0 logs every request. DPPR_SLOW_QUERY_US.
    int64_t slow_threshold_us = -1;
    /// JSONL sink path (appended); empty logs to stderr. DPPR_SLOW_QUERY_LOG.
    std::string path;
    size_t recent_capacity = 64;
    size_t slow_capacity = 32;
  };

  explicit ProfileLog(Options options);
  ~ProfileLog();
  ProfileLog(const ProfileLog&) = delete;
  ProfileLog& operator=(const ProfileLog&) = delete;

  void Observe(const QueryProfile& profile);

  /// Newest-first copies of the rings; safe to call while serving.
  std::vector<QueryProfile> Recent() const;
  std::vector<QueryProfile> RecentSlow() const;

  const Options& options() const { return options_; }

 private:
  Options options_;
  mutable std::mutex mu_;
  std::deque<QueryProfile> recent_;
  std::deque<QueryProfile> slow_;
  /// Lazily opened append sink; null until the first slow line (or forever,
  /// when path is empty — stderr needs no handle).
  std::FILE* sink_ = nullptr;
  bool sink_failed_ = false;
};

}  // namespace dppr

#endif  // DPPR_SERVE_QUERY_PROFILE_H_
