#ifndef DPPR_PPR_PAGERANK_H_
#define DPPR_PPR_PAGERANK_H_

#include <vector>

#include "dppr/graph/graph.h"
#include "dppr/ppr/ppr_options.h"

namespace dppr {

/// Global (non-personalized) PageRank with uniform teleport, used to pick
/// "important" hub nodes for the PPV-JW and FastPPV baselines ([25] selects
/// high-PageRank nodes as hubs). Dangling mass is redistributed uniformly.
std::vector<double> GlobalPageRank(const Graph& graph,
                                   const PprOptions& options = {});

/// Ids of the k highest-PageRank nodes (descending; ties by id).
std::vector<NodeId> TopPageRankNodes(const Graph& graph, size_t k,
                                     const PprOptions& options = {});

}  // namespace dppr

#endif  // DPPR_PPR_PAGERANK_H_
