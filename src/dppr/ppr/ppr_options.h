#ifndef DPPR_PPR_PPR_OPTIONS_H_
#define DPPR_PPR_PPR_OPTIONS_H_

#include <cstddef>

namespace dppr {

/// Shared parameters of all PPR computations. Defaults follow the paper's
/// experimental setup (§6.1): teleport probability α = 0.15, tolerance
/// ε = 1e-4. Tolerance is the per-entry residual bound at which iterative
/// computations stop; the literature ([25], [49]) treats results at a given
/// tolerance as "exact" since ε can be made arbitrarily small.
struct PprOptions {
  double alpha = 0.15;
  double tolerance = 1e-4;
  /// Safety valve for iterative methods.
  size_t max_iterations = 100000;
};

}  // namespace dppr

#endif  // DPPR_PPR_PPR_OPTIONS_H_
