#include "dppr/ppr/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "dppr/common/macros.h"

namespace dppr {

double AverageL1(std::span<const double> a, std::span<const double> b) {
  DPPR_CHECK_EQ(a.size(), b.size());
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
  return sum / static_cast<double>(a.size());
}

double LInfNorm(std::span<const double> a, std::span<const double> b) {
  DPPR_CHECK_EQ(a.size(), b.size());
  double max = 0.0;
  for (size_t i = 0; i < a.size(); ++i) max = std::max(max, std::abs(a[i] - b[i]));
  return max;
}

std::vector<NodeId> TopK(std::span<const double> scores, size_t k) {
  std::vector<NodeId> ids(scores.size());
  for (NodeId i = 0; i < ids.size(); ++i) ids[i] = i;
  k = std::min(k, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + static_cast<ptrdiff_t>(k), ids.end(),
                    [&](NodeId x, NodeId y) {
                      if (scores[x] != scores[y]) return scores[x] > scores[y];
                      return x < y;
                    });
  ids.resize(k);
  return ids;
}

double PrecisionAtK(std::span<const double> exact, std::span<const double> approx,
                    size_t k) {
  if (k == 0) return 1.0;
  std::vector<NodeId> te = TopK(exact, k);
  std::vector<NodeId> ta = TopK(approx, k);
  std::unordered_set<NodeId> exact_set(te.begin(), te.end());
  size_t hits = 0;
  for (NodeId v : ta) hits += exact_set.count(v);
  return static_cast<double>(hits) / static_cast<double>(te.size());
}

double RagAtK(std::span<const double> exact, std::span<const double> approx,
              size_t k) {
  std::vector<NodeId> te = TopK(exact, k);
  std::vector<NodeId> ta = TopK(approx, k);
  double best = 0.0;
  double got = 0.0;
  for (NodeId v : te) best += exact[v];
  for (NodeId v : ta) got += exact[v];
  if (best <= 0.0) return 1.0;
  return got / best;
}

double KendallTauAtK(std::span<const double> exact, std::span<const double> approx,
                     size_t k) {
  std::vector<NodeId> te = TopK(exact, k);
  std::vector<NodeId> ta = TopK(approx, k);
  std::unordered_set<NodeId> union_set(te.begin(), te.end());
  union_set.insert(ta.begin(), ta.end());
  std::vector<NodeId> nodes(union_set.begin(), union_set.end());
  std::sort(nodes.begin(), nodes.end());

  long long concordant = 0;
  long long discordant = 0;
  long long comparable = 0;
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (size_t j = i + 1; j < nodes.size(); ++j) {
      double de = exact[nodes[i]] - exact[nodes[j]];
      double da = approx[nodes[i]] - approx[nodes[j]];
      if (de == 0.0 || da == 0.0) continue;  // ties excluded (τ-b style)
      ++comparable;
      if ((de > 0) == (da > 0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  if (comparable == 0) return 1.0;
  return static_cast<double>(concordant - discordant) /
         static_cast<double>(comparable);
}

}  // namespace dppr
