#include "dppr/ppr/skeleton.h"

#include <deque>

namespace dppr {
namespace {

// Backward push from the target hub: reserve[u] converges to r_u(hub) with
// per-entry error <= tolerance (residual invariant
//   r_u(hub) = reserve[u] + Σ_v residual[v]·r_u(v), Σ_v r_u(v) <= 1).
template <typename GraphView>
std::vector<double> ReversePushImpl(const GraphView& graph, NodeId hub,
                                    const PprOptions& options) {
  const size_t n = graph.num_nodes();
  DPPR_CHECK_LT(hub, n);
  DPPR_CHECK(graph.has_in_edges());
  const double alpha = options.alpha;
  const double eps = options.tolerance;

  std::vector<double> reserve(n, 0.0);
  std::vector<double> residual(n, 0.0);
  std::vector<uint8_t> queued(n, 0);
  std::deque<NodeId> queue;

  residual[hub] = 1.0;
  queue.push_back(hub);
  queued[hub] = 1;

  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    queued[u] = 0;
    double r = residual[u];
    if (r <= eps) continue;
    residual[u] = 0.0;
    reserve[u] += alpha * r;
    for (NodeId w : graph.InNeighbors(u)) {
      uint32_t denom = graph.degree_denominator(w);
      if (denom == 0) continue;
      residual[w] += (1.0 - alpha) * r / static_cast<double>(denom);
      if (!queued[w] && residual[w] > eps) {
        queued[w] = 1;
        queue.push_back(w);
      }
    }
  }
  return reserve;
}

}  // namespace

std::vector<double> SkeletonReversePush(const LocalGraph& graph, NodeId hub,
                                        const PprOptions& options) {
  return ReversePushImpl(graph, hub, options);
}

std::vector<double> SkeletonReversePush(const Graph& graph, NodeId hub,
                                        const PprOptions& options) {
  return ReversePushImpl(graph, hub, options);
}

}  // namespace dppr
