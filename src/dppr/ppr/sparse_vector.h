#ifndef DPPR_PPR_SPARSE_VECTOR_H_
#define DPPR_PPR_SPARSE_VECTOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "dppr/common/macros.h"
#include "dppr/common/serialize.h"
#include "dppr/graph/types.h"

namespace dppr {

/// Immutable sparse vector of (node, score) entries sorted by node id. The
/// unit of storage and network transfer throughout the library: precomputed
/// partial/skeleton vectors and query-time PPV fragments are SparseVectors,
/// and their SerializedBytes() is what the cluster simulator charges.
class SparseVector {
 public:
  struct Entry {
    NodeId index;
    double value;
    bool operator==(const Entry&) const = default;
  };

  SparseVector() = default;

  /// From unsorted entries; merges duplicates by summing.
  static SparseVector FromEntries(std::vector<Entry> entries);

  /// Adopts entries that are already sorted by strictly increasing index (no
  /// duplicates, no filtering) — the zero-cost path for producers that emit
  /// sorted output, like DenseAccumulator::ToSparse. Sortedness is
  /// DPPR_DCHECKed, not re-established.
  static SparseVector FromSortedUnique(std::vector<Entry> entries);

  /// From a dense array, keeping |value| > prune_below.
  static SparseVector FromDense(std::span<const double> dense,
                                double prune_below = 0.0);

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  std::span<const Entry> entries() const { return entries_; }

  /// Value at `index` (0.0 when absent); binary search.
  double ValueAt(NodeId index) const;

  double L1Norm() const;

  /// dense[e.index] += scale * e.value for every entry.
  void AddScaledTo(std::span<double> dense, double scale) const;

  /// Copy with entries |value| <= threshold removed (HGPA_ad storage prune).
  SparseVector Pruned(double threshold) const;

  /// Wire format: varint count, then delta-varint ids + float64 values.
  void SerializeTo(ByteWriter& writer) const;
  static SparseVector Deserialize(ByteReader& reader);

  /// Exact size of SerializeTo's output without materializing it.
  size_t SerializedBytes() const;

  /// In-memory footprint used for storage accounting.
  size_t MemoryBytes() const { return entries_.size() * sizeof(Entry); }

  bool operator==(const SparseVector&) const = default;

 private:
  std::vector<Entry> entries_;
};

/// Reusable dense accumulator for summing many sparse vectors (coordinator
/// aggregation, per-machine partial sums). The query fold's hot kernel:
/// AddVector accumulates values in one unconditional pass over the entry
/// array (no per-entry branch, no allocation), and touched-index tracking is
/// a bitmap updated with one read-modify-write per 64-id block — sparse
/// vectors are sorted, so a block's entries are consecutive. Clear() and
/// ToSparse() walk only the dirty bitmap words, so both stay O(touched), and
/// ToSparse emits entries already in index order (no sort, no merge).
///
/// The accumulation order — and therefore every floating-point sum — is
/// identical to the scalar per-entry loop this replaced; sparse_vector_test
/// checks bit-identity against a dense-array oracle on randomized folds.
class DenseAccumulator {
 public:
  explicit DenseAccumulator(size_t size)
      : values_(size, 0.0), touched_words_((size + 63) / 64, 0) {}

  void Add(NodeId index, double value) {
    DPPR_DCHECK(index < values_.size());
    values_[index] += value;
    MarkWord(index >> 6, uint64_t{1} << (index & 63));
  }

  /// acc[e.index] += scale * e.value for every entry of `vec`.
  void AddVector(const SparseVector& vec, double scale);

  double ValueAt(NodeId index) const { return values_[index]; }
  size_t size() const { return values_.size(); }

  /// Touched indices in increasing order, materialized from the bitmap
  /// (tests and diagnostics; the hot paths never need the list).
  std::vector<NodeId> TouchedIndices() const;

  /// Extracts entries with |value| > prune_below as a sparse vector.
  SparseVector ToSparse(double prune_below = 0.0) const;

  /// Full dense copy (tests / metrics).
  std::vector<double> ToDense() const { return values_; }

  void Clear();

 private:
  /// Sets `mask` in bitmap word `word`, recording the word as dirty when it
  /// transitions from empty (so dirty_words_ stays duplicate-free).
  void MarkWord(size_t word, uint64_t mask) {
    uint64_t& bits = touched_words_[word];
    if (bits == 0) dirty_words_.push_back(static_cast<uint32_t>(word));
    bits |= mask;
  }
  /// Dirty word indices in increasing order (copy; members stay untouched).
  std::vector<uint32_t> SortedDirtyWords() const;

  std::vector<double> values_;
  /// Bit i of word i/64 set iff index i was touched since the last Clear.
  std::vector<uint64_t> touched_words_;
  /// Words of touched_words_ that are nonzero, in first-touch order.
  std::vector<uint32_t> dirty_words_;
};

}  // namespace dppr

#endif  // DPPR_PPR_SPARSE_VECTOR_H_
