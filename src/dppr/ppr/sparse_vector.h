#ifndef DPPR_PPR_SPARSE_VECTOR_H_
#define DPPR_PPR_SPARSE_VECTOR_H_

#include <span>
#include <vector>

#include "dppr/common/serialize.h"
#include "dppr/graph/types.h"

namespace dppr {

/// Immutable sparse vector of (node, score) entries sorted by node id. The
/// unit of storage and network transfer throughout the library: precomputed
/// partial/skeleton vectors and query-time PPV fragments are SparseVectors,
/// and their SerializedBytes() is what the cluster simulator charges.
class SparseVector {
 public:
  struct Entry {
    NodeId index;
    double value;
    bool operator==(const Entry&) const = default;
  };

  SparseVector() = default;

  /// From unsorted entries; merges duplicates by summing.
  static SparseVector FromEntries(std::vector<Entry> entries);

  /// From a dense array, keeping |value| > prune_below.
  static SparseVector FromDense(std::span<const double> dense,
                                double prune_below = 0.0);

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  std::span<const Entry> entries() const { return entries_; }

  /// Value at `index` (0.0 when absent); binary search.
  double ValueAt(NodeId index) const;

  double L1Norm() const;

  /// dense[e.index] += scale * e.value for every entry.
  void AddScaledTo(std::span<double> dense, double scale) const;

  /// Copy with entries |value| <= threshold removed (HGPA_ad storage prune).
  SparseVector Pruned(double threshold) const;

  /// Wire format: varint count, then delta-varint ids + float64 values.
  void SerializeTo(ByteWriter& writer) const;
  static SparseVector Deserialize(ByteReader& reader);

  /// Exact size of SerializeTo's output without materializing it.
  size_t SerializedBytes() const;

  /// In-memory footprint used for storage accounting.
  size_t MemoryBytes() const { return entries_.size() * sizeof(Entry); }

  bool operator==(const SparseVector&) const = default;

 private:
  std::vector<Entry> entries_;
};

/// Reusable dense accumulator for summing many sparse vectors (coordinator
/// aggregation, per-machine partial sums). Tracks touched indices so Clear()
/// is O(touched), not O(n).
class DenseAccumulator {
 public:
  explicit DenseAccumulator(size_t size) : values_(size, 0.0), touched_flag_(size, 0) {}

  void Add(NodeId index, double value);
  void AddVector(const SparseVector& vec, double scale);

  double ValueAt(NodeId index) const { return values_[index]; }
  size_t size() const { return values_.size(); }
  std::span<const NodeId> touched() const { return touched_; }

  /// Extracts entries with |value| > prune_below as a sparse vector.
  SparseVector ToSparse(double prune_below = 0.0) const;

  /// Full dense copy (tests / metrics).
  std::vector<double> ToDense() const { return values_; }

  void Clear();

 private:
  std::vector<double> values_;
  std::vector<uint8_t> touched_flag_;
  std::vector<NodeId> touched_;
};

}  // namespace dppr

#endif  // DPPR_PPR_SPARSE_VECTOR_H_
