#include "dppr/ppr/dense_solver.h"

#include <cmath>

namespace dppr {

std::vector<double> SolveDenseLinearSystem(std::vector<double> a,
                                           std::vector<double> b) {
  const size_t n = b.size();
  DPPR_CHECK_EQ(a.size(), n * n);
  // Forward elimination with partial pivoting.
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    double best = std::abs(a[col * n + col]);
    for (size_t row = col + 1; row < n; ++row) {
      double v = std::abs(a[row * n + col]);
      if (v > best) {
        best = v;
        pivot = row;
      }
    }
    DPPR_CHECK_GT(best, 1e-12);  // PPR systems are strictly diagonally dominant
    if (pivot != col) {
      for (size_t k = col; k < n; ++k) std::swap(a[pivot * n + k], a[col * n + k]);
      std::swap(b[pivot], b[col]);
    }
    double diag = a[col * n + col];
    for (size_t row = col + 1; row < n; ++row) {
      double factor = a[row * n + col] / diag;
      if (factor == 0.0) continue;
      for (size_t k = col; k < n; ++k) a[row * n + k] -= factor * a[col * n + k];
      b[row] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (size_t row = n; row-- > 0;) {
    double sum = b[row];
    for (size_t k = row + 1; k < n; ++k) sum -= a[row * n + k] * x[k];
    x[row] = sum / a[row * n + row];
  }
  return x;
}

}  // namespace dppr
