#ifndef DPPR_PPR_DENSE_SOLVER_H_
#define DPPR_PPR_DENSE_SOLVER_H_

#include <span>
#include <utility>
#include <vector>

#include "dppr/common/macros.h"
#include "dppr/graph/types.h"
#include "dppr/ppr/ppr_options.h"

namespace dppr {

/// Solves a dense linear system A x = b in place (partial-pivot Gaussian
/// elimination); A is row-major n×n. Test oracle — O(n³).
std::vector<double> SolveDenseLinearSystem(std::vector<double> a,
                                           std::vector<double> b);

/// Machine-precision PPV via the linear system (I - (1-α) Pᵀ) r = α x_q
/// (paper Eq. 1). P follows GraphView semantics: row u spreads 1/denominator
/// per listed out-edge; missing mass (dangling / virtual-node) is absorbed.
/// Intended for graphs with at most a few thousand nodes; the exactness test
/// oracle for every other engine in the library.
template <typename GraphView>
std::vector<double> ExactPpvDense(
    const GraphView& graph,
    std::span<const std::pair<NodeId, double>> preferences,
    const PprOptions& options = {}) {
  const size_t n = graph.num_nodes();
  DPPR_CHECK_LE(n, size_t{4096});  // O(n^3) oracle; keep inputs small
  const double alpha = options.alpha;

  // a[row][col]: (I - (1-α) Pᵀ); Pᵀ[v][u] = 1/denom(u) for edge u->v.
  std::vector<double> a(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) a[i * n + i] = 1.0;
  for (NodeId u = 0; u < n; ++u) {
    uint32_t denom = graph.degree_denominator(u);
    if (denom == 0) continue;
    double w = (1.0 - alpha) / static_cast<double>(denom);
    for (NodeId v : graph.OutNeighbors(u)) a[static_cast<size_t>(v) * n + u] -= w;
  }
  std::vector<double> b(n, 0.0);
  for (const auto& [node, weight] : preferences) {
    DPPR_CHECK_LT(node, n);
    b[node] += alpha * weight;
  }
  return SolveDenseLinearSystem(std::move(a), std::move(b));
}

template <typename GraphView>
std::vector<double> ExactPpvDense(const GraphView& graph, NodeId query,
                                  const PprOptions& options = {}) {
  const std::pair<NodeId, double> single{query, 1.0};
  return ExactPpvDense(graph, std::span(&single, 1), options);
}

}  // namespace dppr

#endif  // DPPR_PPR_DENSE_SOLVER_H_
