#ifndef DPPR_PPR_FORWARD_PUSH_H_
#define DPPR_PPR_FORWARD_PUSH_H_

#include <cmath>
#include <deque>
#include <span>
#include <vector>

#include "dppr/common/macros.h"
#include "dppr/graph/types.h"
#include "dppr/ppr/ppr_options.h"
#include "dppr/ppr/sparse_vector.h"

namespace dppr {

/// Result of selective expansion (paper Eq. 9).
struct ForwardPushResult {
  /// D after convergence: the α-absorbed reserve. With an empty blocked set
  /// this is the (local) PPV of the source; with blocked = H \ {source} it is
  /// the partial vector p^H_source.
  SparseVector reserve;
  /// Residual mass parked at blocked nodes (never expanded, per Eq. 9 the
  /// Σ_{v∈V−H} sums skip them). FastPPV's scheduled approximation consumes
  /// this as the "hub entry mass".
  SparseVector residual_at_blocked;
  size_t pushes = 0;
  size_t edge_touches = 0;
};

/// Selective-expansion / forward-push engine over a GraphView. A single
/// engine instance owns O(n) scratch buffers and may be reused across many
/// sources (precomputation runs millions of pushes).
///
/// Semantics (Jeh–Widom partial vectors): a tour may START and END at a hub
/// but never visits a hub at an INTERIOR position. In push terms: residual
/// mass at a non-blocked node v is absorbed into the reserve at rate α and
/// the rest forwarded to out-neighbors in shares of (1-α)/denominator; mass
/// arriving at a *blocked* node is absorbed at rate α (tours may end there)
/// but never forwarded (interior visits are barred). The source is expanded
/// exactly once even when blocked (the tour start is exempt); mass returning
/// to a blocked source parks like at any other hub. Mass using an edge that
/// leaves a LocalGraph vanishes (virtual-node sink). The loop stops when
/// every expandable residual is at most `tolerance` (the paper's termination
/// rule E_k[u](v) <= ε).
///
/// Note this corrects the paper's Definition 1 as literally written (which
/// would zero partial vectors at hub coordinates and break Eq. 4 exactness
/// there); see DESIGN.md "Hub-coordinate semantics".
template <typename GraphView>
class ForwardPusher {
 public:
  explicit ForwardPusher(const GraphView& graph)
      : graph_(graph),
        residual_(graph.num_nodes(), 0.0),
        reserve_(graph.num_nodes(), 0.0),
        blocked_(graph.num_nodes(), 0),
        queued_(graph.num_nodes(), 0) {}

  /// Runs a push from `source`. `blocked` may contain `source`. Entries of
  /// the returned sparse vectors with values at most `prune_below` are
  /// dropped (0 keeps everything).
  ForwardPushResult Run(NodeId source, std::span<const NodeId> blocked,
                        const PprOptions& options, double prune_below = 0.0) {
    DPPR_CHECK_LT(source, graph_.num_nodes());
    const double alpha = options.alpha;
    const double eps = options.tolerance;
    DPPR_CHECK(alpha > 0.0 && alpha < 1.0);
    DPPR_CHECK_GT(eps, 0.0);

    for (NodeId b : blocked) {
      DPPR_CHECK_LT(b, graph_.num_nodes());
      blocked_[b] = 1;
    }

    ForwardPushResult result;
    touched_.clear();
    queue_.clear();
    touched_.push_back(source);

    // Expand the unit mass at the source once, unconditionally (position 0
    // of a tour is exempt from the hub constraint).
    reserve_[source] += alpha;
    ++result.pushes;
    ExpandFrom(source, 1.0, alpha, eps, result);

    while (!queue_.empty()) {
      NodeId u = queue_.front();
      queue_.pop_front();
      queued_[u] = 0;
      double r = residual_[u];
      if (r <= eps) continue;  // value may have been consumed already
      residual_[u] = 0.0;
      reserve_[u] += alpha * r;
      ++result.pushes;
      ExpandFrom(u, r, alpha, eps, result);
    }

    // Harvest sparse outputs and reset scratch in O(touched).
    std::vector<SparseVector::Entry> reserve_entries;
    std::vector<SparseVector::Entry> parked_entries;
    for (NodeId v : touched_) {
      double parked = blocked_[v] ? residual_[v] : 0.0;
      // Tours ending at a blocked node are valid (endpoint exemption): the
      // parked arrival mass is absorbed at rate α into the reserve.
      double value = reserve_[v] + alpha * parked;
      // |value| > threshold, matching SparseVector::FromDense / Pruned (push
      // values are non-negative, so abs only unifies the semantics).
      if (std::abs(value) > prune_below) reserve_entries.push_back({v, value});
      if (std::abs(parked) > prune_below) parked_entries.push_back({v, parked});
      reserve_[v] = 0.0;
      residual_[v] = 0.0;
    }
    touched_.clear();
    for (NodeId b : blocked) blocked_[b] = 0;
    result.reserve = SparseVector::FromEntries(std::move(reserve_entries));
    result.residual_at_blocked =
        SparseVector::FromEntries(std::move(parked_entries));
    return result;
  }

 private:
  // Distributes (1-α)·r from u to its out-neighbors and queues newly
  // expandable nodes.
  void ExpandFrom(NodeId u, double r, double alpha, double eps,
                  ForwardPushResult& result) {
    uint32_t denom = graph_.degree_denominator(u);
    if (denom == 0) return;  // dangling: the (1-α) share dies
    double share = (1.0 - alpha) * r / static_cast<double>(denom);
    for (NodeId v : graph_.OutNeighbors(u)) {
      ++result.edge_touches;
      if (residual_[v] == 0.0 && reserve_[v] == 0.0) touched_.push_back(v);
      residual_[v] += share;
      if (!blocked_[v] && !queued_[v] && residual_[v] > eps) {
        queued_[v] = 1;
        queue_.push_back(v);
      }
    }
  }

  const GraphView& graph_;
  std::vector<double> residual_;
  std::vector<double> reserve_;
  std::vector<uint8_t> blocked_;
  std::vector<uint8_t> queued_;
  std::deque<NodeId> queue_;
  std::vector<NodeId> touched_;
};

}  // namespace dppr

#endif  // DPPR_PPR_FORWARD_PUSH_H_
