#ifndef DPPR_PPR_SKELETON_H_
#define DPPR_PPR_SKELETON_H_

#include <cmath>
#include <vector>

#include "dppr/common/macros.h"
#include "dppr/graph/graph.h"
#include "dppr/graph/local_graph.h"
#include "dppr/ppr/ppr_options.h"

namespace dppr {

/// Hubs-skeleton column computation. For a hub h, the skeleton entry of
/// every node u is s^H_u(h) = r_u(h) — the PPV value of h as seen from u
/// (computed against the same (sub)graph). The paper distributes this with
/// the per-hub fixed point of Eq. 8 (Theorem 6):
///
///   F_{k+1}(u) = (1-α) Σ_{v∈Out(u)} F_k(v)/|Out(u)| + α·x_h(u)
///
/// which needs only O(|V|) state per hub and no cross-machine dependency.

/// Number of Eq. 8 iterations needed for error (1-α)^k <= tolerance.
inline size_t SkeletonIterationCount(const PprOptions& options) {
  double k = std::log(options.tolerance) / std::log1p(-options.alpha);
  return static_cast<size_t>(std::max(1.0, std::ceil(k)));
}

/// Runs the Eq. 8 fixed point; returns F indexed by (local) node id:
/// F[u] = s_u(hub) to within `options.tolerance`.
template <typename GraphView>
std::vector<double> SkeletonFixedPoint(const GraphView& graph, NodeId hub,
                                       const PprOptions& options = {}) {
  const size_t n = graph.num_nodes();
  DPPR_CHECK_LT(hub, n);
  const double alpha = options.alpha;
  std::vector<double> current(n, 0.0);
  std::vector<double> next(n, 0.0);
  size_t rounds = std::min(SkeletonIterationCount(options), options.max_iterations);
  for (size_t k = 0; k < rounds; ++k) {
    double max_delta = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      double sum = 0.0;
      for (NodeId v : graph.OutNeighbors(u)) sum += current[v];
      uint32_t denom = graph.degree_denominator(u);
      double value =
          denom == 0 ? 0.0 : (1.0 - alpha) * sum / static_cast<double>(denom);
      if (u == hub) value += alpha;
      next[u] = value;
      max_delta = std::max(max_delta, std::abs(value - current[u]));
    }
    current.swap(next);
    if (max_delta == 0.0) break;  // exact fixed point reached early
  }
  return current;
}

/// Reverse-push (backward local push) alternative with the same output up to
/// tolerance — the optimization the ablation bench compares against Eq. 8.
/// Requires in-adjacency on the view.
std::vector<double> SkeletonReversePush(const LocalGraph& graph, NodeId hub,
                                        const PprOptions& options = {});
std::vector<double> SkeletonReversePush(const Graph& graph, NodeId hub,
                                        const PprOptions& options = {});

}  // namespace dppr

#endif  // DPPR_PPR_SKELETON_H_
