#include "dppr/ppr/pagerank.h"

#include <algorithm>
#include <cmath>

#include "dppr/common/macros.h"
#include "dppr/ppr/metrics.h"

namespace dppr {

std::vector<double> GlobalPageRank(const Graph& graph, const PprOptions& options) {
  const size_t n = graph.num_nodes();
  if (n == 0) return {};
  const double alpha = options.alpha;
  std::vector<double> current(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    double dangling_mass = 0.0;
    std::fill(next.begin(), next.end(), 0.0);
    for (NodeId u = 0; u < n; ++u) {
      uint32_t degree = graph.out_degree(u);
      if (degree == 0) {
        dangling_mass += current[u];
        continue;
      }
      double share = (1.0 - alpha) * current[u] / static_cast<double>(degree);
      for (NodeId v : graph.OutNeighbors(u)) next[v] += share;
    }
    double base = (alpha + (1.0 - alpha) * dangling_mass) / static_cast<double>(n);
    double max_delta = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      next[v] += base;
      max_delta = std::max(max_delta, std::abs(next[v] - current[v]));
    }
    current.swap(next);
    if (max_delta <= options.tolerance) break;
  }
  return current;
}

std::vector<NodeId> TopPageRankNodes(const Graph& graph, size_t k,
                                     const PprOptions& options) {
  std::vector<double> scores = GlobalPageRank(graph, options);
  return TopK(scores, std::min(k, graph.num_nodes()));
}

}  // namespace dppr
