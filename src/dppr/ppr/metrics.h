#ifndef DPPR_PPR_METRICS_H_
#define DPPR_PPR_METRICS_H_

#include <span>
#include <vector>

#include "dppr/graph/types.h"

namespace dppr {

/// Accuracy metrics used by the paper's evaluation: average L1 and L∞
/// (§6.1), and the top-k metrics Precision, RAG and Kendall's τ (§6.2.10,
/// following refs [11, 49]).

/// Σ_v |a(v) - b(v)| / |V|.
double AverageL1(std::span<const double> a, std::span<const double> b);

/// max_v |a(v) - b(v)|.
double LInfNorm(std::span<const double> a, std::span<const double> b);

/// Indices of the k largest scores, descending score order (ties broken by
/// smaller id first, deterministically).
std::vector<NodeId> TopK(std::span<const double> scores, size_t k);

/// |top-k(exact) ∩ top-k(approx)| / k.
double PrecisionAtK(std::span<const double> exact, std::span<const double> approx,
                    size_t k);

/// Relative Aggregated Goodness: how much exact PPV mass the approximate
/// top-k captures relative to the best possible top-k.
double RagAtK(std::span<const double> exact, std::span<const double> approx,
              size_t k);

/// Kendall's τ-b over the union of both top-k sets, comparing pair orderings
/// under `exact` vs `approx` (1.0 = identical ranking, -1.0 = reversed).
double KendallTauAtK(std::span<const double> exact, std::span<const double> approx,
                     size_t k);

}  // namespace dppr

#endif  // DPPR_PPR_METRICS_H_
