#include "dppr/ppr/sparse_vector.h"

#include <algorithm>
#include <cmath>

#include "dppr/common/macros.h"

namespace dppr {

SparseVector SparseVector::FromEntries(std::vector<Entry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.index < b.index; });
  SparseVector v;
  v.entries_.reserve(entries.size());
  size_t i = 0;
  while (i < entries.size()) {
    NodeId index = entries[i].index;
    double sum = 0.0;
    for (; i < entries.size() && entries[i].index == index; ++i) {
      sum += entries[i].value;
    }
    // Duplicates that cancel to exactly 0.0 (and explicit zero entries) are
    // dropped: a stored zero inflates SerializedBytes, the paper's
    // coordinator-bytes comm metric. Same |value| > threshold semantics as
    // FromDense / Pruned at threshold 0.
    if (std::abs(sum) > 0.0) v.entries_.push_back({index, sum});
  }
  return v;
}

SparseVector SparseVector::FromDense(std::span<const double> dense,
                                     double prune_below) {
  SparseVector v;
  for (size_t i = 0; i < dense.size(); ++i) {
    if (std::abs(dense[i]) > prune_below) {
      v.entries_.push_back({static_cast<NodeId>(i), dense[i]});
    }
  }
  return v;
}

double SparseVector::ValueAt(NodeId index) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), index,
      [](const Entry& e, NodeId idx) { return e.index < idx; });
  if (it != entries_.end() && it->index == index) return it->value;
  return 0.0;
}

double SparseVector::L1Norm() const {
  double sum = 0.0;
  for (const Entry& e : entries_) sum += std::abs(e.value);
  return sum;
}

void SparseVector::AddScaledTo(std::span<double> dense, double scale) const {
  for (const Entry& e : entries_) {
    DPPR_DCHECK(e.index < dense.size());
    dense[e.index] += scale * e.value;
  }
}

SparseVector SparseVector::Pruned(double threshold) const {
  SparseVector v;
  for (const Entry& e : entries_) {
    if (std::abs(e.value) > threshold) v.entries_.push_back(e);
  }
  return v;
}

void SparseVector::SerializeTo(ByteWriter& writer) const {
  writer.PutVarU64(entries_.size());
  NodeId prev = 0;
  for (const Entry& e : entries_) {
    writer.PutVarU64(e.index - prev);
    writer.PutDouble(e.value);
    prev = e.index;
  }
}

SparseVector SparseVector::Deserialize(ByteReader& reader) {
  size_t count = reader.GetVarU64();
  // Every entry needs at least one varint byte plus a double, so a count
  // beyond remaining()/9 is corrupt; checking up front keeps a hostile count
  // from driving a huge reserve() before the per-entry reads would fail.
  DPPR_CHECK_LE(count, reader.remaining() / 9);
  SparseVector v;
  v.entries_.reserve(count);
  uint64_t prev = 0;
  for (size_t i = 0; i < count; ++i) {
    uint64_t delta = reader.GetVarU64();
    // A well-framed hostile payload could still smuggle wrapped or duplicate
    // indices past the framing checks; downstream bounds checks on the
    // accumulate path are DPPR_DCHECK-only, so reject here. Deltas must keep
    // ids strictly increasing (after the first) and inside the 30-bit id
    // range every node id in the system obeys (see MakeVectorKey).
    DPPR_CHECK(i == 0 || delta > 0);
    uint64_t index = prev + delta;
    DPPR_CHECK_LT(index, 1u << 30);
    double value = reader.GetDouble();
    v.entries_.push_back({static_cast<NodeId>(index), value});
    prev = index;
  }
  return v;
}

namespace {
size_t VarintBytes(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}
}  // namespace

size_t SparseVector::SerializedBytes() const {
  size_t total = VarintBytes(entries_.size());
  NodeId prev = 0;
  for (const Entry& e : entries_) {
    total += VarintBytes(e.index - prev) + sizeof(double);
    prev = e.index;
  }
  return total;
}

void DenseAccumulator::Add(NodeId index, double value) {
  DPPR_DCHECK(index < values_.size());
  if (!touched_flag_[index]) {
    touched_flag_[index] = 1;
    touched_.push_back(index);
  }
  values_[index] += value;
}

void DenseAccumulator::AddVector(const SparseVector& vec, double scale) {
  for (const auto& e : vec.entries()) Add(e.index, scale * e.value);
}

SparseVector DenseAccumulator::ToSparse(double prune_below) const {
  std::vector<SparseVector::Entry> entries;
  entries.reserve(touched_.size());
  for (NodeId i : touched_) {
    if (std::abs(values_[i]) > prune_below) entries.push_back({i, values_[i]});
  }
  return SparseVector::FromEntries(std::move(entries));
}

void DenseAccumulator::Clear() {
  for (NodeId i : touched_) {
    values_[i] = 0.0;
    touched_flag_[i] = 0;
  }
  touched_.clear();
}

}  // namespace dppr
