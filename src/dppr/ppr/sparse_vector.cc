#include "dppr/ppr/sparse_vector.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "dppr/common/macros.h"

namespace dppr {

SparseVector SparseVector::FromEntries(std::vector<Entry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.index < b.index; });
  SparseVector v;
  v.entries_.reserve(entries.size());
  size_t i = 0;
  while (i < entries.size()) {
    NodeId index = entries[i].index;
    double sum = 0.0;
    for (; i < entries.size() && entries[i].index == index; ++i) {
      sum += entries[i].value;
    }
    // Duplicates that cancel to exactly 0.0 (and explicit zero entries) are
    // dropped: a stored zero inflates SerializedBytes, the paper's
    // coordinator-bytes comm metric. Same |value| > threshold semantics as
    // FromDense / Pruned at threshold 0.
    if (std::abs(sum) > 0.0) v.entries_.push_back({index, sum});
  }
  return v;
}

SparseVector SparseVector::FromSortedUnique(std::vector<Entry> entries) {
  for (size_t i = 1; i < entries.size(); ++i) {
    DPPR_DCHECK(entries[i - 1].index < entries[i].index);
  }
  SparseVector v;
  v.entries_ = std::move(entries);
  return v;
}

SparseVector SparseVector::FromDense(std::span<const double> dense,
                                     double prune_below) {
  SparseVector v;
  for (size_t i = 0; i < dense.size(); ++i) {
    if (std::abs(dense[i]) > prune_below) {
      v.entries_.push_back({static_cast<NodeId>(i), dense[i]});
    }
  }
  return v;
}

double SparseVector::ValueAt(NodeId index) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), index,
      [](const Entry& e, NodeId idx) { return e.index < idx; });
  if (it != entries_.end() && it->index == index) return it->value;
  return 0.0;
}

double SparseVector::L1Norm() const {
  double sum = 0.0;
  for (const Entry& e : entries_) sum += std::abs(e.value);
  return sum;
}

void SparseVector::AddScaledTo(std::span<double> dense, double scale) const {
  if (entries_.empty()) return;
  // Entries are sorted, so one check on the last index bounds them all and
  // the loop body stays a pure load-multiply-add-store chain.
  DPPR_DCHECK(entries_.back().index < dense.size());
  double* out = dense.data();
  for (const Entry& e : entries_) out[e.index] += scale * e.value;
}

SparseVector SparseVector::Pruned(double threshold) const {
  SparseVector v;
  for (const Entry& e : entries_) {
    if (std::abs(e.value) > threshold) v.entries_.push_back(e);
  }
  return v;
}

void SparseVector::SerializeTo(ByteWriter& writer) const {
  writer.PutVarU64(entries_.size());
  NodeId prev = 0;
  for (const Entry& e : entries_) {
    writer.PutVarU64(e.index - prev);
    writer.PutDouble(e.value);
    prev = e.index;
  }
}

SparseVector SparseVector::Deserialize(ByteReader& reader) {
  size_t count = reader.GetVarU64();
  // Every entry needs at least one varint byte plus a double, so a count
  // beyond remaining()/9 is corrupt; checking up front keeps a hostile count
  // from driving a huge reserve() before the per-entry reads would fail.
  DPPR_CHECK_LE(count, reader.remaining() / 9);
  SparseVector v;
  v.entries_.reserve(count);
  uint64_t prev = 0;
  for (size_t i = 0; i < count; ++i) {
    uint64_t delta = reader.GetVarU64();
    // A well-framed hostile payload could still smuggle wrapped or duplicate
    // indices past the framing checks; downstream bounds checks on the
    // accumulate path are DPPR_DCHECK-only, so reject here. Deltas must keep
    // ids strictly increasing (after the first) and inside the 30-bit id
    // range every node id in the system obeys (see MakeVectorKey).
    DPPR_CHECK(i == 0 || delta > 0);
    uint64_t index = prev + delta;
    DPPR_CHECK_LT(index, 1u << 30);
    double value = reader.GetDouble();
    v.entries_.push_back({static_cast<NodeId>(index), value});
    prev = index;
  }
  return v;
}

namespace {
size_t VarintBytes(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}
}  // namespace

size_t SparseVector::SerializedBytes() const {
  size_t total = VarintBytes(entries_.size());
  NodeId prev = 0;
  for (const Entry& e : entries_) {
    total += VarintBytes(e.index - prev) + sizeof(double);
    prev = e.index;
  }
  return total;
}

void DenseAccumulator::AddVector(const SparseVector& vec, double scale) {
  std::span<const SparseVector::Entry> entries = vec.entries();
  const size_t n = entries.size();
  if (n == 0) return;
  // Entries are sorted: the last index bounds them all.
  DPPR_DCHECK(entries.back().index < values_.size());
  const SparseVector::Entry* e = entries.data();
  double* values = values_.data();
  // Pass 1 — value accumulation, unconditionally: no touched branch, no
  // allocation, nothing but the scaled add per entry. Same multiply-then-add
  // per index, in the same entry order, as the scalar Add loop this split
  // replaced, so the floating-point results are bit-identical.
  for (size_t i = 0; i < n; ++i) values[e[i].index] += scale * e[i].value;
  // Pass 2 — touched bookkeeping, one bitmap read-modify-write per 64-id
  // block: sorted entries make each block's indices consecutive, so the mask
  // is built branch-free and the dirty-word test runs once per block.
  size_t i = 0;
  while (i < n) {
    const size_t word = e[i].index >> 6;
    uint64_t mask = 0;
    do {
      mask |= uint64_t{1} << (e[i].index & 63);
      ++i;
    } while (i < n && (e[i].index >> 6) == word);
    MarkWord(word, mask);
  }
}

std::vector<uint32_t> DenseAccumulator::SortedDirtyWords() const {
  std::vector<uint32_t> words = dirty_words_;
  std::sort(words.begin(), words.end());
  return words;
}

std::vector<NodeId> DenseAccumulator::TouchedIndices() const {
  std::vector<NodeId> indices;
  for (uint32_t w : SortedDirtyWords()) {
    uint64_t bits = touched_words_[w];
    while (bits != 0) {
      indices.push_back((static_cast<NodeId>(w) << 6) +
                        static_cast<NodeId>(std::countr_zero(bits)));
      bits &= bits - 1;
    }
  }
  return indices;
}

SparseVector DenseAccumulator::ToSparse(double prune_below) const {
  // Walking the bitmap in word order yields indices already sorted and
  // unique, so the result adopts the entries directly — the sort-and-merge
  // pass FromEntries pays is gone from the query fold. The emitted set is
  // unchanged: |value| > prune_below, exact zeros excluded either way.
  std::vector<SparseVector::Entry> entries;
  entries.reserve(dirty_words_.size());  // >= one touched index per word
  for (uint32_t w : SortedDirtyWords()) {
    uint64_t bits = touched_words_[w];
    const double* values = values_.data() + (static_cast<size_t>(w) << 6);
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      bits &= bits - 1;
      if (std::abs(values[bit]) > prune_below) {
        entries.push_back(
            {(static_cast<NodeId>(w) << 6) + static_cast<NodeId>(bit),
             values[bit]});
      }
    }
  }
  return SparseVector::FromSortedUnique(std::move(entries));
}

void DenseAccumulator::Clear() {
  for (uint32_t w : dirty_words_) {
    uint64_t bits = touched_words_[w];
    touched_words_[w] = 0;
    double* values = values_.data() + (static_cast<size_t>(w) << 6);
    while (bits != 0) {
      values[std::countr_zero(bits)] = 0.0;
      bits &= bits - 1;
    }
  }
  dirty_words_.clear();
}

}  // namespace dppr
