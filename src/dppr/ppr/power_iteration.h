#ifndef DPPR_PPR_POWER_ITERATION_H_
#define DPPR_PPR_POWER_ITERATION_H_

#include <cmath>
#include <vector>

#include "dppr/common/macros.h"
#include "dppr/graph/types.h"
#include "dppr/ppr/ppr_options.h"

namespace dppr {

/// Dangling-mass policy during power iteration. The paper's Algorithm 2
/// (Appendix C) redirects dangling mass to the query node; datasets built
/// with the self-loop policy have no dangling nodes, making the choice moot
/// there, but both behaviours are kept for fidelity experiments.
enum class PowerDangling {
  /// Mass at a zero-denominator node vanishes (virtual-subgraph semantics).
  kAbsorb,
  /// Mass returns to the query node (paper Algorithm 2, lines 14–16).
  kRedirectToQuery,
};

struct PowerIterationOptions {
  PprOptions ppr;
  PowerDangling dangling = PowerDangling::kRedirectToQuery;
};

struct PowerIterationResult {
  std::vector<double> ppv;
  size_t iterations = 0;
  /// Directed edges traversed across all iterations (work metric).
  size_t edge_touches = 0;
};

/// Power-iteration PPV for a single query node (paper Eq. 1 / Algorithm 2):
///   r_{k+1} = (1-α) Aᵀ r_k + α x_q
/// over any GraphView (Graph or LocalGraph). Only nodes with non-zero value
/// and their out-neighbors are visited per iteration, mirroring Algorithm
/// 2's valuedNodes queue. Terminates when no entry changes by more than the
/// tolerance.
template <typename GraphView>
PowerIterationResult PowerIterationPpv(const GraphView& graph, NodeId query,
                                       const PowerIterationOptions& options = {}) {
  const size_t n = graph.num_nodes();
  DPPR_CHECK_LT(query, n);
  const double alpha = options.ppr.alpha;
  DPPR_CHECK(alpha > 0.0 && alpha < 1.0);

  PowerIterationResult result;
  std::vector<double> current(n, 0.0);
  std::vector<double> next(n, 0.0);
  std::vector<NodeId> active;     // nodes with current[u] != 0 (deduped)
  std::vector<uint8_t> in_active(n, 0);
  std::vector<NodeId> next_active;
  std::vector<uint8_t> in_next(n, 0);

  current[query] = 1.0;
  active.push_back(query);
  in_active[query] = 1;

  auto touch = [&](NodeId v) {
    if (!in_next[v]) {
      in_next[v] = 1;
      next_active.push_back(v);
    }
  };

  for (size_t iter = 0; iter < options.ppr.max_iterations; ++iter) {
    ++result.iterations;
    // One application of r -> (1-α) Aᵀ r + α x_q restricted to active nodes.
    touch(query);
    next[query] += alpha;  // teleport (Σ current ≤ 1 by construction)
    for (NodeId u : active) {
      double value = current[u];
      if (value == 0.0) continue;
      uint32_t denom = graph.degree_denominator(u);
      if (denom == 0) {
        if (options.dangling == PowerDangling::kRedirectToQuery) {
          next[query] += (1.0 - alpha) * value;
        }
        continue;  // kAbsorb: mass dies
      }
      double share = (1.0 - alpha) * value / static_cast<double>(denom);
      for (NodeId v : graph.OutNeighbors(u)) {
        next[v] += share;
        touch(v);
        ++result.edge_touches;
      }
      // LocalGraph: neighbors outside the subgraph are dropped from the
      // adjacency, so their share simply never lands — virtual-node sink.
    }

    // Convergence check over the union of supports.
    double max_delta = 0.0;
    for (NodeId v : next_active) {
      max_delta = std::max(max_delta, std::abs(next[v] - current[v]));
    }
    for (NodeId v : active) {
      if (!in_next[v]) max_delta = std::max(max_delta, current[v]);
    }

    // Swap states: clear old `current`, move next -> current.
    for (NodeId v : active) {
      current[v] = 0.0;
      in_active[v] = 0;
    }
    for (NodeId v : next_active) {
      current[v] = next[v];
      next[v] = 0.0;
      in_active[v] = 1;
      in_next[v] = 0;
    }
    active.swap(next_active);
    next_active.clear();

    if (max_delta <= options.ppr.tolerance) break;
  }

  result.ppv = std::move(current);
  return result;
}

}  // namespace dppr

#endif  // DPPR_PPR_POWER_ITERATION_H_
