#ifndef DPPR_NET_INPROC_TRANSPORT_H_
#define DPPR_NET_INPROC_TRANSPORT_H_

#include <memory>
#include <vector>

#include "dppr/net/transport.h"

namespace dppr {

/// In-process backend: a payload "send" moves the buffer into the
/// destination's FrameInbox — no serialization, no copy, no kernel. This is
/// the original SimCluster payload gather refactored behind the Transport
/// interface, and the baseline the TCP backend must match byte for byte.
///
/// Each destination endpoint (every machine plus the coordinator) has its
/// own mailbox, so senders to different destinations never contend; senders
/// to one destination contend only for the O(1) move under that mailbox's
/// mutex.
class InProcessTransport final : public Transport {
 public:
  explicit InProcessTransport(size_t num_machines);

  TransportBackend backend() const override { return TransportBackend::kInProcess; }

  void SendToCoordinator(uint64_t round, size_t src,
                         std::vector<uint8_t> payload) override;
  std::vector<std::vector<uint8_t>> GatherRound(uint64_t round) override;
  std::vector<std::vector<uint8_t>> GatherRoundPartial(
      uint64_t round, size_t expected) override;

  void SendToMachine(uint64_t round, size_t src, size_t dst,
                     std::vector<uint8_t> payload) override;
  std::vector<std::vector<uint8_t>> ReceiveExchange(uint64_t round,
                                                    size_t dst) override;

 private:
  FrameInbox coordinator_;
  std::vector<std::unique_ptr<FrameInbox>> machines_;
};

}  // namespace dppr

#endif  // DPPR_NET_INPROC_TRANSPORT_H_
