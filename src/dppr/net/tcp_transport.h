#ifndef DPPR_NET_TCP_TRANSPORT_H_
#define DPPR_NET_TCP_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "dppr/net/transport.h"

namespace dppr {

/// Real-socket backend: every simulated machine — plus the coordinator —
/// owns a listening TCP socket on 127.0.0.1 and a receive loop, and every
/// payload crosses the kernel as a checksummed frame exactly as it would
/// between hosts. Payload bytes, CommStats, and results are bit-identical to
/// InProcessTransport (the byte ledgers are computed from payload sizes, not
/// wire overhead); what changes is that the bytes genuinely travel.
///
/// Topology: endpoints 0..n-1 are the machines, endpoint n the coordinator.
/// Senders share one lazily-connected outbound socket per destination
/// endpoint (frames carry their source in the header, so one stream can
/// multiplex every sender); a per-connection mutex serializes whole frames
/// onto the stream. Sends are nonblocking with partial-write handling — the
/// frame header and payload go out as one scatter/gather writev, and EAGAIN
/// parks the sender in poll(POLLOUT) — while each endpoint's receive loop
/// (one thread per endpoint, poll over listener + accepted streams) reparses
/// the byte stream into frames and files them in the endpoint's FrameInbox.
///
/// The receive loops never deadlock a round: they always drain the kernel
/// buffers, so a sender's frames land in the inbox even when no gatherer is
/// waiting yet (sequential SimCluster mode sends all n payloads before the
/// first gather).
///
/// Hostile input dies instead of hanging: wrong magic, unknown kind,
/// oversized/wrapping length, checksum mismatch, a frame from an
/// out-of-range machine, a duplicate (round, src) frame, and a peer that
/// disconnects mid-frame all DPPR_CHECK-fail in the receive loop.
class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(size_t num_machines);
  ~TcpTransport() override;

  TransportBackend backend() const override { return TransportBackend::kTcp; }

  void SendToCoordinator(uint64_t round, size_t src,
                         std::vector<uint8_t> payload) override;
  std::vector<std::vector<uint8_t>> GatherRound(uint64_t round) override;
  std::vector<std::vector<uint8_t>> GatherRoundPartial(
      uint64_t round, size_t expected) override;

  void SendToMachine(uint64_t round, size_t src, size_t dst,
                     std::vector<uint8_t> payload) override;
  std::vector<std::vector<uint8_t>> ReceiveExchange(uint64_t round,
                                                    size_t dst) override;

  /// Endpoint index of the coordinator's listener (machines are 0..n-1).
  size_t coordinator_endpoint() const { return num_machines(); }

  /// Listening port of `endpoint` on 127.0.0.1. Exposed so hostile-frame
  /// tests can connect a raw socket and prove garbage dies cleanly.
  uint16_t port(size_t endpoint) const;

 private:
  struct Endpoint;
  struct Connection;

  void RxLoop(Endpoint& ep);
  /// Drains one inbound stream; returns false when the peer closed cleanly
  /// (between frames). Mid-frame EOF or any malformed frame dies.
  bool DrainInbound(Endpoint& ep, size_t inbound_index);
  void ParseFrames(Endpoint& ep, size_t inbound_index);
  void Deliver(Endpoint& ep, const FrameHeader& header,
               std::vector<uint8_t> payload);

  /// Connects `conn` to `endpoint`'s listener if not yet connected; call
  /// with conn.mu held.
  void EnsureConnected(Connection& conn, size_t endpoint);
  void SendFrame(size_t endpoint, FrameKind kind, uint64_t round, size_t src,
                 uint32_t dst, std::span<const uint8_t> payload);

  std::vector<std::unique_ptr<Endpoint>> endpoints_;  // n machines + coordinator
  /// One shared outbound stream per destination endpoint, fixed at
  /// construction (lazily connected under its own mutex — no global lock on
  /// the send path).
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace dppr

#endif  // DPPR_NET_TCP_TRANSPORT_H_
