#include "dppr/net/inproc_transport.h"

#include <utility>

#include "dppr/common/macros.h"

namespace dppr {

InProcessTransport::InProcessTransport(size_t num_machines)
    : Transport(num_machines), coordinator_(num_machines) {
  machines_.reserve(num_machines);
  for (size_t m = 0; m < num_machines; ++m) {
    machines_.push_back(std::make_unique<FrameInbox>(num_machines));
  }
}

void InProcessTransport::SendToCoordinator(uint64_t round, size_t src,
                                           std::vector<uint8_t> payload) {
  DPPR_CHECK_LT(src, num_machines());
  coordinator_.Push(round, src, std::move(payload));
}

std::vector<std::vector<uint8_t>> InProcessTransport::GatherRound(uint64_t round) {
  return coordinator_.WaitAll(round);
}

void InProcessTransport::SendToMachine(uint64_t round, size_t src, size_t dst,
                                       std::vector<uint8_t> payload) {
  DPPR_CHECK_LT(src, num_machines());
  DPPR_CHECK_LT(dst, num_machines());
  machines_[dst]->Push(round, src, std::move(payload));
}

std::vector<std::vector<uint8_t>> InProcessTransport::ReceiveExchange(
    uint64_t round, size_t dst) {
  DPPR_CHECK_LT(dst, num_machines());
  return machines_[dst]->WaitAll(round);
}

}  // namespace dppr
