#include "dppr/net/inproc_transport.h"

#include <utility>

#include "dppr/common/macros.h"
#include "dppr/obs/metrics.h"

namespace dppr {
namespace {

/// In-process "wire" accounting: payload bytes only (no frame headers exist
/// here), so net.inproc.bytes_sent matches the CommStats ledger while
/// net.tcp.bytes_sent shows what the same workload costs on real sockets.
struct InprocMetrics {
  obs::Counter* bytes_sent;
  obs::Counter* frames_sent;

  static const InprocMetrics& Get() {
    static const InprocMetrics metrics = [] {
      auto& r = obs::MetricsRegistry::Global();
      return InprocMetrics{r.GetCounter("net.inproc.bytes_sent"),
                           r.GetCounter("net.inproc.frames_sent")};
    }();
    return metrics;
  }
};

}  // namespace

InProcessTransport::InProcessTransport(size_t num_machines)
    : Transport(num_machines), coordinator_(num_machines) {
  machines_.reserve(num_machines);
  for (size_t m = 0; m < num_machines; ++m) {
    machines_.push_back(std::make_unique<FrameInbox>(num_machines));
  }
}

void InProcessTransport::SendToCoordinator(uint64_t round, size_t src,
                                           std::vector<uint8_t> payload) {
  DPPR_CHECK_LT(src, num_machines());
  const InprocMetrics& metrics = InprocMetrics::Get();
  metrics.frames_sent->Increment();
  metrics.bytes_sent->Add(payload.size());
  coordinator_.Push(round, src, std::move(payload));
}

std::vector<std::vector<uint8_t>> InProcessTransport::GatherRound(uint64_t round) {
  return coordinator_.WaitAll(round);
}

std::vector<std::vector<uint8_t>> InProcessTransport::GatherRoundPartial(
    uint64_t round, size_t expected) {
  return coordinator_.WaitCount(round, expected);
}

void InProcessTransport::SendToMachine(uint64_t round, size_t src, size_t dst,
                                       std::vector<uint8_t> payload) {
  DPPR_CHECK_LT(src, num_machines());
  DPPR_CHECK_LT(dst, num_machines());
  const InprocMetrics& metrics = InprocMetrics::Get();
  metrics.frames_sent->Increment();
  metrics.bytes_sent->Add(payload.size());
  machines_[dst]->Push(round, src, std::move(payload));
}

std::vector<std::vector<uint8_t>> InProcessTransport::ReceiveExchange(
    uint64_t round, size_t dst) {
  DPPR_CHECK_LT(dst, num_machines());
  return machines_[dst]->WaitAll(round);
}

}  // namespace dppr
