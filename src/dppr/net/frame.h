#ifndef DPPR_NET_FRAME_H_
#define DPPR_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace dppr {

/// \file
/// Wire framing for Transport messages. Every payload a machine ships —
/// whether through the in-process queues or a real socket — is logically one
/// frame: a fixed-size header naming the message class, the sending machine,
/// the destination, and the round it belongs to, followed by `payload_bytes`
/// of opaque payload guarded by a checksum. A TCP byte stream is just a
/// concatenation of frames, so a receiver can demultiplex many concurrent
/// rounds off one connection.
///
/// Decoding is hostile-input-hardened in the same spirit as the existing
/// deserializers (ByteReader, VectorRecord): a truncated header, an unknown
/// kind, an absurd or wrapping length, or a checksum mismatch DPPR_CHECK-fail
/// instead of hanging the gatherer or handing garbage to the reducer.

/// Message classes moved by a Transport.
enum class FrameKind : uint8_t {
  /// Machine → coordinator: one end-of-round payload per machine.
  kGather = 0,
  /// Machine → machine: one p2p payload of an exchange (shuffle) round.
  kExchange = 1,
};

/// `dst` of a coordinator-bound frame (the coordinator is not a machine, so
/// no machine index may alias it).
inline constexpr uint32_t kCoordinatorDst = 0xFFFFFFFFu;

/// Upper bound on one frame's payload. Real payloads (a machine's serialized
/// vectors for one superstep) stay orders of magnitude below this; the bound
/// exists so a corrupt or hostile length field dies at decode instead of
/// wrapping arithmetic or committing the receive loop to buffering huge
/// amounts of unverified bytes before the checksum can run. Raise it if a
/// workload ever legitimately ships gigabyte supersteps.
inline constexpr uint64_t kMaxFramePayloadBytes = uint64_t{1} << 30;

/// "DPRF" in little-endian byte order.
inline constexpr uint32_t kFrameMagic = 0x46525044u;

/// magic u32 | kind u8 | src u32 | dst u32 | round u64 | trace u64 |
/// span u64 | length u64 | checksum u64.
inline constexpr size_t kFrameHeaderBytes = 4 + 1 + 4 + 4 + 8 + 8 + 8 + 8 + 8;

struct FrameHeader {
  FrameKind kind = FrameKind::kGather;
  /// Sending machine index.
  uint32_t src = 0;
  /// Destination machine index, or kCoordinatorDst for gather frames.
  uint32_t dst = kCoordinatorDst;
  /// Transport round the payload belongs to (Transport::AllocateRound).
  uint64_t round = 0;
  /// Originating query's trace context (obs::TraceContext; 0 = untraced).
  /// Stamped from the sending thread's context by MakeFrameHeader, so every
  /// byte on the wire is attributable to the query that caused it even once
  /// machines live in separate processes.
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t payload_bytes = 0;
  /// FrameChecksum over the payload bytes.
  uint64_t checksum = 0;
};

/// FNV-1a 64 over the payload. Not cryptographic — it catches corruption and
/// framing bugs (a reader that lost sync), not an adversary who can also
/// recompute the hash.
uint64_t FrameChecksum(std::span<const uint8_t> payload);

/// The one place a header is assembled for `payload` (length + checksum
/// filled in; DPPR_CHECK-fails on a payload over kMaxFramePayloadBytes, at
/// the origin rather than at every receiver). Both the contiguous BuildFrame
/// and the TCP sender's zero-copy scatter/gather path go through this.
FrameHeader MakeFrameHeader(FrameKind kind, uint64_t round, uint32_t src,
                            uint32_t dst, std::span<const uint8_t> payload);

/// Writes the fixed-size header; `out.size()` must be >= kFrameHeaderBytes.
void EncodeFrameHeader(const FrameHeader& header, std::span<uint8_t> out);

/// Parses and validates a header. DPPR_CHECK-fails on a truncated buffer,
/// wrong magic, unknown kind, or a payload length over kMaxFramePayloadBytes
/// (which also catches wrapping lengths near UINT64_MAX).
FrameHeader DecodeFrameHeader(std::span<const uint8_t> bytes);

/// One whole frame (header + payload) as a contiguous buffer, checksum
/// filled in. The TCP sender scatter/gathers header and payload instead of
/// copying them together; this form is for tests and small control frames.
std::vector<uint8_t> BuildFrame(FrameKind kind, uint64_t round, uint32_t src,
                                uint32_t dst, std::span<const uint8_t> payload);

}  // namespace dppr

#endif  // DPPR_NET_FRAME_H_
