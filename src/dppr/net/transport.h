#ifndef DPPR_NET_TRANSPORT_H_
#define DPPR_NET_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dppr/net/frame.h"

namespace dppr {

/// The pluggable message layers behind SimCluster.
enum class TransportBackend : uint8_t {
  /// Payloads move as in-process buffer hand-offs (one mutex-guarded mailbox
  /// per destination, no serialization or copy) — the refactored home of the
  /// original direct payload gather.
  kInProcess = 0,
  /// Payloads move as checksummed frames over real localhost TCP sockets,
  /// one listener per simulated machine plus one for the coordinator.
  kTcp = 1,
};

const char* TransportBackendName(TransportBackend backend);

/// Backend selection. `FromEnv` lets one env switch flip every cluster in
/// the process (the CI TCP leg runs the whole test suite under
/// `DPPR_TRANSPORT=tcp`):
///
///   DPPR_TRANSPORT  "tcp" moves every round over real sockets, "inproc"
///                   keeps the call site's in-process default; unset keeps
///                   the default; anything else DPPR_CHECK-fails (a typo
///                   must not silently fall back to memory hand-offs).
struct TransportOptions {
  TransportBackend backend = TransportBackend::kInProcess;

  static TransportOptions FromEnv(
      TransportBackend fallback = TransportBackend::kInProcess);
};

/// Mailbox of one destination endpoint: payloads arriving for (round, src),
/// delivered to a waiter that needs the full set of `num_sources` payloads
/// of a round. Both backends route through this — the in-process transport
/// pushes moved buffers directly, the TCP receive loops push decoded frame
/// payloads — so waiting, round demultiplexing, and duplicate-frame
/// detection behave identically on either.
///
/// Memory is bounded by the in-flight window, not the transport's lifetime:
/// round ids are dense per inbox (each FrameKind has its own id space and an
/// inbox only ever receives one kind), so retired rounds compact into a low
/// watermark plus the out-of-order completions still above it.
class FrameInbox {
 public:
  explicit FrameInbox(size_t num_sources) : num_sources_(num_sources) {}

  FrameInbox(const FrameInbox&) = delete;
  FrameInbox& operator=(const FrameInbox&) = delete;

  /// Files `payload` under (round, src). A second frame for the same slot,
  /// or any frame for a round WaitAll already retired, is hostile (each
  /// source sends exactly one payload per round, and nobody will ever wait
  /// on a retired round again — absorbing the replay would orphan a slot
  /// holding payload copies forever) and dies.
  void Push(uint64_t round, size_t src, std::vector<uint8_t> payload);

  /// Blocks until all `num_sources` payloads of `round` arrived, then
  /// returns them indexed by source and retires the round. Many rounds may
  /// be in flight at once (concurrent queries); each waiter sleeps on its
  /// own round's condition variable, so one round completing never wakes
  /// another round's gatherer.
  std::vector<std::vector<uint8_t>> WaitAll(uint64_t round);

  /// Like WaitAll, but the round is complete after `expected` payloads (a
  /// routed round where only a subset of sources send). The returned vector
  /// is still indexed by source with num_sources entries — absent sources
  /// are empty. The waiter is what knows how many senders a round has, so a
  /// frame count above `expected` (a non-participant sending anyway) is
  /// hostile and dies in Push once the waiter declared the round's size.
  std::vector<std::vector<uint8_t>> WaitCount(uint64_t round, size_t expected);

 private:
  struct Slot {
    std::vector<std::vector<uint8_t>> payloads;
    std::vector<uint8_t> present;
    size_t arrived = 0;
    /// How many payloads complete this round; 0 until the waiter arrives
    /// and declares it (Push cannot know a routed round's participant
    /// count on its own).
    size_t expected = 0;
    /// Per-round: only this round's waiter ever sleeps here.
    std::condition_variable arrived_cv;
  };

  /// Finds or creates the slot of `round`; call with mu_ held.
  Slot& SlotFor(uint64_t round);

  size_t num_sources_;
  std::mutex mu_;
  /// Slots are heap-pinned so a waiter's reference (and its cv) survives
  /// map rehashes while other rounds come and go.
  std::unordered_map<uint64_t, std::unique_ptr<Slot>> rounds_;
  /// Every round below this has been retired; with dense per-inbox ids the
  /// floor chases the slowest in-flight round.
  uint64_t retired_floor_ = 0;
  /// Out-of-order retirements still above the floor (bounded by the number
  /// of concurrent rounds); drained into the floor as the gaps close.
  std::unordered_set<uint64_t> retired_above_floor_;
};

/// Message layer of a simulated cluster: how the bytes of a round actually
/// move between the machines and the coordinator. SimCluster owns one
/// Transport and routes every superstep and query round through it; which
/// backend is live never changes payload bytes, CommStats, or results — only
/// where the bytes physically travel.
///
/// Two primitives, mirroring the two traffic patterns of the paper:
///   - gather: every machine sends one payload per round to the coordinator
///     (SendToCoordinator / GatherRound) — offline supersteps and query
///     fragment collection;
///   - exchange: machine → machine p2p payloads (SendToMachine /
///     ReceiveExchange) — the home for Lin-style shuffle rounds where a
///     vector is computed where the subgraph lives and shipped to its owner.
///
/// Threading contract: sends are safe from any thread (SimCluster's machine
/// tasks run on the shared ThreadPool); GatherRound/ReceiveExchange are safe
/// from many threads as long as each round has exactly one waiter. Round ids
/// come from AllocateRound, so concurrent rounds on one transport never mix
/// frames.
class Transport {
 public:
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  virtual TransportBackend backend() const = 0;

  size_t num_machines() const { return num_machines_; }

  /// Next round id of `kind`; tag every frame of one gather/exchange with
  /// the same id. Each kind has its own dense id space — an inbox only ever
  /// receives one kind, which is what lets it compact retired rounds into a
  /// low watermark instead of remembering every id forever.
  ///
  /// Visibility note for receive paths that check allocated_rounds: the C++
  /// memory model alone does not order this fetch_add before a receiver's
  /// load — the threads are only linked by the payload bytes. What makes
  /// the watermark check sound in TcpTransport is the send/recv syscall
  /// pair between allocation and delivery (a kernel-side barrier); a future
  /// backend without a syscall in that path must add its own edge from
  /// sender to receiver before trusting the watermark.
  uint64_t AllocateRound(FrameKind kind) {
    return round_counter(kind).fetch_add(1, std::memory_order_acq_rel);
  }

  /// Ships machine `src`'s end-of-round payload to the coordinator.
  virtual void SendToCoordinator(uint64_t round, size_t src,
                                 std::vector<uint8_t> payload) = 0;

  /// Coordinator side: blocks until every machine's payload for `round`
  /// arrived; returns them indexed by machine.
  virtual std::vector<std::vector<uint8_t>> GatherRound(uint64_t round) = 0;

  /// Partial-gather variant for routed rounds: blocks until `expected`
  /// payloads arrived (only a subset of machines sends), returns them still
  /// indexed by machine — non-senders' entries are empty.
  virtual std::vector<std::vector<uint8_t>> GatherRoundPartial(
      uint64_t round, size_t expected) = 0;

  /// Ships one p2p payload from machine `src` to machine `dst`.
  virtual void SendToMachine(uint64_t round, size_t src, size_t dst,
                             std::vector<uint8_t> payload) = 0;

  /// Machine `dst`'s side of an exchange round: blocks until one payload
  /// from every machine (including `dst` itself) arrived; returns them
  /// indexed by source.
  virtual std::vector<std::vector<uint8_t>> ReceiveExchange(uint64_t round,
                                                            size_t dst) = 0;

 protected:
  explicit Transport(size_t num_machines);

  /// Rounds of `kind` handed out so far. Every legitimate frame's round id
  /// was allocated before its send, so a receive path may treat an id at or
  /// past this watermark as hostile (it could otherwise squat on a future
  /// round's slot or grow the inbox without bound).
  uint64_t allocated_rounds(FrameKind kind) const {
    return round_counter(kind).load(std::memory_order_acquire);
  }

 private:
  std::atomic<uint64_t>& round_counter(FrameKind kind) {
    return kind == FrameKind::kGather ? next_gather_round_
                                      : next_exchange_round_;
  }
  const std::atomic<uint64_t>& round_counter(FrameKind kind) const {
    return kind == FrameKind::kGather ? next_gather_round_
                                      : next_exchange_round_;
  }

  size_t num_machines_;
  std::atomic<uint64_t> next_gather_round_{0};
  std::atomic<uint64_t> next_exchange_round_{0};
};

/// Factory for TransportOptions::backend.
std::shared_ptr<Transport> MakeTransport(
    size_t num_machines,
    const TransportOptions& options = TransportOptions::FromEnv());

}  // namespace dppr

#endif  // DPPR_NET_TRANSPORT_H_
