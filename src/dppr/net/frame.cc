#include "dppr/net/frame.h"

#include <cstring>

#include "dppr/common/macros.h"
#include "dppr/common/serialize.h"
#include "dppr/obs/trace.h"

namespace dppr {

uint64_t FrameChecksum(std::span<const uint8_t> payload) {
  uint64_t hash = 14695981039346656037ull;
  for (uint8_t byte : payload) {
    hash ^= byte;
    hash *= 1099511628211ull;
  }
  return hash;
}

void EncodeFrameHeader(const FrameHeader& header, std::span<uint8_t> out) {
  DPPR_CHECK_GE(out.size(), kFrameHeaderBytes);
  // Same ByteWriter the rest of the wire format goes through — one place
  // owns the byte-order convention and the field layout.
  ByteWriter writer;
  writer.PutU32(kFrameMagic);
  writer.PutU8(static_cast<uint8_t>(header.kind));
  writer.PutU32(header.src);
  writer.PutU32(header.dst);
  writer.PutU64(header.round);
  writer.PutU64(header.trace_id);
  writer.PutU64(header.span_id);
  writer.PutU64(header.payload_bytes);
  writer.PutU64(header.checksum);
  DPPR_CHECK_EQ(writer.size(), kFrameHeaderBytes);
  std::memcpy(out.data(), writer.bytes().data(), kFrameHeaderBytes);
}

FrameHeader DecodeFrameHeader(std::span<const uint8_t> bytes) {
  // A truncated header is hostile input, not a retryable condition: the
  // stream parser only calls this once kFrameHeaderBytes are buffered.
  DPPR_CHECK_GE(bytes.size(), kFrameHeaderBytes);
  ByteReader reader(bytes.data(), bytes.size());
  DPPR_CHECK_EQ(reader.GetU32(), kFrameMagic);
  uint8_t kind = reader.GetU8();
  DPPR_CHECK_LE(kind, static_cast<uint8_t>(FrameKind::kExchange));
  FrameHeader header;
  header.kind = static_cast<FrameKind>(kind);
  header.src = reader.GetU32();
  header.dst = reader.GetU32();
  header.round = reader.GetU64();
  header.trace_id = reader.GetU64();
  header.span_id = reader.GetU64();
  header.payload_bytes = reader.GetU64();
  header.checksum = reader.GetU64();
  // Also rejects lengths that would wrap `header + payload` arithmetic.
  DPPR_CHECK_LE(header.payload_bytes, kMaxFramePayloadBytes);
  return header;
}

FrameHeader MakeFrameHeader(FrameKind kind, uint64_t round, uint32_t src,
                            uint32_t dst, std::span<const uint8_t> payload) {
  // Producers fail here, at the origin, rather than shipping a frame every
  // receiver is contractually required to reject.
  DPPR_CHECK_LE(payload.size(), kMaxFramePayloadBytes);
  FrameHeader header;
  header.kind = kind;
  header.src = src;
  header.dst = dst;
  header.round = round;
  // Being the ONE header assembly point means query attribution crosses the
  // wire for free: both BuildFrame and the TCP scatter/gather sender stamp
  // the sending thread's context here.
  const obs::TraceContext ctx = obs::CurrentTraceContext();
  header.trace_id = ctx.trace_id;
  header.span_id = ctx.span_id;
  header.payload_bytes = payload.size();
  header.checksum = FrameChecksum(payload);
  return header;
}

std::vector<uint8_t> BuildFrame(FrameKind kind, uint64_t round, uint32_t src,
                                uint32_t dst, std::span<const uint8_t> payload) {
  FrameHeader header = MakeFrameHeader(kind, round, src, dst, payload);
  std::vector<uint8_t> frame(kFrameHeaderBytes + payload.size());
  EncodeFrameHeader(header, frame);
  if (!payload.empty()) {
    std::memcpy(frame.data() + kFrameHeaderBytes, payload.data(), payload.size());
  }
  return frame;
}

}  // namespace dppr
