#include "dppr/net/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

#include "dppr/common/macros.h"
#include "dppr/common/timer.h"
#include "dppr/obs/metrics.h"
#include "dppr/obs/trace.h"

namespace dppr {
namespace {

/// Process-wide TCP wire accounting. bytes_sent counts payload + frame
/// header (actual socket traffic, unlike CommStats which stays
/// payload-only and backend-invariant); partial_write_retries counts
/// sendmsg calls beyond the first per frame — nonzero means the kernel
/// buffer filled and frames are backpressured.
struct TcpMetrics {
  obs::Counter* bytes_sent;
  obs::Counter* frames_sent;
  obs::Counter* bytes_received;
  obs::Counter* frames_received;
  obs::Counter* connects;
  obs::Counter* partial_write_retries;
  obs::Histogram* frame_flush_us;

  static const TcpMetrics& Get() {
    static const TcpMetrics metrics = [] {
      auto& r = obs::MetricsRegistry::Global();
      return TcpMetrics{r.GetCounter("net.tcp.bytes_sent"),
                        r.GetCounter("net.tcp.frames_sent"),
                        r.GetCounter("net.tcp.bytes_received"),
                        r.GetCounter("net.tcp.frames_received"),
                        r.GetCounter("net.tcp.connects"),
                        r.GetCounter("net.tcp.partial_write_retries"),
                        r.GetHistogram("net.tcp.frame_flush_us")};
    }();
    return metrics;
  }
};

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  DPPR_CHECK_GE(flags, 0);
  DPPR_CHECK_GE(::fcntl(fd, F_SETFL, flags | O_NONBLOCK), 0);
}

void SetNoDelay(int fd) {
  // Frames are request/response-shaped; Nagle only adds latency here.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

/// Shared outbound stream to one endpoint, lazily connected. The mutex
/// serializes whole frames onto the stream so concurrent rounds' frames
/// never interleave mid-frame.
struct TcpTransport::Connection {
  int fd = -1;  // -1 until the first send to this endpoint connects
  std::mutex mu;
};

struct TcpTransport::Endpoint {
  size_t index = 0;
  int listen_fd = -1;
  uint16_t listen_port = 0;
  /// Self-pipe; the destructor writes a byte to wake the poll loop for exit.
  int stop_fds[2] = {-1, -1};
  FrameInbox inbox;
  std::thread rx;

  /// One accepted inbound stream and the unparsed prefix of its bytes.
  struct Inbound {
    int fd = -1;
    std::vector<uint8_t> buf;
    bool closed = false;
  };
  std::vector<Inbound> inbound;  // touched only by the rx thread

  Endpoint(size_t idx, size_t num_machines) : index(idx), inbox(num_machines) {}
};

TcpTransport::TcpTransport(size_t num_machines) : Transport(num_machines) {
  connections_.reserve(num_machines + 1);
  for (size_t i = 0; i <= num_machines; ++i) {
    connections_.push_back(std::make_unique<Connection>());
  }
  endpoints_.reserve(num_machines + 1);
  for (size_t i = 0; i <= num_machines; ++i) {
    auto ep = std::make_unique<Endpoint>(i, num_machines);

    // Nonblocking listener: the rx loop accepts in a drain-until-EAGAIN loop
    // after poll, which would wedge forever on a blocking accept.
    ep->listen_fd =
        ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
    DPPR_CHECK_GE(ep->listen_fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // ephemeral: the kernel picks a free port per machine
    DPPR_CHECK_EQ(::bind(ep->listen_fd, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)), 0);
    DPPR_CHECK_EQ(::listen(ep->listen_fd, 128), 0);
    socklen_t len = sizeof(addr);
    DPPR_CHECK_EQ(::getsockname(ep->listen_fd, reinterpret_cast<sockaddr*>(&addr),
                                &len), 0);
    ep->listen_port = ntohs(addr.sin_port);

    DPPR_CHECK_EQ(::pipe2(ep->stop_fds, O_CLOEXEC), 0);
    ep->rx = std::thread([this, raw = ep.get()] { RxLoop(*raw); });
    endpoints_.push_back(std::move(ep));
  }
}

TcpTransport::~TcpTransport() {
  // Close outbound streams first: each receive loop sees a clean EOF between
  // frames (destruction only happens with no round in flight, so the kernel
  // delivers any already-sent bytes before the EOF).
  for (auto& conn : connections_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  for (auto& ep : endpoints_) {
    char stop = 1;
    // The pipe holds the byte even if the rx thread is mid-parse.
    ssize_t n = ::write(ep->stop_fds[1], &stop, 1);
    DPPR_CHECK_EQ(n, 1);
  }
  for (auto& ep : endpoints_) ep->rx.join();
  for (auto& ep : endpoints_) {
    for (auto& in : ep->inbound) {
      if (!in.closed) ::close(in.fd);
    }
    ::close(ep->listen_fd);
    ::close(ep->stop_fds[0]);
    ::close(ep->stop_fds[1]);
  }
}

uint16_t TcpTransport::port(size_t endpoint) const {
  DPPR_CHECK_LT(endpoint, endpoints_.size());
  return endpoints_[endpoint]->listen_port;
}

// ---------------------------------------------------------------------------
// Receive side
// ---------------------------------------------------------------------------

void TcpTransport::RxLoop(Endpoint& ep) {
  std::vector<pollfd> fds;
  for (;;) {
    fds.clear();
    fds.push_back({ep.stop_fds[0], POLLIN, 0});
    fds.push_back({ep.listen_fd, POLLIN, 0});
    // fds[2 + i] <-> inbound[i]; entries marked closed below never survive
    // to this rebuild (erase_if prunes them at the end of each iteration).
    const size_t tracked = ep.inbound.size();
    for (const auto& in : ep.inbound) {
      fds.push_back({in.fd, POLLIN, 0});
    }

    int rc = ::poll(fds.data(), fds.size(), -1);
    if (rc < 0 && errno == EINTR) continue;
    DPPR_CHECK_GT(rc, 0);

    if (fds[0].revents != 0) return;  // stop signal

    // A listener error (POLLERR/POLLNVAL) would otherwise skip the accept
    // branch and re-poll instantly forever: a silent 100% CPU spin while
    // gatherers wait. Die instead, per this subsystem's contract.
    DPPR_CHECK((fds[1].revents & ~POLLIN) == 0 && "listener socket error");

    if (fds[1].revents & POLLIN) {
      for (;;) {
        int fd = ::accept4(ep.listen_fd, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          if (errno == EINTR || errno == ECONNABORTED) continue;
          DPPR_CHECK(false && "accept failed");
        }
        SetNoDelay(fd);
        ep.inbound.push_back(Endpoint::Inbound{fd, {}, false});
      }
    }

    for (size_t i = 0; i < tracked; ++i) {
      if (fds[2 + i].revents == 0) continue;
      if (!DrainInbound(ep, i)) {
        ::close(ep.inbound[i].fd);
        ep.inbound[i].closed = true;
      }
    }
    // Prune cleanly-closed streams now that this iteration's fd indices are
    // done: under connect/disconnect churn the list (and the pollfd vector
    // rebuilt from it) must track live connections, not every connection
    // ever accepted.
    std::erase_if(ep.inbound,
                  [](const Endpoint::Inbound& in) { return in.closed; });
  }
}

bool TcpTransport::DrainInbound(Endpoint& ep, size_t inbound_index) {
  Endpoint::Inbound& in = ep.inbound[inbound_index];
  constexpr size_t kReadChunk = 64 << 10;
  for (;;) {
    // Read straight into the parse buffer's tail — no intermediate chunk
    // copy on the receive loop's critical path.
    const size_t old_size = in.buf.size();
    in.buf.resize(old_size + kReadChunk);
    ssize_t n = ::read(in.fd, in.buf.data() + old_size, kReadChunk);
    if (n <= 0) in.buf.resize(old_size);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      // A reset mid-stream is indistinguishable from truncation: refuse to
      // leave a gatherer waiting forever on bytes that will never come.
      DPPR_CHECK(false && "inbound stream error");
    }
    if (n == 0) {
      // EOF. Between frames it is a clean close (the peer's transport shut
      // down); inside a frame the stream was truncated — die, don't hang.
      DPPR_CHECK(in.buf.empty() && "peer disconnected mid-frame");
      return false;
    }
    in.buf.resize(old_size + static_cast<size_t>(n));
    ParseFrames(ep, inbound_index);
  }
}

void TcpTransport::ParseFrames(Endpoint& ep, size_t inbound_index) {
  Endpoint::Inbound& in = ep.inbound[inbound_index];
  size_t start = 0;
  for (;;) {
    const size_t avail = in.buf.size() - start;
    if (avail < kFrameHeaderBytes) break;
    FrameHeader header =
        DecodeFrameHeader({in.buf.data() + start, kFrameHeaderBytes});
    // payload_bytes is bounded by kMaxFramePayloadBytes (checked in decode),
    // so this sum cannot wrap.
    if (avail < kFrameHeaderBytes + header.payload_bytes) break;
    const uint8_t* payload_begin = in.buf.data() + start + kFrameHeaderBytes;
    std::vector<uint8_t> payload(
        payload_begin, payload_begin + static_cast<size_t>(header.payload_bytes));
    DPPR_CHECK_EQ(FrameChecksum(payload), header.checksum);
    Deliver(ep, header, std::move(payload));
    start += kFrameHeaderBytes + static_cast<size_t>(header.payload_bytes);
  }
  if (start > 0) in.buf.erase(in.buf.begin(), in.buf.begin() + start);
}

void TcpTransport::Deliver(Endpoint& ep, const FrameHeader& header,
                           std::vector<uint8_t> payload) {
  DPPR_CHECK_LT(header.src, num_machines());
  // Legitimate senders allocate the round id before sending, so an id at or
  // past its kind's watermark is hostile: it would squat on a future round's
  // slot (making the real machine's send die as a "duplicate") or grow the
  // inbox without bound under a stream of bogus ids.
  DPPR_CHECK_LT(header.round, allocated_rounds(header.kind));
  if (ep.index == coordinator_endpoint()) {
    DPPR_CHECK(header.kind == FrameKind::kGather);
    DPPR_CHECK_EQ(header.dst, kCoordinatorDst);
  } else {
    DPPR_CHECK(header.kind == FrameKind::kExchange);
    DPPR_CHECK_EQ(header.dst, static_cast<uint32_t>(ep.index));
  }
  const TcpMetrics& metrics = TcpMetrics::Get();
  metrics.frames_received->Increment();
  metrics.bytes_received->Add(kFrameHeaderBytes + payload.size());
  ep.inbox.Push(header.round, header.src, std::move(payload));
}

// ---------------------------------------------------------------------------
// Send side
// ---------------------------------------------------------------------------

void TcpTransport::EnsureConnected(Connection& conn, size_t endpoint) {
  if (conn.fd >= 0) return;
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  DPPR_CHECK_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(endpoints_[endpoint]->listen_port);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  DPPR_CHECK_EQ(rc, 0);
  SetNoDelay(fd);
  SetNonBlocking(fd);
  conn.fd = fd;
  TcpMetrics::Get().connects->Increment();
}

void TcpTransport::SendFrame(size_t endpoint, FrameKind kind, uint64_t round,
                             size_t src, uint32_t dst,
                             std::span<const uint8_t> payload) {
  uint8_t header_bytes[kFrameHeaderBytes];
  EncodeFrameHeader(
      MakeFrameHeader(kind, round, static_cast<uint32_t>(src), dst, payload),
      header_bytes);

  // The span covers lock wait + connect + the full flush, on the sending
  // machine's lane: in a timeline, long net.tcp.send spans under short
  // cluster compute point at socket backpressure.
  obs::TraceSpan span(obs::MachineLane(src), "net.tcp.send");
  span.Arg("round", round);
  span.Arg("bytes", payload.size());

  Connection& conn = *connections_[endpoint];
  std::lock_guard<std::mutex> lock(conn.mu);
  EnsureConnected(conn, endpoint);
  WallTimer flush_timer;
  size_t sendmsg_calls = 0;

  // Header and payload leave as one scatter/gather send; partial writes
  // advance the iovec cursor, EAGAIN parks in poll until the receive loop
  // drains the peer's buffer.
  iovec iov[2];
  iov[0] = {header_bytes, kFrameHeaderBytes};
  msghdr msg{};
  msg.msg_iov = iov;
  msg.msg_iovlen = 1;
  if (!payload.empty()) {
    iov[1] = {const_cast<uint8_t*>(payload.data()), payload.size()};
    msg.msg_iovlen = 2;
  }
  size_t remaining = kFrameHeaderBytes + payload.size();
  while (remaining > 0) {
    ssize_t n = ::sendmsg(conn.fd, &msg, MSG_NOSIGNAL);
    ++sendmsg_calls;
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollfd pfd{conn.fd, POLLOUT, 0};
        int rc = ::poll(&pfd, 1, -1);
        if (rc < 0 && errno == EINTR) continue;
        DPPR_CHECK_GT(rc, 0);
        continue;
      }
      DPPR_CHECK(false && "send failed: peer vanished mid-round");
    }
    remaining -= static_cast<size_t>(n);
    size_t advance = static_cast<size_t>(n);
    while (advance > 0) {
      if (advance >= msg.msg_iov[0].iov_len) {
        advance -= msg.msg_iov[0].iov_len;
        ++msg.msg_iov;
        --msg.msg_iovlen;
      } else {
        msg.msg_iov[0].iov_base =
            static_cast<uint8_t*>(msg.msg_iov[0].iov_base) + advance;
        msg.msg_iov[0].iov_len -= advance;
        advance = 0;
      }
    }
  }
  const TcpMetrics& metrics = TcpMetrics::Get();
  metrics.frames_sent->Increment();
  metrics.bytes_sent->Add(kFrameHeaderBytes + payload.size());
  if (sendmsg_calls > 1) {
    metrics.partial_write_retries->Add(sendmsg_calls - 1);
  }
  metrics.frame_flush_us->Record(
      static_cast<uint64_t>(flush_timer.ElapsedSeconds() * 1e6));
}

void TcpTransport::SendToCoordinator(uint64_t round, size_t src,
                                     std::vector<uint8_t> payload) {
  DPPR_CHECK_LT(src, num_machines());
  SendFrame(coordinator_endpoint(), FrameKind::kGather, round, src,
            kCoordinatorDst, payload);
}

std::vector<std::vector<uint8_t>> TcpTransport::GatherRound(uint64_t round) {
  return endpoints_[coordinator_endpoint()]->inbox.WaitAll(round);
}

std::vector<std::vector<uint8_t>> TcpTransport::GatherRoundPartial(
    uint64_t round, size_t expected) {
  return endpoints_[coordinator_endpoint()]->inbox.WaitCount(round, expected);
}

void TcpTransport::SendToMachine(uint64_t round, size_t src, size_t dst,
                                 std::vector<uint8_t> payload) {
  DPPR_CHECK_LT(src, num_machines());
  DPPR_CHECK_LT(dst, num_machines());
  SendFrame(dst, FrameKind::kExchange, round, src, static_cast<uint32_t>(dst),
            payload);
}

std::vector<std::vector<uint8_t>> TcpTransport::ReceiveExchange(uint64_t round,
                                                                size_t dst) {
  DPPR_CHECK_LT(dst, num_machines());
  return endpoints_[dst]->inbox.WaitAll(round);
}

}  // namespace dppr
