#include "dppr/net/transport.h"

#include <cstdio>
#include <string>
#include <utility>

#include "dppr/common/env.h"
#include "dppr/common/macros.h"
#include "dppr/net/inproc_transport.h"
#include "dppr/net/tcp_transport.h"

namespace dppr {

const char* TransportBackendName(TransportBackend backend) {
  switch (backend) {
    case TransportBackend::kInProcess:
      return "inproc";
    case TransportBackend::kTcp:
      return "tcp";
  }
  DPPR_CHECK(false);
  return nullptr;
}

TransportOptions TransportOptions::FromEnv(TransportBackend fallback) {
  TransportOptions options;
  options.backend = fallback;
  std::string transport = GetEnvString("DPPR_TRANSPORT", "");
  if (transport == "tcp") {
    options.backend = TransportBackend::kTcp;
  } else if (transport == "inproc") {
    options.backend = TransportBackend::kInProcess;
  } else if (!transport.empty()) {
    // Same policy as DPPR_STORE: a typo must fail loudly, not silently run
    // the experiment over a different transport than the operator asked for.
    std::fprintf(stderr, "unknown DPPR_TRANSPORT value: %s\n", transport.c_str());
    DPPR_CHECK(transport == "tcp" || transport == "inproc");
  }
  return options;
}

FrameInbox::Slot& FrameInbox::SlotFor(uint64_t round) {
  std::unique_ptr<Slot>& slot = rounds_[round];
  if (slot == nullptr) {
    slot = std::make_unique<Slot>();
    slot->payloads.resize(num_sources_);
    slot->present.assign(num_sources_, 0);
  }
  return *slot;
}

void FrameInbox::Push(uint64_t round, size_t src, std::vector<uint8_t> payload) {
  DPPR_CHECK_LT(src, num_sources_);
  std::lock_guard<std::mutex> lock(mu_);
  // A frame for a round that was already gathered is a replay: no waiter
  // will ever collect it, so absorbing it would leak an orphan slot (and its
  // payload copy) per replayed id.
  DPPR_CHECK((round >= retired_floor_ &&
              retired_above_floor_.find(round) == retired_above_floor_.end()) &&
             "frame for an already-collected round");
  Slot& slot = SlotFor(round);
  // One payload per (round, source): a duplicate means a corrupt or hostile
  // peer, and silently overwriting could swap a round's data mid-gather.
  DPPR_CHECK(!slot.present[src]);
  slot.present[src] = 1;
  slot.payloads[src] = std::move(payload);
  ++slot.arrived;
  // Once the waiter declared the round's size, a surplus frame is a
  // non-participant sending into a routed round — hostile, same as a
  // duplicate (full rounds cap out via the per-source check above).
  if (slot.expected != 0) {
    DPPR_CHECK_LE(slot.arrived, slot.expected);
    // Exactly one waiter per round, parked on this slot's own cv —
    // completing one round never wakes the other in-flight rounds'
    // gatherers.
    if (slot.arrived == slot.expected) slot.arrived_cv.notify_one();
  }
}

std::vector<std::vector<uint8_t>> FrameInbox::WaitAll(uint64_t round) {
  return WaitCount(round, num_sources_);
}

std::vector<std::vector<uint8_t>> FrameInbox::WaitCount(uint64_t round,
                                                        size_t expected) {
  DPPR_CHECK_GE(expected, 1u);
  DPPR_CHECK_LE(expected, num_sources_);
  std::unique_lock<std::mutex> lock(mu_);
  Slot& slot = SlotFor(round);  // heap-pinned: stable across map churn
  // Declare the round's size so Push knows when to wake us (and can reject
  // surplus frames). One waiter per round, so a prior declaration is a bug.
  DPPR_CHECK_EQ(slot.expected, 0u);
  DPPR_CHECK_LE(slot.arrived, expected);
  slot.expected = expected;
  slot.arrived_cv.wait(lock, [&] { return slot.arrived == slot.expected; });
  std::vector<std::vector<uint8_t>> payloads = std::move(slot.payloads);
  rounds_.erase(round);
  // Retire the round. Ids are dense per inbox, so the floor chases the
  // slowest in-flight round and the set only holds the out-of-order window.
  if (round == retired_floor_) {
    ++retired_floor_;
    while (retired_above_floor_.erase(retired_floor_) > 0) ++retired_floor_;
  } else {
    retired_above_floor_.insert(round);
  }
  return payloads;
}

Transport::Transport(size_t num_machines) : num_machines_(num_machines) {
  DPPR_CHECK_GE(num_machines, 1u);
}

std::shared_ptr<Transport> MakeTransport(size_t num_machines,
                                         const TransportOptions& options) {
  switch (options.backend) {
    case TransportBackend::kInProcess:
      return std::make_shared<InProcessTransport>(num_machines);
    case TransportBackend::kTcp:
      return std::make_shared<TcpTransport>(num_machines);
  }
  DPPR_CHECK(false);
  return nullptr;
}

}  // namespace dppr
