#include "dppr/obs/flush.h"

#include <csignal>
#include <string>

#include "dppr/common/env.h"
#include "dppr/obs/metrics.h"
#include "dppr/obs/trace.h"

namespace dppr::obs {
namespace {

void FlushAndReraise(int sig) {
  Tracer::Global().Flush();
  const std::string dump = GetEnvString("DPPR_METRICS_DUMP", "");
  if (!dump.empty()) MetricsRegistry::Global().WriteFile(dump);
  // Die with the conventional "killed by signal" status so shells, CI, and
  // supervisors still see an interrupted run as interrupted.
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

void InstallSignalFlushOnce() {
  static const bool installed = [] {
    std::signal(SIGINT, FlushAndReraise);
    std::signal(SIGTERM, FlushAndReraise);
    return true;
  }();
  (void)installed;
}

}  // namespace dppr::obs
