#ifndef DPPR_OBS_FLUSH_H_
#define DPPR_OBS_FLUSH_H_

namespace dppr::obs {

/// Installs SIGINT/SIGTERM handlers (once per process; later calls no-op)
/// that flush the global trace file and the DPPR_METRICS_DUMP snapshot, then
/// restore the default disposition and re-raise — so an interrupted bench or
/// demo run still leaves usable dumps, and the process still dies with the
/// conventional signal exit status.
///
/// The handler deliberately calls non-async-signal-safe code (malloc, stdio):
/// this is a best-effort developer convenience for interactive interrupts of
/// otherwise-idle processes, not a crash-safety mechanism. A signal landing
/// mid-allocation can deadlock the handler; the default disposition would
/// have lost the dumps anyway. Installed automatically by Tracer::Global()
/// (when DPPR_TRACE is set) and MetricsRegistry::Global() (when
/// DPPR_METRICS_DUMP is set).
void InstallSignalFlushOnce();

}  // namespace dppr::obs

#endif  // DPPR_OBS_FLUSH_H_
