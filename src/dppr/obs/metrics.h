#ifndef DPPR_OBS_METRICS_H_
#define DPPR_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dppr::obs {

/// Monotonic event counter. Increments are relaxed atomics — safe from any
/// thread, cheap enough for per-frame and per-lookup hot paths.
class Counter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depths, resident bytes).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-log-bucket histogram for nonnegative integer samples (latencies in
/// microseconds, sizes in bytes). Values 0..63 land in exact unit buckets;
/// above that each power of two splits into kSubBuckets sub-buckets, so the
/// relative value resolution is bounded by 1/kSubBuckets (3.125%) across the
/// whole uint64 range. Quantile queries are rank-exact: the returned value is
/// the upper bound of the bucket holding the sample of that exact rank, so a
/// quantile is never under-reported and never off by more than one bucket
/// width from the true order statistic (obs_test checks this against a
/// sorted-vector oracle).
///
/// Record is a relaxed atomic add — safe from any thread, no locks on the
/// recording path. Snapshots are weakly consistent under concurrent writes
/// (each bucket read is atomic; the set of buckets is not read atomically),
/// which is the standard monitoring trade-off.
class Histogram {
 public:
  /// Exact unit buckets for values below 64.
  static constexpr size_t kLinearBuckets = 64;
  /// Sub-buckets per power-of-two octave above the linear range.
  static constexpr size_t kSubBuckets = 32;
  /// Octaves cover floor(log2(v)) in [6, 63].
  static constexpr size_t kNumBuckets = kLinearBuckets + 58 * kSubBuckets;

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  /// Bucket of `value`; exposed so tests can assert bucket-level exactness.
  static size_t BucketIndex(uint64_t value) {
    if (value < kLinearBuckets) return static_cast<size_t>(value);
    const int octave = 63 - std::countl_zero(value);  // >= 6
    const uint64_t sub =
        (value - (uint64_t{1} << octave)) >> (octave - 5);  // 2^octave / 32
    return kLinearBuckets +
           static_cast<size_t>(octave - 6) * kSubBuckets +
           static_cast<size_t>(sub);
  }

  /// Smallest value that lands in bucket `index`.
  static uint64_t BucketLowerBound(size_t index);
  /// Largest value that lands in bucket `index` (== lower bound for the
  /// exact linear buckets).
  static uint64_t BucketUpperBound(size_t index);

  /// Point-in-time copy of the bucket counts; supports windowed views
  /// (ServerStats percentiles are quantiles of Since(window_baseline)).
  struct Snapshot {
    std::vector<uint64_t> counts;  // kNumBuckets entries; empty == all-zero
    uint64_t total = 0;
    uint64_t sum = 0;

    /// Value at rank ceil(q * total) (1-based), reported as its bucket's
    /// upper bound; 0 when the snapshot is empty. q outside (0,1] clamps.
    uint64_t Quantile(double q) const;
    /// Largest recorded value, at bucket resolution.
    uint64_t Max() const;
    double Mean() const {
      return total > 0 ? static_cast<double>(sum) / static_cast<double>(total)
                       : 0.0;
    }
    /// Counter-style delta: this snapshot minus an earlier `baseline`.
    Snapshot Since(const Snapshot& baseline) const;
  };

  Snapshot TakeSnapshot() const;
  uint64_t Count() const;
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Quantile over everything recorded since construction.
  uint64_t Quantile(double q) const { return TakeSnapshot().Quantile(q); }

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
};

/// Process-wide metric registry: every counter, gauge, and histogram lives
/// here under a dotted name (`serve.query_latency_us`,
/// `net.tcp.bytes_sent`), optionally with a `{key="value"}` label suffix for
/// per-instance series (each QueryServer registers its own
/// `serve.queries{server="N"}` so windowed stats stay correct when several
/// servers serve at once). Lookups are lock-sharded by name hash and
/// idempotent — the first Get* for a name creates the metric, later calls
/// return the same pointer, so hot paths resolve their handles once and then
/// touch only atomics. Handles stay valid for the process lifetime.
///
/// Asking for an existing name with a different type DPPR_CHECK-fails: one
/// name, one metric.
///
/// Env knob (read once, at the first Global() call):
///   DPPR_METRICS_DUMP=<path>  write a snapshot of the global registry at
///                             process exit — JSON when <path> ends in
///                             ".json", Prometheus text otherwise.
class MetricsRegistry {
 public:
  /// The process-wide registry (library instrumentation records here).
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Prometheus exposition text: dots sanitized to underscores, a `dppr_`
  /// prefix, label suffixes preserved, histograms rendered as summaries with
  /// p50/p95/p99/p999 quantile rows plus _sum/_count.
  std::string RenderText() const;

  /// JSON snapshot: {"counters":{...},"gauges":{...},"histograms":{name:
  /// {"count","sum","mean","p50","p95","p99","p999","max"}}}.
  std::string RenderJson() const;

  /// Renders to `path` (JSON iff the name ends in ".json"); best-effort — a
  /// failed open is reported on stderr, never fatal.
  void WriteFile(const std::string& path) const;

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Shard {
    mutable std::mutex mu;
    /// Deque for reference stability: handles returned by Get* must survive
    /// every later registration for the process lifetime.
    std::deque<std::pair<std::string, Entry>> metrics;
  };

  Entry* FindOrCreate(const std::string& name, Kind kind);
  /// Name-sorted copy of (name, entry pointer) across all shards. Entries
  /// are never destroyed, so the pointers stay valid without the shard locks.
  std::vector<std::pair<std::string, const Entry*>> SortedEntries() const;

  static constexpr size_t kShards = 16;
  std::array<Shard, kShards> shards_;
};

}  // namespace dppr::obs

#endif  // DPPR_OBS_METRICS_H_
