#include "dppr/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>

#include "dppr/common/env.h"
#include "dppr/common/macros.h"
#include "dppr/obs/flush.h"

namespace dppr::obs {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

uint64_t Histogram::BucketLowerBound(size_t index) {
  DPPR_CHECK_LT(index, kNumBuckets);
  if (index < kLinearBuckets) return index;
  const size_t off = index - kLinearBuckets;
  const int octave = static_cast<int>(off / kSubBuckets) + 6;
  const uint64_t sub = off % kSubBuckets;
  return (uint64_t{1} << octave) + (sub << (octave - 5));
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  DPPR_CHECK_LT(index, kNumBuckets);
  if (index < kLinearBuckets) return index;
  const size_t off = index - kLinearBuckets;
  const int octave = static_cast<int>(off / kSubBuckets) + 6;
  const uint64_t width = uint64_t{1} << (octave - 5);
  // The last bucket's range tops out at UINT64_MAX; the unsigned wrap of
  // lower + width - 1 yields exactly that.
  return BucketLowerBound(index) + width - 1;
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snap;
  snap.counts.resize(kNumBuckets);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    snap.counts[i] = c;
    snap.total += c;
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

uint64_t Histogram::Snapshot::Quantile(double q) const {
  if (total == 0 || counts.empty()) return 0;
  q = std::min(std::max(q, 0.0), 1.0);
  // 1-based rank of the order statistic the quantile names; q=0.5 over 10
  // samples is rank 5, q=1.0 the maximum.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  rank = std::max<uint64_t>(rank, 1);
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) return BucketUpperBound(i);
  }
  return BucketUpperBound(counts.size() - 1);
}

uint64_t Histogram::Snapshot::Max() const {
  for (size_t i = counts.size(); i-- > 0;) {
    if (counts[i] > 0) return BucketUpperBound(i);
  }
  return 0;
}

Histogram::Snapshot Histogram::Snapshot::Since(const Snapshot& baseline) const {
  Snapshot delta;
  delta.counts.resize(kNumBuckets);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t base =
        i < baseline.counts.size() ? baseline.counts[i] : 0;
    DPPR_DCHECK(counts[i] >= base);
    delta.counts[i] = counts[i] - base;
    delta.total += delta.counts[i];
  }
  delta.sum = sum - baseline.sum;
  return delta;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    if (!GetEnvString("DPPR_METRICS_DUMP", "").empty()) {
      // The path is re-read at exit so the hook body stays capture-free
      // (atexit takes a plain function pointer).
      std::atexit([] {
        MetricsRegistry::Global().WriteFile(
            GetEnvString("DPPR_METRICS_DUMP", ""));
      });
      // Ctrl-C'd runs keep their dump too.
      InstallSignalFlushOnce();
    }
    return r;
  }();
  return *registry;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(const std::string& name,
                                                      Kind kind) {
  DPPR_CHECK(!name.empty());
  Shard& shard = shards_[std::hash<std::string>{}(name) % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  for (auto& [existing, entry] : shard.metrics) {
    if (existing == name) {
      // One name, one metric: a counter named like an existing histogram is
      // an instrumentation bug, not a new series.
      DPPR_CHECK(entry.kind == kind);
      return &entry;
    }
  }
  Entry entry{kind, nullptr, nullptr, nullptr};
  switch (kind) {
    case Kind::kCounter: entry.counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: entry.gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram: entry.histogram = std::make_unique<Histogram>(); break;
  }
  shard.metrics.emplace_back(name, std::move(entry));
  return &shard.metrics.back().second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  return FindOrCreate(name, Kind::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  return FindOrCreate(name, Kind::kGauge)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return FindOrCreate(name, Kind::kHistogram)->histogram.get();
}

std::vector<std::pair<std::string, const MetricsRegistry::Entry*>>
MetricsRegistry::SortedEntries() const {
  std::vector<std::pair<std::string, const Entry*>> all;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    all.reserve(all.size() + shard.metrics.size());
    for (const auto& [name, entry] : shard.metrics) {
      all.emplace_back(name, &entry);
    }
  }
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return all;
}

namespace {

/// `serve.query_latency_us{server="0"}` -> base `serve.query_latency_us`,
/// labels `server="0"` (no braces).
void SplitLabels(const std::string& name, std::string* base,
                 std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  DPPR_CHECK(name.back() == '}');
  *labels = name.substr(brace + 1, name.size() - brace - 2);
}

/// Prometheus metric name: dppr_ prefix, [a-zA-Z0-9_:] only.
std::string PromName(const std::string& base) {
  std::string out = "dppr_";
  out.reserve(out.size() + base.size());
  for (char c : base) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// {labels} suffix with an optional extra label appended (quantile rows).
std::string PromLabels(const std::string& labels, const std::string& extra) {
  if (labels.empty() && extra.empty()) return "";
  std::string joined = labels;
  if (!extra.empty()) {
    if (!joined.empty()) joined += ",";
    joined += extra;
  }
  return "{" + joined + "}";
}

void AppendJsonString(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

constexpr double kQuantiles[] = {0.5, 0.95, 0.99, 0.999};
constexpr const char* kQuantileLabels[] = {"0.5", "0.95", "0.99", "0.999"};
constexpr const char* kQuantileJsonKeys[] = {"p50", "p95", "p99", "p999"};

}  // namespace

std::string MetricsRegistry::RenderText() const {
  std::string out;
  std::string base, labels, last_typed;
  for (const auto& [name, entry] : SortedEntries()) {
    SplitLabels(name, &base, &labels);
    const std::string prom = PromName(base);
    if (prom != last_typed) {
      // One TYPE line per family; labeled series of one family are adjacent
      // in the name-sorted order.
      out += "# TYPE " + prom;
      switch (entry->kind) {
        case Kind::kCounter: out += " counter\n"; break;
        case Kind::kGauge: out += " gauge\n"; break;
        case Kind::kHistogram: out += " summary\n"; break;
      }
      last_typed = prom;
    }
    char buf[64];
    switch (entry->kind) {
      case Kind::kCounter:
        std::snprintf(buf, sizeof(buf), " %llu\n",
                      static_cast<unsigned long long>(entry->counter->Value()));
        out += prom + PromLabels(labels, "") + buf;
        break;
      case Kind::kGauge:
        std::snprintf(buf, sizeof(buf), " %lld\n",
                      static_cast<long long>(entry->gauge->Value()));
        out += prom + PromLabels(labels, "") + buf;
        break;
      case Kind::kHistogram: {
        const Histogram::Snapshot snap = entry->histogram->TakeSnapshot();
        for (size_t i = 0; i < 4; ++i) {
          std::snprintf(buf, sizeof(buf), " %llu\n",
                        static_cast<unsigned long long>(
                            snap.Quantile(kQuantiles[i])));
          out += prom +
                 PromLabels(labels, std::string("quantile=\"") +
                                        kQuantileLabels[i] + "\"") +
                 buf;
        }
        std::snprintf(buf, sizeof(buf), " %llu\n",
                      static_cast<unsigned long long>(snap.sum));
        out += prom + "_sum" + PromLabels(labels, "") + buf;
        std::snprintf(buf, sizeof(buf), " %llu\n",
                      static_cast<unsigned long long>(snap.total));
        out += prom + "_count" + PromLabels(labels, "") + buf;
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  const auto entries = SortedEntries();
  std::string out = "{\n";
  char buf[64];
  for (int pass = 0; pass < 3; ++pass) {
    const Kind want = pass == 0 ? Kind::kCounter
                     : pass == 1 ? Kind::kGauge
                                 : Kind::kHistogram;
    out += pass == 0   ? "  \"counters\": {"
           : pass == 1 ? "  \"gauges\": {"
                       : "  \"histograms\": {";
    bool first = true;
    for (const auto& [name, entry] : entries) {
      if (entry->kind != want) continue;
      out += first ? "\n    " : ",\n    ";
      first = false;
      AppendJsonString(out, name);
      switch (entry->kind) {
        case Kind::kCounter:
          std::snprintf(buf, sizeof(buf), ": %llu",
                        static_cast<unsigned long long>(entry->counter->Value()));
          out += buf;
          break;
        case Kind::kGauge:
          std::snprintf(buf, sizeof(buf), ": %lld",
                        static_cast<long long>(entry->gauge->Value()));
          out += buf;
          break;
        case Kind::kHistogram: {
          const Histogram::Snapshot snap = entry->histogram->TakeSnapshot();
          std::snprintf(buf, sizeof(buf), ": {\"count\": %llu, \"sum\": %llu",
                        static_cast<unsigned long long>(snap.total),
                        static_cast<unsigned long long>(snap.sum));
          out += buf;
          std::snprintf(buf, sizeof(buf), ", \"mean\": %.3f", snap.Mean());
          out += buf;
          for (size_t i = 0; i < 4; ++i) {
            std::snprintf(buf, sizeof(buf), ", \"%s\": %llu",
                          kQuantileJsonKeys[i],
                          static_cast<unsigned long long>(
                              snap.Quantile(kQuantiles[i])));
            out += buf;
          }
          std::snprintf(buf, sizeof(buf), ", \"max\": %llu}",
                        static_cast<unsigned long long>(snap.Max()));
          out += buf;
          break;
        }
      }
    }
    out += first ? "}" : "\n  }";
    out += pass < 2 ? ",\n" : "\n";
  }
  out += "}\n";
  return out;
}

void MetricsRegistry::WriteFile(const std::string& path) const {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "dppr: cannot write metrics dump to %s\n",
                 path.c_str());
    return;
  }
  const bool json = path.size() >= 5 &&
                    path.compare(path.size() - 5, 5, ".json") == 0;
  const std::string body = json ? RenderJson() : RenderText();
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
}

}  // namespace dppr::obs
