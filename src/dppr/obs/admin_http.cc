#include "dppr/obs/admin_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "dppr/common/env.h"
#include "dppr/common/macros.h"
#include "dppr/obs/metrics.h"

namespace dppr::obs {
namespace {

/// Per-connection read/write deadline. An admin plane must never be wedged
/// by a half-open curl; a stuck peer costs at most this long, then the
/// serving thread moves on.
constexpr int kIoTimeoutSeconds = 2;

/// Upper bound on one request (request line + headers). Admin requests are
/// a few hundred bytes; anything larger is not a client we serve.
constexpr size_t kMaxRequestBytes = 8 * 1024;

void SetIoTimeouts(int fd) {
  timeval tv{};
  tv.tv_sec = kIoTimeoutSeconds;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer gone or timeout: best-effort, drop it
    sent += static_cast<size_t>(n);
  }
}

std::string HttpResponse(int status, const char* reason,
                         const std::string& content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

AdminHttpServer* AdminHttpServer::GlobalFromEnv() {
  static AdminHttpServer* server = []() -> AdminHttpServer* {
    const int64_t port = GetEnvInt("DPPR_ADMIN_PORT", -1);
    if (port < 0) return nullptr;
    DPPR_CHECK_LE(port, 65535);
    // Leaked on purpose: the admin plane serves until the process dies,
    // like the global registry and tracer it fronts.
    auto* s = new AdminHttpServer();
    s->Start(static_cast<uint16_t>(port));
    return s;
  }();
  return server;
}

AdminHttpServer::AdminHttpServer() {
  Handle("/metrics", "text/plain; version=0.0.4",
         [] { return MetricsRegistry::Global().RenderText(); });
  Handle("/healthz", "text/plain", [] { return std::string("ok\n"); });
  Handle("/", "text/plain", [] {
    return std::string(
        "dppr admin plane\n/metrics  Prometheus text\n/healthz  liveness\n"
        "/statusz  placement, replication, serving, slow queries (JSON)\n");
  });
  Handle("/statusz", "application/json", [this] {
    std::vector<std::pair<std::string, Handler>> sections;
    {
      std::lock_guard<std::mutex> lock(mu_);
      sections = status_sections_;
    }
    std::string out = "{";
    for (size_t i = 0; i < sections.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"" + sections[i].first + "\":" + sections[i].second();
    }
    out += "}";
    return out;
  });
}

AdminHttpServer::~AdminHttpServer() { Stop(); }

void AdminHttpServer::Handle(std::string path, std::string content_type,
                             Handler fn) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : handlers_) {
    if (entry.first == path) {
      entry.second = {std::move(content_type), std::move(fn)};
      return;
    }
  }
  handlers_.emplace_back(
      std::move(path),
      std::make_pair(std::move(content_type), std::move(fn)));
}

void AdminHttpServer::HandleStatus(std::string section, Handler fn) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : status_sections_) {
    if (entry.first == section) {
      entry.second = std::move(fn);
      return;
    }
  }
  status_sections_.emplace_back(std::move(section), std::move(fn));
}

void AdminHttpServer::Start(uint16_t port) {
  DPPR_CHECK(!running());
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  DPPR_CHECK_GE(listen_fd_, 0);
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  // The operator asked for an admin plane; running without one (port taken,
  // permissions) must be loud, not silent.
  DPPR_CHECK_EQ(
      bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  DPPR_CHECK_EQ(listen(listen_fd_, 16), 0);

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  DPPR_CHECK_EQ(getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                            &bound_len),
                0);
  port_ = ntohs(bound.sin_port);

  // Self-pipe shutdown, same pattern as TcpTransport's receive loop: Stop
  // writes one byte, the poll wakes, the thread exits.
  DPPR_CHECK_EQ(pipe(stop_fds_), 0);
  thread_ = std::thread([this] { Serve(); });
}

void AdminHttpServer::Stop() {
  if (!running()) return;
  const char byte = 1;
  ssize_t ignored = write(stop_fds_[1], &byte, 1);
  (void)ignored;
  thread_.join();
  close(stop_fds_[0]);
  close(stop_fds_[1]);
  stop_fds_[0] = stop_fds_[1] = -1;
  close(listen_fd_);
  listen_fd_ = -1;
}

void AdminHttpServer::Serve() {
  while (true) {
    pollfd fds[2];
    fds[0] = {stop_fds_[0], POLLIN, 0};
    fds[1] = {listen_fd_, POLLIN, 0};
    int ready = poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[0].revents != 0) return;
    if ((fds[1].revents & POLLIN) == 0) continue;
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // One connection at a time, handled inline: admin traffic is a scrape
    // every few seconds, and serialized handling means handlers never need
    // their own concurrency story beyond thread safety.
    SetIoTimeouts(fd);
    HandleConnection(fd);
    close(fd);
  }
}

std::string AdminHttpServer::Dispatch(const std::string& path,
                                      std::string& content_type) {
  Handler fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& entry : handlers_) {
      if (entry.first == path) {
        content_type = entry.second.first;
        fn = entry.second.second;
        break;
      }
    }
  }
  if (!fn) return "";
  // Invoked outside mu_: a handler may itself register handlers, and slow
  // renders must not block Handle() calls from serving threads.
  return fn();
}

void AdminHttpServer::HandleConnection(int fd) {
  std::string request;
  char buf[1024];
  while (request.find("\r\n\r\n") == std::string::npos) {
    if (request.size() > kMaxRequestBytes) return;
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return;  // timeout, error, or close before a full request
    request.append(buf, static_cast<size_t>(n));
  }

  // Request line: METHOD SP PATH SP VERSION. Query strings are not part of
  // the admin surface; strip them so `curl /metrics?foo` still resolves.
  const size_t line_end = request.find("\r\n");
  const std::string line = request.substr(0, line_end);
  const size_t method_end = line.find(' ');
  if (method_end == std::string::npos) return;
  const std::string method = line.substr(0, method_end);
  const size_t path_end = line.find(' ', method_end + 1);
  if (path_end == std::string::npos) return;
  std::string path = line.substr(method_end + 1, path_end - method_end - 1);
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  if (method != "GET") {
    WriteAll(fd, HttpResponse(405, "Method Not Allowed", "text/plain",
                              "GET only\n"));
    return;
  }
  std::string content_type;
  std::string body = Dispatch(path, content_type);
  if (content_type.empty()) {
    WriteAll(fd, HttpResponse(404, "Not Found", "text/plain",
                              "unknown path: " + path + "\n"));
    return;
  }
  WriteAll(fd, HttpResponse(200, "OK", content_type, body));
}

}  // namespace dppr::obs
