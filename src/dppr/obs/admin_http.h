#ifndef DPPR_OBS_ADMIN_HTTP_H_
#define DPPR_OBS_ADMIN_HTTP_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace dppr::obs {

/// Minimal embedded HTTP admin plane: a loopback-only listener serving the
/// process's live observability surfaces to curl / Prometheus:
///
///   /metrics  Prometheus exposition text (MetricsRegistry::RenderText)
///   /healthz  "ok\n" liveness probe
///   /statusz  one JSON object composed from registered status sections
///   /         plain-text index of the routes above
///
/// Deliberately not a web server: GET only, one short-lived connection at a
/// time, bounded request size, loopback bind. That is the right shape for an
/// admin plane — the heavy lifting (rendering) reuses the observability
/// layer, and the socket handling follows the same poll-loop + self-pipe
/// shutdown pattern as TcpTransport's receive loop. Serving threads are
/// never blocked: handlers read atomics/snapshots.
///
/// Enable process-wide with DPPR_ADMIN_PORT=<port> (GlobalFromEnv), or embed
/// one directly (tests use port 0 for an ephemeral port).
class AdminHttpServer {
 public:
  using Handler = std::function<std::string()>;

  /// The process-wide server: started on first call iff DPPR_ADMIN_PORT is
  /// set (0 picks an ephemeral port, printed by callers that care), else
  /// null. Lives for the process lifetime.
  static AdminHttpServer* GlobalFromEnv();

  AdminHttpServer();
  /// Stops the listener and joins the serving thread.
  ~AdminHttpServer();
  AdminHttpServer(const AdminHttpServer&) = delete;
  AdminHttpServer& operator=(const AdminHttpServer&) = delete;

  /// Registers `fn` to answer GET `path` (exact match) with `content_type`.
  /// Replaces any previous handler for the path. Callable before or after
  /// Start; `fn` runs on the serving thread and must be thread-safe.
  void Handle(std::string path, std::string content_type, Handler fn);

  /// Registers a named section of /statusz; `fn` must return one JSON value
  /// (object, array, or scalar). Sections render in registration order as
  /// {"<section>":<value>,...}.
  void HandleStatus(std::string section, Handler fn);

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the serving thread.
  /// DPPR_CHECK-fails if the bind fails — an operator who asked for an admin
  /// plane must not silently run without one.
  void Start(uint16_t port);
  /// Idempotent; also run by the destructor.
  void Stop();

  bool running() const { return thread_.joinable(); }
  /// The bound port (the chosen one when Start was given 0).
  uint16_t port() const { return port_; }

 private:
  void Serve();
  void HandleConnection(int fd);
  std::string Dispatch(const std::string& path, std::string& content_type);

  mutable std::mutex mu_;
  /// path -> (content type, handler).
  std::vector<std::pair<std::string, std::pair<std::string, Handler>>>
      handlers_;
  /// section name -> JSON-producing handler, in registration order.
  std::vector<std::pair<std::string, Handler>> status_sections_;

  int listen_fd_ = -1;
  int stop_fds_[2] = {-1, -1};
  uint16_t port_ = 0;
  std::thread thread_;
};

}  // namespace dppr::obs

#endif  // DPPR_OBS_ADMIN_HTTP_H_
