#include "dppr/obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <utility>

#include "dppr/common/env.h"

namespace dppr::obs {
namespace {

/// Small dense per-thread id: stable shard assignment and readable trace
/// tids (thread 1, 2, ... in spawn order) instead of opaque pthread handles.
uint32_t CurrentTraceTid() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

Tracer::Tracer(bool enabled, std::string path)
    : enabled_(enabled),
      path_(std::move(path)),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::Global() {
  static Tracer* tracer = [] {
    const std::string path = GetEnvString("DPPR_TRACE", "");
    auto* t = new Tracer(/*enabled=*/!path.empty(), path);
    if (!path.empty()) {
      std::atexit([] { Tracer::Global().Flush(); });
    }
    return t;
  }();
  return *tracer;
}

void Tracer::RecordComplete(const char* name, double ts_us, double dur_us,
                            uint32_t pid,
                            const std::array<Arg, kMaxArgs>& args) {
  if (!enabled()) return;
  const uint32_t tid = CurrentTraceTid();
  Shard& shard = shards_[tid % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.events.size() >= kMaxEventsPerShard) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  shard.events.push_back(Event{name, ts_us, dur_us, pid, tid, args});
}

size_t Tracer::event_count() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.events.size();
  }
  return total;
}

std::string Tracer::RenderJson() const {
  std::vector<Event> events;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    events.insert(events.end(), shard.events.begin(), shard.events.end());
  }
  // Chrome sorts internally, but a ts-ordered file is diffable and makes the
  // round-trip tests deterministic across shard interleavings.
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return b.dur_us < a.dur_us;  // enclosing span first
                   });

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[160];
  bool first = true;

  // Name each lane so the viewer shows "machine N" rows, not bare pids.
  std::set<uint32_t> pids;
  for (const Event& e : events) pids.insert(e.pid);
  for (uint32_t pid : pids) {
    std::snprintf(buf, sizeof(buf),
                  "%s\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                  "\"tid\":0,\"ts\":0,\"args\":{\"name\":\"",
                  first ? "" : ",", pid);
    out += buf;
    if (pid == kCoordinatorLane) {
      out += "coordinator";
    } else {
      std::snprintf(buf, sizeof(buf), "machine %u", pid - 1);
      out += buf;
    }
    out += "\"}}";
    first = false;
  }

  for (const Event& e : events) {
    std::snprintf(buf, sizeof(buf),
                  "%s\n{\"name\":\"%s\",\"cat\":\"dppr\",\"ph\":\"X\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%u,\"tid\":%u",
                  first ? "" : ",", e.name, e.ts_us, e.dur_us, e.pid, e.tid);
    out += buf;
    first = false;
    bool has_args = false;
    for (const Arg& arg : e.args) {
      if (arg.key == nullptr) continue;
      std::snprintf(buf, sizeof(buf), "%s\"%s\":%llu",
                    has_args ? "," : ",\"args\":{", arg.key,
                    static_cast<unsigned long long>(arg.value));
      out += buf;
      has_args = true;
    }
    if (has_args) out += "}";
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

void Tracer::Flush() const {
  if (path_.empty()) return;
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "dppr: cannot write trace to %s\n", path_.c_str());
    return;
  }
  const std::string body = RenderJson();
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
}

}  // namespace dppr::obs
