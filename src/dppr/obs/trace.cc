#include "dppr/obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <utility>

#include "dppr/common/env.h"
#include "dppr/obs/flush.h"
#include "dppr/obs/metrics.h"

namespace dppr::obs {
namespace {

/// Small dense per-thread id: stable shard assignment and readable trace
/// tids (thread 1, 2, ... in spawn order) instead of opaque pthread handles.
uint32_t CurrentTraceTid() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

/// The calling thread's current query context; {0,0} outside any scope.
thread_local TraceContext g_trace_context;

}  // namespace

TraceContext CurrentTraceContext() { return g_trace_context; }

uint64_t NewTraceId() {
  // splitmix64 over a process counter: unique, nonzero, and visually
  // distinct from small sequential request ids in dumps. No wall clock or
  // global RNG involved, so traces stay deterministic to correlate.
  static std::atomic<uint64_t> next{1};
  uint64_t x = next.fetch_add(1, std::memory_order_relaxed);
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x == 0 ? 1 : x;
}

TraceContextScope::TraceContextScope(TraceContext ctx) : prev_(g_trace_context) {
  g_trace_context = ctx;
}

TraceContextScope::~TraceContextScope() { g_trace_context = prev_; }

Tracer::Tracer(bool enabled, std::string path)
    : enabled_(enabled),
      path_(std::move(path)),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::Global() {
  static Tracer* tracer = [] {
    const std::string path = GetEnvString("DPPR_TRACE", "");
    auto* t = new Tracer(/*enabled=*/!path.empty(), path);
    if (!path.empty()) {
      std::atexit([] { Tracer::Global().Flush(); });
      // An interrupted run (Ctrl-C on a demo, a killed bench) still gets a
      // usable trace file.
      InstallSignalFlushOnce();
    }
    return t;
  }();
  return *tracer;
}

void Tracer::RecordComplete(const char* name, double ts_us, double dur_us,
                            uint32_t pid,
                            const std::array<Arg, kMaxArgs>& args) {
  RecordComplete(name, ts_us, dur_us, pid, args, CurrentTraceContext());
}

void Tracer::RecordComplete(const char* name, double ts_us, double dur_us,
                            uint32_t pid, const std::array<Arg, kMaxArgs>& args,
                            TraceContext ctx) {
  if (!enabled()) return;
  const uint32_t tid = CurrentTraceTid();
  Shard& shard = shards_[tid % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.events.size() >= kMaxEventsPerShard) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    // Surfaced in /metrics too: silent truncation at the end of a long soak
    // otherwise only shows in the trace file footer nobody reads.
    static Counter* dropped_counter =
        MetricsRegistry::Global().GetCounter("trace.dropped");
    dropped_counter->Increment();
    return;
  }
  shard.events.push_back(Event{name, ts_us, dur_us, pid, tid, ctx.trace_id,
                               args});
}

size_t Tracer::event_count() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.events.size();
  }
  return total;
}

std::string Tracer::RenderJson() const {
  std::vector<Event> events;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    events.insert(events.end(), shard.events.begin(), shard.events.end());
  }
  // Chrome sorts internally, but a ts-ordered file is diffable and makes the
  // round-trip tests deterministic across shard interleavings.
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return b.dur_us < a.dur_us;  // enclosing span first
                   });

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[160];
  bool first = true;

  // Name each lane so the viewer shows "machine N" rows, not bare pids.
  std::set<uint32_t> pids;
  for (const Event& e : events) pids.insert(e.pid);
  for (uint32_t pid : pids) {
    std::snprintf(buf, sizeof(buf),
                  "%s\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                  "\"tid\":0,\"ts\":0,\"args\":{\"name\":\"",
                  first ? "" : ",", pid);
    out += buf;
    if (pid == kCoordinatorLane) {
      out += "coordinator";
    } else {
      std::snprintf(buf, sizeof(buf), "machine %u", pid - 1);
      out += buf;
    }
    out += "\"}}";
    first = false;
  }

  for (const Event& e : events) {
    std::snprintf(buf, sizeof(buf),
                  "%s\n{\"name\":\"%s\",\"cat\":\"dppr\",\"ph\":\"X\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%u,\"tid\":%u",
                  first ? "" : ",", e.name, e.ts_us, e.dur_us, e.pid, e.tid);
    out += buf;
    first = false;
    bool has_args = false;
    if (e.trace_id != 0) {
      // The query context rides as a regular arg so any trace consumer (the
      // viewer's search box, the in-test parser) can join spans by trace id.
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"trace\":%llu",
                    static_cast<unsigned long long>(e.trace_id));
      out += buf;
      has_args = true;
    }
    for (const Arg& arg : e.args) {
      if (arg.key == nullptr) continue;
      std::snprintf(buf, sizeof(buf), "%s\"%s\":%llu",
                    has_args ? "," : ",\"args\":{", arg.key,
                    static_cast<unsigned long long>(arg.value));
      out += buf;
      has_args = true;
    }
    if (has_args) out += "}";
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

void Tracer::Flush() const {
  if (path_.empty()) return;
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "dppr: cannot write trace to %s\n", path_.c_str());
    return;
  }
  const std::string body = RenderJson();
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
}

}  // namespace dppr::obs
