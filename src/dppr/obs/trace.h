#ifndef DPPR_OBS_TRACE_H_
#define DPPR_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace dppr::obs {

/// Timeline lane ids for trace events. Chrome's trace viewer groups events
/// by pid, so each simulated machine gets its own lane and a whole offline
/// precompute or serving run renders as a per-machine timeline; lane 0 is
/// the coordinator / serving front-end.
inline constexpr uint32_t kCoordinatorLane = 0;
inline uint32_t MachineLane(size_t machine) {
  return static_cast<uint32_t>(machine) + 1;
}

/// Query-scoped trace identity, propagated thread-locally (and stamped into
/// every frame header on the wire). The serving front-end mints one per
/// request; SimCluster re-establishes the caller's context inside each
/// machine task, so cluster/store/net spans on every contributing machine
/// carry the originating query's trace id. trace_id == 0 means "no context"
/// (offline runs, untraced work).
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  explicit operator bool() const { return trace_id != 0; }
};

/// The calling thread's current context ({0,0} when none is in scope).
TraceContext CurrentTraceContext();

/// Process-unique nonzero id (mixed so ids don't collide visually with
/// request counters). Used for both trace and span ids.
uint64_t NewTraceId();

/// RAII: installs `ctx` as the calling thread's context, restoring the
/// previous one on destruction. Cheap enough for per-machine-task use.
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext ctx);
  ~TraceContextScope();
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext prev_;
};

/// Collects Chrome trace-event / Perfetto-compatible complete ("X") events
/// and renders them as trace JSON. The global tracer is enabled iff
/// DPPR_TRACE=<path> is set when it is first touched; the trace is written
/// to <path> at process exit (and on any explicit Flush). Open the file in
/// https://ui.perfetto.dev or chrome://tracing.
///
/// Recording is lock-sharded by thread (one mutex + vector per shard, shard
/// picked by a per-thread id), so concurrent spans from the serving layer
/// never contend on one lock; the disabled path is a single relaxed atomic
/// load per span. Event names and arg keys must be string literals (stored
/// as pointers, never copied). Memory is bounded: past kMaxEvents the
/// tracer drops new events and counts the drops.
class Tracer {
 public:
  /// The process-wide tracer, configured from DPPR_TRACE on first use.
  static Tracer& Global();

  /// Standalone tracer (tests). Disabled unless `enabled`; Flush writes to
  /// `path` when non-empty.
  explicit Tracer(bool enabled = false, std::string path = "");

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// Tests only; flipping while spans are in flight is safe (spans capture
  /// the enabled state at construction) but mixes traced and untraced work.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  struct Arg {
    const char* key = nullptr;  // nullptr == unused slot
    uint64_t value = 0;
  };
  static constexpr size_t kMaxArgs = 3;

  /// Microseconds since this tracer's epoch (construction time).
  double NowMicros() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Records one complete event on the calling thread's lane, tagged with
  /// the calling thread's CurrentTraceContext(). `name` must be a string
  /// literal. Also the escape hatch for spans whose start time is only known
  /// after the fact (admission waits measured at batch pop).
  void RecordComplete(const char* name, double ts_us, double dur_us,
                      uint32_t pid, const std::array<Arg, kMaxArgs>& args);

  /// Same, with an explicit context (for events recorded on behalf of
  /// another request, e.g. per-request waits logged by the batch leader).
  void RecordComplete(const char* name, double ts_us, double dur_us,
                      uint32_t pid, const std::array<Arg, kMaxArgs>& args,
                      TraceContext ctx);

  size_t event_count() const;
  uint64_t dropped_events() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// {"displayTimeUnit":"ms","traceEvents":[...]} with process_name
  /// metadata naming each machine lane. Safe to call while recording
  /// continues (weakly consistent, like any live trace dump).
  std::string RenderJson() const;

  /// RenderJson to the configured path; no-op when the path is empty.
  void Flush() const;

 private:
  struct Event {
    const char* name;
    double ts_us;
    double dur_us;
    uint32_t pid;
    uint32_t tid;
    /// Originating query's trace id (0 = untraced work). Rendered as a
    /// "trace" arg so the viewer and the in-test parser can join spans to
    /// QueryProfiles; kept out of args so spans keep all kMaxArgs slots.
    uint64_t trace_id;
    std::array<Arg, kMaxArgs> args;
  };
  struct Shard {
    mutable std::mutex mu;
    std::vector<Event> events;
  };

  static constexpr size_t kShards = 16;
  /// ~4M events across shards (~80 bytes/event -> ~330 MB worst case); long
  /// soak runs truncate instead of eating the machine (drops are counted
  /// here and in the `trace.dropped` registry counter).
  static constexpr size_t kMaxEventsPerShard = (4u << 20) / kShards;

  std::atomic<bool> enabled_;
  std::string path_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<uint64_t> dropped_{0};
  std::array<Shard, kShards> shards_;
};

/// RAII span: construction stamps the start time, destruction records one
/// complete event covering the scope. When the tracer is disabled the
/// constructor is one atomic load and everything else is a no-op, so spans
/// are safe to leave on hot paths.
///
///   TraceSpan span(obs::MachineLane(m), "cluster.machine");
///   span.Arg("round", round_id);
class TraceSpan {
 public:
  /// Span on the global tracer.
  explicit TraceSpan(uint32_t pid, const char* name)
      : TraceSpan(Tracer::Global(), pid, name) {}

  TraceSpan(Tracer& tracer, uint32_t pid, const char* name) {
    if (!tracer.enabled()) return;
    tracer_ = &tracer;
    name_ = name;
    pid_ = pid;
    ctx_ = CurrentTraceContext();
    start_us_ = tracer.NowMicros();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches `key`=`value` (up to Tracer::kMaxArgs; extras are dropped).
  /// `key` must be a string literal.
  void Arg(const char* key, uint64_t value) {
    if (tracer_ == nullptr || num_args_ >= Tracer::kMaxArgs) return;
    args_[num_args_++] = {key, value};
  }

  ~TraceSpan() {
    if (tracer_ == nullptr) return;
    const double end_us = tracer_->NowMicros();
    tracer_->RecordComplete(name_, start_us_, end_us - start_us_, pid_, args_,
                            ctx_);
  }

 private:
  Tracer* tracer_ = nullptr;
  const char* name_ = nullptr;
  uint32_t pid_ = 0;
  TraceContext ctx_;
  double start_us_ = 0.0;
  std::array<Tracer::Arg, Tracer::kMaxArgs> args_{};
  size_t num_args_ = 0;
};

}  // namespace dppr::obs

#endif  // DPPR_OBS_TRACE_H_
