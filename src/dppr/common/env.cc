#include "dppr/common/env.h"

#include <cstdlib>

namespace dppr {

double GetEnvDouble(const std::string& name, double fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  double v = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return v;
}

int64_t GetEnvInt(const std::string& name, int64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  long long v = std::strtoll(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<int64_t>(v);
}

std::string GetEnvString(const std::string& name, const std::string& fallback) {
  const char* raw = std::getenv(name.c_str());
  return raw == nullptr ? fallback : std::string(raw);
}

}  // namespace dppr
