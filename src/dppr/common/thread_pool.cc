#include "dppr/common/thread_pool.h"

#include <atomic>

#include "dppr/common/macros.h"

namespace dppr {

ThreadPool::ThreadPool(size_t num_threads) {
  DPPR_CHECK_GE(num_threads, 1u);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Chunked dynamic scheduling: workers grab the next index atomically. Chunk
  // size 1 is fine because per-task cost (a push/iteration over a subgraph)
  // dwarfs the atomic increment.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  size_t workers = std::min(n, threads_.size());
  for (size_t w = 0; w < workers; ++w) {
    Submit([next, n, &fn] {
      while (true) {
        size_t i = next->fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        fn(i);
      }
    });
  }
  Wait();
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool* pool = new ThreadPool(
      std::max<size_t>(1, std::thread::hardware_concurrency()));
  return *pool;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace dppr
