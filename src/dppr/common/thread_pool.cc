#include "dppr/common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "dppr/common/macros.h"

namespace dppr {

ThreadPool::ThreadPool(size_t num_threads) {
  DPPR_CHECK_GE(num_threads, 1u);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  // Workers drain the queue before exiting, so every group's outstanding
  // count reaches zero and pool_group_'s destructor returns immediately.
  for (auto& t : threads_) t.join();
}

void ThreadPool::TaskGroup::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(pool_.mu_);
    pool_.tasks_.push_back(Item{this, std::move(task)});
    ++outstanding_;
  }
  pool_.task_cv_.notify_one();
}

void ThreadPool::TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(pool_.mu_);
  while (true) {
    // Run this group's queued tasks inline: the wait then cannot depend on a
    // worker ever becoming free, only on already-running tasks finishing.
    auto it = std::find_if(pool_.tasks_.begin(), pool_.tasks_.end(),
                           [this](const Item& item) { return item.group == this; });
    if (it != pool_.tasks_.end()) {
      std::function<void()> fn = std::move(it->fn);
      pool_.tasks_.erase(it);
      lock.unlock();
      fn();
      lock.lock();
      if (--outstanding_ == 0) done_cv_.notify_all();
      continue;
    }
    if (outstanding_ == 0) return;
    done_cv_.wait(lock);
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  pool_group_.Submit(std::move(task));
}

void ThreadPool::Wait() { pool_group_.Wait(); }

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Chunked dynamic scheduling: threads grab the next index atomically. Chunk
  // size 1 is fine because per-task cost (a push/iteration over a subgraph)
  // dwarfs the atomic increment.
  std::atomic<size_t> next{0};
  auto body = [&next, n, &fn] {
    while (true) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      fn(i);
    }
  };
  // The caller consumes at least one index itself, so n == 1 spawns nothing
  // and a fully loaded pool still makes progress through the caller.
  TaskGroup group(*this);
  size_t helpers = std::min(n - 1, threads_.size());
  for (size_t w = 0; w < helpers; ++w) group.Submit(body);
  body();
  group.Wait();
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool* pool = new ThreadPool(
      std::max<size_t>(1, std::thread::hardware_concurrency()));
  return *pool;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      item = std::move(tasks_.front());
      tasks_.pop_front();
    }
    item.fn();
    {
      std::unique_lock<std::mutex> lock(mu_);
      // The group outlives this access: Wait can only observe zero (and the
      // caller destroy the group) after the decrement below, under this lock.
      if (--item.group->outstanding_ == 0) item.group->done_cv_.notify_all();
    }
  }
}

}  // namespace dppr
