#ifndef DPPR_COMMON_ENV_H_
#define DPPR_COMMON_ENV_H_

#include <string>

namespace dppr {

/// Reads a double-valued environment variable, returning `fallback` when the
/// variable is unset or unparsable. Benchmarks use DPPR_SCALE to grow/shrink
/// the synthetic datasets.
double GetEnvDouble(const std::string& name, double fallback);

/// Reads an integer environment variable with fallback.
int64_t GetEnvInt(const std::string& name, int64_t fallback);

/// Reads a string environment variable, returning `fallback` when unset.
/// The storage layer uses DPPR_STORE / DPPR_SPILL_DIR.
std::string GetEnvString(const std::string& name, const std::string& fallback);

}  // namespace dppr

#endif  // DPPR_COMMON_ENV_H_
