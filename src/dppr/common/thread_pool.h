#ifndef DPPR_COMMON_THREAD_POOL_H_
#define DPPR_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dppr {

/// Fixed-size worker pool. Precomputation distributes per-node / per-hub tasks
/// over it; the cluster simulator runs simulated machines on it; the serving
/// layer runs many cluster rounds on it at once.
///
/// Completion is tracked per TaskGroup, not per pool: every ParallelFor (and
/// every explicit TaskGroup) waits only on its own tasks. An earlier design
/// kept one global in-flight counter, which made two concurrent ParallelFor
/// calls wait on each other's tasks and made a ParallelFor nested inside a
/// pool task deadlock (the worker blocked on a counter its own pending tasks
/// kept nonzero). Task groups remove both failure modes: concurrent and
/// nested ParallelFor are legal from any thread.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// A set of tasks whose completion can be awaited independently of any
  /// other tasks on the pool. Must not outlive the pool. Any thread may
  /// Submit or Wait; the group must stay alive until every Wait returned
  /// (the destructor waits for stragglers).
  class TaskGroup {
   public:
    explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
    ~TaskGroup() { Wait(); }

    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    /// Enqueues a task for asynchronous execution as part of this group.
    void Submit(std::function<void()> task);

    /// Blocks until every task submitted to THIS group has finished. While
    /// blocked, runs this group's still-queued tasks inline — so Wait makes
    /// progress even when every pool worker is itself blocked in a nested
    /// Wait, which is what makes nesting deadlock-free.
    void Wait();

   private:
    friend class ThreadPool;
    ThreadPool& pool_;
    size_t outstanding_ = 0;  // queued + running, guarded by pool_.mu_
    std::condition_variable done_cv_;
  };

  /// Enqueues a task on the pool's own implicit group (see Wait()).
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted via ThreadPool::Submit has finished.
  /// Tasks spawned by ParallelFor or explicit TaskGroups are NOT covered —
  /// those wait on their own groups.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

  /// Runs fn(i) for i in [0, n) and returns when all calls completed. The
  /// calling thread participates, so this is legal from pool workers (nested
  /// parallelism) and from many client threads at once; `fn` must be safe to
  /// call concurrently from multiple threads.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Default pool sized to the hardware concurrency (singleton).
  static ThreadPool& Default();

 private:
  struct Item {
    TaskGroup* group;
    std::function<void()> fn;
  };

  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<Item> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;
  bool stop_ = false;
  // Declared last: destroyed first, while mu_ is still alive.
  TaskGroup pool_group_{*this};
};

}  // namespace dppr

#endif  // DPPR_COMMON_THREAD_POOL_H_
