#ifndef DPPR_COMMON_THREAD_POOL_H_
#define DPPR_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dppr {

/// Fixed-size worker pool. Precomputation distributes per-node / per-hub tasks
/// over it; the cluster simulator runs simulated machines on it.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Default pool sized to the hardware concurrency (singleton).
  static ThreadPool& Default();

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace dppr

#endif  // DPPR_COMMON_THREAD_POOL_H_
