#ifndef DPPR_COMMON_RNG_H_
#define DPPR_COMMON_RNG_H_

#include <cstdint>

#include "dppr/common/macros.h"

namespace dppr {

/// Deterministic 64-bit PRNG (splitmix64). Every stochastic component in the
/// library (generators, partition seeds, query sampling) takes an explicit
/// seed so all tests and benchmarks are reproducible across runs and machines.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be positive.
  uint64_t Uniform(uint64_t bound) {
    DPPR_DCHECK(bound > 0);
    // Lemire's multiply-shift rejection-free mapping is fine here: bias is
    // below 2^-32 for the bounds used in this library.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Bernoulli draw with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Derives an independent child stream (for per-task determinism under
  /// parallel execution).
  Rng Fork(uint64_t stream) {
    return Rng(state_ ^ (0xA0761D6478BD642FULL * (stream + 1)));
  }

 private:
  uint64_t state_;
};

}  // namespace dppr

#endif  // DPPR_COMMON_RNG_H_
