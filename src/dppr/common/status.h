#ifndef DPPR_COMMON_STATUS_H_
#define DPPR_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "dppr/common/macros.h"

namespace dppr {

/// Error categories for fallible operations (I/O, parsing, configuration).
/// The library does not use exceptions; fallible public APIs return Status or
/// StatusOr<T>, and programming errors abort via DPPR_CHECK.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
};

/// Lightweight status object carrying a code and a human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value or an error Status. Minimal StatusOr used by loaders
/// and parsers.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {                  // NOLINT
    DPPR_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DPPR_CHECK(ok());
    return value_;
  }
  T& value() & {
    DPPR_CHECK(ok());
    return value_;
  }
  T&& value() && {
    DPPR_CHECK(ok());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

#define DPPR_RETURN_IF_ERROR(expr)          \
  do {                                      \
    ::dppr::Status _dppr_status = (expr);   \
    if (!_dppr_status.ok()) return _dppr_status; \
  } while (false)

}  // namespace dppr

#endif  // DPPR_COMMON_STATUS_H_
