#ifndef DPPR_COMMON_TIMER_H_
#define DPPR_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace dppr {

/// Monotonic wall-clock timer with millisecond/second helpers.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Restart(), in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time across multiple start/stop intervals; used to
/// attribute busy time to simulated machines that share physical cores.
class StopWatch {
 public:
  void Start() { timer_.Restart(); }
  void Stop() { total_seconds_ += timer_.ElapsedSeconds(); }
  void Add(double seconds) { total_seconds_ += seconds; }
  void Reset() { total_seconds_ = 0.0; }
  double TotalSeconds() const { return total_seconds_; }
  double TotalMillis() const { return total_seconds_ * 1e3; }

 private:
  WallTimer timer_;
  double total_seconds_ = 0.0;
};

}  // namespace dppr

#endif  // DPPR_COMMON_TIMER_H_
