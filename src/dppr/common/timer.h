#ifndef DPPR_COMMON_TIMER_H_
#define DPPR_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

#if defined(__unix__) || defined(__APPLE__)
#include <time.h>
#endif

namespace dppr {

/// Monotonic wall-clock timer with millisecond/second helpers.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Restart(), in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Per-thread CPU-time timer (CLOCK_THREAD_CPUTIME_ID). Unlike WallTimer it
/// does not charge time the thread spent descheduled, so simulated machines
/// contending for physical cores — e.g. many concurrent query rounds — don't
/// inflate each other's measured compute. Falls back to wall time on
/// platforms without a per-thread CPU clock (see Available()).
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() { Restart(); }

  void Restart() { start_ = Now(); }

  /// CPU seconds this thread consumed since construction or last Restart().
  double ElapsedSeconds() const { return Now() - start_; }

  /// True when the platform exposes a per-thread CPU clock.
  static bool Available() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
    return true;
#else
    return false;
#endif
  }

 private:
  static double Now() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts;
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
#else
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
#endif
  }

  double start_;
};

/// Accumulates elapsed time across multiple start/stop intervals; used to
/// attribute busy time to simulated machines that share physical cores.
class StopWatch {
 public:
  void Start() { timer_.Restart(); }
  void Stop() { total_seconds_ += timer_.ElapsedSeconds(); }
  void Add(double seconds) { total_seconds_ += seconds; }
  void Reset() { total_seconds_ = 0.0; }
  double TotalSeconds() const { return total_seconds_; }
  double TotalMillis() const { return total_seconds_ * 1e3; }

 private:
  WallTimer timer_;
  double total_seconds_ = 0.0;
};

}  // namespace dppr

#endif  // DPPR_COMMON_TIMER_H_
