#ifndef DPPR_COMMON_MACROS_H_
#define DPPR_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Invariant-checking macros. DPPR_CHECK is always on (cheap, used on cold
/// paths and at API boundaries); DPPR_DCHECK compiles out in release builds
/// and is used on hot paths.

namespace dppr::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "DPPR_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace dppr::internal

#define DPPR_CHECK(expr)                                        \
  do {                                                          \
    if (!(expr)) {                                              \
      ::dppr::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                           \
  } while (false)

#define DPPR_CHECK_OP(a, op, b) DPPR_CHECK((a)op(b))
#define DPPR_CHECK_EQ(a, b) DPPR_CHECK_OP(a, ==, b)
#define DPPR_CHECK_NE(a, b) DPPR_CHECK_OP(a, !=, b)
#define DPPR_CHECK_LT(a, b) DPPR_CHECK_OP(a, <, b)
#define DPPR_CHECK_LE(a, b) DPPR_CHECK_OP(a, <=, b)
#define DPPR_CHECK_GT(a, b) DPPR_CHECK_OP(a, >, b)
#define DPPR_CHECK_GE(a, b) DPPR_CHECK_OP(a, >=, b)

#ifdef NDEBUG
#define DPPR_DCHECK(expr) \
  do {                    \
  } while (false)
#else
#define DPPR_DCHECK(expr) DPPR_CHECK(expr)
#endif

#endif  // DPPR_COMMON_MACROS_H_
