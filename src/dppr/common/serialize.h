#ifndef DPPR_COMMON_SERIALIZE_H_
#define DPPR_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "dppr/common/macros.h"

namespace dppr {

/// Append-only little-endian byte sink. Used to serialize PPV fragments and
/// precomputed vectors; the serialized size is what the cluster simulator
/// charges as network traffic / storage, so all wire formats go through here.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }
  void PutFloat(float v) { PutRaw(&v, sizeof(v)); }

  /// LEB128 variable-length unsigned integer (compact node ids / counts).
  void PutVarU64(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<uint8_t>(v));
  }

  void PutString(const std::string& s) {
    PutVarU64(s.size());
    PutRaw(s.data(), s.size());
  }

  /// Length-prefixed opaque byte blob. Framing nested payloads this way lets
  /// a reader skip or bounds-check a sub-message (e.g. one vector inside a
  /// precomputation record) without understanding its contents.
  void PutBlob(const void* data, size_t n) {
    PutVarU64(n);
    PutRaw(data, n);
  }
  void PutBlob(std::span<const uint8_t> blob) { PutBlob(blob.data(), blob.size()); }

  void PutRaw(const void* data, size_t n) {
    if (n == 0) return;  // empty blobs may legally pass data == nullptr
    const uint8_t* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Release() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Sequential reader over a byte buffer written by ByteWriter.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  uint8_t GetU8() {
    DPPR_CHECK_LT(pos_, size_);
    return data_[pos_++];
  }
  uint32_t GetU32() { return GetRaw<uint32_t>(); }
  uint64_t GetU64() { return GetRaw<uint64_t>(); }
  double GetDouble() { return GetRaw<double>(); }
  float GetFloat() { return GetRaw<float>(); }

  uint64_t GetVarU64() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      DPPR_CHECK_LT(pos_, size_);
      uint8_t b = data_[pos_++];
      v |= static_cast<uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) break;
      shift += 7;
      DPPR_CHECK_LT(shift, 64);
    }
    return v;
  }

  std::string GetString() {
    uint64_t n = GetVarU64();
    // Compare against the remaining bytes: `pos_ + n` wraps for hostile
    // lengths near SIZE_MAX and would pass the check into an OOB read.
    DPPR_CHECK_LE(n, static_cast<uint64_t>(size_ - pos_));
    std::string s(reinterpret_cast<const char*>(data_ + pos_), static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return s;
  }

  /// View of a blob written by PutBlob; no copy, valid while the underlying
  /// buffer lives. Same wrap-safe bounds check as GetString.
  std::span<const uint8_t> GetBlob() {
    uint64_t n = GetVarU64();
    DPPR_CHECK_LE(n, static_cast<uint64_t>(size_ - pos_));
    std::span<const uint8_t> blob(data_ + pos_, static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return blob;
  }

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

  /// Current read offset from the start of the buffer. Together with Slice
  /// this lets a consumer that just parsed (and thereby validated) a message
  /// recover its exact wire bytes — e.g. the disk store streams each ingested
  /// record's raw bytes to its spill file instead of re-serializing.
  size_t position() const { return pos_; }

  /// View of the bytes in [begin, end); bounds-checked, no copy, valid while
  /// the underlying buffer lives.
  std::span<const uint8_t> Slice(size_t begin, size_t end) const {
    DPPR_CHECK_LE(begin, end);
    DPPR_CHECK_LE(end, size_);
    return {data_ + begin, end - begin};
  }

 private:
  template <typename T>
  T GetRaw() {
    DPPR_CHECK_LE(sizeof(T), size_ - pos_);
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace dppr

#endif  // DPPR_COMMON_SERIALIZE_H_
