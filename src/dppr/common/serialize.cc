#include "dppr/common/serialize.h"

// Header-only today; this TU anchors the target and keeps the door open for
// out-of-line additions without touching every dependent CMake file.
