// Ablation: HGPA_ad storage-prune threshold. Sweeping the offline-score
// cut-off trades index size and query time against accuracy (the paper's
// HGPA_ad fixes 1e-4; this shows the whole curve).

#include <map>

#include "bench_util.h"
#include "dppr/ppr/metrics.h"

namespace {

using namespace dppr;
using namespace dppr::bench;

std::shared_ptr<const HgpaPrecomputation> CachedExact() {
  static std::shared_ptr<const HgpaPrecomputation> pre;
  static Graph graph;
  if (!pre) {
    graph = LoadDataset("web", 0.35);
    HgpaOptions options;
    options.ppr.tolerance = 1e-5;  // finer than the prune thresholds swept
    pre = HgpaPrecomputation::RunHgpa(graph, options);
  }
  return pre;
}

void RegisterRows() {
  for (double prune : {0.0, 1e-5, 1e-4, 1e-3}) {
    AddRow("ablation_prune/web/threshold:" + std::to_string(prune),
           [=]() -> Counters {
             auto exact = CachedExact();
             auto pre = prune > 0 ? exact->PrunedCopy(prune) : exact;
             HgpaQueryEngine engine(HgpaIndex::Distribute(pre, 6));
             HgpaQueryEngine exact_engine(HgpaIndex::Distribute(exact, 6));
             std::vector<NodeId> queries = SampleQueries(pre->graph(), 10);
             QuerySummary summary = MeasureQueries(engine, queries);
             double avg_l1 = 0.0;
             for (NodeId q : queries) {
               avg_l1 += AverageL1(engine.QueryDense(q), exact_engine.QueryDense(q));
             }
             avg_l1 /= static_cast<double>(queries.size());
             return {
                 {"space_mb", static_cast<double>(pre->TotalBytes()) / (1 << 20)},
                 {"runtime_ms", summary.compute_ms},
                 {"comm_kb", summary.comm_kb},
                 {"avg_l1_vs_exact", avg_l1},
             };
           });
  }
}

}  // namespace

DPPR_BENCH_MAIN(RegisterRows)
