// Figure 23: centralized (single machine) HGPA vs the power iteration
// method on Email, Web, Youtube. Paper shape: HGPA is at least 3.5x faster,
// with the largest speedups on Email and Web.

#include "bench_util.h"
#include "dppr/common/timer.h"
#include "dppr/ppr/power_iteration.h"

namespace {

using namespace dppr;
using namespace dppr::bench;

void Rows(const std::string& dataset, double scale) {
  AddRow("fig23/" + dataset + "/PowerIteration", [=]() -> Counters {
    Graph g = LoadDataset(dataset, scale);
    std::vector<NodeId> queries = SampleQueries(g, 20);
    PowerIterationOptions pi;
    pi.dangling = PowerDangling::kAbsorb;
    WallTimer timer;
    size_t iterations = 0;
    for (NodeId q : queries) iterations += PowerIterationPpv(g, q, pi).iterations;
    double runtime_ms = timer.ElapsedMillis() / static_cast<double>(queries.size());
    return {{"runtime_ms", runtime_ms},
            {"iterations", static_cast<double>(iterations) /
                               static_cast<double>(queries.size())}};
  });
  AddRow("fig23/" + dataset + "/HGPA", [=]() -> Counters {
    Graph g = LoadDataset(dataset, scale);
    auto pre = HgpaPrecomputation::RunHgpa(g, HgpaOptions{});
    HgpaIndex index = HgpaIndex::Distribute(pre, 1);  // centralized
    HgpaQueryEngine engine(index);
    std::vector<NodeId> queries = SampleQueries(g, 20);
    QuerySummary summary = MeasureQueries(engine, queries);
    return {{"runtime_ms", summary.compute_ms}};
  });
}

void RegisterRows() {
  Rows("email", 1.0);
  Rows("web", 0.5);
  Rows("youtube", 0.5);
}

}  // namespace

DPPR_BENCH_MAIN(RegisterRows)
