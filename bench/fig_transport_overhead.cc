// The real-socket tax, measured from day one: the same offline
// precomputation and the same concurrent serving workload, once over the
// in-process transport and once over real localhost TCP. Payloads, answers,
// and byte ledgers are bit-identical across rows (net_equivalence_test);
// what differs is the wall clock of actually moving the bytes — framing,
// checksumming, kernel crossings, and the coordinator's receive loop.

#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "dppr/common/timer.h"
#include "dppr/core/dist_precompute.h"
#include "dppr/serve/query_server.h"

namespace {

using namespace dppr;
using namespace dppr::bench;

constexpr double kWebScale = 0.3;
constexpr size_t kMachines = 6;
constexpr size_t kClients = 4;
constexpr size_t kQueriesPerClient = 40;

TransportOptions Backend(TransportBackend backend) {
  TransportOptions options;
  options.backend = backend;
  return options;
}

const Graph& SharedWebGraph() {
  static const Graph* graph = new Graph(LoadDataset("web", kWebScale));
  return *graph;
}

std::shared_ptr<const HgpaPrecomputation> SharedPrecomputation() {
  static auto holder = [] {
    return HgpaPrecomputation::RunHgpa(SharedWebGraph(), HgpaOptions{});
  }();
  return holder;
}

// One full offline run; the measured wall time includes every superstep's
// payload movement through the chosen transport.
Counters MeasureOffline(TransportBackend backend) {
  const Graph& g = SharedWebGraph();
  DistPrecomputeOptions dist;
  dist.num_machines = kMachines;
  dist.transport = Backend(backend);
  WallTimer timer;
  DistributedPrecompute::Result result =
      DistributedPrecompute::RunHgpa(g, HgpaOptions{}, dist);
  double wall_s = timer.ElapsedSeconds();
  return {
      {"offline_wall_s", wall_s},
      {"rounds", static_cast<double>(result.offline.rounds)},
      {"shipped_mb", result.offline.comm.megabytes()},
      {"wall_s_per_round", wall_s / static_cast<double>(result.offline.rounds)},
  };
}

// Concurrent serving through the admission batcher; every round's fragment
// payloads cross the chosen transport.
Counters MeasureServing(TransportBackend backend) {
  auto pre = SharedPrecomputation();
  QueryServer server(HgpaQueryEngine(HgpaIndex::Distribute(pre, kMachines),
                                     NetworkModel{}, Backend(backend)));

  std::vector<NodeId> nodes =
      SampleQueries(SharedWebGraph(), kClients * kQueriesPerClient);
  server.ResetStats();
  std::vector<std::thread> workers;
  for (size_t c = 0; c < kClients; ++c) {
    workers.emplace_back([&, c] {
      for (size_t i = 0; i < kQueriesPerClient; ++i) {
        server.Query(nodes[c * kQueriesPerClient + i]);
      }
    });
  }
  for (auto& w : workers) w.join();
  ServerStats stats = server.Stats();
  return {
      {"qps", stats.qps},
      {"p50_ms", stats.p50_latency_ms},
      {"p95_ms", stats.p95_latency_ms},
      {"mean_batch", stats.mean_batch},
      {"comm_mb", stats.comm.megabytes()},
  };
}

void RegisterRows() {
  for (TransportBackend backend :
       {TransportBackend::kInProcess, TransportBackend::kTcp}) {
    std::string name = TransportBackendName(backend);
    AddRow("transport/offline/web_m6/" + name,
           [backend] { return MeasureOffline(backend); });
    AddRow("transport/serving/web_c4/" + name,
           [backend] { return MeasureServing(backend); });
  }
}

}  // namespace

DPPR_BENCH_MAIN(RegisterRows)
