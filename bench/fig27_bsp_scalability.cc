// Figure 27 (Appendix A): scalability of the BSP engines over the Meetup
// series M1..M5 (10 machines) against HGPA. Paper shape: Pregel+/Blogel
// runtime and traffic grow linearly with graph size (their communication is
// per-edge) and sit orders of magnitude above HGPA.

#include "bench_util.h"
#include "dppr/baseline/bsp_engine.h"

namespace {

using namespace dppr;
using namespace dppr::bench;

constexpr size_t kMachines = 10;
constexpr double kScale = 0.2;

void RegisterRows() {
  for (int index = 1; index <= 5; ++index) {
    std::string dataset = "meetup" + std::to_string(index);
    AddRow("fig27/HGPA/M" + std::to_string(index), [=]() -> Counters {
      Graph g = LoadDataset(dataset, kScale);
      auto pre = HgpaPrecomputation::RunHgpa(g, HgpaOptions{});
      HgpaQueryEngine engine(HgpaIndex::Distribute(pre, kMachines));
      std::vector<NodeId> queries = SampleQueries(g, 8);
      QuerySummary summary = MeasureQueries(engine, queries);
      return {{"runtime_ms", summary.compute_ms},
              {"comm_kb", summary.comm_kb},
              {"edges", static_cast<double>(g.num_edges())}};
    });
    for (auto [placement, label] :
         {std::pair{BspPlacement::kHash, "PregelPlus"},
          std::pair{BspPlacement::kPartition, "Blogel"}}) {
      AddRow(std::string("fig27/") + label + "/M" + std::to_string(index),
             [=]() -> Counters {
               Graph g = LoadDataset(dataset, kScale);
               BspOptions options;
               options.num_machines = kMachines;
               options.placement = placement;
               std::vector<uint32_t> machine_of = BspComputePlacement(g, options);
               options.placement_override = &machine_of;
               std::vector<NodeId> queries = SampleQueries(g, 2);
               double runtime_ms = 0.0;
               double comm_kb = 0.0;
               for (NodeId q : queries) {
                 BspPpvResult result =
                     BspPowerIterationPpv(g, q, PprOptions{}, options);
                 runtime_ms += result.simulated_seconds * 1e3;
                 comm_kb += result.network_traffic.kilobytes();
               }
               double n = static_cast<double>(queries.size());
               return {{"runtime_ms", runtime_ms / n},
                       {"comm_kb", comm_kb / n},
                       {"edges", static_cast<double>(g.num_edges())}};
             });
    }
  }
}

}  // namespace

DPPR_BENCH_MAIN(RegisterRows)
