// Ablation: skeleton computation via the paper's Eq. 8 per-hub fixed point
// vs the reverse-push optimization (library default). Expected: identical
// answers to tolerance, with reverse push much cheaper offline because it
// only touches nodes that actually reach the hub.

#include "bench_util.h"
#include "dppr/ppr/metrics.h"

namespace {

using namespace dppr;
using namespace dppr::bench;

Counters Run(SkeletonMethod method) {
  Graph g = LoadDataset("web", 0.35);
  HgpaOptions options;
  options.skeleton_method = method;
  auto pre = HgpaPrecomputation::RunHgpa(g, options);
  HgpaQueryEngine engine(HgpaIndex::Distribute(pre, 6));
  std::vector<NodeId> queries = SampleQueries(g, 10);
  QuerySummary summary = MeasureQueries(engine, queries);

  // Cross-check: both methods must produce the same PPV (to tolerance).
  HgpaOptions other = options;
  other.skeleton_method = method == SkeletonMethod::kReversePush
                              ? SkeletonMethod::kFixedPoint
                              : SkeletonMethod::kReversePush;
  auto pre_other = HgpaPrecomputation::RunHgpa(g, other);
  HgpaQueryEngine engine_other(HgpaIndex::Distribute(pre_other, 6));
  double linf = 0.0;
  for (NodeId q : {queries[0], queries[1]}) {
    linf = std::max(linf, LInfNorm(engine.QueryDense(q), engine_other.QueryDense(q)));
  }

  return {{"offline_total_s", pre->total_seconds()},
          {"runtime_ms", summary.compute_ms},
          {"space_mb", static_cast<double>(pre->TotalBytes()) / (1 << 20)},
          {"linf_vs_other_method", linf}};
}

void RegisterRows() {
  AddRow("ablation_skeleton/web/eq8_fixed_point",
         [] { return Run(SkeletonMethod::kFixedPoint); });
  AddRow("ablation_skeleton/web/reverse_push",
         [] { return Run(SkeletonMethod::kReversePush); });
}

}  // namespace

DPPR_BENCH_MAIN(RegisterRows)
