// Figures 21-22: HGPA vs power iteration on Pregel+-like and Blogel-like BSP
// engines (Web, Youtube; 2..10 machines). Paper shapes: HGPA is faster by
// orders of magnitude; its runtime falls with machines while the BSP
// engines' runtime and traffic *grow* with machines; Blogel stays below
// Pregel+ on both axes.

#include <map>

#include "bench_util.h"
#include "dppr/baseline/bsp_engine.h"

namespace {

using namespace dppr;
using namespace dppr::bench;

std::shared_ptr<const HgpaPrecomputation> CachedPre(const std::string& dataset,
                                                    double scale) {
  static std::map<std::string, std::shared_ptr<const HgpaPrecomputation>> cache;
  static std::map<std::string, Graph> graphs;
  auto it = cache.find(dataset);
  if (it != cache.end()) return it->second;
  graphs[dataset] = LoadDataset(dataset, scale);
  auto pre = HgpaPrecomputation::RunHgpa(graphs[dataset], HgpaOptions{});
  cache[dataset] = pre;
  return pre;
}

Counters MeasureBsp(const Graph& g, std::span<const NodeId> queries,
                    BspPlacement placement, size_t machines) {
  BspOptions options;
  options.num_machines = machines;
  options.placement = placement;
  std::vector<uint32_t> machine_of = BspComputePlacement(g, options);
  options.placement_override = &machine_of;
  double runtime_ms = 0.0;
  double comm_kb = 0.0;
  double supersteps = 0.0;
  for (NodeId q : queries) {
    BspPpvResult result = BspPowerIterationPpv(g, q, PprOptions{}, options);
    runtime_ms += result.simulated_seconds * 1e3;
    comm_kb += result.network_traffic.kilobytes();
    supersteps += static_cast<double>(result.supersteps);
  }
  double n = static_cast<double>(queries.size());
  return {{"runtime_ms", runtime_ms / n},
          {"comm_kb", comm_kb / n},
          {"supersteps", supersteps / n}};
}

void Rows(const std::string& dataset, double scale) {
  for (size_t machines : {2u, 4u, 6u, 8u, 10u}) {
    std::string suffix = dataset + "/machines:" + std::to_string(machines);
    AddRow("fig21to22/HGPA/" + suffix, [=]() -> Counters {
      auto pre = CachedPre(dataset, scale);
      HgpaIndex index = HgpaIndex::Distribute(pre, machines);
      HgpaQueryEngine engine(index);
      std::vector<NodeId> queries = SampleQueries(pre->graph(), 10);
      QuerySummary summary = MeasureQueries(engine, queries);
      return {{"runtime_ms", summary.compute_ms}, {"comm_kb", summary.comm_kb}};
    });
    AddRow("fig21to22/PregelPlus/" + suffix, [=]() -> Counters {
      auto pre = CachedPre(dataset, scale);  // reuse the cached graph
      std::vector<NodeId> queries = SampleQueries(pre->graph(), 3);
      return MeasureBsp(pre->graph(), queries, BspPlacement::kHash, machines);
    });
    AddRow("fig21to22/Blogel/" + suffix, [=]() -> Counters {
      auto pre = CachedPre(dataset, scale);
      std::vector<NodeId> queries = SampleQueries(pre->graph(), 3);
      return MeasureBsp(pre->graph(), queries, BspPlacement::kPartition, machines);
    });
  }
}

void RegisterRows() {
  Rows("web", 0.4);
  Rows("youtube", 0.4);
}

}  // namespace

DPPR_BENCH_MAIN(RegisterRows)
