// Figure 9: GPA vs HGPA on Web with default parameters (6 machines).
// Paper shape: HGPA wins or ties on every axis — slightly faster queries
// (better load balance), smaller max space, less offline time, less traffic.

#include "bench_util.h"

namespace {

using namespace dppr;
using namespace dppr::bench;

constexpr double kWebScale = 0.5;
constexpr size_t kMachines = 6;

Counters Measure(std::shared_ptr<const HgpaPrecomputation> pre) {
  HgpaIndex index = HgpaIndex::Distribute(pre, kMachines);
  HgpaQueryEngine engine(index);
  std::vector<NodeId> queries = SampleQueries(pre->graph(), 30);
  QuerySummary summary = MeasureQueries(engine, queries);
  return {
      {"runtime_ms", summary.compute_ms},
      {"runtime_with_net_ms", summary.simulated_ms},
      {"space_mb", static_cast<double>(index.MaxMachineBytes()) / (1 << 20)},
      {"offline_s", index.offline_ledger().MaxSeconds()},
      {"network_kb", summary.comm_kb},
  };
}

void RegisterRows() {
  // Paper-faithful Eq. 8 skeletons: GPA pays for per-hub fixed points over
  // the whole graph, HGPA only over shrinking subgraphs (the Fig. 9 offline
  // gap; the reverse-push default would hide it — see ablation_skeleton).
  HgpaOptions options;
  options.skeleton_method = SkeletonMethod::kFixedPoint;
  AddRow("fig09/web/HGPA", [options] {
    Graph g = LoadDataset("web", kWebScale);
    return Measure(HgpaPrecomputation::RunHgpa(g, options));
  });
  AddRow("fig09/web/GPA", [options] {
    Graph g = LoadDataset("web", kWebScale);
    return Measure(HgpaPrecomputation::RunGpa(g, kMachines, options));
  });
}

}  // namespace

DPPR_BENCH_MAIN(RegisterRows)
