// Offline scalability: the distributed precomputation (SimCluster supersteps
// per hierarchy level) swept over machine counts. Paper shape (§6 offline
// tables): per-machine offline time and space drop roughly linearly with
// machines while total bytes shipped to the coordinator stay flat — the
// offline phase is compute-bound, not network-bound.

#include "bench_util.h"

#include "dppr/core/dist_precompute.h"

namespace {

using namespace dppr;
using namespace dppr::bench;

// Every row precomputes from scratch (that is the measured work), but the
// synthetic dataset is shared across rows.
const Graph& SharedWebGraph() {
  static const Graph* graph = new Graph(LoadDataset("web", 0.3));
  return *graph;
}

void RegisterRows() {
  for (size_t machines : {2, 4, 6, 8, 10}) {
    AddRow("offline/web_m" + std::to_string(machines), [=]() -> Counters {
      const Graph& g = SharedWebGraph();
      DistPrecomputeOptions dist;
      dist.num_machines = machines;
      DistributedPrecompute::Result result =
          DistributedPrecompute::RunHgpa(g, HgpaOptions{}, dist);
      return {
          {"machines", static_cast<double>(machines)},
          {"rounds", static_cast<double>(result.offline.rounds)},
          {"offline_sim_s", result.offline.simulated_seconds},
          {"max_machine_s", result.ledger.MaxSeconds()},
          {"shipped_mb", result.offline.comm.megabytes()},
          {"space_mb", static_cast<double>(result.MaxMachineBytes()) / (1 << 20)},
      };
    });
  }

  // Interconnect contrast at a fixed cluster size: compute is unchanged, only
  // the modeled transfer of the shipped vectors re-prices.
  struct Preset {
    const char* name;
    NetworkModel net;
  };
  const Preset presets[] = {
      {"lan100", NetworkModel::Lan100Mbit()},
      {"lan1g", NetworkModel::Lan1Gbit()},
      {"dc", NetworkModel::Datacenter()},
  };
  for (const Preset& preset : presets) {
    AddRow(std::string("offline/web_m6_") + preset.name, [=]() -> Counters {
      const Graph& g = SharedWebGraph();
      DistPrecomputeOptions dist;
      dist.num_machines = 6;
      dist.network = preset.net;
      DistributedPrecompute::Result result =
          DistributedPrecompute::RunHgpa(g, HgpaOptions{}, dist);
      return {
          {"offline_sim_s", result.offline.simulated_seconds},
          {"max_machine_s", result.ledger.MaxSeconds()},
          {"shipped_mb", result.offline.comm.megabytes()},
      };
    });
  }
}

}  // namespace

DPPR_BENCH_MAIN(RegisterRows)
