// Offline scalability: the distributed precomputation (SimCluster supersteps
// per hierarchy level) swept over machine counts, in both compute-site
// placements. Paper shape (§6 offline tables): per-machine offline time and
// space drop roughly linearly with machines while total bytes shipped stay
// flat — the offline phase is compute-bound, not network-bound. The
// owner-placement rows additionally expose the induce traffic the locality
// shuffle removes: remote_induces counts subgraphs a machine materialized
// without holding their data (each one a full subgraph transfer on a real
// cluster), strictly zero in locality mode at the price of shuffled_mb of
// record traffic.

#include "bench_util.h"

#include "dppr/core/dist_precompute.h"

namespace {

using namespace dppr;
using namespace dppr::bench;

// Every row precomputes from scratch (that is the measured work), but the
// synthetic dataset is shared across rows.
const Graph& SharedWebGraph() {
  static const Graph* graph = new Graph(LoadDataset("web", 0.3));
  return *graph;
}

Counters OfflineCounters(const DistributedPrecompute::Result& result,
                         size_t machines) {
  return {
      {"machines", static_cast<double>(machines)},
      {"rounds", static_cast<double>(result.offline.rounds)},
      {"exchange_rounds", static_cast<double>(result.offline.exchange_rounds)},
      {"offline_sim_s", result.offline.simulated_seconds},
      {"max_machine_s", result.ledger.MaxSeconds()},
      {"shipped_mb", result.offline.comm.megabytes()},
      {"shuffled_mb", result.offline.shuffled.megabytes()},
      {"induces", static_cast<double>(result.induces)},
      {"remote_induces", static_cast<double>(result.remote_induces)},
      {"space_mb", static_cast<double>(result.MaxMachineBytes()) / (1 << 20)},
  };
}

void RegisterRows() {
  // Placements are pinned per row (not env-defaulted) so one run of this
  // binary always carries the before/after comparison the snapshot records.
  for (size_t machines : {2, 4, 6, 8, 10}) {
    AddRow("offline/web_m" + std::to_string(machines), [=]() -> Counters {
      const Graph& g = SharedWebGraph();
      DistPrecomputeOptions dist;
      dist.num_machines = machines;
      dist.locality = OfflinePlacement::kLocality;
      DistributedPrecompute::Result result =
          DistributedPrecompute::RunHgpa(g, HgpaOptions{}, dist);
      return OfflineCounters(result, machines);
    });
    AddRow("offline/web_m" + std::to_string(machines) + "_owner",
           [=]() -> Counters {
             const Graph& g = SharedWebGraph();
             DistPrecomputeOptions dist;
             dist.num_machines = machines;
             dist.locality = OfflinePlacement::kOwner;
             DistributedPrecompute::Result result =
                 DistributedPrecompute::RunHgpa(g, HgpaOptions{}, dist);
             return OfflineCounters(result, machines);
           });
  }

  // Interconnect contrast at a fixed cluster size: compute is unchanged, only
  // the modeled transfer of the shipped vectors re-prices.
  struct Preset {
    const char* name;
    NetworkModel net;
  };
  const Preset presets[] = {
      {"lan100", NetworkModel::Lan100Mbit()},
      {"lan1g", NetworkModel::Lan1Gbit()},
      {"dc", NetworkModel::Datacenter()},
  };
  for (const Preset& preset : presets) {
    AddRow(std::string("offline/web_m6_") + preset.name, [=]() -> Counters {
      const Graph& g = SharedWebGraph();
      DistPrecomputeOptions dist;
      dist.num_machines = 6;
      dist.network = preset.net;
      dist.locality = OfflinePlacement::kLocality;
      DistributedPrecompute::Result result =
          DistributedPrecompute::RunHgpa(g, HgpaOptions{}, dist);
      return {
          {"offline_sim_s", result.offline.simulated_seconds},
          {"max_machine_s", result.ledger.MaxSeconds()},
          {"shipped_mb", result.offline.comm.megabytes()},
          {"shuffled_mb", result.offline.shuffled.megabytes()},
      };
    });
  }
}

}  // namespace

DPPR_BENCH_MAIN(RegisterRows)
