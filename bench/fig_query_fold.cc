// Raw-speed microbench for the query hot path, gating the fold-kernel and
// extent-prefetch work: (1) ns/entry of the bitmap fold kernels
// (DenseAccumulator::AddVector/ToSparse/Clear) against the scalar
// accumulator they replaced, which must come out >= 2x; (2) cold-query
// latency through a disk-backed index with the batched extent prefetcher on
// vs. off in the same run. Answers are bit-identity-checked in-bench for the
// fold and by prefetch_test/store_equivalence_test for the query path — this
// bench only prices the speed.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "dppr/common/macros.h"
#include "dppr/common/rng.h"
#include "dppr/common/timer.h"
#include "dppr/core/hgpa.h"
#include "dppr/ppr/sparse_vector.h"

namespace {

using namespace dppr;
using namespace dppr::bench;

// ---------------------------------------------------------------------------
// Fold kernels vs. the committed scalar baseline
// ---------------------------------------------------------------------------

/// The scalar fold the bitmap kernels replaced, kept verbatim (per-entry
/// byte-flag load + branch + touched push_back; ToSparse over the unsorted
/// touched list through FromEntries' sort): the speedup below is measured
/// against the real pre-kernel DenseAccumulator, not a strawman.
class ScalarAccumulator {
 public:
  explicit ScalarAccumulator(size_t size)
      : values_(size, 0.0), touched_flag_(size, 0) {}

  void Add(NodeId index, double value) {
    if (!touched_flag_[index]) {
      touched_flag_[index] = 1;
      touched_.push_back(index);
    }
    values_[index] += value;
  }

  void AddVector(const SparseVector& vec, double scale) {
    for (const auto& e : vec.entries()) Add(e.index, scale * e.value);
  }

  SparseVector ToSparse(double prune_below = 0.0) const {
    std::vector<SparseVector::Entry> entries;
    entries.reserve(touched_.size());
    for (NodeId i : touched_) {
      if (std::abs(values_[i]) > prune_below) entries.push_back({i, values_[i]});
    }
    return SparseVector::FromEntries(std::move(entries));
  }

  void Clear() {
    for (NodeId i : touched_) {
      values_[i] = 0.0;
      touched_flag_[i] = 0;
    }
    touched_.clear();
  }

 private:
  std::vector<double> values_;
  std::vector<uint8_t> touched_flag_;
  std::vector<NodeId> touched_;
};

/// Hub-partial-shaped payloads: sorted sparse vectors whose supports overlap,
/// like the per-machine fold of one query chain's hubs.
std::vector<SparseVector> FoldWorkload(size_t num_nodes, size_t num_vectors,
                                       size_t entries_per_vector) {
  Rng rng(2024);
  std::vector<SparseVector> vectors;
  vectors.reserve(num_vectors);
  for (size_t v = 0; v < num_vectors; ++v) {
    std::vector<SparseVector::Entry> entries;
    entries.reserve(entries_per_vector);
    for (size_t i = 0; i < entries_per_vector; ++i) {
      entries.push_back({static_cast<NodeId>(rng.Uniform(num_nodes)),
                         rng.NextDouble() - 0.5});
    }
    vectors.push_back(SparseVector::FromEntries(std::move(entries)));
  }
  return vectors;
}

/// One serving round per iteration: fold every vector, extract the pruned
/// result, reset for the next query — the accumulator's whole query-time
/// life cycle, so the ratio can't hide a slow ToSparse behind a fast fold.
template <typename Accumulator>
double MeasureFoldSeconds(Accumulator& acc,
                          const std::vector<SparseVector>& vectors,
                          size_t rounds, SparseVector* last_result) {
  WallTimer timer;
  for (size_t r = 0; r < rounds; ++r) {
    for (size_t i = 0; i < vectors.size(); ++i) {
      acc.AddVector(vectors[i], 1.0 / static_cast<double>(i + 1));
    }
    *last_result = acc.ToSparse(1e-12);
    acc.Clear();
  }
  return timer.ElapsedSeconds();
}

Counters MeasureFoldKernels() {
  const size_t num_nodes = static_cast<size_t>(BenchScale(200000));
  const size_t num_vectors = 64;
  const size_t entries_per_vector = static_cast<size_t>(BenchScale(2000));
  const size_t rounds = 30;
  std::vector<SparseVector> vectors =
      FoldWorkload(num_nodes, num_vectors, entries_per_vector);
  size_t entries_per_round = 0;
  for (const SparseVector& v : vectors) entries_per_round += v.size();

  ScalarAccumulator scalar(num_nodes);
  DenseAccumulator kernel(num_nodes);
  SparseVector scalar_out, kernel_out;
  MeasureFoldSeconds(scalar, vectors, 2, &scalar_out);  // warmup
  MeasureFoldSeconds(kernel, vectors, 2, &kernel_out);
  const double scalar_seconds =
      MeasureFoldSeconds(scalar, vectors, rounds, &scalar_out);
  const double kernel_seconds =
      MeasureFoldSeconds(kernel, vectors, rounds, &kernel_out);
  // The kernels are only admissible if they are bit-identical to the scalar
  // fold (same adds, same order, same prune) — enforced, not assumed.
  DPPR_CHECK(scalar_out == kernel_out);

  const double folded =
      static_cast<double>(rounds) * static_cast<double>(entries_per_round);
  return {
      {"scalar_ns_per_entry", scalar_seconds * 1e9 / folded},
      {"kernel_ns_per_entry", kernel_seconds * 1e9 / folded},
      {"speedup", scalar_seconds / kernel_seconds},
      {"entries_per_round", static_cast<double>(entries_per_round)},
  };
}

// ---------------------------------------------------------------------------
// Cold-query latency, prefetch on vs. off, same run
// ---------------------------------------------------------------------------

constexpr double kWebScale = 0.3;
constexpr size_t kMachines = 4;
constexpr size_t kColdRounds = 25;
constexpr size_t kQueriesPerRound = 6;

std::shared_ptr<const HgpaPrecomputation> SharedPrecomputation() {
  static auto holder = [] {
    auto graph = std::make_shared<Graph>(LoadDataset("web", kWebScale));
    auto pre = HgpaPrecomputation::RunHgpa(*graph, HgpaOptions{});
    return std::pair{graph, pre};
  }();
  return holder.second;
}

Counters MeasureColdQueries(bool prefetch_on) {
  auto pre = SharedPrecomputation();
  StorageOptions storage;
  storage.backend = StorageBackend::kDisk;
  // Generous budget: every measured query runs against a *cold* cache (see
  // the per-round clone below), so the budget only needs to not interfere —
  // what is being priced is the cold read path, not eviction policy.
  storage.cache_bytes = std::numeric_limits<size_t>::max() / 2;

  // Spill once; each round clones the index, which shares the spill files
  // but starts every machine store with an empty residency cache — a
  // genuinely cold query, repeatable without re-spilling.
  HgpaIndex base = HgpaIndex::Distribute(pre, kMachines, storage);

  std::vector<NodeId> queries =
      SampleQueries(pre->graph(), kColdRounds * kQueriesPerRound);
  std::vector<double> latency_ms;
  latency_ms.reserve(queries.size());
  StorageStats totals;
  // The gate is read once per engine construction.
  ::setenv("DPPR_PREFETCH", prefetch_on ? "on" : "off", 1);
  for (size_t round = 0; round < kColdRounds; ++round) {
    HgpaQueryEngine engine(base);
    for (size_t i = 0; i < kQueriesPerRound; ++i) {
      WallTimer timer;
      (void)engine.Query(queries[round * kQueriesPerRound + i]);
      latency_ms.push_back(timer.ElapsedMillis());
    }
    totals += engine.index().StorageStatsTotal();
  }
  ::unsetenv("DPPR_PREFETCH");

  std::sort(latency_ms.begin(), latency_ms.end());
  double sum = 0.0;
  for (double ms : latency_ms) sum += ms;
  auto quantile = [&](double q) {
    return latency_ms[static_cast<size_t>(q * (latency_ms.size() - 1))];
  };

  const double preads =
      static_cast<double>(totals.prefetch_coalesced_reads +
                          (totals.cache_misses - totals.prefetch_issued));
  return {
      {"mean_ms", sum / static_cast<double>(latency_ms.size())},
      {"p50_ms", quantile(0.5)},
      {"p95_ms", quantile(0.95)},
      {"disk_mb_read", static_cast<double>(totals.disk_bytes_read) / (1 << 20)},
      {"preads", preads},
      {"prefetch_issued", static_cast<double>(totals.prefetch_issued)},
      {"prefetch_coalesced_reads",
       static_cast<double>(totals.prefetch_coalesced_reads)},
  };
}

void RegisterRows() {
  AddRow("query_fold/kernels", MeasureFoldKernels);
  // Off first, on second: any OS page-cache warming from the first row can
  // only bias *against* the prefetcher.
  AddRow("query_fold/web/disk/prefetch=off",
         [] { return MeasureColdQueries(false); });
  AddRow("query_fold/web/disk/prefetch=on",
         [] { return MeasureColdQueries(true); });
}

}  // namespace

DPPR_BENCH_MAIN(RegisterRows)
