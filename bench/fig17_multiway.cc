// Figure 17: effect of m-way partitioning (2, 4, 8, 16, 64 subgraphs per
// level) on Web. Paper shape: query runtime dips slightly with more parts,
// but precomputation space and time grow clearly — which is why 2-way is the
// default.

#include "bench_util.h"

namespace {

using namespace dppr;
using namespace dppr::bench;

void RegisterRows() {
  for (uint32_t fanout : {2u, 4u, 8u, 16u, 64u}) {
    dppr::bench::AddRow(
        "fig17/web/fanout:" + std::to_string(fanout), [=]() -> Counters {
          Graph g = LoadDataset("web", 0.35);
          HgpaOptions options;
          options.hierarchy.fanout = fanout;
          auto pre = HgpaPrecomputation::RunHgpa(g, options);
          HgpaIndex index = HgpaIndex::Distribute(pre, 6);
          HgpaQueryEngine engine(index);
          std::vector<NodeId> queries = SampleQueries(g, 20);
          QuerySummary summary = MeasureQueries(engine, queries);
          return {
              {"runtime_ms", summary.compute_ms},
              {"space_mb", static_cast<double>(index.MaxMachineBytes()) / (1 << 20)},
              {"offline_s", index.offline_ledger().MaxSeconds()},
              {"total_hubs", static_cast<double>(pre->hierarchy().TotalHubCount())},
          };
        });
  }
}

}  // namespace

DPPR_BENCH_MAIN(RegisterRows)
