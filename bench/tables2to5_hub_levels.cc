// Tables 2-5: hub node count per hierarchy level on Email, Web, Youtube and
// PLD. Paper shape: hub counts shrink fast below the root and stay far below
// the node count (|H| << |V|), e.g. Email 1208 hubs at level 0 out of 265k
// nodes.

#include <cstdio>

#include "bench_util.h"
#include "dppr/partition/hierarchy.h"

namespace {

using namespace dppr;
using namespace dppr::bench;

void TableRow(const std::string& dataset, double scale, uint32_t max_levels) {
  AddRow("hub_levels/" + dataset, [=]() -> Counters {
    Graph g = LoadDataset(dataset, scale);
    HierarchyOptions options;
    options.max_levels = max_levels;
    Hierarchy h = Hierarchy::Build(g, options);
    std::vector<size_t> per_level = h.HubCountPerLevel();
    std::printf("  %s (%zu nodes, %zu edges) — hub nodes per level:\n    ",
                dataset.c_str(), g.num_nodes(), g.num_edges());
    for (size_t level = 0; level < per_level.size(); ++level) {
      std::printf("L%zu:%zu ", level, per_level[level]);
    }
    std::printf("\n");
    Counters counters;
    counters.emplace_back("levels", static_cast<double>(h.num_levels()));
    counters.emplace_back("total_hubs", static_cast<double>(h.TotalHubCount()));
    counters.emplace_back("hub_pct", 100.0 * static_cast<double>(h.TotalHubCount()) /
                                         static_cast<double>(g.num_nodes()));
    counters.emplace_back("leaf_subgraphs", static_cast<double>(h.leaves().size()));
    return counters;
  });
}

void RegisterRows() {
  // Paper level caps: Email 5, Web 12, Youtube 15, PLD 15 (§6.2.1).
  TableRow("email", 1.0, 5);
  TableRow("web", 1.0, 12);
  TableRow("youtube", 1.0, 15);
  TableRow("pld", 1.0, 15);
}

}  // namespace

DPPR_BENCH_MAIN(RegisterRows)
