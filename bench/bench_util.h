#ifndef DPPR_BENCH_BENCH_UTIL_H_
#define DPPR_BENCH_BENCH_UTIL_H_

#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "dppr/core/hgpa.h"
#include "dppr/graph/datasets.h"
#include "dppr/graph/graph.h"

namespace dppr::bench {

/// Benchmarks reproduce the *shape* of the paper's figures on synthetic
/// stand-in datasets (DESIGN.md §2). DPPR_BENCH_SCALE (default 1.0)
/// multiplies every dataset size below; raise it on a bigger machine.
double BenchScale(double base);

/// DatasetByName at BenchScale(base).
Graph LoadDataset(const std::string& name, double scale_base);

/// Deterministic query workload (the paper samples 1000 random query nodes;
/// we default to fewer since every row re-runs them).
std::vector<NodeId> SampleQueries(const Graph& graph, size_t count,
                                  uint64_t seed = 42);

/// Averaged per-query metrics over a workload.
struct QuerySummary {
  double compute_ms = 0.0;    // max-machine + coordinator (paper's runtime)
  double simulated_ms = 0.0;  // including the modeled network transfer
  double comm_kb = 0.0;       // coordinator ingress per query
};
QuerySummary MeasureQueries(const HgpaQueryEngine& engine,
                            std::span<const NodeId> queries);

/// One figure data point: `fn` runs exactly once; the returned (name, value)
/// pairs become benchmark counters on the row.
using Counters = std::vector<std::pair<std::string, double>>;
void AddRow(const std::string& name, std::function<Counters()> fn);

/// Runs all registered rows under google-benchmark. Accepts `--json=<path>`
/// (consumed before google-benchmark sees the arguments): after the run,
/// every executed row's counters are written to <path> as one JSON document
///   {"bench": <binary name>, "params": {scale/transport/store knobs},
///    "rows": [{"name": ..., "metrics": {counter: value, ...}}, ...]}
/// — the machine-readable snapshot format committed as BENCH_<name>.json
/// (see ROADMAP: speed-pass gating compares against these).
int BenchMain(int argc, char** argv);

}  // namespace dppr::bench

#define DPPR_BENCH_MAIN(register_fn)              \
  int main(int argc, char** argv) {               \
    register_fn();                                \
    return ::dppr::bench::BenchMain(argc, argv);  \
  }

#endif  // DPPR_BENCH_BENCH_UTIL_H_
