// Storage-residency sweep: one disk-backed index served through QueryServer
// at cache budgets from ∞ (everything resident after warmup) down to 1% of
// the per-machine byte ledger. Not a paper figure — the paper assumes
// RAM-resident indexes — but the cost curve of the ROADMAP's disk-backed
// store: rows report QPS, p50/p95 latency, realized cache hit rate, and MB
// read back from the spill files, against an in-memory baseline row. Answers
// are bit-identical at every budget (store_equivalence_test); this sweep
// prices what the residency cache buys.

#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "dppr/serve/query_server.h"

namespace {

using namespace dppr;
using namespace dppr::bench;

constexpr double kWebScale = 0.3;
constexpr size_t kMachines = 4;
constexpr size_t kClients = 4;
constexpr size_t kQueriesPerClient = 40;

std::shared_ptr<const HgpaPrecomputation> SharedPrecomputation() {
  static auto holder = [] {
    auto graph = std::make_shared<Graph>(LoadDataset("web", kWebScale));
    auto pre = HgpaPrecomputation::RunHgpa(*graph, HgpaOptions{});
    return std::pair{graph, pre};
  }();
  return holder.second;
}

Counters MeasureResidency(StorageBackend backend, size_t cache_bytes) {
  auto pre = SharedPrecomputation();
  StorageOptions storage;
  storage.backend = backend;
  storage.cache_bytes = cache_bytes;
  QueryServer server(
      HgpaQueryEngine(HgpaIndex::Distribute(pre, kMachines, storage)));

  std::vector<NodeId> nodes =
      SampleQueries(pre->graph(), kClients * kQueriesPerClient);
  server.ResetStats();
  std::vector<std::thread> workers;
  for (size_t c = 0; c < kClients; ++c) {
    workers.emplace_back([&, c] {
      for (size_t i = 0; i < kQueriesPerClient; ++i) {
        server.Query(nodes[c * kQueriesPerClient + i]);
      }
    });
  }
  for (auto& w : workers) w.join();
  ServerStats stats = server.Stats();

  double lookups = static_cast<double>(stats.cache_hits + stats.cache_misses);
  double hit_rate =
      lookups > 0.0 ? static_cast<double>(stats.cache_hits) / lookups : 0.0;
  return {
      {"qps", stats.qps},
      {"p50_ms", stats.p50_latency_ms},
      {"p95_ms", stats.p95_latency_ms},
      {"cache_hit_rate", hit_rate},
      {"disk_mb_read", static_cast<double>(stats.disk_bytes_read) / (1 << 20)},
      {"resident_mb",
       static_cast<double>(server.engine().index().ResidentBytesTotal()) /
           (1 << 20)},
  };
}

void RegisterRows() {
  AddRow("residency/web/memory-baseline", [] {
    return MeasureResidency(StorageBackend::kMemoryRef,
                            std::numeric_limits<size_t>::max());
  });
  AddRow("residency/web/disk/budget=inf", [] {
    return MeasureResidency(StorageBackend::kDisk,
                            std::numeric_limits<size_t>::max());
  });
  // Budget as a fraction of the (max) per-machine ledger: 100% keeps a warm
  // working set, 1% forces nearly every lookup back to the spill file. The
  // ledger is placement-determined, so probe it once with a referencing
  // (no-spill) distribution regardless of the DPPR_STORE environment.
  for (size_t percent : {100, 25, 5, 1}) {
    AddRow("residency/web/disk/budget=" + std::to_string(percent) + "pct",
           [percent] {
             static const size_t ledger = [] {
               StorageOptions probe;
               probe.backend = StorageBackend::kMemoryRef;
               return HgpaIndex::Distribute(SharedPrecomputation(), kMachines,
                                            probe)
                   .MaxMachineBytes();
             }();
             size_t budget = ledger * percent / 100;
             return MeasureResidency(StorageBackend::kDisk,
                                     budget > 0 ? budget : 1);
           });
  }
}

}  // namespace

DPPR_BENCH_MAIN(RegisterRows)
