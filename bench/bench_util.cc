#include "bench_util.h"

#include <benchmark/benchmark.h>

#include <algorithm>

#include "dppr/common/env.h"
#include "dppr/common/rng.h"

namespace dppr::bench {

double BenchScale(double base) {
  double multiplier = GetEnvDouble("DPPR_BENCH_SCALE", 1.0);
  return base * (multiplier > 0 ? multiplier : 1.0);
}

Graph LoadDataset(const std::string& name, double scale_base) {
  return DatasetByName(name, BenchScale(scale_base));
}

std::vector<NodeId> SampleQueries(const Graph& graph, size_t count,
                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> queries;
  queries.reserve(count);
  // Prefer query nodes with real out-neighborhoods: synthetic id spaces
  // contain isolated self-loop nodes whose PPV is trivially concentrated.
  for (size_t i = 0; i < count; ++i) {
    NodeId q = static_cast<NodeId>(rng.Uniform(graph.num_nodes()));
    for (int tries = 0; tries < 64; ++tries) {
      NodeId candidate = static_cast<NodeId>(rng.Uniform(graph.num_nodes()));
      if (candidate != kInvalidNode && graph.out_degree(candidate) >= 2 &&
          !graph.HasEdge(candidate, candidate)) {
        q = candidate;
        break;
      }
    }
    queries.push_back(q);
  }
  return queries;
}

QuerySummary MeasureQueries(const HgpaQueryEngine& engine,
                            std::span<const NodeId> queries) {
  QuerySummary summary;
  for (NodeId q : queries) {
    // Simulated machines share this process's cores, so a single run picks
    // up scheduler jitter; keep the best of three (comm is deterministic).
    double compute_ms = 1e18;
    double simulated_ms = 1e18;
    QueryMetrics metrics;
    for (int repeat = 0; repeat < 3; ++repeat) {
      engine.Query(q, &metrics);
      compute_ms = std::min(compute_ms, metrics.ComputeSeconds() * 1e3);
      simulated_ms = std::min(simulated_ms, metrics.simulated_seconds * 1e3);
    }
    summary.compute_ms += compute_ms;
    summary.simulated_ms += simulated_ms;
    summary.comm_kb += metrics.comm.kilobytes();
  }
  double n = static_cast<double>(queries.size());
  summary.compute_ms /= n;
  summary.simulated_ms /= n;
  summary.comm_kb /= n;
  return summary;
}

void AddRow(const std::string& name, std::function<Counters()> fn) {
  benchmark::RegisterBenchmark(name.c_str(),
                               [fn = std::move(fn)](benchmark::State& state) {
                                 Counters counters;
                                 for (auto _ : state) {
                                   counters = fn();
                                 }
                                 for (const auto& [key, value] : counters) {
                                   state.counters[key] = value;
                                 }
                               })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

int BenchMain(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace dppr::bench
