#include "bench_util.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "dppr/common/env.h"
#include "dppr/common/macros.h"
#include "dppr/common/rng.h"

namespace dppr::bench {
namespace {

/// Rows executed this run, in execution order; drained by the --json writer.
struct ExecutedRow {
  std::string name;
  Counters counters;
};
std::mutex g_rows_mu;
std::vector<ExecutedRow> g_rows;  // guarded by g_rows_mu

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
}

/// The committed snapshot schema: which binary produced it, under which
/// environment knobs, and every row's counter map.
std::string RenderJson(const std::string& bench_name) {
  std::string out = "{\n  \"bench\": ";
  AppendJsonString(out, bench_name);
  out += ",\n  \"params\": {";
  out += "\"scale\": " + std::to_string(GetEnvDouble("DPPR_BENCH_SCALE", 1.0));
  out += ", \"transport\": ";
  AppendJsonString(out, GetEnvString("DPPR_TRANSPORT", "inproc"));
  out += ", \"store\": ";
  AppendJsonString(out, GetEnvString("DPPR_STORE", "memory"));
  out += ", \"offline\": ";
  AppendJsonString(out, GetEnvString("DPPR_OFFLINE", "locality"));
  out += "},\n  \"rows\": [";
  std::lock_guard<std::mutex> lock(g_rows_mu);
  for (size_t i = 0; i < g_rows.size(); ++i) {
    out += (i == 0) ? "\n" : ",\n";
    out += "    {\"name\": ";
    AppendJsonString(out, g_rows[i].name);
    out += ", \"metrics\": {";
    for (size_t j = 0; j < g_rows[i].counters.size(); ++j) {
      if (j > 0) out += ", ";
      AppendJsonString(out, g_rows[i].counters[j].first);
      char value[64];
      std::snprintf(value, sizeof(value), ": %.6g",
                    g_rows[i].counters[j].second);
      out += value;
    }
    out += "}}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace

double BenchScale(double base) {
  double multiplier = GetEnvDouble("DPPR_BENCH_SCALE", 1.0);
  return base * (multiplier > 0 ? multiplier : 1.0);
}

Graph LoadDataset(const std::string& name, double scale_base) {
  return DatasetByName(name, BenchScale(scale_base));
}

std::vector<NodeId> SampleQueries(const Graph& graph, size_t count,
                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> queries;
  queries.reserve(count);
  // Prefer query nodes with real out-neighborhoods: synthetic id spaces
  // contain isolated self-loop nodes whose PPV is trivially concentrated.
  for (size_t i = 0; i < count; ++i) {
    NodeId q = static_cast<NodeId>(rng.Uniform(graph.num_nodes()));
    for (int tries = 0; tries < 64; ++tries) {
      NodeId candidate = static_cast<NodeId>(rng.Uniform(graph.num_nodes()));
      if (candidate != kInvalidNode && graph.out_degree(candidate) >= 2 &&
          !graph.HasEdge(candidate, candidate)) {
        q = candidate;
        break;
      }
    }
    queries.push_back(q);
  }
  return queries;
}

QuerySummary MeasureQueries(const HgpaQueryEngine& engine,
                            std::span<const NodeId> queries) {
  QuerySummary summary;
  for (NodeId q : queries) {
    // Simulated machines share this process's cores, so a single run picks
    // up scheduler jitter; keep the best of three (comm is deterministic).
    double compute_ms = 1e18;
    double simulated_ms = 1e18;
    QueryMetrics metrics;
    for (int repeat = 0; repeat < 3; ++repeat) {
      engine.Query(q, &metrics);
      compute_ms = std::min(compute_ms, metrics.ComputeSeconds() * 1e3);
      simulated_ms = std::min(simulated_ms, metrics.simulated_seconds * 1e3);
    }
    summary.compute_ms += compute_ms;
    summary.simulated_ms += simulated_ms;
    summary.comm_kb += metrics.comm.kilobytes();
  }
  double n = static_cast<double>(queries.size());
  summary.compute_ms /= n;
  summary.simulated_ms /= n;
  summary.comm_kb /= n;
  return summary;
}

void AddRow(const std::string& name, std::function<Counters()> fn) {
  benchmark::RegisterBenchmark(
      name.c_str(), [name, fn = std::move(fn)](benchmark::State& state) {
        Counters counters;
        for (auto _ : state) {
          counters = fn();
        }
        for (const auto& [key, value] : counters) {
          state.counters[key] = value;
        }
        std::lock_guard<std::mutex> lock(g_rows_mu);
        g_rows.push_back({name, std::move(counters)});
      })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

int BenchMain(int argc, char** argv) {
  // Strip --json=<path> before google-benchmark parses: it is ours, and
  // Initialize would reject it as unrecognized.
  std::string json_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    constexpr const char kFlag[] = "--json=";
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      json_path = argv[i] + sizeof(kFlag) - 1;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!json_path.empty()) {
    // Name the snapshot after the producing binary (strip any directory).
    std::string bench_name = argv[0];
    size_t slash = bench_name.find_last_of('/');
    if (slash != std::string::npos) bench_name = bench_name.substr(slash + 1);
    std::string json = RenderJson(bench_name);
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    DPPR_CHECK(f != nullptr);
    size_t written = std::fwrite(json.data(), 1, json.size(), f);
    DPPR_CHECK_EQ(written, json.size());
    DPPR_CHECK_EQ(std::fclose(f), 0);
  }
  return 0;
}

}  // namespace dppr::bench
