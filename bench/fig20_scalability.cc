// Figure 20 (+ Table 6): HGPA scalability across the Meetup series M1..M5 on
// 10 machines. Paper shape: query runtime, per-machine space and offline
// time all grow ~linearly with graph size.

#include "bench_util.h"

namespace {

using namespace dppr;
using namespace dppr::bench;

void RegisterRows() {
  for (int index = 1; index <= 5; ++index) {
    AddRow("fig20/meetup_M" + std::to_string(index), [=]() -> Counters {
      Graph g = LoadDataset("meetup" + std::to_string(index), 0.3);
      auto pre = HgpaPrecomputation::RunHgpa(g, HgpaOptions{});
      HgpaIndex idx = HgpaIndex::Distribute(pre, 10);
      HgpaQueryEngine engine(idx);
      std::vector<NodeId> queries = SampleQueries(g, 15);
      QuerySummary summary = MeasureQueries(engine, queries);
      return {
          {"nodes", static_cast<double>(g.num_nodes())},
          {"edges", static_cast<double>(g.num_edges())},
          {"runtime_ms", summary.compute_ms},
          {"space_mb", static_cast<double>(idx.MaxMachineBytes()) / (1 << 20)},
          {"offline_s", idx.offline_ledger().MaxSeconds()},
      };
    });
  }
}

}  // namespace

DPPR_BENCH_MAIN(RegisterRows)
