// Figure 28 (Appendix B): HGPA on the large PLD_full stand-in with a coarse
// tolerance (ε = 1e-2, as the paper uses on the 101M-node graph) across a
// wide machine sweep (stand-in for 500..1500 EC2 processors). Paper shape:
// runtime stays under control and *decreases* with processors even though
// communication grows, because each machine talks to the coordinator once.

#include <map>

#include "bench_util.h"

namespace {

using namespace dppr;
using namespace dppr::bench;

std::shared_ptr<const HgpaPrecomputation> CachedPre() {
  static std::shared_ptr<const HgpaPrecomputation> pre;
  static Graph graph;
  if (!pre) {
    graph = LoadDataset("pld_full", 1.0);
    HgpaOptions options;
    options.ppr.tolerance = 1e-2;  // Appendix B setting
    pre = HgpaPrecomputation::RunHgpa(graph, options);
  }
  return pre;
}

void RegisterRows() {
  for (size_t machines : {8u, 12u, 16u, 20u, 24u}) {
    AddRow("fig28/pld_full/machines:" + std::to_string(machines),
           [=]() -> Counters {
             auto pre = CachedPre();
             HgpaIndex index = HgpaIndex::Distribute(pre, machines);
             HgpaQueryEngine engine(index);
             std::vector<NodeId> queries = SampleQueries(pre->graph(), 10);
             QuerySummary summary = MeasureQueries(engine, queries);
             return {
                 {"runtime_ms", summary.compute_ms},
                 {"offline_s", index.offline_ledger().MaxSeconds()},
                 {"space_mb",
                  static_cast<double>(index.MaxMachineBytes()) / (1 << 20)},
                 {"comm_kb", summary.comm_kb},
             };
           });
  }
}

}  // namespace

DPPR_BENCH_MAIN(RegisterRows)
