// Figures 10-13: HGPA vs number of machines (2..10) on Web, Youtube, PLD.
// Paper shapes: query runtime drops ~linearly as machines double (Fig 10);
// max per-machine space drops (Fig 11); offline time drops (Fig 12); comm
// cost grows mildly with machines and stays in the ~MB range (Fig 13).

#include <map>

#include "bench_util.h"

namespace {

using namespace dppr;
using namespace dppr::bench;

// One precomputation per dataset, redistributed per machine count (the
// vectors do not depend on placement).
std::shared_ptr<const HgpaPrecomputation> CachedPre(const std::string& dataset,
                                                    double scale) {
  static std::map<std::string, std::shared_ptr<const HgpaPrecomputation>> cache;
  static std::map<std::string, Graph> graphs;
  auto it = cache.find(dataset);
  if (it != cache.end()) return it->second;
  graphs[dataset] = LoadDataset(dataset, scale);
  auto pre = HgpaPrecomputation::RunHgpa(graphs[dataset], HgpaOptions{});
  cache[dataset] = pre;
  return pre;
}

void Rows(const std::string& dataset, double scale) {
  for (size_t machines : {2u, 4u, 6u, 8u, 10u}) {
    AddRow("fig10to13/" + dataset + "/machines:" + std::to_string(machines),
           [=]() -> Counters {
             auto pre = CachedPre(dataset, scale);
             HgpaIndex index = HgpaIndex::Distribute(pre, machines);
             HgpaQueryEngine engine(index);
             std::vector<NodeId> queries = SampleQueries(pre->graph(), 25);
             QuerySummary summary = MeasureQueries(engine, queries);
             return {
                 {"runtime_ms", summary.compute_ms},
                 {"space_mb",
                  static_cast<double>(index.MaxMachineBytes()) / (1 << 20)},
                 {"offline_s", index.offline_ledger().MaxSeconds()},
                 {"comm_kb", summary.comm_kb},
             };
           });
  }
}

void RegisterRows() {
  Rows("web", 0.5);
  Rows("youtube", 0.5);
  Rows("pld", 0.35);
}

}  // namespace

DPPR_BENCH_MAIN(RegisterRows)
