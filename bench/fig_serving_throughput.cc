// Serving throughput: N client threads × M queries against ONE shared
// engine through the QueryServer admission batcher. Not a paper figure —
// the paper measures single-query latency — but the regime the ROADMAP
// targets: sustained concurrent traffic. Rows sweep client threads (and one
// unbatched row for contrast); counters report QPS, p50/p95 latency, mean
// realized batch, and coordinator bytes per query.

#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "dppr/serve/query_server.h"

namespace {

using namespace dppr;
using namespace dppr::bench;

constexpr double kWebScale = 0.3;
constexpr size_t kMachines = 6;
constexpr size_t kQueriesPerClient = 40;

std::shared_ptr<const HgpaPrecomputation> SharedPrecomputation() {
  // The precomputation keeps a pointer to its graph, so the graph lives on
  // the heap next to it for the whole process.
  static auto holder = [] {
    auto graph = std::make_shared<Graph>(LoadDataset("web", kWebScale));
    auto pre = HgpaPrecomputation::RunHgpa(*graph, HgpaOptions{});
    return std::pair{graph, pre};
  }();
  return holder.second;
}

Counters MeasureServing(size_t clients, size_t max_batch) {
  auto pre = SharedPrecomputation();
  HgpaQueryEngine engine(HgpaIndex::Distribute(pre, kMachines));
  ServeOptions options;
  options.max_batch = max_batch;
  QueryServer server(std::move(engine), options);

  std::vector<NodeId> nodes =
      SampleQueries(pre->graph(), clients * kQueriesPerClient);
  server.ResetStats();
  std::vector<std::thread> workers;
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      for (size_t i = 0; i < kQueriesPerClient; ++i) {
        server.Query(nodes[c * kQueriesPerClient + i]);
      }
    });
  }
  for (auto& w : workers) w.join();
  ServerStats stats = server.Stats();

  double per_query_kb =
      stats.queries > 0
          ? stats.comm.kilobytes() / static_cast<double>(stats.queries)
          : 0.0;
  return {
      {"qps", stats.qps},
      {"p50_ms", stats.p50_latency_ms},
      {"p95_ms", stats.p95_latency_ms},
      {"p99_ms", stats.p99_latency_ms},
      {"p999_ms", stats.p999_latency_ms},
      {"mean_batch", stats.mean_batch},
      {"rounds", static_cast<double>(stats.rounds)},
      {"comm_kb_per_query", per_query_kb},
  };
}

void RegisterRows() {
  for (size_t clients : {1, 2, 4, 8}) {
    AddRow("serving/web/clients=" + std::to_string(clients),
           [clients] { return MeasureServing(clients, 16); });
  }
  // Batching off: every request pays its own round — the contrast row that
  // shows what the admission batcher buys under the same 8-client load.
  AddRow("serving/web/clients=8/unbatched",
         [] { return MeasureServing(8, 1); });
}

}  // namespace

DPPR_BENCH_MAIN(RegisterRows)
