// Figures 18-19: effect of the tolerance ε on Web (runtime/space/offline/
// comm, Fig 18) and the L-norm gap between HGPA and power iteration at the
// same ε (Fig 19, Email and Web). Paper shapes: every cost rises as ε
// shrinks; avg-L1 and L∞ track the tolerance's order of magnitude.

#include "bench_util.h"
#include "dppr/ppr/metrics.h"
#include "dppr/ppr/power_iteration.h"

namespace {

using namespace dppr;
using namespace dppr::bench;

void Rows(const std::string& dataset, double scale) {
  for (double tolerance : {1e-2, 1e-3, 1e-4, 1e-5, 1e-6}) {
    AddRow("fig18to19/" + dataset + "/eps:" + std::to_string(tolerance),
           [=]() -> Counters {
             Graph g = LoadDataset(dataset, scale);
             HgpaOptions options;
             options.ppr.tolerance = tolerance;
             auto pre = HgpaPrecomputation::RunHgpa(g, options);
             HgpaIndex index = HgpaIndex::Distribute(pre, 6);
             HgpaQueryEngine engine(index);
             std::vector<NodeId> queries = SampleQueries(g, 8);
             QuerySummary summary = MeasureQueries(engine, queries);

             // Fig 19: compare against power iteration at the same ε.
             PowerIterationOptions pi;
             pi.ppr.tolerance = tolerance;
             pi.dangling = PowerDangling::kAbsorb;
             double avg_l1 = 0.0;
             double linf = 0.0;
             for (NodeId q : queries) {
               std::vector<double> hgpa = engine.QueryDense(q);
               std::vector<double> power = PowerIterationPpv(g, q, pi).ppv;
               avg_l1 += AverageL1(hgpa, power);
               linf = std::max(linf, LInfNorm(hgpa, power));
             }
             avg_l1 /= static_cast<double>(queries.size());

             return {
                 {"runtime_ms", summary.compute_ms},
                 {"space_mb",
                  static_cast<double>(index.MaxMachineBytes()) / (1 << 20)},
                 {"offline_s", index.offline_ledger().MaxSeconds()},
                 {"comm_kb", summary.comm_kb},
                 {"avg_l1", avg_l1},
                 {"linf", linf},
             };
           });
  }
}

void RegisterRows() {
  Rows("email", 1.0);
  Rows("web", 0.25);
}

}  // namespace

DPPR_BENCH_MAIN(RegisterRows)
