// Figures 24-26: HGPA and HGPA_ad (offline scores < 1e-4 dropped) against
// the FastPPV approximate baseline with few/many hubs, on Email and Web.
// Paper shapes: HGPA_ad is fastest; HGPA and HGPA_ad are near-perfect on
// every accuracy metric (avg-L1, L∞, Precision/RAG/Kendall@100) while
// FastPPV misses ~30% of the top-100 and misorders ~10% of pairs.

#include <map>

#include "bench_util.h"
#include "dppr/baseline/fastppv.h"
#include "dppr/common/timer.h"
#include "dppr/ppr/metrics.h"
#include "dppr/ppr/power_iteration.h"

namespace {

using namespace dppr;
using namespace dppr::bench;

struct Workload {
  Graph graph;
  std::vector<NodeId> queries;
  std::vector<std::vector<double>> reference;  // tight power iteration
};

const Workload& CachedWorkload(const std::string& dataset, double scale) {
  static std::map<std::string, Workload> cache;
  auto it = cache.find(dataset);
  if (it != cache.end()) return it->second;
  Workload w;
  w.graph = LoadDataset(dataset, scale);
  w.queries = SampleQueries(w.graph, 8);
  PowerIterationOptions pi;
  pi.ppr.tolerance = 1e-9;
  pi.dangling = PowerDangling::kAbsorb;
  for (NodeId q : w.queries) {
    w.reference.push_back(PowerIterationPpv(w.graph, q, pi).ppv);
  }
  return cache.emplace(dataset, std::move(w)).first->second;
}

Counters Score(const Workload& w, double runtime_ms,
               const std::vector<std::vector<double>>& answers) {
  double avg_l1 = 0.0;
  double linf = 0.0;
  double precision = 0.0;
  double rag = 0.0;
  double kendall = 0.0;
  for (size_t i = 0; i < w.queries.size(); ++i) {
    avg_l1 += AverageL1(answers[i], w.reference[i]);
    linf = std::max(linf, LInfNorm(answers[i], w.reference[i]));
    precision += PrecisionAtK(w.reference[i], answers[i], 100);
    rag += RagAtK(w.reference[i], answers[i], 100);
    kendall += KendallTauAtK(w.reference[i], answers[i], 100);
  }
  double n = static_cast<double>(w.queries.size());
  return {{"runtime_ms", runtime_ms}, {"avg_l1", avg_l1 / n},
          {"linf", linf},             {"precision@100", precision / n},
          {"rag@100", rag / n},       {"kendall@100", kendall / n}};
}

void FastRows(const std::string& dataset, double scale, size_t hubs,
              const std::string& label) {
  AddRow("fig24to26/" + dataset + "/Fast-" + label, [=]() -> Counters {
    const Workload& w = CachedWorkload(dataset, scale);
    FastPpvOptions options;
    options.num_hubs = hubs;
    options.max_rounds = 4;  // the "scheduled" truncation that makes it fast
    FastPpvIndex index = FastPpvIndex::Build(w.graph, options);
    std::vector<std::vector<double>> answers;
    WallTimer timer;
    for (NodeId q : w.queries) answers.push_back(index.Query(q));
    double runtime_ms = timer.ElapsedMillis() / static_cast<double>(w.queries.size());
    return Score(w, runtime_ms, answers);
  });
}

void HgpaRows(const std::string& dataset, double scale, bool adapted) {
  std::string name = adapted ? "HGPA_ad" : "HGPA";
  AddRow("fig24to26/" + dataset + "/" + name, [=]() -> Counters {
    const Workload& w = CachedWorkload(dataset, scale);
    auto pre = HgpaPrecomputation::RunHgpa(w.graph, HgpaOptions{});
    if (adapted) pre = pre->PrunedCopy(1e-4);  // drop tiny offline scores
    HgpaQueryEngine engine(HgpaIndex::Distribute(pre, 1));  // centralized
    std::vector<std::vector<double>> answers;
    double runtime_ms = 0.0;
    for (NodeId q : w.queries) {
      QueryMetrics metrics;
      SparseVector sparse = engine.Query(q, &metrics);
      runtime_ms += metrics.ComputeSeconds() * 1e3;
      std::vector<double> dense(w.graph.num_nodes(), 0.0);
      sparse.AddScaledTo(dense, 1.0);
      answers.push_back(std::move(dense));
    }
    runtime_ms /= static_cast<double>(w.queries.size());
    return Score(w, runtime_ms, answers);
  });
}

void RegisterRows() {
  // Email: Fast-100 vs Fast-1000 (paper Figure 24a).
  FastRows("email", 1.0, 100, "100");
  FastRows("email", 1.0, 1000, "1000");
  HgpaRows("email", 1.0, false);
  HgpaRows("email", 1.0, true);
  // Web: Fast-1000 vs Fast-10000 scaled to the stand-in graph size.
  FastRows("web", 0.4, 350, "1000eq");
  FastRows("web", 0.4, 1200, "10000eq");
  HgpaRows("web", 0.4, false);
  HgpaRows("web", 0.4, true);
}

}  // namespace

DPPR_BENCH_MAIN(RegisterRows)
