// Open-loop serving scale: a fixed-rate zipf workload against ONE shared
// engine through the QueryServer front door. Unlike fig_serving_throughput's
// closed loop (clients wait for each answer, so a slow server throttles its
// own load), arrivals here are scheduled on a fixed clock and latency is
// measured from the *scheduled* arrival time — queueing delay from a server
// falling behind is charged to the requests, not hidden (no coordinated
// omission). Sources are zipf-sampled over degree-ranked nodes, the skew
// that makes hot-shard replication and the result cache earn their keep.
//
// Rows: a closed-loop calibration row (capacity estimate the arrival rates
// are derived from), then route vs. broadcast at a comfortable rate (~50%
// of capacity) and a saturating rate (~200%, shedding on), plus routed rows
// with hot-shard replication and with the front-door result cache. Counters
// report goodput, shed rate, scheduled-arrival latency percentiles
// (p50/p95/p99/p999), machine-rounds and coordinator bytes per query, bytes
// routing saved, and the cache hit rate.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "dppr/serve/query_server.h"

namespace {

using namespace dppr;
using namespace dppr::bench;

constexpr double kWebScale = 0.3;
constexpr size_t kMachines = 6;
constexpr size_t kWorkers = 8;
constexpr size_t kArrivals = 320;
constexpr size_t kMaxPending = 4;
constexpr double kZipfExponent = 1.0;

std::shared_ptr<const HgpaPrecomputation> SharedPrecomputation() {
  static auto holder = [] {
    auto graph = std::make_shared<Graph>(LoadDataset("web", kWebScale));
    auto pre = HgpaPrecomputation::RunHgpa(*graph, HgpaOptions{});
    return std::pair{graph, pre};
  }();
  return holder.second;
}

/// Zipf(kZipfExponent) over nodes ranked by out-degree: rank 0 is the
/// highest-degree node. Deterministic per-row via the seed.
std::vector<NodeId> ZipfSources(size_t count, uint64_t seed) {
  const Graph& graph = SharedPrecomputation()->graph();
  static auto tables = [&] {
    std::vector<NodeId> ranked(graph.num_nodes());
    for (NodeId u = 0; u < graph.num_nodes(); ++u) ranked[u] = u;
    std::sort(ranked.begin(), ranked.end(), [&](NodeId a, NodeId b) {
      size_t da = graph.out_degree(a), db = graph.out_degree(b);
      if (da != db) return da > db;
      return a < b;
    });
    std::vector<double> cumulative(ranked.size());
    double total = 0.0;
    for (size_t r = 0; r < ranked.size(); ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), kZipfExponent);
      cumulative[r] = total;
    }
    return std::pair{ranked, cumulative};
  }();
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uniform(0.0, tables.second.back());
  std::vector<NodeId> sources;
  sources.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    auto it = std::lower_bound(tables.second.begin(), tables.second.end(),
                               uniform(rng));
    sources.push_back(
        tables.first[static_cast<size_t>(it - tables.second.begin())]);
  }
  return sources;
}

struct ServingConfig {
  RoutingMode mode = RoutingMode::kRoute;
  size_t replicate_bytes = 0;
  size_t cache_bytes = 0;
};

std::unique_ptr<QueryServer> MakeServer(const ServingConfig& config) {
  auto pre = SharedPrecomputation();
  ReplicationOptions replication;
  replication.budget_bytes = config.replicate_bytes;
  HgpaQueryEngine engine(
      HgpaIndex::Distribute(pre, kMachines, StorageOptions::FromEnv(),
                            replication),
      NetworkModel{}, TransportOptions::FromEnv(),
      RoutingOptions{config.mode});
  ServeOptions options;
  options.max_pending = kMaxPending;
  options.shed_on_overload = true;
  options.result_cache_bytes = config.cache_bytes;
  return std::make_unique<QueryServer>(std::move(engine), options);
}

/// Closed-loop capacity estimate (QPS at 8 saturating clients); the
/// open-loop rows pitch their arrival rates relative to this.
double CalibratedCapacityQps() {
  static double capacity = [] {
    std::unique_ptr<QueryServer> holder = MakeServer(ServingConfig{});
    QueryServer& server = *holder;
    std::vector<NodeId> sources = ZipfSources(kWorkers * 24, /*seed=*/7);
    server.ResetStats();
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kWorkers; ++c) {
      clients.emplace_back([&, c] {
        for (size_t i = 0; i < 24; ++i) {
          server.Query(sources[c * 24 + i]);
        }
      });
    }
    for (auto& t : clients) t.join();
    double qps = server.Stats().qps;
    return qps > 1.0 ? qps : 1.0;
  }();
  return capacity;
}

double QuantileMs(std::vector<double>& sorted_seconds, double q) {
  if (sorted_seconds.empty()) return 0.0;
  size_t idx = static_cast<size_t>(q * static_cast<double>(
                                           sorted_seconds.size() - 1));
  return sorted_seconds[idx] * 1e3;
}

Counters MeasureOpenLoop(const ServingConfig& config, double rate_factor) {
  using Clock = std::chrono::steady_clock;
  std::unique_ptr<QueryServer> holder = MakeServer(config);
  QueryServer& server = *holder;
  const double rate_qps = CalibratedCapacityQps() * rate_factor;
  const auto interval = std::chrono::nanoseconds(
      static_cast<int64_t>(1e9 / rate_qps));
  std::vector<NodeId> sources = ZipfSources(kArrivals, /*seed=*/11);

  server.ResetStats();
  std::vector<std::vector<double>> latencies(kWorkers);
  std::vector<uint64_t> shed(kWorkers, 0), hits(kWorkers, 0);
  // Small lead-in so worker 0's first arrival isn't already late.
  const auto start = Clock::now() + std::chrono::milliseconds(20);
  std::vector<std::thread> workers;
  for (size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      for (size_t i = w; i < kArrivals; i += kWorkers) {
        const auto scheduled = start + interval * static_cast<int64_t>(i);
        std::this_thread::sleep_until(scheduled);
        QueryServer::Response response = server.Query(sources[i]);
        const double latency =
            std::chrono::duration<double>(Clock::now() - scheduled).count();
        if (response.shed) {
          ++shed[w];
        } else {
          latencies[w].push_back(latency);
          if (response.cache_hit) ++hits[w];
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> all;
  uint64_t total_shed = 0, total_hits = 0;
  for (size_t w = 0; w < kWorkers; ++w) {
    all.insert(all.end(), latencies[w].begin(), latencies[w].end());
    total_shed += shed[w];
    total_hits += hits[w];
  }
  std::sort(all.begin(), all.end());
  ServerStats stats = server.Stats();

  const double served = static_cast<double>(all.size());
  const double cache_lookups = static_cast<double>(stats.result_cache_hits +
                                                   stats.result_cache_misses);
  return {
      {"offered_qps", rate_qps},
      {"goodput_qps", wall > 0.0 ? served / wall : 0.0},
      {"shed_rate", static_cast<double>(total_shed) / kArrivals},
      {"p50_ms", QuantileMs(all, 0.5)},
      {"p95_ms", QuantileMs(all, 0.95)},
      {"p99_ms", QuantileMs(all, 0.99)},
      {"p999_ms", QuantileMs(all, 0.999)},
      {"machines_per_query", stats.machines_per_query_mean},
      {"machine_rounds", static_cast<double>(stats.routing_machine_rounds)},
      {"comm_kb_per_query",
       stats.queries > 0
           ? stats.comm.kilobytes() / static_cast<double>(stats.queries)
           : 0.0},
      {"routing_saved_kb",
       static_cast<double>(stats.routing_bytes_saved) / 1024.0},
      {"cache_hit_rate",
       cache_lookups > 0.0
           ? static_cast<double>(total_hits) / cache_lookups
           : 0.0},
  };
}

void RegisterRows() {
  AddRow("serving_scale/web/calibrate", [] {
    return Counters{{"capacity_qps", CalibratedCapacityQps()}};
  });
  AddRow("serving_scale/web/route/load=0.5", [] {
    return MeasureOpenLoop(ServingConfig{RoutingMode::kRoute}, 0.5);
  });
  AddRow("serving_scale/web/broadcast/load=0.5", [] {
    return MeasureOpenLoop(ServingConfig{RoutingMode::kBroadcast}, 0.5);
  });
  // Saturating rows: offered load ~2x capacity; admission control sheds
  // instead of letting the queue (and every latency percentile) run away.
  AddRow("serving_scale/web/route/load=2.0", [] {
    return MeasureOpenLoop(ServingConfig{RoutingMode::kRoute}, 2.0);
  });
  AddRow("serving_scale/web/broadcast/load=2.0", [] {
    return MeasureOpenLoop(ServingConfig{RoutingMode::kBroadcast}, 2.0);
  });
  AddRow("serving_scale/web/route+replicate/load=0.5", [] {
    return MeasureOpenLoop(
        ServingConfig{RoutingMode::kRoute, /*replicate_bytes=*/4 << 20, 0},
        0.5);
  });
  AddRow("serving_scale/web/route+cache/load=0.5", [] {
    return MeasureOpenLoop(
        ServingConfig{RoutingMode::kRoute, 0, /*cache_bytes=*/4 << 20}, 0.5);
  });
}

}  // namespace

DPPR_BENCH_MAIN(RegisterRows)
