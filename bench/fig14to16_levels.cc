// Figures 14-16: effect of the number of partitioning levels on Email, Web,
// Youtube. Paper shapes: query runtime rises slightly with more levels
// (Fig 14: more per-level terms in Eq. 6); precomputation space and time
// drop significantly with more levels (Figs 15-16).

#include "bench_util.h"

namespace {

using namespace dppr;
using namespace dppr::bench;

void Rows(const std::string& dataset, double scale,
          std::initializer_list<uint32_t> levels) {
  for (uint32_t level_cap : levels) {
    AddRow("fig14to16/" + dataset + "/levels:" + std::to_string(level_cap),
           [=]() -> Counters {
             Graph g = LoadDataset(dataset, scale);
             HgpaOptions options;
             options.hierarchy.max_levels = level_cap;
             // Eq. 8 skeletons: the offline cost of shallow hierarchies
             // (big subgraphs x many hubs) is the effect Figs. 15-16 show.
             options.skeleton_method = SkeletonMethod::kFixedPoint;
             auto pre = HgpaPrecomputation::RunHgpa(g, options);
             HgpaIndex index = HgpaIndex::Distribute(pre, 6);
             HgpaQueryEngine engine(index);
             std::vector<NodeId> queries = SampleQueries(g, 20);
             QuerySummary summary = MeasureQueries(engine, queries);
             return {
                 {"runtime_ms", summary.compute_ms},
                 {"space_mb",
                  static_cast<double>(index.MaxMachineBytes()) / (1 << 20)},
                 {"offline_s", index.offline_ledger().MaxSeconds()},
                 {"actual_levels", static_cast<double>(pre->hierarchy().num_levels())},
             };
           });
  }
}

void RegisterRows() {
  Rows("email", 1.0, {1, 2, 3, 4, 5});
  Rows("web", 0.35, {4, 6, 8, 10, 12});
  Rows("youtube", 0.35, {7, 9, 11, 13, 15});
}

}  // namespace

DPPR_BENCH_MAIN(RegisterRows)
