// Ablation: partitioner quality vs hub count and index cost. The multilevel
// (METIS-substitute) partitioner should yield far fewer hub nodes — and
// therefore far less precomputation space/time — than BFS chunking or random
// assignment (Appendix D: good separators are what make the method viable).

#include "bench_util.h"

namespace {

using namespace dppr;
using namespace dppr::bench;

const char* MethodName(PartitionMethod method) {
  switch (method) {
    case PartitionMethod::kMultilevel:
      return "multilevel";
    case PartitionMethod::kBfs:
      return "bfs";
    case PartitionMethod::kRandom:
      return "random";
  }
  return "?";
}

void Rows(const std::string& dataset, double scale) {
  for (PartitionMethod method : {PartitionMethod::kMultilevel,
                                 PartitionMethod::kBfs, PartitionMethod::kRandom}) {
    AddRow("ablation_partitioner/" + dataset + "/" + MethodName(method),
           [=]() -> Counters {
             Graph g = LoadDataset(dataset, scale);
             HgpaOptions options;
             options.hierarchy.partition.method = method;
             // Random/BFS partitions produce huge hub sets; cap depth so the
             // ablation stays tractable.
             options.hierarchy.max_levels = 5;
             auto pre = HgpaPrecomputation::RunHgpa(g, options);
             HgpaQueryEngine engine(HgpaIndex::Distribute(pre, 6));
             std::vector<NodeId> queries = SampleQueries(g, 10);
             QuerySummary summary = MeasureQueries(engine, queries);
             return {
                 {"total_hubs",
                  static_cast<double>(pre->hierarchy().TotalHubCount())},
                 {"space_mb", static_cast<double>(pre->TotalBytes()) / (1 << 20)},
                 {"offline_total_s", pre->total_seconds()},
                 {"runtime_ms", summary.compute_ms},
             };
           });
  }
}

void RegisterRows() {
  Rows("web", 0.3);
  Rows("youtube", 0.3);
}

}  // namespace

DPPR_BENCH_MAIN(RegisterRows)
