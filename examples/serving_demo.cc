// Concurrent serving tour: one precomputed index, one shared QueryServer,
// and a growing pack of client threads hammering it. Shows the admission
// batcher folding compatible requests into shared cluster rounds (mean
// batch > 1 under load), the realized QPS / latency percentiles, and a
// top-k query — the recommendation-shaped request a real front-end sends.

#include <cstdio>
#include <thread>
#include <vector>

#include "dppr/common/rng.h"
#include "dppr/graph/datasets.h"
#include "dppr/serve/query_server.h"

int main() {
  using namespace dppr;
  Graph g = WebLike(0.3);
  std::printf("web-like graph: %zu nodes, %zu edges\n", g.num_nodes(),
              g.num_edges());

  auto pre = HgpaPrecomputation::RunHgpa(g, HgpaOptions{});
  std::printf("precomputation done; serving from 6 simulated machines\n\n");

  QueryServer server(HgpaQueryEngine(HgpaIndex::Distribute(pre, 6)));

  Rng rng(7);
  constexpr size_t kQueriesPerClient = 50;
  std::printf("%-9s %10s %10s %10s %11s %8s\n", "clients", "qps", "p50(ms)",
              "p95(ms)", "mean batch", "rounds");
  for (size_t clients : {1, 2, 4, 8}) {
    std::vector<NodeId> nodes;
    for (size_t i = 0; i < clients * kQueriesPerClient; ++i) {
      nodes.push_back(static_cast<NodeId>(rng.Uniform(g.num_nodes())));
    }
    server.ResetStats();
    std::vector<std::thread> workers;
    for (size_t c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        for (size_t i = 0; i < kQueriesPerClient; ++i) {
          server.Query(nodes[c * kQueriesPerClient + i]);
        }
      });
    }
    for (auto& w : workers) w.join();
    ServerStats stats = server.Stats();
    std::printf("%-9zu %10.0f %10.2f %10.2f %11.2f %8llu\n", clients,
                stats.qps, stats.p50_latency_ms, stats.p95_latency_ms,
                stats.mean_batch, static_cast<unsigned long long>(stats.rounds));
  }

  // A preference-set request (user taste profile) and its top neighbours.
  std::vector<QueryServer::Preference> taste{{0, 0.5}, {17, 0.3}, {42, 0.2}};
  QueryServer::Response profile = server.QueryPreferenceSet(taste);
  std::printf("\npreference-set query over %zu seeds: %zu nonzeros, %.1f KB "
              "shipped to the coordinator\n",
              taste.size(), profile.ppv.size(), profile.metrics.comm.kilobytes());

  QueryServer::TopKResponse top = server.QueryTopK(0, 5);
  std::printf("top-5 for node 0:\n");
  for (const auto& entry : top.top) {
    std::printf("  node %-6u score %.6f\n", entry.index, entry.value);
  }
  return 0;
}
