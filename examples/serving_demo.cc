// Concurrent serving tour: one precomputed index, one shared QueryServer,
// and a growing pack of client threads hammering it. Shows the admission
// batcher folding compatible requests into shared cluster rounds (mean
// batch > 1 under load), the realized QPS / latency percentiles, and a
// top-k query — the recommendation-shaped request a real front-end sends.
//
// With --disk the index lives in per-machine spill files behind a residency
// cache sized to the max machine ledger: same answers, and the stats line
// shows cold vs. warm serving — first touches read from disk, then the
// working set serves from cache. Sweep the budget down with
// ./build/fig_store_residency to watch the thrash point.
//
// With --transport=tcp every query round's PPV fragments travel through real
// localhost sockets (one listener per simulated machine) instead of the
// in-process hand-off: same answers, same coordinator bytes, real kernel
// crossings. ./build/fig_transport_overhead measures the difference.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "dppr/common/rng.h"
#include "dppr/graph/datasets.h"
#include "dppr/net/transport.h"
#include "dppr/obs/admin_http.h"
#include "dppr/serve/query_server.h"

int main(int argc, char** argv) {
  using namespace dppr;
  bool disk = false;
  long linger_seconds = 0;
  TransportOptions transport = TransportOptions::FromEnv();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--disk") == 0) {
      disk = true;
    } else if (std::strcmp(argv[i], "--transport=tcp") == 0) {
      transport.backend = TransportBackend::kTcp;
    } else if (std::strcmp(argv[i], "--transport=inproc") == 0) {
      transport.backend = TransportBackend::kInProcess;
    } else if (std::strncmp(argv[i], "--linger=", 9) == 0) {
      // Keep the process (and its admin plane) alive after the tour, so
      // curl / Prometheus can scrape a quiesced server (CI smoke does).
      linger_seconds = std::strtol(argv[i] + 9, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--disk] [--transport=inproc|tcp]"
                   " [--linger=SECONDS]\n",
                   argv[0]);
      return 1;
    }
  }
  Graph g = WebLike(0.3);
  std::printf("web-like graph: %zu nodes, %zu edges\n", g.num_nodes(),
              g.num_edges());

  auto pre = HgpaPrecomputation::RunHgpa(g, HgpaOptions{});

  StorageOptions storage = StorageOptions::FromEnv();
  if (disk) {
    // Probe the per-machine ledger with a cheap referencing (no-spill)
    // placement, then budget the real disk store's cache to it.
    StorageOptions probe;
    probe.backend = StorageBackend::kMemoryRef;
    storage.backend = StorageBackend::kDisk;
    storage.cache_bytes =
        HgpaIndex::Distribute(pre, 6, probe).MaxMachineBytes();
  }
  std::printf("precomputation done; serving from 6 simulated machines "
              "(%s store, %s transport)\n\n",
              StorageBackendName(storage.backend),
              TransportBackendName(transport.backend));

  QueryServer server(HgpaQueryEngine(HgpaIndex::Distribute(pre, 6, storage),
                                     NetworkModel{}, transport));

  // DPPR_ADMIN_PORT=<port> starts the admin plane; /statusz gets this
  // server's placement / serving / slow-query section.
  if (obs::AdminHttpServer* admin = obs::AdminHttpServer::GlobalFromEnv()) {
    admin->HandleStatus("server", [&server] { return server.StatusJson(); });
    std::printf("admin plane on http://127.0.0.1:%u (/metrics /healthz "
                "/statusz)\n",
                admin->port());
  }

  Rng rng(7);
  constexpr size_t kQueriesPerClient = 50;
  std::printf("%-9s %10s %10s %10s %11s %8s\n", "clients", "qps", "p50(ms)",
              "p95(ms)", "mean batch", "rounds");
  for (size_t clients : {1, 2, 4, 8}) {
    std::vector<NodeId> nodes;
    for (size_t i = 0; i < clients * kQueriesPerClient; ++i) {
      nodes.push_back(static_cast<NodeId>(rng.Uniform(g.num_nodes())));
    }
    server.ResetStats();
    std::vector<std::thread> workers;
    for (size_t c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        for (size_t i = 0; i < kQueriesPerClient; ++i) {
          server.Query(nodes[c * kQueriesPerClient + i]);
        }
      });
    }
    for (auto& w : workers) w.join();
    ServerStats stats = server.Stats();
    std::printf("%-9zu %10.0f %10.2f %10.2f %11.2f %8llu\n", clients,
                stats.qps, stats.p50_latency_ms, stats.p95_latency_ms,
                stats.mean_batch, static_cast<unsigned long long>(stats.rounds));
  }

  if (disk) {
    // Whole-run residency picture (stats windows were reset per row above,
    // so re-read the monotonic store counters directly).
    StorageStats storage_stats = server.engine().index().StorageStatsTotal();
    double lookups = static_cast<double>(storage_stats.cache_hits +
                                         storage_stats.cache_misses);
    std::printf("\ndisk store: %.1f%% cache hit rate, %.2f MB read from "
                "spill files, %.2f MB resident (budget %.2f MB/machine)\n",
                lookups > 0 ? 100.0 * static_cast<double>(storage_stats.cache_hits) / lookups
                            : 0.0,
                static_cast<double>(storage_stats.disk_bytes_read) / (1 << 20),
                static_cast<double>(server.engine().index().ResidentBytesTotal()) /
                    (1 << 20),
                static_cast<double>(storage.cache_bytes) / (1 << 20));
  }

  // A preference-set request (user taste profile) and its top neighbours.
  std::vector<QueryServer::Preference> taste{{0, 0.5}, {17, 0.3}, {42, 0.2}};
  QueryServer::Response profile = server.QueryPreferenceSet(taste);
  std::printf("\npreference-set query over %zu seeds: %zu nonzeros, %.1f KB "
              "shipped to the coordinator\n",
              taste.size(), profile.ppv.size(), profile.metrics.comm.kilobytes());

  QueryServer::TopKResponse top = server.QueryTopK(0, 5);
  std::printf("top-5 for node 0:\n");
  for (const auto& entry : top.top) {
    std::printf("  node %-6u score %.6f\n", entry.index, entry.value);
  }

  if (linger_seconds > 0) {
    std::printf("\nlingering %lds for admin-plane scrapes...\n",
                linger_seconds);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(linger_seconds));
  }
  return 0;
}
