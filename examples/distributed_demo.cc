// Tour of the distributed machinery: one precomputation distributed onto
// 2..10 simulated machines, reporting the paper's four metrics per cluster
// size, plus a comparison against the Pregel+-style BSP baseline.

#include <cstdio>

#include "dppr/baseline/bsp_engine.h"
#include "dppr/common/rng.h"
#include "dppr/core/hgpa.h"
#include "dppr/graph/datasets.h"

int main() {
  using namespace dppr;
  Graph g = WebLike(0.3);
  std::printf("web-like graph: %zu nodes, %zu edges\n\n", g.num_nodes(),
              g.num_edges());

  auto pre = HgpaPrecomputation::RunHgpa(g, HgpaOptions{});
  Rng rng(5);
  std::vector<NodeId> queries;
  for (int i = 0; i < 10; ++i) {
    queries.push_back(static_cast<NodeId>(rng.Uniform(g.num_nodes())));
  }

  std::printf("%-9s %12s %12s %12s %12s\n", "machines", "runtime(ms)",
              "space(MB)", "offline(s)", "comm(KB)");
  for (size_t machines = 2; machines <= 10; machines += 2) {
    HgpaIndex index = HgpaIndex::Distribute(pre, machines);
    HgpaQueryEngine engine(index);
    double runtime_ms = 0;
    double comm_kb = 0;
    for (NodeId q : queries) {
      QueryMetrics metrics;
      engine.Query(q, &metrics);
      runtime_ms += metrics.simulated_seconds * 1e3;
      comm_kb += metrics.comm.kilobytes();
    }
    std::printf("%-9zu %12.2f %12.2f %12.2f %12.1f\n", machines,
                runtime_ms / queries.size(),
                static_cast<double>(index.MaxMachineBytes()) / (1 << 20),
                index.offline_ledger().MaxSeconds(), comm_kb / queries.size());
  }

  // The BSP baseline pays a message wave per superstep instead.
  BspOptions bsp;
  bsp.num_machines = 6;
  BspPpvResult pregel = BspPowerIterationPpv(g, queries[0], PprOptions{}, bsp);
  std::printf("\npregel+-style power iteration, 6 machines: %zu supersteps, "
              "%.0f KB traffic, %.0f ms simulated\n",
              pregel.supersteps, pregel.network_traffic.kilobytes(),
              pregel.simulated_seconds * 1e3);
  std::printf("(HGPA sends one message per machine per query — the whole point)\n");
  return 0;
}
